package nbticache

import (
	"bytes"
	"context"
	"math"
	"sync"
	"testing"
)

var (
	facadeOnce  sync.Once
	facadeModel *AgingModel
	facadeErr   error
)

func facadeAging(t *testing.T) *AgingModel {
	t.Helper()
	facadeOnce.Do(func() {
		facadeModel, facadeErr = NewAgingModel()
	})
	if facadeErr != nil {
		t.Fatal(facadeErr)
	}
	return facadeModel
}

func TestQuickstartFlow(t *testing.T) {
	model := facadeAging(t)
	g := Geometry16kB()
	tr, err := GenerateTrace("sha", g)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := New(Config{Geometry: g, Banks: 4, Policy: Probing})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pc.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Lifetimes(model, res)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MonolithicYears != 2.93 {
		t.Errorf("monolithic = %v", sum.MonolithicYears)
	}
	if !(sum.LTYears > sum.LT0Years && sum.LT0Years >= sum.MonolithicYears) {
		t.Errorf("lifetime ordering broken: %v <= %v <= %v",
			sum.MonolithicYears, sum.LT0Years, sum.LTYears)
	}
	if res.Savings <= 0.3 || res.Savings >= 0.6 {
		t.Errorf("16kB energy savings %v outside plausible band", res.Savings)
	}
}

func TestBenchmarksAndProfiles(t *testing.T) {
	names := Benchmarks()
	if len(names) != 18 {
		t.Fatalf("benchmark count = %d", len(names))
	}
	p, err := Profile("dijkstra")
	if err != nil || p.Name != "dijkstra" {
		t.Fatalf("Profile: %v, %v", p, err)
	}
	if _, err := Profile("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestNewGeometry(t *testing.T) {
	g := NewGeometry(32, 32)
	if g.Size != 32*1024 || g.LineSize != 32 {
		t.Errorf("geometry wrong: %+v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMonolithicFacade(t *testing.T) {
	tr, err := GenerateTrace("CRC32", Geometry16kB())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMonolithic(Geometry16kB(), DefaultTech(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate() <= 0 {
		t.Error("no hits")
	}
}

func TestProjectAgingFacade(t *testing.T) {
	model := facadeAging(t)
	proj, err := ProjectAging(model, []float64{0.1, 0.9, 0.5, 0.3}, Probing, 64, VoltageScaled)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.93 / (1 - 0.45*(1-model.SleepStressRatio()))
	if math.Abs(proj.LifetimeYears-want)/want > 0.02 {
		t.Errorf("projection %v, want ~%v", proj.LifetimeYears, want)
	}
}

func TestPowerGatedAblation(t *testing.T) {
	model := facadeAging(t)
	vs, err := ProjectAging(model, []float64{0.4, 0.4, 0.4, 0.4}, Probing, 16, VoltageScaled)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := ProjectAging(model, []float64{0.4, 0.4, 0.4, 0.4}, Probing, 16, PowerGated)
	if err != nil {
		t.Fatal(err)
	}
	if pg.LifetimeYears <= vs.LifetimeYears {
		t.Errorf("power gating (%v) not better than voltage scaling (%v)",
			pg.LifetimeYears, vs.LifetimeYears)
	}
}

func TestMeasureSignatureFacade(t *testing.T) {
	tr, err := GenerateTrace("mad", Geometry16kB())
	if err != nil {
		t.Fatal(err)
	}
	sig, err := MeasureSignature(tr, Geometry16kB(), 4, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.UsefulIdleness) != 4 {
		t.Fatal("wrong signature length")
	}
	p, err := sig.ToProfile("mad-resynth", 0.25, 0.1, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "mad-resynth" {
		t.Error("profile name lost")
	}
}

func TestTechniqueComparisonFacade(t *testing.T) {
	s, err := NewSuite(true)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := s.RunTechniqueComparison("sha", 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tc.Rows) == 0 {
		t.Fatal("empty comparison")
	}
	line, err := RunLineLevel(Geometry16kB(), DefaultTech(), mustTrace(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if line.MeanSleep <= 0 {
		t.Error("line-level run degenerate")
	}
}

func mustTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := GenerateTrace("CRC32", Geometry16kB())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewSuiteQuick(t *testing.T) {
	s, err := NewSuite(true)
	if err != nil {
		t.Fatal(err)
	}
	if s.Aging == nil {
		t.Error("suite missing aging model")
	}
}

// TestUploadTraceFacade exercises the real-trace onboarding loop at the
// facade: encode a trace through the streaming codec, decode it back,
// admit it into an engine, and sweep over it by content address.
func TestUploadTraceFacade(t *testing.T) {
	tr := mustTrace(t)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Len() != tr.Len() || decoded.Cycles != tr.Cycles {
		t.Fatalf("codec round trip lost shape: %d/%d vs %d/%d",
			decoded.Len(), decoded.Cycles, tr.Len(), tr.Cycles)
	}

	e, err := NewEngine(EngineOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	info, existed, err := UploadTrace(e, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if existed || info.Signature == nil {
		t.Fatalf("bad admission: existed=%v info=%+v", existed, info)
	}
	wantID, err := TraceContentID(tr)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != wantID {
		t.Errorf("content address %q, want %q", info.ID, wantID)
	}

	res, err := Sweep(context.Background(), e, SweepSpec{TraceIDs: []string{info.ID}, Banks: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 1 || res.Jobs[0].Failed() {
		t.Fatalf("trace-backed sweep failed: %+v", res.Jobs)
	}
	if res.Jobs[0].Projection.LifetimeYears <= 0 {
		t.Error("degenerate lifetime from uploaded trace")
	}
}

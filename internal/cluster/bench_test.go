package cluster_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"nbticache/internal/cluster/clustertest"
	"nbticache/internal/engine"
)

// BenchmarkClusterSweep measures a fixed sweep end to end through the
// coordinator against 1 and 3 in-process shards: the 1-shard case
// prices the coordination overhead (HTTP hops, streaming merge), the
// 3-shard case shows what the sharded fan-out buys once per-job
// simulation dominates it. Every iteration drops the shards' result
// caches so the work is re-simulated, not replayed. Alongside ns/op,
// the secondary lat-ns/job metric is the mean submit→merge completion
// latency observed through the sweep's event subscription — the
// number the push dataplane exists to shrink (a poll-based merge path
// floors it at the poll cadence regardless of job cost).
func BenchmarkClusterSweep(b *testing.B) {
	spec := engine.SweepSpec{
		Name:    "bench",
		Benches: []string{"sha", "gsme", "cjpeg", "dijkstra", "lame", "mad"},
		Banks:   []int{2, 4},
	}
	for _, shards := range []int{1, 3} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cl := clustertest.Start(b, shards, clustertest.Options{Workers: 2})
			c := cl.Coordinator(b)
			ctx := context.Background()
			var jobLat time.Duration
			jobs := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for _, n := range cl.Nodes {
					n.Engine.ResetRuns()
				}
				b.StartTimer()
				start := time.Now()
				h, err := c.Submit(ctx, spec)
				if err != nil {
					b.Fatal(err)
				}
				backlog, live, cancel := h.EventsFrom(0)
				for range backlog {
					jobLat += time.Since(start)
					jobs++
				}
				for range live {
					jobLat += time.Since(start)
					jobs++
				}
				cancel()
				res, err := h.Wait(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if res.Status.Failed != 0 || res.Status.Canceled != 0 {
					b.Fatalf("sweep did not complete cleanly: %+v", res.Status)
				}
			}
			b.StopTimer()
			if jobs > 0 {
				b.ReportMetric(float64(jobLat.Nanoseconds())/float64(jobs), "lat-ns/job")
			}
		})
	}
}

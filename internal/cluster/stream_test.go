package cluster_test

import (
	"net/http"
	"strconv"
	"testing"

	"nbticache/internal/engine"
	"nbticache/internal/httpapi"
)

// openEventStream opens a sweep's completion feed at cursor `from` and
// returns a reader over its frames plus a closer for the response body.
func openEventStream(t *testing.T, base, id string, from int) (*httpapi.EventReader, func()) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if from > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(from))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("open event stream: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("open event stream: status %d", resp.StatusCode)
	}
	return httpapi.NewEventReader(resp.Body), func() { resp.Body.Close() }
}

// streamUntilDone consumes GET {base}/v1/sweeps/{id}/events until the
// terminal "done" frame and returns the status it carries — the
// push-based replacement for the fixed-cadence status poll loops these
// tests used to run. Every "job" frame on the way is decoded (the
// stream must be well-formed end to end) and counted against the
// terminal status.
func streamUntilDone(t *testing.T, base, id string) engine.SweepStatus {
	t.Helper()
	er, closeBody := openEventStream(t, base, id, 0)
	defer closeBody()
	seen := 0
	for {
		f, err := er.Next()
		if err != nil {
			t.Fatalf("event stream after %d job frames: %v", seen, err)
		}
		switch f.Event {
		case "job":
			ev, err := f.JobEvent()
			if err != nil {
				t.Fatalf("job frame %d: %v", seen+1, err)
			}
			if ev.Seq != seen+1 {
				t.Fatalf("job frame seq %d, want %d (dense merge cursor)", ev.Seq, seen+1)
			}
			seen++
		case "done":
			st, err := f.DoneStatus()
			if err != nil {
				t.Fatalf("done frame: %v", err)
			}
			if got := st.Completed + st.Failed + st.Canceled; got != seen {
				t.Fatalf("streamed %d job frames, terminal status accounts for %d: %+v", seen, got, st)
			}
			return st
		}
	}
}

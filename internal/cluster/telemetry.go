package cluster

import (
	"strconv"

	"nbticache/internal/obs"
)

// coordMetrics holds the coordinator's live metric handles. With Nop
// telemetry every handle is nil and every call on it is a no-op.
type coordMetrics struct {
	// dispatch times one dispatch call end to end (trace residency
	// checks, sub-sweep submit, and the poll-merge loop).
	dispatch *obs.Histogram // nbtiserved_cluster_dispatch_seconds
}

// registerMetrics builds the coordinator's metric families on the
// telemetry registry and mirrors the Stats counters into it at every
// scrape, so the coordinator's /metrics keeps its historical series
// names (per-shard {peer="..."} series included) while gaining the
// histogram families. No-ops entirely on a Nop registry.
func (c *Coordinator) registerMetrics() {
	r := c.tel.Metrics
	c.met = coordMetrics{
		dispatch: r.Histogram("nbtiserved_cluster_dispatch_seconds",
			"Wall time of one dispatch of a job group to a shard (submit through final merge).", nil),
	}
	c.client.reqSeconds = r.HistogramVec("nbtiserved_cluster_shard_request_seconds",
		"Latency of one shard API request, by operation.", nil, "op")
	if r == nil {
		return
	}

	rows := []struct {
		name, typ, help string
		read            func(Stats) float64
	}{
		{"nbtiserved_cluster_peers", "gauge", "Configured shard peers.", func(s Stats) float64 { return float64(s.Peers) }},
		{"nbtiserved_cluster_peers_alive", "gauge", "Peers still in the ring.", func(s Stats) float64 { return float64(s.AlivePeers) }},
		{"nbtiserved_cluster_sweeps_total", "counter", "Sharded sweeps submitted.", func(s Stats) float64 { return float64(s.SweepsTotal) }},
		{"nbtiserved_cluster_jobs_routed_total", "counter", "Job dispatches to shards.", func(s Stats) float64 { return float64(s.JobsRouted) }},
		{"nbtiserved_cluster_jobs_retried_total", "counter", "Accepted dispatches that re-dispatched an already-routed job (re-route after a peer failure, or a retry after a transient refusal).", func(s Stats) float64 { return float64(s.JobsRetried) }},
		{"nbtiserved_cluster_jobs_merged_total", "counter", "Job results merged from shards.", func(s Stats) float64 { return float64(s.JobsMerged) }},
		{"nbtiserved_cluster_jobs_failed_total", "counter", "Jobs settled with a permanent routing error.", func(s Stats) float64 { return float64(s.JobsFailed) }},
		{"nbtiserved_cluster_traces_forwarded_total", "counter", "Uploaded traces copied to a job's owning shard.", func(s Stats) float64 { return float64(s.TracesForwarded) }},
		{"nbtiserved_cluster_peer_failures_total", "counter", "Peers removed from the ring after a failure.", func(s Stats) float64 { return float64(s.PeerFailures) }},
		{"nbtiserved_cluster_ring_joins_total", "counter", "New peers admitted to the ring at runtime.", func(s Stats) float64 { return float64(s.RingJoins) }},
		{"nbtiserved_cluster_ring_rejoins_total", "counter", "Evicted peers re-admitted to the ring (health-loop recovery or re-announce).", func(s Stats) float64 { return float64(s.RingRejoins) }},
		{"nbtiserved_cluster_replica_writes_total", "counter", "Job results written through to a replica owner.", func(s Stats) float64 { return float64(s.ReplicaWrites) }},
		{"nbtiserved_cluster_replica_write_failures_total", "counter", "Replica write-throughs that failed (best-effort; the authoritative copy already merged).", func(s Stats) float64 { return float64(s.ReplicaWriteFailures) }},
		{"nbtiserved_cluster_replica_reads_total", "counter", "Job reads served by a ring successor instead of the primary owner.", func(s Stats) float64 { return float64(s.ReplicaReads) }},
		{"nbtiserved_cluster_sweeps_resumed_total", "counter", "Checkpointed sweeps resumed after a coordinator restart.", func(s Stats) float64 { return float64(s.SweepsResumed) }},
		{"nbtiserved_cluster_jobs_recovered_total", "counter", "Sweep slots resolved from an existing shard cache entry (rejoin replay or resume) instead of a fresh dispatch.", func(s Stats) float64 { return float64(s.JobsRecovered) }},
		{"nbtiserved_cluster_shard_streams_total", "counter", "Shard completion streams consumed by the dispatch path.", func(s Stats) float64 { return float64(s.StreamsOpened) }},
		{"nbtiserved_cluster_shard_stream_events_total", "counter", "Job results merged off shard completion streams.", func(s Stats) float64 { return float64(s.EventsStreamed) }},
		{"nbtiserved_sweep_fallback_polls_total", "counter", "Dispatches that degraded to the status-poll loop (shard without streaming, or a stream severed mid-sweep).", func(s Stats) float64 { return float64(s.FallbackPolls) }},
	}
	sets := make([]func(Stats), 0, len(rows))
	for _, row := range rows {
		read := row.read
		if row.typ == "counter" {
			ctr := r.Counter(row.name, row.help)
			sets = append(sets, func(st Stats) { ctr.Set(uint64(read(st))) })
		} else {
			g := r.Gauge(row.name, row.help)
			sets = append(sets, func(st Stats) { g.Set(read(st)) })
		}
	}
	shardAlive := r.GaugeVec("nbtiserved_cluster_shard_alive",
		"1 while the shard is in the ring.", "peer")
	shardRouted := r.CounterVec("nbtiserved_cluster_shard_jobs_routed_total",
		"Job dispatches accepted by this shard.", "peer")
	shardRetried := r.CounterVec("nbtiserved_cluster_shard_jobs_retried_total",
		"Accepted dispatches that re-dispatched an already-routed job.", "peer")
	shardMerged := r.CounterVec("nbtiserved_cluster_shard_jobs_merged_total",
		"Job results merged from this shard.", "peer")
	r.OnCollect(func() {
		st := c.Stats()
		for _, set := range sets {
			set(st)
		}
		for _, sh := range st.Shards {
			alive := 0.0
			if sh.Alive {
				alive = 1
			}
			shardAlive.With(sh.Peer).Set(alive)
			shardRouted.With(sh.Peer).Set(sh.Routed)
			shardRetried.With(sh.Peer).Set(sh.Retried)
			shardMerged.With(sh.Peer).Set(sh.Merged)
		}
	})
}

// itoa keeps span-attribute call sites short.
func itoa(n int) string { return strconv.Itoa(n) }

package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nbticache/internal/cluster"
	"nbticache/internal/cluster/clustertest"
	"nbticache/internal/engine"
	"nbticache/internal/trace"
)

// canonicalResult is the byte form the determinism tests compare: the
// full JSON result with the transport-dependent fields cleared: the
// Cached flag (a re-run is a cache hit) and the wall-clock Timing
// diagnostic. The scientific payload must still be identical.
func canonicalResult(t *testing.T, r *engine.JobResult) []byte {
	t.Helper()
	cp := *r
	cp.Cached = false
	cp.Timing = nil
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func resultsByID(t *testing.T, res *engine.SweepResult) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(res.Jobs))
	for _, r := range res.Jobs {
		if r == nil {
			t.Fatal("nil job slot in finished sweep")
		}
		if r.Err != "" {
			t.Fatalf("job %s failed: %s", r.ID, r.Err)
		}
		out[r.ID] = canonicalResult(t, r)
	}
	return out
}

// TestClusterDeterminism: the same SweepSpec run on one node and
// sharded across three harness nodes resolves every job content ID to
// byte-identical results — the merge path adds nothing and loses
// nothing.
func TestClusterDeterminism(t *testing.T) {
	spec := engine.SweepSpec{
		Name:     "determinism",
		Benches:  []string{"sha", "gsme", "cjpeg", "dijkstra"},
		Banks:    []int{2, 4},
		Policies: []string{"identity", "probing"},
	}
	ctx := context.Background()

	single := clustertest.Start(t, 1, clustertest.Options{})
	singleRes, err := single.Coordinator(t).Sweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	sharded := clustertest.Start(t, 3, clustertest.Options{})
	shardedRes, err := sharded.Coordinator(t).Sweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	want := resultsByID(t, singleRes)
	got := resultsByID(t, shardedRes)
	if len(want) != 16 || len(got) != len(want) {
		t.Fatalf("job counts diverge: single %d, sharded %d", len(want), len(got))
	}
	diverged := 0
	for id, wb := range want {
		gb, ok := got[id]
		if !ok {
			t.Errorf("job %s missing from the sharded run", id)
			continue
		}
		if !bytes.Equal(wb, gb) {
			diverged++
			t.Errorf("job %s diverges across the merge path:\nsingle:  %s\nsharded: %s", id, wb, gb)
		}
	}
	if diverged != 0 {
		t.Fatalf("%d of %d jobs diverged; want zero divergence", diverged, len(want))
	}
}

// TestClusterFailureInjection kills one harness node mid-sweep and
// asserts the coordinator re-routes exactly that node's jobs to the
// surviving ring owners, the merged sweep completes with every job
// resolved, and the retry counters match the rerouted job count.
func TestClusterFailureInjection(t *testing.T) {
	cl := clustertest.Start(t, 3, clustertest.Options{
		GenDelay:     50 * time.Millisecond,
		PollInterval: 25 * time.Millisecond,
	})
	c := cl.Coordinator(t)

	spec := engine.SweepSpec{Name: "failure-injection", Banks: []int{4}} // all 18 benchmarks at M=4
	h, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	jobs := h.Jobs()
	total := len(jobs)
	if total < 18 {
		t.Fatalf("sweep expanded to %d jobs, want >= 18", total)
	}

	// Ownership is fixed before any failure; the node owning the most
	// jobs is the victim (pigeonhole: it owns >= total/3).
	owned := make(map[string]int)
	for _, j := range jobs {
		owner, ok := c.OwnerOf(j.ID())
		if !ok {
			t.Fatal("no owner with a full ring")
		}
		owned[owner]++
	}
	var doomedURL string
	for url, n := range owned {
		if n > owned[doomedURL] {
			doomedURL = url
		}
	}
	doomed := cl.ByURL(doomedURL)
	if doomed == nil {
		t.Fatalf("owner %s is not a harness node", doomedURL)
	}

	// Kill the victim as soon as its sub-sweep has been accepted —
	// mid-sweep, before any of its jobs (>= 50ms each) can finish.
	deadline := time.Now().Add(30 * time.Second)
	for doomed.Engine.Stats().JobsSubmitted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim node never received its sub-sweep")
		}
		time.Sleep(time.Millisecond)
	}
	doomed.Kill()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	res, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status.State != "done" || res.Status.Failed != 0 || res.Status.Canceled != 0 {
		t.Fatalf("merged sweep did not complete cleanly: %+v", res.Status)
	}
	for _, r := range res.Jobs {
		if r == nil || r.Run == nil || r.Projection == nil {
			t.Fatalf("unresolved job after re-route: %+v", r)
		}
	}

	st := c.Stats()
	rerouted := uint64(owned[doomedURL])
	if st.JobsRetried != rerouted {
		t.Errorf("retried %d jobs, want exactly the victim's %d", st.JobsRetried, rerouted)
	}
	if st.JobsRouted != uint64(total)+st.JobsRetried {
		t.Errorf("routed %d, want %d original + %d retries", st.JobsRouted, total, st.JobsRetried)
	}
	if st.JobsMerged != uint64(total) {
		t.Errorf("merged %d results, want %d", st.JobsMerged, total)
	}
	if st.PeerFailures != 1 || st.AlivePeers != 2 {
		t.Errorf("peer bookkeeping wrong: %+v", st)
	}
	var shardRetried, shardRouted uint64
	for _, sh := range st.Shards {
		shardRetried += sh.Retried
		shardRouted += sh.Routed
		if sh.Peer == doomedURL {
			if sh.Alive {
				t.Errorf("victim still marked alive")
			}
			if sh.Merged != 0 {
				t.Errorf("victim merged %d results after dying mid-sweep", sh.Merged)
			}
		}
	}
	if shardRetried != st.JobsRetried || shardRouted != st.JobsRouted {
		t.Errorf("per-shard counters (%d routed, %d retried) disagree with totals (%d, %d)",
			shardRouted, shardRetried, st.JobsRouted, st.JobsRetried)
	}
}

// buildTrace makes a deterministic "real" trace for routing tests.
func buildTrace(name string, n int, seed int64) *trace.Trace {
	tr := &trace.Trace{Name: name}
	rng := rand.New(rand.NewSource(seed))
	cycle := uint64(0)
	for i := 0; i < n; i++ {
		cycle += uint64(rng.Intn(9) + 1)
		tr.Append(cycle, uint64(rng.Intn(1<<14)), trace.Kind(rng.Intn(2)))
	}
	tr.Cycles = cycle + 50
	return tr
}

// TestClusterTraceRouting: a sweep referencing a trace uploaded to one
// node completes even though most of its jobs are owned by other
// shards — the coordinator forwards the canonical bytes on demand and
// the content ID survives end to end.
func TestClusterTraceRouting(t *testing.T) {
	cl := clustertest.Start(t, 3, clustertest.Options{})
	c := cl.Coordinator(t)

	// The trace lives only on node 0; the coordinator holds nothing.
	tr := buildTrace("camera-pipeline", 3000, 97)
	home := cl.Nodes[0]
	info, _, err := home.Engine.AddTrace(tr)
	if err != nil {
		t.Fatal(err)
	}

	spec := engine.SweepSpec{
		Name:     "trace-routing",
		TraceIDs: []string{info.ID},
		Banks:    []int{2, 4, 8, 16},
		Policies: []string{"identity", "probing", "scrambling"},
		Modes:    []string{"voltage-scaled", "power-gated", "recovery-boosted"},
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	foreign := 0
	for _, j := range jobs {
		if owner, _ := c.OwnerOf(j.ID()); owner != home.URL {
			foreign++
		}
	}
	if foreign == 0 {
		// 36 content addresses all hashing to one of three nodes has
		// probability 3^-35; a hit means the ring is broken, not luck.
		t.Fatal("every job owned by the trace's home node; ring distribution is broken")
	}

	res, err := c.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status.Failed != 0 || res.Status.Canceled != 0 {
		t.Fatalf("sweep did not complete cleanly: %+v", res.Status)
	}
	for _, r := range res.Jobs {
		if r.Spec.TraceID != info.ID {
			t.Fatalf("job %s lost the trace reference: %+v", r.ID, r.Spec)
		}
		if r.Run == nil || r.Projection == nil {
			t.Fatalf("job %s unresolved: %+v", r.ID, r)
		}
	}

	st := c.Stats()
	if st.TracesForwarded < 1 || st.TracesForwarded > 2 {
		t.Errorf("forwarded %d copies, want 1..2 (once per foreign shard)", st.TracesForwarded)
	}
	// Every shard that owned a job now holds the trace under the same
	// content address, signature measured at its own admission.
	holders := 0
	for _, n := range cl.Nodes {
		if got, ok := n.Engine.TraceInfo(info.ID); ok {
			holders++
			if got.ID != info.ID || got.Accesses != info.Accesses {
				t.Errorf("%s holds a diverged copy: %+v vs %+v", n.Name, got, info)
			}
		}
	}
	if want := 1 + int(st.TracesForwarded); holders != want {
		t.Errorf("%d nodes hold the trace, want %d (home + forwards)", holders, want)
	}

	// A sweep referencing a trace no node holds is rejected at submit,
	// like a single node would.
	if _, err := c.Submit(context.Background(), engine.SweepSpec{
		TraceIDs: []string{"trace-ffffffffffffffffffffffffffffffff"},
	}); err == nil || !strings.Contains(err.Error(), "unknown trace") {
		t.Errorf("unknown trace accepted: %v", err)
	}
}

// TestCoordinatorHTTP drives the coordinator-mode surface end to end on
// the harness: upload a trace through the coordinator (routed to its
// owning shard), submit a sharded sweep over the same /v1/sweeps route
// a node serves, poll the merged view, resolve a job by content address
// through the proxy, and read the per-shard metrics.
func TestCoordinatorHTTP(t *testing.T) {
	cl := clustertest.Start(t, 2, clustertest.Options{})
	c := cl.Coordinator(t)
	ts := httptest.NewServer(cluster.NewServer(c, cluster.ServerConfig{}).Handler())
	t.Cleanup(ts.Close)

	// Upload through the coordinator: the canonical bytes land on the
	// content address's owning shard.
	var wire bytes.Buffer
	if err := trace.WriteBinary(&wire, buildTrace("edge-upload", 2000, 11)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		engine.TraceInfo
		Created bool `json:"created"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || !up.Created || up.ID == "" {
		t.Fatalf("coordinator upload: %d %+v", resp.StatusCode, up)
	}
	owner, _ := c.OwnerOf(up.ID)
	if _, ok := cl.ByURL(owner).Engine.TraceInfo(up.ID); !ok {
		t.Fatalf("trace not resident on its owning shard %s", owner)
	}
	// The merged listing and the metadata proxy both resolve it.
	var list struct {
		Total int `json:"total"`
	}
	if code := getJSON(t, ts.URL+"/v1/traces", &list); code != http.StatusOK || list.Total != 1 {
		t.Fatalf("merged listing: %d %+v", code, list)
	}
	if code := getJSON(t, ts.URL+"/v1/traces/"+up.ID, nil); code != http.StatusOK {
		t.Fatalf("trace metadata proxy status %d", code)
	}

	// A sweep mixing a benchmark axis and the uploaded trace.
	body := fmt.Sprintf(`{"name":"via-coordinator","benches":["sha","gsme"],"trace_ids":[%q],"banks":[2,4]}`, up.ID)
	resp, err = http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID     string   `json:"id"`
		Total  int      `json:"total"`
		JobIDs []string `json:"job_ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.Total != 6 {
		t.Fatalf("submit: %d %+v", resp.StatusCode, sub)
	}

	// Stream the completion feed instead of polling on a fixed cadence:
	// the events route pushes each merge and terminates with the final
	// status, so the test wakes exactly when the sweep does.
	if st := streamUntilDone(t, ts.URL, sub.ID); st.State != "done" || st.Failed != 0 {
		t.Fatalf("merged sweep: %+v", st)
	}
	var sweep struct {
		Status engine.SweepStatus  `json:"status"`
		Jobs   []*engine.JobResult `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/v1/sweeps/"+sub.ID, &sweep); code != http.StatusOK {
		t.Fatalf("final status %d", code)
	}
	if sweep.Status.State != "done" || sweep.Status.Failed != 0 {
		t.Fatalf("merged sweep: %+v", sweep.Status)
	}

	// Jobs resolve through the proxy from whichever shard ran them.
	for _, id := range sub.JobIDs {
		var job engine.JobResult
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &job); code != http.StatusOK {
			t.Fatalf("job proxy %s: status %d", id, code)
		}
		if job.ID != id || job.Run == nil {
			t.Fatalf("job proxy %s: bad payload", id)
		}
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/job-ffffffffffffffff", nil); code != http.StatusNotFound {
		t.Errorf("unknown job proxy status %d, want 404", code)
	}

	// Metrics: totals plus the per-shard routed/retried/merged series.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	if _, err := mbuf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	text := mbuf.String()
	for _, want := range []string{
		"nbtiserved_cluster_peers 2",
		"nbtiserved_cluster_sweeps_total 1",
		"nbtiserved_cluster_jobs_merged_total 6",
		"nbtiserved_cluster_jobs_retried_total 0",
		fmt.Sprintf("nbtiserved_cluster_shard_jobs_routed_total{peer=%q}", cl.Nodes[0].URL),
		fmt.Sprintf("nbtiserved_cluster_shard_jobs_merged_total{peer=%q}", cl.Nodes[1].URL),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
	var jm cluster.Stats
	if code := getJSON(t, ts.URL+"/metrics?format=json", &jm); code != http.StatusOK || jm.JobsMerged != 6 {
		t.Errorf("json metrics: %d %+v", code, jm)
	}

	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health["mode"] != "coordinator" {
		t.Errorf("healthz: %d %+v", code, health)
	}
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

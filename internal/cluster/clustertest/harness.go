// Package clustertest is the in-process cluster test harness: it stands
// up N real nbtiserved nodes — each a live engine behind an
// httptest.Server serving the full internal/httpapi route table, with
// its own temporary data directory — plus a cluster.Coordinator over
// them, entirely inside one test process. Nodes can be killed mid-sweep
// to exercise re-routing, and every node's engine stays reachable
// in-process so tests can assert on shard-local state (stored traces,
// counters) that the HTTP surface would hide.
package clustertest

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nbticache/internal/cache"
	"nbticache/internal/cluster"
	"nbticache/internal/engine"
	"nbticache/internal/httpapi"
	"nbticache/internal/workload"
)

// Options configures a harness cluster. The zero value is usable.
type Options struct {
	// Workers is the per-node engine pool size; <= 0 means 2.
	Workers int
	// GenDelay stalls every synthetic trace generation by this much —
	// a knob that slows jobs down without changing their results
	// (generation parameters stay identical across nodes, which the
	// content-addressed determinism depends on), so failure-injection
	// tests can reliably kill a node mid-sweep.
	GenDelay time.Duration
	// PollInterval is the coordinator's shard poll cadence; <= 0 means
	// 25ms (fast, suited to in-process latencies).
	PollInterval time.Duration
}

// Node is one in-process nbtiserved instance.
type Node struct {
	// Name labels the node in test output ("node0", ...).
	Name string
	// URL is the node's base URL, the coordinator's peer address.
	URL string
	// Engine is the node's live engine, reachable in-process for
	// shard-local assertions.
	Engine *engine.Engine
	// DataDir is the node's private persistence root (a temp dir).
	DataDir string

	ts   *httptest.Server
	once sync.Once
}

// Kill force-closes the node's listener and engine, as close to a
// crash as an in-process node gets: established connections break, new
// ones are refused, in-flight jobs cancel. Idempotent; the harness
// kills every surviving node at cleanup.
func (n *Node) Kill() {
	n.once.Do(func() {
		n.ts.CloseClientConnections()
		n.ts.Close()
		n.Engine.Close()
	})
}

// Cluster is a set of harness nodes.
type Cluster struct {
	Nodes []*Node
	opts  Options
}

// Start builds n nodes, each with its own temp data directory and an
// identical quick-generation engine (identical configuration is the
// cluster's determinism contract), and registers their teardown on tb.
func Start(tb testing.TB, n int, opts Options) *Cluster {
	tb.Helper()
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 25 * time.Millisecond
	}
	cl := &Cluster{opts: opts}
	for i := 0; i < n; i++ {
		dir := tb.TempDir()
		eng, err := engine.New(engine.Options{
			Workers: opts.Workers,
			DataDir: dir,
			Gen: func(g cache.Geometry) workload.GenParams {
				if opts.GenDelay > 0 {
					time.Sleep(opts.GenDelay)
				}
				return workload.GenParams{Geometry: g, Phases: 16, AccessesPerPhase: 64}
			},
		})
		if err != nil {
			tb.Fatal(err)
		}
		ts := httptest.NewServer(httpapi.NewServer(eng, httpapi.Config{}).Handler())
		node := &Node{
			Name:    fmt.Sprintf("node%d", i),
			URL:     ts.URL,
			Engine:  eng,
			DataDir: dir,
			ts:      ts,
		}
		tb.Cleanup(node.Kill)
		cl.Nodes = append(cl.Nodes, node)
	}
	return cl
}

// URLs lists the nodes' base URLs in start order.
func (cl *Cluster) URLs() []string {
	out := make([]string, len(cl.Nodes))
	for i, n := range cl.Nodes {
		out[i] = n.URL
	}
	return out
}

// ByURL resolves a node from its peer address.
func (cl *Cluster) ByURL(url string) *Node {
	for _, n := range cl.Nodes {
		if n.URL == url {
			return n
		}
	}
	return nil
}

// Coordinator builds a coordinator over every node, tuned for
// in-process latencies, and registers its teardown on tb.
func (cl *Cluster) Coordinator(tb testing.TB) *cluster.Coordinator {
	tb.Helper()
	c, err := cluster.New(cluster.Options{
		Peers:        cl.URLs(),
		PollInterval: cl.opts.PollInterval,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(c.Close)
	return c
}

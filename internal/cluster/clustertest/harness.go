// Package clustertest is the in-process cluster fault-injection
// harness: it stands up N real nbtiserved nodes — each a live engine
// behind an httptest.Server serving the full internal/httpapi route
// table, with its own temporary data directory — plus a
// cluster.Coordinator over them, entirely inside one test process.
// Fault injection covers the scenarios elastic membership is proven
// by: Kill (crash a node), Restart (bring it back on the same address
// with the same data dir, so its disk CAS survives), Partition (the
// node answers 503 to everything — reachable but unhealthy), StartNode
// (a brand-new node for runtime join), and coordinator restart via
// CoordinatorAt over a shared state directory. Every node's engine
// stays reachable in-process so tests can assert on shard-local state
// (stored traces, counters) that the HTTP surface would hide.
package clustertest

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nbticache/internal/cache"
	"nbticache/internal/cluster"
	"nbticache/internal/engine"
	"nbticache/internal/httpapi"
	"nbticache/internal/workload"
)

// Options configures a harness cluster. The zero value is usable.
type Options struct {
	// Workers is the per-node engine pool size; <= 0 means 2.
	Workers int
	// GenDelay stalls every synthetic trace generation by this much —
	// a knob that slows jobs down without changing their results
	// (generation parameters stay identical across nodes, which the
	// content-addressed determinism depends on), so failure-injection
	// tests can reliably kill a node mid-sweep.
	GenDelay time.Duration
	// PollInterval is the coordinator's shard poll cadence; <= 0 means
	// 25ms (fast, suited to in-process latencies).
	PollInterval time.Duration
	// HealthInterval is the coordinator's membership probe cadence;
	// 0 means 50ms (fast rejoin for in-process latencies), negative
	// disables the health loop.
	HealthInterval time.Duration
	// Replicas is the coordinator's owner-replication factor; <= 1
	// means no replication.
	Replicas int
	// StreamlessNodes lists node indexes (start order) whose API server
	// is built with event streaming disabled — modeling a shard that
	// predates the push dataplane, so the coordinator must degrade to
	// the poll loop for it. The knob survives Restart.
	StreamlessNodes []int
}

// Node is one in-process nbtiserved instance.
type Node struct {
	// Name labels the node in test output ("node0", ...).
	Name string
	// URL is the node's base URL, the coordinator's peer address. It
	// survives Restart: the listener rebinds the same address.
	URL string
	// Engine is the node's live engine, reachable in-process for
	// shard-local assertions. Restart replaces it (the old one is
	// closed); read it after the restart you scripted, not across it.
	Engine *engine.Engine
	// DataDir is the node's private persistence root (a temp dir),
	// shared across Restart — that continuity is what the rejoin
	// inventory replay proves out.
	DataDir string

	cl   *Cluster
	addr string // host:port, for rebinding on Restart
	// noStreaming builds this node's API server with event streaming
	// disabled (see Options.StreamlessNodes); constant across Restart.
	noStreaming bool

	mu          sync.Mutex
	ts          *httptest.Server
	dead        bool
	partitioned bool
}

// handler wraps a node's route table with the partition fault: while
// partitioned, every request — health probes included — answers 503,
// which to the coordinator is a reachable-but-unhealthy peer.
func (n *Node) handler(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		part := n.partitioned
		n.mu.Unlock()
		if part {
			w.Header().Set("Retry-After", "1")
			httpapi.WriteError(w, http.StatusServiceUnavailable, "partitioned (clustertest fault)")
			return
		}
		h.ServeHTTP(w, r)
	})
}

// Kill force-closes the node's listener and engine, as close to a
// crash as an in-process node gets: established connections break, new
// ones are refused, in-flight jobs cancel. Idempotent. Restart brings
// the node back.
func (n *Node) Kill() {
	n.mu.Lock()
	if n.dead {
		n.mu.Unlock()
		return
	}
	n.dead = true
	ts, eng := n.ts, n.Engine
	// Close outside the node lock: Server.Close waits for in-flight
	// requests, and an in-flight request (a health probe, say) takes
	// n.mu in the partition wrapper — holding the lock here deadlocks
	// the two.
	n.mu.Unlock()
	ts.CloseClientConnections()
	ts.Close()
	eng.Close()
}

// Restart brings a killed node back on the same address with the same
// data directory: a fresh engine warm-starts from the node's disk CAS
// (results and traces computed before the kill are resident again) and
// a new listener rebinds the crashed one's port, so the coordinator's
// stored peer URL works unchanged. The kernel can lag releasing the
// port after a close, so the rebind retries briefly.
func (n *Node) Restart(tb testing.TB) {
	tb.Helper()
	n.mu.Lock()
	dead := n.dead
	addr := n.addr
	n.mu.Unlock()
	if !dead {
		tb.Fatalf("%s: Restart of a live node (Kill it first)", n.Name)
	}
	// Build the replacement outside the node lock: the rebind can take
	// a while, and the partition wrapper must stay responsive meanwhile.
	// Tests drive each node from one goroutine, so dead cannot flip
	// between the check and the install below.
	eng, err := n.cl.newEngine(n.DataDir)
	if err != nil {
		tb.Fatal(err)
	}
	var ln net.Listener
	rebind := time.Now()
	for attempt := 0; ; attempt++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Since(rebind) > 10*time.Second {
			eng.Close()
			tb.Fatalf("%s: rebinding %s: %v", n.Name, addr, err)
		}
		// The bind itself is the readiness signal; retry tightly instead
		// of sleeping a blind fixed cadence.
		time.Sleep(time.Millisecond)
	}
	ts := httptest.NewUnstartedServer(n.handler(httpapi.NewServer(eng, n.apiConfig()).Handler()))
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	n.mu.Lock()
	n.Engine = eng
	n.ts = ts
	n.dead = false
	n.mu.Unlock()
	// Return only once the node demonstrably serves requests, so tests
	// never race Restart against their first post-restart call.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(n.URL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			tb.Fatalf("%s: restarted node never became healthy (last err %v)", n.Name, err)
		}
		time.Sleep(time.Millisecond)
	}
}

// SeverConnections force-closes every established client connection to
// the node — in-flight event streams included — without touching the
// listener or the engine: the very next request succeeds. This is the
// mid-sweep stream-sever fault the poll-fallback path is proven by.
func (n *Node) SeverConnections() {
	n.mu.Lock()
	ts := n.ts
	n.mu.Unlock()
	ts.CloseClientConnections()
}

// apiConfig is the node's httpapi configuration — identical across
// Restart, like the engine configuration.
func (n *Node) apiConfig() httpapi.Config {
	return httpapi.Config{DisableStreaming: n.noStreaming}
}

// Partition toggles the node's 503 fault: on=true makes every request
// (health probes included) answer 503 until Partition(false). The
// process stays up — engine state is untouched — which models a node
// behind a sick load balancer or an overloaded peer, and exercises the
// evict-then-rejoin path without losing the listener.
func (n *Node) Partition(on bool) {
	n.mu.Lock()
	n.partitioned = on
	n.mu.Unlock()
}

// Cluster is a set of harness nodes.
type Cluster struct {
	Nodes []*Node
	opts  Options
}

// newEngine builds one node engine with the cluster's shared
// configuration — identical across nodes and across Restart, which is
// the content-addressed determinism contract.
func (cl *Cluster) newEngine(dir string) (*engine.Engine, error) {
	return engine.New(engine.Options{
		Workers: cl.opts.Workers,
		DataDir: dir,
		Gen: func(g cache.Geometry) workload.GenParams {
			if cl.opts.GenDelay > 0 {
				time.Sleep(cl.opts.GenDelay)
			}
			return workload.GenParams{Geometry: g, Phases: 16, AccessesPerPhase: 64}
		},
	})
}

// StartNode adds one more node to the cluster at runtime — not known
// to any existing coordinator, which is the point: tests announce it
// through the join endpoint and watch the ring grow.
func (cl *Cluster) StartNode(tb testing.TB) *Node {
	tb.Helper()
	i := len(cl.Nodes)
	dir := tb.TempDir()
	eng, err := cl.newEngine(dir)
	if err != nil {
		tb.Fatal(err)
	}
	node := &Node{
		Name:    fmt.Sprintf("node%d", i),
		Engine:  eng,
		DataDir: dir,
		cl:      cl,
	}
	for _, idx := range cl.opts.StreamlessNodes {
		if idx == i {
			node.noStreaming = true
		}
	}
	ts := httptest.NewServer(node.handler(httpapi.NewServer(eng, node.apiConfig()).Handler()))
	node.ts = ts
	node.URL = ts.URL
	node.addr = ts.Listener.Addr().String()
	tb.Cleanup(node.Kill)
	cl.Nodes = append(cl.Nodes, node)
	return node
}

// Start builds n nodes, each with its own temp data directory and an
// identical quick-generation engine (identical configuration is the
// cluster's determinism contract), and registers their teardown on tb.
func Start(tb testing.TB, n int, opts Options) *Cluster {
	tb.Helper()
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 25 * time.Millisecond
	}
	if opts.HealthInterval == 0 {
		opts.HealthInterval = 50 * time.Millisecond
	}
	cl := &Cluster{opts: opts}
	for i := 0; i < n; i++ {
		cl.StartNode(tb)
	}
	return cl
}

// URLs lists the nodes' base URLs in start order.
func (cl *Cluster) URLs() []string {
	out := make([]string, len(cl.Nodes))
	for i, n := range cl.Nodes {
		out[i] = n.URL
	}
	return out
}

// ByURL resolves a node from its peer address.
func (cl *Cluster) ByURL(url string) *Node {
	for _, n := range cl.Nodes {
		if n.URL == url {
			return n
		}
	}
	return nil
}

// Coordinator builds a coordinator over every node, tuned for
// in-process latencies, and registers its teardown on tb. Sweep state
// is memory-only; use CoordinatorAt to script a coordinator restart.
func (cl *Cluster) Coordinator(tb testing.TB) *cluster.Coordinator {
	tb.Helper()
	return cl.CoordinatorAt(tb, "")
}

// CoordinatorAt is Coordinator with a persistence root for the
// coordinator's sweep state. Two sequential CoordinatorAt calls over
// the same dir script a coordinator restart: close the first, build
// the second, Resume. Empty dir means memory-only.
func (cl *Cluster) CoordinatorAt(tb testing.TB, dataDir string) *cluster.Coordinator {
	tb.Helper()
	c, err := cluster.New(cluster.Options{
		Peers:          cl.URLs(),
		PollInterval:   cl.opts.PollInterval,
		HealthInterval: cl.opts.HealthInterval,
		OwnerReplicas:  cl.opts.Replicas,
		DataDir:        dataDir,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(c.Close)
	return c
}

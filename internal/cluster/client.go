package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"nbticache/internal/engine"
	"nbticache/internal/httpapi"
	"nbticache/internal/obs"
)

// shardClient speaks the nbtiserved node API (internal/httpapi) to a
// set of peers. It is stateless: every method takes the peer's base URL,
// so one client serves every shard and survives membership changes.
type shardClient struct {
	hc *http.Client
	// streamHC issues the long-lived event-stream requests: same
	// transport as hc but no overall timeout, which would otherwise
	// sever every stream outliving hc's per-request deadline. Stream
	// liveness is enforced by the stall watchdog instead.
	streamHC *http.Client
	// maxForward caps one trace-content download (see traceContent).
	maxForward int64
	// reqSeconds times every shard request by operation; nil (Nop
	// telemetry) records nothing. Set once by the coordinator before any
	// request is issued.
	reqSeconds *obs.HistogramVec
}

// observe starts timing one shard request; call the returned func when
// it completes.
func (sc *shardClient) observe(op string) func() {
	if sc.reqSeconds == nil {
		return func() {}
	}
	h := sc.reqSeconds.With(op)
	start := time.Now()
	return func() { h.Observe(time.Since(start).Seconds()) }
}

func newShardClient(hc *http.Client, maxForward int64) *shardClient {
	if hc == nil {
		hc = &http.Client{Timeout: 2 * time.Minute}
	}
	if maxForward <= 0 {
		// A canonical encoding is never larger than the wire body that
		// admitted it, so 2x the node upload default is already
		// generous for default-configured clusters.
		maxForward = 2 * httpapi.DefaultMaxTraceBytes
	}
	streamHC := &http.Client{Transport: hc.Transport, Jar: hc.Jar}
	return &shardClient{hc: hc, streamHC: streamHC, maxForward: maxForward}
}

// streamStallTimeout severs an event stream with no bytes at all (the
// server heartbeats idle streams every DefaultEventHeartbeat, so a live
// connection is never silent this long); the consumer then degrades to
// polling.
const streamStallTimeout = 2 * time.Minute

// eventStream is one open shard completion feed.
type eventStream struct {
	body     io.ReadCloser
	er       *httpapi.EventReader
	stop     context.CancelFunc
	watchdog *time.Timer
}

// next returns the stream's next frame.
func (s *eventStream) next() (httpapi.EventFrame, error) { return s.er.Next() }

// Close severs the stream and disarms the watchdog. Idempotent.
func (s *eventStream) Close() {
	s.watchdog.Stop()
	s.stop()
	_ = s.body.Close()
}

// openEvents opens a shard sub-sweep's completion stream at cursor
// `from`. Failure to open — the route 404ing on a shard that predates
// (or disables) streaming included — is the caller's cue to degrade to
// the poll loop. The returned stream's reads are bounded by a stall
// watchdog: a connection silent past streamStallTimeout (heartbeats
// count as activity) is cancelled, surfacing as a read error.
func (sc *shardClient) openEvents(ctx context.Context, peer, id string, from int) (*eventStream, error) {
	defer sc.observe("sweep_events")()
	sctx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, peer+"/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if from > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(from))
	}
	obs.Inject(ctx, req.Header)
	resp, err := sc.streamHC.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr httpapi.APIError
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&apiErr)
		resp.Body.Close()
		cancel()
		return nil, &statusError{Code: resp.StatusCode, Msg: apiErr.Error}
	}
	es := &eventStream{
		body: resp.Body,
		er:   httpapi.NewEventReader(resp.Body),
		stop: cancel,
	}
	es.watchdog = time.AfterFunc(streamStallTimeout, cancel)
	es.er.OnActivity = func() { es.watchdog.Reset(streamStallTimeout) }
	return es, nil
}

// statusError is a peer's own non-2xx answer, as opposed to a transport
// failure. 4xx answers are semantic (the request is wrong everywhere,
// retrying on another shard cannot help); transport failures and 5xx
// mark the peer itself as suspect.
type statusError struct {
	Code int
	Msg  string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("http %d: %s", e.Code, e.Msg)
}

// isPermanent reports whether err is a request-level rejection that
// re-routing to another shard cannot fix.
func isPermanent(err error) bool {
	var se *statusError
	return errors.As(err, &se) && se.Code >= 400 && se.Code < 500 &&
		se.Code != http.StatusRequestTimeout && se.Code != http.StatusTooManyRequests
}

// isTransient reports whether err is a healthy peer saying "not right
// now" — the upload-concurrency gate's 503, a full trace store's 507,
// 429, 408. Removing the peer from the ring over one of these would
// collapse a busy-but-alive cluster; the routing loop instead backs off
// and retries, failing the jobs (not the peer) if the condition never
// clears.
func isTransient(err error) bool {
	var se *statusError
	if !errors.As(err, &se) {
		return false
	}
	switch se.Code {
	case http.StatusServiceUnavailable, http.StatusInsufficientStorage,
		http.StatusTooManyRequests, http.StatusRequestTimeout:
		return true
	}
	return false
}

// doJSON issues one request and decodes the JSON answer into out
// (skipped when out is nil). Non-2xx answers become *statusError with
// the peer's error message.
func (sc *shardClient) doJSON(ctx context.Context, method, url string, body []byte, ctype string, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if ctype != "" {
		req.Header.Set("Content-Type", ctype)
	}
	// Propagate the dispatch span across the hop: the shard's submit
	// handler extracts this header, so its engine spans join our trace.
	obs.Inject(ctx, req.Header)
	resp, err := sc.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr httpapi.APIError
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&apiErr)
		return &statusError{Code: resp.StatusCode, Msg: apiErr.Error}
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("decoding %s %s: %w", method, url, err)
		}
	}
	return nil
}

// submit posts a sub-sweep to a shard.
func (sc *shardClient) submit(ctx context.Context, peer string, spec engine.SweepSpec) (httpapi.SubmitResponse, error) {
	defer sc.observe("submit")()
	body, err := json.Marshal(spec)
	if err != nil {
		return httpapi.SubmitResponse{}, err
	}
	var out httpapi.SubmitResponse
	err = sc.doJSON(ctx, http.MethodPost, peer+"/v1/sweeps", body, "application/json", &out)
	return out, err
}

// sweep polls a shard sweep's progress and resolved results.
func (sc *shardClient) sweep(ctx context.Context, peer, id string) (httpapi.SweepResponse, error) {
	defer sc.observe("sweep_poll")()
	var out httpapi.SweepResponse
	err := sc.doJSON(ctx, http.MethodGet, peer+"/v1/sweeps/"+id, nil, "", &out)
	return out, err
}

// cancelSweep stops a shard sweep (best effort).
func (sc *shardClient) cancelSweep(ctx context.Context, peer, id string) error {
	defer sc.observe("sweep_cancel")()
	return sc.doJSON(ctx, http.MethodDelete, peer+"/v1/sweeps/"+id, nil, "", nil)
}

// job resolves one completed job by content address; found is false on
// a clean 404 (the shard is healthy, it just never ran the job).
func (sc *shardClient) job(ctx context.Context, peer, id string) (*engine.JobResult, bool, error) {
	defer sc.observe("job")()
	var out engine.JobResult
	err := sc.doJSON(ctx, http.MethodGet, peer+"/v1/jobs/"+id, nil, "", &out)
	if err != nil {
		var se *statusError
		if errors.As(err, &se) && se.Code == http.StatusNotFound {
			return nil, false, nil
		}
		return nil, false, err
	}
	return &out, true, nil
}

// health probes a peer's liveness endpoint.
func (sc *shardClient) health(ctx context.Context, peer string) error {
	defer sc.observe("health")()
	return sc.doJSON(ctx, http.MethodGet, peer+"/healthz", nil, "", nil)
}

// inventory lists the job-result and trace content addresses a peer
// already holds — the rejoin replay's source of truth.
func (sc *shardClient) inventory(ctx context.Context, peer string) (httpapi.InventoryResponse, error) {
	defer sc.observe("inventory")()
	var out httpapi.InventoryResponse
	err := sc.doJSON(ctx, http.MethodGet, peer+"/v1/cluster/inventory", nil, "", &out)
	return out, err
}

// putJob writes a completed job result through to a replica owner. The
// receiving engine re-derives the content address and rejects a
// mismatch, so a corrupt write-through cannot poison a replica's cache.
func (sc *shardClient) putJob(ctx context.Context, peer string, res *engine.JobResult) error {
	defer sc.observe("job_put")()
	body, err := json.Marshal(res)
	if err != nil {
		return err
	}
	return sc.doJSON(ctx, http.MethodPut, peer+"/v1/jobs/"+res.ID, body, "application/json", nil)
}

// traceInfo fetches an uploaded trace's metadata; found is false on a
// clean 404.
func (sc *shardClient) traceInfo(ctx context.Context, peer, id string) (engine.TraceInfo, bool, error) {
	defer sc.observe("trace_info")()
	var out engine.TraceInfo
	err := sc.doJSON(ctx, http.MethodGet, peer+"/v1/traces/"+id, nil, "", &out)
	if err != nil {
		var se *statusError
		if errors.As(err, &se) && se.Code == http.StatusNotFound {
			return engine.TraceInfo{}, false, nil
		}
		return engine.TraceInfo{}, false, err
	}
	return out, true, nil
}

// traceInfos lists a peer's uploaded traces.
func (sc *shardClient) traceInfos(ctx context.Context, peer string) ([]engine.TraceInfo, error) {
	defer sc.observe("trace_list")()
	var out struct {
		Traces []engine.TraceInfo `json:"traces"`
	}
	if err := sc.doJSON(ctx, http.MethodGet, peer+"/v1/traces", nil, "", &out); err != nil {
		return nil, err
	}
	return out.Traces, nil
}

// traceContent downloads a trace's canonical binary encoding; found is
// false on a clean 404.
func (sc *shardClient) traceContent(ctx context.Context, peer, id string) ([]byte, bool, error) {
	defer sc.observe("trace_content")()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/traces/"+id+"/content", nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := sc.hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr httpapi.APIError
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&apiErr)
		return nil, false, &statusError{Code: resp.StatusCode, Msg: apiErr.Error}
	}
	// Cap the download like every other read of untrusted bytes.
	blob, err := io.ReadAll(io.LimitReader(resp.Body, sc.maxForward+1))
	if err != nil {
		return nil, false, err
	}
	if int64(len(blob)) > sc.maxForward {
		return nil, false, fmt.Errorf("trace %s content from %s exceeds %d bytes", id, peer, sc.maxForward)
	}
	return blob, true, nil
}

// uploadTrace admits a canonical binary trace on a peer.
func (sc *shardClient) uploadTrace(ctx context.Context, peer string, blob []byte) (httpapi.UploadResponse, error) {
	defer sc.observe("trace_upload")()
	var out httpapi.UploadResponse
	err := sc.doJSON(ctx, http.MethodPost, peer+"/v1/traces", blob, "application/octet-stream", &out)
	return out, err
}

// spans fetches every span a node recorded under a trace ID — the
// coordinator's stitching read.
func (sc *shardClient) spans(ctx context.Context, peer, traceID string) ([]obs.Span, error) {
	defer sc.observe("spans")()
	var out httpapi.SpansResponse
	if err := sc.doJSON(ctx, http.MethodGet, peer+"/v1/spans/"+traceID, nil, "", &out); err != nil {
		return nil, err
	}
	return out.Spans, nil
}

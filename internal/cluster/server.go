package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"nbticache/internal/engine"
	"nbticache/internal/httpapi"
	"nbticache/internal/obs"
	"nbticache/internal/trace"
)

// ServerConfig bounds the coordinator server's per-request and retained
// state; the zero value selects the node server's defaults.
type ServerConfig struct {
	// MaxTraceBytes caps one trace-upload body routed through the
	// coordinator.
	MaxTraceBytes int64
	// RetainSweeps caps resident merged-sweep handles (oldest finished
	// evicted past it, exactly like the node server).
	RetainSweeps int
	// MaxConcurrentUploads bounds trace-upload decodes running at once
	// (the coordinator materialises the decoded accesses and the
	// canonical re-encoding before routing, so an ungated burst would
	// multiply the body cap in resident memory exactly like on a node);
	// excess uploads are turned away with 503.
	MaxConcurrentUploads int
	// EnablePprof mounts the runtime profiling handlers under
	// /debug/pprof/, exactly like the node server's option.
	EnablePprof bool
	// EventHeartbeat is the merged-sweep event stream's idle heartbeat
	// cadence; <= 0 selects httpapi.DefaultEventHeartbeat.
	EventHeartbeat time.Duration
	// DisableStreaming turns off GET /v1/sweeps/{id}/events (404),
	// exactly like the node server's option.
	DisableStreaming bool
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxTraceBytes <= 0 {
		c.MaxTraceBytes = httpapi.DefaultMaxTraceBytes
	}
	if c.RetainSweeps <= 0 {
		c.RetainSweeps = httpapi.DefaultRetainSweeps
	}
	if c.MaxConcurrentUploads <= 0 {
		c.MaxConcurrentUploads = httpapi.DefaultMaxConcurrentUploads
	}
	return c
}

// Server is the coordinator-mode HTTP surface: the same /v1 routes a
// node serves, but backed by a Coordinator instead of an engine —
// sweeps shard across the peers, trace uploads route to the content
// address's owning shard, and job/trace reads proxy to the owner (with
// a fallback scan, since re-routing may have landed work elsewhere).
type Server struct {
	coord *Coordinator
	cfg   ServerConfig

	// uploadSlots is a semaphore over concurrent upload decodes.
	uploadSlots chan struct{}

	sweeps    *httpapi.Registry[*Handle]
	streamMet *httpapi.StreamMetrics
}

// NewServer wraps a coordinator in the route table. The server shares
// the coordinator's telemetry bundle: /metrics renders its registry
// (plus the sweep-registry series registered here) and the spans
// endpoint stitches trees from its tracer and the shards'.
func NewServer(c *Coordinator, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		coord:       c,
		cfg:         cfg,
		uploadSlots: make(chan struct{}, cfg.MaxConcurrentUploads),
		sweeps:      httpapi.NewRegistry[*Handle](cfg.RetainSweeps),
	}
	s.streamMet = httpapi.NewStreamMetrics(c.tel.Metrics)
	if reg := c.tel.Metrics; reg != nil {
		retained := reg.Gauge("nbtiserved_cluster_sweeps_retained", "Merged sweep handles resident in the registry.")
		evicted := reg.Counter("nbtiserved_cluster_sweeps_evicted_total", "Finished merged sweeps evicted by retention.")
		reg.OnCollect(func() {
			r, e := s.sweeps.Counts()
			retained.Set(float64(r))
			evicted.Set(e)
		})
	}
	return s
}

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.submitSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.getSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.streamSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}/spans", s.getSweepSpans)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.cancelSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	mux.HandleFunc("POST /v1/traces", s.uploadTrace)
	mux.HandleFunc("GET /v1/traces", s.listTraces)
	mux.HandleFunc("GET /v1/traces/{id}", s.getTrace)
	mux.HandleFunc("POST /v1/cluster/join", s.joinCluster)
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /metrics", s.metrics)
	if s.cfg.EnablePprof {
		httpapi.RegisterPprof(mux)
	}
	return httpapi.WithMetrics(s.coord.tel.Metrics, mux)
}

// submitSweep accepts the same engine.SweepSpec body a node does, but
// shards the expanded jobs across the peers.
func (s *Server) submitSweep(w http.ResponseWriter, r *http.Request) {
	var spec engine.SweepSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, "bad sweep spec: %v", err)
		return
	}
	h, err := s.coord.Submit(r.Context(), spec)
	if err != nil {
		// A bad spec is the client's 422; an unreachable peer during the
		// submit-time trace verification is the cluster's 502, and worth
		// retrying.
		code := http.StatusUnprocessableEntity
		if errors.Is(err, ErrPeerUnavailable) {
			code = http.StatusBadGateway
		}
		httpapi.WriteError(w, code, "%v", err)
		return
	}
	s.sweeps.Add(h.ID, h)

	jobs := h.Jobs()
	ids := make([]string, len(jobs))
	for i, j := range jobs {
		ids[i] = j.ID()
	}
	httpapi.WriteJSON(w, http.StatusAccepted, httpapi.SubmitResponse{ID: h.ID, Total: len(jobs), JobIDs: ids})
}

// Adopt registers a resumed sweep handle (from Coordinator.Resume) in
// the server's registry, so clients polling a pre-restart sweep ID keep
// getting answers from the restarted coordinator.
func (s *Server) Adopt(h *Handle) {
	s.sweeps.Add(h.ID, h)
}

// joinCluster admits (or re-admits) an announcing node to the ring —
// the runtime half of elastic membership; nodes started with -join
// POST here until it succeeds.
func (s *Server) joinCluster(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, "bad join request: %v", err)
		return
	}
	joined, err := s.coord.Join(req.Peer)
	if err != nil {
		httpapi.WriteError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	st := s.coord.Stats()
	httpapi.WriteJSON(w, http.StatusOK, JoinResponse{Joined: joined, Peers: st.AlivePeers})
}

// getSweep reports the merged progress and any merged results.
func (s *Server) getSweep(w http.ResponseWriter, r *http.Request) {
	h, ok := s.sweeps.Lookup(r.PathValue("id"))
	if !ok {
		httpapi.WriteError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, httpapi.SweepResponse{Status: h.Status(), Jobs: h.Results()})
}

// streamSweep serves the merged sweep's completion feed — the
// client-facing half of the push dataplane: results merged from any
// shard (streamed or polled) re-emit here in merge order, in the same
// SSE wire format the shards speak, so one decoder serves both hops.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request) {
	if s.cfg.DisableStreaming {
		httpapi.WriteError(w, http.StatusNotFound, "sweep event streaming disabled")
		return
	}
	h, ok := s.sweeps.Lookup(r.PathValue("id"))
	if !ok {
		httpapi.WriteError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	httpapi.StreamSweep(w, r, h, s.cfg.EventHeartbeat, s.streamMet)
}

// cancelSweep stops a running merged sweep (per-shard sub-sweeps are
// cancelled best effort); merged results stay.
func (s *Server) cancelSweep(w http.ResponseWriter, r *http.Request) {
	h, ok := s.sweeps.Lookup(r.PathValue("id"))
	if !ok {
		httpapi.WriteError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	h.Cancel()
	httpapi.WriteJSON(w, http.StatusOK, h.Status())
}

// getJob proxies a job read to the content address's owning shard, then
// scans the other live peers (re-routing may have run it elsewhere).
func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	cands := s.coord.jobCandidates(id)
	if len(cands) == 0 {
		httpapi.WriteError(w, http.StatusServiceUnavailable, "no live shards")
		return
	}
	var probeErr error
	for i, peer := range cands {
		res, found, err := s.coord.client.job(r.Context(), peer, id)
		if err != nil {
			probeErr = err
			continue
		}
		if found {
			if i > 0 {
				// Served by a ring successor, not the primary owner:
				// replicated ownership (or a past re-route) paying off.
				s.coord.replicaReads.Add(1)
			}
			httpapi.WriteJSON(w, http.StatusOK, res)
			return
		}
	}
	if probeErr != nil {
		// Some peer could not answer, so absence is unproven: a 404
		// here would read as a permanent miss for a result that may
		// exist on the shard that just failed to answer.
		httpapi.WriteError(w, http.StatusBadGateway, "locating job %q: %v", id, probeErr)
		return
	}
	httpapi.WriteError(w, http.StatusNotFound, "no completed job %q", id)
}

// uploadTrace decodes the body just enough to learn its content
// address, then routes the canonical bytes to the owning shard. The
// response is the shard's: 201 on first admission, 200 on an
// idempotent re-upload.
func (s *Server) uploadTrace(w http.ResponseWriter, r *http.Request) {
	select {
	case s.uploadSlots <- struct{}{}:
		defer func() { <-s.uploadSlots }()
	default:
		w.Header().Set("Retry-After", "1")
		httpapi.WriteError(w, http.StatusServiceUnavailable, "too many concurrent trace uploads (limit %d)", s.cfg.MaxConcurrentUploads)
		return
	}
	tr, ok := httpapi.ReadTraceUpload(w, r, s.cfg.MaxTraceBytes)
	if !ok {
		return
	}
	if err := tr.Validate(); err != nil {
		httpapi.WriteError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if tr.Len() == 0 {
		httpapi.WriteError(w, http.StatusUnprocessableEntity, "trace %q has no accesses", tr.Name)
		return
	}
	id, _, err := engine.TraceContentID(tr)
	if err != nil {
		httpapi.WriteError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	owner, ok := s.coord.OwnerOf(id)
	if !ok {
		httpapi.WriteError(w, http.StatusServiceUnavailable, "no live shards")
		return
	}
	var canon bytes.Buffer
	if err := trace.WriteBinary(&canon, tr); err != nil {
		httpapi.WriteError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	up, err := s.coord.client.uploadTrace(r.Context(), owner, canon.Bytes())
	if err != nil {
		// A shard's own rejection (413/422/507...) passes through with
		// its status; a transport failure is the coordinator's 502.
		var se *statusError
		if errors.As(err, &se) {
			httpapi.WriteJSON(w, se.Code, httpapi.APIError{Error: se.Msg})
			return
		}
		httpapi.WriteError(w, http.StatusBadGateway, "shard %s: %v", owner, err)
		return
	}
	code := http.StatusOK
	if up.Created {
		code = http.StatusCreated
	}
	httpapi.WriteJSON(w, code, up)
}

// getTrace proxies a trace-metadata read to the peer holding it.
func (s *Server) getTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	_, info, found, err := s.coord.locateTrace(r.Context(), id)
	if !found {
		if err != nil {
			// A peer could not be checked: absence is unproven.
			httpapi.WriteError(w, http.StatusBadGateway, "locating trace %q: %v", id, err)
			return
		}
		httpapi.WriteError(w, http.StatusNotFound, "no trace %q", id)
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, info)
}

// listTraces merges the live peers' listings, deduplicated by content
// address (a forwarded trace is resident on several shards but is one
// trace).
func (s *Server) listTraces(w http.ResponseWriter, r *http.Request) {
	peers := s.coord.alivePeers()
	if len(peers) == 0 {
		// An empty listing would claim the cluster holds nothing; with
		// every shard unreachable that is unproven.
		httpapi.WriteError(w, http.StatusServiceUnavailable, "no live shards")
		return
	}
	seen := make(map[string]bool)
	var infos []engine.TraceInfo
	for _, peer := range peers {
		list, err := s.coord.client.traceInfos(r.Context(), peer)
		if err != nil {
			// A partial listing would read as "those traces are gone";
			// absence is unproven while any shard cannot answer.
			httpapi.WriteError(w, http.StatusBadGateway, "listing traces on %s: %v", peer, err)
			return
		}
		for _, info := range list {
			if !seen[info.ID] {
				seen[info.ID] = true
				infos = append(infos, info)
			}
		}
	}
	httpapi.WriteJSON(w, http.StatusOK, map[string]any{"total": len(infos), "traces": infos})
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	st := s.coord.Stats()
	httpapi.WriteJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "mode": "coordinator",
		"peers": st.Peers, "alive_peers": st.AlivePeers,
	})
}

// metrics serves the telemetry registry in Prometheus text exposition
// format (plus a JSON variant via ?format=json). The registry's collect
// hooks mirror the coordinator's Stats — per-shard {peer="..."} series
// included — and the sweep registry's counts at scrape time, so every
// series the hand-rolled exposition used to carry is still here under
// the same names, alongside the request/dispatch histogram families.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		retained, evicted := s.sweeps.Counts()
		httpapi.WriteJSON(w, http.StatusOK, struct {
			Stats
			SweepsRetained int    `json:"sweeps_retained"`
			SweepsEvicted  uint64 `json:"sweeps_evicted"`
		}{s.coord.Stats(), retained, evicted})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.coord.tel.Metrics.WriteText(w)
}

// getSweepSpans serves the stitched span tree of one merged sweep: the
// coordinator's own spans (sweep root, per-dispatch, trace forwards)
// plus every span fragment the live shards recorded under the same
// trace ID — one tree spanning the whole distributed execution,
// correlated by the trace ID the dispatch requests propagated. Shards
// that fail to answer are skipped (the tree is a diagnostic, and a
// degraded cluster is exactly when it is wanted); dead peers' fragments
// are unreachable and simply absent.
func (s *Server) getSweepSpans(w http.ResponseWriter, r *http.Request) {
	h, ok := s.sweeps.Lookup(r.PathValue("id"))
	if !ok {
		httpapi.WriteError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	tid := h.TraceID()
	if tid == "" {
		httpapi.WriteError(w, http.StatusNotFound, "sweep %q has no trace (tracing disabled)", h.ID)
		return
	}
	spans := s.coord.tel.Tracer.Spans(tid)
	seen := make(map[string]bool, len(spans))
	for _, sp := range spans {
		seen[sp.SpanID] = true
	}
	for _, peer := range s.coord.alivePeers() {
		remote, err := s.coord.client.spans(r.Context(), peer, tid)
		if err != nil {
			continue
		}
		for _, sp := range remote {
			if !seen[sp.SpanID] {
				seen[sp.SpanID] = true
				spans = append(spans, sp)
			}
		}
	}
	obs.SortSpans(spans)
	httpapi.WriteJSON(w, http.StatusOK, httpapi.SpansResponse{TraceID: tid, Spans: spans})
}

// jobCandidates orders the live peers for a job lookup: owner first,
// then ring successors (where a re-routed job would have run).
func (c *Coordinator) jobCandidates(id string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Owners(id, c.ring.Len())
}

// alivePeers lists the peers still in the ring, sorted.
func (c *Coordinator) alivePeers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Nodes()
}

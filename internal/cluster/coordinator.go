package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nbticache/internal/cas"
	"nbticache/internal/engine"
	"nbticache/internal/obs"
)

// Options configures a Coordinator.
type Options struct {
	// Peers are the initial shard base URLs ("http://host:port"). At
	// least one is required; duplicates collapse. Membership is elastic
	// past this seed: peers that fail are removed from the ring (their
	// keys fall to the next owner) but stay known, the health-check
	// loop re-admits them when they answer again, and Join adds new
	// peers at runtime.
	Peers []string
	// Client issues the shard requests; nil selects a default with a
	// 2-minute per-request timeout.
	Client *http.Client
	// Replicas is the ring's virtual-node count per peer; <= 0 means
	// DefaultReplicas.
	Replicas int
	// PollInterval paces per-shard sweep polling; <= 0 means
	// DefaultPollInterval.
	PollInterval time.Duration
	// MaxForwardBytes caps one forwarded trace's canonical encoding;
	// <= 0 means twice the node upload default. Size it to match the
	// shards' -max-trace-bytes, or large legitimately-admitted traces
	// become unforwardable.
	MaxForwardBytes int64
	// Telemetry is the coordinator's metrics registry and tracer bundle.
	// nil builds a live obs.New(); pass obs.Nop() to run uninstrumented.
	Telemetry *obs.Telemetry
	// Logger receives the coordinator's structured warnings (peer
	// removals, routing stalls); nil discards them.
	Logger *slog.Logger
	// HealthInterval paces the membership health-check loop that probes
	// every known peer — evicted ones included, which is the rejoin
	// path. 0 means DefaultHealthInterval; negative disables the loop
	// (membership then changes only through dispatch failures and Join).
	HealthInterval time.Duration
	// EvictAfterProbes is how many consecutive failed health probes
	// evict a live peer from the ring. One transient timeout or 5xx
	// must never cost a healthy peer its keyspace share, so this is
	// always at least 2; <= 0 means DefaultEvictAfterProbes.
	EvictAfterProbes int
	// OwnerReplicas turns Ring.Owners succession into replicated
	// ownership: every merged job result is written through to this
	// many ring owners, so one node dying loses no cached work. <= 1
	// disables replication (the dispatch owner alone holds the result).
	OwnerReplicas int
	// DataDir persists the coordinator's sweep state (spec, shard
	// assignments, merged job IDs — a versioned blob per in-flight
	// sweep under <DataDir>/sweeps) so a restarted coordinator can
	// Resume the sweeps a crash orphaned. Empty means memory-only.
	DataDir string
}

// DefaultPollInterval paces shard sweep polling when
// Options.PollInterval is zero.
const DefaultPollInterval = 200 * time.Millisecond

// errTraceUnavailable marks a referenced trace that no live peer holds:
// the jobs referencing it fail permanently instead of bouncing between
// shards.
var errTraceUnavailable = errors.New("cluster: trace unavailable")

// ErrPeerUnavailable wraps errors where the coordinator could not reach
// (or could not get a usable answer from) a peer, as opposed to the
// request itself being wrong. The HTTP layer maps these to 5xx so
// clients retry instead of blaming their spec.
var ErrPeerUnavailable = errors.New("cluster: peer unavailable")

// shardState is one peer's routing bookkeeping, guarded by the
// coordinator mutex. A peer that fails keeps its entry with alive=false
// — that record is what the health loop re-admits on recovery.
type shardState struct {
	alive bool
	// probeFails counts consecutive failed health probes; eviction
	// waits for evictAfter of them, so a single transient timeout or
	// 5xx never costs a healthy peer its ring share.
	probeFails int
	routed     uint64
	// retried counts jobs dispatched to this peer as a re-route (the
	// job had already been dispatched elsewhere).
	retried uint64
	merged  uint64
}

// Coordinator shards sweeps across nbtiserved peers: it expands a
// SweepSpec locally, assigns each job to the consistent-hash owner of
// its content address, forwards any referenced uploaded traces to the
// owning shard on demand, submits one sub-sweep per shard, merges the
// per-shard results into a single Handle, and re-routes jobs from a
// failed peer to the next ring owner. It is safe for concurrent use.
type Coordinator struct {
	client     *shardClient
	poll       time.Duration
	health     time.Duration
	evictAfter int
	replicas   int // owner-replication factor (<= 1: no replication)
	tel        *obs.Telemetry
	log        *slog.Logger
	met        coordMetrics

	lifeCtx  context.Context
	lifeStop context.CancelFunc
	wg       sync.WaitGroup
	closed   atomic.Bool
	seq      atomic.Uint64

	// stateStore persists one versioned sweep-state blob per in-flight
	// sweep (nil without Options.DataDir).
	stateStore cas.Store

	// forwardSlots is a semaphore over in-flight trace forwards;
	// replicaSlots bounds replica write-throughs the same way.
	forwardSlots chan struct{}
	replicaSlots chan struct{}

	mu     sync.Mutex
	ring   *Ring
	shards map[string]*shardState
	// handles tracks the open (still-routing) sweeps, so a rejoining
	// peer's inventory replay knows which pending slots it can resolve.
	handles map[string]*Handle

	sweepsTotal     atomic.Uint64
	jobsRouted      atomic.Uint64
	jobsRetried     atomic.Uint64
	jobsMerged      atomic.Uint64
	jobsFailed      atomic.Uint64
	tracesForwarded atomic.Uint64
	peerFailures    atomic.Uint64

	ringJoins            atomic.Uint64
	ringRejoins          atomic.Uint64
	replicaWrites        atomic.Uint64
	replicaWriteFailures atomic.Uint64
	replicaReads         atomic.Uint64
	sweepsResumed        atomic.Uint64
	jobsRecovered        atomic.Uint64

	// Push-dataplane counters: streams opened to shards, job results
	// merged off those streams, and dispatches that degraded to the
	// poll loop (stream unavailable or severed).
	streamsOpened  atomic.Uint64
	eventsStreamed atomic.Uint64
	fallbackPolls  atomic.Uint64
}

// New builds a coordinator over the given peers. The peers are not
// contacted here; an unreachable peer surfaces on the first sweep that
// routes to it (its jobs re-route to the next ring owner).
func New(o Options) (*Coordinator, error) {
	peers := make([]string, 0, len(o.Peers))
	seen := make(map[string]bool)
	for _, raw := range o.Peers {
		p, err := normalizePeer(raw)
		if err != nil {
			if strings.TrimSpace(raw) == "" {
				continue
			}
			return nil, err
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		peers = append(peers, p)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers")
	}
	if o.PollInterval <= 0 {
		o.PollInterval = DefaultPollInterval
	}
	if o.HealthInterval == 0 {
		o.HealthInterval = DefaultHealthInterval
	}
	if o.EvictAfterProbes <= 0 {
		o.EvictAfterProbes = DefaultEvictAfterProbes
	}
	if o.EvictAfterProbes < 2 {
		// A single failed probe is indistinguishable from one dropped
		// packet; eviction below two consecutive failures would churn
		// the ring on noise.
		o.EvictAfterProbes = 2
	}
	if o.Telemetry == nil {
		o.Telemetry = obs.New()
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	var stateStore cas.Store
	if o.DataDir != "" {
		var err error
		stateStore, err = cas.OpenDisk(filepath.Join(o.DataDir, "sweeps"), cas.Limits{})
		if err != nil {
			return nil, fmt.Errorf("cluster: opening sweep-state dir: %w", err)
		}
	}
	ctx, stop := context.WithCancel(context.Background())
	c := &Coordinator{
		client:       newShardClient(o.Client, o.MaxForwardBytes),
		poll:         o.PollInterval,
		health:       o.HealthInterval,
		evictAfter:   o.EvictAfterProbes,
		replicas:     o.OwnerReplicas,
		tel:          o.Telemetry,
		log:          o.Logger,
		lifeCtx:      ctx,
		lifeStop:     stop,
		stateStore:   stateStore,
		ring:         NewRing(o.Replicas, peers...),
		shards:       make(map[string]*shardState, len(peers)),
		handles:      make(map[string]*Handle),
		forwardSlots: make(chan struct{}, maxConcurrentForwards),
		replicaSlots: make(chan struct{}, maxConcurrentReplicas),
	}
	for _, p := range peers {
		c.shards[p] = &shardState{alive: true}
	}
	c.registerMetrics()
	if c.health > 0 {
		c.wg.Add(1)
		go c.healthLoop()
	}
	return c, nil
}

// normalizePeer canonicalises one peer base URL the way New always has:
// trimmed, no trailing slash, http(s) scheme with a host.
func normalizePeer(p string) (string, error) {
	p = strings.TrimRight(strings.TrimSpace(p), "/")
	u, err := url.Parse(p)
	if p == "" || err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("cluster: peer %q is not an http(s) base URL", p)
	}
	return p, nil
}

// Telemetry exposes the coordinator's telemetry bundle, so the HTTP
// layer can serve its registry and tracer.
func (c *Coordinator) Telemetry() *obs.Telemetry { return c.tel }

// Close cancels every in-flight sweep and waits for their routing
// goroutines to drain. Close is idempotent; Submit after Close fails.
func (c *Coordinator) Close() {
	// The mutex orders this Swap against Submit's locked closed-check +
	// wg.Add pair: any Submit that observed closed=false has already
	// registered its routing goroutine by the time we can reach Wait,
	// so Close never returns with a sweep still running (and Add never
	// races a completed Wait).
	c.mu.Lock()
	already := c.closed.Swap(true)
	c.mu.Unlock()
	if already {
		return
	}
	c.lifeStop()
	c.wg.Wait()
	if c.stateStore != nil {
		// The persist loops have drained: every interrupted sweep has
		// its final checkpoint on disk for the next coordinator's Resume.
		_ = c.stateStore.Close()
	}
}

// Peers lists the configured peers, sorted.
func (c *Coordinator) Peers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.shards))
	for p := range c.shards {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// OwnerOf returns the live peer owning a content address (a job or
// trace ID), or false when every peer has failed.
func (c *Coordinator) OwnerOf(key string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Owner(key)
}

func (c *Coordinator) ringSnapshot() *Ring {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Clone()
}

// ringLen reads the live-peer count without cloning the ring.
func (c *Coordinator) ringLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Len()
}

// failPeer removes a peer from the ring after a transport-level (or
// 5xx) failure on the dispatch path; its keyspace share falls to the
// next ring owners so the routing loop can make progress immediately.
// The peer stays known: the health-check loop re-admits it the moment
// it answers a probe again.
func (c *Coordinator) failPeer(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.shards[peer]; st != nil && st.alive {
		st.alive = false
		st.probeFails = 0
		c.mutateRing(ringRemove, peer)
		c.peerFailures.Add(1)
		c.log.Warn("removing failed peer from ring",
			"peer", peer, "peers_alive", c.ring.Len())
	}
}

// Submit expands the sweep, verifies every referenced uploaded trace is
// held by some live peer, and starts the routing loop, returning the
// merged handle immediately. ctx bounds expansion and the trace check
// only; the sweep's own lifetime is governed by the coordinator (Close)
// and the handle (Cancel).
func (c *Coordinator) Submit(ctx context.Context, spec engine.SweepSpec) (*Handle, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("cluster: coordinator closed")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	jobs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	// Mirror the engine's submit-time trace validation: rejecting a
	// sweep whose workload no shard holds beats failing its jobs one by
	// one mid-flight.
	seen := make(map[string]bool)
	for _, j := range jobs {
		if j.TraceID == "" || seen[j.TraceID] {
			continue
		}
		seen[j.TraceID] = true
		if _, _, found, err := c.locateTrace(ctx, j.TraceID); !found {
			if err != nil {
				// Some peer could not be checked: this is the cluster's
				// problem, not a bad reference from the client.
				// Both %w: callers match ErrPeerUnavailable for the retry
				// decision and the cause (e.g. context.DeadlineExceeded)
				// for diagnosis.
				return nil, fmt.Errorf("%w: cannot verify trace %q: %w", ErrPeerUnavailable, j.TraceID, err)
			}
			return nil, fmt.Errorf("cluster: unknown trace %q (upload it first)", j.TraceID)
		}
	}
	sctx, cancel := context.WithCancel(c.lifeCtx)
	h := newHandle(fmt.Sprintf("csweep-%d", c.seq.Add(1)), spec, jobs, sctx, cancel)
	c.mu.Lock()
	if c.closed.Load() {
		// Close won the race since the check above; registering a
		// routing goroutine now would slip past its Wait.
		c.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("cluster: coordinator closed")
	}
	c.wg.Add(1)
	c.handles[h.ID] = h
	if c.stateStore != nil {
		c.wg.Add(1) // the sweep's persist loop, in the same Close barrier
	}
	c.mu.Unlock()
	if c.stateStore != nil {
		go c.persistLoop(h)
	}
	c.sweepsTotal.Add(1)
	// The sweep's root span: it joins the submitter's trace when ctx
	// carries one (a tracing client sent traceparent) and roots a new
	// trace otherwise. Every dispatch span — and, across the HTTP hop,
	// every shard-side engine span — descends from it, which is what lets
	// the spans endpoint stitch one tree for the whole distributed sweep.
	_, h.span = c.tel.Tracer.StartSpan(ctx, "coordinator.sweep",
		"sweep_id", h.ID, "jobs", itoa(len(jobs)))
	h.tsc = h.span.Context()
	go c.run(h)
	return h, nil
}

// Sweep submits a sweep and blocks until the merged result is complete
// (per-job failures are isolated, never aborting the batch).
func (c *Coordinator) Sweep(ctx context.Context, spec engine.SweepSpec) (*engine.SweepResult, error) {
	h, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	res, err := h.Wait(ctx)
	if err != nil {
		h.Cancel()
		return nil, err
	}
	return res, nil
}

// maxStalledRounds bounds routing rounds that neither resolve a job
// nor shrink the ring (every shard answering "not right now"): the
// loop backs off exponentially between such rounds — poll×2, ×4, …,
// about 12 seconds in total at the default cadence, enough for an
// upload-gate or store-full condition to clear — and fails the jobs,
// never the peers, once the budget is spent.
const maxStalledRounds = 5

// run is one sweep's routing loop: group unresolved jobs by ring owner,
// dispatch the groups concurrently, and repeat with the survivors'
// ring until every slot resolves. Re-dispatch rounds follow either a
// peer failure (the ring shrinks, so those rounds are bounded by the
// peer count) or a transient shard refusal (bounded by
// maxStalledRounds with a backoff between attempts).
func (c *Coordinator) run(h *Handle) {
	defer c.wg.Done()
	defer func() {
		c.mu.Lock()
		delete(c.handles, h.ID)
		c.mu.Unlock()
	}()
	stalled := 0
	for h.ctx.Err() == nil {
		pending := h.unresolved()
		if len(pending) == 0 {
			return
		}
		ring := c.ringSnapshot()
		if ring.Len() == 0 {
			c.failSlots(h, pending, errors.New("cluster: no live shards"))
			return
		}
		groups := make(map[string][]int)
		for _, slot := range pending {
			owner, _ := ring.Owner(h.jobs[slot].ID())
			groups[owner] = append(groups[owner], slot)
		}
		doneBefore := h.Status()
		var wg sync.WaitGroup
		for peer, slots := range groups {
			wg.Add(1)
			go func(peer string, slots []int) {
				defer wg.Done()
				c.dispatch(h, peer, slots)
			}(peer, slots)
		}
		wg.Wait()
		after := h.Status()
		progressed := after.Completed+after.Failed+after.Canceled >
			doneBefore.Completed+doneBefore.Failed+doneBefore.Canceled
		if progressed || c.ringLen() < ring.Len() {
			stalled = 0
			continue
		}
		if stalled++; stalled > maxStalledRounds {
			c.failSlots(h, h.unresolved(), fmt.Errorf("cluster: no progress after %d rounds (shards busy or refusing)", stalled))
			return
		}
		select {
		case <-h.ctx.Done():
		case <-time.After(c.poll * (1 << stalled)):
		}
	}
	// Cancelled (handle or coordinator shutdown): settle the rest.
	for _, slot := range h.unresolved() {
		spec := h.jobs[slot]
		h.record(slot, &engine.JobResult{
			ID: spec.ID(), Spec: spec,
			Err: context.Canceled.Error(), Canceled: true,
		})
	}
}

// dispatch routes one group of jobs to its owning shard: forward any
// referenced traces the shard is missing, submit the sub-sweep, consume
// its completion stream (degrading to the poll loop when the shard has
// no stream), and merge results into the handle as they resolve. On a
// peer failure the unmerged slots stay unresolved — the routing loop
// re-routes them on the post-failure ring.
func (c *Coordinator) dispatch(h *Handle, peer string, slots []int) {
	ctx := h.ctx
	if c.met.dispatch != nil {
		start := time.Now()
		defer func() { c.met.dispatch.Observe(time.Since(start).Seconds()) }()
	}
	if h.tsc.Valid() {
		// The dispatch span parents the shard's engine spans: the derived
		// context carries it into every shard request, where doJSON
		// injects it as the traceparent header.
		var span *obs.ActiveSpan
		ctx, span = c.tel.Tracer.StartSpan(obs.ContextWith(ctx, h.tsc),
			"coordinator.dispatch", "peer", peer, "sweep_id", h.ID, "jobs", itoa(len(slots)))
		defer span.End()
	}
	// Every distinct uploaded trace this group references must be
	// resident on the shard before the sub-sweep submits.
	need := make(map[string]bool)
	for _, s := range slots {
		if id := h.jobs[s].TraceID; id != "" {
			need[id] = true
		}
	}
	for id := range need {
		_, found, err := c.client.traceInfo(ctx, peer, id)
		if err == nil && !found {
			err = c.forwardTrace(ctx, peer, id)
		}
		switch {
		case err == nil:
		case errors.Is(err, errTraceUnavailable), isPermanent(err):
			// The trace is gone everywhere (or the shard rejects it):
			// re-routing cannot help the jobs that reference it.
			var bad, rest []int
			for _, s := range slots {
				if h.jobs[s].TraceID == id {
					bad = append(bad, s)
				} else {
					rest = append(rest, s)
				}
			}
			c.failSlots(h, bad, err)
			slots = rest
		case isTransient(err):
			// A healthy shard saying "not right now" (upload gate,
			// full trace store): leave the slots pending for the next
			// backoff round instead of condemning the peer.
			return
		default:
			if ctx.Err() == nil {
				c.failPeer(peer)
			}
			return
		}
	}
	if len(slots) == 0 {
		return
	}

	jobs := make([]engine.JobSpec, len(slots))
	for i, s := range slots {
		jobs[i] = h.jobs[s]
	}
	sub, err := c.client.submit(ctx, peer, engine.SweepSpec{Name: h.ID, Jobs: jobs})
	if err != nil {
		switch {
		case ctx.Err() != nil:
		case isTransient(err): // pending; the routing loop backs off and retries
		case isPermanent(err) && strings.Contains(err.Error(), "unknown trace"):
			// A direct DELETE on the shard can land between our
			// residency probe and this submit. The trace may still be
			// resident elsewhere, so leave the slots pending: the next
			// round re-probes and re-forwards (and fails them through
			// errTraceUnavailable if it is truly gone everywhere).
			return
		case isPermanent(err):
			c.failSlots(h, slots, err)
		default:
			c.failPeer(peer)
		}
		return
	}
	// Routed/retried count accepted dispatches only — a group turned
	// back before the sub-sweep submitted (trace-forward stall, gate
	// refusal) reached no shard, and counting it would let a few
	// stalled rounds inflate the counters past the job count.
	var retried int
	for _, s := range slots {
		h.attempts[s]++
		if h.attempts[s] > 1 {
			retried++
		}
	}
	h.setAssigned(slots, peer)
	c.jobsRouted.Add(uint64(len(slots)))
	c.jobsRetried.Add(uint64(retried))
	c.mu.Lock()
	if st := c.shards[peer]; st != nil {
		st.routed += uint64(len(slots))
		st.retried += uint64(retried)
	}
	c.mu.Unlock()

	// Push first: consume the shard's completion stream and merge events
	// the moment they arrive, so sweep latency is the shards' compute
	// time rather than a multiple of the poll cadence. The poll loop
	// below survives as the degraded path — taken when the shard has no
	// stream (it predates streaming, or runs with it disabled) or the
	// stream is severed mid-sweep — with the PR 9 failure semantics
	// (eviction recovery, transient backoff, peer failure) intact, since
	// its first poll re-classifies whatever condition broke the stream.
	if c.streamSubSweep(ctx, h, peer, sub.ID) {
		return
	}
	c.fallbackPolls.Add(1)

	ticker := time.NewTicker(c.poll)
	defer ticker.Stop()
	for {
		sw, err := c.client.sweep(ctx, peer, sub.ID)
		if err != nil {
			var se *statusError
			switch {
			case ctx.Err() != nil:
				c.cancelRemote(peer, sub.ID)
			case errors.As(err, &se) && se.Code == http.StatusNotFound:
				// The sub-sweep finished and was evicted by the shard's
				// retention between polls. The results are not lost —
				// they live in the shard's content-addressed job cache —
				// so recover them individually; anything unrecovered
				// stays pending and re-dispatches.
				c.recoverJobs(ctx, h, peer, slots)
			case isTransient(err): // pending; the routing loop backs off and retries
			case isPermanent(err):
				c.failSlots(h, slots, err) // resolved slots are screened by record's exactly-once check
			default:
				c.failPeer(peer)
			}
			return
		}
		for _, jr := range sw.Jobs {
			if jr == nil || jr.Canceled {
				// A shard-side cancellation (its engine shutting down)
				// is not an answer: the slot stays unresolved and
				// re-routes.
				continue
			}
			slot, ok := h.slot[jr.ID]
			if !ok {
				continue
			}
			c.mergeResult(h, slot, peer, jr, false)
		}
		if sw.Status.State != "running" {
			return
		}
		select {
		case <-ctx.Done():
			c.cancelRemote(peer, sub.ID)
			return
		case <-ticker.C:
		}
	}
}

// streamSubSweep consumes one shard sub-sweep's completion stream,
// merging job events into the handle as they arrive. It reports whether
// the dispatch is settled — the sub-sweep reached a terminal state (the
// `done` frame) or the sweep was cancelled. false means the stream
// could not be opened or was severed mid-sweep; the caller degrades to
// the poll loop, whose error classification preserves the established
// recovery semantics for whatever condition broke the stream.
func (c *Coordinator) streamSubSweep(ctx context.Context, h *Handle, peer, subID string) bool {
	es, err := c.client.openEvents(ctx, peer, subID, 0)
	if err != nil {
		if ctx.Err() != nil {
			c.cancelRemote(peer, subID)
			return true
		}
		return false
	}
	defer es.Close()
	c.streamsOpened.Add(1)
	for {
		frame, err := es.next()
		if err != nil {
			if ctx.Err() != nil {
				c.cancelRemote(peer, subID)
				return true
			}
			return false // severed mid-sweep: degrade to polling
		}
		switch frame.Event {
		case "job":
			ev, err := frame.JobEvent()
			if err != nil || ev.Job == nil || ev.Job.Canceled {
				// A shard-side cancellation is not an answer (the slot
				// stays unresolved and re-routes, exactly as on the poll
				// path); a malformed frame is skipped — later frames, the
				// done status, or the poll fallback still converge.
				continue
			}
			slot, ok := h.slot[ev.Job.ID]
			if !ok {
				continue
			}
			if c.mergeResult(h, slot, peer, ev.Job, false) {
				c.eventsStreamed.Add(1)
			}
		case "done":
			if st, err := frame.DoneStatus(); err == nil && st.State != "running" {
				return true
			}
		}
	}
}

// recoverJobs resolves a dispatch group's jobs directly from a shard's
// content-addressed job cache, for when the sub-sweep handle itself is
// gone (evicted by retention). Unrecoverable slots stay pending.
func (c *Coordinator) recoverJobs(ctx context.Context, h *Handle, peer string, slots []int) {
	for _, s := range slots {
		res, found, err := c.client.job(ctx, peer, h.jobs[s].ID())
		if err != nil || !found {
			continue
		}
		c.mergeResult(h, s, peer, res, false)
	}
}

// failSlots settles slots with a permanent per-job error (the engine's
// error-isolation contract: failures never abort the sweep).
func (c *Coordinator) failSlots(h *Handle, slots []int, err error) {
	for _, s := range slots {
		spec := h.jobs[s]
		if h.record(s, &engine.JobResult{ID: spec.ID(), Spec: spec, Err: err.Error()}) {
			c.jobsFailed.Add(1)
		}
	}
}

// cancelRemote best-effort-cancels a shard sub-sweep whose merged sweep
// is being cancelled, so abandoned jobs stop occupying the shard's
// worker pool.
func (c *Coordinator) cancelRemote(peer, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = c.client.cancelSweep(ctx, peer, id)
}

// locateTrace finds a live peer holding an uploaded trace: the ring
// owner first (where coordinator-routed uploads land), then every other
// live peer. Peers that fail the probe are skipped, not condemned — a
// liveness verdict from a read probe would be too eager — but the last
// probe failure is returned alongside found=false, so a caller can
// distinguish "no peer has it" (every probe answered 404) from "could
// not check" and not blame the client for a transient blip.
func (c *Coordinator) locateTrace(ctx context.Context, id string) (peer string, info engine.TraceInfo, found bool, err error) {
	cands := c.traceCandidates(id)
	if len(cands) == 0 {
		// An empty ring proves nothing about the trace: the data may
		// well exist on the unreachable shards.
		return "", engine.TraceInfo{}, false, fmt.Errorf("%w: no live shards", ErrPeerUnavailable)
	}
	var probeErr error
	for _, p := range cands {
		info, ok, err := c.client.traceInfo(ctx, p, id)
		if err != nil {
			if ctx.Err() != nil {
				return "", engine.TraceInfo{}, false, err
			}
			probeErr = fmt.Errorf("probing %s: %w", p, err)
			continue
		}
		if ok {
			return p, info, true, nil
		}
	}
	return "", engine.TraceInfo{}, false, probeErr
}

// traceCandidates orders the live peers for a trace lookup in ring
// succession order from the trace's position: the owner (where
// coordinator-routed uploads land) first, then its fallbacks.
func (c *Coordinator) traceCandidates(id string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Owners(id, c.ring.Len())
}

// maxConcurrentForwards bounds trace forwards in flight across all
// sweeps: each buffers a full canonical encoding for the download and
// re-upload, so an ungated fan-out would multiply tens of MiB per
// dispatch goroutine.
const maxConcurrentForwards = 4

// forwardTrace copies an uploaded trace to target from whichever live
// peer holds it, preserving the content address (the canonical binary
// bytes are re-admitted, so the destination re-derives the same ID).
func (c *Coordinator) forwardTrace(ctx context.Context, target, id string) error {
	ctx, span := c.tel.Tracer.StartSpan(ctx, "coordinator.forward_trace",
		"trace_id", id, "target", target)
	defer span.End()
	select {
	case c.forwardSlots <- struct{}{}:
		defer func() { <-c.forwardSlots }()
	case <-ctx.Done():
		return ctx.Err()
	}
	for _, src := range c.traceCandidates(id) {
		if src == target {
			continue
		}
		blob, found, err := c.client.traceContent(ctx, src, id)
		if err != nil || !found {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			continue // missing or unreachable there; try the next holder
		}
		up, err := c.client.uploadTrace(ctx, target, blob)
		if err != nil {
			return err
		}
		if up.ID != id {
			return fmt.Errorf("cluster: trace %s re-addressed as %s on %s", id, up.ID, target)
		}
		c.tracesForwarded.Add(1)
		return nil
	}
	return fmt.Errorf("%w: %q not held by any live peer", errTraceUnavailable, id)
}

// ShardStats is one peer's routing counters.
type ShardStats struct {
	Peer  string `json:"peer"`
	Alive bool   `json:"alive"`
	// Routed counts job dispatches accepted by this peer; Retried
	// counts the ones that re-dispatched an already-routed job (a
	// re-route after a peer failure, or a retry after a transient
	// refusal); Merged counts job results merged from this peer.
	Routed  uint64 `json:"routed"`
	Retried uint64 `json:"retried"`
	Merged  uint64 `json:"merged"`
}

// Stats is a snapshot of the coordinator counters, served by /metrics
// in coordinator mode. JobsRouted counts every accepted dispatch of a
// job to a shard and JobsRetried the ones beyond a job's first, so
// JobsRouted - JobsRetried equals the number of distinct jobs
// dispatched; a fully merged sweep contributes exactly its job count
// to JobsMerged.
type Stats struct {
	Peers           int          `json:"peers"`
	AlivePeers      int          `json:"alive_peers"`
	SweepsTotal     uint64       `json:"sweeps_total"`
	JobsRouted      uint64       `json:"jobs_routed"`
	JobsRetried     uint64       `json:"jobs_retried"`
	JobsMerged      uint64       `json:"jobs_merged"`
	JobsFailed      uint64       `json:"jobs_failed"`
	TracesForwarded uint64       `json:"traces_forwarded"`
	PeerFailures    uint64       `json:"peer_failures"`
	Shards          []ShardStats `json:"shards"`

	// Elastic-membership and HA counters. RingJoins counts new peers
	// admitted at runtime, RingRejoins health-loop re-admissions of a
	// previously evicted peer. ReplicaWrites/ReplicaWriteFailures count
	// replicated result write-throughs; ReplicaReads counts job reads
	// served by a non-primary ring owner. SweepsResumed counts sweeps a
	// restarted coordinator picked back up, and JobsRecovered the slots
	// those sweeps (or a rejoining peer's inventory replay) resolved
	// from an existing cache entry instead of a fresh dispatch.
	RingJoins            uint64 `json:"ring_joins"`
	RingRejoins          uint64 `json:"ring_rejoins"`
	ReplicaWrites        uint64 `json:"replica_writes"`
	ReplicaWriteFailures uint64 `json:"replica_write_failures"`
	ReplicaReads         uint64 `json:"replica_reads"`
	SweepsResumed        uint64 `json:"sweeps_resumed"`
	JobsRecovered        uint64 `json:"jobs_recovered"`

	// Push-dataplane counters. StreamsOpened counts shard completion
	// streams consumed, EventsStreamed the job results merged off them,
	// and FallbackPolls the dispatches that degraded to the poll loop
	// (shard without streaming, or a stream severed mid-sweep).
	StreamsOpened  uint64 `json:"streams_opened"`
	EventsStreamed uint64 `json:"events_streamed"`
	FallbackPolls  uint64 `json:"fallback_polls"`
}

// Stats snapshots the counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	shards := make([]ShardStats, 0, len(c.shards))
	alive := 0
	for p, st := range c.shards {
		if st.alive {
			alive++
		}
		shards = append(shards, ShardStats{
			Peer: p, Alive: st.alive,
			Routed: st.routed, Retried: st.retried, Merged: st.merged,
		})
	}
	total := len(c.shards)
	c.mu.Unlock()
	sort.Slice(shards, func(i, j int) bool { return shards[i].Peer < shards[j].Peer })
	return Stats{
		Peers:           total,
		AlivePeers:      alive,
		SweepsTotal:     c.sweepsTotal.Load(),
		JobsRouted:      c.jobsRouted.Load(),
		JobsRetried:     c.jobsRetried.Load(),
		JobsMerged:      c.jobsMerged.Load(),
		JobsFailed:      c.jobsFailed.Load(),
		TracesForwarded: c.tracesForwarded.Load(),
		PeerFailures:    c.peerFailures.Load(),
		Shards:          shards,

		RingJoins:            c.ringJoins.Load(),
		RingRejoins:          c.ringRejoins.Load(),
		ReplicaWrites:        c.replicaWrites.Load(),
		ReplicaWriteFailures: c.replicaWriteFailures.Load(),
		ReplicaReads:         c.replicaReads.Load(),
		SweepsResumed:        c.sweepsResumed.Load(),
		JobsRecovered:        c.jobsRecovered.Load(),

		StreamsOpened:  c.streamsOpened.Load(),
		EventsStreamed: c.eventsStreamed.Load(),
		FallbackPolls:  c.fallbackPolls.Load(),
	}
}

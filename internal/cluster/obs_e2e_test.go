package cluster_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nbticache/internal/cluster"
	"nbticache/internal/cluster/clustertest"
	"nbticache/internal/engine"
	"nbticache/internal/httpapi"
	"nbticache/internal/obs"
)

// obsGetJSON fetches a URL and decodes the JSON body when out is
// non-nil, returning the status code.
func obsGetJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// obsLint scrapes base+"/metrics", runs the obs conformance linter over
// the exposition, and returns the raw text plus the histogram family
// names found in TYPE lines.
func obsLint(t *testing.T, base string) (string, []string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, lintErr := range obs.Lint(bytes.NewReader(body)) {
		t.Errorf("coordinator exposition lint: %v", lintErr)
	}
	var histograms []string
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 4 && fields[0] == "#" && fields[1] == "TYPE" && fields[3] == "histogram" {
			histograms = append(histograms, fields[2])
		}
	}
	return string(body), histograms
}

// TestClusterSpanStitching is the distributed-tracing acceptance test:
// a sweep sharded over three real in-process nodes must come back from
// the coordinator's spans endpoint as ONE tree — coordinator root,
// per-shard dispatch spans, and under each dispatch the shard engine's
// sweep/job/phase spans, all correlated by the trace ID the dispatch
// requests propagated via traceparent. The coordinator's /metrics must
// also pass the exposition linter with the cluster histogram families
// and per-shard series populated by the same traffic.
func TestClusterSpanStitching(t *testing.T) {
	cl := clustertest.Start(t, 3, clustertest.Options{})
	coord := cl.Coordinator(t)
	srv := httptest.NewServer(cluster.NewServer(coord, cluster.ServerConfig{}).Handler())
	defer srv.Close()

	spec := engine.SweepSpec{
		Name:     "obs-e2e",
		Benches:  []string{"sha", "gsme", "cjpeg", "dijkstra"},
		Banks:    []int{2, 4},
		Policies: []string{"identity", "probing"},
	}
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub httpapi.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	// Stream the completion feed instead of polling on a fixed cadence;
	// the terminal frame carries the merged status.
	if st := streamUntilDone(t, srv.URL, sub.ID); st.State != "done" {
		t.Fatalf("sweep did not complete: %+v", st)
	}
	var sweep httpapi.SweepResponse
	obsGetJSON(t, srv.URL+"/v1/sweeps/"+sub.ID, &sweep)
	st := sweep.Status
	if st.State != "done" {
		t.Fatalf("sweep did not complete: %+v", st)
	}
	if st.Failed != 0 {
		t.Fatalf("merged sweep has %d failed jobs", st.Failed)
	}
	if st.TraceID == "" {
		t.Fatal("merged sweep status carries no trace ID")
	}
	// Every job's phase timing survived the HTTP hop and the merge: the
	// coordinator never ran a job itself, so JobsTimed == Total proves
	// the shards reported queue/run/persist timings for all of them.
	if st.Timing == nil || st.Timing.JobsTimed != sub.Total {
		t.Fatalf("merged timing %+v, want JobsTimed == %d", st.Timing, sub.Total)
	}
	if st.Timing.RunMs <= 0 {
		t.Errorf("merged run time %v ms, want > 0", st.Timing.RunMs)
	}

	var spansResp httpapi.SpansResponse
	if code := obsGetJSON(t, srv.URL+"/v1/sweeps/"+sub.ID+"/spans", &spansResp); code != http.StatusOK {
		t.Fatalf("GET spans: status %d", code)
	}
	if spansResp.TraceID != st.TraceID {
		t.Fatalf("spans trace %s, status trace %s", spansResp.TraceID, st.TraceID)
	}
	spans := spansResp.Spans
	writeSpanArtifact(t, spansResp)

	// One tree: every span under the propagated trace ID, IDs unique,
	// every parent link resolving, a single root.
	byID := make(map[string]obs.Span, len(spans))
	for _, sp := range spans {
		if sp.TraceID != st.TraceID {
			t.Fatalf("span %s (%s) carries trace %s, want %s", sp.SpanID, sp.Name, sp.TraceID, st.TraceID)
		}
		if _, dup := byID[sp.SpanID]; dup {
			t.Fatalf("duplicate span ID %s in stitched tree", sp.SpanID)
		}
		byID[sp.SpanID] = sp
	}
	var roots []obs.Span
	dispatches := map[string]bool{}
	jobIDs := map[string]bool{}
	for _, sp := range spans {
		if sp.ParentID == "" {
			roots = append(roots, sp)
			continue
		}
		if _, ok := byID[sp.ParentID]; !ok {
			t.Fatalf("span %s (%s) has unresolved parent %s", sp.SpanID, sp.Name, sp.ParentID)
		}
		switch sp.Name {
		case "coordinator.dispatch":
			dispatches[sp.SpanID] = true
		case "engine.job":
			jobIDs[sp.Attrs["job_id"]] = true
		}
	}
	if len(roots) != 1 || roots[0].Name != "coordinator.sweep" {
		t.Fatalf("stitched tree roots %v, want exactly one coordinator.sweep", roots)
	}
	// Cross-node correlation: at least two shards contributed fragments
	// (16 jobs over a 3-shard ring never all land on one node), and each
	// shard's engine.sweep hangs off the dispatch that carried the
	// traceparent to it.
	if len(dispatches) < 2 {
		t.Fatalf("%d coordinator.dispatch spans, want >= 2 shards dispatched", len(dispatches))
	}
	engineSweeps := 0
	for _, sp := range spans {
		if sp.Name != "engine.sweep" {
			continue
		}
		engineSweeps++
		if !dispatches[sp.ParentID] {
			t.Errorf("engine.sweep %s parented to %s, want a coordinator.dispatch span", sp.SpanID, sp.ParentID)
		}
	}
	if engineSweeps != len(dispatches) {
		t.Errorf("%d engine.sweep spans for %d dispatches", engineSweeps, len(dispatches))
	}
	// Coverage: an engine.job span for every submitted job ID, each with
	// its queue and persist phase children.
	for _, id := range sub.JobIDs {
		if !jobIDs[id] {
			t.Errorf("no engine.job span for job %s", id)
		}
	}
	phaseChildren := map[string]map[string]bool{} // parent span -> phase names seen
	for _, sp := range spans {
		parent, ok := byID[sp.ParentID]
		if !ok || parent.Name != "engine.job" {
			continue
		}
		if phaseChildren[sp.ParentID] == nil {
			phaseChildren[sp.ParentID] = map[string]bool{}
		}
		phaseChildren[sp.ParentID][sp.Name] = true
	}
	for _, sp := range spans {
		if sp.Name != "engine.job" {
			continue
		}
		for _, phase := range []string{"engine.queue", "engine.persist"} {
			if !phaseChildren[sp.SpanID][phase] {
				t.Errorf("job span %s (job %s) has no %s child", sp.SpanID, sp.Attrs["job_id"], phase)
			}
		}
	}

	// Coordinator /metrics: lint-clean exposition with the cluster
	// histogram families and the per-shard series the traffic populated.
	text, histograms := obsLint(t, srv.URL)
	if len(histograms) < 3 {
		t.Fatalf("coordinator /metrics exposes %d histogram families (%v), want >= 3", len(histograms), histograms)
	}
	for _, want := range []string{
		"nbtiserved_http_request_seconds",
		"nbtiserved_cluster_dispatch_seconds",
		"nbtiserved_cluster_shard_request_seconds",
	} {
		found := false
		for _, h := range histograms {
			if h == want {
				found = true
			}
		}
		if !found {
			t.Errorf("histogram family %s missing (have %v)", want, histograms)
		}
	}
	for _, n := range cl.Nodes {
		if !strings.Contains(text, `peer="`+n.URL+`"`) {
			t.Errorf("no per-shard series for %s", n.URL)
		}
	}
	for _, series := range []string{
		"nbtiserved_cluster_sweeps_total ", "nbtiserved_cluster_jobs_merged_total ",
		"nbtiserved_cluster_sweeps_retained ",
	} {
		if !strings.Contains(text, "\n"+series) {
			t.Errorf("series %q missing from coordinator /metrics", strings.TrimSpace(series))
		}
	}
	if !strings.Contains(text, `route="GET /v1/sweeps/{id}/spans"`) {
		t.Error("no request-duration samples for the spans route")
	}
	// Re-scrape: collect hooks are idempotent, nothing duplicates.
	obsLint(t, srv.URL)
}

// writeSpanArtifact dumps the stitched tree as JSON when
// SPAN_ARTIFACT_DIR is set (CI uploads it as a build artifact).
func writeSpanArtifact(t *testing.T, spansResp httpapi.SpansResponse) {
	t.Helper()
	dir := os.Getenv("SPAN_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	data, err := json.MarshalIndent(spansResp, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("span artifact dir: %v", err)
	}
	path := filepath.Join(dir, "cluster_sweep_spans.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("writing span artifact: %v", err)
	}
	t.Logf("stitched span tree written to %s (%d spans)", path, len(spansResp.Spans))
}

package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"nbticache/internal/engine"
)

// Sweep-state blob framing: a 4-byte magic, a version byte, then the
// JSON-encoded sweepState. The payload is JSON rather than the trace
// blobs' packed columns because sweep state is tiny (a spec and some ID
// lists), written once per poll tick — framing discipline matters here,
// encoding density does not.
const (
	stateBlobMagic   = "NBSS"
	stateBlobVersion = 1
)

// ErrBadState marks a sweep-state blob that cannot be decoded: wrong
// magic, unknown version, truncation, malformed payload, or a payload
// whose re-derived content address mismatches the key it was stored
// under. Resume quarantines such blobs (deletes them and continues)
// rather than resurrecting a sweep from bytes it cannot trust.
var ErrBadState = errors.New("cluster: bad sweep-state blob")

// sweepState is one in-flight sweep's persistable checkpoint: enough
// for a restarted coordinator to rebuild the handle, recover merged
// results from the shard caches, and re-dispatch only the remainder.
type sweepState struct {
	// Handle is the sweep's public ID ("csweep-N"); Resume reuses it so
	// clients polling across the restart keep their handle.
	Handle string `json:"handle"`
	// Spec is the submitted spec, verbatim — Expand is deterministic,
	// so the restarted coordinator rebuilds the identical job list.
	Spec engine.SweepSpec `json:"spec"`
	// Assign maps job ID -> the peer it was last dispatched to
	// (diagnostic; resume re-routes on the live ring regardless).
	Assign map[string]string `json:"assign,omitempty"`
	// Merged lists the job IDs already merged with a successful result,
	// sorted. Resume recovers these from the shard caches instead of
	// re-dispatching them — the zero-re-simulation guarantee.
	Merged []string `json:"merged,omitempty"`
}

// stateKey derives a sweep's state-blob key from its spec's canonical
// JSON — content-addressed like everything else in the CAS, so decode
// can re-derive it and reject a blob claiming to be a sweep it is not.
// Two sweeps with byte-equal specs share a key; their checkpoints are
// interchangeable by construction.
func stateKey(spec engine.SweepSpec) string {
	canon, err := json.Marshal(spec)
	if err != nil {
		// SweepSpec is plain data (strings, ints, slices); Marshal
		// cannot fail on it. Keep the signature clean.
		panic(fmt.Sprintf("cluster: marshaling sweep spec: %v", err))
	}
	sum := sha256.Sum256(canon)
	return "sweep-" + hex.EncodeToString(sum[:8])
}

// encodeSweepState frames a checkpoint for the CAS.
func encodeSweepState(st sweepState) ([]byte, error) {
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, err
	}
	blob := make([]byte, 0, len(stateBlobMagic)+1+len(payload))
	blob = append(blob, stateBlobMagic...)
	blob = append(blob, stateBlobVersion)
	return append(blob, payload...), nil
}

// decodeSweepState parses a sweep-state blob stored under key, with the
// same error-chain discipline as the job/trace codecs: every failure is
// ErrBadState, wrapping the cause where there is one, and the payload's
// re-derived content address must match the key it was filed under.
func decodeSweepState(key string, blob []byte) (sweepState, error) {
	if len(blob) < len(stateBlobMagic)+1 {
		return sweepState{}, fmt.Errorf("%w: truncated header (%d bytes)", ErrBadState, len(blob))
	}
	if string(blob[:len(stateBlobMagic)]) != stateBlobMagic {
		return sweepState{}, fmt.Errorf("%w: bad magic %q", ErrBadState, blob[:len(stateBlobMagic)])
	}
	if v := blob[len(stateBlobMagic)]; v != stateBlobVersion {
		return sweepState{}, fmt.Errorf("%w: unsupported version %d", ErrBadState, v)
	}
	var st sweepState
	if err := json.Unmarshal(blob[len(stateBlobMagic)+1:], &st); err != nil {
		return sweepState{}, fmt.Errorf("%w: %w", ErrBadState, err)
	}
	if st.Handle == "" {
		return sweepState{}, fmt.Errorf("%w: missing handle ID", ErrBadState)
	}
	if derived := stateKey(st.Spec); derived != key {
		return sweepState{}, fmt.Errorf("%w: content address %s does not match key %s", ErrBadState, derived, key)
	}
	return st, nil
}

// persistLoop checkpoints one sweep's state to the CAS for the life of
// the sweep: an immediate checkpoint on submit (so even an instant
// crash can resume), then one per poll tick in which the merged count
// moved. On finish, a deliberately cancelled or cleanly completed sweep
// deletes its blob; a sweep settled by coordinator shutdown keeps its
// final checkpoint — that blob is exactly what the next coordinator's
// Resume picks up.
func (c *Coordinator) persistLoop(h *Handle) {
	defer c.wg.Done()
	key := stateKey(h.Spec)
	lastMerged := -1
	persist := func() {
		st := h.snapshotState()
		if len(st.Merged) == lastMerged {
			return
		}
		lastMerged = len(st.Merged)
		if err := c.persistState(st, key); err != nil {
			c.log.Warn("sweep-state checkpoint failed", "sweep_id", h.ID, "error", err)
		}
	}
	persist()
	ticker := time.NewTicker(c.poll)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			persist()
		case <-h.finished:
			status := h.Status()
			switch {
			case h.clientCancelled():
				// The client gave the sweep up; resuming it after a
				// restart would countermand them.
				_ = c.stateStore.Delete(key)
			case status.Canceled > 0:
				// Settled by shutdown, not answered: the final
				// checkpoint is the resume point.
				persist()
			default:
				_ = c.stateStore.Delete(key)
			}
			return
		}
	}
}

func (c *Coordinator) persistState(st sweepState, key string) error {
	blob, err := encodeSweepState(st)
	if err != nil {
		return err
	}
	return c.stateStore.Put(key, blob)
}

// Resume rebuilds the sweeps a previous coordinator's shutdown (or
// crash) left checkpointed in DataDir and restarts their routing loops:
// already-merged job IDs are recovered from the shard caches (no
// re-simulation), the remainder re-dispatches on the live ring.
// Undecodable blobs are quarantined (deleted, logged, skipped) — cf.
// the disk CAS, which already quarantines checksum-corrupt files below
// this layer. Call it once, after New and before serving; the returned
// handles are live (pass them to Server.Adopt so clients can poll
// them).
func (c *Coordinator) Resume(ctx context.Context) ([]*Handle, error) {
	if c.stateStore == nil {
		return nil, nil
	}
	stats, err := c.stateStore.List()
	if err != nil {
		return nil, fmt.Errorf("cluster: listing sweep state: %w", err)
	}
	var handles []*Handle
	for _, stat := range stats {
		blob, err := c.stateStore.Get(stat.Key)
		if err != nil {
			c.log.Warn("unreadable sweep-state blob, skipping", "key", stat.Key, "error", err)
			continue
		}
		st, err := decodeSweepState(stat.Key, blob)
		if err != nil {
			c.log.Warn("quarantining bad sweep-state blob", "key", stat.Key, "error", err)
			_ = c.stateStore.Delete(stat.Key)
			continue
		}
		h, err := c.resumeSweep(ctx, st)
		if err != nil {
			c.log.Warn("cannot resume sweep", "sweep_id", st.Handle, "error", err)
			_ = c.stateStore.Delete(stat.Key)
			continue
		}
		handles = append(handles, h)
	}
	return handles, nil
}

// resumeSweep rebuilds one checkpointed sweep and restarts its loops.
func (c *Coordinator) resumeSweep(ctx context.Context, st sweepState) (*Handle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	jobs, err := st.Spec.Expand()
	if err != nil {
		return nil, fmt.Errorf("re-expanding spec: %w", err)
	}
	// Reusing the persisted handle ID keeps pre-restart clients' polls
	// working; bumping seq past it keeps new submissions from colliding.
	if n, err := strconv.ParseUint(strings.TrimPrefix(st.Handle, "csweep-"), 10, 64); err == nil {
		for {
			cur := c.seq.Load()
			if cur >= n || c.seq.CompareAndSwap(cur, n) {
				break
			}
		}
	}
	sctx, cancel := context.WithCancel(c.lifeCtx)
	h := newHandle(st.Handle, st.Spec, jobs, sctx, cancel)
	c.mu.Lock()
	if c.closed.Load() {
		c.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("cluster: coordinator closed")
	}
	c.wg.Add(2) // resumeRun + persistLoop, inside the Close barrier
	c.handles[h.ID] = h
	c.mu.Unlock()
	c.sweepsResumed.Add(1)
	c.sweepsTotal.Add(1)
	_, h.span = c.tel.Tracer.StartSpan(ctx, "coordinator.sweep",
		"sweep_id", h.ID, "jobs", itoa(len(jobs)), "resumed", "true")
	h.tsc = h.span.Context()
	go c.persistLoop(h)
	go c.resumeRun(h, st.Merged)
	return h, nil
}

// resumeRun recovers the checkpoint's already-merged results from the
// shard caches — cached reads, never re-simulation — then falls into
// the normal routing loop for whatever remains (including any merged
// ID that could not be recovered: its slot is simply still unresolved,
// and the owning shard's content-addressed cache answers the re-dispatch
// without re-running the simulation anyway).
func (c *Coordinator) resumeRun(h *Handle, merged []string) {
	for _, id := range merged {
		if h.ctx.Err() != nil {
			break
		}
		slot, ok := h.slot[id]
		if !ok {
			continue
		}
		c.recoverResult(h.ctx, h, slot)
	}
	c.run(h) // does wg.Done and handle dereg
}

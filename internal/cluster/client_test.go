package cluster

import (
	"errors"
	"net/http"
	"testing"
)

// TestErrorClassification pins the routing loop's error taxonomy:
// 4xx rejections are permanent (re-routing cannot help), "not right
// now" statuses are transient (back off, never condemn the peer), and
// transport errors are neither — they mark the peer itself as failed.
func TestErrorClassification(t *testing.T) {
	cases := []struct {
		code                 int
		permanent, transient bool
	}{
		{http.StatusBadRequest, true, false},
		{http.StatusNotFound, true, false},
		{http.StatusUnprocessableEntity, true, false},
		{http.StatusRequestTimeout, false, true},
		{http.StatusTooManyRequests, false, true},
		{http.StatusServiceUnavailable, false, true},  // upload gate
		{http.StatusInsufficientStorage, false, true}, // trace store full
		{http.StatusInternalServerError, false, false},
		{http.StatusBadGateway, false, false},
	}
	for _, tc := range cases {
		err := error(&statusError{Code: tc.code, Msg: "x"})
		if got := isPermanent(err); got != tc.permanent {
			t.Errorf("isPermanent(%d) = %v, want %v", tc.code, got, tc.permanent)
		}
		if got := isTransient(err); got != tc.transient {
			t.Errorf("isTransient(%d) = %v, want %v", tc.code, got, tc.transient)
		}
	}
	transport := errors.New("dial tcp: connection refused")
	if isPermanent(transport) || isTransient(transport) {
		t.Error("transport errors must classify as peer failures (neither permanent nor transient)")
	}
}

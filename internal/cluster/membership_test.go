package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// fakePeer is the minimal peer surface the membership probe path
// touches: /healthz behind a toggleable fault, plus an empty inventory
// for the rejoin replay. White-box on purpose — probePeer is driven
// directly, so the test is deterministic with the health loop off.
func fakePeer(t *testing.T) (*httptest.Server, *atomic.Bool) {
	t.Helper()
	var unhealthy atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if unhealthy.Load() {
			http.Error(w, `{"error":"wedged"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("GET /v1/cluster/inventory", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(struct{}{})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &unhealthy
}

// TestTransientProbeNoEviction pins the eviction hysteresis regression:
// a transient 5xx on the health probe — one failed probe, or any streak
// shorter than EvictAfterProbes — must never evict a peer from the
// ring, and a success in between must reset the streak. Only a full
// streak of consecutive failures evicts, and a later healthy probe
// re-admits the peer.
func TestTransientProbeNoEviction(t *testing.T) {
	ts, unhealthy := fakePeer(t)
	c, err := New(Options{
		Peers:          []string{ts.URL},
		HealthInterval: -1, // probes fired by hand below
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	peer := c.Peers()[0]

	probeFails := func() int {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.shards[peer].probeFails
	}

	// A streak one short of the threshold: still a ring member.
	unhealthy.Store(true)
	for i := 1; i < c.evictAfter; i++ {
		c.probePeer(peer)
		if st := c.Stats(); st.AlivePeers != 1 || st.PeerFailures != 0 {
			t.Fatalf("after %d transient probe failures: %d alive peers, %d failures; want the peer kept",
				i, st.AlivePeers, st.PeerFailures)
		}
		if got := probeFails(); got != i {
			t.Fatalf("probeFails = %d after %d failed probes", got, i)
		}
	}

	// A healthy probe resets the streak — failures must be consecutive.
	unhealthy.Store(false)
	c.probePeer(peer)
	if got := probeFails(); got != 0 {
		t.Fatalf("probeFails = %d after recovery, want 0", got)
	}
	unhealthy.Store(true)
	for i := 1; i < c.evictAfter; i++ {
		c.probePeer(peer)
	}
	if st := c.Stats(); st.AlivePeers != 1 || st.PeerFailures != 0 {
		t.Fatalf("reset streak evicted the peer: %+v", st)
	}

	// The full streak evicts.
	c.probePeer(peer)
	st := c.Stats()
	if st.AlivePeers != 0 || st.PeerFailures != 1 {
		t.Fatalf("after %d consecutive failures: %d alive peers, %d failures; want eviction",
			c.evictAfter, st.AlivePeers, st.PeerFailures)
	}
	// Probing a dead, still-unhealthy peer is a no-op (no streak
	// building against an already-evicted member).
	c.probePeer(peer)
	if got := probeFails(); got != 0 {
		t.Fatalf("probeFails = %d against an evicted peer, want 0", got)
	}

	// Recovery re-admits.
	unhealthy.Store(false)
	c.probePeer(peer)
	st = c.Stats()
	if st.AlivePeers != 1 || st.RingRejoins != 1 {
		t.Fatalf("after recovery: %d alive peers, %d rejoins; want the peer back", st.AlivePeers, st.RingRejoins)
	}
}

// TestJoinIdempotentAndRejoin covers Join's three verdicts directly:
// a brand-new peer joins (counted once), a live peer re-announcing is a
// no-op, and a dead peer announcing itself is a rejoin.
func TestJoinIdempotentAndRejoin(t *testing.T) {
	ts, _ := fakePeer(t)
	c, err := New(Options{Peers: []string{ts.URL}, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	late, _ := fakePeer(t)
	if joined, err := c.Join(late.URL); err != nil || !joined {
		t.Fatalf("Join(new) = %v, %v; want joined", joined, err)
	}
	if joined, err := c.Join(late.URL); err != nil || joined {
		t.Fatalf("Join(live) = %v, %v; want no-op", joined, err)
	}
	st := c.Stats()
	if st.Peers != 2 || st.AlivePeers != 2 || st.RingJoins != 1 || st.RingRejoins != 0 {
		t.Fatalf("after join+re-join announce: %+v", st)
	}

	peer, _ := normalizePeer(late.URL)
	c.mu.Lock()
	c.shards[peer].alive = false
	c.mutateRing(ringRemove, peer)
	c.mu.Unlock()
	if joined, err := c.Join(late.URL); err != nil || !joined {
		t.Fatalf("Join(dead) = %v, %v; want rejoin", joined, err)
	}
	st = c.Stats()
	if st.AlivePeers != 2 || st.RingRejoins != 1 {
		t.Fatalf("after dead-peer announce: %+v", st)
	}

	if _, err := c.Join("not a url"); err == nil {
		t.Fatal("Join accepted a malformed peer address")
	}
}

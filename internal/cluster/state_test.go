package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"nbticache/internal/cas"
	"nbticache/internal/engine"
)

func testSweepState() sweepState {
	return sweepState{
		Handle: "csweep-7",
		Spec:   engine.SweepSpec{Name: "checkpoint", Banks: []int{2, 4}},
		Assign: map[string]string{"job-0011223344556677": "http://shard-0:8080"},
		Merged: []string{"job-0011223344556677", "job-8899aabbccddeeff"},
	}
}

func TestSweepStateRoundTrip(t *testing.T) {
	want := testSweepState()
	blob, err := encodeSweepState(want)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(blob), stateBlobMagic) {
		t.Fatalf("blob does not start with the %q magic: %q", stateBlobMagic, blob[:8])
	}
	got, err := decodeSweepState(stateKey(want.Spec), blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\nwant %+v\ngot  %+v", want, got)
	}

	// The key is content-addressed on the spec alone: byte-equal specs
	// share a checkpoint slot, different specs never collide.
	if stateKey(want.Spec) != stateKey(testSweepState().Spec) {
		t.Fatal("stateKey is not deterministic")
	}
	other := want.Spec
	other.Name = "different"
	if stateKey(want.Spec) == stateKey(other) {
		t.Fatal("distinct specs share a state key")
	}
}

// TestSweepStateErrorChain mirrors the trace-blob codec discipline:
// every malformed input decodes to an error in the ErrBadState chain —
// wrapping the underlying cause where one exists — and never leaks a
// bare io sentinel.
func TestSweepStateErrorChain(t *testing.T) {
	st := testSweepState()
	key := stateKey(st.Spec)
	good, err := encodeSweepState(st)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(mutate func([]byte) []byte) []byte {
		blob := append([]byte(nil), good...)
		return mutate(blob)
	}
	cases := []struct {
		name string
		blob []byte
	}{
		{"empty", nil},
		{"truncated header", corrupt(func(b []byte) []byte { return b[:3] })},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"unsupported version", corrupt(func(b []byte) []byte { b[len(stateBlobMagic)] = 99; return b })},
		{"malformed payload", corrupt(func(b []byte) []byte { return append(b[:len(stateBlobMagic)+1], "{truncated"...) })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodeSweepState(key, tc.blob)
			if !errors.Is(err, ErrBadState) {
				t.Fatalf("err = %v, want ErrBadState in the chain", err)
			}
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("bare io sentinel leaked through the codec: %v", err)
			}
		})
	}

	t.Run("malformed payload wraps the json cause", func(t *testing.T) {
		blob := append(append([]byte(nil), good[:len(stateBlobMagic)+1]...), "{oops"...)
		_, err := decodeSweepState(key, blob)
		var syn *json.SyntaxError
		if !errors.Is(err, ErrBadState) || !errors.As(err, &syn) {
			t.Fatalf("err = %v, want ErrBadState wrapping a *json.SyntaxError", err)
		}
	})

	t.Run("missing handle", func(t *testing.T) {
		anon := st
		anon.Handle = ""
		blob, err := encodeSweepState(anon)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := decodeSweepState(stateKey(anon.Spec), blob); !errors.Is(err, ErrBadState) {
			t.Fatalf("err = %v, want ErrBadState", err)
		}
	})

	// The resumed-coordinator integrity check: a well-formed blob filed
	// under a key its payload's re-derived content address does not
	// match is rejected, exactly like the job/trace stores reject
	// renamed blobs.
	t.Run("content address mismatch", func(t *testing.T) {
		other := st
		other.Spec.Name = "different"
		if _, err := decodeSweepState(stateKey(other.Spec), good); !errors.Is(err, ErrBadState) {
			t.Fatalf("err = %v, want ErrBadState for a mis-keyed blob", err)
		}
	})
}

// TestResumeQuarantinesBadState: a coordinator restarting over a state
// directory holding only undecodable checkpoints resumes nothing and
// deletes the bad blobs, rather than resurrecting sweeps from bytes it
// cannot trust.
func TestResumeQuarantinesBadState(t *testing.T) {
	ts, _ := fakePeer(t)
	dir := t.TempDir()

	// Seed the state store with three bad blobs: garbage framing, a
	// mis-keyed (renamed) checkpoint, and a truncated one.
	store, err := cas.OpenDisk(filepath.Join(dir, "sweeps"), cas.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	st := testSweepState()
	good, err := encodeSweepState(st)
	if err != nil {
		t.Fatal(err)
	}
	seed := map[string][]byte{
		"sweep-0000000000000000": []byte("not a checkpoint"),
		"sweep-ffffffffffffffff": good,     // renamed: content address mismatch
		stateKey(st.Spec):        good[:5], // truncated payload
	}
	for k, v := range seed {
		if err := store.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	c, err := New(Options{Peers: []string{ts.URL}, HealthInterval: -1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	handles, err := c.Resume(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(handles) != 0 {
		t.Fatalf("resumed %d sweeps from unreadable state, want 0", len(handles))
	}
	c.Close()

	store, err = cas.OpenDisk(filepath.Join(dir, "sweeps"), cas.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	left, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("%d bad state blobs survived quarantine: %+v", len(left), left)
	}
}

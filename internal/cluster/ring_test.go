package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like the engine's content addresses, which is what the
		// ring actually places.
		keys[i] = fmt.Sprintf("job-%016x", i*2654435761)
	}
	return keys
}

// TestRingBalance is the distribution property: across a range of
// cluster sizes, every node's share of a large keyspace stays within a
// constant factor of the fair share.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(20000)
	for _, nodes := range []int{2, 3, 5, 8} {
		names := make([]string, nodes)
		for i := range names {
			names[i] = fmt.Sprintf("http://shard-%d:8080", i)
		}
		r := NewRing(0, names...)
		counts := make(map[string]int)
		for _, k := range keys {
			owner, ok := r.Owner(k)
			if !ok {
				t.Fatalf("nodes=%d: no owner for %s", nodes, k)
			}
			counts[owner]++
		}
		if len(counts) != nodes {
			t.Fatalf("nodes=%d: only %d nodes own keys", nodes, len(counts))
		}
		mean := float64(len(keys)) / float64(nodes)
		for node, got := range counts {
			share := float64(got) / mean
			if share < 0.5 || share > 2.0 {
				t.Errorf("nodes=%d: %s owns %d keys (%.2fx the fair share, want within [0.5, 2.0])",
					nodes, node, got, share)
			}
		}
	}
}

// TestRingRemoveRemapsOnlyOwnedKeys is the bounded-remapping property:
// removing one node moves exactly that node's keys (nothing else
// changes owner), and adding it back restores the original assignment
// bit for bit.
func TestRingRemoveRemapsOnlyOwnedKeys(t *testing.T) {
	keys := ringKeys(20000)
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := NewRing(0, nodes...)

	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	const victim = "http://c:1"
	r.Remove(victim)
	if r.Has(victim) || r.Len() != len(nodes)-1 {
		t.Fatalf("remove bookkeeping wrong: len=%d", r.Len())
	}
	moved := 0
	for _, k := range keys {
		after, ok := r.Owner(k)
		if !ok {
			t.Fatalf("no owner for %s after removal", k)
		}
		if after == victim {
			t.Fatalf("key %s still owned by removed node", k)
		}
		switch {
		case before[k] == victim:
			moved++
		case after != before[k]:
			t.Fatalf("key %s moved %s -> %s though its owner never left", k, before[k], after)
		}
	}
	if moved == 0 {
		t.Fatal("victim owned no keys; the property was tested vacuously")
	}

	r.Add(victim)
	for _, k := range keys {
		if after, _ := r.Owner(k); after != before[k] {
			t.Fatalf("key %s owned by %s after re-add, originally %s", k, after, before[k])
		}
	}
}

// TestRingOwnersSuccession: Owners lists distinct nodes starting at the
// key's owner, and shrinks gracefully when asked for more nodes than
// exist.
func TestRingOwnersSuccession(t *testing.T) {
	r := NewRing(0, "http://a:1", "http://b:1", "http://c:1")
	for _, k := range ringKeys(100) {
		owner, _ := r.Owner(k)
		succ := r.Owners(k, 3)
		if len(succ) != 3 || succ[0] != owner {
			t.Fatalf("Owners(%s, 3) = %v, owner %s", k, succ, owner)
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("Owners(%s, 3) repeats %s: %v", k, n, succ)
			}
			seen[n] = true
		}
		if more := r.Owners(k, 10); len(more) != 3 {
			t.Fatalf("Owners(%s, 10) = %v, want the 3 distinct nodes", k, more)
		}
	}
	if empty := NewRing(0); empty.Owners("k", 2) != nil {
		t.Fatal("empty ring returned owners")
	}
	if _, ok := NewRing(0).Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
}

// TestRingChurnProperty is the elastic-membership property: under a
// random (seeded, reproducible) churn sequence of adds, removes, and
// re-adds, the ring (a) keeps every member's share of the keyspace
// within the pinned [0.5, 2.0]x fair-share band at every step, and
// (b) maps each membership SET to one owner assignment — bit for bit —
// no matter the mutation path that produced it. (b) is what makes
// rejoin cheap: a peer coming back after any interleaving of churn
// re-owns exactly the keys it would have owned had it never left.
func TestRingChurnProperty(t *testing.T) {
	keys := ringKeys(20000)
	pool := make([]string, 10)
	for i := range pool {
		pool[i] = fmt.Sprintf("http://shard-%d:8080", i)
	}

	ownerMap := func(r *Ring) map[string]string {
		m := make(map[string]string, len(keys))
		for _, k := range keys {
			owner, ok := r.Owner(k)
			if !ok {
				t.Fatal("no owner on a non-empty ring")
			}
			m[k] = owner
		}
		return m
	}
	fingerprint := func(r *Ring) string {
		names := r.Nodes() // sorted
		return fmt.Sprintf("%q", names)
	}

	// Deterministic churn: a multiplicative LCG drives the choices, so
	// a failure reproduces without seed plumbing.
	rnd := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		return int((rnd >> 33) % uint64(n))
	}

	r := NewRing(0, pool[0], pool[1], pool[2])
	in := map[string]bool{pool[0]: true, pool[1]: true, pool[2]: true}
	seen := make(map[string]map[string]string) // membership set -> owner map

	for step := 0; step < 80; step++ {
		p := pool[next(len(pool))]
		switch {
		case !in[p]:
			r.Add(p) // covers both first-time adds and re-adds
			in[p] = true
		case r.Len() > 2:
			r.Remove(p)
			delete(in, p)
		default:
			continue // keep >= 2 members so shares stay meaningful
		}

		m := ownerMap(r)

		// (a) balance at every step of the churn.
		mean := float64(len(keys)) / float64(r.Len())
		counts := make(map[string]int)
		for _, owner := range m {
			counts[owner]++
		}
		for node, got := range counts {
			if share := float64(got) / mean; share < 0.5 || share > 2.0 {
				t.Fatalf("step %d (%d members): %s owns %.2fx the fair share, want within [0.5, 2.0]",
					step, r.Len(), node, share)
			}
		}

		// (b) same membership set => bit-identical ownership, whatever
		// churn led there.
		fp := fingerprint(r)
		if prev, ok := seen[fp]; ok {
			for _, k := range keys {
				if m[k] != prev[k] {
					t.Fatalf("step %d: membership %s reached again but key %s moved %s -> %s",
						step, fp, k, prev[k], m[k])
				}
			}
		} else {
			seen[fp] = m
		}
	}
	if len(seen) < 10 {
		t.Fatalf("churn visited only %d membership sets; the property was tested too vacuously", len(seen))
	}

	// The sharp rejoin case, explicitly: remove a member, churn others,
	// bring it back, undo the interim churn — ownership is restored bit
	// for bit.
	base := ownerMap(r)
	victim := r.Nodes()[0]
	outsider := ""
	for _, p := range pool {
		if !in[p] {
			outsider = p
			break
		}
	}
	r.Remove(victim)
	if outsider != "" {
		r.Add(outsider)
		r.Remove(outsider)
	}
	r.Add(victim)
	for _, k := range keys {
		if owner, _ := r.Owner(k); owner != base[k] {
			t.Fatalf("key %s owned by %s after remove/churn/re-add, originally %s", k, owner, base[k])
		}
	}
}

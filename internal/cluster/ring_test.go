package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like the engine's content addresses, which is what the
		// ring actually places.
		keys[i] = fmt.Sprintf("job-%016x", i*2654435761)
	}
	return keys
}

// TestRingBalance is the distribution property: across a range of
// cluster sizes, every node's share of a large keyspace stays within a
// constant factor of the fair share.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(20000)
	for _, nodes := range []int{2, 3, 5, 8} {
		names := make([]string, nodes)
		for i := range names {
			names[i] = fmt.Sprintf("http://shard-%d:8080", i)
		}
		r := NewRing(0, names...)
		counts := make(map[string]int)
		for _, k := range keys {
			owner, ok := r.Owner(k)
			if !ok {
				t.Fatalf("nodes=%d: no owner for %s", nodes, k)
			}
			counts[owner]++
		}
		if len(counts) != nodes {
			t.Fatalf("nodes=%d: only %d nodes own keys", nodes, len(counts))
		}
		mean := float64(len(keys)) / float64(nodes)
		for node, got := range counts {
			share := float64(got) / mean
			if share < 0.5 || share > 2.0 {
				t.Errorf("nodes=%d: %s owns %d keys (%.2fx the fair share, want within [0.5, 2.0])",
					nodes, node, got, share)
			}
		}
	}
}

// TestRingRemoveRemapsOnlyOwnedKeys is the bounded-remapping property:
// removing one node moves exactly that node's keys (nothing else
// changes owner), and adding it back restores the original assignment
// bit for bit.
func TestRingRemoveRemapsOnlyOwnedKeys(t *testing.T) {
	keys := ringKeys(20000)
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := NewRing(0, nodes...)

	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	const victim = "http://c:1"
	r.Remove(victim)
	if r.Has(victim) || r.Len() != len(nodes)-1 {
		t.Fatalf("remove bookkeeping wrong: len=%d", r.Len())
	}
	moved := 0
	for _, k := range keys {
		after, ok := r.Owner(k)
		if !ok {
			t.Fatalf("no owner for %s after removal", k)
		}
		if after == victim {
			t.Fatalf("key %s still owned by removed node", k)
		}
		switch {
		case before[k] == victim:
			moved++
		case after != before[k]:
			t.Fatalf("key %s moved %s -> %s though its owner never left", k, before[k], after)
		}
	}
	if moved == 0 {
		t.Fatal("victim owned no keys; the property was tested vacuously")
	}

	r.Add(victim)
	for _, k := range keys {
		if after, _ := r.Owner(k); after != before[k] {
			t.Fatalf("key %s owned by %s after re-add, originally %s", k, after, before[k])
		}
	}
}

// TestRingOwnersSuccession: Owners lists distinct nodes starting at the
// key's owner, and shrinks gracefully when asked for more nodes than
// exist.
func TestRingOwnersSuccession(t *testing.T) {
	r := NewRing(0, "http://a:1", "http://b:1", "http://c:1")
	for _, k := range ringKeys(100) {
		owner, _ := r.Owner(k)
		succ := r.Owners(k, 3)
		if len(succ) != 3 || succ[0] != owner {
			t.Fatalf("Owners(%s, 3) = %v, owner %s", k, succ, owner)
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("Owners(%s, 3) repeats %s: %v", k, n, succ)
			}
			seen[n] = true
		}
		if more := r.Owners(k, 10); len(more) != 3 {
			t.Fatalf("Owners(%s, 10) = %v, want the 3 distinct nodes", k, more)
		}
	}
	if empty := NewRing(0); empty.Owners("k", 2) != nil {
		t.Fatal("empty ring returned owners")
	}
	if _, ok := NewRing(0).Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
}

package cluster

import (
	"context"
	"errors"
	"sort"
	"sync"

	"nbticache/internal/engine"
	"nbticache/internal/obs"
)

// Handle tracks one sharded sweep: the coordinator's merge target. It
// mirrors engine.Handle's surface (Status, Results, Wait, Cancel) and
// reuses the engine's status/result types, so the HTTP layer and
// clients see one sweep regardless of how many shards ran it.
type Handle struct {
	// ID names the sweep ("csweep-N", unique per coordinator).
	ID string
	// Spec is the submitted spec, verbatim.
	Spec engine.SweepSpec

	jobs []engine.JobSpec
	// slot maps a job's content address to its index in jobs/results
	// (Expand deduplicates, so the mapping is one-to-one).
	slot map[string]int
	// attempts counts dispatches per slot; written only by the routing
	// round that owns the slot, so no lock is needed beyond the rounds'
	// own ordering.
	attempts []int
	// assigned is the peer each slot was last dispatched to (guarded by
	// mu — the persist loop reads it concurrently for the sweep-state
	// checkpoint).
	assigned []string

	ctx    context.Context
	cancel context.CancelFunc

	// span is the sweep's root trace span (nil without a tracer); tsc is
	// its identity, the ancestor of every dispatch span and — across the
	// HTTP hop — every shard-side engine span. The span closes when the
	// last slot merges.
	span *obs.ActiveSpan
	tsc  obs.SpanContext

	// events is the merged sweep's completion log: every slot merged from
	// any shard is appended in merge order, which is what the
	// coordinator's own /v1/sweeps/{id}/events route serves — shard
	// streams stitched into one client-facing feed.
	events *engine.EventLog

	mu        sync.Mutex
	results   []*engine.JobResult
	done      int
	failed    int
	canceled  int
	cached    int
	timing    engine.SweepTiming
	cancelled bool
	finished  chan struct{}
}

func newHandle(id string, spec engine.SweepSpec, jobs []engine.JobSpec, ctx context.Context, cancel context.CancelFunc) *Handle {
	h := &Handle{
		ID:       id,
		Spec:     spec,
		jobs:     jobs,
		slot:     make(map[string]int, len(jobs)),
		attempts: make([]int, len(jobs)),
		assigned: make([]string, len(jobs)),
		ctx:      ctx,
		cancel:   cancel,
		results:  make([]*engine.JobResult, len(jobs)),
		finished: make(chan struct{}),
		events:   engine.NewEventLog(),
	}
	for i, j := range jobs {
		h.slot[j.ID()] = i
	}
	return h
}

// Jobs returns the expanded, deduplicated job list (in submission order).
func (h *Handle) Jobs() []engine.JobSpec { return h.jobs }

// TraceID returns the merged sweep's trace identity ("" without a
// tracer). The coordinator's spans endpoint stitches the cross-node
// span tree for it.
func (h *Handle) TraceID() string { return h.tsc.TraceID }

// Cancel stops the sweep: per-shard sub-sweeps are cancelled (best
// effort) and jobs not yet merged are recorded as cancelled. The sweep
// still finishes (Wait returns) once every slot is resolved; merged
// results are kept.
func (h *Handle) Cancel() {
	h.mu.Lock()
	h.cancelled = true
	h.mu.Unlock()
	h.cancel()
}

// record stores slot's result exactly once and closes the sweep when
// the last slot resolves. It reports whether the result was taken.
func (h *Handle) record(slot int, res *engine.JobResult) bool {
	h.mu.Lock()
	if h.results[slot] != nil { // already merged (defensive; rounds own disjoint slots)
		h.mu.Unlock()
		return false
	}
	h.results[slot] = res
	h.done++
	if t := res.Timing; t != nil {
		// Shard results carry their timing through the JSON merge, so the
		// merged sweep aggregates the same decomposition a single node
		// reports.
		h.timing.QueueMs += t.QueueMs
		h.timing.RunMs += t.ResolveMs + t.SimulateMs + t.ProjectMs
		h.timing.PersistMs += t.PersistMs
		h.timing.JobsTimed++
	}
	switch {
	case res.Canceled:
		h.canceled++
	case res.Err != "":
		h.failed++
	default:
		if res.Cached {
			h.cached++
		}
	}
	// Append under h.mu so the event's Seq always equals the done count
	// it advanced to (the log has its own lock and never calls back).
	h.events.Append(res)
	last := h.done == len(h.jobs)
	h.mu.Unlock()
	if last {
		h.cancel() // release the context; the sweep is over
		h.span.End()
		close(h.finished)
		h.events.Close()
	}
	return true
}

// EventsFrom subscribes to the merged sweep's completion feed at cursor
// `from`, with engine.Handle.EventsFrom's exact contract — the two
// handles implementing one subscription surface is what lets the
// streaming HTTP layer serve either.
func (h *Handle) EventsFrom(from int) (backlog []engine.SweepEvent, live <-chan engine.SweepEvent, cancel func()) {
	return h.events.EventsFrom(from)
}

// setAssigned records which peer a dispatch group went to, for the
// sweep-state checkpoint's shard-assignment map.
func (h *Handle) setAssigned(slots []int, peer string) {
	h.mu.Lock()
	for _, s := range slots {
		h.assigned[s] = peer
	}
	h.mu.Unlock()
}

// clientCancelled reports whether Cancel was called on this handle (a
// deliberate client cancellation, as opposed to a coordinator shutdown
// settling the slots).
func (h *Handle) clientCancelled() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cancelled
}

// snapshotState captures the sweep's persistable state: spec, the
// shard-assignment map, and the job IDs merged so far with a successful
// result (failed/cancelled slots re-dispatch on resume rather than
// resurrecting a maybe-transient error).
func (h *Handle) snapshotState() sweepState {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := sweepState{
		Handle: h.ID,
		Spec:   h.Spec,
		Assign: make(map[string]string),
	}
	for i, r := range h.results {
		if r != nil && r.Err == "" && !r.Canceled {
			st.Merged = append(st.Merged, h.jobs[i].ID())
		}
		if h.assigned[i] != "" {
			st.Assign[h.jobs[i].ID()] = h.assigned[i]
		}
	}
	sort.Strings(st.Merged)
	return st
}

// unresolved snapshots the slots still waiting for a result.
func (h *Handle) unresolved() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []int
	for i, r := range h.results {
		if r == nil {
			out = append(out, i)
		}
	}
	return out
}

// Status snapshots progress without blocking, in the engine's terms.
func (h *Handle) Status() engine.SweepStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := engine.SweepStatus{
		ID:        h.ID,
		Name:      h.Spec.Name,
		State:     "running",
		Total:     len(h.jobs),
		Completed: h.done - h.failed - h.canceled,
		Failed:    h.failed,
		Canceled:  h.canceled,
		Cached:    h.cached,
		TraceID:   h.tsc.TraceID,
	}
	if h.timing.JobsTimed > 0 {
		t := h.timing
		st.Timing = &t
	}
	if h.done == len(h.jobs) {
		st.State = "done"
		if h.cancelled || h.canceled > 0 {
			st.State = "canceled"
		}
	}
	return st
}

// Results returns the job results merged so far (nil slots for jobs
// still pending), in submission order.
func (h *Handle) Results() []*engine.JobResult {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*engine.JobResult, len(h.results))
	copy(out, h.results)
	return out
}

// ErrSweepNotDone is returned by Wait when ctx expires first.
var ErrSweepNotDone = errors.New("cluster: sweep not finished")

// Wait blocks until every job has resolved (including cancelled ones)
// or ctx expires, then returns the assembled merged result.
func (h *Handle) Wait(ctx context.Context) (*engine.SweepResult, error) {
	select {
	case <-h.finished:
	case <-ctx.Done():
		return nil, errors.Join(ErrSweepNotDone, ctx.Err())
	}
	h.mu.Lock()
	jobs := make([]*engine.JobResult, len(h.results))
	copy(jobs, h.results)
	h.mu.Unlock()
	return &engine.SweepResult{ID: h.ID, Name: h.Spec.Name, Jobs: jobs, Status: h.Status()}, nil
}

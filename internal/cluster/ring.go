// Package cluster shards sweeps across several nbtiserved instances.
// Job IDs, trace IDs and results are all content addresses (equal
// content hashes to equal IDs on every node), so the keyspace partitions
// cleanly: a consistent-hash Ring assigns each content address to one
// owning shard, and a Coordinator splits a SweepSpec's job space along
// that ownership, routes each job (and any uploaded traces it
// references, forwarded on demand) to its shard over the existing HTTP
// API, merges per-shard progress and results into a single sweep
// handle, and re-routes jobs from a failed peer to the next ring owner.
//
// Shards must be configured identically (same models, same trace
// generation parameters): job IDs hash the spec, not the node
// configuration, so a heterogeneous cluster would let one content
// address name two different results.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per physical node. More
// replicas smooth the key distribution (at 64 the per-node share stays
// within a few tens of percent of the mean) at a small lookup-table
// cost.
const DefaultReplicas = 64

// Ring is a consistent-hash ring: every node appears as `replicas`
// virtual points on a 64-bit circle, and a key is owned by the node
// whose point follows the key's hash. Membership changes remap only the
// departed (or arrived) node's share — every other key keeps its owner.
// Ring is not safe for concurrent use; the Coordinator guards its ring
// with a mutex and hands copies to in-flight sweeps.
type Ring struct {
	replicas int
	nodes    map[string]bool
	points   []ringPoint // sorted by (hash, node)
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over the given nodes. replicas <= 0 selects
// DefaultReplicas. Duplicate node names collapse.
func NewRing(replicas int, nodes ...string) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{replicas: replicas, nodes: make(map[string]bool)}
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// hash64 is the ring's position function: the first 8 bytes of SHA-256,
// matching the quality of the content addresses being placed.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a node (idempotent).
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: hash64(node + "#" + strconv.Itoa(i)), node: node})
	}
	r.sortPoints()
}

// Remove deletes a node; only that node's keys change owner.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	keep := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			keep = append(keep, p)
		}
	}
	r.points = keep
}

func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Len returns the number of nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes lists the member nodes, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Has reports membership.
func (r *Ring) Has(node string) bool { return r.nodes[node] }

// Owner returns the node owning key, or false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.search(hash64(key))].node, true
}

// Owners returns up to n distinct nodes in succession order from key's
// position: the first is the owner, the rest are the owners the key
// would fall to if its predecessors left the ring.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	start := r.search(hash64(key))
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		node := r.points[(start+i)%len(r.points)].node
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out
}

// search returns the index of the first point at or after h, wrapping.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Clone returns an independent copy (sweeps snapshot the coordinator's
// ring so a membership change mid-sweep cannot tear their view).
func (r *Ring) Clone() *Ring {
	c := &Ring{
		replicas: r.replicas,
		nodes:    make(map[string]bool, len(r.nodes)),
		points:   append([]ringPoint(nil), r.points...),
	}
	for n := range r.nodes {
		c.nodes[n] = true
	}
	return c
}

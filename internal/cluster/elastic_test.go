package cluster_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nbticache/internal/cluster"
	"nbticache/internal/cluster/clustertest"
	"nbticache/internal/engine"
)

// elasticSpec is the fault-injection workload: all 18 paper benchmarks
// at M=4 under the single default sleep mode, so every job has a
// distinct simulation (no cross-job run sharing) and per-engine
// RunsExecuted counters map one-to-one onto jobs simulated.
func elasticSpec(name string) engine.SweepSpec {
	return engine.SweepSpec{Name: name, Banks: []int{4}}
}

// referenceResults runs spec on a fresh 1-node cluster and returns the
// canonical byte form per job ID — the determinism oracle the
// fault-injection scenarios compare against.
func referenceResults(t *testing.T, spec engine.SweepSpec) map[string][]byte {
	t.Helper()
	single := clustertest.Start(t, 1, clustertest.Options{})
	res, err := single.Coordinator(t).Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return resultsByID(t, res)
}

func assertByteIdentical(t *testing.T, want, got map[string][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("job counts diverge: want %d, got %d", len(want), len(got))
	}
	for id, wb := range want {
		gb, ok := got[id]
		if !ok {
			t.Errorf("job %s missing", id)
			continue
		}
		if !bytes.Equal(wb, gb) {
			t.Errorf("job %s diverges from the 1-shard reference:\nwant: %s\ngot:  %s", id, wb, gb)
		}
	}
}

// TestNodeKillRejoinMidSweep is the elastic-membership acceptance
// scenario: a node is killed mid-sweep and restarted on the same
// address with the same data directory; the health loop re-admits it,
// the sweep completes byte-identical to the 1-shard reference, and the
// counters prove no job merged before the kill was ever re-simulated.
func TestNodeKillRejoinMidSweep(t *testing.T) {
	spec := elasticSpec("kill-rejoin")
	want := referenceResults(t, spec)

	cl := clustertest.Start(t, 3, clustertest.Options{
		GenDelay:       50 * time.Millisecond,
		HealthInterval: 50 * time.Millisecond,
	})
	c := cl.Coordinator(t)
	h, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	total := len(h.Jobs())

	// The victim is the node owning the most jobs (pigeonhole: >= total/3).
	owned := make(map[string]int)
	for _, j := range h.Jobs() {
		owner, _ := c.OwnerOf(j.ID())
		owned[owner]++
	}
	var victimURL string
	for url, n := range owned {
		if n > owned[victimURL] {
			victimURL = url
		}
	}
	victim := cl.ByURL(victimURL)

	// Kill once at least one result has merged but the sweep is still
	// running — mid-sweep by construction.
	deadline := time.Now().Add(time.Minute)
	for {
		st := h.Status()
		if st.Completed >= 1 && st.State == "running" {
			break
		}
		if st.State != "running" || time.Now().After(deadline) {
			t.Fatalf("no mid-sweep kill window: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	survivorRunsAtKill := make(map[string]uint64)
	for _, n := range cl.Nodes {
		if n != victim {
			survivorRunsAtKill[n.Name] = n.Engine.Stats().RunsExecuted
		}
	}
	victim.Kill()
	// Everything merged from here back is the protected set: these jobs
	// must never be simulated again by anyone.
	mergedAtKill := 0
	mergedBytes := make(map[string][]byte)
	for _, r := range h.Results() {
		if r != nil && r.Err == "" && !r.Canceled {
			mergedAtKill++
			mergedBytes[r.ID] = canonicalResult(t, r)
		}
	}
	victim.Restart(t)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	res, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status.State != "done" || res.Status.Failed != 0 || res.Status.Canceled != 0 {
		t.Fatalf("sweep did not complete cleanly across the kill+rejoin: %+v", res.Status)
	}
	got := resultsByID(t, res)
	assertByteIdentical(t, want, got)
	// Results merged before the kill survived it byte-for-byte.
	for id, wb := range mergedBytes {
		if !bytes.Equal(wb, got[id]) {
			t.Errorf("pre-kill result %s changed across the rejoin", id)
		}
	}

	// Zero re-simulation of already-merged jobs, by counters: merged
	// slots never re-dispatch, so post-kill simulations anywhere in the
	// cluster are bounded by the unmerged remainder. The restarted
	// victim warm-starts from its disk CAS, so its counter covers only
	// genuinely new work too.
	postKillRuns := victim.Engine.Stats().RunsExecuted
	for _, n := range cl.Nodes {
		if n != victim {
			postKillRuns += n.Engine.Stats().RunsExecuted - survivorRunsAtKill[n.Name]
		}
	}
	if maxNew := uint64(total - mergedAtKill); postKillRuns > maxNew {
		t.Errorf("post-kill simulations = %d, want <= %d (total %d - %d merged before the kill): an already-merged job was re-simulated",
			postKillRuns, maxNew, total, mergedAtKill)
	}

	// The health loop re-admitted the restarted victim.
	waitFor(t, 30*time.Second, func() bool {
		st := c.Stats()
		return st.AlivePeers == 3 && st.RingRejoins >= 1
	}, "victim never rejoined the ring")
	if st := c.Stats(); st.JobsMerged != uint64(total) {
		t.Errorf("merged %d results, want %d", st.JobsMerged, total)
	}
}

// TestRejoinInventoryReplay pins the blob-directory replay half of
// rejoin: a peer whose disk CAS already holds every result is evicted
// (partitioned behind 503s) and later heals; on rejoin its inventory
// resolves the sweep's pending slots with zero simulations on the
// rejoined node — proven by its RunsExecuted standing still.
func TestRejoinInventoryReplay(t *testing.T) {
	spec := elasticSpec("inventory-replay")
	cl := clustertest.Start(t, 2, clustertest.Options{
		GenDelay:       150 * time.Millisecond,
		HealthInterval: 40 * time.Millisecond,
	})
	warm := cl.Nodes[1]

	// Pre-warm the node's cache in-process with every job of the sweep.
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := make(map[string][]byte, len(jobs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for _, j := range jobs {
		wg.Add(1)
		go func(j engine.JobSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, err := warm.Engine.RunJob(context.Background(), j)
			if err != nil {
				t.Errorf("pre-warm %s: %v", j.ID(), err)
				return
			}
			mu.Lock()
			wantBytes[r.ID] = canonicalResult(t, r)
			mu.Unlock()
		}(j)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	warmRuns := warm.Engine.Stats().RunsExecuted

	// Partition the warm node (reachable, answers 503 to everything)
	// and let the health loop evict it before the sweep submits.
	warm.Partition(true)
	c := cl.Coordinator(t)
	waitFor(t, 30*time.Second, func() bool { return c.Stats().AlivePeers == 1 },
		"partitioned peer never evicted")

	h, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Heal the partition mid-sweep: the slow survivor cannot have
	// finished 18 x 150ms generations yet.
	warm.Partition(false)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	res, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status.State != "done" || res.Status.Failed != 0 || res.Status.Canceled != 0 {
		t.Fatalf("sweep did not complete cleanly: %+v", res.Status)
	}
	assertByteIdentical(t, wantBytes, resultsByID(t, res))

	// The rejoined node served only from its cache: not one simulation.
	if got := warm.Engine.Stats().RunsExecuted; got != warmRuns {
		t.Errorf("rejoined node ran %d new simulations, want 0 (all %d results were already in its CAS)",
			got-warmRuns, len(jobs))
	}
	st := c.Stats()
	if st.RingRejoins < 1 {
		t.Errorf("ring rejoins = %d, want >= 1", st.RingRejoins)
	}
	if st.JobsRecovered < 1 {
		t.Errorf("jobs recovered = %d, want >= 1 (the inventory replay resolved pending slots)", st.JobsRecovered)
	}
	if st.JobsMerged != uint64(len(jobs)) {
		t.Errorf("merged %d, want %d", st.JobsMerged, len(jobs))
	}
}

// TestCoordinatorRestartMidSweep is the coordinator-HA acceptance
// scenario: the coordinator is closed mid-sweep and a new one over the
// same state directory resumes the sweep from its persisted checkpoint.
// The merged sweep is byte-identical to the 1-shard reference,
// already-merged jobs are recovered from the shard caches (counted, not
// re-dispatched), and the shard engines run no more new simulations
// than the unmerged remainder.
func TestCoordinatorRestartMidSweep(t *testing.T) {
	spec := elasticSpec("coordinator-restart")
	want := referenceResults(t, spec)

	cl := clustertest.Start(t, 3, clustertest.Options{GenDelay: 50 * time.Millisecond})
	stateDir := t.TempDir()

	c1 := cl.CoordinatorAt(t, stateDir)
	h1, err := c1.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	total := len(h1.Jobs())

	// Close mid-sweep, once some results merged.
	deadline := time.Now().Add(time.Minute)
	for {
		st := h1.Status()
		if st.Completed >= 2 && st.State == "running" {
			break
		}
		if st.State != "running" || time.Now().After(deadline) {
			t.Fatalf("no mid-sweep restart window: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	c1.Close()
	// Close settles the handle: whatever merged successfully is the
	// checkpointed set the next coordinator must not re-do.
	st1 := h1.Status()
	if st1.State != "canceled" || st1.Completed < 2 || st1.Completed >= total {
		t.Fatalf("shutdown settle: %+v (want a partially merged sweep)", st1)
	}
	mergedAtClose := st1.Completed
	runsAtClose := uint64(0)
	for _, n := range cl.Nodes {
		runsAtClose += n.Engine.Stats().RunsExecuted
	}

	c2 := cl.CoordinatorAt(t, stateDir)
	resumed, err := c2.Resume(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 || resumed[0].ID != h1.ID {
		t.Fatalf("resumed %d sweeps (%v), want exactly %q", len(resumed), resumed, h1.ID)
	}
	h2 := resumed[0]

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	res, err := h2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status.State != "done" || res.Status.Failed != 0 || res.Status.Canceled != 0 {
		t.Fatalf("resumed sweep did not complete cleanly: %+v", res.Status)
	}
	assertByteIdentical(t, want, resultsByID(t, res))

	st := c2.Stats()
	if st.SweepsResumed != 1 {
		t.Errorf("sweeps resumed = %d, want 1", st.SweepsResumed)
	}
	if st.JobsRecovered != uint64(mergedAtClose) {
		t.Errorf("jobs recovered = %d, want %d (every job merged before the restart, from cache)",
			st.JobsRecovered, mergedAtClose)
	}
	if distinct := st.JobsRouted - st.JobsRetried; distinct != uint64(total-mergedAtClose) {
		t.Errorf("distinct jobs dispatched after restart = %d, want %d: an already-merged job was re-dispatched",
			distinct, total-mergedAtClose)
	}
	if st.JobsMerged != uint64(total) {
		t.Errorf("merged %d, want %d", st.JobsMerged, total)
	}
	// Zero re-simulation of already-merged jobs, at the engines: new
	// simulations across the cluster are bounded by the unmerged
	// remainder (shard engines were never restarted, so their
	// content-addressed caches answer everything already run).
	runsAfter := uint64(0)
	for _, n := range cl.Nodes {
		runsAfter += n.Engine.Stats().RunsExecuted
	}
	if maxNew := uint64(total - mergedAtClose); runsAfter-runsAtClose > maxNew {
		t.Errorf("post-restart simulations = %d, want <= %d: an already-merged job was re-simulated",
			runsAfter-runsAtClose, maxNew)
	}

	// The resumed sweep completed cleanly, so its checkpoint is gone: a
	// third coordinator finds nothing to resume.
	c2.Close()
	c3 := cl.CoordinatorAt(t, stateDir)
	if left, err := c3.Resume(context.Background()); err != nil || len(left) != 0 {
		t.Errorf("Resume after clean completion = %d sweeps, %v; want none", len(left), err)
	}
}

// TestRuntimeJoinAnnounce: a node started after the coordinator joins
// the ring through the announce endpoint and immediately takes its
// keyspace share of a sweep.
func TestRuntimeJoinAnnounce(t *testing.T) {
	cl := clustertest.Start(t, 1, clustertest.Options{})
	c := cl.Coordinator(t)
	ts := httptest.NewServer(cluster.NewServer(c, cluster.ServerConfig{}).Handler())
	t.Cleanup(ts.Close)

	late := cl.StartNode(t)
	if err := cluster.Announce(context.Background(), nil, ts.URL, late.URL); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Peers != 2 || st.AlivePeers != 2 || st.RingJoins != 1 {
		t.Fatalf("after announce: %+v, want 2 live peers and 1 ring join", st)
	}
	// Announcing again is idempotent: already a live member.
	if err := cluster.Announce(context.Background(), nil, ts.URL, late.URL); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.RingJoins != 1 || st.AlivePeers != 2 {
		t.Fatalf("re-announce not idempotent: %+v", st)
	}

	res, err := c.Sweep(context.Background(), engine.SweepSpec{Name: "post-join", Banks: []int{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status.Failed != 0 || res.Status.Canceled != 0 {
		t.Fatalf("post-join sweep: %+v", res.Status)
	}
	for _, sh := range c.Stats().Shards {
		if sh.Routed == 0 {
			t.Errorf("shard %s routed no jobs; the joined node never took its keyspace share", sh.Peer)
		}
	}
}

// TestReplicatedOwnership: with OwnerReplicas=2 every merged result is
// written through to its second ring owner, so killing a job's primary
// owner loses nothing — the coordinator's job proxy serves it from the
// replica and counts the replica read.
func TestReplicatedOwnership(t *testing.T) {
	cl := clustertest.Start(t, 3, clustertest.Options{
		Replicas:       2,
		HealthInterval: -1, // membership frozen: the kill below must not re-shape the ring
	})
	c := cl.Coordinator(t)
	ts := httptest.NewServer(cluster.NewServer(c, cluster.ServerConfig{}).Handler())
	t.Cleanup(ts.Close)

	spec := elasticSpec("replicated")
	h, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	res, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status.Failed != 0 || res.Status.Canceled != 0 {
		t.Fatalf("sweep: %+v", res.Status)
	}
	total := uint64(len(h.Jobs()))

	// Replication is async; every job gets exactly one write-through
	// (two owners, the dispatch owner already has it).
	waitFor(t, 30*time.Second, func() bool { return c.Stats().ReplicaWrites >= total },
		"replica write-throughs never completed")
	st := c.Stats()
	if st.ReplicaWrites != total || st.ReplicaWriteFailures != 0 {
		t.Fatalf("replica writes = %d (failures %d), want %d clean", st.ReplicaWrites, st.ReplicaWriteFailures, total)
	}
	// Every result is resident on both of its ring owners' engines.
	for _, j := range h.Jobs() {
		id := j.ID()
		holders := 0
		for _, n := range cl.Nodes {
			if _, ok := n.Engine.Job(id); ok {
				holders++
			}
		}
		if holders < 2 {
			t.Fatalf("job %s resident on %d nodes, want >= 2", id, holders)
		}
	}

	// Kill a job's primary owner: the read proxy falls through to the
	// replica (the dead primary is still in the frozen ring, so the
	// fallback is a genuine replica read).
	victimJob := h.Jobs()[0].ID()
	primary, _ := c.OwnerOf(victimJob)
	cl.ByURL(primary).Kill()
	var got engine.JobResult
	if code := getJSON(t, ts.URL+"/v1/jobs/"+victimJob, &got); code != http.StatusOK {
		t.Fatalf("job read after killing its primary owner: status %d", code)
	}
	if got.ID != victimJob || got.Run == nil || got.Projection == nil {
		t.Fatalf("replica served a bad result: %+v", got)
	}
	if st := c.Stats(); st.ReplicaReads < 1 {
		t.Errorf("replica reads = %d, want >= 1", st.ReplicaReads)
	}
}

// TestStreamSeverFallsBackToPolling is the push-dataplane degradation
// scenario: one shard runs with event streaming disabled (a node that
// predates the feature) and the live shard streams are severed
// mid-sweep. The coordinator must degrade those dispatches to the
// status poll loop, finish the sweep byte-identical to the 1-shard
// reference, and never re-simulate a job merged before the sever —
// i.e. falling off the stream costs latency, not work.
func TestStreamSeverFallsBackToPolling(t *testing.T) {
	spec := elasticSpec("stream-sever")
	want := referenceResults(t, spec)

	// Node 2 is built with streaming disabled, so its dispatch counts a
	// fallback poll from the start; nodes 0 and 1 stream until severed.
	cl := clustertest.Start(t, 3, clustertest.Options{
		GenDelay:        50 * time.Millisecond,
		StreamlessNodes: []int{2},
	})
	c := cl.Coordinator(t)
	h, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	total := len(h.Jobs())

	// Wait for a live stream and at least one merged result, mid-sweep.
	waitFor(t, time.Minute, func() bool {
		st := c.Stats()
		return st.StreamsOpened >= 1 && st.JobsMerged >= 1 && h.Status().State == "running"
	}, "no mid-sweep sever window (stream open + >= 1 merge)")

	// Snapshot the protected set and the per-node run counters, then
	// keep severing established connections — event streams included —
	// until a dispatch demonstrably degrades to polling. The listeners
	// stay up, so health probes (fresh connections) keep passing: no
	// eviction, no re-route, just a stream falling back.
	runsAtSever := make(map[string]uint64)
	for _, n := range cl.Nodes {
		runsAtSever[n.Name] = n.Engine.Stats().RunsExecuted
	}
	mergedAtSever := 0
	for _, r := range h.Results() {
		if r != nil && r.Err == "" && !r.Canceled {
			mergedAtSever++
		}
	}
	for c.Stats().FallbackPolls == 0 && h.Status().State == "running" {
		cl.Nodes[0].SeverConnections()
		cl.Nodes[1].SeverConnections()
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	res, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status.State != "done" || res.Status.Failed != 0 || res.Status.Canceled != 0 {
		t.Fatalf("sweep did not complete cleanly across the sever: %+v", res.Status)
	}
	assertByteIdentical(t, want, resultsByID(t, res))

	st := c.Stats()
	if st.StreamsOpened < 1 {
		t.Errorf("streams opened = %d, want >= 1 (push path never engaged)", st.StreamsOpened)
	}
	if st.FallbackPolls < 1 {
		t.Errorf("fallback polls = %d, want >= 1 (no dispatch degraded)", st.FallbackPolls)
	}
	if st.JobsMerged != uint64(total) {
		t.Errorf("merged %d results, want %d", st.JobsMerged, total)
	}

	// Zero re-simulation of already-merged jobs, by counters: the sever
	// breaks connections, not nodes, so post-sever simulations anywhere
	// are bounded by the unmerged remainder.
	var postSeverRuns uint64
	for _, n := range cl.Nodes {
		postSeverRuns += n.Engine.Stats().RunsExecuted - runsAtSever[n.Name]
	}
	if maxNew := uint64(total - mergedAtSever); postSeverRuns > maxNew {
		t.Errorf("post-sever simulations = %d, want <= %d (total %d - %d merged before the sever): an already-merged job was re-simulated",
			postSeverRuns, maxNew, total, mergedAtSever)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

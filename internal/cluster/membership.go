package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"nbticache/internal/engine"
)

// DefaultHealthInterval paces the membership health-check loop when
// Options.HealthInterval is zero.
const DefaultHealthInterval = 2 * time.Second

// DefaultEvictAfterProbes is how many consecutive failed health probes
// evict a live peer when Options.EvictAfterProbes is zero. Two is the
// floor (one failure is indistinguishable from a dropped packet); three
// tolerates a GC pause or a brief listener restart.
const DefaultEvictAfterProbes = 3

// maxConcurrentReplicas bounds replica write-throughs in flight across
// all sweeps: each carries a full job result body, and replication is
// best-effort background work that must not starve dispatch.
const maxConcurrentReplicas = 4

// ringOp names a guarded live-ring mutation.
type ringOp int

const (
	ringAdd ringOp = iota
	ringRemove
)

// mutateRing is the ONLY place the coordinator's live ring is mutated
// (per-sweep snapshots from ringSnapshot are fair game — they are
// clones). Concentrating Add/Remove here keeps every membership change
// on one audited path; the ringchurn analyzer enforces it. The caller
// must hold c.mu.
func (c *Coordinator) mutateRing(op ringOp, peer string) {
	switch op {
	case ringAdd:
		c.ring.Add(peer)
	case ringRemove:
		c.ring.Remove(peer)
	}
}

// Join admits a peer at runtime: a brand-new peer is added to the ring
// immediately, a known-but-evicted peer is re-admitted, and a live one
// is a no-op. joined reports whether the ring changed. On any ring
// change the peer's blob inventory is replayed in the background so
// results it already holds resolve pending sweep slots without
// re-simulation.
func (c *Coordinator) Join(peer string) (joined bool, err error) {
	p, err := normalizePeer(peer)
	if err != nil {
		return false, err
	}
	c.mu.Lock()
	if c.closed.Load() {
		c.mu.Unlock()
		return false, fmt.Errorf("cluster: coordinator closed")
	}
	st := c.shards[p]
	switch {
	case st == nil:
		c.shards[p] = &shardState{alive: true}
		c.mutateRing(ringAdd, p)
		c.ringJoins.Add(1)
		joined = true
	case !st.alive:
		st.alive = true
		st.probeFails = 0
		c.mutateRing(ringAdd, p)
		c.ringRejoins.Add(1)
		joined = true
	}
	if joined {
		c.wg.Add(1)
		alive := c.ring.Len()
		c.mu.Unlock()
		c.log.Info("peer joined ring", "peer", p, "peers_alive", alive)
		go func() {
			defer c.wg.Done()
			c.replayInventory(p)
		}()
		return true, nil
	}
	c.mu.Unlock()
	return false, nil
}

// healthLoop periodically probes every known peer — evicted ones
// included, which is how a recovered peer finds its way back into the
// ring without operator action.
func (c *Coordinator) healthLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.health)
	defer ticker.Stop()
	for {
		select {
		case <-c.lifeCtx.Done():
			return
		case <-ticker.C:
			c.probePeers()
		}
	}
}

// probePeers probes every known peer concurrently and waits for the
// round to finish, so probe rounds never pile up behind a slow peer.
func (c *Coordinator) probePeers() {
	c.mu.Lock()
	peers := make([]string, 0, len(c.shards))
	for p := range c.shards {
		peers = append(peers, p)
	}
	c.mu.Unlock()
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			c.probePeer(p)
		}(p)
	}
	wg.Wait()
}

// probePeer health-checks one peer and applies the membership verdict:
// a healthy evicted peer rejoins (with an inventory replay), a healthy
// live peer has its failure streak reset, and a live peer failing its
// evictAfter'th consecutive probe is evicted. One failed probe alone
// never evicts — that is the regression the transient-5xx test pins.
func (c *Coordinator) probePeer(peer string) {
	timeout := c.health
	if timeout < 100*time.Millisecond {
		timeout = 100 * time.Millisecond
	}
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(c.lifeCtx, timeout)
	err := c.client.health(ctx, peer)
	cancel()
	healthy := err == nil

	c.mu.Lock()
	st := c.shards[peer]
	if st == nil {
		c.mu.Unlock()
		return
	}
	switch {
	case healthy && !st.alive:
		st.alive = true
		st.probeFails = 0
		c.mutateRing(ringAdd, peer)
		c.ringRejoins.Add(1)
		alive := c.ring.Len()
		c.mu.Unlock()
		c.log.Info("peer recovered, rejoining ring", "peer", peer, "peers_alive", alive)
		// Replay synchronously: probePeer already runs on a bounded
		// background goroutine, and the sooner pending slots resolve
		// from the rejoined peer's cache the less gets re-simulated.
		c.replayInventory(peer)
	case healthy:
		st.probeFails = 0
		c.mu.Unlock()
	case !st.alive:
		c.mu.Unlock()
	default:
		st.probeFails++
		if st.probeFails >= c.evictAfter {
			st.alive = false
			st.probeFails = 0
			c.mutateRing(ringRemove, peer)
			c.peerFailures.Add(1)
			alive := c.ring.Len()
			c.mu.Unlock()
			c.log.Warn("evicting unresponsive peer from ring",
				"peer", peer, "peers_alive", alive, "probe_error", err)
			return
		}
		fails := st.probeFails
		c.mu.Unlock()
		c.log.Warn("health probe failed (not evicting yet)",
			"peer", peer, "consecutive_failures", fails, "evict_after", c.evictAfter, "probe_error", err)
	}
}

// replayInventory asks a freshly (re)joined peer what job results its
// disk CAS already holds and resolves any matching pending slots of the
// open sweeps from that cache — the "nothing is re-simulated" half of
// the rejoin story. Best-effort: a failed replay costs nothing, the
// routing loop re-dispatches as usual.
func (c *Coordinator) replayInventory(peer string) {
	ctx, cancel := context.WithTimeout(c.lifeCtx, 30*time.Second)
	defer cancel()
	inv, err := c.client.inventory(ctx, peer)
	if err != nil {
		c.log.Warn("inventory replay failed", "peer", peer, "error", err)
		return
	}
	if len(inv.Jobs) == 0 {
		return
	}
	held := make(map[string]bool, len(inv.Jobs))
	for _, id := range inv.Jobs {
		held[id] = true
	}
	for _, h := range c.openHandles() {
		for _, s := range h.unresolved() {
			id := h.jobs[s].ID()
			if !held[id] {
				continue
			}
			res, found, err := c.client.job(ctx, peer, id)
			if err != nil || !found || res == nil || res.Canceled {
				continue
			}
			c.mergeResult(h, s, peer, res, true)
		}
	}
}

// openHandles snapshots the sweeps still routing, in ID order so the
// replay walks them deterministically.
func (c *Coordinator) openHandles() []*Handle {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Handle, 0, len(c.handles))
	for _, h := range c.handles {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// mergeResult is the single merge path: it records a result into its
// slot exactly once, keeps the global and per-shard counters coherent,
// counts recovered merges (resolved from an existing cache entry — a
// rejoin replay or a resumed sweep — rather than a fresh dispatch), and
// kicks off the replica write-through for successful results. It
// reports whether the slot was taken.
func (c *Coordinator) mergeResult(h *Handle, slot int, peer string, res *engine.JobResult, recovered bool) bool {
	if !h.record(slot, res) {
		return false
	}
	c.jobsMerged.Add(1)
	if recovered {
		c.jobsRecovered.Add(1)
	}
	c.mu.Lock()
	if st := c.shards[peer]; st != nil {
		st.merged++
	}
	c.mu.Unlock()
	if res.Err == "" && !res.Canceled {
		c.replicateResult(peer, res)
	}
	return true
}

// replicateResult writes a merged job result through to its other ring
// owners (Options.OwnerReplicas total, the dispatch source counting as
// one), so the result survives the source node dying. Asynchronous and
// best-effort: replication failures are counted, never surfaced to the
// sweep — the authoritative copy already merged.
func (c *Coordinator) replicateResult(src string, res *engine.JobResult) {
	if c.replicas <= 1 {
		return
	}
	c.mu.Lock()
	if c.closed.Load() {
		c.mu.Unlock()
		return
	}
	targets := make([]string, 0, c.replicas)
	for _, p := range c.ring.Owners(res.ID, c.replicas) {
		if p != src {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		c.mu.Unlock()
		return
	}
	c.wg.Add(1)
	c.mu.Unlock()
	go func() {
		defer c.wg.Done()
		for _, target := range targets {
			select {
			case c.replicaSlots <- struct{}{}:
			case <-c.lifeCtx.Done():
				return
			}
			ctx, cancel := context.WithTimeout(c.lifeCtx, 30*time.Second)
			err := c.client.putJob(ctx, target, res)
			cancel()
			<-c.replicaSlots
			if err != nil {
				c.replicaWriteFailures.Add(1)
				c.log.Warn("replica write-through failed",
					"job", res.ID, "target", target, "error", err)
				continue
			}
			c.replicaWrites.Add(1)
		}
	}()
}

// recoverResult resolves one slot from whichever live ring owner
// already caches its result, in succession order (primary first, then
// replicas — a replica hit counts toward ReplicaReads). Used by sweep
// resume for job IDs the pre-restart coordinator had already merged.
// Reports whether the slot resolved.
func (c *Coordinator) recoverResult(ctx context.Context, h *Handle, slot int) bool {
	id := h.jobs[slot].ID()
	for i, peer := range c.jobCandidates(id) {
		res, found, err := c.client.job(ctx, peer, id)
		if err != nil || !found || res == nil || res.Canceled {
			continue
		}
		if i > 0 {
			c.replicaReads.Add(1)
		}
		return c.mergeResult(h, slot, peer, res, true)
	}
	return false
}

// JoinRequest is the POST /v1/cluster/join body: the announcing node's
// advertised base URL.
type JoinRequest struct {
	Peer string `json:"peer"`
}

// JoinResponse reports the join verdict.
type JoinResponse struct {
	// Joined is true when the ring changed (new peer or rejoin), false
	// when the peer was already a live member.
	Joined bool `json:"joined"`
	// Peers is the live-member count after the join.
	Peers int `json:"peers"`
}

// Announce posts one join announcement for self to a coordinator's
// join endpoint. Nodes call it (with retry) at startup when -join
// names a coordinator; hc nil uses a short-timeout default.
func Announce(ctx context.Context, hc *http.Client, coordinator, self string) error {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	coordinator, err := normalizePeer(coordinator)
	if err != nil {
		return err
	}
	body, err := json.Marshal(JoinRequest{Peer: self})
	if err != nil {
		return err
	}
	sc := &shardClient{hc: hc}
	return sc.doJSON(ctx, http.MethodPost, coordinator+"/v1/cluster/join",
		body, "application/json", nil)
}

// Package index implements the time-varying bank-indexing function f() of
// the paper's dynamic-indexing architecture (Fig. 2). A Policy maps the p
// MSBs of the cache index (the "logical region") to a physical bank and is
// re-shuffled by infrequent update events (tied to cache flushes). Probing
// (Fig. 3a) rotates regions by an update counter; Scrambling (Fig. 3b)
// XORs them with an LFSR word. Identity is the degenerate policy of a
// conventional partitioned cache.
//
// The package also provides the share analysis used for lifetime
// projection: how much of the cache's multi-year life each physical bank
// spends hosting each logical region. Probing provably converges to a
// perfectly uniform 1/M share after M updates; Scrambling approaches it
// with an error that shrinks as 1/sqrt(N) in the number of updates N
// (both properties are verified by tests).
package index

import (
	"fmt"

	"nbticache/internal/hw"
)

// Policy is a time-varying mapping from logical region to physical bank.
// Implementations must be bijective at every epoch: distinct regions map
// to distinct banks, otherwise two regions would collide in one bank and
// the cache would lose capacity.
type Policy interface {
	// Name identifies the policy in reports ("identity", "probing",
	// "scrambling").
	Name() string
	// Banks returns M, the number of banks (and of logical regions).
	Banks() int
	// Map returns the physical bank currently hosting region r, for
	// r in [0, Banks()).
	Map(region uint) uint
	// Update advances to the next epoch (the "update" signal of
	// Fig. 2). The entire cache must be flushed when this fires.
	Update()
	// Epoch returns the number of updates applied so far.
	Epoch() uint64
	// Reset returns the policy to its time-zero mapping.
	Reset()
}

// bitsFor returns p = log2(banks), or an error when banks is not a power
// of two in [2, 2^MaxSelectBits]. M=1 is rejected: a single bank has no
// mapping to vary.
func bitsFor(banks int) (int, error) {
	if banks < 2 || banks&(banks-1) != 0 {
		return 0, fmt.Errorf("index: bank count %d is not a power of two >= 2", banks)
	}
	p := 0
	for m := banks; m > 1; m >>= 1 {
		p++
	}
	if p > hw.MaxSelectBits {
		return 0, fmt.Errorf("index: %d banks exceeds the %d-bit select budget", banks, hw.MaxSelectBits)
	}
	return p, nil
}

// Identity is the fixed mapping of a conventional partitioned cache
// (Fig. 1): region i lives in bank i forever. Update is a no-op beyond
// counting epochs, so flush-on-update semantics stay uniform across
// policies.
type Identity struct {
	banks int
	epoch uint64
}

// NewIdentity returns the identity policy for the given bank count.
func NewIdentity(banks int) (*Identity, error) {
	if _, err := bitsFor(banks); err != nil {
		return nil, err
	}
	return &Identity{banks: banks}, nil
}

// Name implements Policy.
func (p *Identity) Name() string { return "identity" }

// Banks implements Policy.
func (p *Identity) Banks() int { return p.banks }

// Map implements Policy.
func (p *Identity) Map(region uint) uint { return region % uint(p.banks) }

// Update implements Policy.
func (p *Identity) Update() { p.epoch++ }

// Epoch implements Policy.
func (p *Identity) Epoch() uint64 { return p.epoch }

// Reset implements Policy.
func (p *Identity) Reset() { p.epoch = 0 }

// Probing mimics linear probing in open-addressed hash tables: at epoch e,
// region i maps to bank (i + e) mod M. In hardware it is the p-bit adder
// plus update counter of Fig. 3a.
type Probing struct {
	banks int
	adder *hw.ModAdder
	cnt   *hw.UpdateCounter
	epoch uint64
}

// NewProbing returns a probing policy over the given bank count.
func NewProbing(banks int) (*Probing, error) {
	p, err := bitsFor(banks)
	if err != nil {
		return nil, err
	}
	adder, err := hw.NewModAdder(p)
	if err != nil {
		return nil, err
	}
	cnt, err := hw.NewUpdateCounter(p)
	if err != nil {
		return nil, err
	}
	return &Probing{banks: banks, adder: adder, cnt: cnt}, nil
}

// Name implements Policy.
func (p *Probing) Name() string { return "probing" }

// Banks implements Policy.
func (p *Probing) Banks() int { return p.banks }

// Map implements Policy.
func (p *Probing) Map(region uint) uint {
	return p.adder.Add(region, p.cnt.Value())
}

// Update implements Policy.
func (p *Probing) Update() {
	p.cnt.Bump()
	p.epoch++
}

// Epoch implements Policy.
func (p *Probing) Epoch() uint64 { return p.epoch }

// Reset implements Policy.
func (p *Probing) Reset() {
	p.cnt.Reset()
	p.epoch = 0
}

// Offset exposes the current rotation for tests and reports.
func (p *Probing) Offset() uint { return p.cnt.Value() }

// Scrambling XORs the region with a pseudo-random p-bit word drawn from a
// maximal-length LFSR on every update (Fig. 3b). XOR with any constant is
// a bijection, so capacity is preserved at every epoch; uniformity of the
// LFSR sequence yields quasi-uniform long-term shares.
type Scrambling struct {
	banks int
	lfsr  *hw.LFSR
	word  uint
	epoch uint64
	seed  uint
}

// DefaultLFSRWidth is the register width used when the caller does not
// need to control it: wide enough that the sequence does not repeat over
// any realistic number of daily updates within a cache lifetime.
const DefaultLFSRWidth = 16

// NewScrambling returns a scrambling policy using an LFSR of the given
// width seeded with seed. The p XOR bits are the LFSR's low bits.
func NewScrambling(banks, lfsrWidth int, seed uint) (*Scrambling, error) {
	p, err := bitsFor(banks)
	if err != nil {
		return nil, err
	}
	if lfsrWidth < p {
		return nil, fmt.Errorf("index: LFSR width %d narrower than bank address (%d bits)", lfsrWidth, p)
	}
	l, err := hw.NewLFSR(lfsrWidth, seed)
	if err != nil {
		return nil, err
	}
	return &Scrambling{banks: banks, lfsr: l, seed: seed}, nil
}

// Name implements Policy.
func (s *Scrambling) Name() string { return "scrambling" }

// Banks implements Policy.
func (s *Scrambling) Banks() int { return s.banks }

// Map implements Policy.
func (s *Scrambling) Map(region uint) uint {
	return (region ^ s.word) % uint(s.banks)
}

// Update implements Policy.
func (s *Scrambling) Update() {
	s.lfsr.Step()
	s.word = s.lfsr.Low(log2(s.banks))
	s.epoch++
}

// Epoch implements Policy.
func (s *Scrambling) Epoch() uint64 { return s.epoch }

// Reset implements Policy.
func (s *Scrambling) Reset() {
	s.lfsr.Seed(s.seed)
	s.word = 0
	s.epoch = 0
}

// Word exposes the current XOR mask for tests and reports.
func (s *Scrambling) Word() uint { return s.word }

func log2(m int) int {
	p := 0
	for ; m > 1; m >>= 1 {
		p++
	}
	return p
}

// Kind names a policy for configuration surfaces (CLIs, experiment
// configs).
type Kind string

// Supported policy kinds.
const (
	KindIdentity   Kind = "identity"
	KindProbing    Kind = "probing"
	KindScrambling Kind = "scrambling"
)

// New constructs a policy by kind with default parameters (scrambling uses
// DefaultLFSRWidth and the seed 1).
func New(kind Kind, banks int) (Policy, error) {
	switch kind {
	case KindIdentity:
		return NewIdentity(banks)
	case KindProbing:
		return NewProbing(banks)
	case KindScrambling:
		return NewScrambling(banks, DefaultLFSRWidth, 1)
	default:
		return nil, fmt.Errorf("index: unknown policy kind %q", kind)
	}
}

package index

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBadBankCounts(t *testing.T) {
	for _, m := range []int{0, 1, 3, 6, 1 << 12} {
		if _, err := NewIdentity(m); err == nil {
			t.Errorf("identity accepted %d banks", m)
		}
		if _, err := NewProbing(m); err == nil {
			t.Errorf("probing accepted %d banks", m)
		}
		if _, err := NewScrambling(m, 16, 1); err == nil {
			t.Errorf("scrambling accepted %d banks", m)
		}
	}
}

func TestIdentity(t *testing.T) {
	p, err := NewIdentity(4)
	if err != nil {
		t.Fatal(err)
	}
	for r := uint(0); r < 4; r++ {
		if p.Map(r) != r {
			t.Errorf("Map(%d) = %d", r, p.Map(r))
		}
	}
	p.Update()
	if p.Epoch() != 1 {
		t.Errorf("Epoch = %d", p.Epoch())
	}
	for r := uint(0); r < 4; r++ {
		if p.Map(r) != r {
			t.Errorf("after update, Map(%d) = %d", r, p.Map(r))
		}
	}
	p.Reset()
	if p.Epoch() != 0 {
		t.Errorf("Reset left epoch %d", p.Epoch())
	}
	if p.Name() != "identity" || p.Banks() != 4 {
		t.Error("metadata wrong")
	}
}

// TestPaperExample1 reproduces Example 1 of the paper: N=256 lines, M=4
// banks, 64 lines per bank, address (index) i=70. At time 0 it lives in
// bank 1; after each update probing advances it to banks 2, 3, 0.
// (The paper's printed arithmetic "70 mod 63 = 7" is a typo; the standard
// bit-slice gives line 70 mod 64 = 6, bank 70 div 64 = 1, and the same
// bank walk.)
func TestPaperExample1(t *testing.T) {
	const (
		lines        = 256
		banks        = 4
		linesPerBank = lines / banks
		addr         = 70
	)
	p, err := NewProbing(banks)
	if err != nil {
		t.Fatal(err)
	}
	region := uint(addr / linesPerBank)
	line := uint(addr % linesPerBank)
	if region != 1 || line != 6 {
		t.Fatalf("slice: region=%d line=%d, want 1, 6", region, line)
	}
	walk := []uint{1, 2, 3, 0, 1}
	for step, want := range walk {
		if got := p.Map(region); got != want {
			t.Errorf("after %d updates, bank = %d, want %d", step, got, want)
		}
		p.Update()
	}
}

func TestProbingRotation(t *testing.T) {
	p, _ := NewProbing(8)
	for e := 0; e < 20; e++ {
		for r := uint(0); r < 8; r++ {
			want := (r + uint(e)) % 8
			if got := p.Map(r); got != want {
				t.Fatalf("epoch %d: Map(%d) = %d, want %d", e, r, got, want)
			}
		}
		p.Update()
	}
	if p.Offset() != 20%8 {
		t.Errorf("Offset = %d", p.Offset())
	}
	p.Reset()
	if p.Offset() != 0 || p.Epoch() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestScramblingBijective(t *testing.T) {
	s, err := NewScrambling(8, 16, 0xBEEF)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 100; e++ {
		seen := make(map[uint]bool)
		for r := uint(0); r < 8; r++ {
			b := s.Map(r)
			if b >= 8 {
				t.Fatalf("epoch %d: bank %d out of range", e, b)
			}
			if seen[b] {
				t.Fatalf("epoch %d: bank %d hit twice (word %#x)", e, b, s.Word())
			}
			seen[b] = true
		}
		s.Update()
	}
}

func TestScramblingNarrowLFSRRejected(t *testing.T) {
	if _, err := NewScrambling(16, 3, 1); err == nil {
		t.Error("LFSR narrower than bank address accepted")
	}
}

func TestScramblingReset(t *testing.T) {
	s, _ := NewScrambling(4, 8, 0x5A)
	first := make([]uint, 10)
	for i := range first {
		s.Update()
		first[i] = s.Word()
	}
	s.Reset()
	if s.Word() != 0 || s.Epoch() != 0 {
		t.Fatal("Reset incomplete")
	}
	for i := range first {
		s.Update()
		if s.Word() != first[i] {
			t.Fatalf("replay diverged at update %d", i)
		}
	}
}

// Property: every policy is a bijection at every epoch.
func TestPoliciesBijectiveProperty(t *testing.T) {
	mk := []func() Policy{
		func() Policy { p, _ := NewIdentity(16); return p },
		func() Policy { p, _ := NewProbing(16); return p },
		func() Policy { p, _ := NewScrambling(16, 16, 3); return p },
	}
	for _, make := range mk {
		p := make()
		f := func(updates uint8) bool {
			p.Reset()
			for i := uint8(0); i < updates; i++ {
				p.Update()
			}
			var mask uint
			for r := uint(0); r < 16; r++ {
				mask |= 1 << p.Map(r)
			}
			return mask == 0xFFFF
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

func TestNewByKind(t *testing.T) {
	for _, k := range []Kind{KindIdentity, KindProbing, KindScrambling} {
		p, err := New(k, 4)
		if err != nil {
			t.Fatalf("New(%s): %v", k, err)
		}
		if p.Name() != string(k) {
			t.Errorf("New(%s).Name() = %s", k, p.Name())
		}
	}
	if _, err := New("bogus", 4); err == nil {
		t.Error("bogus kind accepted")
	}
}

func TestSharesProbingExactlyUniform(t *testing.T) {
	// The paper (via [7]): probing with increment 1 is perfectly uniform
	// once the number of updates is >= the number of slots (here, any
	// multiple of M).
	p, _ := NewProbing(4)
	sm, err := Shares(p, 8) // 2 full rotations
	if err != nil {
		t.Fatal(err)
	}
	if e := sm.MaxError(); e != 0 {
		t.Errorf("probing share error = %v, want exactly 0", e)
	}
}

func TestSharesIdentityDegenerate(t *testing.T) {
	p, _ := NewIdentity(4)
	sm, err := Shares(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Identity never moves anything: share matrix is the identity matrix.
	for b := 0; b < 4; b++ {
		for r := 0; r < 4; r++ {
			want := 0.0
			if b == r {
				want = 1.0
			}
			if sm.Share[b][r] != want {
				t.Errorf("Share[%d][%d] = %v, want %v", b, r, sm.Share[b][r], want)
			}
		}
	}
	if sm.MaxError() != 0.75 { // |1 - 1/4|
		t.Errorf("identity MaxError = %v, want 0.75", sm.MaxError())
	}
}

func TestSharesRowColSums(t *testing.T) {
	s, _ := NewScrambling(8, 12, 7)
	sm, err := Shares(s, 333)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 8; b++ {
		rowSum, colSum := 0.0, 0.0
		for r := 0; r < 8; r++ {
			rowSum += sm.Share[b][r]
			colSum += sm.Share[r][b]
		}
		if math.Abs(rowSum-1) > 1e-9 || math.Abs(colSum-1) > 1e-9 {
			t.Fatalf("bank %d: row sum %v col sum %v", b, rowSum, colSum)
		}
	}
}

// TestScramblingErrorDecaysRootN reproduces the paper's §IV-B2 argument:
// the scrambling share error is inversely proportional to sqrt(N).
func TestScramblingErrorDecaysRootN(t *testing.T) {
	s, _ := NewScrambling(4, 16, 1)
	scan, err := UniformityScan(s, []int{100, 10000})
	if err != nil {
		t.Fatal(err)
	}
	e100, e10k := scan[100], scan[10000]
	if e100 <= 0 {
		t.Fatalf("error at N=100 is %v, expected > 0", e100)
	}
	// 100x more epochs should shrink the error by about 10x; allow a
	// generous band (3x .. 40x) since a single LFSR stream is one sample
	// path, and in particular demand clear improvement.
	ratio := e100 / e10k
	if ratio < 3 || ratio > 40 {
		t.Errorf("error ratio e(100)/e(10000) = %v, want ~10 (band [3,40])", ratio)
	}
	// And by N=10000 the distribution should be close to uniform in
	// absolute terms.
	if e10k > 0.01 {
		t.Errorf("error at N=10000 = %v, want < 1%%", e10k)
	}
}

func TestSharesErrors(t *testing.T) {
	p, _ := NewProbing(4)
	if _, err := Shares(p, 0); err == nil {
		t.Error("Shares(0 epochs) accepted")
	}
	sm, _ := Shares(p, 4)
	if _, err := sm.BankDuty([]float64{1, 2}); err == nil {
		t.Error("BankDuty with wrong-length vector accepted")
	}
}

func TestBankDutyProbingAverages(t *testing.T) {
	p, _ := NewProbing(4)
	sm, err := Shares(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	duty := []float64{0.0246, 0.9998, 0.9998, 0.0375} // adpcm.dec, Table I
	got, err := sm.BankDuty(duty)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.0246 + 0.9998 + 0.9998 + 0.0375) / 4
	for b, d := range got {
		if math.Abs(d-want) > 1e-12 {
			t.Errorf("bank %d duty = %v, want uniform %v", b, d, want)
		}
	}
}

func TestSharesLeavePolicyReset(t *testing.T) {
	p, _ := NewProbing(4)
	p.Update()
	if _, err := Shares(p, 6); err != nil {
		t.Fatal(err)
	}
	if p.Epoch() != 0 || p.Offset() != 0 {
		t.Error("Shares left the policy perturbed")
	}
}

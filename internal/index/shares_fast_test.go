package index

import (
	"testing"
)

// TestSharesFastPathsMatchGeneric pins the analytic share fast paths to
// the generic epoch walk, bit for bit, across bank counts and epoch
// counts that are and are not multiples of M.
func TestSharesFastPathsMatchGeneric(t *testing.T) {
	epochs := []int{1, 2, 3, 7, 8, 63, 64, 100, 4096, 4097}
	for _, m := range []int{2, 4, 8, 16, 64} {
		for _, n := range epochs {
			for _, kind := range []Kind{KindIdentity, KindProbing, KindScrambling} {
				fastPol, err := New(kind, m)
				if err != nil {
					t.Fatal(err)
				}
				genPol, err := New(kind, m)
				if err != nil {
					t.Fatal(err)
				}
				fast, err := Shares(fastPol, n)
				if err != nil {
					t.Fatalf("%s M=%d n=%d: %v", kind, m, n, err)
				}
				gen, err := sharesGeneric(genPol, n)
				if err != nil {
					t.Fatalf("%s M=%d n=%d generic: %v", kind, m, n, err)
				}
				if fast.Banks != gen.Banks || fast.Epochs != gen.Epochs {
					t.Fatalf("%s M=%d n=%d: header mismatch %+v vs %+v", kind, m, n, fast, gen)
				}
				for b := range gen.Share {
					for r := range gen.Share[b] {
						if fast.Share[b][r] != gen.Share[b][r] {
							t.Fatalf("%s M=%d n=%d: Share[%d][%d] = %v, generic %v",
								kind, m, n, b, r, fast.Share[b][r], gen.Share[b][r])
						}
					}
				}
			}
		}
	}
}

// TestSharesFastPathLeavesPolicyReset mirrors TestSharesLeavePolicyReset
// for the scrambling fast path, which steps the policy's own LFSR.
func TestSharesFastPathLeavesPolicyReset(t *testing.T) {
	pol, err := NewScrambling(8, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	pol.Update()
	pol.Reset()
	if _, err := Shares(pol, 100); err != nil {
		t.Fatal(err)
	}
	if pol.Epoch() != 0 || pol.Word() != 0 {
		t.Fatalf("Shares left scrambling policy perturbed: epoch %d word %d", pol.Epoch(), pol.Word())
	}
}

// customPolicy exercises the generic fallback for policies outside this
// package.
type customPolicy struct{ Identity }

func TestSharesGenericFallback(t *testing.T) {
	id, err := NewIdentity(4)
	if err != nil {
		t.Fatal(err)
	}
	cp := &customPolicy{Identity: *id}
	sm, err := Shares(cp, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Share[0][0] != 1 || sm.Share[1][0] != 0 {
		t.Fatalf("generic fallback wrong: %+v", sm.Share)
	}
}

package index

import (
	"fmt"
	"math"
)

// ShareMatrix describes how a policy distributes logical regions over
// physical banks across many epochs: Share[bank][region] is the fraction
// of epochs during which the bank hosted the region. Rows and columns each
// sum to 1 because the mapping is bijective at every epoch.
type ShareMatrix struct {
	Banks  int
	Epochs int
	Share  [][]float64
}

// Shares tallies hosting shares over n epochs of the policy (including
// the initial epoch-0 mapping, before any update). The policy is Reset
// first and left reset after, so analysis never perturbs a live
// simulation. n must be >= 1.
//
// The three built-in policies take closed-form or O(n + M^2) fast paths
// instead of the O(n*M) epoch walk — with 4096 service-life epochs the
// walk dominated whole-sweep profiles. The fast paths reproduce the walk
// bit for bit (each tallies exact integer epoch counts and scales by the
// same 1/n), which TestSharesFastPathsMatchGeneric pins.
func Shares(p Policy, n int) (*ShareMatrix, error) {
	if n < 1 {
		return nil, fmt.Errorf("index: share analysis needs >= 1 epoch, got %d", n)
	}
	switch pol := p.(type) {
	case *Identity:
		p.Reset() // honour the "left reset" contract even without a walk
		return identityShares(pol.banks, n), nil
	case *Probing:
		p.Reset()
		return probingShares(pol.banks, n), nil
	case *Scrambling:
		return scramblingShares(pol, n), nil
	}
	return sharesGeneric(p, n)
}

// sharesGeneric is the reference epoch walk, kept for third-party Policy
// implementations and as the oracle the fast paths are tested against.
func sharesGeneric(p Policy, n int) (*ShareMatrix, error) {
	m := p.Banks()
	sm := newShareMatrix(m, n)
	p.Reset()
	for e := 0; e < n; e++ {
		for r := 0; r < m; r++ {
			b := p.Map(uint(r))
			if b >= uint(m) {
				return nil, fmt.Errorf("index: policy %s mapped region %d to bank %d of %d", p.Name(), r, b, m)
			}
			sm.Share[b][r]++
		}
		p.Update()
	}
	p.Reset()
	sm.scale()
	return sm, nil
}

func newShareMatrix(m, n int) *ShareMatrix {
	sm := &ShareMatrix{Banks: m, Epochs: n, Share: make([][]float64, m)}
	for b := range sm.Share {
		sm.Share[b] = make([]float64, m)
	}
	return sm
}

// scale turns tallied epoch counts into fractions, exactly as the epoch
// walk does (count accumulated in a float64, then one multiply by 1/n).
func (sm *ShareMatrix) scale() {
	inv := 1 / float64(sm.Epochs)
	for b := range sm.Share {
		for r := range sm.Share[b] {
			sm.Share[b][r] *= inv
		}
	}
}

// identityShares: region r is hosted by bank r in every epoch.
func identityShares(m, n int) *ShareMatrix {
	sm := newShareMatrix(m, n)
	for r := 0; r < m; r++ {
		sm.Share[r][r] = float64(n)
	}
	sm.scale()
	return sm
}

// probingShares: at epoch e the rotation offset is e mod M (the p-bit
// update counter wraps), so bank b hosts region r during the epochs with
// e mod M == (b-r) mod M — that is n/M epochs, plus one more when
// (b-r) mod M < n mod M.
func probingShares(m, n int) *ShareMatrix {
	sm := newShareMatrix(m, n)
	q, rem := n/m, n%m
	for r := 0; r < m; r++ {
		for d := 0; d < m; d++ { // d = offset = (b-r) mod M
			count := q
			if d < rem {
				count++
			}
			sm.Share[(r+d)%m][r] = float64(count)
		}
	}
	sm.scale()
	return sm
}

// scramblingShares: every region is XORed with the same LFSR word within
// one epoch, so one walk over the n-word sequence tallies how often each
// of the M possible words occurs, and the M x M matrix follows from
// Share[(r^w)%M][r] = count[w]/n. This replaces n*M Map calls with n LFSR
// steps.
func scramblingShares(p *Scrambling, n int) *ShareMatrix {
	m := p.banks
	sm := newShareMatrix(m, n)
	p.Reset()
	count := make([]float64, m)
	for e := 0; e < n; e++ {
		count[int(p.word)%m]++
		p.Update()
	}
	p.Reset()
	for r := 0; r < m; r++ {
		for w := 0; w < m; w++ {
			sm.Share[(r^w)%m][r] = count[w]
		}
	}
	sm.scale()
	return sm
}

// MaxError returns the largest absolute deviation of any share from the
// ideal 1/M — the paper's "error of the RNG" for Scrambling, exactly zero
// for Probing once Epochs is a multiple of M.
func (sm *ShareMatrix) MaxError() float64 {
	ideal := 1 / float64(sm.Banks)
	worst := 0.0
	for _, row := range sm.Share {
		for _, s := range row {
			if d := math.Abs(s - ideal); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// BankDuty folds a per-region duty vector (e.g. per-region aging stress or
// sleep fractions) through the share matrix, returning the long-term
// per-bank duty: duty[b] = sum_r Share[b][r] * regionDuty[r]. This is the
// bridge from trace-level per-region measurements to multi-year per-bank
// aging exposure.
func (sm *ShareMatrix) BankDuty(regionDuty []float64) ([]float64, error) {
	if len(regionDuty) != sm.Banks {
		return nil, fmt.Errorf("index: duty vector has %d entries for %d banks", len(regionDuty), sm.Banks)
	}
	out := make([]float64, sm.Banks)
	for b, row := range sm.Share {
		for r, s := range row {
			out[b] += s * regionDuty[r]
		}
	}
	return out, nil
}

// UniformityScan measures MaxError as a function of the number of epochs,
// at the given sample points, reproducing the paper's argument that the
// Scrambling error decays like 1/sqrt(N) while Probing is exactly uniform
// at multiples of M.
func UniformityScan(p Policy, points []int) (map[int]float64, error) {
	out := make(map[int]float64, len(points))
	for _, n := range points {
		sm, err := Shares(p, n)
		if err != nil {
			return nil, err
		}
		out[n] = sm.MaxError()
	}
	return out, nil
}

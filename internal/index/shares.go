package index

import (
	"fmt"
	"math"
)

// ShareMatrix describes how a policy distributes logical regions over
// physical banks across many epochs: Share[bank][region] is the fraction
// of epochs during which the bank hosted the region. Rows and columns each
// sum to 1 because the mapping is bijective at every epoch.
type ShareMatrix struct {
	Banks  int
	Epochs int
	Share  [][]float64
}

// Shares simulates n epochs of the policy (including the initial epoch-0
// mapping, before any update) and tallies hosting shares. The policy is
// Reset first and left reset after, so analysis never perturbs a live
// simulation. n must be >= 1.
func Shares(p Policy, n int) (*ShareMatrix, error) {
	if n < 1 {
		return nil, fmt.Errorf("index: share analysis needs >= 1 epoch, got %d", n)
	}
	m := p.Banks()
	sm := &ShareMatrix{Banks: m, Epochs: n, Share: make([][]float64, m)}
	for b := range sm.Share {
		sm.Share[b] = make([]float64, m)
	}
	p.Reset()
	for e := 0; e < n; e++ {
		for r := 0; r < m; r++ {
			b := p.Map(uint(r))
			if b >= uint(m) {
				return nil, fmt.Errorf("index: policy %s mapped region %d to bank %d of %d", p.Name(), r, b, m)
			}
			sm.Share[b][r]++
		}
		p.Update()
	}
	p.Reset()
	inv := 1 / float64(n)
	for b := range sm.Share {
		for r := range sm.Share[b] {
			sm.Share[b][r] *= inv
		}
	}
	return sm, nil
}

// MaxError returns the largest absolute deviation of any share from the
// ideal 1/M — the paper's "error of the RNG" for Scrambling, exactly zero
// for Probing once Epochs is a multiple of M.
func (sm *ShareMatrix) MaxError() float64 {
	ideal := 1 / float64(sm.Banks)
	worst := 0.0
	for _, row := range sm.Share {
		for _, s := range row {
			if d := math.Abs(s - ideal); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// BankDuty folds a per-region duty vector (e.g. per-region aging stress or
// sleep fractions) through the share matrix, returning the long-term
// per-bank duty: duty[b] = sum_r Share[b][r] * regionDuty[r]. This is the
// bridge from trace-level per-region measurements to multi-year per-bank
// aging exposure.
func (sm *ShareMatrix) BankDuty(regionDuty []float64) ([]float64, error) {
	if len(regionDuty) != sm.Banks {
		return nil, fmt.Errorf("index: duty vector has %d entries for %d banks", len(regionDuty), sm.Banks)
	}
	out := make([]float64, sm.Banks)
	for b, row := range sm.Share {
		for r, s := range row {
			out[b] += s * regionDuty[r]
		}
	}
	return out, nil
}

// UniformityScan measures MaxError as a function of the number of epochs,
// at the given sample points, reproducing the paper's argument that the
// Scrambling error decays like 1/sqrt(N) while Probing is exactly uniform
// at multiples of M.
func UniformityScan(p Policy, points []int) (map[int]float64, error) {
	out := make(map[int]float64, len(points))
	for _, n := range points {
		sm, err := Shares(p, n)
		if err != nil {
			return nil, err
		}
		out[n] = sm.MaxError()
	}
	return out, nil
}

package sram

import (
	"fmt"
)

// snmSamples is the VTC sampling density used by the SNM solver; snmGrid
// is the state-space grid for the bistability test. Both are chosen so
// the SNM converges to well under a millivolt, which is far finer than
// the 20%-degradation criterion needs.
const (
	snmSamples = 257
	snmGrid    = 513
	snmTol     = 1e-5 // volts
)

// ReadSNM computes the read static noise margin: the largest series DC
// noise voltage the cell tolerates on both inverter inputs (adversarial
// polarity) without flipping, in read mode (wordlines high, bitlines
// precharged). It equals the side of the maximal square inscribed in the
// read butterfly diagram. For an asymmetric (unevenly aged) cell the
// worse of the two noise polarities is returned, matching the paper's
// use of read SNM as "the worst case condition for aging".
func (c *Cell) ReadSNM() (float64, error) {
	g0, err := c.ReadVTC(0, snmSamples)
	if err != nil {
		return 0, err
	}
	g1, err := c.ReadVTC(1, snmSamples)
	if err != nil {
		return 0, err
	}
	return snmFromVTCs(g0, g1, c.p.Vdd)
}

// HoldSNM computes the standby (access transistors off) noise margin.
func (c *Cell) HoldSNM() (float64, error) {
	g0, err := c.HoldVTC(0, snmSamples)
	if err != nil {
		return 0, err
	}
	g1, err := c.HoldVTC(1, snmSamples)
	if err != nil {
		return 0, err
	}
	return snmFromVTCs(g0, g1, c.p.Vdd)
}

func snmFromVTCs(g0, g1 *VTC, vdd float64) (float64, error) {
	// The cell is the loop x -> y = g1(x) -> x' = g0(y). Without noise it
	// must be bistable; with series noise n of adversarial polarity the
	// loop map is perturbed and the SNM is the largest n keeping three
	// fixed points.
	if !bistable(g0, g1, vdd, 0, +1) || !bistable(g0, g1, vdd, 0, -1) {
		return 0, nil // already monostable: the cell is dead
	}
	snmPlus := maxNoise(g0, g1, vdd, +1)
	snmMinus := maxNoise(g0, g1, vdd, -1)
	if snmMinus < snmPlus {
		return snmMinus, nil
	}
	return snmPlus, nil
}

// maxNoise bisects for the largest noise amplitude that keeps the loop
// bistable for one polarity.
func maxNoise(g0, g1 *VTC, vdd float64, polarity int) float64 {
	lo, hi := 0.0, vdd/2
	if bistable(g0, g1, vdd, hi, polarity) {
		return hi // pathological, but bounded
	}
	for hi-lo > snmTol {
		mid := 0.5 * (lo + hi)
		if bistable(g0, g1, vdd, mid, polarity) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// bistable evaluates the noise-perturbed loop map over a grid and counts
// fixed-point crossings; three or more sign changes of h(x)-x mean both
// stable states (and the metastable point) survive.
//
// Polarity +1 attacks the state with x (node Q) high: the noise subtracts
// from inverter 1's input and adds to inverter 0's input. Polarity -1
// attacks the x-low state symmetrically.
func bistable(g0, g1 *VTC, vdd, n float64, polarity int) bool {
	s := float64(polarity)
	crossings := 0
	prevSign := 0
	for i := 0; i < snmGrid; i++ {
		x := vdd * float64(i) / float64(snmGrid-1)
		y := g1.Eval(x - s*n)
		hx := g0.Eval(y + s*n)
		d := hx - x
		sign := 0
		if d > 0 {
			sign = 1
		} else if d < 0 {
			sign = -1
		}
		if sign != 0 && prevSign != 0 && sign != prevSign {
			crossings++
		}
		if sign != 0 {
			prevSign = sign
		}
	}
	return crossings >= 2 // 3 fixed points = 2 sign flips of h(x)-x
}

// Butterfly returns the two read-mode VTC branches sampled on a common
// input grid, in the orientation of the classic butterfly plot: branch A
// is (x, g1(x)) and branch B is (g0(y), y). It is used by cmd/agingchar
// to dump plottable curves.
func (c *Cell) Butterfly(samples int) (xs, ya, yb []float64, err error) {
	if samples < 2 {
		return nil, nil, nil, fmt.Errorf("sram: need >= 2 butterfly samples")
	}
	g0, err := c.ReadVTC(0, samples)
	if err != nil {
		return nil, nil, nil, err
	}
	g1, err := c.ReadVTC(1, samples)
	if err != nil {
		return nil, nil, nil, err
	}
	xs = make([]float64, samples)
	ya = make([]float64, samples)
	yb = make([]float64, samples)
	for i := range xs {
		x := c.p.Vdd * float64(i) / float64(samples-1)
		xs[i] = x
		ya[i] = g1.Eval(x)
		yb[i] = g0.Eval(x) // interpreted as x(y) when plotted transposed
	}
	return xs, ya, yb, nil
}

package sram

import (
	"math"
	"testing"

	"nbticache/internal/device"
)

func newTestCell(t *testing.T) *Cell {
	t.Helper()
	c, err := NewCell(DefaultCell(device.DefaultTech45()))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCellParamsValidate(t *testing.T) {
	good := DefaultCell(device.DefaultTech45())
	if err := good.Validate(); err != nil {
		t.Fatalf("good cell rejected: %v", err)
	}
	bad := good
	bad.Vdd = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero Vdd accepted")
	}
	bad = good
	bad.PullUp.Kind = device.NMOS
	if err := bad.Validate(); err == nil {
		t.Error("NMOS pull-up accepted")
	}
	bad = good
	bad.Access.WL = -1
	if err := bad.Validate(); err == nil {
		t.Error("bad access device accepted")
	}
	if _, err := NewCell(bad); err == nil {
		t.Error("NewCell accepted bad params")
	}
}

func TestSetAging(t *testing.T) {
	c := newTestCell(t)
	if err := c.SetAging(0.01, 0.02); err != nil {
		t.Fatal(err)
	}
	d0, d1 := c.Aging()
	if d0 != 0.01 || d1 != 0.02 {
		t.Errorf("Aging() = %v, %v", d0, d1)
	}
	if err := c.SetAging(-0.01, 0); err == nil {
		t.Error("negative shift accepted")
	}
}

func TestHoldVTCRailToRail(t *testing.T) {
	c := newTestCell(t)
	v, err := c.HoldVTC(0, 129)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := v.Swing()
	if lo > 0.05 {
		t.Errorf("hold VTC low level %v V, want near 0", lo)
	}
	if hi < c.Vdd()-0.05 {
		t.Errorf("hold VTC high level %v V, want near Vdd", hi)
	}
	// Inverting: output at vin=0 is high, at vin=Vdd is low.
	if v.Eval(0) < v.Eval(c.Vdd()) {
		t.Error("VTC is not inverting")
	}
}

func TestReadVTCReadDisturb(t *testing.T) {
	c := newTestCell(t)
	v, err := c.ReadVTC(0, 129)
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := v.Swing()
	// In read mode the access transistor fights the pull-down, so the
	// low level rises above ground (the classic read disturb) but must
	// stay well below the trip point for a functional cell.
	if lo < 0.01 {
		t.Errorf("read-disturb level %v V suspiciously low (access off?)", lo)
	}
	if lo > 0.4 {
		t.Errorf("read-disturb level %v V too high for a functional cell", lo)
	}
}

func TestVTCMonotoneDecreasing(t *testing.T) {
	c := newTestCell(t)
	v, err := c.ReadVTC(1, 257)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for i := 0; i <= 100; i++ {
		x := c.Vdd() * float64(i) / 100
		y := v.Eval(x)
		if y > prev+1e-6 {
			t.Fatalf("VTC not monotone at vin=%v: %v > %v", x, y, prev)
		}
		prev = y
	}
}

func TestVTCEvalClamps(t *testing.T) {
	c := newTestCell(t)
	v, _ := c.ReadVTC(0, 65)
	if v.Eval(-1) != v.Eval(0) {
		t.Error("Eval below 0 not clamped")
	}
	if v.Eval(99) != v.Eval(c.Vdd()) {
		t.Error("Eval above Vdd not clamped")
	}
}

func TestVTCArgErrors(t *testing.T) {
	c := newTestCell(t)
	if _, err := c.ReadVTC(2, 64); err == nil {
		t.Error("side 2 accepted")
	}
	if _, err := c.ReadVTC(0, 1); err == nil {
		t.Error("1 sample accepted")
	}
	if _, err := c.HoldVTC(-1, 64); err == nil {
		t.Error("side -1 accepted")
	}
}

func TestFreshSNMPlausible(t *testing.T) {
	c := newTestCell(t)
	read, err := c.ReadSNM()
	if err != nil {
		t.Fatal(err)
	}
	hold, err := c.HoldSNM()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fresh cell: read SNM = %.1f mV, hold SNM = %.1f mV", read*1e3, hold*1e3)
	// Plausibility band for a 1.1 V 45nm cell.
	if read < 0.05 || read > 0.40 {
		t.Errorf("read SNM %v V outside plausible band", read)
	}
	if hold <= read {
		t.Errorf("hold SNM %v not above read SNM %v", hold, read)
	}
}

func TestSNMSymmetricCellBalanced(t *testing.T) {
	// With identical sides, both noise polarities must give the same
	// margin, so aging both PMOS equally should degrade gracefully.
	c := newTestCell(t)
	base, _ := c.ReadSNM()
	if err := c.SetAging(0.05, 0.05); err != nil {
		t.Fatal(err)
	}
	aged, _ := c.ReadSNM()
	if aged >= base {
		t.Errorf("balanced aging did not degrade SNM: %v -> %v", base, aged)
	}
	if aged < base*0.3 {
		t.Errorf("50mV balanced shift collapsed SNM implausibly: %v -> %v", base, aged)
	}
}

func TestSNMMonotoneInAging(t *testing.T) {
	c := newTestCell(t)
	prev := math.Inf(1)
	for _, dv := range []float64{0, 0.02, 0.05, 0.10, 0.15} {
		if err := c.SetAging(dv, dv); err != nil {
			t.Fatal(err)
		}
		snm, err := c.ReadSNM()
		if err != nil {
			t.Fatal(err)
		}
		if snm > prev+1e-4 {
			t.Fatalf("SNM not monotone in dVth: %v V at shift %v (prev %v)", snm, dv, prev)
		}
		prev = snm
	}
}

func TestSNMAsymmetricWorseThanBalanced(t *testing.T) {
	// The paper's background ([11]): balanced degradation (p0 = 0.5) is
	// the best case. One-sided stress of 2x the per-side shift must hurt
	// at least as much as the balanced split of the same total.
	c := newTestCell(t)
	if err := c.SetAging(0.04, 0.04); err != nil {
		t.Fatal(err)
	}
	balanced, _ := c.ReadSNM()
	if err := c.SetAging(0.08, 0.0); err != nil {
		t.Fatal(err)
	}
	oneSided, _ := c.ReadSNM()
	if oneSided > balanced+1e-3 {
		t.Errorf("one-sided aging (%.1f mV) beat balanced (%.1f mV)", oneSided*1e3, balanced*1e3)
	}
}

func TestButterfly(t *testing.T) {
	c := newTestCell(t)
	xs, ya, yb, err := c.Butterfly(33)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 33 || len(ya) != 33 || len(yb) != 33 {
		t.Fatal("wrong sample counts")
	}
	if xs[0] != 0 || math.Abs(xs[32]-c.Vdd()) > 1e-12 {
		t.Errorf("x grid endpoints wrong: %v .. %v", xs[0], xs[32])
	}
	if _, _, _, err := c.Butterfly(1); err == nil {
		t.Error("1 sample accepted")
	}
}

func TestHeavyAgingDegradesFar(t *testing.T) {
	// An enormous threshold shift must push the read SNM far below the
	// fresh value and never below zero. (It does not reach exactly zero
	// in read mode: with the wordline high the bitline-side access
	// transistor still props up the high node even with dead pull-ups,
	// which is faithful read-disturb physics.)
	c := newTestCell(t)
	fresh, err := c.ReadSNM()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetAging(0.7, 0.7); err != nil {
		t.Fatal(err)
	}
	snm, err := c.ReadSNM()
	if err != nil {
		t.Fatal(err)
	}
	if snm < 0 {
		t.Errorf("SNM went negative: %v", snm)
	}
	if snm > 0.6*fresh {
		t.Errorf("dead cell SNM = %v, want far below fresh %v", snm, fresh)
	}
}

func BenchmarkReadSNM(b *testing.B) {
	c, err := NewCell(DefaultCell(device.DefaultTech45()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadSNM(); err != nil {
			b.Fatal(err)
		}
	}
}

// Package sram models the 6T SRAM bitcell and computes its Static Noise
// Margin, the aging metric of the paper ("the minimum DC noise voltage
// necessary to change the state of an SRAM cell"). The read-mode VTC of
// each half cell — cross-coupled inverter with its access transistor
// pulling the storage node toward the precharged bitline — is solved
// numerically by nodal bisection on the alpha-power device models, the
// butterfly diagram is composed from the two VTCs, and the SNM is found as
// the largest tolerable series noise (equivalently, the maximal inscribed
// square of the butterfly).
//
// NBTI enters through per-side PMOS threshold shifts (SetAging): the
// post-stress SNM divided by the pre-stress SNM is the degradation the
// aging framework tracks against the paper's 20% end-of-life criterion.
package sram

import (
	"fmt"
	"math"

	"nbticache/internal/device"
)

// CellParams describes a 6T cell: supply plus the three device templates
// with their W/L ratios. Defaults follow standard 6T sizing practice
// (cell ratio PD/AX ~ 1.5, pull-up ratio PU/AX ~ 0.6).
type CellParams struct {
	Vdd      float64
	PullDown device.Device // NMOS driver
	Access   device.Device // NMOS pass gate
	PullUp   device.Device // PMOS load
}

// DefaultCell returns the cell used for all experiments, built on the
// given technology.
func DefaultCell(tech device.Tech45) CellParams {
	pd := tech.NMOS
	pd.WL = 2.0
	ax := tech.NMOS
	ax.WL = 1.3
	pu := tech.PMOS
	pu.WL = 0.8
	return CellParams{Vdd: tech.Vdd, PullDown: pd, Access: ax, PullUp: pu}
}

// Validate checks the cell parameters.
func (p CellParams) Validate() error {
	if p.Vdd <= 0 {
		return fmt.Errorf("sram: Vdd %v must be positive", p.Vdd)
	}
	for _, d := range []struct {
		dev  device.Device
		kind device.Kind
		name string
	}{
		{p.PullDown, device.NMOS, "pull-down"},
		{p.Access, device.NMOS, "access"},
		{p.PullUp, device.PMOS, "pull-up"},
	} {
		if err := d.dev.Validate(); err != nil {
			return fmt.Errorf("sram: %s: %w", d.name, err)
		}
		if d.dev.Kind != d.kind {
			return fmt.Errorf("sram: %s transistor has polarity %s", d.name, d.dev.Kind)
		}
	}
	return nil
}

// Cell is a 6T cell instance with per-side NBTI threshold shifts.
// Side 0 is the inverter driving node Q (its PMOS is stressed while the
// cell stores 0 on Q); side 1 drives Qbar.
type Cell struct {
	p     CellParams
	dvthP [2]float64
}

// NewCell builds a cell; it returns an error for invalid parameters.
func NewCell(p CellParams) (*Cell, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Cell{p: p}, nil
}

// SetAging applies NBTI threshold shifts (magnitudes, in volts) to the two
// pull-up PMOS devices. Negative shifts are rejected: NBTI only weakens.
func (c *Cell) SetAging(dvth0, dvth1 float64) error {
	if dvth0 < 0 || dvth1 < 0 {
		return fmt.Errorf("sram: negative Vth shift (%v, %v)", dvth0, dvth1)
	}
	c.dvthP[0], c.dvthP[1] = dvth0, dvth1
	return nil
}

// Aging returns the current per-side PMOS threshold shifts.
func (c *Cell) Aging() (dvth0, dvth1 float64) { return c.dvthP[0], c.dvthP[1] }

// Vdd returns the cell supply voltage.
func (c *Cell) Vdd() float64 { return c.p.Vdd }

// nodeCurrent returns the net current pulled OUT of the storage node at
// voltage v when the inverter input (the opposite node) is at vin.
// Positive means the node is being discharged. withAccess includes the
// pass gate with wordline high and bitline precharged to Vdd (read mode).
func (c *Cell) nodeCurrent(side int, vin, v float64, withAccess bool) float64 {
	vdd := c.p.Vdd
	// Pull-down NMOS: gate vin, drain at node, source at ground.
	down := c.p.PullDown.Ids(vin, v)
	// Pull-up PMOS: source at Vdd, gate vin -> |Vgs| = Vdd-vin,
	// drain at node -> |Vds| = Vdd-v. Current flows INTO the node.
	pu := c.p.PullUp.WithVthShift(c.dvthP[side])
	up := pu.Ids(vdd-vin, vdd-v)
	// Access NMOS in read mode: gate Vdd, bitline (drain) at Vdd,
	// node is the source: Vgs = Vdd-v, Vds = Vdd-v. Current INTO node.
	acc := 0.0
	if withAccess {
		acc = c.p.Access.Ids(vdd-v, vdd-v)
	}
	return down - up - acc
}

// solveNode finds the storage-node voltage where the nodal current
// balances, by bisection over [0, Vdd]. The Gmin conductances in the
// device models make the current strictly increasing in v, so the zero is
// unique.
func (c *Cell) solveNode(side int, vin float64, withAccess bool) float64 {
	lo, hi := 0.0, c.p.Vdd
	// The net discharge current is negative at v=0 (everything pulls the
	// node up) and positive at v=Vdd in all but degenerate corners.
	for i := 0; i < 60 && hi-lo > 1e-9; i++ {
		mid := 0.5 * (lo + hi)
		if c.nodeCurrent(side, vin, mid, withAccess) > 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return 0.5 * (lo + hi)
}

// VTC is a sampled voltage-transfer curve with linear interpolation.
type VTC struct {
	vdd  float64
	vout []float64 // sampled at vin = i*vdd/(len-1)
}

// ReadVTC samples the read-mode transfer curve of the given side's
// inverter (input = opposite node voltage, output = this side's storage
// node with its access transistor fighting the transition). samples must
// be >= 2.
func (c *Cell) ReadVTC(side int, samples int) (*VTC, error) {
	return c.vtc(side, samples, true)
}

// HoldVTC samples the standby transfer curve (wordline low, access
// transistor off). Hold SNM is larger than read SNM; it is exposed for
// completeness and used by tests as a sanity bound.
func (c *Cell) HoldVTC(side int, samples int) (*VTC, error) {
	return c.vtc(side, samples, false)
}

func (c *Cell) vtc(side, samples int, withAccess bool) (*VTC, error) {
	if side != 0 && side != 1 {
		return nil, fmt.Errorf("sram: side %d (want 0 or 1)", side)
	}
	if samples < 2 {
		return nil, fmt.Errorf("sram: need >= 2 VTC samples, got %d", samples)
	}
	v := &VTC{vdd: c.p.Vdd, vout: make([]float64, samples)}
	step := c.p.Vdd / float64(samples-1)
	for i := range v.vout {
		v.vout[i] = c.solveNode(side, float64(i)*step, withAccess)
	}
	return v, nil
}

// Eval returns the interpolated output voltage for input vin, clamping
// vin to [0, Vdd].
func (v *VTC) Eval(vin float64) float64 {
	if vin <= 0 {
		return v.vout[0]
	}
	if vin >= v.vdd {
		return v.vout[len(v.vout)-1]
	}
	pos := vin / v.vdd * float64(len(v.vout)-1)
	i := int(pos)
	if i >= len(v.vout)-1 {
		return v.vout[len(v.vout)-1]
	}
	frac := pos - float64(i)
	return v.vout[i]*(1-frac) + v.vout[i+1]*frac
}

// Swing returns the output range of the curve.
func (v *VTC) Swing() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, y := range v.vout {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	return lo, hi
}

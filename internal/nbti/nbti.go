// Package nbti implements the Negative Bias Temperature Instability
// degradation model used by the aging characterisation framework. It
// follows the long-term reaction–diffusion (R-D) formulation standard in
// the literature the paper builds on (Alam; Vattikonda et al.; Kang et
// al., the paper's [23]): under cyclostationary stress with duty factor
// alpha, the pMOS threshold shift grows as
//
//	dVth(t) = Phi * (alpha * r * t)^n ,  n = 1/6 (H2 diffusion)
//
// where r is the relative stress rate set by the gate overdrive and the
// temperature, normalised to 1 at the nominal supply and reference
// temperature. The inverse-sixth-root time law means lifetime against any
// fixed dVth criterion is exactly inversely proportional to alpha*r —
// which is precisely the structure the paper's lifetime tables exhibit
// (see DESIGN.md §4).
//
// The package also provides the frequency-independent recovery expression
// for a single stress/recovery episode, used to sanity-check the duty
// abstraction and exposed for users who want sub-cycle resolution.
package nbti

import (
	"fmt"
	"math"
)

// SecondsPerYear converts the simulator's natural reporting unit. Julian
// year; the third decimal of a lifetime in years is far below model
// accuracy anyway.
const SecondsPerYear = 365.25 * 24 * 3600

// Params collects the model constants. The zero value is invalid; start
// from DefaultParams.
type Params struct {
	// N is the time exponent (1/6 for H2-diffusion R-D).
	N float64
	// Phi is the degradation prefactor in volts per (second^N of
	// unit-duty nominal stress). It is set by Calibrate, not by hand.
	Phi float64
	// VddNom is the supply at which the stress rate is 1 (V).
	VddNom float64
	// VthP is the pMOS threshold magnitude entering the overdrive (V).
	VthP float64
	// OverdriveExp is the exponent of the gate-overdrive dependence of
	// the stress rate. 2.0 reproduces the field-squared dependence of
	// the R-D trap-generation term within the supply range of interest.
	OverdriveExp float64
	// EaEV is the activation energy (eV) of the Arrhenius temperature
	// acceleration.
	EaEV float64
	// TRefK is the temperature at which the stress rate is 1 (K).
	TRefK float64
}

// DefaultParams returns the 45nm-class constants used by the experiments,
// with Phi left at zero until Calibrate anchors it (internal/aging does
// this against the paper's 2.93-year cell lifetime).
func DefaultParams() Params {
	return Params{
		N:            1.0 / 6.0,
		VddNom:       1.10,
		VthP:         0.35,
		OverdriveExp: 2.0,
		EaEV:         0.49,
		TRefK:        358,
	}
}

// Validate reports constant errors. Phi may be zero (uncalibrated) but
// not negative.
func (p Params) Validate() error {
	switch {
	case p.N <= 0 || p.N >= 1:
		return fmt.Errorf("nbti: exponent n=%v outside (0,1)", p.N)
	case p.Phi < 0:
		return fmt.Errorf("nbti: negative prefactor %v", p.Phi)
	case p.VddNom <= p.VthP:
		return fmt.Errorf("nbti: nominal supply %v not above |VthP| %v", p.VddNom, p.VthP)
	case p.VthP <= 0:
		return fmt.Errorf("nbti: |VthP| %v must be positive", p.VthP)
	case p.OverdriveExp <= 0:
		return fmt.Errorf("nbti: overdrive exponent %v must be positive", p.OverdriveExp)
	case p.EaEV < 0:
		return fmt.Errorf("nbti: negative activation energy %v", p.EaEV)
	case p.TRefK <= 0:
		return fmt.Errorf("nbti: reference temperature %v K must be positive", p.TRefK)
	}
	return nil
}

// boltzmannEV is the Boltzmann constant in eV/K.
const boltzmannEV = 8.617333262e-5

// StressRate returns the stress rate at supply vdd and temperature tempK,
// relative to (VddNom, TRefK). A supply at or below |VthP| produces zero
// stress: with no inversion layer bias there is no NBTI. This is also how
// power gating enters the model — the floating nodes rise to a logic 1,
// removing the negative gate bias entirely, so the gated state maps to
// rate 0 (the paper's [3], [17]).
func (p Params) StressRate(vdd, tempK float64) float64 {
	od := vdd - p.VthP
	if od <= 0 {
		return 0
	}
	odNom := p.VddNom - p.VthP
	rate := math.Pow(od/odNom, p.OverdriveExp)
	if p.EaEV > 0 && tempK > 0 && tempK != p.TRefK {
		rate *= math.Exp(-p.EaEV / boltzmannEV * (1/tempK - 1/p.TRefK))
	}
	return rate
}

// DeltaVth returns the threshold shift (V) after seconds of operation
// with the given effective stress duty (already folded with StressRate;
// see EffectiveDuty). Zero duty means zero shift at any horizon.
func (p Params) DeltaVth(duty, seconds float64) float64 {
	if duty <= 0 || seconds <= 0 {
		return 0
	}
	return p.Phi * math.Pow(duty*seconds, p.N)
}

// LifetimeSeconds inverts DeltaVth: the time at which the shift reaches
// dvthCrit under the given duty. It returns +Inf for zero duty (no stress,
// no aging) and an error for a non-positive criterion or uncalibrated Phi.
func (p Params) LifetimeSeconds(duty, dvthCrit float64) (float64, error) {
	if dvthCrit <= 0 {
		return 0, fmt.Errorf("nbti: non-positive dVth criterion %v", dvthCrit)
	}
	if p.Phi <= 0 {
		return 0, fmt.Errorf("nbti: prefactor not calibrated")
	}
	if duty <= 0 {
		return math.Inf(1), nil
	}
	return math.Pow(dvthCrit/p.Phi, 1/p.N) / duty, nil
}

// Calibrate returns a copy of p with Phi set so that a device under
// constant duty reaches dvthCrit at exactly targetSeconds:
// Phi = dvthCrit / (duty*targetSeconds)^N.
func (p Params) Calibrate(dvthCrit, duty, targetSeconds float64) (Params, error) {
	if dvthCrit <= 0 || duty <= 0 || targetSeconds <= 0 {
		return p, fmt.Errorf("nbti: calibration needs positive criterion/duty/target, got %v/%v/%v",
			dvthCrit, duty, targetSeconds)
	}
	p.Phi = dvthCrit / math.Pow(duty*targetSeconds, p.N)
	return p, nil
}

// EffectiveDuty folds a sleep schedule into the scalar duty the R-D law
// consumes. storageDuty is the fraction of time this pMOS's gate sees a
// logic 0 while the cell is powered (p0 for one side, 1-p0 for the
// other); sleepFrac is the fraction of time the bank spends in the
// low-power state; sleepRate and activeRate are StressRate values for the
// two supplies.
//
//	duty = storageDuty * (activeRate*(1-sleepFrac) + sleepRate*sleepFrac)
func (p Params) EffectiveDuty(storageDuty, sleepFrac, activeRate, sleepRate float64) (float64, error) {
	if storageDuty < 0 || storageDuty > 1 {
		return 0, fmt.Errorf("nbti: storage duty %v outside [0,1]", storageDuty)
	}
	if sleepFrac < 0 || sleepFrac > 1 {
		return 0, fmt.Errorf("nbti: sleep fraction %v outside [0,1]", sleepFrac)
	}
	if activeRate < 0 || sleepRate < 0 {
		return 0, fmt.Errorf("nbti: negative stress rate (%v, %v)", activeRate, sleepRate)
	}
	return storageDuty * (activeRate*(1-sleepFrac) + sleepRate*sleepFrac), nil
}

// Recovery returns the remaining fraction of a threshold shift after a
// single stress episode of tStress seconds followed by tRecover seconds
// of relaxation, per the standard R-D recovery expression
//
//	dVth(ts+tr)/dVth(ts) = 1 / (1 + eta*sqrt(tr/ts))
//
// with eta ~ 0.35 (Vattikonda et al.). It is exposed for sub-cycle
// analyses; the duty-factor abstraction above is its long-term limit.
func Recovery(tStress, tRecover float64) (float64, error) {
	if tStress <= 0 || tRecover < 0 {
		return 0, fmt.Errorf("nbti: recovery needs tStress > 0, tRecover >= 0 (got %v, %v)", tStress, tRecover)
	}
	const eta = 0.35
	return 1 / (1 + eta*math.Sqrt(tRecover/tStress)), nil
}

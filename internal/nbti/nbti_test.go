package nbti

import (
	"math"
	"testing"
	"testing/quick"
)

func calibrated(t *testing.T) Params {
	t.Helper()
	p, err := DefaultParams().Calibrate(0.05, 0.5, 2.93*SecondsPerYear)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params rejected: %v", err)
	}
	cases := []func(*Params){
		func(p *Params) { p.N = 0 },
		func(p *Params) { p.N = 1 },
		func(p *Params) { p.Phi = -1 },
		func(p *Params) { p.VddNom = 0.2 }, // below VthP
		func(p *Params) { p.VthP = 0 },
		func(p *Params) { p.OverdriveExp = 0 },
		func(p *Params) { p.EaEV = -1 },
		func(p *Params) { p.TRefK = 0 },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad params accepted", i)
		}
	}
}

func TestStressRateNominalIsOne(t *testing.T) {
	p := DefaultParams()
	if got := p.StressRate(p.VddNom, p.TRefK); math.Abs(got-1) > 1e-12 {
		t.Errorf("nominal stress rate = %v, want 1", got)
	}
}

func TestStressRateRetentionValue(t *testing.T) {
	// The design hinges on the retention-state stress ratio being ~0.218
	// at 0.70 V: ((0.70-0.35)/(1.10-0.35))^2.
	p := DefaultParams()
	got := p.StressRate(0.70, p.TRefK)
	want := math.Pow(0.35/0.75, 2)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("retention stress rate = %v, want %v", got, want)
	}
	if got < 0.20 || got > 0.24 {
		t.Errorf("retention stress rate %v outside the band the paper's numbers imply", got)
	}
}

func TestStressRateGatedIsZero(t *testing.T) {
	p := DefaultParams()
	if got := p.StressRate(0, p.TRefK); got != 0 {
		t.Errorf("power-gated stress rate = %v, want 0", got)
	}
	if got := p.StressRate(p.VthP, p.TRefK); got != 0 {
		t.Errorf("at-threshold stress rate = %v, want 0", got)
	}
}

func TestStressRateTemperature(t *testing.T) {
	p := DefaultParams()
	hot := p.StressRate(p.VddNom, p.TRefK+40)
	cold := p.StressRate(p.VddNom, p.TRefK-40)
	if hot <= 1 || cold >= 1 {
		t.Errorf("Arrhenius direction wrong: hot=%v cold=%v", hot, cold)
	}
	// Ea = 0.49 eV over 40 K around 358 K is roughly a 4-6x swing.
	if hot < 2 || hot > 10 {
		t.Errorf("hot acceleration %v implausible", hot)
	}
}

func TestCalibrateAnchors(t *testing.T) {
	p := calibrated(t)
	target := 2.93 * SecondsPerYear
	if got := p.DeltaVth(0.5, target); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("dVth at anchor = %v, want 0.05", got)
	}
	life, err := p.LifetimeSeconds(0.5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(life-target)/target > 1e-9 {
		t.Errorf("lifetime at anchor = %v yr, want 2.93", life/SecondsPerYear)
	}
}

func TestCalibrateRejectsBadInput(t *testing.T) {
	p := DefaultParams()
	for _, c := range [][3]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 1, 1}} {
		if _, err := p.Calibrate(c[0], c[1], c[2]); err == nil {
			t.Errorf("Calibrate(%v) accepted", c)
		}
	}
}

// TestLifetimeInverseInDuty verifies the structural property the paper's
// tables rely on: lifetime scales exactly as 1/duty.
func TestLifetimeInverseInDuty(t *testing.T) {
	p := calibrated(t)
	base, err := p.LifetimeSeconds(1.0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, duty := range []float64{0.9, 0.5, 0.25, 0.1, 0.01} {
		life, err := p.LifetimeSeconds(duty, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(life*duty-base) / base; rel > 1e-9 {
			t.Errorf("duty %v: lifetime*duty = %v, want %v", duty, life*duty, base)
		}
	}
}

func TestLifetimeZeroDutyInfinite(t *testing.T) {
	p := calibrated(t)
	life, err := p.LifetimeSeconds(0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(life, 1) {
		t.Errorf("zero-duty lifetime = %v, want +Inf", life)
	}
}

func TestLifetimeErrors(t *testing.T) {
	p := calibrated(t)
	if _, err := p.LifetimeSeconds(0.5, 0); err == nil {
		t.Error("zero criterion accepted")
	}
	if _, err := DefaultParams().LifetimeSeconds(0.5, 0.05); err == nil {
		t.Error("uncalibrated lifetime accepted")
	}
}

func TestDeltaVthSixthRoot(t *testing.T) {
	p := calibrated(t)
	// 64x the time -> 2x the shift (64^(1/6) = 2).
	d1 := p.DeltaVth(1, 1e6)
	d64 := p.DeltaVth(1, 64e6)
	if math.Abs(d64/d1-2) > 1e-9 {
		t.Errorf("64x time gave %vx shift, want 2x", d64/d1)
	}
	if p.DeltaVth(0, 1e6) != 0 || p.DeltaVth(1, 0) != 0 {
		t.Error("zero duty or time gave nonzero shift")
	}
}

func TestEffectiveDuty(t *testing.T) {
	p := DefaultParams()
	// Always active at nominal: duty = storageDuty.
	d, err := p.EffectiveDuty(0.5, 0, 1, 0.22)
	if err != nil || d != 0.5 {
		t.Errorf("EffectiveDuty active = %v, %v", d, err)
	}
	// Fully asleep: duty = storageDuty * sleepRate.
	d, err = p.EffectiveDuty(0.5, 1, 1, 0.22)
	if err != nil || math.Abs(d-0.11) > 1e-12 {
		t.Errorf("EffectiveDuty asleep = %v, %v", d, err)
	}
	// The paper's structure: 1 - P*(1-s).
	d, _ = p.EffectiveDuty(1.0, 0.4, 1, 0.218)
	want := 1 - 0.4*(1-0.218)
	if math.Abs(d-want) > 1e-12 {
		t.Errorf("EffectiveDuty = %v, want %v", d, want)
	}
}

func TestEffectiveDutyErrors(t *testing.T) {
	p := DefaultParams()
	for _, c := range [][4]float64{
		{-0.1, 0, 1, 0}, {1.1, 0, 1, 0},
		{0.5, -0.1, 1, 0}, {0.5, 1.1, 1, 0},
		{0.5, 0.5, -1, 0}, {0.5, 0.5, 1, -1},
	} {
		if _, err := p.EffectiveDuty(c[0], c[1], c[2], c[3]); err == nil {
			t.Errorf("EffectiveDuty(%v) accepted", c)
		}
	}
}

// Property: EffectiveDuty is monotone decreasing in sleepFrac whenever
// the sleep state stresses less than the active state.
func TestEffectiveDutyMonotoneInSleep(t *testing.T) {
	p := DefaultParams()
	f := func(a, b uint8) bool {
		s1 := float64(a%101) / 100
		s2 := float64(b%101) / 100
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		d1, err1 := p.EffectiveDuty(0.5, s1, 1, 0.22)
		d2, err2 := p.EffectiveDuty(0.5, s2, 1, 0.22)
		return err1 == nil && err2 == nil && d2 <= d1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRecovery(t *testing.T) {
	// No recovery time: the full shift remains.
	r, err := Recovery(100, 0)
	if err != nil || r != 1 {
		t.Errorf("Recovery(ts,0) = %v, %v", r, err)
	}
	// Equal stress and recovery: 1/(1+0.35) ~ 0.74.
	r, _ = Recovery(100, 100)
	if math.Abs(r-1/1.35) > 1e-12 {
		t.Errorf("Recovery equal = %v", r)
	}
	// Long recovery drives the residual down monotonically.
	prev := 1.0
	for _, tr := range []float64{1, 10, 100, 1000} {
		r, _ := Recovery(1, tr)
		if r >= prev {
			t.Errorf("recovery not monotone at tr=%v: %v >= %v", tr, r, prev)
		}
		prev = r
	}
	if _, err := Recovery(0, 1); err == nil {
		t.Error("zero stress time accepted")
	}
	if _, err := Recovery(1, -1); err == nil {
		t.Error("negative recovery time accepted")
	}
}

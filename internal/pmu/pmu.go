// Package pmu is the behavioural power-management unit of the partitioned
// cache: the interval-level twin of the Block Control hardware of Fig. 1b.
// It tracks per-bank idle intervals against the breakeven time and
// accumulates the two quantities the paper's evaluation is built on:
//
//   - useful idleness I_j: the time-weighted share of idle intervals
//     longer than the breakeven time (§III-A2), the "energy saving
//     potential" of bank j;
//   - sleep fraction P_j: the share of total time the bank actually
//     spends in the low-power state (the counter must run for breakeven
//     cycles before the rail drops, so P_j < I_j).
//
// The implementation is event-driven (one update per access) rather than
// cycle-driven, so multi-million-cycle traces simulate in milliseconds;
// the equivalence with the cycle-accurate hw.BlockControl is established
// by a cross-check test.
package pmu

import (
	"errors"
	"fmt"

	"nbticache/internal/stats"
)

// Sentinel errors, cheap enough for the batched kernel to return from a
// hot loop without an allocation. The scalar Access path wraps them with
// the offending bank/cycle for context, so errors.Is works on both.
var (
	// ErrFinished is returned for any access recorded after Finish.
	ErrFinished = errors.New("pmu: access after Finish")
	// ErrBankRange is returned for a bank outside [0, Banks()).
	ErrBankRange = errors.New("pmu: bank out of range")
	// ErrUnordered is returned when access cycles decrease.
	ErrUnordered = errors.New("pmu: accesses out of cycle order")
)

// PMU tracks idle intervals for a set of banks.
//
// A bank's last-access cycle starts at 0 and a never-touched bank idles
// from cycle 0, so `last` alone carries the interval state — there is no
// separate touched flag to maintain in the hot loop.
type PMU struct {
	banks     int
	breakeven uint64

	last      []uint64 // cycle of most recent access, per bank (0 before any)
	accesses  []uint64
	useful    []uint64 // cycles in idle intervals > breakeven
	sleep     []uint64 // cycles actually spent asleep
	intervals []uint64 // number of sleep episodes (= wake-ups, bar the last)
	hist      []*stats.Histogram
	histOn    bool
	cursor    uint64
	finished  bool
	endCycle  uint64
}

// New builds a PMU for the given bank count and breakeven time in cycles.
// breakeven must be >= 1: a zero breakeven would mean free transitions,
// which the architecture never has.
func New(banks int, breakeven uint64) (*PMU, error) {
	if banks < 1 {
		return nil, fmt.Errorf("pmu: need >= 1 bank, got %d", banks)
	}
	if breakeven < 1 {
		return nil, fmt.Errorf("pmu: breakeven %d must be >= 1 cycle", breakeven)
	}
	return &PMU{
		banks:     banks,
		breakeven: breakeven,
		last:      make([]uint64, banks),
		accesses:  make([]uint64, banks),
		useful:    make([]uint64, banks),
		sleep:     make([]uint64, banks),
		intervals: make([]uint64, banks),
		hist:      make([]*stats.Histogram, banks),
	}, nil
}

// EnableHistograms allocates per-bank idle-interval histograms with the
// given bucketing (in cycles). Call before the first Access.
func (p *PMU) EnableHistograms(lo, hi float64, buckets int) {
	for i := range p.hist {
		p.hist[i] = stats.NewHistogram(lo, hi, buckets)
	}
	p.histOn = true
}

// Banks returns the bank count.
func (p *PMU) Banks() int { return p.banks }

// Breakeven returns the breakeven threshold in cycles.
func (p *PMU) Breakeven() uint64 { return p.breakeven }

// Access records an access to bank at the given cycle. Cycles must be
// non-decreasing across calls (they come from a validated trace). Errors
// wrap the package sentinels, with context; nothing allocates on the
// success path.
func (p *PMU) Access(bank int, cycle uint64) error {
	if p.finished {
		return ErrFinished
	}
	if bank < 0 || bank >= p.banks {
		return fmt.Errorf("%w: bank %d outside [0,%d)", ErrBankRange, bank, p.banks)
	}
	if cycle < p.cursor {
		return fmt.Errorf("%w: access at cycle %d after cycle %d", ErrUnordered, cycle, p.cursor)
	}
	p.cursor = cycle
	p.closeInterval(bank, cycle)
	p.last[bank] = cycle
	p.accesses[bank]++
	return nil
}

// AccessBatch records one access per element of banks/cycles, in order —
// the batched twin of Access with the per-call checks hoisted out of the
// simulator's inner loop: the Finish check runs once per batch, and the
// in-loop range/order checks return bare sentinels instead of formatting
// an error. On error, every access before the offending element has been
// applied (exactly the state a scalar call sequence would have left) and
// the offending element and its successors have not.
func (p *PMU) AccessBatch(banks []int32, cycles []uint64) error {
	if p.finished {
		return ErrFinished
	}
	if len(banks) != len(cycles) {
		return fmt.Errorf("pmu: batch length mismatch: %d banks, %d cycles", len(banks), len(cycles))
	}
	nb := int32(p.banks)
	be := p.breakeven
	cur := p.cursor
	last, useful, sleep := p.last, p.useful, p.sleep
	intervals, accesses := p.intervals, p.accesses
	for i, c := range cycles {
		b := banks[i]
		if uint32(b) >= uint32(nb) {
			p.cursor = cur
			return ErrBankRange
		}
		if c < cur {
			p.cursor = cur
			return ErrUnordered
		}
		cur = c
		start := last[b]
		if c > start {
			gap := c - start
			if p.histOn {
				p.hist[b].Add(float64(gap))
			}
			if gap > be {
				useful[b] += gap
				sleep[b] += gap - be
				intervals[b]++
			}
		}
		last[b] = c
		accesses[b]++
	}
	p.cursor = cur
	return nil
}

// AccessBatchPair records one ordered access stream into two PMUs in a
// single pass: pa keyed by aKeys[i], pb keyed by bKeys[i], both at
// cycles[i]. The partitioned-cache kernel feeds its region- and
// bank-keyed PMUs from the same decoded batch, and walking the cycle
// column once for both halves the interval-accounting cost of what used
// to be two full AccessBatch passes. Validation matches AccessBatch
// (bare sentinels from the hot loop); on error, both PMUs have applied
// every element before the offending one and neither has applied it.
func AccessBatchPair(pa, pb *PMU, aKeys, bKeys []int32, cycles []uint64) error {
	if pa.finished || pb.finished {
		return ErrFinished
	}
	if len(aKeys) != len(cycles) || len(bKeys) != len(cycles) {
		return fmt.Errorf("pmu: batch length mismatch: %d/%d keys, %d cycles",
			len(aKeys), len(bKeys), len(cycles))
	}
	na, nb := int32(pa.banks), int32(pb.banks)
	beA, beB := pa.breakeven, pb.breakeven
	curA, curB := pa.cursor, pb.cursor
	lastA, usefulA, sleepA, intervalsA, accA := pa.last, pa.useful, pa.sleep, pa.intervals, pa.accesses
	lastB, usefulB, sleepB, intervalsB, accB := pb.last, pb.useful, pb.sleep, pb.intervals, pb.accesses
	for i, c := range cycles {
		ka, kb := aKeys[i], bKeys[i]
		if uint32(ka) >= uint32(na) || uint32(kb) >= uint32(nb) {
			pa.cursor, pb.cursor = curA, curB
			return ErrBankRange
		}
		if c < curA || c < curB {
			pa.cursor, pb.cursor = curA, curB
			return ErrUnordered
		}
		curA, curB = c, c
		if s := lastA[ka]; c > s {
			gap := c - s
			if pa.histOn {
				pa.hist[ka].Add(float64(gap))
			}
			if gap > beA {
				usefulA[ka] += gap
				sleepA[ka] += gap - beA
				intervalsA[ka]++
			}
		}
		lastA[ka] = c
		accA[ka]++
		if s := lastB[kb]; c > s {
			gap := c - s
			if pb.histOn {
				pb.hist[kb].Add(float64(gap))
			}
			if gap > beB {
				usefulB[kb] += gap
				sleepB[kb] += gap - beB
				intervalsB[kb]++
			}
		}
		lastB[kb] = c
		accB[kb]++
	}
	pa.cursor, pb.cursor = curA, curB
	return nil
}

// Feed is a PMU's per-bank accounting state as plain slices: the view a
// fused kernel walk (core's batched simulation loop) uses to account
// idle intervals inline with the decode pass that produces the bank
// keys, instead of materialising key buffers and walking the cycle
// column again per PMU. The slices alias the PMU's own arrays. The
// contract mirrors AccessBatch: feed only cycle-ordered accesses with
// in-range keys, apply exactly the AccessBatch per-element accounting,
// and report the cycle of the last applied access through EndFeed when
// the walk stops (normally or at its first out-of-order element).
type Feed struct {
	// Last[b] is bank b's most-recent-access cycle; Useful, Sleep and
	// Intervals accumulate >Breakeven idle gaps exactly as AccessBatch
	// does; Accesses counts references.
	Last, Useful, Sleep, Intervals, Accesses []uint64
	// Breakeven is the sleep threshold in cycles.
	Breakeven uint64
	// Cursor is the cycle-order bound the first fed access must meet.
	Cursor uint64
}

// BatchFeed returns the accounting view for a fused walk, or ok=false
// when the PMU cannot be fed externally: after Finish, or with per-gap
// histograms enabled (a fused walk does not maintain them, so those
// runs take the AccessBatch path).
func (p *PMU) BatchFeed() (f Feed, ok bool) {
	if p.finished || p.histOn {
		return Feed{}, false
	}
	return Feed{
		Last:      p.last,
		Useful:    p.useful,
		Sleep:     p.sleep,
		Intervals: p.intervals,
		Accesses:  p.accesses,
		Breakeven: p.breakeven,
		Cursor:    p.cursor,
	}, true
}

// EndFeed closes a fused walk, advancing the cursor to the cycle of the
// last access the walk applied. A cursor at or behind the current one
// is a no-op (a walk that applied nothing must not regress it).
func (p *PMU) EndFeed(cursor uint64) {
	if cursor > p.cursor {
		p.cursor = cursor
	}
}

// closeInterval accounts the idle gap ending now for the bank. Banks
// never touched idle from cycle 0 (their last-access cycle is 0).
func (p *PMU) closeInterval(bank int, now uint64) {
	start := p.last[bank]
	if now <= start {
		return
	}
	gap := now - start
	if p.hist[bank] != nil {
		p.hist[bank].Add(float64(gap))
	}
	if gap > p.breakeven {
		p.useful[bank] += gap
		p.sleep[bank] += gap - p.breakeven
		p.intervals[bank]++
	}
}

// Cursor returns the cycle of the most recent access (0 before any) —
// the ordering bound the next access must meet. The batched kernel uses
// it to validate a whole batch's cycle order in one pass.
func (p *PMU) Cursor() uint64 { return p.cursor }

// Finish closes the trailing idle interval of every bank at endCycle (the
// trace span) and freezes the PMU. It must be called exactly once.
func (p *PMU) Finish(endCycle uint64) error {
	if p.finished {
		return fmt.Errorf("pmu: Finish called twice")
	}
	if endCycle < p.cursor {
		return fmt.Errorf("pmu: end cycle %d before last access %d", endCycle, p.cursor)
	}
	for b := 0; b < p.banks; b++ {
		p.closeInterval(b, endCycle)
	}
	p.endCycle = endCycle
	p.finished = true
	return nil
}

// BankStats summarises one bank after Finish.
type BankStats struct {
	// Accesses is the number of references decoded to this bank.
	Accesses uint64
	// UsefulIdleness is I_j: time in >breakeven idle intervals over
	// total time.
	UsefulIdleness float64
	// SleepFraction is P_j: time actually asleep over total time.
	SleepFraction float64
	// SleepCycles is the raw asleep time (SleepFraction * span, exact).
	SleepCycles uint64
	// SleepIntervals is the number of sleep episodes (power-down
	// transitions).
	SleepIntervals uint64
	// Wakeups is the number of power-up transitions (one per episode,
	// except an episode still open at the end of the trace).
	Wakeups uint64
	// IdleHistogram is non-nil if EnableHistograms was called.
	IdleHistogram *stats.Histogram
}

// Results returns per-bank statistics. It errors before Finish or on a
// zero-length span.
func (p *PMU) Results() ([]BankStats, error) {
	if !p.finished {
		return nil, fmt.Errorf("pmu: Results before Finish")
	}
	if p.endCycle == 0 {
		return nil, fmt.Errorf("pmu: zero-length span")
	}
	out := make([]BankStats, p.banks)
	span := float64(p.endCycle)
	for b := range out {
		wake := p.intervals[b]
		// The final interval (after the last access, or the whole trace
		// for an untouched bank) never wakes up.
		lastStart := p.last[b]
		if wake > 0 && p.endCycle-lastStart > p.breakeven {
			wake--
		}
		out[b] = BankStats{
			Accesses:       p.accesses[b],
			UsefulIdleness: float64(p.useful[b]) / span,
			SleepFraction:  float64(p.sleep[b]) / span,
			SleepCycles:    p.sleep[b],
			SleepIntervals: p.intervals[b],
			Wakeups:        wake,
			IdleHistogram:  p.hist[b],
		}
	}
	return out, nil
}

// UsefulIdlenessVector is a convenience projection of Results.
func (p *PMU) UsefulIdlenessVector() ([]float64, error) {
	res, err := p.Results()
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(res))
	for i, r := range res {
		out[i] = r.UsefulIdleness
	}
	return out, nil
}

// SleepFractionVector is a convenience projection of Results.
func (p *PMU) SleepFractionVector() ([]float64, error) {
	res, err := p.Results()
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(res))
	for i, r := range res {
		out[i] = r.SleepFraction
	}
	return out, nil
}

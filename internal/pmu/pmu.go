// Package pmu is the behavioural power-management unit of the partitioned
// cache: the interval-level twin of the Block Control hardware of Fig. 1b.
// It tracks per-bank idle intervals against the breakeven time and
// accumulates the two quantities the paper's evaluation is built on:
//
//   - useful idleness I_j: the time-weighted share of idle intervals
//     longer than the breakeven time (§III-A2), the "energy saving
//     potential" of bank j;
//   - sleep fraction P_j: the share of total time the bank actually
//     spends in the low-power state (the counter must run for breakeven
//     cycles before the rail drops, so P_j < I_j).
//
// The implementation is event-driven (one update per access) rather than
// cycle-driven, so multi-million-cycle traces simulate in milliseconds;
// the equivalence with the cycle-accurate hw.BlockControl is established
// by a cross-check test.
package pmu

import (
	"fmt"

	"nbticache/internal/stats"
)

// PMU tracks idle intervals for a set of banks.
type PMU struct {
	banks     int
	breakeven uint64

	last      []uint64 // cycle of most recent access, per bank
	touched   []bool   // has the bank ever been accessed?
	accesses  []uint64
	useful    []uint64 // cycles in idle intervals > breakeven
	sleep     []uint64 // cycles actually spent asleep
	intervals []uint64 // number of sleep episodes (= wake-ups, bar the last)
	hist      []*stats.Histogram
	cursor    uint64
	finished  bool
	endCycle  uint64
}

// New builds a PMU for the given bank count and breakeven time in cycles.
// breakeven must be >= 1: a zero breakeven would mean free transitions,
// which the architecture never has.
func New(banks int, breakeven uint64) (*PMU, error) {
	if banks < 1 {
		return nil, fmt.Errorf("pmu: need >= 1 bank, got %d", banks)
	}
	if breakeven < 1 {
		return nil, fmt.Errorf("pmu: breakeven %d must be >= 1 cycle", breakeven)
	}
	return &PMU{
		banks:     banks,
		breakeven: breakeven,
		last:      make([]uint64, banks),
		touched:   make([]bool, banks),
		accesses:  make([]uint64, banks),
		useful:    make([]uint64, banks),
		sleep:     make([]uint64, banks),
		intervals: make([]uint64, banks),
		hist:      make([]*stats.Histogram, banks),
	}, nil
}

// EnableHistograms allocates per-bank idle-interval histograms with the
// given bucketing (in cycles). Call before the first Access.
func (p *PMU) EnableHistograms(lo, hi float64, buckets int) {
	for i := range p.hist {
		p.hist[i] = stats.NewHistogram(lo, hi, buckets)
	}
}

// Banks returns the bank count.
func (p *PMU) Banks() int { return p.banks }

// Breakeven returns the breakeven threshold in cycles.
func (p *PMU) Breakeven() uint64 { return p.breakeven }

// Access records an access to bank at the given cycle. Cycles must be
// non-decreasing across calls (they come from a validated trace).
func (p *PMU) Access(bank int, cycle uint64) error {
	if p.finished {
		return fmt.Errorf("pmu: access after Finish")
	}
	if bank < 0 || bank >= p.banks {
		return fmt.Errorf("pmu: bank %d outside [0,%d)", bank, p.banks)
	}
	if cycle < p.cursor {
		return fmt.Errorf("pmu: access at cycle %d after cycle %d", cycle, p.cursor)
	}
	p.cursor = cycle
	p.closeInterval(bank, cycle)
	p.last[bank] = cycle
	p.touched[bank] = true
	p.accesses[bank]++
	return nil
}

// closeInterval accounts the idle gap ending now for the bank. Banks
// never touched idle from cycle 0.
func (p *PMU) closeInterval(bank int, now uint64) {
	start := uint64(0)
	if p.touched[bank] {
		start = p.last[bank]
	}
	if now <= start {
		return
	}
	gap := now - start
	if p.hist[bank] != nil {
		p.hist[bank].Add(float64(gap))
	}
	if gap > p.breakeven {
		p.useful[bank] += gap
		p.sleep[bank] += gap - p.breakeven
		p.intervals[bank]++
	}
}

// Finish closes the trailing idle interval of every bank at endCycle (the
// trace span) and freezes the PMU. It must be called exactly once.
func (p *PMU) Finish(endCycle uint64) error {
	if p.finished {
		return fmt.Errorf("pmu: Finish called twice")
	}
	if endCycle < p.cursor {
		return fmt.Errorf("pmu: end cycle %d before last access %d", endCycle, p.cursor)
	}
	for b := 0; b < p.banks; b++ {
		p.closeInterval(b, endCycle)
	}
	p.endCycle = endCycle
	p.finished = true
	return nil
}

// BankStats summarises one bank after Finish.
type BankStats struct {
	// Accesses is the number of references decoded to this bank.
	Accesses uint64
	// UsefulIdleness is I_j: time in >breakeven idle intervals over
	// total time.
	UsefulIdleness float64
	// SleepFraction is P_j: time actually asleep over total time.
	SleepFraction float64
	// SleepCycles is the raw asleep time (SleepFraction * span, exact).
	SleepCycles uint64
	// SleepIntervals is the number of sleep episodes (power-down
	// transitions).
	SleepIntervals uint64
	// Wakeups is the number of power-up transitions (one per episode,
	// except an episode still open at the end of the trace).
	Wakeups uint64
	// IdleHistogram is non-nil if EnableHistograms was called.
	IdleHistogram *stats.Histogram
}

// Results returns per-bank statistics. It errors before Finish or on a
// zero-length span.
func (p *PMU) Results() ([]BankStats, error) {
	if !p.finished {
		return nil, fmt.Errorf("pmu: Results before Finish")
	}
	if p.endCycle == 0 {
		return nil, fmt.Errorf("pmu: zero-length span")
	}
	out := make([]BankStats, p.banks)
	span := float64(p.endCycle)
	for b := range out {
		wake := p.intervals[b]
		// The final interval (after the last access, or the whole trace
		// for an untouched bank) never wakes up.
		lastStart := uint64(0)
		if p.touched[b] {
			lastStart = p.last[b]
		}
		if wake > 0 && p.endCycle-lastStart > p.breakeven {
			wake--
		}
		out[b] = BankStats{
			Accesses:       p.accesses[b],
			UsefulIdleness: float64(p.useful[b]) / span,
			SleepFraction:  float64(p.sleep[b]) / span,
			SleepCycles:    p.sleep[b],
			SleepIntervals: p.intervals[b],
			Wakeups:        wake,
			IdleHistogram:  p.hist[b],
		}
	}
	return out, nil
}

// UsefulIdlenessVector is a convenience projection of Results.
func (p *PMU) UsefulIdlenessVector() ([]float64, error) {
	res, err := p.Results()
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(res))
	for i, r := range res {
		out[i] = r.UsefulIdleness
	}
	return out, nil
}

// SleepFractionVector is a convenience projection of Results.
func (p *PMU) SleepFractionVector() ([]float64, error) {
	res, err := p.Results()
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(res))
	for i, r := range res {
		out[i] = r.SleepFraction
	}
	return out, nil
}

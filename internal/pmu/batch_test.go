package pmu

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// randomSchedule builds a valid access sequence: non-decreasing cycles,
// banks in range, with long and short gaps mixed so both sides of the
// breakeven threshold are exercised.
func randomSchedule(rng *rand.Rand, banks, n int) (bs []int32, cs []uint64) {
	cycle := uint64(rng.Intn(3))
	for i := 0; i < n; i++ {
		bs = append(bs, int32(rng.Intn(banks)))
		cs = append(cs, cycle)
		if rng.Intn(4) == 0 {
			cycle += uint64(rng.Intn(200)) // occasionally a long gap
		} else {
			cycle += uint64(rng.Intn(3)) // mostly dense (incl. same-cycle)
		}
	}
	return bs, cs
}

// TestAccessBatchMatchesScalar drives identical schedules through the
// scalar and batched entry points (the batch split at random points, so
// batches of length 0 are covered too) and requires identical results.
func TestAccessBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		banks := 1 + rng.Intn(8)
		be := uint64(1 + rng.Intn(30))
		n := rng.Intn(400)
		bs, cs := randomSchedule(rng, banks, n)

		scalar, _ := New(banks, be)
		batched, _ := New(banks, be)
		if trial%3 == 0 {
			scalar.EnableHistograms(0, 256, 8)
			batched.EnableHistograms(0, 256, 8)
		}
		for i := range bs {
			if err := scalar.Access(int(bs[i]), cs[i]); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i <= len(bs); {
			j := i + rng.Intn(len(bs)-i+1)
			if err := batched.AccessBatch(bs[i:j], cs[i:j]); err != nil {
				t.Fatal(err)
			}
			if j == len(bs) {
				break
			}
			i = j
		}
		end := uint64(0)
		if n > 0 {
			end = cs[n-1]
		}
		end += uint64(1 + rng.Intn(100))
		if err := scalar.Finish(end); err != nil {
			t.Fatal(err)
		}
		if err := batched.Finish(end); err != nil {
			t.Fatal(err)
		}
		sres, err := scalar.Results()
		if err != nil {
			t.Fatal(err)
		}
		bres, err := batched.Results()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sres, bres) {
			t.Fatalf("trial %d: scalar %+v != batched %+v", trial, sres, bres)
		}
	}
}

func TestAccessBatchSentinels(t *testing.T) {
	p, _ := New(2, 5)
	if err := p.AccessBatch([]int32{0, 2}, []uint64{1, 2}); !errors.Is(err, ErrBankRange) {
		t.Fatalf("out-of-range bank: got %v, want ErrBankRange", err)
	}
	// The in-range prefix before the bad element must have been applied.
	if p.Cursor() != 1 {
		t.Fatalf("cursor = %d after partial batch, want 1", p.Cursor())
	}
	if err := p.AccessBatch([]int32{1, 0}, []uint64{10, 3}); !errors.Is(err, ErrUnordered) {
		t.Fatalf("unordered cycles: got %v, want ErrUnordered", err)
	}
	if p.Cursor() != 10 {
		t.Fatalf("cursor = %d, want 10", p.Cursor())
	}
	if err := p.AccessBatch([]int32{0}, []uint64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := p.Finish(20); err != nil {
		t.Fatal(err)
	}
	if err := p.AccessBatch([]int32{0}, []uint64{21}); !errors.Is(err, ErrFinished) {
		t.Fatalf("batch after Finish: got %v, want ErrFinished", err)
	}
	if err := p.AccessBatch(nil, nil); !errors.Is(err, ErrFinished) {
		t.Fatalf("empty batch after Finish: got %v, want ErrFinished", err)
	}
}

// TestScalarSentinelWrapping pins errors.Is on the scalar path's wrapped
// errors — the API boundary keeps the contextual message, batch callers
// match on the sentinel.
func TestScalarSentinelWrapping(t *testing.T) {
	p, _ := New(2, 5)
	if err := p.Access(5, 0); !errors.Is(err, ErrBankRange) {
		t.Fatalf("got %v, want wrapped ErrBankRange", err)
	}
	if err := p.Access(0, 100); err != nil {
		t.Fatal(err)
	}
	if err := p.Access(1, 50); !errors.Is(err, ErrUnordered) {
		t.Fatalf("got %v, want wrapped ErrUnordered", err)
	}
	if err := p.Finish(100); err != nil {
		t.Fatal(err)
	}
	if err := p.Access(0, 101); !errors.Is(err, ErrFinished) {
		t.Fatalf("got %v, want ErrFinished", err)
	}
}

func TestAccessBatchEmpty(t *testing.T) {
	p, _ := New(2, 5)
	if err := p.AccessBatch(nil, nil); err != nil {
		t.Fatalf("zero-length batch: %v", err)
	}
	if err := p.AccessBatch([]int32{}, []uint64{}); err != nil {
		t.Fatalf("zero-length batch: %v", err)
	}
	if p.Cursor() != 0 {
		t.Fatalf("cursor moved on empty batch: %d", p.Cursor())
	}
}

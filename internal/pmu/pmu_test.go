package pmu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nbticache/internal/hw"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10); err == nil {
		t.Error("0 banks accepted")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("0 breakeven accepted")
	}
}

func TestNeverTouchedBankFullyIdle(t *testing.T) {
	p, err := New(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Bank 0 touched every 5 cycles (below breakeven), bank 1 never.
	for c := uint64(0); c < 1000; c += 5 {
		if err := p.Access(0, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Finish(1000); err != nil {
		t.Fatal(err)
	}
	res, err := p.Results()
	if err != nil {
		t.Fatal(err)
	}
	if res[0].UsefulIdleness != 0 {
		t.Errorf("busy bank useful idleness = %v, want 0", res[0].UsefulIdleness)
	}
	if res[0].SleepFraction != 0 {
		t.Errorf("busy bank sleep = %v, want 0", res[0].SleepFraction)
	}
	if res[1].UsefulIdleness != 1.0 {
		t.Errorf("untouched bank idleness = %v, want 1", res[1].UsefulIdleness)
	}
	// Sleeps all but the first breakeven cycles.
	if want := float64(1000-10) / 1000; res[1].SleepFraction != want {
		t.Errorf("untouched bank sleep = %v, want %v", res[1].SleepFraction, want)
	}
	if res[1].SleepIntervals != 1 || res[1].Wakeups != 0 {
		t.Errorf("untouched bank intervals/wakeups = %d/%d, want 1/0",
			res[1].SleepIntervals, res[1].Wakeups)
	}
	if res[0].Accesses != 200 || res[1].Accesses != 0 {
		t.Errorf("access counts %d/%d", res[0].Accesses, res[1].Accesses)
	}
}

func TestSingleLongGapAccounting(t *testing.T) {
	p, _ := New(1, 10)
	if err := p.Access(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Access(0, 100); err != nil {
		t.Fatal(err)
	}
	if err := p.Finish(105); err != nil {
		t.Fatal(err)
	}
	res, _ := p.Results()
	// Gap of 100 cycles > 10: useful 100, sleep 90. Tail gap of 5: below
	// breakeven, nothing.
	if got, want := res[0].UsefulIdleness, 100.0/105; math.Abs(got-want) > 1e-12 {
		t.Errorf("useful = %v, want %v", got, want)
	}
	if got, want := res[0].SleepFraction, 90.0/105; math.Abs(got-want) > 1e-12 {
		t.Errorf("sleep = %v, want %v", got, want)
	}
	if res[0].SleepIntervals != 1 || res[0].Wakeups != 1 {
		t.Errorf("intervals/wakeups = %d/%d, want 1/1", res[0].SleepIntervals, res[0].Wakeups)
	}
}

func TestGapExactlyBreakevenDoesNotSleep(t *testing.T) {
	p, _ := New(1, 10)
	p.Access(0, 0)
	p.Access(0, 10) // gap == breakeven: counter reaches threshold just as access arrives
	if err := p.Finish(11); err != nil {
		t.Fatal(err)
	}
	res, _ := p.Results()
	if res[0].SleepIntervals != 0 || res[0].UsefulIdleness != 0 {
		t.Errorf("breakeven-length gap slept: %+v", res[0])
	}
}

func TestAccessValidation(t *testing.T) {
	p, _ := New(2, 5)
	if err := p.Access(2, 0); err == nil {
		t.Error("bank out of range accepted")
	}
	if err := p.Access(-1, 0); err == nil {
		t.Error("negative bank accepted")
	}
	p.Access(0, 100)
	if err := p.Access(1, 50); err == nil {
		t.Error("time travel accepted")
	}
	if err := p.Finish(50); err == nil {
		t.Error("Finish before last access accepted")
	}
	if err := p.Finish(200); err != nil {
		t.Fatal(err)
	}
	if err := p.Finish(300); err == nil {
		t.Error("double Finish accepted")
	}
	if err := p.Access(0, 300); err == nil {
		t.Error("access after Finish accepted")
	}
}

func TestResultsBeforeFinish(t *testing.T) {
	p, _ := New(1, 5)
	if _, err := p.Results(); err == nil {
		t.Error("Results before Finish accepted")
	}
}

func TestZeroSpan(t *testing.T) {
	p, _ := New(1, 5)
	if err := p.Finish(0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Results(); err == nil {
		t.Error("zero span accepted")
	}
}

func TestHistograms(t *testing.T) {
	p, _ := New(1, 4)
	p.EnableHistograms(0, 100, 10)
	p.Access(0, 0)
	p.Access(0, 50)
	p.Access(0, 52)
	p.Finish(100)
	res, _ := p.Results()
	h := res[0].IdleHistogram
	if h == nil {
		t.Fatal("histogram missing")
	}
	// Gaps observed: 50, 2, 48 (tail).
	if h.Total() != 3 {
		t.Errorf("histogram total = %d, want 3", h.Total())
	}
}

func TestVectors(t *testing.T) {
	p, _ := New(2, 5)
	p.Access(0, 0)
	p.Finish(100)
	u, err := p.UsefulIdlenessVector()
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.SleepFractionVector()
	if err != nil {
		t.Fatal(err)
	}
	if len(u) != 2 || len(s) != 2 {
		t.Fatal("wrong vector lengths")
	}
	if u[0] != 1.0 || u[1] != 1.0 {
		t.Errorf("useful = %v", u)
	}
	if s[0] != 0.95 || s[1] != 0.95 {
		t.Errorf("sleep = %v", s)
	}
}

func TestVectorsBeforeFinishError(t *testing.T) {
	p, _ := New(1, 5)
	if _, err := p.UsefulIdlenessVector(); err == nil {
		t.Error("vector before Finish accepted")
	}
	if _, err := p.SleepFractionVector(); err == nil {
		t.Error("vector before Finish accepted")
	}
}

// Property: for any access pattern, per-bank sleep time never exceeds
// useful idleness, both stay within [0,1] of the span, and wakeups never
// exceed sleep intervals.
func TestPMUInvariantsProperty(t *testing.T) {
	f := func(pattern []uint8, tailGap uint8) bool {
		p, err := New(4, 7)
		if err != nil {
			return false
		}
		cycle := uint64(0)
		for _, b := range pattern {
			cycle += uint64(b%13) + 1
			if err := p.Access(int(b%4), cycle); err != nil {
				return false
			}
		}
		end := cycle + uint64(tailGap) + 1
		if err := p.Finish(end); err != nil {
			return false
		}
		res, err := p.Results()
		if err != nil {
			return false
		}
		for _, r := range res {
			if r.SleepFraction > r.UsefulIdleness+1e-12 {
				return false
			}
			if r.UsefulIdleness < 0 || r.UsefulIdleness > 1 {
				return false
			}
			if r.Wakeups > r.SleepIntervals {
				return false
			}
			if r.SleepCycles != uint64(r.SleepFraction*float64(end)+0.5) &&
				float64(r.SleepCycles) != r.SleepFraction*float64(end) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMatchesCycleAccurateBlockControl cross-checks the event-driven PMU
// against the gate-level saturating counters of internal/hw on a random
// access pattern: the total asleep time per bank must agree exactly when
// breakeven = counter saturation value.
func TestMatchesCycleAccurateBlockControl(t *testing.T) {
	const (
		banks = 4
		width = 4 // counter saturates at 15
		span  = 5000
	)
	be := uint64(1<<width - 1)
	bc, err := hw.NewBlockControl(banks, width)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(banks, be)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	sleepCycles := make([]uint64, banks)
	for cycle := uint64(0); cycle < span; cycle++ {
		var onehot uint
		if rng.Float64() < 0.3 { // 30% of cycles carry an access
			b := rng.Intn(banks)
			// Skew the distribution so banks differ.
			if rng.Float64() < 0.5 {
				b = 0
			}
			onehot = 1 << b
			if err := p.Access(b, cycle); err != nil {
				t.Fatal(err)
			}
		}
		mask := bc.Tick(onehot)
		for b := 0; b < banks; b++ {
			if mask&(1<<b) != 0 {
				sleepCycles[b]++
			}
		}
	}
	if err := p.Finish(span); err != nil {
		t.Fatal(err)
	}
	res, err := p.Results()
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < banks; b++ {
		got := uint64(res[b].SleepFraction * span)
		// The hardware counter asserts terminal count on the cycle it
		// saturates; the interval model counts from saturation to the
		// next access. They agree exactly by construction.
		if want := sleepCycles[b]; got != want {
			t.Errorf("bank %d: PMU sleep %d cycles, hardware %d", b, got, want)
		}
	}
}

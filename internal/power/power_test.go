package power

import (
	"math"
	"testing"

	"nbticache/internal/cache"
)

func geom(sizeKB int, lineB uint64) cache.Geometry {
	return cache.Geometry{Size: uint64(sizeKB) * 1024, LineSize: lineB, Ways: 1, AddressBits: 32}
}

func TestValidate(t *testing.T) {
	if err := DefaultTech().Validate(); err != nil {
		t.Fatalf("default tech rejected: %v", err)
	}
	mutations := []func(*Tech){
		func(x *Tech) { x.CycleSeconds = 0 },
		func(x *Tech) { x.EDynFixed = 0 },
		func(x *Tech) { x.EDynPerLineByte = -1 },
		func(x *Tech) { x.EDynPerByte = 0 },
		func(x *Tech) { x.ETagPerBit = 0 },
		func(x *Tech) { x.EDecodePerBank = -1 },
		func(x *Tech) { x.EWirePerBankSq = -1 },
		func(x *Tech) { x.PLeakPerByte = 0 },
		func(x *Tech) { x.RetentionLeakRatio = 0 },
		func(x *Tech) { x.RetentionLeakRatio = 1 },
		func(x *Tech) { x.ETransPerByte = 0 },
		func(x *Tech) { x.ETransTagPerByte = 0 },
		func(x *Tech) { x.WriteEnergyFactor = 0.5 },
	}
	for i, mutate := range mutations {
		bad := DefaultTech()
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("case %d: bad tech accepted", i)
		}
	}
}

func TestAccessEnergyShrinksWithBanking(t *testing.T) {
	tech := DefaultTech()
	g := geom(16, 16)
	mono, err := tech.AccessEnergy(g, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	banked, err := tech.AccessEnergy(g, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if banked >= mono {
		t.Errorf("bank access %v J not below monolithic %v J", banked, mono)
	}
	// The calibration point: a 16kB monolithic access is ~21-22 pJ.
	if mono < 18e-12 || mono > 26e-12 {
		t.Errorf("monolithic 16kB access = %v pJ, outside calibration band", mono*1e12)
	}
}

func TestAccessEnergyWriteFactor(t *testing.T) {
	tech := DefaultTech()
	g := geom(16, 16)
	r, _ := tech.AccessEnergy(g, 4, false)
	w, _ := tech.AccessEnergy(g, 4, true)
	if math.Abs(w/r-tech.WriteEnergyFactor) > 1e-12 {
		t.Errorf("write/read ratio = %v, want %v", w/r, tech.WriteEnergyFactor)
	}
}

func TestAccessEnergyErrors(t *testing.T) {
	tech := DefaultTech()
	if _, err := tech.AccessEnergy(cache.Geometry{}, 1, false); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := tech.AccessEnergy(geom(16, 16), 0, false); err == nil {
		t.Error("0 banks accepted")
	}
	if _, err := tech.AccessEnergy(geom(16, 16), 5000, false); err == nil {
		t.Error("non-dividing bank count accepted")
	}
}

func TestOverheadGrowsWithBanks(t *testing.T) {
	tech := DefaultTech()
	g := geom(16, 16)
	prevOverhead := 0.0
	for _, m := range []int{2, 4, 8, 16} {
		e, err := tech.AccessEnergy(g, m, false)
		if err != nil {
			t.Fatal(err)
		}
		base := tech.EDynFixed + tech.EDynPerLineByte*16 +
			tech.EDynPerByte*float64(g.Size/uint64(m)) + tech.ETagPerBit*float64(g.TagBits())
		overhead := e - base
		if overhead <= prevOverhead {
			t.Errorf("M=%d: overhead %v not growing", m, overhead)
		}
		prevOverhead = overhead
	}
}

func TestBreakevenInPaperBand(t *testing.T) {
	tech := DefaultTech()
	// "The value ... is in the order of a few tens of cycles ...
	// Therefore, 5- or 6-bit counters suffice."
	for _, kb := range []int{8, 16, 32} {
		for _, m := range []int{2, 4, 8} {
			be, err := tech.BreakevenCycles(geom(kb, 16), m)
			if err != nil {
				t.Fatal(err)
			}
			if be < 20 || be > 63 {
				t.Errorf("%dkB M=%d: breakeven %v cycles outside paper band", kb, m, be)
			}
			if w := CounterWidth(be); w < 5 || w > 6 {
				t.Errorf("%dkB M=%d: counter width %d, want 5-6", kb, m, w)
			}
		}
	}
}

func TestCounterWidth(t *testing.T) {
	cases := []struct {
		be   float64
		want int
	}{
		{0.5, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {60, 6}, {63, 6}, {64, 7},
	}
	for _, c := range cases {
		if got := CounterWidth(c.be); got != c.want {
			t.Errorf("CounterWidth(%v) = %d, want %d", c.be, got, c.want)
		}
	}
}

func TestUsageValidate(t *testing.T) {
	good := Usage{Reads: 10, SpanCycles: 100,
		SleepCycles: []uint64{5, 5}, Wakeups: []uint64{1, 1}}
	if err := good.Validate(2); err != nil {
		t.Fatalf("good usage rejected: %v", err)
	}
	if err := (Usage{}).Validate(1); err == nil {
		t.Error("zero span accepted")
	}
	if err := (Usage{SpanCycles: 10, SleepCycles: []uint64{1}}).Validate(1); err == nil {
		t.Error("sleep without wakeups accepted")
	}
	if err := (Usage{SpanCycles: 10, SleepCycles: []uint64{1}, Wakeups: []uint64{0, 0}}).Validate(2); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := (Usage{SpanCycles: 10, SleepCycles: []uint64{11}, Wakeups: []uint64{0}}).Validate(1); err == nil {
		t.Error("oversleeping accepted")
	}
}

func TestEnergyUnmanagedHasNoSleepTerms(t *testing.T) {
	tech := DefaultTech()
	g := geom(16, 16)
	u := Usage{Reads: 1000, Writes: 100, SpanCycles: 3300}
	bd, err := tech.Energy(g, 1, u)
	if err != nil {
		t.Fatal(err)
	}
	if bd.SleepLeakage != 0 || bd.Transitions != 0 {
		t.Errorf("unmanaged run has sleep terms: %+v", bd)
	}
	if bd.Dynamic <= 0 || bd.Leakage <= 0 {
		t.Errorf("missing energy components: %+v", bd)
	}
	if math.Abs(bd.Total()-(bd.Dynamic+bd.Leakage)) > 1e-18 {
		t.Error("Total does not sum components")
	}
}

func TestEnergySleepSaves(t *testing.T) {
	tech := DefaultTech()
	g := geom(16, 16)
	base := Usage{Reads: 1000, SpanCycles: 3300}
	mono, err := tech.Energy(g, 1, base)
	if err != nil {
		t.Fatal(err)
	}
	asleep := Usage{Reads: 1000, SpanCycles: 3300,
		SleepCycles: []uint64{1650, 1650, 1650, 1650},
		Wakeups:     []uint64{2, 2, 2, 2}}
	part, err := tech.Energy(g, 4, asleep)
	if err != nil {
		t.Fatal(err)
	}
	if part.Total() >= mono.Total() {
		t.Errorf("partitioned+sleep %v J not below monolithic %v J", part.Total(), mono.Total())
	}
	if s := Savings(mono, part); s <= 0 || s >= 1 {
		t.Errorf("savings = %v", s)
	}
}

// TestTableIICalibration drives the model at the paper's three operating
// points with the measured average idleness of Table IV and checks the
// savings land near Table II's averages (within 4 percentage points).
func TestTableIICalibration(t *testing.T) {
	tech := DefaultTech()
	cases := []struct {
		kb        int
		idleness  float64
		paperEsav float64
	}{
		{8, 0.42, 0.322},
		{16, 0.41, 0.443},
		{32, 0.47, 0.555},
	}
	for _, c := range cases {
		g := geom(c.kb, 16)
		const accesses = 1_000_000
		span := uint64(3 * accesses)
		mono, err := tech.Energy(g, 1, Usage{Reads: accesses, SpanCycles: span})
		if err != nil {
			t.Fatal(err)
		}
		sleep := uint64(c.idleness * float64(span))
		part, err := tech.Energy(g, 4, Usage{
			Reads: accesses, SpanCycles: span,
			SleepCycles: []uint64{sleep, sleep, sleep, sleep},
			Wakeups:     []uint64{1000, 1000, 1000, 1000},
		})
		if err != nil {
			t.Fatal(err)
		}
		got := Savings(mono, part)
		if math.Abs(got-c.paperEsav) > 0.04 {
			t.Errorf("%dkB: savings %.1f%%, paper %.1f%% (>4pp off)",
				c.kb, got*100, c.paperEsav*100)
		}
	}
}

// TestTableIIILineSize checks the line-size trend: doubling the line size
// at 16kB must cut savings to roughly the paper's 31.9%.
func TestTableIIILineSize(t *testing.T) {
	tech := DefaultTech()
	const accesses = 1_000_000
	span := uint64(3 * accesses)
	esav := func(lineB uint64, idle float64) float64 {
		g := geom(16, lineB)
		mono, err := tech.Energy(g, 1, Usage{Reads: accesses, SpanCycles: span})
		if err != nil {
			t.Fatal(err)
		}
		sleep := uint64(idle * float64(span))
		part, err := tech.Energy(g, 4, Usage{
			Reads: accesses, SpanCycles: span,
			SleepCycles: []uint64{sleep, sleep, sleep, sleep},
			Wakeups:     []uint64{1000, 1000, 1000, 1000},
		})
		if err != nil {
			t.Fatal(err)
		}
		return Savings(mono, part)
	}
	e16 := esav(16, 0.41)
	e32 := esav(32, 0.40)
	if e32 >= e16 {
		t.Fatalf("larger lines did not reduce savings: %v vs %v", e32, e16)
	}
	if math.Abs(e32-0.319) > 0.04 {
		t.Errorf("LS=32B savings %.1f%%, paper 31.9%% (>4pp off)", e32*100)
	}
}

func TestEnergyErrors(t *testing.T) {
	tech := DefaultTech()
	g := geom(16, 16)
	if _, err := tech.Energy(g, 1, Usage{}); err == nil {
		t.Error("bad usage accepted")
	}
	bad := tech
	bad.CycleSeconds = 0
	if _, err := bad.Energy(g, 1, Usage{Reads: 1, SpanCycles: 10}); err == nil {
		t.Error("bad tech accepted")
	}
	if _, err := tech.Energy(g, 3, Usage{Reads: 1, SpanCycles: 10}); err == nil {
		t.Error("bank count 3 accepted")
	}
}

func TestSavingsDegenerate(t *testing.T) {
	if Savings(Breakdown{}, Breakdown{Dynamic: 1}) != 0 {
		t.Error("zero baseline did not return 0")
	}
}

func TestBankBytes(t *testing.T) {
	g := geom(16, 16)
	data, tag, err := BankBytes(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if data != 4096 {
		t.Errorf("bank data = %d, want 4096", data)
	}
	if tag != g.TagArrayBytes()/4 {
		t.Errorf("bank tag = %d, want %d", tag, g.TagArrayBytes()/4)
	}
	if _, _, err := BankBytes(g, 3); err == nil {
		t.Error("bank count 3 accepted")
	}
	if _, _, err := BankBytes(cache.Geometry{}, 1); err == nil {
		t.Error("bad geometry accepted")
	}
}

package power

import (
	"fmt"

	"nbticache/internal/cache"
)

// Usage aggregates what a simulation run observed, in the units the
// energy model needs.
type Usage struct {
	// Reads and Writes count accesses.
	Reads, Writes uint64
	// SpanCycles is the total duration.
	SpanCycles uint64
	// SleepCycles[b] and Wakeups[b] describe bank b's power management;
	// both nil means an unmanaged cache. Lengths must equal the bank
	// count when present.
	SleepCycles []uint64
	Wakeups     []uint64
}

// Validate checks the usage record against a bank count.
func (u Usage) Validate(banksM int) error {
	if u.SpanCycles == 0 {
		return fmt.Errorf("power: zero-span usage")
	}
	if (u.SleepCycles == nil) != (u.Wakeups == nil) {
		return fmt.Errorf("power: sleep cycles and wakeups must come together")
	}
	if u.SleepCycles != nil {
		if len(u.SleepCycles) != banksM || len(u.Wakeups) != banksM {
			return fmt.Errorf("power: residency vectors have %d/%d entries for %d banks",
				len(u.SleepCycles), len(u.Wakeups), banksM)
		}
		for b, s := range u.SleepCycles {
			if s > u.SpanCycles {
				return fmt.Errorf("power: bank %d sleeps %d of %d cycles", b, s, u.SpanCycles)
			}
		}
	}
	return nil
}

// Breakdown itemises the energy of one run in joules.
type Breakdown struct {
	// Dynamic is the access energy including tag reads and, for a
	// partitioned cache, decode/wiring overhead.
	Dynamic float64
	// Leakage is the active-state leakage.
	Leakage float64
	// SleepLeakage is the retention-state leakage.
	SleepLeakage float64
	// Transitions is the wake-up energy.
	Transitions float64
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.Dynamic + b.Leakage + b.SleepLeakage + b.Transitions
}

// Energy evaluates the model for a run over a cache of geometry g split
// into banksM banks.
func (t Tech) Energy(g cache.Geometry, banksM int, u Usage) (Breakdown, error) {
	if err := t.Validate(); err != nil {
		return Breakdown{}, err
	}
	if err := u.Validate(banksM); err != nil {
		return Breakdown{}, err
	}
	eRead, err := t.AccessEnergy(g, banksM, false)
	if err != nil {
		return Breakdown{}, err
	}
	eWrite, err := t.AccessEnergy(g, banksM, true)
	if err != nil {
		return Breakdown{}, err
	}
	data, tag, err := BankBytes(g, banksM)
	if err != nil {
		return Breakdown{}, err
	}
	var out Breakdown
	out.Dynamic = float64(u.Reads)*eRead + float64(u.Writes)*eWrite

	leakBank := t.LeakPower(data, tag) * t.CycleSeconds
	span := float64(u.SpanCycles)
	if u.SleepCycles == nil {
		out.Leakage = leakBank * span * float64(banksM)
		return out, nil
	}
	wake := t.WakeEnergy(data, tag)
	for b := 0; b < banksM; b++ {
		sleep := float64(u.SleepCycles[b])
		out.Leakage += leakBank * (span - sleep)
		out.SleepLeakage += leakBank * t.RetentionLeakRatio * sleep
		out.Transitions += wake * float64(u.Wakeups[b])
	}
	return out, nil
}

// Savings returns the fractional energy saving of managed relative to
// baseline: 1 - managed/baseline.
func Savings(baseline, managed Breakdown) float64 {
	if baseline.Total() <= 0 {
		return 0
	}
	return 1 - managed.Total()/baseline.Total()
}

// Package power models cache energy: per-access dynamic energy, leakage
// in the active and voltage-scaled retention states, wake-up transition
// penalties, the decode/wiring overhead of partitioning, and the
// breakeven time that drives the Block Control policy.
//
// The paper's energy numbers come from an industrial 45nm kit plus the
// partitioning-overhead characterisation of its [10]; this package is the
// parametric substitute. Constants in DefaultTech are calibrated so the
// paper's operating points are reproduced (see DESIGN.md §2): energy
// savings of a 4-bank power-managed cache ~32/44/56% at 8/16/32 kB with
// 16 B lines, dropping to ~32% at 32 B lines, and a breakeven time of a
// few tens of cycles fitting the paper's 5-6 bit counters.
//
// Model shape:
//
//	E_access(bank)  = EDynFixed + EDynPerLineByte*LS + EDynPerByte*bankBytes
//	                + ETagPerBit*tagBits [+ EDecodePerBank*M + EWirePerBankSq*M^2]
//	P_leak(array)   = PLeakPerByte * (dataBytes + tagBytes)
//	P_leak(sleep)   = RetentionLeakRatio * P_leak
//	E_wake(bank)    = ETransPerByte*dataBytes + ETransTagPerByte*tagBytes
//	t_BE            = E_wake / (P_leak(bank) * (1-RetentionLeakRatio) * t_cycle)
//
// The affine dynamic term makes bank accesses genuinely cheaper than
// full-array accesses (the [8]-style partitioning gain), with the fixed
// and line-width parts capturing decoder/sense/IO energy that does not
// shrink with banking.
package power

import (
	"fmt"
	"math/bits"

	"nbticache/internal/cache"
)

// Tech is the energy-model parameter set. All energies are joules, powers
// watts, times seconds.
type Tech struct {
	// CycleSeconds is the clock period.
	CycleSeconds float64
	// EDynFixed is the per-access energy independent of array and line
	// size (global decode, control).
	EDynFixed float64
	// EDynPerLineByte charges the read-out path per byte of line width.
	EDynPerLineByte float64
	// EDynPerByte charges bitline/wordline energy per byte of the
	// accessed array (the capacity term).
	EDynPerByte float64
	// ETagPerBit charges the tag read/compare per tag bit.
	ETagPerBit float64
	// EDecodePerBank is the per-access decoder-D overhead, linear in the
	// bank count (1-hot fanout, Fig. 1b).
	EDecodePerBank float64
	// EWirePerBankSq is the per-access wiring overhead, quadratic in the
	// bank count (bus replication and floorplan stretch; the [10]-style
	// penalty that caps useful partitioning).
	EWirePerBankSq float64
	// PLeakPerByte is the active leakage power density.
	PLeakPerByte float64
	// RetentionLeakRatio is sleep leakage relative to active (Vdd,low
	// retention state).
	RetentionLeakRatio float64
	// ETransPerByte and ETransTagPerByte charge each wake-up transition
	// for restoring the data and tag rails. Tags carry the larger
	// reactivation penalty (§IV-B1).
	ETransPerByte    float64
	ETransTagPerByte float64
	// WriteEnergyFactor scales dynamic energy for writes.
	WriteEnergyFactor float64
}

// DefaultTech returns the calibrated 45nm-class model.
func DefaultTech() Tech {
	return Tech{
		CycleSeconds:       1e-9,
		EDynFixed:          0.86e-12,
		EDynPerLineByte:    0.484e-12,
		EDynPerByte:        0.78e-15,
		ETagPerBit:         1.0e-14,
		EDecodePerBank:     1.5e-14,
		EWirePerBankSq:     8.0e-15,
		PLeakPerByte:       2.29e-8,
		RetentionLeakRatio: 0.10,
		ETransPerByte:      1.0e-15,
		ETransTagPerByte:   2.5e-15,
		WriteEnergyFactor:  1.2,
	}
}

// Validate reports parameter errors.
func (t Tech) Validate() error {
	pos := []struct {
		name string
		v    float64
	}{
		{"cycle time", t.CycleSeconds},
		{"fixed dynamic energy", t.EDynFixed},
		{"line dynamic energy", t.EDynPerLineByte},
		{"capacity dynamic energy", t.EDynPerByte},
		{"tag energy", t.ETagPerBit},
		{"leakage density", t.PLeakPerByte},
		{"data transition energy", t.ETransPerByte},
		{"tag transition energy", t.ETransTagPerByte},
	}
	for _, p := range pos {
		if p.v <= 0 {
			return fmt.Errorf("power: %s %v must be positive", p.name, p.v)
		}
	}
	if t.EDecodePerBank < 0 || t.EWirePerBankSq < 0 {
		return fmt.Errorf("power: negative partitioning overhead")
	}
	if t.RetentionLeakRatio <= 0 || t.RetentionLeakRatio >= 1 {
		return fmt.Errorf("power: retention leak ratio %v outside (0,1)", t.RetentionLeakRatio)
	}
	if t.WriteEnergyFactor < 1 {
		return fmt.Errorf("power: write factor %v below 1", t.WriteEnergyFactor)
	}
	return nil
}

// AccessEnergy returns the dynamic energy of one access to a cache of the
// given geometry split into M banks (M=1 for monolithic). write selects
// the write factor.
func (t Tech) AccessEnergy(g cache.Geometry, banksM int, write bool) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if banksM < 1 || g.Size%uint64(banksM) != 0 {
		return 0, fmt.Errorf("power: bank count %d does not divide cache size %d", banksM, g.Size)
	}
	bankBytes := g.Size / uint64(banksM)
	e := t.EDynFixed +
		t.EDynPerLineByte*float64(g.LineSize) +
		t.EDynPerByte*float64(bankBytes) +
		t.ETagPerBit*float64(g.TagBits())
	if banksM > 1 {
		m := float64(banksM)
		e += t.EDecodePerBank*m + t.EWirePerBankSq*m*m
	}
	if write {
		e *= t.WriteEnergyFactor
	}
	return e, nil
}

// BankBytes returns the data and tag bytes of one bank.
func BankBytes(g cache.Geometry, banksM int) (data, tag uint64, err error) {
	if err := g.Validate(); err != nil {
		return 0, 0, err
	}
	if banksM < 1 || g.Size%uint64(banksM) != 0 {
		return 0, 0, fmt.Errorf("power: bank count %d does not divide cache size %d", banksM, g.Size)
	}
	return g.Size / uint64(banksM), g.TagArrayBytes() / uint64(banksM), nil
}

// LeakPower returns active leakage (W) of an array with the given data
// and tag bytes.
func (t Tech) LeakPower(dataBytes, tagBytes uint64) float64 {
	return t.PLeakPerByte * float64(dataBytes+tagBytes)
}

// WakeEnergy returns the transition energy (J) of re-activating a bank.
func (t Tech) WakeEnergy(dataBytes, tagBytes uint64) float64 {
	return t.ETransPerByte*float64(dataBytes) + t.ETransTagPerByte*float64(tagBytes)
}

// BreakevenCycles returns the idle length beyond which sleeping a bank
// pays off: wake energy divided by the leakage power saved per cycle.
func (t Tech) BreakevenCycles(g cache.Geometry, banksM int) (float64, error) {
	data, tag, err := BankBytes(g, banksM)
	if err != nil {
		return 0, err
	}
	saved := t.LeakPower(data, tag) * (1 - t.RetentionLeakRatio) * t.CycleSeconds
	return t.WakeEnergy(data, tag) / saved, nil
}

// CounterWidth returns the Block Control counter width needed to time a
// breakeven of be cycles: the smallest w with 2^w - 1 >= ceil(be).
func CounterWidth(be float64) int {
	if be <= 1 {
		return 1
	}
	n := uint64(be)
	if float64(n) < be {
		n++
	}
	return bits.Len64(n)
}

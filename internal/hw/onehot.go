// Package hw provides bit-accurate structural models of the hardware
// blocks the paper's decoder D is built from (Fig. 1b, Fig. 2, Fig. 3):
// the 1-hot bank-select encoder, the p-bit modulo adder used by the
// Probing re-indexer, maximal-length LFSRs for the Scrambling re-indexer,
// and the saturating idle counters inside Block Control. Each model also
// carries a first-order gate-level cost estimate (logic depth and gate
// count) so the experiments can substantiate the paper's "negligible
// overhead" claims quantitatively.
package hw

import "fmt"

// MaxSelectBits bounds the supported bank-address width. The paper caps
// partitioning at M=16 (p=4); we allow some headroom for exploration.
const MaxSelectBits = 8

// OneHotEncoder converts a p-bit bank address into a 2^p-bit 1-hot code,
// exactly as the "1-hot encoder" block of Fig. 1b: output bit i is the
// minterm of the p inputs matching binary i, i.e. a single p-input AND
// gate per output. Bank 0 encodes as 0...01, bank M-1 as 10...0.
type OneHotEncoder struct {
	bits int
}

// NewOneHotEncoder returns an encoder for p-bit inputs, 1 <= p <= MaxSelectBits.
func NewOneHotEncoder(bits int) (*OneHotEncoder, error) {
	if bits < 1 || bits > MaxSelectBits {
		return nil, fmt.Errorf("hw: one-hot width %d outside [1,%d]", bits, MaxSelectBits)
	}
	return &OneHotEncoder{bits: bits}, nil
}

// Bits returns the input width p.
func (e *OneHotEncoder) Bits() int { return e.bits }

// Outputs returns the output width 2^p.
func (e *OneHotEncoder) Outputs() int { return 1 << e.bits }

// Encode returns the 1-hot code for bank address in. It panics if in is
// out of range: the decoder feeding it is a hard-wired bit slice, so an
// out-of-range value indicates a bug, not bad user input.
func (e *OneHotEncoder) Encode(in uint) uint {
	if in >= uint(e.Outputs()) {
		panic(fmt.Sprintf("hw: one-hot input %d exceeds %d banks", in, e.Outputs()))
	}
	return 1 << in
}

// Decode is the inverse of Encode; it returns an error if code is not a
// valid 1-hot pattern (zero or multiple hot bits), which the Block
// Selector would treat as a fault.
func (e *OneHotEncoder) Decode(code uint) (uint, error) {
	if code == 0 || code&(code-1) != 0 || code >= 1<<uint(e.Outputs()) {
		return 0, fmt.Errorf("hw: %#x is not a valid %d-bit 1-hot code", code, e.Outputs())
	}
	var i uint
	for code>>1 != 0 {
		code >>= 1
		i++
	}
	return i, nil
}

// Cost estimates the encoder hardware: one p-input AND per output, so the
// input-to-output combinational depth is a single gate level — the basis
// of the paper's claim that "the longest combinational input/output delay
// in the 1-hot encoder goes through a single logic gate".
func (e *OneHotEncoder) Cost() GateCost {
	return GateCost{
		Gates:         e.Outputs(), // one AND minterm per bank
		Levels:        1,           // single gate level input->output
		InputsPerGate: e.bits,      // p-input AND
	}
}

// GateCost is a first-order structural cost estimate: total gate count and
// worst-case combinational depth in gate levels.
type GateCost struct {
	Gates         int
	Levels        int
	InputsPerGate int
}

// Delay converts logic depth into time given a per-level gate delay.
func (c GateCost) Delay(perLevel float64) float64 { return float64(c.Levels) * perLevel }

// Add composes two costs in series: gates add, levels add.
func (c GateCost) Add(o GateCost) GateCost {
	in := c.InputsPerGate
	if o.InputsPerGate > in {
		in = o.InputsPerGate
	}
	return GateCost{Gates: c.Gates + o.Gates, Levels: c.Levels + o.Levels, InputsPerGate: in}
}

package hw

import "fmt"

// LFSR is a Fibonacci linear-feedback shift register used as the random
// number generator of the Scrambling re-indexer (Fig. 3b). The tap sets
// below give maximal-length sequences (period 2^w - 1; the all-zero state
// is the single excluded fixed point) for every supported width.
type LFSR struct {
	width int
	taps  uint
	state uint
	mask  uint
}

// lfsrTaps maps register width to a maximal-length tap mask (bit i set
// means stage i+1 feeds the XOR). Standard tables (Xilinx XAPP052).
var lfsrTaps = map[int]uint{
	2:  0x3,    // x^2 + x + 1
	3:  0x6,    // x^3 + x^2 + 1
	4:  0xC,    // x^4 + x^3 + 1
	5:  0x14,   // x^5 + x^3 + 1
	6:  0x30,   // x^6 + x^5 + 1
	7:  0x60,   // x^7 + x^6 + 1
	8:  0xB8,   // x^8 + x^6 + x^5 + x^4 + 1
	9:  0x110,  // x^9 + x^5 + 1
	10: 0x240,  // x^10 + x^7 + 1
	11: 0x500,  // x^11 + x^9 + 1
	12: 0xE08,  // x^12 + x^11 + x^10 + x^4 + 1
	13: 0x1C80, // x^13 + x^12 + x^11 + x^8 + 1
	14: 0x3802, // x^14 + x^13 + x^12 + x^2 + 1
	15: 0x6000, // x^15 + x^14 + 1
	16: 0xD008, // x^16 + x^15 + x^13 + x^4 + 1
}

// NewLFSR returns a maximal-length LFSR of the given width seeded with
// seed. A zero seed (the lock-up state) is replaced by 1.
func NewLFSR(width int, seed uint) (*LFSR, error) {
	taps, ok := lfsrTaps[width]
	if !ok {
		return nil, fmt.Errorf("hw: no maximal-length taps for width %d (supported 2..16)", width)
	}
	l := &LFSR{width: width, taps: taps, mask: (1 << width) - 1}
	l.Seed(seed)
	return l, nil
}

// Seed sets the register state; zero is coerced to 1 to avoid lock-up.
func (l *LFSR) Seed(seed uint) {
	seed &= l.mask
	if seed == 0 {
		seed = 1
	}
	l.state = seed
}

// Width returns the register width in bits.
func (l *LFSR) Width() int { return l.width }

// State returns the current register contents.
func (l *LFSR) State() uint { return l.state }

// Step advances the register one shift and returns the new state.
func (l *LFSR) Step() uint {
	fb := parity(l.state & l.taps)
	l.state = ((l.state << 1) | fb) & l.mask
	return l.state
}

// StepN advances the register n shifts and returns the final state.
func (l *LFSR) StepN(n int) uint {
	for i := 0; i < n; i++ {
		l.Step()
	}
	return l.state
}

// Period returns the sequence period, 2^width - 1 for maximal-length taps.
func (l *LFSR) Period() uint64 { return (1 << uint(l.width)) - 1 }

// Low returns the low n bits of the state — the p-bit random word XORed
// with the bank address by the Scrambling scheme.
func (l *LFSR) Low(n int) uint { return l.state & ((1 << n) - 1) }

// Cost models the register (1 flop per stage, ~6 gates each) plus the
// feedback XOR tree: depth log2(taps) levels, at most width-1 XOR gates.
func (l *LFSR) Cost() GateCost {
	nt := 0
	for t := l.taps; t != 0; t &= t - 1 {
		nt++
	}
	levels := 0
	for n := nt; n > 1; n = (n + 1) / 2 {
		levels++
	}
	if levels == 0 {
		levels = 1
	}
	return GateCost{Gates: 6*l.width + (nt - 1), Levels: levels, InputsPerGate: 2}
}

func parity(x uint) uint {
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x & 1
}

package hw

import (
	"testing"
	"testing/quick"
)

func TestOneHotEncodeTruthTable(t *testing.T) {
	e, err := NewOneHotEncoder(2)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "Bank 0 corresponds to the M-bit encoding 00...1, Bank M-1
	// corresponds to 100...0".
	want := []uint{0b0001, 0b0010, 0b0100, 0b1000}
	for in, w := range want {
		if got := e.Encode(uint(in)); got != w {
			t.Errorf("Encode(%d) = %04b, want %04b", in, got, w)
		}
	}
	if e.Bits() != 2 || e.Outputs() != 4 {
		t.Errorf("geometry wrong: bits=%d outputs=%d", e.Bits(), e.Outputs())
	}
}

func TestOneHotDecode(t *testing.T) {
	e, _ := NewOneHotEncoder(3)
	for in := uint(0); in < 8; in++ {
		got, err := e.Decode(e.Encode(in))
		if err != nil {
			t.Fatalf("Decode(Encode(%d)): %v", in, err)
		}
		if got != in {
			t.Errorf("Decode(Encode(%d)) = %d", in, got)
		}
	}
	for _, bad := range []uint{0, 0b11, 0b101, 1 << 8} {
		if _, err := e.Decode(bad); err == nil {
			t.Errorf("Decode(%#b) accepted non-1-hot code", bad)
		}
	}
}

func TestOneHotBounds(t *testing.T) {
	if _, err := NewOneHotEncoder(0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := NewOneHotEncoder(MaxSelectBits + 1); err == nil {
		t.Error("oversized width accepted")
	}
	e, _ := NewOneHotEncoder(2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Encode did not panic")
		}
	}()
	e.Encode(4)
}

func TestOneHotSingleLevelCost(t *testing.T) {
	// The paper's delay claim: one gate level through the encoder.
	for p := 1; p <= 4; p++ {
		e, _ := NewOneHotEncoder(p)
		c := e.Cost()
		if c.Levels != 1 {
			t.Errorf("p=%d: levels = %d, want 1", p, c.Levels)
		}
		if c.Gates != 1<<p {
			t.Errorf("p=%d: gates = %d, want %d", p, c.Gates, 1<<p)
		}
		if c.Delay(20e-12) != 20e-12 {
			t.Errorf("p=%d: delay = %v, want one gate delay", p, c.Delay(20e-12))
		}
	}
}

func TestGateCostAdd(t *testing.T) {
	a := GateCost{Gates: 4, Levels: 1, InputsPerGate: 2}
	b := GateCost{Gates: 10, Levels: 3, InputsPerGate: 4}
	c := a.Add(b)
	if c.Gates != 14 || c.Levels != 4 || c.InputsPerGate != 4 {
		t.Errorf("Add = %+v", c)
	}
}

func TestModAdderWraps(t *testing.T) {
	a, err := NewModAdder(2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, y, want uint }{
		{0, 0, 0}, {1, 1, 2}, {3, 1, 0}, {2, 3, 1}, {7, 1, 0}, // 7 masked to 3
	}
	for _, c := range cases {
		if got := a.Add(c.x, c.y); got != c.want {
			t.Errorf("Add(%d,%d) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
	if a.Bits() != 2 {
		t.Errorf("Bits = %d", a.Bits())
	}
	if _, err := NewModAdder(0); err == nil {
		t.Error("width 0 accepted")
	}
}

// Property: the adder implements addition modulo 2^p.
func TestModAdderProperty(t *testing.T) {
	a, _ := NewModAdder(4)
	f := func(x, y uint16) bool {
		return a.Add(uint(x), uint(y)) == (uint(x)+uint(y))%16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUpdateCounter(t *testing.T) {
	c, err := NewUpdateCounter(2)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint{1, 2, 3, 0, 1}
	for i, w := range want {
		if got := c.Bump(); got != w {
			t.Errorf("bump %d = %d, want %d", i, got, w)
		}
	}
	c.Reset()
	if c.Value() != 0 {
		t.Errorf("Reset left value %d", c.Value())
	}
	if c.Bits() != 2 {
		t.Errorf("Bits = %d", c.Bits())
	}
	if _, err := NewUpdateCounter(99); err == nil {
		t.Error("bad width accepted")
	}
}

func TestLFSRMaximalPeriod(t *testing.T) {
	// Every supported width must produce a maximal-length sequence:
	// starting from state 1, the register returns to 1 after exactly
	// 2^w - 1 steps and never hits 0.
	for w := 2; w <= 12; w++ { // cap at 12 to keep the test fast
		l, err := NewLFSR(w, 1)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[uint]bool)
		period := 0
		for {
			s := l.Step()
			if s == 0 {
				t.Fatalf("width %d: LFSR hit the all-zero lock-up state", w)
			}
			period++
			if s == 1 {
				break
			}
			if seen[s] {
				t.Fatalf("width %d: premature cycle at state %#x", w, s)
			}
			seen[s] = true
			if period > 1<<w {
				t.Fatalf("width %d: no return to seed after %d steps", w, period)
			}
		}
		if want := int(l.Period()); period != want {
			t.Errorf("width %d: period %d, want %d", w, period, want)
		}
	}
}

func TestLFSRWide(t *testing.T) {
	// Spot-check the wide registers for non-degeneracy without walking
	// the full period: 1e5 steps must not repeat the seed prematurely
	// in a way that implies a short cycle, and must never be zero.
	for _, w := range []int{13, 14, 15, 16} {
		l, err := NewLFSR(w, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1e5 && i < int(l.Period())-1; i++ {
			if s := l.Step(); s == 0 {
				t.Fatalf("width %d: zero state", w)
			} else if s == 1 {
				t.Fatalf("width %d: period divides %d < 2^%d-1", w, i+1, w)
			}
		}
	}
}

func TestLFSRSeedZeroCoerced(t *testing.T) {
	l, _ := NewLFSR(4, 0)
	if l.State() != 1 {
		t.Errorf("zero seed gave state %d, want 1", l.State())
	}
	l.Seed(0x1F) // masked to 0xF
	if l.State() != 0xF {
		t.Errorf("Seed masking wrong: %#x", l.State())
	}
}

func TestLFSRUnsupportedWidth(t *testing.T) {
	for _, w := range []int{0, 1, 17} {
		if _, err := NewLFSR(w, 1); err == nil {
			t.Errorf("width %d accepted", w)
		}
	}
}

func TestLFSRLowAndStepN(t *testing.T) {
	l, _ := NewLFSR(8, 0xA5)
	l2, _ := NewLFSR(8, 0xA5)
	for i := 0; i < 7; i++ {
		l.Step()
	}
	if l2.StepN(7) != l.State() {
		t.Error("StepN diverges from repeated Step")
	}
	if got := l.Low(3); got != l.State()&7 {
		t.Errorf("Low(3) = %d, want %d", got, l.State()&7)
	}
	if l.Width() != 8 {
		t.Errorf("Width = %d", l.Width())
	}
}

// Property: the low p bits of a maximal-length LFSR visit all values
// nearly uniformly over a full period — the quasi-uniformity the
// Scrambling scheme relies on.
func TestLFSRLowBitsUniformOverPeriod(t *testing.T) {
	l, _ := NewLFSR(10, 1)
	const p = 2
	counts := make([]int, 1<<p)
	n := int(l.Period())
	for i := 0; i < n; i++ {
		counts[l.Step()&(1<<p-1)]++
	}
	// Over one period each pattern appears 2^(w-p) times except the
	// all-zero pattern which appears one fewer (the zero state is
	// excluded).
	want := 1 << (10 - p)
	for v, c := range counts {
		expect := want
		if v == 0 {
			expect = want - 1
		}
		if c != expect {
			t.Errorf("pattern %d seen %d times, want %d", v, c, expect)
		}
	}
}

func TestLFSRCost(t *testing.T) {
	l, _ := NewLFSR(8, 1)
	c := l.Cost()
	if c.Gates <= 0 || c.Levels <= 0 {
		t.Errorf("degenerate cost %+v", c)
	}
	if c.Levels > 3 {
		t.Errorf("feedback depth %d too deep for 4 taps", c.Levels)
	}
}

func TestSatCounter(t *testing.T) {
	c, err := NewSatCounter(2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Max() != 3 || c.Width() != 2 {
		t.Fatalf("geometry wrong: max=%d width=%d", c.Max(), c.Width())
	}
	// Three idle ticks to saturate a 2-bit counter.
	for i := 0; i < 2; i++ {
		if c.Tick(false) {
			t.Fatalf("saturated after %d ticks", i+1)
		}
	}
	if !c.Tick(false) {
		t.Fatal("not saturated at max")
	}
	if !c.Saturated() {
		t.Fatal("Saturated() false at max")
	}
	// Stays saturated while idle.
	if !c.Tick(false) {
		t.Fatal("left saturation while idle")
	}
	// Access resets immediately.
	if c.Tick(true) {
		t.Fatal("terminal count asserted on access")
	}
	if c.Value() != 0 {
		t.Fatalf("access did not reset: %d", c.Value())
	}
	c.Tick(false)
	c.Reset()
	if c.Value() != 0 {
		t.Error("Reset failed")
	}
	if _, err := NewSatCounter(0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := NewSatCounter(33); err == nil {
		t.Error("width 33 accepted")
	}
}

func TestBlockControl(t *testing.T) {
	bc, err := NewBlockControl(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bc.Banks() != 4 {
		t.Fatalf("Banks = %d", bc.Banks())
	}
	// Keep bank 0 busy, let the rest idle: after 3 cycles banks 1..3
	// saturate.
	var mask uint
	for i := 0; i < 3; i++ {
		mask = bc.Tick(0b0001)
	}
	if mask != 0b1110 {
		t.Errorf("sleep mask = %04b, want 1110", mask)
	}
	if bc.SleepMask() != 0b1110 {
		t.Errorf("SleepMask = %04b", bc.SleepMask())
	}
	// Touch bank 2: it wakes, others stay asleep.
	mask = bc.Tick(0b0100)
	if mask != 0b1010 {
		t.Errorf("after touch, mask = %04b, want 1010", mask)
	}
	bc.Reset()
	if bc.SleepMask() != 0 {
		t.Error("Reset left counters saturated")
	}
	if _, err := NewBlockControl(0, 2); err == nil {
		t.Error("0 banks accepted")
	}
	if _, err := NewBlockControl(2, 0); err == nil {
		t.Error("0-width counters accepted")
	}
	if c := bc.Cost(); c.Gates <= 0 {
		t.Errorf("cost %+v", c)
	}
}

// Property: a saturating counter's value never exceeds Max and is zero
// right after any access.
func TestSatCounterInvariant(t *testing.T) {
	f := func(pattern []bool) bool {
		c, _ := NewSatCounter(3)
		for _, accessed := range pattern {
			c.Tick(accessed)
			if c.Value() > c.Max() {
				return false
			}
			if accessed && c.Value() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package hw

import (
	"testing"
	"testing/quick"
)

func newDecoder(t *testing.T, reindex GateCost) *DecoderD {
	t.Helper()
	d, err := NewDecoderD(10, 2, 6, reindex) // 16kB/16B geometry, M=4
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDecoderSlice(t *testing.T) {
	d := newDecoder(t, GateCost{})
	// n=10, p=2: bank = index >> 8, line = index & 0xFF.
	cases := []struct {
		index uint64
		bank  uint
		line  uint64
	}{
		{0, 0, 0}, {0xFF, 0, 0xFF}, {0x100, 1, 0}, {0x2AB, 2, 0xAB}, {0x3FF, 3, 0xFF},
	}
	for _, c := range cases {
		bank, line := d.Slice(c.index)
		if bank != c.bank || line != c.line {
			t.Errorf("Slice(%#x) = (%d, %#x), want (%d, %#x)", c.index, bank, line, c.bank, c.line)
		}
	}
	if d.Banks() != 4 {
		t.Errorf("Banks = %d", d.Banks())
	}
}

func TestDecoderDecodeWithF(t *testing.T) {
	d := newDecoder(t, GateCost{})
	rotate := func(b uint) uint { return (b + 1) % 4 }
	bank, line, _ := d.Decode(0x100, rotate)
	if bank != 2 || line != 0 {
		t.Errorf("Decode with f = (%d, %d), want (2, 0)", bank, line)
	}
	bank, _, _ = d.Decode(0x100, nil)
	if bank != 1 {
		t.Errorf("Decode without f = %d, want 1", bank)
	}
}

func TestDecoderSleepIntegration(t *testing.T) {
	d := newDecoder(t, GateCost{})
	// Hammer bank 0; let the others idle to saturation (63 cycles).
	var mask uint
	for i := 0; i < 63; i++ {
		_, _, mask = d.Decode(0x00, nil)
	}
	if mask != 0b1110 {
		t.Errorf("sleep mask = %04b, want 1110", mask)
	}
	// An idle cycle keeps everyone counting; bank 0 needs 63 more.
	mask = d.IdleTick()
	if mask != 0b1110 {
		t.Errorf("after idle tick, mask = %04b", mask)
	}
	d.Reset()
	if d.IdleTick() != 0 {
		t.Error("Reset did not clear counters")
	}
}

// TestDecoderCriticalPath checks the paper's overhead claim in gate
// terms: identity decode is one gate level; probing adds the small p-bit
// adder; scrambling adds a single XOR level.
func TestDecoderCriticalPath(t *testing.T) {
	identity := newDecoder(t, GateCost{})
	if cp := identity.CriticalPath(); cp.Levels != 1 {
		t.Errorf("identity critical path %d levels, want 1", cp.Levels)
	}
	pc, err := ProbingCost(2)
	if err != nil {
		t.Fatal(err)
	}
	probing := newDecoder(t, pc)
	// 2-bit ripple adder = 4 levels + 1 encoder level.
	if cp := probing.CriticalPath(); cp.Levels != 5 {
		t.Errorf("probing critical path %d levels, want 5", cp.Levels)
	}
	sc, err := ScramblingCost(2)
	if err != nil {
		t.Fatal(err)
	}
	scrambling := newDecoder(t, sc)
	if cp := scrambling.CriticalPath(); cp.Levels != 2 {
		t.Errorf("scrambling critical path %d levels, want 2", cp.Levels)
	}
	// With a 20ps gate the worst variant stays near a tenth of a 1ns
	// cycle — negligible, as §III-A1 argues.
	if delay := probing.CriticalPath().Delay(20e-12); delay > 0.15e-9 {
		t.Errorf("probing decode delay %v s implausibly large", delay)
	}
	if tc := probing.TotalCost(); tc.Gates <= probing.CriticalPath().Gates {
		t.Error("TotalCost does not include Block Control area")
	}
}

func TestScramblingCostErrors(t *testing.T) {
	if _, err := ScramblingCost(0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := ScramblingCost(MaxSelectBits + 1); err == nil {
		t.Error("oversized width accepted")
	}
}

func TestNewDecoderDErrors(t *testing.T) {
	if _, err := NewDecoderD(0, 1, 6, GateCost{}); err == nil {
		t.Error("index width 0 accepted")
	}
	if _, err := NewDecoderD(10, 0, 6, GateCost{}); err == nil {
		t.Error("bank width 0 accepted")
	}
	if _, err := NewDecoderD(4, 5, 6, GateCost{}); err == nil {
		t.Error("bank width > index width accepted")
	}
	if _, err := NewDecoderD(10, 2, 0, GateCost{}); err == nil {
		t.Error("counter width 0 accepted")
	}
	if _, err := NewDecoderD(40, 2, 6, GateCost{}); err == nil {
		t.Error("index width 40 accepted")
	}
}

// Property: Slice is a bijection — (bank, line) reconstructs the index.
func TestDecoderSliceBijective(t *testing.T) {
	d := newDecoder(t, GateCost{})
	f := func(raw uint16) bool {
		index := uint64(raw) & 0x3FF
		bank, line := d.Slice(index)
		return uint64(bank)<<8|line == index
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package hw

import "fmt"

// DecoderD assembles the full decode-and-control block of Fig. 1b /
// Fig. 2 structurally: the index bit-slice (free — wiring only), the
// optional re-indexing stage f() ahead of the 1-hot encoder, the encoder
// itself, and the Block Control counters. It exists to make the paper's
// overhead claims checkable in one place: the address-to-bank-select
// combinational path is the f() stage plus a single gate level.
type DecoderD struct {
	indexBits int // n
	bankBits  int // p
	encoder   *OneHotEncoder
	control   *BlockControl
	// reindexCost is the combinational cost of the f() stage feeding
	// the encoder (zero for a hard-wired identity mapping).
	reindexCost GateCost
}

// NewDecoderD builds the decoder for a cache with n index bits split into
// 2^p banks, with counterWidth-bit Block Control counters. reindexCost
// describes the f() hardware on the critical path (use ProbingCost or
// ScramblingCost; the zero GateCost models identity).
func NewDecoderD(indexBits, bankBits, counterWidth int, reindexCost GateCost) (*DecoderD, error) {
	if indexBits < 1 || indexBits > 32 {
		return nil, fmt.Errorf("hw: index width %d outside [1,32]", indexBits)
	}
	if bankBits < 1 || bankBits > indexBits {
		return nil, fmt.Errorf("hw: bank address width %d outside [1,%d]", bankBits, indexBits)
	}
	enc, err := NewOneHotEncoder(bankBits)
	if err != nil {
		return nil, err
	}
	ctl, err := NewBlockControl(1<<bankBits, counterWidth)
	if err != nil {
		return nil, err
	}
	return &DecoderD{
		indexBits:   indexBits,
		bankBits:    bankBits,
		encoder:     enc,
		control:     ctl,
		reindexCost: reindexCost,
	}, nil
}

// Banks returns M.
func (d *DecoderD) Banks() int { return 1 << d.bankBits }

// Slice splits a cache index into the bank address (p MSBs, before f())
// and the in-bank line address (n-p LSBs routed to every bank).
func (d *DecoderD) Slice(index uint64) (bankAddr uint, line uint64) {
	shift := uint(d.indexBits - d.bankBits)
	mask := uint64(1)<<shift - 1
	return uint(index>>shift) & uint(d.Banks()-1), index & mask
}

// Decode runs one cycle of the datapath: slice the index, map the bank
// address through f(), raise that bank's select line, and tick Block
// Control. It returns the selected bank, its in-bank line, and the sleep
// mask after the access.
func (d *DecoderD) Decode(index uint64, f func(uint) uint) (bank uint, line uint64, sleepMask uint) {
	bankAddr, line := d.Slice(index)
	if f != nil {
		bankAddr = f(bankAddr)
	}
	onehot := d.encoder.Encode(bankAddr)
	sleepMask = d.control.Tick(onehot)
	return bankAddr, line, sleepMask
}

// IdleTick advances Block Control one cycle with no access.
func (d *DecoderD) IdleTick() uint { return d.control.Tick(0) }

// Reset clears the Block Control counters (e.g. after a flush).
func (d *DecoderD) Reset() { d.control.Reset() }

// CriticalPath returns the combinational address-to-select cost: the
// f() stage in series with the 1-hot encoder. The bit slice is wiring.
// Block Control is off the access path (it gates supplies, not reads).
func (d *DecoderD) CriticalPath() GateCost {
	return d.reindexCost.Add(d.encoder.Cost())
}

// TotalCost adds the sequential machinery (Block Control) for area
// accounting.
func (d *DecoderD) TotalCost() GateCost {
	cp := d.CriticalPath()
	bc := d.control.Cost()
	return GateCost{
		Gates:         cp.Gates + bc.Gates,
		Levels:        cp.Levels, // control is parallel to the datapath
		InputsPerGate: max(cp.InputsPerGate, bc.InputsPerGate),
	}
}

// ProbingCost returns the critical-path cost of the Fig. 3a probing stage
// for a p-bit bank address: the ripple mod-2^p adder (the update counter
// is sequential and off the path).
func ProbingCost(bankBits int) (GateCost, error) {
	a, err := NewModAdder(bankBits)
	if err != nil {
		return GateCost{}, err
	}
	return a.Cost(), nil
}

// ScramblingCost returns the critical-path cost of the Fig. 3b
// scrambling stage: one XOR level (the LFSR itself is sequential and off
// the path).
func ScramblingCost(bankBits int) (GateCost, error) {
	if bankBits < 1 || bankBits > MaxSelectBits {
		return GateCost{}, fmt.Errorf("hw: bank address width %d outside [1,%d]", bankBits, MaxSelectBits)
	}
	return GateCost{Gates: bankBits, Levels: 1, InputsPerGate: 2}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package hw

import "fmt"

// SatCounter is one of the M saturating idle counters inside Block Control
// (Fig. 1b): incremented on every cycle its bank's 1-hot select line is 0
// (a non-access), reset on a 1 (an access). When the counter saturates its
// terminal-count output goes high and the Block Selector drops the bank to
// Vdd,low. The paper sizes these at 5–6 bits ("a few tens of cycles").
type SatCounter struct {
	width int
	max   uint
	value uint
}

// NewSatCounter returns a saturating up-counter of the given width
// (1..32 bits), starting at zero.
func NewSatCounter(width int) (*SatCounter, error) {
	if width < 1 || width > 32 {
		return nil, fmt.Errorf("hw: counter width %d outside [1,32]", width)
	}
	return &SatCounter{width: width, max: 1<<width - 1}, nil
}

// Width returns the counter width in bits.
func (c *SatCounter) Width() int { return c.width }

// Max returns the saturation value 2^width - 1.
func (c *SatCounter) Max() uint { return c.max }

// Value returns the current count.
func (c *SatCounter) Value() uint { return c.value }

// Tick advances one cycle. accessed mirrors the bank's 1-hot select bit:
// true resets the counter, false increments it (saturating). It returns
// the terminal-count output after the tick.
func (c *SatCounter) Tick(accessed bool) bool {
	if accessed {
		c.value = 0
		return false
	}
	if c.value < c.max {
		c.value++
	}
	return c.value == c.max
}

// Saturated reports whether the terminal count is asserted.
func (c *SatCounter) Saturated() bool { return c.value == c.max }

// Reset clears the counter (e.g. on a re-indexing update/flush).
func (c *SatCounter) Reset() { c.value = 0 }

// Cost models a synchronous counter: ~8 gates per bit (flop + increment
// logic) and a carry chain of ~1 level per bit, plus the terminal-count
// AND.
func (c *SatCounter) Cost() GateCost {
	return GateCost{Gates: 8*c.width + 1, Levels: c.width + 1, InputsPerGate: 2}
}

// BlockControl aggregates the M saturating counters of Fig. 1b and exposes
// the per-bank sleep decision. It is the cycle-accurate structural twin of
// the behavioural power-management unit in internal/pmu; the two are
// cross-checked in tests.
type BlockControl struct {
	counters []*SatCounter
}

// NewBlockControl builds M counters of the given width.
func NewBlockControl(banks, width int) (*BlockControl, error) {
	if banks < 1 {
		return nil, fmt.Errorf("hw: block control needs at least one bank, got %d", banks)
	}
	bc := &BlockControl{counters: make([]*SatCounter, banks)}
	for i := range bc.counters {
		c, err := NewSatCounter(width)
		if err != nil {
			return nil, err
		}
		bc.counters[i] = c
	}
	return bc, nil
}

// Banks returns the number of managed banks.
func (b *BlockControl) Banks() int { return len(b.counters) }

// Tick advances all counters one cycle given the 1-hot access code for
// this cycle (0 means no bank accessed). It returns the select mask:
// bit i set means bank i is asleep (counter saturated).
func (b *BlockControl) Tick(onehot uint) uint {
	var sleep uint
	for i, c := range b.counters {
		if c.Tick(onehot&(1<<i) != 0) {
			sleep |= 1 << i
		}
	}
	return sleep
}

// SleepMask returns the current select mask without advancing time.
func (b *BlockControl) SleepMask() uint {
	var sleep uint
	for i, c := range b.counters {
		if c.Saturated() {
			sleep |= 1 << i
		}
	}
	return sleep
}

// Reset clears every counter.
func (b *BlockControl) Reset() {
	for _, c := range b.counters {
		c.Reset()
	}
}

// Cost sums the per-counter costs; the counters operate in parallel so the
// depth is that of one counter.
func (b *BlockControl) Cost() GateCost {
	one := b.counters[0].Cost()
	return GateCost{Gates: one.Gates * len(b.counters), Levels: one.Levels, InputsPerGate: one.InputsPerGate}
}

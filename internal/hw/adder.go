package hw

import "fmt"

// ModAdder is the p-bit adder of the Probing re-indexer (Fig. 3a): it sums
// the bank address with an update counter, and the modulo-M wrap is
// obtained for free by discarding the carry out of the top bit ("Modulo M
// operations are automatically achieved by restricting all signals to p
// bits").
type ModAdder struct {
	bits int
	mask uint
}

// NewModAdder returns a p-bit modulo-2^p adder.
func NewModAdder(bits int) (*ModAdder, error) {
	if bits < 1 || bits > MaxSelectBits {
		return nil, fmt.Errorf("hw: adder width %d outside [1,%d]", bits, MaxSelectBits)
	}
	return &ModAdder{bits: bits, mask: (1 << bits) - 1}, nil
}

// Bits returns the operand width p.
func (a *ModAdder) Bits() int { return a.bits }

// Add returns (x + y) mod 2^p. Operands wider than p bits are masked
// first, mirroring the hardware truncation.
func (a *ModAdder) Add(x, y uint) uint { return (x + y) & a.mask }

// Cost models a ripple-carry adder: one full adder (≈5 gates) per bit and
// roughly 2 gate levels of carry propagation per bit. At p <= 4 this is a
// handful of gates — negligible next to the SRAM access, as the paper
// argues.
func (a *ModAdder) Cost() GateCost {
	return GateCost{Gates: 5 * a.bits, Levels: 2 * a.bits, InputsPerGate: 2}
}

// UpdateCounter is the "cnt" register of Fig. 3a: a p-bit counter bumped
// once per update event. Its value is the current rotation offset of the
// Probing scheme.
type UpdateCounter struct {
	adder *ModAdder
	value uint
}

// NewUpdateCounter returns a p-bit update counter starting at 0.
func NewUpdateCounter(bits int) (*UpdateCounter, error) {
	a, err := NewModAdder(bits)
	if err != nil {
		return nil, err
	}
	return &UpdateCounter{adder: a}, nil
}

// Value returns the current offset.
func (c *UpdateCounter) Value() uint { return c.value }

// Bump advances the counter by one (mod 2^p) and returns the new value.
func (c *UpdateCounter) Bump() uint {
	c.value = c.adder.Add(c.value, 1)
	return c.value
}

// Reset returns the counter to zero.
func (c *UpdateCounter) Reset() { c.value = 0 }

// Bits returns the counter width.
func (c *UpdateCounter) Bits() int { return c.adder.Bits() }

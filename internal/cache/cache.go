// Package cache provides the trace-driven cache model underneath the
// partitioned architecture: geometry arithmetic (index/offset/tag splits),
// a tag store with hit/miss accounting, and flush support. The paper
// assumes a direct-mapped cache ("a direct-mapped cache with L = 2^n
// lines"); set-associativity is supported for generality and used by the
// extension experiments.
package cache

import (
	"fmt"
	"math/bits"
)

// Geometry fixes a cache organisation. All sizes are in bytes and must be
// powers of two.
type Geometry struct {
	// Size is the total data capacity in bytes.
	Size uint64
	// LineSize is the line (block) size in bytes.
	LineSize uint64
	// Ways is the associativity; 1 means direct-mapped.
	Ways int
	// AddressBits bounds the physical address, fixing the tag width.
	AddressBits int
}

// Validate reports geometry errors.
func (g Geometry) Validate() error {
	switch {
	case g.Size == 0 || g.Size&(g.Size-1) != 0:
		return fmt.Errorf("cache: size %d is not a power of two", g.Size)
	case g.LineSize == 0 || g.LineSize&(g.LineSize-1) != 0:
		return fmt.Errorf("cache: line size %d is not a power of two", g.LineSize)
	case g.LineSize > g.Size:
		return fmt.Errorf("cache: line size %d exceeds cache size %d", g.LineSize, g.Size)
	case g.Ways < 1:
		return fmt.Errorf("cache: associativity %d must be >= 1", g.Ways)
	case g.Ways&(g.Ways-1) != 0:
		return fmt.Errorf("cache: associativity %d is not a power of two", g.Ways)
	case uint64(g.Ways) > g.Size/g.LineSize:
		return fmt.Errorf("cache: associativity %d exceeds line count %d", g.Ways, g.Size/g.LineSize)
	case g.AddressBits < 1 || g.AddressBits > 64:
		return fmt.Errorf("cache: address width %d outside [1,64]", g.AddressBits)
	}
	if g.IndexBits()+g.OffsetBits() > g.AddressBits {
		return fmt.Errorf("cache: index (%d) + offset (%d) bits exceed address width %d",
			g.IndexBits(), g.OffsetBits(), g.AddressBits)
	}
	return nil
}

// Lines returns L, the number of cache lines.
func (g Geometry) Lines() int { return int(g.Size / g.LineSize) }

// Sets returns the number of sets (Lines for a direct-mapped cache).
func (g Geometry) Sets() int { return g.Lines() / g.Ways }

// OffsetBits returns log2(LineSize).
func (g Geometry) OffsetBits() int { return bits.TrailingZeros64(g.LineSize) }

// IndexBits returns log2(Sets) — the paper's n for a direct-mapped cache.
func (g Geometry) IndexBits() int { return bits.TrailingZeros64(uint64(g.Sets())) }

// TagBits returns the tag width per line, including the valid bit.
func (g Geometry) TagBits() int {
	return g.AddressBits - g.IndexBits() - g.OffsetBits() + 1
}

// TagArrayBytes returns the total tag storage, rounded up per line.
func (g Geometry) TagArrayBytes() uint64 {
	perLine := (uint64(g.TagBits()) + 7) / 8
	return perLine * uint64(g.Lines())
}

// LineAddr returns the line-granular address (addr / LineSize).
func (g Geometry) LineAddr(addr uint64) uint64 { return addr >> g.OffsetBits() }

// Index returns the set index of addr.
func (g Geometry) Index(addr uint64) uint64 {
	return g.LineAddr(addr) & uint64(g.Sets()-1)
}

// Tag returns the tag of addr (line address above the index).
func (g Geometry) Tag(addr uint64) uint64 {
	return g.LineAddr(addr) >> g.IndexBits()
}

// Cache is a tag store with LRU replacement. It models only presence (the
// simulator never needs data contents).
type Cache struct {
	geom   Geometry
	tags   []uint64 // [set*ways + way]
	valid  []bool
	stamp  []uint64 // LRU timestamps
	clock  uint64
	hits   uint64
	misses uint64
}

// New builds an empty cache.
func New(g Geometry) (*Cache, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.Sets() * g.Ways
	return &Cache{
		geom:  g,
		tags:  make([]uint64, n),
		valid: make([]bool, n),
		stamp: make([]uint64, n),
	}, nil
}

// Geometry returns the cache organisation.
func (c *Cache) Geometry() Geometry { return c.geom }

// Access looks up addr, fills on miss (LRU victim), and reports whether it
// hit.
func (c *Cache) Access(addr uint64) bool {
	set := int(c.geom.Index(addr))
	tag := c.geom.Tag(addr)
	base := set * c.geom.Ways
	c.clock++
	victim := base
	var victimStamp uint64 = ^uint64(0)
	for w := 0; w < c.geom.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.stamp[i] = c.clock
			c.hits++
			return true
		}
		if !c.valid[i] {
			victim = i
			victimStamp = 0
		} else if c.stamp[i] < victimStamp {
			victim = i
			victimStamp = c.stamp[i]
		}
	}
	c.valid[victim] = true
	c.tags[victim] = tag
	c.stamp[victim] = c.clock
	c.misses++
	return false
}

// Contains reports presence without updating LRU or counters.
func (c *Cache) Contains(addr uint64) bool {
	set := int(c.geom.Index(addr))
	tag := c.geom.Tag(addr)
	base := set * c.geom.Ways
	for w := 0; w < c.geom.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			return true
		}
	}
	return false
}

// Flush invalidates every line (the mandatory action on a re-indexing
// update).
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// Stats returns cumulative hit/miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// ResetStats zeroes the counters without touching contents.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Package cache provides the trace-driven cache model underneath the
// partitioned architecture: geometry arithmetic (index/offset/tag splits),
// a tag store with hit/miss accounting, and flush support. The paper
// assumes a direct-mapped cache ("a direct-mapped cache with L = 2^n
// lines"); set-associativity is supported for generality and used by the
// extension experiments.
package cache

import (
	"fmt"
	"math/bits"
)

// Geometry fixes a cache organisation. All sizes are in bytes and must be
// powers of two.
type Geometry struct {
	// Size is the total data capacity in bytes.
	Size uint64
	// LineSize is the line (block) size in bytes.
	LineSize uint64
	// Ways is the associativity; 1 means direct-mapped.
	Ways int
	// AddressBits bounds the physical address, fixing the tag width.
	AddressBits int
}

// Validate reports geometry errors.
func (g Geometry) Validate() error {
	switch {
	case g.Size == 0 || g.Size&(g.Size-1) != 0:
		return fmt.Errorf("cache: size %d is not a power of two", g.Size)
	case g.LineSize == 0 || g.LineSize&(g.LineSize-1) != 0:
		return fmt.Errorf("cache: line size %d is not a power of two", g.LineSize)
	case g.LineSize > g.Size:
		return fmt.Errorf("cache: line size %d exceeds cache size %d", g.LineSize, g.Size)
	case g.Ways < 1:
		return fmt.Errorf("cache: associativity %d must be >= 1", g.Ways)
	case g.Ways&(g.Ways-1) != 0:
		return fmt.Errorf("cache: associativity %d is not a power of two", g.Ways)
	case uint64(g.Ways) > g.Size/g.LineSize:
		return fmt.Errorf("cache: associativity %d exceeds line count %d", g.Ways, g.Size/g.LineSize)
	case g.AddressBits < 1 || g.AddressBits > 64:
		return fmt.Errorf("cache: address width %d outside [1,64]", g.AddressBits)
	}
	if g.IndexBits()+g.OffsetBits() > g.AddressBits {
		return fmt.Errorf("cache: index (%d) + offset (%d) bits exceed address width %d",
			g.IndexBits(), g.OffsetBits(), g.AddressBits)
	}
	return nil
}

// Every quantity below is a power of two, so the derived getters are
// pure shift arithmetic — they sit on simulation hot paths (per-access
// index/tag splits in this package, region decode in internal/core,
// signature measurement in internal/workload) where the former
// divisions were measurable.

// Lines returns L, the number of cache lines.
func (g Geometry) Lines() int { return int(g.Size >> uint(bits.TrailingZeros64(g.LineSize))) }

// Sets returns the number of sets (Lines for a direct-mapped cache).
func (g Geometry) Sets() int { return g.Lines() >> uint(bits.TrailingZeros(uint(g.Ways))) }

// OffsetBits returns log2(LineSize).
func (g Geometry) OffsetBits() int { return bits.TrailingZeros64(g.LineSize) }

// IndexBits returns log2(Sets) — the paper's n for a direct-mapped cache.
func (g Geometry) IndexBits() int { return bits.TrailingZeros64(uint64(g.Sets())) }

// TagBits returns the tag width per line, including the valid bit.
func (g Geometry) TagBits() int {
	return g.AddressBits - g.IndexBits() - g.OffsetBits() + 1
}

// TagArrayBytes returns the total tag storage, rounded up per line.
func (g Geometry) TagArrayBytes() uint64 {
	perLine := (uint64(g.TagBits()) + 7) / 8
	return perLine * uint64(g.Lines())
}

// LineAddr returns the line-granular address (addr / LineSize).
func (g Geometry) LineAddr(addr uint64) uint64 { return addr >> g.OffsetBits() }

// Index returns the set index of addr.
func (g Geometry) Index(addr uint64) uint64 {
	return g.LineAddr(addr) & uint64(g.Sets()-1)
}

// Tag returns the tag of addr (line address above the index).
func (g Geometry) Tag(addr uint64) uint64 {
	return g.LineAddr(addr) >> g.IndexBits()
}

// Cache is a tag store with LRU replacement. It models only presence (the
// simulator never needs data contents).
//
// The store is flattened for the simulation hot path: each line holds a
// single tag word — the stored tag shifted left once with the valid bit
// in bit 0 — so a lookup is one load and one compare, with 0 as the
// "invalid" sentinel (no tag word is 0 because bit 0 is always set on a
// valid line). The index/offset/tag splits are precomputed at New, and
// the direct-mapped organisation (the paper's architecture, and every
// bank the partitioned cache builds) skips the way scan and the LRU
// stamp bookkeeping entirely.
type Cache struct {
	geom    Geometry
	ways    int
	offBits uint
	idxBits uint
	idxMask uint64 // Sets-1
	tagMask uint64 // every address bit above the index/offset split (see New)
	tags    []uint64
	stamp   []uint64 // LRU timestamps (associative organisations only)
	clock   uint64
	hits    uint64
	misses  uint64
}

// New builds an empty cache.
func New(g Geometry) (*Cache, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.Sets() * g.Ways
	// The stored tag spans every address bit above the index/offset
	// split — not just the AddressBits-derived width — so addresses
	// beyond the declared width still compare by their full remaining
	// tag, exactly as the pre-flattening full-width compare did (an
	// uploaded trace's uint64 addresses are not bounded by the job
	// geometry's AddressBits). The shift into the valid-bit word is
	// lossless whenever index+offset >= 1; the one degenerate geometry
	// with a genuine 64-bit tag (a single one-byte line) drops the top
	// address bit.
	tagBits := 64 - g.OffsetBits() - g.IndexBits()
	tagMask := ^uint64(0) >> 1
	if tagBits < 64 {
		tagMask = 1<<uint(tagBits) - 1
	}
	c := &Cache{
		geom:    g,
		ways:    g.Ways,
		offBits: uint(g.OffsetBits()),
		idxBits: uint(g.IndexBits()),
		idxMask: uint64(g.Sets() - 1),
		tagMask: tagMask,
		tags:    make([]uint64, n),
	}
	// LRU stamps exist only for associative organisations; the
	// direct-mapped path (the paper's architecture, built per bank per
	// job on the sweep hot path) never touches them.
	if g.Ways > 1 {
		c.stamp = make([]uint64, n)
	}
	return c, nil
}

// Geometry returns the cache organisation.
func (c *Cache) Geometry() Geometry { return c.geom }

// tagWord returns the line's stored word for addr: tag<<1 | valid.
func (c *Cache) tagWord(addr uint64) (set uint64, word uint64) {
	la := addr >> c.offBits
	return la & c.idxMask, ((la>>c.idxBits)&c.tagMask)<<1 | 1
}

// Access looks up addr, fills on miss (LRU victim), and reports whether it
// hit.
func (c *Cache) Access(addr uint64) bool {
	set, word := c.tagWord(addr)
	if c.ways == 1 {
		if c.tags[set] == word {
			c.hits++
			return true
		}
		c.tags[set] = word
		c.misses++
		return false
	}
	return c.accessAssoc(int(set), word)
}

// accessAssoc is the set-associative way scan: hit updates the LRU
// stamp; miss fills the last invalid way, else the LRU way.
func (c *Cache) accessAssoc(set int, word uint64) bool {
	base := set * c.ways
	c.clock++
	victim := base
	victimStamp := ^uint64(0)
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == word {
			c.stamp[i] = c.clock
			c.hits++
			return true
		}
		if c.tags[i] == 0 {
			victim = i
			victimStamp = 0
		} else if c.stamp[i] < victimStamp {
			victim = i
			victimStamp = c.stamp[i]
		}
	}
	c.tags[victim] = word
	c.stamp[victim] = c.clock
	c.misses++
	return false
}

// AccessBatch looks up every address in order, filling on miss, and
// returns how many hit. It is the batch entry point of the simulation
// kernel: the direct-mapped loop runs over local copies of the
// precomputed splits with the counter updates folded into one flush.
func (c *Cache) AccessBatch(addrs []uint64) uint64 {
	var hits uint64
	if c.ways == 1 {
		tags := c.tags
		off, ib, im, tm := c.offBits, c.idxBits, c.idxMask, c.tagMask
		for _, a := range addrs {
			la := a >> off
			word := ((la>>ib)&tm)<<1 | 1
			if set := la & im; tags[set] == word {
				hits++
			} else {
				tags[set] = word
			}
		}
		c.hits += hits
		c.misses += uint64(len(addrs)) - hits
		return hits
	}
	for _, a := range addrs {
		set, word := c.tagWord(a)
		if c.accessAssoc(int(set), word) {
			hits++
		}
	}
	return hits
}

// DirectTags is the flattened tag store of a direct-mapped cache plus
// its precomputed address splits — the view the fused simulation kernel
// (internal/core) probes inline, one load and one compare per access,
// without a per-element call. Tags aliases the cache's own store, so
// Flush (and fills through the normal entry points) stay visible to the
// view and vice versa. A kernel probing through the view must report
// its lookup tallies back through AddBatchStats to keep Stats whole.
type DirectTags struct {
	// Tags is the live tag-word array: tag<<1|valid per line, 0 invalid.
	Tags []uint64
	// OffBits/IdxBits/IdxMask/TagMask are the address splits: for addr,
	// la := addr >> OffBits; set := la & IdxMask;
	// word := ((la>>IdxBits)&TagMask)<<1 | 1.
	OffBits, IdxBits uint
	IdxMask, TagMask uint64
}

// Direct returns the direct-mapped probe view. ok is false for a
// set-associative organisation, whose way scan and LRU stamps cannot be
// probed as a single tag word.
func (c *Cache) Direct() (dt DirectTags, ok bool) {
	if c.ways != 1 {
		return DirectTags{}, false
	}
	return DirectTags{
		Tags:    c.tags,
		OffBits: c.offBits,
		IdxBits: c.idxBits,
		IdxMask: c.idxMask,
		TagMask: c.tagMask,
	}, true
}

// AddBatchStats folds lookups performed externally through a Direct
// view into the hit/miss counters, exactly as AccessBatch tallies its
// own loop.
func (c *Cache) AddBatchStats(hits, misses uint64) {
	c.hits += hits
	c.misses += misses
}

// Contains reports presence without updating LRU or counters.
func (c *Cache) Contains(addr uint64) bool {
	set, word := c.tagWord(addr)
	base := int(set) * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == word {
			return true
		}
	}
	return false
}

// Flush invalidates every line (the mandatory action on a re-indexing
// update).
func (c *Cache) Flush() {
	clear(c.tags)
}

// Stats returns cumulative hit/miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// ResetStats zeroes the counters without touching contents.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

package cache

import (
	"math/rand"
	"testing"
)

// TestAccessBatchMatchesScalar drives the same random address stream
// through scalar Access and AccessBatch (random split points, zero-length
// batches included) on direct-mapped and set-associative organisations,
// and requires identical hit totals, counters and final contents.
func TestAccessBatchMatchesScalar(t *testing.T) {
	geoms := []Geometry{
		{Size: 1024, LineSize: 16, Ways: 1, AddressBits: 32},
		{Size: 2048, LineSize: 32, Ways: 2, AddressBits: 32},
		{Size: 4096, LineSize: 16, Ways: 4, AddressBits: 24},
	}
	rng := rand.New(rand.NewSource(11))
	for _, g := range geoms {
		for trial := 0; trial < 20; trial++ {
			scalar, err := New(g)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := New(g)
			if err != nil {
				t.Fatal(err)
			}
			n := rng.Intn(3000)
			addrs := make([]uint64, n)
			for i := range addrs {
				addrs[i] = uint64(rng.Intn(1 << 15))
			}
			var wantHits uint64
			for _, a := range addrs {
				if scalar.Access(a) {
					wantHits++
				}
			}
			var gotHits uint64
			for i := 0; i <= n; {
				j := i + rng.Intn(n-i+1)
				gotHits += batched.AccessBatch(addrs[i:j])
				if j == n {
					break
				}
				i = j
			}
			if gotHits != wantHits {
				t.Fatalf("%+v: batch hits %d, scalar %d", g, gotHits, wantHits)
			}
			sh, sm := scalar.Stats()
			bh, bm := batched.Stats()
			if sh != bh || sm != bm {
				t.Fatalf("%+v: batch stats %d/%d, scalar %d/%d", g, bh, bm, sh, sm)
			}
			for _, a := range addrs {
				if scalar.Contains(a) != batched.Contains(a) {
					t.Fatalf("%+v: contents diverge at %#x", g, a)
				}
			}
		}
	}
}

// TestTagWordSentinel pins the flattened-store invariant the lookup
// relies on: address 0 (tag 0) is distinguishable from an invalid line.
func TestTagWordSentinel(t *testing.T) {
	g := Geometry{Size: 1024, LineSize: 16, Ways: 1, AddressBits: 32}
	c, _ := New(g)
	if c.Contains(0) {
		t.Fatal("empty cache claims to contain address 0")
	}
	if c.Access(0) {
		t.Fatal("cold access to address 0 hit")
	}
	if !c.Access(0) {
		t.Fatal("warm access to address 0 missed")
	}
	c.Flush()
	if c.Contains(0) {
		t.Fatal("flushed cache claims to contain address 0")
	}
}

// TestOutOfWidthAddressesKeepDistinctTags: uploaded traces carry
// unvalidated uint64 addresses, so two addresses differing only above
// the geometry's declared AddressBits must still compare unequal (the
// flattened store keeps every tag bit above the index/offset split, not
// just the AddressBits-derived width). Regression: an early version of
// the tag-word layout truncated to the declared width and turned the
// second access below into a false hit.
func TestOutOfWidthAddressesKeepDistinctTags(t *testing.T) {
	for _, g := range []Geometry{
		{Size: 1024, LineSize: 16, Ways: 1, AddressBits: 32},
		{Size: 1024, LineSize: 16, Ways: 2, AddressBits: 32},
	} {
		c, err := New(g)
		if err != nil {
			t.Fatal(err)
		}
		const lo, hi = uint64(0x1000), uint64(0x1_0000_1000) // equal below bit 32
		if c.Access(lo) {
			t.Fatal("cold access hit")
		}
		if c.Access(hi) {
			t.Fatalf("%+v: address %#x aliased with %#x above the declared width", g, hi, lo)
		}
		if g.Ways > 1 {
			// With 2 ways both lines fit one set: each must now hit as itself.
			if !c.Access(lo) || !c.Access(hi) {
				t.Fatalf("%+v: distinct out-of-width tags did not both stick", g)
			}
		}
		if h := c.AccessBatch([]uint64{lo + 1<<40, lo + 1<<41}); h != 0 {
			t.Fatalf("%+v: batch aliased out-of-width tags (%d hits)", g, h)
		}
	}
}

// TestAccessBatchEmpty: a zero-length batch is a no-op.
func TestAccessBatchEmpty(t *testing.T) {
	c, _ := New(Geometry{Size: 1024, LineSize: 16, Ways: 1, AddressBits: 32})
	if h := c.AccessBatch(nil); h != 0 {
		t.Fatalf("empty batch hit %d times", h)
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("empty batch moved counters: %d/%d", h, m)
	}
}

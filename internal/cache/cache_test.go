package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func geom16k() Geometry {
	return Geometry{Size: 16 * 1024, LineSize: 16, Ways: 1, AddressBits: 32}
}

func TestGeometryDerived(t *testing.T) {
	g := geom16k()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Lines() != 1024 || g.Sets() != 1024 {
		t.Errorf("lines/sets = %d/%d, want 1024/1024", g.Lines(), g.Sets())
	}
	if g.IndexBits() != 10 || g.OffsetBits() != 4 {
		t.Errorf("index/offset bits = %d/%d, want 10/4", g.IndexBits(), g.OffsetBits())
	}
	// 32 - 10 - 4 + valid = 19
	if g.TagBits() != 19 {
		t.Errorf("TagBits = %d, want 19", g.TagBits())
	}
	// 19 bits -> 3 bytes per line * 1024 lines
	if g.TagArrayBytes() != 3*1024 {
		t.Errorf("TagArrayBytes = %d, want 3072", g.TagArrayBytes())
	}
}

func TestGeometrySetAssoc(t *testing.T) {
	g := Geometry{Size: 16 * 1024, LineSize: 16, Ways: 4, AddressBits: 32}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Sets() != 256 || g.IndexBits() != 8 {
		t.Errorf("sets/index = %d/%d, want 256/8", g.Sets(), g.IndexBits())
	}
}

func TestGeometryValidate(t *testing.T) {
	cases := []Geometry{
		{Size: 0, LineSize: 16, Ways: 1, AddressBits: 32},
		{Size: 3000, LineSize: 16, Ways: 1, AddressBits: 32},
		{Size: 1024, LineSize: 0, Ways: 1, AddressBits: 32},
		{Size: 1024, LineSize: 24, Ways: 1, AddressBits: 32},
		{Size: 16, LineSize: 64, Ways: 1, AddressBits: 32},
		{Size: 1024, LineSize: 16, Ways: 0, AddressBits: 32},
		{Size: 1024, LineSize: 16, Ways: 3, AddressBits: 32},
		{Size: 1024, LineSize: 16, Ways: 128, AddressBits: 32},
		{Size: 1024, LineSize: 16, Ways: 1, AddressBits: 0},
		{Size: 1024, LineSize: 16, Ways: 1, AddressBits: 65},
		{Size: 1 << 20, LineSize: 16, Ways: 1, AddressBits: 8},
	}
	for i, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: bad geometry accepted: %+v", i, g)
		}
	}
}

func TestIndexTagSplit(t *testing.T) {
	g := geom16k()
	addr := uint64(0xABCDE)
	line := addr >> 4
	if g.LineAddr(addr) != line {
		t.Errorf("LineAddr = %#x", g.LineAddr(addr))
	}
	if g.Index(addr) != line&1023 {
		t.Errorf("Index = %#x", g.Index(addr))
	}
	if g.Tag(addr) != line>>10 {
		t.Errorf("Tag = %#x", g.Tag(addr))
	}
}

func TestColdMissThenHit(t *testing.T) {
	c, err := New(geom16k())
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("second access missed")
	}
	if !c.Access(0x100F) { // same line
		t.Error("same-line access missed")
	}
	if c.Access(0x1010) { // next line
		t.Error("different line hit")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats = %d/%d, want 2/2", hits, misses)
	}
	if c.HitRate() != 0.5 {
		t.Errorf("HitRate = %v", c.HitRate())
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c, _ := New(geom16k())
	a := uint64(0x0000)
	b := a + 16*1024 // same index, different tag
	c.Access(a)
	c.Access(b) // evicts a
	if c.Access(a) {
		t.Error("conflict victim still present")
	}
}

func TestLRUReplacement(t *testing.T) {
	g := Geometry{Size: 64, LineSize: 16, Ways: 4, AddressBits: 32} // one set
	c, _ := New(g)
	// Fill the set with 4 lines.
	for i := uint64(0); i < 4; i++ {
		c.Access(i * 64) // stride keeps index 0
	}
	// Touch line 0 to make line 1 the LRU victim.
	c.Access(0)
	// Insert a 5th line; it must evict line 1 (address 64).
	c.Access(4 * 64)
	if !c.Contains(0) {
		t.Error("MRU line evicted")
	}
	if c.Contains(64) {
		t.Error("LRU line survived")
	}
	for _, keep := range []uint64{2 * 64, 3 * 64, 4 * 64} {
		if !c.Contains(keep) {
			t.Errorf("line %#x missing", keep)
		}
	}
}

func TestFlush(t *testing.T) {
	c, _ := New(geom16k())
	c.Access(0x40)
	c.Flush()
	if c.Contains(0x40) {
		t.Error("flush left a line valid")
	}
	if c.Access(0x40) {
		t.Error("post-flush access hit")
	}
	c.ResetStats()
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Errorf("ResetStats left %d/%d", h, m)
	}
}

func TestHitRateEmptyCache(t *testing.T) {
	c, _ := New(geom16k())
	if c.HitRate() != 0 {
		t.Error("empty cache hit rate not 0")
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(Geometry{}); err == nil {
		t.Error("zero geometry accepted")
	}
}

// Property: Contains agrees with a shadow map model under random access
// streams (direct-mapped).
func TestDirectMappedMatchesShadowModel(t *testing.T) {
	g := Geometry{Size: 1024, LineSize: 16, Ways: 1, AddressBits: 32}
	c, _ := New(g)
	shadow := make(map[uint64]uint64) // index -> line address
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(1 << 14))
		line := g.LineAddr(addr)
		idx := g.Index(addr)
		wantHit := shadow[idx] == line && shadowValid(shadow, idx)
		gotHit := c.Access(addr)
		if gotHit != wantHit {
			t.Fatalf("access %d addr %#x: hit=%v want %v", i, addr, gotHit, wantHit)
		}
		shadow[idx] = line
	}
}

func shadowValid(m map[uint64]uint64, idx uint64) bool {
	_, ok := m[idx]
	return ok
}

// Property: hits + misses always equals the number of accesses, and a
// repeat of the immediately preceding address always hits.
func TestAccessInvariants(t *testing.T) {
	g := Geometry{Size: 2048, LineSize: 32, Ways: 2, AddressBits: 32}
	f := func(addrs []uint32) bool {
		c, err := New(g)
		if err != nil {
			return false
		}
		for _, a := range addrs {
			c.Access(uint64(a))
			if !c.Access(uint64(a)) {
				return false
			}
		}
		h, m := c.Stats()
		return h+m == uint64(2*len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccess(b *testing.B) {
	c, err := New(geom16k())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095])
	}
}

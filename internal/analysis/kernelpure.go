package analysis

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// kernelPackages are the hot simulation kernel packages whose results
// must be a pure function of their inputs: the differential oracle
// (scalar vs batched), the content-addressed result cache, and the
// 1-vs-3-shard byte-identical cluster contract all assume a job
// simulated twice produces the same bits. Wall-clock reads,
// randomness, map-iteration order, and ad-hoc goroutine scheduling are
// the four ways nondeterminism has historically tried to get in.
var kernelPackages = map[string]bool{
	"core":  true,
	"cache": true,
	"pmu":   true,
	"index": true,
}

// Kernelpure rejects nondeterminism sources inside the kernel
// packages: time.Now/Since/Until/Sleep, anything from math/rand or
// math/rand/v2, `go` statements, and map iteration. Test files are
// exempt — a _test.go file may seed math/rand for input generation
// without touching the determinism contract.
var Kernelpure = &Analyzer{
	Name: "kernelpure",
	Doc: "report wall-clock reads, math/rand, map iteration, and goroutine spawns " +
		"inside the hot kernel packages (core, cache, pmu, index)",
	Run: runKernelpure,
}

func runKernelpure(pass *Pass) error {
	if !kernelPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filepath.Base(filename), "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine spawned in kernel package %s; the kernel must stay schedule-independent", pass.Pkg.Name())
			case *ast.RangeStmt:
				if isMapType(pass.TypesInfo.Types[n.X].Type) {
					pass.Reportf(n.Pos(), "map iteration in kernel package %s; iteration order is nondeterministic", pass.Pkg.Name())
				}
			case *ast.CallExpr:
				f := callee(pass.TypesInfo, n)
				if f == nil {
					return true
				}
				switch calleePkgPath(f) {
				case "time":
					switch f.Name() {
					case "Now", "Since", "Until", "Sleep":
						pass.Reportf(n.Pos(), "time.%s in kernel package %s; wall-clock state must not reach simulation results", f.Name(), pass.Pkg.Name())
					}
				case "math/rand", "math/rand/v2":
					pass.Reportf(n.Pos(), "math/rand in kernel package %s; randomness breaks bit-identical replay", pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil
}

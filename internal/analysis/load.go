package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Unit is one type-checked package ready for analysis. Test variants
// (the `p [p.test]` packages go list -test reports) are first-class
// units: in-package test files are analyzed together with the package
// they extend, and external `p_test` packages are their own unit.
type Unit struct {
	// ImportPath is the unit's identity as go list prints it, test
	// decoration included.
	ImportPath string
	// ForTest is the import path of the package under test when this
	// unit is a test variant, "" otherwise.
	ForTest string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// listedPkg is the slice of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	ForTest    string
	Standard   bool
	DepOnly    bool
}

// Load lists, parses and type-checks the packages matching patterns
// (plus their in-package and external test units), resolving imports
// through the gc export data `go list -export` produces — the same
// compiled artifacts the build uses, so no network or module proxy is
// ever consulted.
func Load(dir string, patterns ...string) ([]*Unit, error) {
	pkgs, err := golist(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export data indexes. A test variant of an imported package ("p
	// [t.test]") must shadow the plain "p" when resolving imports of a
	// unit in the same test graph, so variants index separately.
	exports := make(map[string]string)             // plain import path -> export file
	variants := make(map[string]map[string]string) // plain path -> ForTest -> export file
	targets := make(map[string]bool)
	var units []*listedPkg
	for _, p := range pkgs {
		plain := plainPath(p.ImportPath)
		if p.ForTest == "" {
			if p.Export != "" {
				exports[plain] = p.Export
			}
		} else if p.Export != "" {
			if variants[plain] == nil {
				variants[plain] = make(map[string]string)
			}
			variants[plain][p.ForTest] = p.Export
		}
		if !p.DepOnly && !p.Standard && !strings.HasSuffix(p.ImportPath, ".test") {
			targets[p.ImportPath] = true
			units = append(units, p)
		}
	}

	// An in-package test variant supersedes the plain package: its file
	// list is the plain files plus the _test.go files, so analyzing
	// both would duplicate every finding in the shared files.
	superseded := make(map[string]bool)
	for _, p := range units {
		if p.ForTest != "" && plainPath(p.ImportPath) == p.ForTest {
			superseded[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	var out []*Unit
	for _, p := range units {
		if p.ForTest == "" && superseded[p.ImportPath] {
			continue
		}
		u, err := check(fset, p, exports, variants)
		if err != nil {
			return nil, err
		}
		out = append(out, u)
	}
	return out, nil
}

// golist shells out to `go list -test -deps -export -json`, decoding
// the JSON stream. dir anchors pattern resolution ("" = cwd).
func golist(dir string, patterns []string) ([]*listedPkg, error) {
	args := []string{
		"list", "-test", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,ForTest,Standard,DepOnly",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listedPkg
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// plainPath strips go list's test decoration: "p [t.test]" -> "p".
func plainPath(ip string) string {
	if i := strings.IndexByte(ip, ' '); i >= 0 {
		return ip[:i]
	}
	return ip
}

// check parses and type-checks one unit against the export indexes.
func check(fset *token.FileSet, p *listedPkg, exports map[string]string, variants map[string]map[string]string) (*Unit, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if p.ForTest != "" {
			if ex, ok := variants[path][p.ForTest]; ok {
				return os.Open(ex)
			}
		}
		if ex, ok := exports[path]; ok {
			return os.Open(ex)
		}
		return nil, fmt.Errorf("no export data for %q (importing from %s)", path, p.ImportPath)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	pkg, err := conf.Check(plainPath(p.ImportPath), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
	}
	return &Unit{
		ImportPath: p.ImportPath,
		ForTest:    p.ForTest,
		Dir:        p.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Allocbound is the PR 2 bug class made law: trace.ReadBinary used to
// preallocate up to 2³² accesses (~100 GiB) straight from an untrusted
// header count. The analyzer taints integers produced by wire decoders
// — varint/uvarint readers, encoding/binary's Read and byte-order
// Uint* accessors, and the repo's own blobReader-style helpers — and
// flags any make() whose length or capacity derives from a tainted
// value with no dominating bound check.
//
// A bound check is an if-condition comparing the tainted value with
// <, >, <= or >= before the allocation; clamping through the min/max
// builtins against an untainted operand also clears the taint (the
// ReadAll prealloc idiom).
var Allocbound = &Analyzer{
	Name: "allocbound",
	Doc: "report make() sized by a decoded untrusted integer (varint/binary header) " +
		"that reaches the allocation with no dominating bound check",
	Run: runAllocbound,
}

func runAllocbound(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			_, body := funcParts(n)
			if body != nil {
				checkAllocs(pass, body)
			}
			return true
		})
	}
	return nil
}

// untrustedSource reports whether a call produces attacker-influenced
// integers: its name (case-insensitively) mentions varint, or it is
// one of encoding/binary's decode entry points, or a blobReader-style
// helper (intFromU).
func untrustedSource(info *types.Info, call *ast.CallExpr) bool {
	f := callee(info, call)
	if f == nil {
		return false
	}
	name := f.Name()
	lower := strings.ToLower(name)
	if strings.Contains(lower, "varint") || name == "intFromU" {
		return true
	}
	if calleePkgPath(f) == "encoding/binary" {
		return name == "Read" || strings.HasPrefix(name, "Uint") || strings.HasPrefix(name, "ReadUint")
	}
	// ByteOrder method calls (binary.LittleEndian.Uint32 resolves to
	// package encoding/binary already); methods on other decoders named
	// Uint16/32/64 count too — they exist to pull wire integers.
	if rn := recvNamed(f); rn != nil && (name == "Uint16" || name == "Uint32" || name == "Uint64") {
		return true
	}
	return false
}

func checkAllocs(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Pass 1: seed taint from untrusted decode calls, then propagate
	// through assignments until fixpoint (bounded: taint only grows).
	tainted := make(map[types.Object]bool)
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			taintAll := false
			if len(as.Rhs) == 1 {
				if call, ok := unparen(as.Rhs[0]).(*ast.CallExpr); ok && untrustedSource(info, call) {
					taintAll = true
				}
			}
			for i, lhs := range as.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || tainted[obj] {
					continue
				}
				dirty := taintAll
				if !dirty && i < len(as.Rhs) && len(as.Rhs) == len(as.Lhs) {
					dirty = taintedExpr(info, as.Rhs[i], tainted)
				}
				if dirty {
					tainted[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			break
		}
	}
	if len(tainted) == 0 {
		return
	}

	// Pass 2: bound checks — the position after which each tainted
	// object counts as range-checked.
	checked := make(map[types.Object]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			cmp, ok := c.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch cmp.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				used := make(map[types.Object]bool)
				usedObjects(info, cmp, used)
				for obj := range used {
					if tainted[obj] {
						if prev, ok := checked[obj]; !ok || ifs.Pos() < prev {
							checked[obj] = ifs.Pos()
						}
					}
				}
			}
			return true
		})
		return true
	})

	// Pass 3: allocations sized by still-unchecked taint.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltinCall(info, call, "make") {
			return true
		}
		for _, arg := range call.Args[1:] {
			used := make(map[types.Object]bool)
			collectTaintUses(info, arg, tainted, used)
			for obj := range used {
				pos, ok := checked[obj]
				if !ok || pos > call.Pos() {
					pass.Reportf(call.Pos(), "make() sized by %q, an untrusted decoded integer with no dominating bound check", obj.Name())
					return true
				}
			}
		}
		return true
	})
}

// taintedExpr reports whether e's value derives from tainted objects,
// treating min/max against an untainted operand as a sanitiser.
func taintedExpr(info *types.Info, e ast.Expr, tainted map[types.Object]bool) bool {
	used := make(map[types.Object]bool)
	collectTaintUses(info, e, tainted, used)
	return len(used) > 0
}

// collectTaintUses gathers the tainted objects e actually exposes:
// identifiers used anywhere inside it, except inside min()/max() calls
// that also carry an untainted operand (those clamp the value).
func collectTaintUses(info *types.Info, e ast.Expr, tainted, into map[types.Object]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && (isBuiltinCall(info, call, "min") || isBuiltinCall(info, call, "max")) {
			for _, arg := range call.Args {
				if !taintedExpr(info, arg, tainted) {
					return false // clamped by an untainted bound
				}
			}
			return true
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && tainted[obj] {
				into[obj] = true
			}
		}
		return true
	})
}

package analysis

// All returns the full nbtivet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Detmap,
		Allocbound,
		Lockedio,
		Senterr,
		Nopsafe,
		Kernelpure,
		Soalayout,
		Ringchurn,
		Streamflush,
	}
}

// ByName resolves a subset of the suite by analyzer name; unknown
// names come back in the second result.
func ByName(names []string) (found []*Analyzer, unknown []string) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	for _, n := range names {
		if a, ok := byName[n]; ok {
			found = append(found, a)
		} else {
			unknown = append(unknown, n)
		}
	}
	return found, unknown
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Detmap guards the determinism contract: content-addressed job IDs,
// the scalar-vs-batched differential oracle, and the 1-vs-3-shard
// byte-identical cluster sweeps all assume no Go map iteration order
// ever leaks into canonical encodings or wire output. The analyzer
// flags `for ... range m` over a map when the loop body
//
//   - calls an encoding/output sink (a Write*/Fprint*/Encode*/Marshal*
//     call, or anything whose name mentions "canonical"/"ContentID"),
//     so per-iteration output order is map order; or
//   - appends loop-derived values to a slice that then escapes the
//     function (returned, passed on, or stored) without a sort call
//     laundering the order first; or
//   - concatenates loop-derived values onto an outer string.
//
// The canonical fix is collect-keys → sort → iterate sorted, which the
// analyzer recognises as the negative case.
var Detmap = &Analyzer{
	Name: "detmap",
	Doc: "report map iteration whose order reaches canonical encoders, content-address hashing, " +
		"wire output, or escapes via an unsorted slice",
	Run: runDetmap,
}

func runDetmap(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, body := funcParts(n)
			if body == nil {
				return true
			}
			checkFuncMapRanges(pass, fn, body)
			return true
		})
	}
	return nil
}

// funcParts extracts the name and body of a function declaration or
// literal node (body nil otherwise).
func funcParts(n ast.Node) (name string, body *ast.BlockStmt) {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return n.Name.Name, n.Body
	case *ast.FuncLit:
		return "func literal", n.Body
	}
	return "", nil
}

func checkFuncMapRanges(pass *Pass, fnName string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return true // literals get their own visit
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypesInfo.Types[rng.X].Type; !isMapType(t) {
			return true
		}
		checkMapRange(pass, body, rng)
		return true
	})
}

func checkMapRange(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	loopVars := make(map[types.Object]bool)
	for _, e := range [2]ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	// Escaped-append targets found in the body, to be cleared by a
	// later sort call in the enclosing function.
	appended := make(map[types.Object]token.Pos)

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if desc, ok := sinkCall(info, n); ok {
				pass.Reportf(rng.Pos(), "map iteration order reaches %s; iterate sorted keys instead", desc)
				return false
			}
		case *ast.AssignStmt:
			checkAssignInLoop(pass, info, rng, n, loopVars, appended)
		}
		return true
	})

	if len(appended) == 0 {
		return
	}
	for obj := range appended {
		if sortedLater(info, funcBody, obj) {
			delete(appended, obj)
		}
	}
	for obj, pos := range appended {
		if escapes(info, funcBody, obj, pos) {
			pass.Reportf(rng.Pos(), "map iteration order escapes through %q, which is never sorted; sort it (or the keys) before it leaves the function", obj.Name())
		}
	}
}

// checkAssignInLoop records order-sensitive accumulation: appends of
// loop-derived values, and string concatenation onto an outer variable.
func checkAssignInLoop(pass *Pass, info *types.Info, rng *ast.RangeStmt, as *ast.AssignStmt, loopVars map[types.Object]bool, appended map[types.Object]token.Pos) {
	mentionsLoopVar := func(e ast.Expr) bool {
		used := make(map[types.Object]bool)
		usedObjects(info, e, used)
		for obj := range used {
			if loopVars[obj] {
				return true
			}
		}
		return false
	}
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		bt, _ := typeUnder(info, as.Lhs[0]).(*types.Basic)
		if bt != nil && bt.Info()&types.IsString != 0 && mentionsLoopVar(as.Rhs[0]) {
			if obj := identObj(info, as.Lhs[0]); obj != nil && !loopVars[obj] {
				pass.Reportf(as.Pos(), "map iteration order is baked into string %q; sort the keys first", obj.Name())
			}
		}
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if !isBuiltinCall(info, call, "append") {
			continue
		}
		hasLoopData := false
		for _, arg := range call.Args[1:] {
			if mentionsLoopVar(arg) {
				hasLoopData = true
				break
			}
		}
		if !hasLoopData || i >= len(as.Lhs) {
			continue
		}
		if obj := identObj(info, as.Lhs[i]); obj != nil {
			if _, seen := appended[obj]; !seen {
				appended[obj] = as.Pos()
			}
		}
	}
}

// sinkCall classifies calls whose per-iteration invocation order is
// observable: writers, formatters, encoders, hashes, canonicalisers.
func sinkCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	f := callee(info, call)
	if f == nil {
		return "", false
	}
	name, pkg := f.Name(), calleePkgPath(f)
	switch {
	case pkg == "fmt" && (strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print")):
		return "fmt." + name, true
	case recvNamed(f) != nil && (name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune"):
		return "(" + recvNamed(f).Obj().Name() + ")." + name, true
	case strings.HasPrefix(name, "Encode") || strings.HasPrefix(name, "Marshal"):
		return name, true
	case strings.Contains(strings.ToLower(name), "canonical") || strings.Contains(name, "ContentID"):
		return name, true
	}
	return "", false
}

// sortedLater reports whether obj is handed to a sort anywhere in the
// function: sort.*/slices.Sort* with obj as an argument, or any call
// whose name contains "sort" (SortSpans and friends).
func sortedLater(info *types.Info, funcBody *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		f := callee(info, call)
		if f == nil {
			return true
		}
		pkg := calleePkgPath(f)
		sortish := pkg == "sort" || pkg == "slices" && strings.HasPrefix(f.Name(), "Sort") ||
			strings.Contains(strings.ToLower(f.Name()), "sort")
		if !sortish {
			return true
		}
		for _, arg := range call.Args {
			if identObj(info, arg) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// escapes reports whether obj leaves the function carrying its order:
// returned, passed to a call (append and sorts aside), stored into a
// field or index, or sent on a channel, at any point after pos.
func escapes(info *types.Info, funcBody *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	usesObj := func(e ast.Expr) bool { return identObj(info, e) == obj }
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found || n == nil || n.Pos() < pos {
			return !found
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if usesObj(r) {
					found = true
				}
			}
		case *ast.CallExpr:
			if isBuiltinCall(info, n, "append") {
				return true
			}
			for _, arg := range n.Args {
				if usesObj(arg) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !usesObj(rhs) || i >= len(n.Lhs) {
					continue
				}
				switch unparen(n.Lhs[i]).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					found = true
				}
			}
		case *ast.SendStmt:
			if usesObj(n.Value) {
				found = true
			}
		}
		return !found
	})
	return found
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Streamflush is the PR 10 push-dataplane lesson: a handler that
// asserts its http.ResponseWriter to http.Flusher is a streaming
// handler, and a streaming handler that buffers is a poll loop with
// extra steps — every event written must be flushed before the next
// one, or the client sees nothing until the response ends. Worse, a
// stream write made while a mutex is held turns a slow client into a
// server-wide stall (the write blocks on the peer's TCP window with
// the lock pinned).
//
// Inside any function that contains a `w.(http.Flusher)` assertion the
// analyzer flags, on the asserted writer:
//
//   - a Write (or fmt.Fprint*) with no Flush() call before the next
//     write or the end of the function, and
//   - a Write executed between a sync.Mutex/RWMutex Lock and its
//     Unlock (a deferred Unlock holds to the end of the function).
//
// The scan is linear within the function body and does not follow
// calls; nested function literals have their own timeline and are only
// scanned if they assert a Flusher themselves.
var Streamflush = &Analyzer{
	Name: "streamflush",
	Doc: "report streaming handlers (http.Flusher asserted) that skip a Flush after an event write " +
		"or write to the stream while a mutex is held",
	Run: runStreamflush,
}

func runStreamflush(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if _, body := funcParts(n); body != nil {
				checkStreamflush(pass, body)
			}
			return true
		})
	}
	return nil
}

// flusherAssert recognises `<expr>.(http.Flusher)` and returns the
// asserted writer expression's source form.
func flusherAssert(info *types.Info, e ast.Expr) (writer string, ok bool) {
	ta, isTA := unparen(e).(*ast.TypeAssertExpr)
	if !isTA || ta.Type == nil {
		return "", false
	}
	tv, found := info.Types[ta.Type]
	if !found {
		return "", false
	}
	named, isNamed := tv.Type.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", false
	}
	if named.Obj().Pkg().Path() != "net/http" || named.Obj().Name() != "Flusher" {
		return "", false
	}
	return types.ExprString(ta.X), true
}

type streamEvent struct {
	pos  token.Pos
	kind int // 0 lock, 1 unlock, 2 deferred unlock, 3 stream write, 4 flush
	key  string
}

func checkStreamflush(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Pass 1: collect the asserted writers. No assertion, no streaming
	// handler, nothing to check.
	writers := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			if w, ok := flusherAssert(info, e); ok {
				writers[w] = true
			}
		}
		return true
	})
	if len(writers) == 0 {
		return
	}

	// Pass 2: the event timeline — stream writes, flushes, mutex
	// windows — in source order, lockedio-style.
	var events []streamEvent
	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // its body is someone else's timeline
			case *ast.DeferStmt:
				walk(n.Call, true)
				return false
			case *ast.CallExpr:
				if key, locks, ok := mutexOp(info, n); ok {
					kind := 1
					if locks {
						kind = 0
					} else if deferred {
						kind = 2
					}
					events = append(events, streamEvent{pos: n.Pos(), kind: kind, key: key})
					return true
				}
				if w, ok := streamWrite(writers, n); ok {
					events = append(events, streamEvent{pos: n.Pos(), kind: 3, key: w})
					return true
				}
				if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Flush" && len(n.Args) == 0 {
					// Any zero-arg Flush() clears the pending write: the
					// analyzer checks the write→flush rhythm, not which buffer
					// the flush drains.
					events = append(events, streamEvent{pos: n.Pos(), kind: 4})
				}
			}
			return true
		})
	}
	walk(body, false)

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	depth := make(map[string]int)
	held := 0
	var pending *streamEvent
	for i := range events {
		ev := &events[i]
		switch ev.kind {
		case 0:
			depth[ev.key]++
			held++
		case 1:
			if depth[ev.key] > 0 {
				depth[ev.key]--
				held--
			}
		case 2:
			// Deferred unlock: the window stays open to function end.
		case 3:
			if held > 0 {
				pass.Reportf(ev.pos, "stream write to %s while a mutex is held; a slow client stalls the lock", ev.key)
			}
			if pending != nil {
				pass.Reportf(pending.pos, "stream write to %s is never flushed before the next write; call Flush() after each event", pending.key)
			}
			pending = ev
		case 4:
			pending = nil
		}
	}
	if pending != nil {
		pass.Reportf(pending.pos, "stream write to %s is never flushed before the handler returns", pending.key)
	}
}

// streamWrite recognises a write to one of the asserted writers:
// `<w>.Write(...)` / `<w>.WriteString(...)` or a fmt.Fprint* call with
// <w> as its destination.
func streamWrite(writers map[string]bool, call *ast.CallExpr) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString":
		if w := types.ExprString(sel.X); writers[w] {
			return w, true
		}
	case "Fprint", "Fprintf", "Fprintln":
		if id, ok := unparen(sel.X).(*ast.Ident); ok && id.Name == "fmt" && len(call.Args) > 0 {
			if w := types.ExprString(call.Args[0]); writers[w] {
				return w, true
			}
		}
	}
	return "", false
}

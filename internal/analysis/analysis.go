// Package analysis is nbtivet's analyzer framework: a dependency-free
// mirror of the golang.org/x/tools/go/analysis API surface this repo's
// custom vet suite needs. The container this codebase grows in has no
// module proxy access, so instead of depending on x/tools the package
// re-implements the small slice it uses — Analyzer, Pass, Diagnostic,
// a package loader built on `go list -export` plus the standard
// library's gc-export-data importer, and a `// want`-comment test
// harness (see the analysistest subpackage). Analyzer Run functions
// are written against this API shape so they would port to the real
// x/tools framework mechanically if the dependency ever lands.
//
// The suite itself enforces the repo's hand-won invariants — the bug
// classes PRs 2–6 paid review rounds to find and fix:
//
//   - detmap: map iteration feeding canonical encoders, content-address
//     hashing, or wire output without a dominating key sort.
//   - allocbound: make() sized by a decoded untrusted integer with no
//     dominating bound check (the ReadBinary ~100 GiB preallocation).
//   - lockedio: file/network/blob-store I/O while a sync.Mutex is held
//     (the DiskStore index-mutex serialisation).
//   - senterr: ==/!= against exported Err* sentinels, and fmt.Errorf
//     stringifying an error without %w.
//   - nopsafe: internal/obs handle methods missing the documented
//     nil-receiver no-op guard.
//   - kernelpure: wall-clock, randomness, map iteration or goroutine
//     spawns inside the hot kernel packages (core, cache, pmu, index).
//   - soalayout: per-element trace.Access construction or row-slice
//     field gathers inside loops in core, cache, and pmu — the hidden
//     transpose the columnar trace path (PR 8) exists to eliminate.
//
// Findings are suppressed per line with an explanation:
//
//	//nbtivet:ignore <analyzer> <reason>
//
// placed on the offending line or the line above. A directive without
// a reason is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named check over one package unit.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //nbtivet:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description `nbtivet help` prints: what
	// the analyzer enforces and which historical bug motivated it.
	Doc string
	// Run performs the check, reporting findings through the pass.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one package unit: syntax, types,
// and a diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over a loaded unit and returns the
// surviving diagnostics: suppressed findings are dropped, and malformed
// suppression directives are reported as findings of the pseudo
// analyzer "directive". Diagnostics come back sorted by position.
func Run(unit *Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      unit.Fset,
			Files:     unit.Files,
			Pkg:       unit.Pkg,
			TypesInfo: unit.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, unit.ImportPath, err)
		}
	}
	dirs, bad := directives(unit.Fset, unit.Files, analyzers)
	kept := diags[:0]
	for _, d := range diags {
		if !dirs.suppresses(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, bad...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return kept, nil
}

package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Senterr enforces error-identity hygiene, the bug class PR 5's
// sentinel refactor exposed: once a package wraps its sentinels with
// fmt.Errorf("...: %w", err) — as core, pmu and trace all do — a
// caller comparing with == silently stops matching. Two checks:
//
//  1. ==/!= against an exported package-level `Err*` sentinel. Those
//     comparisons must be errors.Is so they survive wrapping. (io.EOF
//     is deliberately out of scope: it is named EOF, and the Reader
//     contract returns it unwrapped.)
//  2. fmt.Errorf stringifying an error operand with a non-%w verb.
//     That breaks the chain for every caller downstream; masking an
//     error deliberately is legal but must say so with a directive.
var Senterr = &Analyzer{
	Name: "senterr",
	Doc: "report ==/!= comparisons against exported Err* sentinels (use errors.Is) " +
		"and fmt.Errorf stringifying an error without %w",
	Run: runSenterr,
}

func runSenterr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range [2]ast.Expr{n.X, n.Y} {
					if name, ok := sentinelErr(pass.TypesInfo, side); ok {
						pass.Reportf(n.Pos(), "%s compared with %s; use errors.Is so the match survives wrapping", name, n.Op)
						return true
					}
				}
			case *ast.CallExpr:
				checkErrorfVerbs(pass, n)
			}
			return true
		})
	}
	return nil
}

// sentinelErr reports whether e references an exported package-level
// error variable named Err*.
func sentinelErr(info *types.Info, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		if _, ok := unparen(e.X).(*ast.Ident); ok {
			id = e.Sel
		}
	}
	if id == nil {
		return "", false
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil {
		return "", false
	}
	if obj.Parent() != obj.Pkg().Scope() { // package-level only
		return "", false
	}
	if !strings.HasPrefix(obj.Name(), "Err") || !isErrorType(obj.Type()) {
		return "", false
	}
	return obj.Name(), true
}

// checkErrorfVerbs maps fmt.Errorf's format verbs to operands and
// reports error operands rendered with anything but %w.
func checkErrorfVerbs(pass *Pass, call *ast.CallExpr) {
	f := callee(pass.TypesInfo, call)
	if calleePkgPath(f) != "fmt" || f.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	format, ok := stringConstant(pass.TypesInfo, call.Args[0])
	if !ok {
		return
	}
	operands := call.Args[1:]
	next := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags, width, precision; '*' consumes an operand.
		for i < len(format) && strings.ContainsRune("+-# 0123456789.", rune(format[i])) {
			i++
		}
		for i < len(format) && format[i] == '*' {
			next++
			i++
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		if verb == '%' {
			continue
		}
		if next < len(operands) && verb != 'w' {
			arg := operands[next]
			if t := pass.TypesInfo.Types[arg].Type; isErrorType(t) {
				pass.Reportf(arg.Pos(), "error stringified with %%%c loses its identity; use %%w (or suppress if masking is the point)", verb)
			}
		}
		next++
	}
}

// stringConstant evaluates e to a compile-time string when possible.
func stringConstant(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// soaPackages are the packages whose loops must consume columns, not
// rows. They are the subset of the kernel set that actually touches
// access streams — index computes placements and never sees a trace.
var soaPackages = map[string]bool{
	"core":  true,
	"cache": true,
	"pmu":   true,
}

// Soalayout keeps the hot kernel packages columnar. The columnar trace
// path (SoA blobs, zero-transpose decode, batched kernels) exists
// because row-at-a-time code — building one trace.Access per element,
// or gathering .Cycle/.Addr/.Kind out of an []trace.Access inside a
// loop — costs a hidden transpose per chunk and defeats the layout the
// disk format, the decoder, and the kernel all share. The analyzer
// flags both shapes inside for/range loops in core, cache, and pmu;
// the deliberate row-compatibility paths (RunBuffered, RunMonolithic)
// carry //nbtivet:ignore directives naming why they transpose.
//
// Field gathers are reported once per innermost loop, at the loop
// statement, so one suppression directive covers the whole transpose.
// Test files are exempt: tests and benchmarks build row fixtures.
var Soalayout = &Analyzer{
	Name: "soalayout",
	Doc: "report per-element trace.Access construction and row-slice field gathers " +
		"(.Cycle/.Addr/.Kind off an indexed []trace.Access) inside loops in the hot " +
		"kernel packages (core, cache, pmu); hot paths consume columnar slices",
	Run: runSoalayout,
}

func runSoalayout(pass *Pass) error {
	if !soaPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filepath.Base(filename), "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch l := n.(type) {
			case *ast.ForStmt:
				checkLoopBody(pass, l.Body, l.Pos())
			case *ast.RangeStmt:
				// A two-variable range over rows copies one Access per
				// element before any field is read.
				if l.Value != nil && isAccessSlice(pass.TypesInfo.Types[l.X].Type) {
					pass.Reportf(l.Pos(), "range copies one trace.Access per element; iterate columnar slices (Cycles/Addrs/Kinds) instead")
				}
				checkLoopBody(pass, l.Body, l.Pos())
			}
			return true
		})
	}
	return nil
}

// checkLoopBody scans one loop body, stopping at nested loops (each
// loop owns its own findings, so a directive on the innermost loop is
// enough). Access composite literals report per occurrence; field
// gathers accumulate and report once at the loop statement.
func checkLoopBody(pass *Pass, body *ast.BlockStmt, loopPos token.Pos) {
	gathered := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.CompositeLit:
			if isAccessNamed(pass.TypesInfo.Types[n].Type) {
				pass.Reportf(n.Pos(), "trace.Access constructed per element inside a loop; append to columnar slices (trace.Columns) instead")
			}
		case *ast.SelectorExpr:
			if idx, ok := unparen(n.X).(*ast.IndexExpr); ok {
				if isAccessSlice(pass.TypesInfo.Types[idx.X].Type) {
					gathered[n.Sel.Name] = true
				}
			}
		}
		return true
	})
	if len(gathered) > 0 {
		fields := make([]string, 0, len(gathered))
		for f := range gathered {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		pass.Reportf(loopPos, "loop gathers %s element-by-element from []trace.Access; a hot path should consume columnar slices, a transpose belongs behind the row-compatibility API", strings.Join(fields, "/"))
	}
}

// isAccessNamed matches the trace.Access row shape structurally — a
// named struct called Access with Cycle and Addr fields — rather than
// by package path, so fixtures (which may only import the standard
// library) can declare their own.
func isAccessNamed(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != "Access" {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	var cycle, addr bool
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "Cycle":
			cycle = true
		case "Addr":
			addr = true
		}
	}
	return cycle && addr
}

// isAccessSlice reports whether t is a slice or array of Access rows.
func isAccessSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isAccessNamed(u.Elem())
	case *types.Array:
		return isAccessNamed(u.Elem())
	}
	return false
}

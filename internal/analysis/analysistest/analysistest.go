// Package analysistest runs nbtivet analyzers over small fixture
// packages and checks their diagnostics against `// want` comments —
// the same testing idiom as golang.org/x/tools/go/analysis/analysistest,
// rebuilt on the standard library because this repo vendors nothing.
//
// Fixture layout mirrors x/tools: testdata/src/<pkg>/*.go. A line that
// should be flagged carries a comment of the form
//
//	code() // want "regexp" "another regexp"
//
// with one quoted regexp per expected diagnostic on that line. Every
// expectation must be matched and every diagnostic must be expected;
// anything else fails the test. Suppression directives in fixtures are
// honoured exactly as in production: a suppressed finding needs no
// want, and a malformed directive surfaces as a "directive" diagnostic
// that can itself be want-ed.
//
// Fixtures are type-checked with the standard library's source
// importer, so they may import only the standard library.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"nbticache/internal/analysis"
)

// Run analyzes each fixture package under testdata/src with the given
// analyzers and reports any mismatch against the fixtures' `// want`
// expectations as test errors.
func Run(t *testing.T, testdata string, analyzers []*analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		unit, err := loadFixture(dir, pkg)
		if err != nil {
			t.Errorf("%s: %v", pkg, err)
			continue
		}
		diags, err := analysis.Run(unit, analyzers)
		if err != nil {
			t.Errorf("%s: %v", pkg, err)
			continue
		}
		wants, err := collectWants(unit.Fset, unit.Files)
		if err != nil {
			t.Errorf("%s: %v", pkg, err)
			continue
		}
		compare(t, pkg, diags, wants)
	}
}

// loadFixture parses and type-checks one fixture directory as a single
// package unit.
func loadFixture(dir, pkg string) (*analysis.Unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture: %w", err)
	}
	return &analysis.Unit{
		ImportPath: pkg,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
	}, nil
}

// want is one expected diagnostic: a compiled regexp anchored to a
// file and line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// collectWants extracts `// want "re" ...` expectations from every
// comment in the fixture.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				patterns, err := splitQuoted(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s: %w", pos, err)
				}
				if len(patterns) == 0 {
					return nil, fmt.Errorf("%s: `// want` with no quoted pattern", pos)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern: %w", pos, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, text: p})
				}
			}
		}
	}
	return wants, nil
}

// splitQuoted parses a sequence of Go-quoted strings: `"a" "b"`.
func splitQuoted(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		if s[0] != '"' {
			return nil, fmt.Errorf("want patterns must be double-quoted, got %q", s)
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern in %q", s)
		}
		out = append(out, strings.ReplaceAll(s[1:end], `\"`, `"`))
		s = s[end+1:]
	}
}

// compare matches diagnostics against expectations one-to-one per
// line, reporting unmatched members of either set.
func compare(t *testing.T, pkg string, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	used := make([]bool, len(diags))
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		matched := false
		for i, d := range diags {
			if used[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Analyzer + ": " + d.Message) {
				used[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: %s:%d: no diagnostic matching %q", pkg, filepath.Base(w.file), w.line, w.text)
		}
	}
	for i, d := range diags {
		if !used[i] {
			t.Errorf("%s: unexpected diagnostic: %s", pkg, d)
		}
	}
}

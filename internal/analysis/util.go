package analysis

import (
	"go/ast"
	"go/types"
)

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// callee resolves a call's target to its *types.Func (package function
// or method), or nil for builtins, conversions, and indirect calls
// through plain function values.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		// Package-qualified call (pkg.Func).
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// calleePkgPath returns the defining package path of a call's target
// ("" when unresolved or universe-scoped).
func calleePkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// recvNamed returns the named type of a method's receiver, pointers
// peeled, or nil for package functions.
func recvNamed(f *types.Func) *types.Named {
	if f == nil {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorType)
}

// usedObjects collects the objects of every identifier used inside e.
func usedObjects(info *types.Info, e ast.Expr, into map[types.Object]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				into[obj] = true
			}
		}
		return true
	})
}

// typeUnder returns e's underlying type, nil-safe.
func typeUnder(info *types.Info, e ast.Expr) types.Type {
	t := info.Types[e].Type
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		return true // unresolved bare ident named like the builtin
	}
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// identObj resolves an expression to the object of its root identifier
// (x in x, x.f, x[i]), or nil.
func identObj(info *types.Info, e ast.Expr) types.Object {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return identObj(info, e.X)
	case *ast.IndexExpr:
		return identObj(info, e.X)
	}
	return nil
}

package analysis_test

import (
	"testing"

	"nbticache/internal/analysis"
	"nbticache/internal/analysis/analysistest"
)

// Each fixture package exercises one analyzer's positive, negative and
// directive-suppressed cases; removing an analyzer's logic (or a
// fixture's suppression) makes the corresponding test fail.

func TestSenterr(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.Senterr}, "senterr")
}

func TestDetmap(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.Detmap}, "detmap")
}

func TestAllocbound(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.Allocbound}, "allocbound")
}

func TestLockedio(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.Lockedio}, "lockedio")
}

func TestNopsafe(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.Nopsafe}, "nopsafe")
}

func TestKernelpure(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.Kernelpure}, "kernelpure")
}

func TestSoalayout(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.Soalayout}, "soalayout")
}

func TestRingchurn(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.Ringchurn}, "ringchurn")
}

func TestStreamflush(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.Streamflush}, "streamflush")
}

func TestByName(t *testing.T) {
	found, unknown := analysis.ByName([]string{"senterr", "nosuch", "detmap"})
	if len(found) != 2 || found[0].Name != "senterr" || found[1].Name != "detmap" {
		t.Errorf("found = %v", found)
	}
	if len(unknown) != 1 || unknown[0] != "nosuch" {
		t.Errorf("unknown = %v", unknown)
	}
}

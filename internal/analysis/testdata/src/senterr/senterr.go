// Fixture for the senterr analyzer: sentinel comparisons and
// fmt.Errorf verb hygiene.
package senterr

import (
	"errors"
	"fmt"
	"io"
)

// ErrClosed is an exported sentinel; comparisons against it must use
// errors.Is.
var ErrClosed = errors.New("senterr: closed")

// errQuiet is unexported and out of scope for the Err* rule.
var errQuiet = errors.New("senterr: quiet")

func compare(err error) bool {
	if err == ErrClosed { // want "senterr: ErrClosed compared with =="
		return true
	}
	if err != ErrClosed { // want "senterr: ErrClosed compared with !="
		return false
	}
	if errors.Is(err, ErrClosed) { // negative: the idiomatic form
		return true
	}
	if err == io.EOF { // negative: EOF is not an Err* sentinel by contract
		return true
	}
	if err == errQuiet { // negative: unexported name, no Err prefix
		return true
	}
	//nbtivet:ignore senterr this sentinel is guaranteed unwrapped by the producer in this fixture
	if err == ErrClosed {
		return true
	}
	return false
}

func wrap(err error) error {
	_ = fmt.Errorf("open failed: %v", err)            // want "senterr: error stringified with %v"
	_ = fmt.Errorf("open failed: %s", err)            // want "senterr: error stringified with %s"
	_ = fmt.Errorf("attempt %d failed: %v", 3, err)   // want "senterr: error stringified with %v"
	_ = fmt.Errorf("%w: context: %v", ErrClosed, err) // want "senterr: error stringified with %v"
	//nbtivet:ignore senterr masking is the point: the cause must not stay matchable
	_ = fmt.Errorf("masked: %v", err)
	_ = fmt.Errorf("count %d of %d", 1, 2)    // negative: no error operand
	_ = fmt.Errorf("padded %6.2f", 1.0)       // negative: width/precision, no error
	return fmt.Errorf("open failed: %w", err) // negative: identity preserved
}

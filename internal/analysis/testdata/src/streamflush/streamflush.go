// Fixture for the streamflush analyzer: handlers that assert their
// ResponseWriter to http.Flusher are streaming handlers, and every
// event written must be flushed — outside any mutex window.
package stream

import (
	"fmt"
	"net/http"
	"sync"
)

type hub struct {
	mu     sync.Mutex
	events [][]byte
}

// goodStream is the sanctioned rhythm: snapshot under the lock, write
// and flush outside it, one flush per event.
func goodStream(w http.ResponseWriter, h *hub) {
	fl, ok := w.(http.Flusher)
	if !ok {
		return
	}
	h.mu.Lock()
	evs := h.events
	h.mu.Unlock()
	for _, ev := range evs {
		w.Write(ev)
		fl.Flush()
	}
}

// unflushedBetween buffers the first event until the second write.
func unflushedBetween(w http.ResponseWriter, h *hub) {
	fl, ok := w.(http.Flusher)
	if !ok {
		return
	}
	w.Write([]byte("a")) // want "streamflush: stream write to w is never flushed before the next write"
	w.Write([]byte("b"))
	fl.Flush()
}

// unflushedAtEnd buffers the last event forever.
func unflushedAtEnd(w http.ResponseWriter) {
	if _, ok := w.(http.Flusher); !ok {
		return
	}
	w.Write([]byte("a")) // want "streamflush: stream write to w is never flushed before the handler returns"
}

// lockedWrite pins the mutex-window rule: the write blocks on the
// client's TCP window with h.mu held.
func lockedWrite(w http.ResponseWriter, h *hub) {
	fl, ok := w.(http.Flusher)
	if !ok {
		return
	}
	h.mu.Lock()
	for _, ev := range h.events {
		w.Write(ev) // want "streamflush: stream write to w while a mutex is held"
		fl.Flush()
	}
	h.mu.Unlock()
}

// deferredLockedWrite holds the window to function end via defer.
func deferredLockedWrite(w http.ResponseWriter, h *hub) {
	fl, ok := w.(http.Flusher)
	if !ok {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(w, "event: %d\n\n", len(h.events)) // want "streamflush: stream write to w while a mutex is held"
	fl.Flush()
}

// plainHandler never asserts a Flusher: buffered writes are the normal
// request/response shape, not a finding.
func plainHandler(w http.ResponseWriter) {
	w.Write([]byte("a"))
	w.Write([]byte("b"))
}

// suppressed documents a deliberate exception.
func suppressed(w http.ResponseWriter, h *hub) {
	fl, ok := w.(http.Flusher)
	if !ok {
		return
	}
	h.mu.Lock()
	//nbtivet:ignore streamflush the fixture pins that a justified suppression silences the window rule
	w.Write([]byte("a"))
	h.mu.Unlock()
	fl.Flush()
}

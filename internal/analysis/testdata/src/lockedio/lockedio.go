// Fixture for the lockedio analyzer: syscall-backed I/O inside mutex
// critical sections and *Locked-convention functions.
package lockedio

import (
	"os"
	"sync"
)

// Store mirrors the repo's cas.Store surface; the analyzer matches
// blob-store methods by this type name.
type Store interface {
	Delete(key string) error
}

type index struct {
	mu sync.Mutex
	m  map[string]int
	rw sync.RWMutex
}

func (x *index) removeUnderLock(path string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	os.Remove(path) // want "lockedio: os.Remove while a mutex is held"
}

func (x *index) removeOutside(path string) {
	os.Remove(path) // negative: before the lock
	x.mu.Lock()
	x.m[path] = 1
	x.mu.Unlock()
	os.Remove(path) // negative: after the unlock
}

func (x *index) evictLocked(path string) {
	delete(x.m, path)
	os.Remove(path) // want "lockedio: os.Remove inside evictLocked"
}

func (x *index) reap(s Store, key string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	s.Delete(key) // want "lockedio: .Store..Delete while a mutex is held"
}

func (x *index) readSide(path string) {
	x.rw.RLock()
	defer x.rw.RUnlock()
	os.Stat(path) // want "lockedio: os.Stat while a mutex is held"
}

func (x *index) async(path string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	go func() {
		os.Remove(path) // negative: the goroutine runs outside the window
	}()
}

func (x *index) deliberate(path string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	//nbtivet:ignore lockedio the unlink must be atomic with the index update in this fixture
	os.Remove(path)
	delete(x.m, path)
}

// Fixture for the soalayout analyzer. The package is named core so it
// falls inside the columnar package set; Access mirrors the row shape
// the real trace package defines (the analyzer matches structurally,
// because fixtures may only import the standard library).
package core

// Access is the row type: one element per memory reference.
type Access struct {
	Cycle uint64
	Addr  uint64
	Kind  uint8
}

// Columns is the columnar layout loops are supposed to consume.
type Columns struct {
	Cycles []uint64
	Addrs  []uint64
	Kinds  []uint8
}

// ToRows rebuilds rows from columns — per-element construction in a loop.
func ToRows(c Columns) []Access {
	out := make([]Access, 0, len(c.Cycles))
	for i := range c.Cycles {
		out = append(out, Access{Cycle: c.Cycles[i], Addr: c.Addrs[i], Kind: c.Kinds[i]}) // want "soalayout: trace.Access constructed per element inside a loop"
	}
	return out
}

func Transpose(rows []Access, cycles, addrs []uint64) {
	for i := range rows { // want "soalayout: loop gathers Addr/Cycle element-by-element"
		cycles[i] = rows[i].Cycle
		addrs[i] = rows[i].Addr
	}
}

func SumKinds(rows []Access) uint64 {
	var total uint64
	for _, a := range rows { // want "soalayout: range copies one trace.Access per element"
		total += uint64(a.Kind)
	}
	return total
}

// SumColumns is the negative: columnar consumption inside a loop is
// exactly what the analyzer wants to see.
func SumColumns(c Columns) uint64 {
	var total uint64
	for i := range c.Cycles {
		total += c.Cycles[i] + c.Addrs[i]
	}
	return total
}

// One reports on one element outside any loop — a single row access is
// not a layout problem.
func One(rows []Access) uint64 {
	return rows[0].Cycle
}

// InnermostOwns proves the nested-loop attribution: the gather is
// reported at the inner loop, not the outer one.
func InnermostOwns(chunks [][]Access, sink []uint64) {
	for _, chunk := range chunks {
		for i := range chunk { // want "soalayout: loop gathers Cycle element-by-element"
			sink[i] = chunk[i].Cycle
		}
	}
}

// Suppressed is the directive case: a deliberate transpose carrying
// its reason.
func Suppressed(rows []Access, cycles []uint64) {
	//nbtivet:ignore soalayout row-compatibility shim feeding the batched kernel from legacy input
	for i := range rows {
		cycles[i] = rows[i].Cycle
	}
}

// Fixture for the detmap analyzer: map iteration order leaking into
// output, escaping slices, and string accumulation.
package detmap

import (
	"fmt"
	"io"
	"sort"
)

func sink(w io.Writer, m map[string]int) {
	for k, v := range m { // want "detmap: map iteration order reaches fmt.Fprintf"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func escape(m map[string]int) []string {
	var keys []string
	for k := range m { // want "detmap: map iteration order escapes through .keys."
		keys = append(keys, k)
	}
	return keys
}

func sortedEscape(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // negative: the canonical collect-sort-iterate shape
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func concat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want "detmap: map iteration order is baked into string .s."
	}
	return s
}

func membership(m map[string]bool, xs []string) int {
	n := 0
	for _, x := range xs { // negative: slice range, map only probed
		if m[x] {
			n++
		}
	}
	return n
}

func localOnly(m map[string]int) int {
	total := 0
	for _, v := range m { // negative: accumulation is order-independent and nothing escapes
		total += v
	}
	return total
}

func suppressed(m map[string]int) []string {
	var keys []string
	//nbtivet:ignore detmap the caller treats this as a set and never observes order
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// Fixture for the ringchurn analyzer. The package mirrors the cluster
// package's shape structurally (the analyzer matches a named "Ring"
// with an "Owners" method, because fixtures may only import the
// standard library): a guarded mutate API is the one sanctioned write
// path to the live ring.
package cluster

import "sync"

// Ring is the consistent-hash ring stand-in: the Owners method is what
// marks it Ring-shaped for the analyzer.
type Ring struct {
	nodes map[string]bool
}

func NewRing(replicas int, nodes ...string) *Ring {
	r := &Ring{nodes: make(map[string]bool)}
	for _, n := range nodes {
		r.Add(n) // constructor: sanctioned
	}
	return r
}

func (r *Ring) Add(node string)    { r.nodes[node] = true }
func (r *Ring) Remove(node string) { delete(r.nodes, node) }

func (r *Ring) Owners(key string, n int) []string { return nil }

// Rebuild is a Ring method: Ring's own methods may self-mutate.
func (r *Ring) Rebuild(nodes []string) {
	for _, n := range nodes {
		r.Add(n)
	}
}

// NotRing has Add/Remove but no Owners: not Ring-shaped, never flagged.
type NotRing struct{}

func (NotRing) Add(string)    {}
func (NotRing) Remove(string) {}

type Coordinator struct {
	mu   sync.Mutex
	ring *Ring
}

type ringOp int

const (
	ringAdd ringOp = iota
	ringRemove
)

// mutateRing is the guarded mutation API — the one sanctioned live-ring
// write path outside the Ring itself.
func (c *Coordinator) mutateRing(op ringOp, peer string) {
	if op == ringAdd {
		c.ring.Add(peer)
	} else {
		c.ring.Remove(peer)
	}
}

// evict routes through the guarded API: the negative case.
func (c *Coordinator) evict(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mutateRing(ringRemove, peer)
	var nr NotRing
	nr.Remove(peer) // not a Ring: fine
}

// adoptDirect bypasses the bookkeeping: the positive cases.
func (c *Coordinator) adoptDirect(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ring.Add(peer)    // want "ringchurn: Ring.Add outside the guarded ring-mutation API"
	c.ring.Remove(peer) // want "ringchurn: Ring.Remove outside the guarded ring-mutation API"
}

// churnAsync shows closures inheriting the enclosing function's
// verdict: a goroutine churning the ring is still churn.
func (c *Coordinator) churnAsync(peer string) {
	go func() {
		c.ring.Remove(peer) // want "ringchurn: Ring.Remove outside the guarded ring-mutation API"
	}()
}

// rebuildSnapshot is the suppression case: mutating a throwaway ring
// that never serves traffic is deliberate, and says so.
func rebuildSnapshot(peers []string) *Ring {
	r := NewRing(0)
	for _, p := range peers {
		//nbtivet:ignore ringchurn snapshot ring under construction, not the live ring
		r.Add(p)
	}
	return r
}

// Owners-less lookups on the real Ring are of course fine.
func owners(r *Ring, key string) []string { return r.Owners(key, 2) }

// Fixture for the kernelpure analyzer. The package is named core so it
// falls inside the kernel package set.
package core

import (
	"math/rand"
	"sort"
	"time"
)

func Spawn(xs []int) {
	go func() { // want "kernelpure: goroutine spawned in kernel package core"
		_ = xs
	}()
}

func Stamp() int64 {
	return time.Now().UnixNano() // want "kernelpure: time.Now in kernel package core"
}

func Jitter() float64 {
	return rand.Float64() // want "kernelpure: math/rand in kernel package core"
}

func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want "kernelpure: map iteration in kernel package core"
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func Elapsed(a, b time.Time) time.Duration {
	return b.Sub(a) // negative: pure arithmetic on values passed in
}

func Suppressed() float64 {
	//nbtivet:ignore kernelpure fixed-seed source generating a reproducible synthetic workload
	return rand.New(rand.NewSource(1)).Float64()
}

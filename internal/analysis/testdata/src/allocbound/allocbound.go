// Fixture for the allocbound analyzer: allocations sized by decoded
// untrusted integers.
package allocbound

import (
	"bufio"
	"encoding/binary"
	"errors"
)

const maxItems = 1 << 20

var errTooBig = errors.New("allocbound: count exceeds limit")

func unbounded(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n) // want "allocbound: make.. sized by .n., an untrusted decoded integer"
	return buf, nil
}

func bounded(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxItems {
		return nil, errTooBig
	}
	buf := make([]byte, n) // negative: dominated by the bound check
	return buf, nil
}

func clamped(r *bufio.Reader) []uint64 {
	n, _ := binary.ReadUvarint(r)
	out := make([]uint64, 0, min(n, 1024)) // negative: min() against a constant clamps
	return out
}

func header(b []byte) []byte {
	if len(b) < 4 {
		return nil
	}
	n := binary.LittleEndian.Uint32(b)
	return make([]byte, n) // want "allocbound: make.. sized by .n., an untrusted decoded integer"
}

func derived(r *bufio.Reader) []byte {
	n, _ := binary.ReadUvarint(r)
	count := int(n)
	return make([]byte, count) // want "allocbound: make.. sized by .count., an untrusted decoded integer"
}

func trusted(k int) []byte {
	return make([]byte, k) // negative: no decode in sight
}

func suppressed(r *bufio.Reader) []byte {
	n, _ := binary.ReadUvarint(r)
	//nbtivet:ignore allocbound the reader is an in-process pipe from a trusted encoder in this fixture
	return make([]byte, n)
}

// Fixture for the nopsafe analyzer. The package is named obs because
// the analyzer scopes itself to the telemetry package's documented
// nil-receiver contract.
package obs

// Timer is an exported handle; its exported pointer methods must
// tolerate a nil receiver.
type Timer struct {
	n        int
	disabled bool
}

func (t *Timer) Count() int { // want "nopsafe: ..Timer..Count dereferences the receiver"
	return t.n
}

func (t *Timer) Add(d int) { // want "nopsafe: ..Timer..Add dereferences the receiver"
	t.n += d
}

func (t *Timer) Guarded() int {
	if t == nil {
		return 0
	}
	return t.n
}

func (t *Timer) GuardedChain() int {
	if t == nil || t.disabled {
		return 0
	}
	return t.n
}

func (t *Timer) Forward() int { // negative: method calls only; the callee guards
	return t.Guarded()
}

func (t *Timer) reset() { // negative: unexported, runs behind guarded entry points
	t.n = 0
}

//nbtivet:ignore nopsafe constructor-only path: every caller holds a freshly allocated handle
func (t *Timer) Seed(n int) {
	t.n = n
}

// buf is unexported; its methods are out of scope.
type buf struct{ n int }

func (b *buf) Grow() int { // negative: unexported type
	return b.n
}

package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strconv"
	"strings"
	"testing"
)

// parseUnit type-checks one source string as a unit, for directive
// tests that need precise control over comment placement.
func parseUnit(t *testing.T, src string) *Unit {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Unit{ImportPath: "p", Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
}

const directiveSrc = `package p

import "errors"

var ErrX = errors.New("x")

func f(err error) bool {
	//nbtivet:ignore senterr
	if err == ErrX {
		return true
	}
	//nbtivet:ignore typos some reason
	if err == ErrX {
		return true
	}
	//nbtivet:ignore
	return err != ErrX
}
`

// TestMalformedDirectives checks that a directive without a reason or
// with an unknown analyzer name is itself reported — and does not
// suppress the finding it sits above.
func TestMalformedDirectives(t *testing.T) {
	unit := parseUnit(t, directiveSrc)
	diags, err := Run(unit, []*Analyzer{Senterr})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+"@"+strconv.Itoa(d.Pos.Line))
	}
	want := []string{
		"directive@8",  // senterr with no reason
		"senterr@9",    // ...so the comparison still fires
		"directive@12", // unknown analyzer name
		"senterr@13",
		"directive@16", // bare directive
		"senterr@17",
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("diagnostics = %v, want %v", got, want)
	}
}

const suppressSrc = `package p

import "errors"

var ErrX = errors.New("x")

func f(err error) bool {
	//nbtivet:ignore senterr producer never wraps this sentinel
	if err == ErrX {
		return true
	}
	//nbtivet:ignore all fixture line exempt from the whole suite
	if err == ErrX {
		return true
	}
	if err == ErrX { //nbtivet:ignore senterr same-line placement works too
		return true
	}
	return false
}
`

// TestDirectiveSuppression checks both placements (line above, same
// line) and the "all" wildcard.
func TestDirectiveSuppression(t *testing.T) {
	unit := parseUnit(t, suppressSrc)
	diags, err := Run(unit, []*Analyzer{Senterr})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("diagnostics = %v, want none", diags)
	}
}

// TestOnlySubsetKeepsDirectiveVocabulary: running a subset of the suite
// must not misreport a valid suppression naming another analyzer.
func TestOnlySubsetKeepsDirectiveVocabulary(t *testing.T) {
	unit := parseUnit(t, `package p

import "sync"

type s struct{ mu sync.Mutex }

func (x *s) f() {
	//nbtivet:ignore lockedio reason that names an analyzer outside the running subset
	x.mu.Lock()
	x.mu.Unlock()
}
`)
	diags, err := Run(unit, []*Analyzer{Senterr})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("diagnostics = %v, want none", diags)
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix is the suppression directive marker. Full syntax:
//
//	//nbtivet:ignore <analyzer|all> <reason>
//
// The directive suppresses matching findings on its own line and on
// the line directly below it (so it can sit above a long statement).
// The reason is mandatory: a suppression that cannot say why it exists
// is a finding, not an exemption.
const ignorePrefix = "nbtivet:ignore"

type directive struct {
	file     string
	line     int
	analyzer string // "all" matches every analyzer
}

type directiveIndex map[string]map[int][]string // file -> line -> analyzer names

func (idx directiveIndex) suppresses(d Diagnostic) bool {
	lines := idx[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range lines[l] {
			if name == "all" || name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// directives scans every comment in the unit for suppression
// directives, returning the index plus diagnostics for malformed ones
// (missing reason, unknown analyzer name).
func directives(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) (directiveIndex, []Diagnostic) {
	// Validate names against the full suite, not just the analyzers
	// running now: `-only senterr` must not misreport a lockedio
	// suppression as unknown.
	known := make(map[string]bool, len(analyzers)+1)
	known["all"] = true
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	idx := make(directiveIndex)
	var bad []Diagnostic
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Diagnostic{Analyzer: "directive", Pos: fset.Position(pos), Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					report(c.Pos(), "nbtivet:ignore needs an analyzer name and a reason")
					continue
				}
				name := fields[0]
				if !known[name] {
					report(c.Pos(), "nbtivet:ignore names unknown analyzer "+name)
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "nbtivet:ignore "+name+" needs a reason")
					continue
				}
				p := fset.Position(c.Pos())
				if idx[p.Filename] == nil {
					idx[p.Filename] = make(map[int][]string)
				}
				idx[p.Filename][p.Line] = append(idx[p.Filename][p.Line], name)
			}
		}
	}
	return idx, bad
}

package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// Ringchurn is the PR 9 elastic-membership lesson: the coordinator's
// live hash ring is guarded by the coordinator mutex and every
// membership change must flow through the guarded mutate API
// (`mutateRing`), which is where join/rejoin/evict accounting and the
// alive-flag bookkeeping live. A bare `ring.Add` / `ring.Remove` on the
// live ring bypasses that bookkeeping: the ring and the shard table
// drift, churn metrics lie, and a rejoined peer skips its inventory
// replay. The analyzer flags direct Add/Remove calls on a Ring-shaped
// type (a named type "Ring" that also has an "Owners" method) anywhere
// except the sanctioned construction and mutation sites: NewRing,
// mutateRing, Ring's own methods, and test files.
var Ringchurn = &Analyzer{
	Name: "ringchurn",
	Doc: "report Ring.Add/Remove calls outside the guarded mutation API " +
		"(NewRing, mutateRing, Ring's own methods); live-ring churn must keep its bookkeeping",
	Run: runRingchurn,
}

func runRingchurn(pass *Pass) error {
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filepath.Base(filename), "_test.go") {
			// Tests assemble and churn throwaway rings by hand.
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if ringchurnExempt(pass.TypesInfo, fn) {
				continue
			}
			// Function literals inside a non-exempt function inherit its
			// verdict: a goroutine or deferred closure churning the ring
			// is still churn.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				target := callee(pass.TypesInfo, call)
				if ring := ringRecv(target); ring != nil {
					switch target.Name() {
					case "Add", "Remove":
						pass.Reportf(call.Pos(), "%s.%s outside the guarded ring-mutation API; route membership changes through mutateRing",
							ring.Obj().Name(), target.Name())
					}
				}
				return true
			})
		}
	}
	return nil
}

// ringchurnExempt reports whether fn is a sanctioned mutation site:
// the constructor, the guarded mutate API, or a method on Ring itself.
func ringchurnExempt(info *types.Info, fn *ast.FuncDecl) bool {
	switch fn.Name.Name {
	case "NewRing", "mutateRing":
		return true
	}
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	f, _ := info.Defs[fn.Name].(*types.Func)
	return ringRecv(f) != nil
}

// ringRecv returns f's receiver type when it is Ring-shaped — a named
// type called "Ring" that also has an "Owners" method (the structural
// signature of the cluster ring, matched without importing it so the
// stdlib-only fixture can stand in) — and nil otherwise.
func ringRecv(f *types.Func) *types.Named {
	named := recvNamed(f)
	if named == nil || named.Obj().Name() != "Ring" {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "Owners" {
			return named
		}
	}
	return nil
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Nopsafe enforces internal/obs's documented contract: "everything
// tolerates a nil receiver as a no-op", which is what lets an engine
// built with obs.Nop() run the exact uninstrumented hot path. Any
// exported pointer-receiver method on an exported obs type that reads
// or writes receiver state must therefore open with the guard
//
//	if r == nil { return ... }
//
// (possibly as the first operand of an || chain). Methods that only
// forward to other methods of the same receiver are exempt — the
// callee guards. Unexported types and methods are exempt too: they run
// behind guarded exported entry points, usually with the lock held.
var Nopsafe = &Analyzer{
	Name: "nopsafe",
	Doc: "report exported obs handle methods that dereference a pointer receiver " +
		"without the documented nil-receiver no-op guard",
	Run: runNopsafe,
}

func runNopsafe(pass *Pass) error {
	if pass.Pkg.Name() != "obs" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recv := fd.Recv.List[0]
			star, ok := recv.Type.(*ast.StarExpr)
			if !ok {
				continue // value receivers copy; nil cannot reach them
			}
			tid, ok := star.X.(*ast.Ident)
			if !ok || !tid.IsExported() {
				continue
			}
			if len(recv.Names) == 0 {
				continue // receiver unused entirely
			}
			recvObj := pass.TypesInfo.Defs[recv.Names[0]]
			if recvObj == nil {
				continue
			}
			if !derefsReceiver(pass.TypesInfo, fd, recvObj) {
				continue
			}
			if !startsWithNilGuard(pass.TypesInfo, fd.Body, recvObj) {
				pass.Reportf(fd.Name.Pos(), "(*%s).%s dereferences the receiver without the nil-receiver no-op guard", tid.Name, fd.Name.Name)
			}
		}
	}
	return nil
}

// derefsReceiver reports whether the method body reads receiver state:
// a field selection on the receiver (method calls are fine — the
// callee guards itself).
func derefsReceiver(info *types.Info, fd *ast.FuncDecl, recvObj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if identObj(info, n.X) != recvObj {
				return true
			}
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				found = true
				return false
			}
		case *ast.StarExpr:
			if identObj(info, n.X) == recvObj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// startsWithNilGuard reports whether the body's first statement is
//
//	if r == nil { ...; return }
//
// allowing `r == nil` to be any operand of a top-level || chain and
// requiring the guarded block to end in a return.
func startsWithNilGuard(info *types.Info, body *ast.BlockStmt, recvObj types.Object) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil || len(ifs.Body.List) == 0 {
		return false
	}
	if _, ok := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt); !ok {
		return false
	}
	return condHasNilCheck(info, ifs.Cond, recvObj)
}

func condHasNilCheck(info *types.Info, cond ast.Expr, recvObj types.Object) bool {
	switch c := unparen(cond).(type) {
	case *ast.BinaryExpr:
		if c.Op == token.LOR {
			return condHasNilCheck(info, c.X, recvObj) || condHasNilCheck(info, c.Y, recvObj)
		}
		if c.Op != token.EQL {
			return false
		}
		isNil := func(e ast.Expr) bool {
			id, ok := unparen(e).(*ast.Ident)
			return ok && id.Name == "nil"
		}
		isRecv := func(e ast.Expr) bool {
			id, ok := unparen(e).(*ast.Ident)
			return ok && info.Uses[id] == recvObj
		}
		return isRecv(c.X) && isNil(c.Y) || isNil(c.X) && isRecv(c.Y)
	}
	return false
}

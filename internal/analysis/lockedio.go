package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockedio is the PR 3 DiskStore lesson: file I/O executed while the
// index mutex is held serialises every concurrent Get/Put on the disk
// and turns one slow fsync into a store-wide stall. The analyzer flags
// syscall-backed work — os file operations, net dials, syscall and
// os/exec calls, (*os.File) methods, and blob-store calls (methods on
// a cas.Store-shaped type) — executed
//
//   - between a sync.Mutex/RWMutex Lock/RLock and its Unlock (a
//     deferred Unlock holds to the end of the function), or
//   - anywhere inside a function whose name ends in "Locked", the
//     repo's caller-holds-the-lock convention.
//
// The scan is linear within one function body and does not follow
// calls; nested function literals are analysed on their own (a
// goroutine or deferred closure runs outside the window).
var Lockedio = &Analyzer{
	Name: "lockedio",
	Doc: "report file/network/syscall I/O and blob-store calls while a sync mutex is held " +
		"(including *Locked-convention functions)",
	Run: runLockedio,
}

func runLockedio(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			name, body := funcParts(n)
			if body != nil {
				checkLockedWindows(pass, name, body)
			}
			return true
		})
	}
	return nil
}

type lockEvent struct {
	pos    token.Pos
	kind   int // 0 lock, 1 unlock, 2 deferred unlock, 3 io
	key    string
	ioDesc string
}

func checkLockedWindows(pass *Pass, fnName string, body *ast.BlockStmt) {
	info := pass.TypesInfo
	lockedAll := strings.HasSuffix(fnName, "Locked")
	var events []lockEvent

	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // its body is someone else's timeline
			case *ast.DeferStmt:
				walk(n.Call, true)
				return false
			case *ast.CallExpr:
				if key, locks, ok := mutexOp(info, n); ok {
					kind := 1
					if locks {
						kind = 0
					} else if deferred {
						kind = 2
					}
					events = append(events, lockEvent{pos: n.Pos(), kind: kind, key: key})
					return true
				}
				if desc, ok := ioCall(info, n); ok {
					events = append(events, lockEvent{pos: n.Pos(), kind: 3, ioDesc: desc})
				}
			}
			return true
		})
	}
	walk(body, false)

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	depth := make(map[string]int)
	held := 0
	for _, ev := range events {
		switch ev.kind {
		case 0:
			depth[ev.key]++
			held++
		case 1:
			if depth[ev.key] > 0 {
				depth[ev.key]--
				held--
			}
		case 2:
			// Deferred unlock: the window stays open to function end.
		case 3:
			if held > 0 {
				pass.Reportf(ev.pos, "%s while a mutex is held; move the I/O outside the critical section", ev.ioDesc)
			} else if lockedAll {
				pass.Reportf(ev.pos, "%s inside %s, which runs with the caller's mutex held", ev.ioDesc, fnName)
			}
		}
	}
}

// mutexOp recognises <expr>.Lock/RLock/Unlock/RUnlock on a
// sync.Mutex/RWMutex (or pointer to one), keyed by the receiver
// expression's source form.
func mutexOp(info *types.Info, call *ast.CallExpr) (key string, locks, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
		return "", false, false
	}
	f := callee(info, call)
	rn := recvNamed(f)
	if rn == nil || rn.Obj().Pkg() == nil || rn.Obj().Pkg().Path() != "sync" {
		return "", false, false
	}
	if tn := rn.Obj().Name(); tn != "Mutex" && tn != "RWMutex" {
		return "", false, false
	}
	return types.ExprString(sel.X), name == "Lock" || name == "RLock", true
}

// osIOFuncs are the package-level os functions that touch the
// filesystem (predicates like IsNotExist deliberately absent).
var osIOFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Stat": true, "Lstat": true, "Chmod": true, "Chown": true,
	"Chtimes": true, "Truncate": true, "Link": true, "Symlink": true,
	"Readlink": true,
}

// fileMethods are (*os.File) methods that hit the descriptor.
var fileMethods = map[string]bool{
	"Read": true, "ReadAt": true, "ReadFrom": true, "ReadDir": true,
	"Write": true, "WriteAt": true, "WriteString": true, "WriteTo": true,
	"Sync": true, "Close": true, "Seek": true, "Stat": true, "Truncate": true,
}

// storeMethods is the cas.Store surface; any method in this set on a
// type named Store (or the cas package's concrete stores) counts as
// blob I/O.
var storeMethods = map[string]bool{
	"Get": true, "Put": true, "Delete": true, "List": true,
	"Stat": true, "GetOrFill": true,
}

// ioCall classifies a call as syscall-backed I/O.
func ioCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	f := callee(info, call)
	if f == nil {
		return "", false
	}
	name := f.Name()
	rn := recvNamed(f)
	pkg := calleePkgPath(f)
	if rn == nil {
		switch pkg {
		case "os":
			if osIOFuncs[name] {
				return "os." + name, true
			}
		case "net":
			if strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen") || name == "LookupHost" || name == "LookupAddr" {
				return "net." + name, true
			}
		case "net/http":
			if name == "Get" || name == "Post" || name == "PostForm" || name == "Head" {
				return "http." + name, true
			}
		case "syscall":
			return "syscall." + name, true
		}
		return "", false
	}
	recvPkg := ""
	if rn.Obj().Pkg() != nil {
		recvPkg = rn.Obj().Pkg().Path()
	}
	tn := rn.Obj().Name()
	switch {
	case recvPkg == "os" && tn == "File" && fileMethods[name]:
		return "(*os.File)." + name, true
	case recvPkg == "net/http" && tn == "Client":
		return "(*http.Client)." + name, true
	case recvPkg == "os/exec" && tn == "Cmd" &&
		(name == "Run" || name == "Start" || name == "Wait" || name == "Output" || name == "CombinedOutput"):
		return "(*exec.Cmd)." + name, true
	case recvPkg == "net" && (tn == "Conn" || tn == "TCPConn" || tn == "UDPConn" || tn == "UnixConn" || tn == "Listener"):
		return "(net." + tn + ")." + name, true
	case storeMethods[name] && (tn == "Store" || strings.HasSuffix(recvPkg, "/cas") && strings.HasSuffix(tn, "Store")):
		return "(" + tn + ")." + name, true
	}
	return "", false
}

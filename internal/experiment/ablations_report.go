package experiment

import (
	"fmt"
	"io"
	"math"
)

// WriteTechniqueComparison prints the §II-B comparison table.
func WriteTechniqueComparison(w io.Writer, t *TechniqueComparison) error {
	tw := newTab(w)
	fmt.Fprintf(tw, "TECHNIQUES — NBTI mitigation on %s (16 kB, M=4, raw p0=%.2f)\n",
		t.Benchmark, t.RawP0)
	fmt.Fprintln(tw, "technique\tlifetime\tEsav\tarray mods\tstate")
	for _, r := range t.Rows {
		mods, state := "no", "kept"
		if r.ArrayModified {
			mods = "YES"
		}
		if r.StateLost {
			state = "LOST"
		}
		lt := fmt.Sprintf("%.2f y", r.LifetimeYears)
		if math.IsInf(r.LifetimeYears, 1) {
			lt = "inf"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.1f%%\t%s\t%s\n",
			r.Technique, lt, r.EnergySavings*100, mods, state)
	}
	return tw.Flush()
}

// WriteBreakevenAblation prints the counter-sizing sweep.
func WriteBreakevenAblation(w io.Writer, a *BreakevenAblation) error {
	tw := newTab(w)
	fmt.Fprintf(tw, "BREAKEVEN ABLATION — %s (16 kB, M=4)\n", a.Benchmark)
	fmt.Fprintln(tw, "breakeven (cycles)\tmean sleep\tEsav\tLT")
	for i, be := range a.Breakevens {
		fmt.Fprintf(tw, "%d\t%.1f%%\t%.1f%%\t%.2f y\n",
			be, a.MeanSleep[i]*100, a.Esav[i]*100, a.LT[i])
	}
	return tw.Flush()
}

// WriteUpdateAblation prints the update-frequency sweep.
func WriteUpdateAblation(w io.Writer, a *UpdateAblation) error {
	tw := newTab(w)
	fmt.Fprintf(tw, "UPDATE ABLATION — %s (16 kB, M=4, probing)\n", a.Benchmark)
	fmt.Fprintln(tw, "updates/trace\tadded misses\thit rate")
	for i := range a.UpdatesPerTrace {
		fmt.Fprintf(tw, "%d\t%.3f%%\t%.2f%%\n",
			a.UpdatesPerTrace[i], a.MissOverhead[i]*100, a.HitRate[i]*100)
	}
	return tw.Flush()
}

// WritePolicyAgreement prints the probing/scrambling equivalence check.
func WritePolicyAgreement(w io.Writer, a *PolicyAgreement) error {
	_, err := fmt.Fprintf(w,
		"POLICY AGREEMENT — probing vs scrambling lifetimes across 18 benchmarks\n"+
			"mean relative difference %.3f%%, worst %.3f%% (%s)\n",
		a.MeanRelDiff*100, a.MaxRelDiff*100, a.WorstBench)
	return err
}

// WriteAssocAblation prints the associativity sweep.
func WriteAssocAblation(w io.Writer, a *AssocAblation) error {
	tw := newTab(w)
	fmt.Fprintf(tw, "ASSOCIATIVITY ABLATION — %s (16 kB, M=4)\n", a.Benchmark)
	fmt.Fprintln(tw, "ways\thit rate\tEsav\tLT")
	for i, ways := range a.Ways {
		fmt.Fprintf(tw, "%d\t%.2f%%\t%.1f%%\t%.2f y\n",
			ways, a.HitRate[i]*100, a.Esav[i]*100, a.LT[i])
	}
	return tw.Flush()
}

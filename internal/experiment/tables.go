package experiment

import (
	"math"

	"nbticache/internal/stats"
	"nbticache/internal/workload"
)

// Table1 is the idleness-distribution experiment (paper Table I): per-bank
// useful idleness of a 4-bank 16 kB cache with 16 B lines.
type Table1 struct {
	Rows    []Table1Row
	Average float64 // grand average of the per-benchmark averages
}

// Table1Row is one benchmark's idleness signature.
type Table1Row struct {
	Benchmark string
	Idleness  [4]float64
	Average   float64
}

// RunTable1 regenerates Table I.
func (s *Suite) RunTable1() (*Table1, error) {
	g := Geometry(16, 16)
	rows := make([]Table1Row, len(workload.Names()))
	err := forEachBench(func(i int, bench string) error {
		res, err := s.Run(bench, g, 4)
		if err != nil {
			return err
		}
		idle := res.RegionUsefulIdleness()
		row := Table1Row{Benchmark: bench}
		copy(row.Idleness[:], idle)
		row.Average = stats.Mean(idle)
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table1{Rows: rows}
	for _, r := range rows {
		t.Average += r.Average
	}
	t.Average /= float64(len(rows))
	return t, nil
}

// Table2 is the cache-size experiment (paper Table II): energy savings
// and lifetimes without (LT0) and with (LT) re-indexing for 8/16/32 kB,
// 16 B lines, M=4.
type Table2 struct {
	SizesKB []int
	Rows    []Table2Row
	// Avg* index parallel to SizesKB.
	AvgEsav []float64
	AvgLT0  []float64
	AvgLT   []float64
}

// Table2Row carries one benchmark across the size sweep.
type Table2Row struct {
	Benchmark string
	Esav      []float64 // fraction, per size
	LT0       []float64 // years
	LT        []float64 // years
}

// RunTable2 regenerates Table II.
func (s *Suite) RunTable2() (*Table2, error) {
	sizes := []int{8, 16, 32}
	rows := make([]Table2Row, len(workload.Names()))
	err := forEachBench(func(i int, bench string) error {
		row := Table2Row{
			Benchmark: bench,
			Esav:      make([]float64, len(sizes)),
			LT0:       make([]float64, len(sizes)),
			LT:        make([]float64, len(sizes)),
		}
		for si, kb := range sizes {
			res, err := s.Run(bench, Geometry(kb, 16), 4)
			if err != nil {
				return err
			}
			sum, err := s.Lifetimes(res)
			if err != nil {
				return err
			}
			row.Esav[si] = res.Savings
			row.LT0[si] = sum.LT0Years
			row.LT[si] = sum.LTYears
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table2{SizesKB: sizes, Rows: rows,
		AvgEsav: make([]float64, len(sizes)),
		AvgLT0:  make([]float64, len(sizes)),
		AvgLT:   make([]float64, len(sizes)),
	}
	for _, r := range rows {
		for si := range sizes {
			t.AvgEsav[si] += r.Esav[si]
			t.AvgLT0[si] += r.LT0[si]
			t.AvgLT[si] += r.LT[si]
		}
	}
	n := float64(len(rows))
	for si := range sizes {
		t.AvgEsav[si] /= n
		t.AvgLT0[si] /= n
		t.AvgLT[si] /= n
	}
	return t, nil
}

// Table3 is the line-size experiment (paper Table III): energy savings
// and lifetime for 16 B vs 32 B lines at 16 kB, M=4.
type Table3 struct {
	LineSizes []int
	Rows      []Table3Row
	AvgEsav   []float64
	AvgLT     []float64
}

// Table3Row carries one benchmark across the line-size sweep.
type Table3Row struct {
	Benchmark string
	Esav      []float64
	LT        []float64
}

// RunTable3 regenerates Table III.
func (s *Suite) RunTable3() (*Table3, error) {
	lineSizes := []int{16, 32}
	rows := make([]Table3Row, len(workload.Names()))
	err := forEachBench(func(i int, bench string) error {
		row := Table3Row{
			Benchmark: bench,
			Esav:      make([]float64, len(lineSizes)),
			LT:        make([]float64, len(lineSizes)),
		}
		for li, ls := range lineSizes {
			res, err := s.Run(bench, Geometry(16, uint64(ls)), 4)
			if err != nil {
				return err
			}
			sum, err := s.Lifetimes(res)
			if err != nil {
				return err
			}
			row.Esav[li] = res.Savings
			row.LT[li] = sum.LTYears
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table3{LineSizes: lineSizes, Rows: rows,
		AvgEsav: make([]float64, len(lineSizes)),
		AvgLT:   make([]float64, len(lineSizes)),
	}
	for _, r := range rows {
		for li := range lineSizes {
			t.AvgEsav[li] += r.Esav[li]
			t.AvgLT[li] += r.LT[li]
		}
	}
	n := float64(len(rows))
	for li := range lineSizes {
		t.AvgEsav[li] /= n
		t.AvgLT[li] /= n
	}
	return t, nil
}

// Table4 is the bank-count experiment (paper Table IV): average idleness
// and lifetime across cache sizes and M = 2/4/8.
type Table4 struct {
	SizesKB []int
	Banks   []int
	// Idleness[si][bi] and LT[si][bi] are averages over benchmarks.
	Idleness [][]float64
	LT       [][]float64
}

// RunTable4 regenerates Table IV.
func (s *Suite) RunTable4() (*Table4, error) {
	sizes := []int{8, 16, 32}
	banks := []int{2, 4, 8}
	t := &Table4{SizesKB: sizes, Banks: banks,
		Idleness: make([][]float64, len(sizes)),
		LT:       make([][]float64, len(sizes)),
	}
	for si := range sizes {
		t.Idleness[si] = make([]float64, len(banks))
		t.LT[si] = make([]float64, len(banks))
	}
	type cell struct{ idle, lt float64 }
	results := make([][][]cell, len(sizes))
	for si := range sizes {
		results[si] = make([][]cell, len(banks))
		for bi := range banks {
			results[si][bi] = make([]cell, len(workload.Names()))
		}
	}
	err := forEachBench(func(i int, bench string) error {
		for si, kb := range sizes {
			for bi, m := range banks {
				res, err := s.Run(bench, Geometry(kb, 16), m)
				if err != nil {
					return err
				}
				sum, err := s.Lifetimes(res)
				if err != nil {
					return err
				}
				results[si][bi][i] = cell{idle: res.AverageIdleness(), lt: sum.LTYears}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	n := float64(len(workload.Names()))
	for si := range sizes {
		for bi := range banks {
			for _, c := range results[si][bi] {
				t.Idleness[si][bi] += c.idle
				t.LT[si][bi] += c.lt
			}
			t.Idleness[si][bi] /= n
			t.LT[si][bi] /= n
		}
	}
	return t, nil
}

// Headline condenses the abstract's claims: monolithic lifetime, the
// modest extension from power management alone, the further extension
// from re-indexing, and the best case.
type Headline struct {
	MonolithicYears float64
	// AvgLT0/AvgLT average the 16 kB column of Table II.
	AvgLT0Years float64
	AvgLTYears  float64
	// PMOnlyExtension is avg LT0 vs monolithic ("a mere 9%").
	PMOnlyExtension float64
	// ReindexOverPM is avg LT vs avg LT0 ("a further 38%").
	ReindexOverPM float64
	// BestFactor is max LT vs monolithic across Table II ("2x"), with
	// the witness benchmark and size.
	BestFactor float64
	BestBench  string
	BestSizeKB int
	// WorstFactor is the minimum extension across Table II cells (the
	// "22% for the worst configuration" end of the abstract's range
	// refers to the worst M/size configuration; across Table II rows it
	// is the weakest benchmark/size pair).
	WorstFactor float64
}

// RunHeadline derives the headline numbers from Table II.
func (s *Suite) RunHeadline() (*Headline, error) {
	t2, err := s.RunTable2()
	if err != nil {
		return nil, err
	}
	mono := s.Aging.CellLifetimeYears()
	h := &Headline{MonolithicYears: mono, WorstFactor: math.Inf(1)}
	// The paper's 9%/38% figures are averages over all sizes.
	var lt0Sum, ltSum float64
	for si := range t2.SizesKB {
		lt0Sum += t2.AvgLT0[si]
		ltSum += t2.AvgLT[si]
	}
	h.AvgLT0Years = lt0Sum / float64(len(t2.SizesKB))
	h.AvgLTYears = ltSum / float64(len(t2.SizesKB))
	h.PMOnlyExtension = h.AvgLT0Years/mono - 1
	h.ReindexOverPM = h.AvgLTYears/h.AvgLT0Years - 1
	for _, r := range t2.Rows {
		for si, kb := range t2.SizesKB {
			f := r.LT[si] / mono
			if f > h.BestFactor {
				h.BestFactor = f
				h.BestBench = r.Benchmark
				h.BestSizeKB = kb
			}
			if f < h.WorstFactor {
				h.WorstFactor = f
			}
		}
	}
	return h, nil
}

// OverheadSweep explores partitioning granularity beyond Table IV,
// including the M=16 point the paper argues is feasible for uniform
// banks: per-M average energy savings, idleness and lifetime at 16 kB.
type OverheadSweep struct {
	Banks    []int
	Esav     []float64
	Idleness []float64
	LT       []float64
}

// RunOverheadSweep regenerates the §IV-B3 overhead discussion.
func (s *Suite) RunOverheadSweep() (*OverheadSweep, error) {
	banks := []int{2, 4, 8, 16}
	o := &OverheadSweep{Banks: banks,
		Esav:     make([]float64, len(banks)),
		Idleness: make([]float64, len(banks)),
		LT:       make([]float64, len(banks)),
	}
	g := Geometry(16, 16)
	names := workload.Names()
	sums := make([][3]float64, len(banks))
	perBench := make([][][3]float64, len(banks))
	for bi := range banks {
		perBench[bi] = make([][3]float64, len(names))
	}
	err := forEachBench(func(i int, bench string) error {
		for bi, m := range banks {
			res, err := s.Run(bench, g, m)
			if err != nil {
				return err
			}
			sum, err := s.Lifetimes(res)
			if err != nil {
				return err
			}
			perBench[bi][i] = [3]float64{res.Savings, res.AverageIdleness(), sum.LTYears}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for bi := range banks {
		for _, v := range perBench[bi] {
			sums[bi][0] += v[0]
			sums[bi][1] += v[1]
			sums[bi][2] += v[2]
		}
		n := float64(len(names))
		o.Esav[bi] = sums[bi][0] / n
		o.Idleness[bi] = sums[bi][1] / n
		o.LT[bi] = sums[bi][2] / n
	}
	return o, nil
}

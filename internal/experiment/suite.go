// Package experiment regenerates the paper's evaluation: Tables I-IV, the
// headline lifetime claims, and the partitioning-overhead discussion, all
// from the synthetic workloads and calibrated models of the sibling
// packages. Each runner returns structured results that the report
// formatters print side by side with the paper's published numbers.
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"nbticache/internal/aging"
	"nbticache/internal/cache"
	"nbticache/internal/core"
	"nbticache/internal/index"
	"nbticache/internal/power"
	"nbticache/internal/trace"
	"nbticache/internal/workload"
)

// Quality trades experiment fidelity against runtime.
type Quality int

const (
	// Quick generates short traces for tests and smoke runs (signature
	// error a few percentage points).
	Quick Quality = iota
	// Full is the reporting quality used for EXPERIMENTS.md.
	Full
)

// genParams maps quality to workload generation parameters.
func genParams(q Quality, g cache.Geometry) workload.GenParams {
	switch q {
	case Full:
		return workload.GenParams{Geometry: g, Phases: 640, AccessesPerPhase: 1024}
	default:
		return workload.GenParams{Geometry: g, Phases: 192, AccessesPerPhase: 512}
	}
}

// Suite owns the shared state of an experiment session: the calibrated
// aging model, the energy technology, and memoised traces and runs. It is
// safe for concurrent use.
type Suite struct {
	Aging   *aging.Model
	Tech    power.Tech
	Quality Quality
	// Epochs is the service-life update count used for lifetime
	// projection.
	Epochs int
	// Reindex is the policy standing in for "dynamic indexing" in LT
	// columns (probing, per the paper's default; scrambling is de facto
	// identical — §IV-B2).
	Reindex index.Kind

	mu     sync.Mutex
	traces map[traceKey]*trace.Trace
	runs   map[runKey]*core.RunResult
}

type traceKey struct {
	bench  string
	sizeKB int
	lineB  int
}

type runKey struct {
	bench  string
	sizeKB int
	lineB  int
	banks  int
}

// NewSuite characterises the aging model and prepares a suite.
func NewSuite(q Quality) (*Suite, error) {
	model, err := aging.New(aging.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &Suite{
		Aging:   model,
		Tech:    power.DefaultTech(),
		Quality: q,
		Epochs:  core.DefaultServiceEpochs,
		Reindex: index.KindProbing,
		traces:  make(map[traceKey]*trace.Trace),
		runs:    make(map[runKey]*core.RunResult),
	}, nil
}

// ClearRuns drops memoised simulation results (generated traces are
// kept). Benchmarks use it so every iteration re-simulates.
func (s *Suite) ClearRuns() {
	s.mu.Lock()
	s.runs = make(map[runKey]*core.RunResult)
	s.mu.Unlock()
}

// Geometry builds the direct-mapped geometry used throughout the paper.
func Geometry(sizeKB int, lineB uint64) cache.Geometry {
	return cache.Geometry{
		Size:        uint64(sizeKB) * 1024,
		LineSize:    lineB,
		Ways:        1,
		AddressBits: 32,
	}
}

// Trace returns (generating and memoising) the benchmark's trace for a
// geometry.
func (s *Suite) Trace(bench string, g cache.Geometry) (*trace.Trace, error) {
	key := traceKey{bench, int(g.Size / 1024), int(g.LineSize)}
	s.mu.Lock()
	tr, ok := s.traces[key]
	s.mu.Unlock()
	if ok {
		return tr, nil
	}
	p, ok := workload.ByName(bench)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown benchmark %q", bench)
	}
	tr, err := p.Generate(genParams(s.Quality, g))
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.traces[key] = tr
	s.mu.Unlock()
	return tr, nil
}

// Run simulates (and memoises) a benchmark on a partitioned cache. The
// identity policy is used: region statistics and energy are
// policy-independent, and re-indexing enters through the aging
// projection.
func (s *Suite) Run(bench string, g cache.Geometry, banks int) (*core.RunResult, error) {
	key := runKey{bench, int(g.Size / 1024), int(g.LineSize), banks}
	s.mu.Lock()
	res, ok := s.runs[key]
	s.mu.Unlock()
	if ok {
		return res, nil
	}
	tr, err := s.Trace(bench, g)
	if err != nil {
		return nil, err
	}
	pc, err := core.New(core.Config{
		Geometry: g,
		Banks:    banks,
		Policy:   index.KindIdentity,
		Tech:     s.Tech,
	})
	if err != nil {
		return nil, err
	}
	res, err = pc.Run(tr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.runs[key] = res
	s.mu.Unlock()
	return res, nil
}

// Lifetimes projects LT0 (identity) and LT (re-indexed) for a run.
func (s *Suite) Lifetimes(res *core.RunResult) (*core.AgingSummary, error) {
	return core.SummariseAging(s.Aging, res, s.Reindex, s.Epochs, aging.VoltageScaled)
}

// forEachBench applies fn to every benchmark profile concurrently,
// preserving per-index result slots; the first error aborts the batch.
func forEachBench(fn func(i int, bench string) error) error {
	names := workload.Names()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(names) {
		workers = len(names)
	}
	jobs := make(chan int)
	errs := make(chan error, len(names))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := fn(i, names[i]); err != nil {
					errs <- fmt.Errorf("%s: %w", names[i], err)
				}
			}
		}()
	}
	for i := range names {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	close(errs)
	return <-errs
}

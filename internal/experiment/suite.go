// Package experiment regenerates the paper's evaluation: Tables I-IV, the
// headline lifetime claims, and the partitioning-overhead discussion, all
// from the synthetic workloads and calibrated models of the sibling
// packages. Each runner returns structured results that the report
// formatters print side by side with the paper's published numbers.
package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"nbticache/internal/aging"
	"nbticache/internal/cache"
	"nbticache/internal/core"
	"nbticache/internal/engine"
	"nbticache/internal/index"
	"nbticache/internal/power"
	"nbticache/internal/trace"
	"nbticache/internal/workload"
)

// Quality trades experiment fidelity against runtime.
type Quality int

const (
	// Quick generates short traces for tests and smoke runs (signature
	// error a few percentage points).
	Quick Quality = iota
	// Full is the reporting quality used for EXPERIMENTS.md.
	Full
)

// genParams maps quality to workload generation parameters.
func genParams(q Quality, g cache.Geometry) workload.GenParams {
	switch q {
	case Full:
		return workload.GenParams{Geometry: g, Phases: 640, AccessesPerPhase: 1024}
	default:
		return workload.GenParams{Geometry: g, Phases: 192, AccessesPerPhase: 512}
	}
}

// Suite owns the shared state of an experiment session: the calibrated
// aging model, the energy technology, and the simulation engine whose
// content-addressed cache memoises traces and runs. It is safe for
// concurrent use.
type Suite struct {
	Aging   *aging.Model
	Tech    power.Tech
	Quality Quality
	// Epochs is the service-life update count used for lifetime
	// projection.
	Epochs int
	// Reindex is the policy standing in for "dynamic indexing" in LT
	// columns (probing, per the paper's default; scrambling is de facto
	// identical — §IV-B2).
	Reindex index.Kind

	eng *engine.Engine
}

// NewSuite characterises the aging model and prepares a suite.
func NewSuite(q Quality) (*Suite, error) {
	model, err := aging.New(aging.DefaultConfig())
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(engine.Options{
		Model: model,
		Tech:  power.DefaultTech(),
		Gen:   func(g cache.Geometry) workload.GenParams { return genParams(q, g) },
	})
	if err != nil {
		return nil, err
	}
	return &Suite{
		Aging:   model,
		Tech:    power.DefaultTech(),
		Quality: q,
		Epochs:  core.DefaultServiceEpochs,
		Reindex: index.KindProbing,
		eng:     eng,
	}, nil
}

// Engine exposes the suite's simulation engine (shared caches, sweeps).
func (s *Suite) Engine() *engine.Engine { return s.eng }

// Close releases the engine's worker pool. Optional: a suite that only
// ever used the synchronous paths holds no goroutines.
func (s *Suite) Close() { s.eng.Close() }

// ClearRuns drops memoised simulation results (generated traces are
// kept). Benchmarks use it so every iteration re-simulates.
func (s *Suite) ClearRuns() { s.eng.ResetRuns() }

// Geometry builds the direct-mapped geometry used throughout the paper.
func Geometry(sizeKB int, lineB uint64) cache.Geometry {
	return cache.Geometry{
		Size:        uint64(sizeKB) * 1024,
		LineSize:    lineB,
		Ways:        1,
		AddressBits: 32,
	}
}

// Trace returns (generating and memoising) the benchmark's trace for a
// geometry. Concurrent callers generate each trace exactly once.
func (s *Suite) Trace(bench string, g cache.Geometry) (*trace.Trace, error) {
	return s.eng.Trace(context.Background(), bench, g)
}

// Run simulates (and memoises) a benchmark on a partitioned cache
// through the engine's content-addressed result cache. The identity
// policy is used: region statistics and energy are policy-independent,
// and re-indexing enters through the aging projection.
func (s *Suite) Run(bench string, g cache.Geometry, banks int) (*core.RunResult, error) {
	res, err := s.eng.RunJob(context.Background(), engine.JobSpec{
		Bench:     bench,
		SizeKB:    int(g.Size / 1024),
		LineBytes: int(g.LineSize),
		Banks:     banks,
		Policy:    string(index.KindIdentity),
		Epochs:    s.Epochs,
	})
	if err != nil {
		return nil, err
	}
	return res.Run, nil
}

// Lifetimes projects LT0 (identity) and LT (re-indexed) for a run.
func (s *Suite) Lifetimes(res *core.RunResult) (*core.AgingSummary, error) {
	return core.SummariseAging(s.Aging, res, s.Reindex, s.Epochs, aging.VoltageScaled)
}

// forEachBench applies fn to every benchmark profile concurrently,
// preserving per-index result slots; the first error aborts the batch.
func forEachBench(fn func(i int, bench string) error) error {
	names := workload.Names()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(names) {
		workers = len(names)
	}
	jobs := make(chan int)
	errs := make(chan error, len(names))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := fn(i, names[i]); err != nil {
					errs <- fmt.Errorf("%s: %w", names[i], err)
				}
			}
		}()
	}
	for i := range names {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	close(errs)
	return <-errs
}

package experiment

import (
	"fmt"
	"io"

	"nbticache/internal/aging"
)

// RetentionSweep explores the design choice DESIGN.md §4 pins down: the
// retention supply Vdd,low sets the residual NBTI stress ratio s =
// ((Vdd,low - |Vtp|)/(Vdd - |Vtp|))^2, and with it how much lifetime a
// given idleness buys. The paper's numbers imply s ~ 0.22, i.e.
// Vdd,low ~ 0.70 V; lower retention voltages age slower but erode the
// cell's retention margin (approximated here by the hold SNM criterion —
// the supply must stay comfortably above the data-retention voltage).
type RetentionSweep struct {
	// VddLow lists the retention supplies swept (V).
	VddLow []float64
	// StressRatio is the per-point s.
	StressRatio []float64
	// LifetimeYears is the projected cache lifetime at the reference
	// idleness (Table IV's 16 kB / M=4 average, 41%).
	LifetimeYears []float64
}

// ReferenceIdleness is the operating point the sweep evaluates lifetime
// at: the paper's 16 kB / M=4 average idleness.
const ReferenceIdleness = 0.41

// RunRetentionSweep re-characterises the aging model at each retention
// voltage. It is independent of the suite's trace state.
func (s *Suite) RunRetentionSweep(voltages []float64) (*RetentionSweep, error) {
	if len(voltages) < 2 {
		return nil, fmt.Errorf("experiment: retention sweep needs >= 2 voltages")
	}
	out := &RetentionSweep{VddLow: append([]float64(nil), voltages...)}
	for _, v := range voltages {
		cfg := aging.DefaultConfig()
		if v <= 0 || v >= cfg.Tech.Vdd {
			return nil, fmt.Errorf("experiment: retention voltage %v outside (0, Vdd)", v)
		}
		cfg.Tech.VddRetention = v
		model, err := aging.New(cfg)
		if err != nil {
			return nil, err
		}
		lt, err := model.Lifetime(ReferenceIdleness, 0.5, aging.VoltageScaled)
		if err != nil {
			return nil, err
		}
		out.StressRatio = append(out.StressRatio, model.SleepStressRatio())
		out.LifetimeYears = append(out.LifetimeYears, lt)
	}
	return out, nil
}

// DefaultRetentionVoltages spans the plausible retention range for a
// 1.1 V / 0.35 V-threshold technology.
func DefaultRetentionVoltages() []float64 {
	return []float64{0.45, 0.55, 0.65, 0.70, 0.80, 0.90, 1.00}
}

// TemperatureSweep completes the PVT axes the characterisation framework
// supports: operating temperature accelerates NBTI through the Arrhenius
// term, shortening absolute lifetimes while leaving the retention-state
// stress ratio (and so every relative conclusion of the paper) unchanged.
type TemperatureSweep struct {
	// TempK lists the operating temperatures swept.
	TempK []float64
	// ActiveRate is the per-point stress acceleration relative to the
	// 358 K reference corner.
	ActiveRate []float64
	// LifetimeYears is the projected lifetime at ReferenceIdleness.
	LifetimeYears []float64
	// StressRatio verifies the temperature-invariance of s.
	StressRatio []float64
}

// RunTemperatureSweep re-characterises the aging model at each operating
// temperature.
func (s *Suite) RunTemperatureSweep(tempsK []float64) (*TemperatureSweep, error) {
	if len(tempsK) < 2 {
		return nil, fmt.Errorf("experiment: temperature sweep needs >= 2 points")
	}
	out := &TemperatureSweep{TempK: append([]float64(nil), tempsK...)}
	for _, tk := range tempsK {
		if tk <= 0 {
			return nil, fmt.Errorf("experiment: temperature %v K must be positive", tk)
		}
		cfg := aging.DefaultConfig()
		cfg.Tech.TempK = tk
		model, err := aging.New(cfg)
		if err != nil {
			return nil, err
		}
		lt, err := model.Lifetime(ReferenceIdleness, 0.5, aging.VoltageScaled)
		if err != nil {
			return nil, err
		}
		out.ActiveRate = append(out.ActiveRate, model.ActiveStressRate())
		out.LifetimeYears = append(out.LifetimeYears, lt)
		out.StressRatio = append(out.StressRatio, model.SleepStressRatio())
	}
	return out, nil
}

// DefaultTemperatures spans commercial to burn-in corners around the
// 358 K (85C) reference.
func DefaultTemperatures() []float64 {
	return []float64{318, 338, 358, 378, 398}
}

// WriteTemperatureSweep prints the sweep.
func WriteTemperatureSweep(w io.Writer, t *TemperatureSweep) error {
	tw := newTab(w)
	fmt.Fprintf(tw, "TEMPERATURE SWEEP — lifetime at %.0f%% idleness (reference corner 358 K / 85C)\n",
		ReferenceIdleness*100)
	fmt.Fprintln(tw, "temp\tstress accel\tstress ratio s\tlifetime")
	for i, tk := range t.TempK {
		marker := ""
		if tk == 358 {
			marker = "  <- characterisation corner"
		}
		fmt.Fprintf(tw, "%.0f K (%.0f C)\t%.2fx\t%.3f\t%.2f y%s\n",
			tk, tk-273.15, t.ActiveRate[i], t.StressRatio[i], t.LifetimeYears[i], marker)
	}
	return tw.Flush()
}

// WriteRetentionSweep prints the sweep.
func WriteRetentionSweep(w io.Writer, r *RetentionSweep) error {
	tw := newTab(w)
	fmt.Fprintf(tw, "RETENTION-VOLTAGE SWEEP — lifetime at %.0f%% idleness (16 kB, M=4 reference point)\n",
		ReferenceIdleness*100)
	fmt.Fprintln(tw, "Vdd,low\tstress ratio s\tlifetime")
	for i, v := range r.VddLow {
		marker := ""
		if v == 0.70 {
			marker = "  <- paper-implied operating point"
		}
		fmt.Fprintf(tw, "%.2f V\t%.3f\t%.2f y%s\n", v, r.StressRatio[i], r.LifetimeYears[i], marker)
	}
	return tw.Flush()
}

package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTechniqueComparison(t *testing.T) {
	s := sharedSuite(t)
	tc, err := s.RunTechniqueComparison("gsme", 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tc.Rows) != 8 {
		t.Fatalf("rows = %d", len(tc.Rows))
	}
	byName := map[string]TechniqueRow{}
	for _, r := range tc.Rows {
		byName[r.Technique] = r
	}
	mono := byName["monolithic, unmanaged"]
	flip := byName["cell flipping [11,15]"]
	lt0 := byName["partitioned + sleep (LT0)"]
	lt := byName["partitioned + dynamic indexing (LT, this paper)"]
	gated := byName["  + power gating [3]"]
	boost := byName["  + recovery boosting [18]"]
	line := byName["line-level dynamic indexing [7] (ideal)"]

	// Skewed p0 hurts the raw monolithic cache; flipping restores the
	// balanced anchor.
	if mono.LifetimeYears >= 2.93 {
		t.Errorf("skewed monolithic = %v, want < 2.93", mono.LifetimeYears)
	}
	if math.Abs(flip.LifetimeYears-2.93) > 1e-6 {
		t.Errorf("flipping = %v, want 2.93", flip.LifetimeYears)
	}
	// The paper's ordering: LT0 < LT; gating/boosting beat voltage
	// scaling; ideal line-level is the upper bound among
	// retention-preserving schemes at the same p0.
	if !(lt.LifetimeYears > lt0.LifetimeYears) {
		t.Errorf("LT %v not above LT0 %v", lt.LifetimeYears, lt0.LifetimeYears)
	}
	if !(gated.LifetimeYears > lt.LifetimeYears) {
		t.Errorf("gating %v not above voltage scaling %v", gated.LifetimeYears, lt.LifetimeYears)
	}
	if math.Abs(gated.LifetimeYears-boost.LifetimeYears) > 1e-9 {
		t.Errorf("recovery boosting %v != gating %v (same stress model)",
			boost.LifetimeYears, gated.LifetimeYears)
	}
	if !(line.LifetimeYears > lt.LifetimeYears) {
		t.Errorf("ideal line-level %v not above coarse-grain %v",
			line.LifetimeYears, lt.LifetimeYears)
	}
	if !line.ArrayModified || !boost.ArrayModified {
		t.Error("array-modification flags wrong")
	}
	if !gated.StateLost {
		t.Error("power gating must lose state")
	}
	var buf bytes.Buffer
	if err := WriteTechniqueComparison(&buf, tc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TECHNIQUES") {
		t.Error("report missing header")
	}
	if _, err := s.RunTechniqueComparison("gsme", 2); err == nil {
		t.Error("bad p0 accepted")
	}
}

func TestBreakevenAblation(t *testing.T) {
	s := sharedSuite(t)
	a, err := s.RunBreakevenAblation("cjpeg")
	if err != nil {
		t.Fatal(err)
	}
	// A longer breakeven can only reduce sleep time.
	for i := 1; i < len(a.Breakevens); i++ {
		if a.MeanSleep[i] > a.MeanSleep[i-1]+1e-12 {
			t.Errorf("sleep rose with breakeven: %v", a.MeanSleep)
		}
		if a.LT[i] > a.LT[i-1]+1e-9 {
			t.Errorf("lifetime rose with breakeven: %v", a.LT)
		}
	}
	// Within the phase structure of our workloads the sweep's effect is
	// modest until the threshold approaches the phase length.
	if a.MeanSleep[0]-a.MeanSleep[len(a.MeanSleep)-1] < 0.001 {
		t.Errorf("breakeven had no effect at all: %v", a.MeanSleep)
	}
	var buf bytes.Buffer
	if err := WriteBreakevenAblation(&buf, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "BREAKEVEN") {
		t.Error("report missing header")
	}
}

func TestUpdateAblation(t *testing.T) {
	s := sharedSuite(t)
	a, err := s.RunUpdateAblation("CRC32")
	if err != nil {
		t.Fatal(err)
	}
	if a.UpdatesPerTrace[0] != 0 || a.MissOverhead[0] != 0 {
		t.Errorf("baseline row wrong: %+v", a)
	}
	for i := 1; i < len(a.UpdatesPerTrace); i++ {
		if a.UpdatesPerTrace[i] <= a.UpdatesPerTrace[i-1] {
			t.Errorf("updates not increasing: %v", a.UpdatesPerTrace)
		}
		if a.MissOverhead[i] < a.MissOverhead[i-1] {
			t.Errorf("overhead not monotone: %v", a.MissOverhead)
		}
	}
	// At a modest in-trace frequency (4 updates per ~100k accesses —
	// still absurdly often next to the paper's daily updates) the
	// overhead stays small; it grows steeply at higher frequencies,
	// which is exactly why the paper ties updates to rare flushes.
	if a.MissOverhead[1] > 0.05 {
		t.Errorf("miss overhead %.2f%% at 4 updates/trace, want < 5%%", a.MissOverhead[1]*100)
	}
	last := a.MissOverhead[len(a.MissOverhead)-1]
	if last < 2*a.MissOverhead[1] {
		t.Errorf("overhead did not grow with frequency: %v", a.MissOverhead)
	}
	var buf bytes.Buffer
	if err := WriteUpdateAblation(&buf, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "UPDATE") {
		t.Error("report missing header")
	}
}

func TestPolicyAgreement(t *testing.T) {
	s := sharedSuite(t)
	a, err := s.RunPolicyAgreement()
	if err != nil {
		t.Fatal(err)
	}
	// §IV-B2: de facto identical.
	if a.MaxRelDiff > 0.03 {
		t.Errorf("max probing/scrambling difference %.2f%% (worst %s), want < 3%%",
			a.MaxRelDiff*100, a.WorstBench)
	}
	if a.MeanRelDiff > a.MaxRelDiff {
		t.Error("mean above max")
	}
	var buf bytes.Buffer
	if err := WritePolicyAgreement(&buf, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "POLICY") {
		t.Error("report missing header")
	}
}

func TestRetentionSweep(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.RunRetentionSweep(DefaultRetentionVoltages())
	if err != nil {
		t.Fatal(err)
	}
	// Lower retention voltage -> lower stress ratio -> longer lifetime.
	for i := 1; i < len(r.VddLow); i++ {
		if r.StressRatio[i] <= r.StressRatio[i-1] {
			t.Errorf("stress ratio not rising with voltage: %v", r.StressRatio)
		}
		if r.LifetimeYears[i] >= r.LifetimeYears[i-1] {
			t.Errorf("lifetime not falling with voltage: %v", r.LifetimeYears)
		}
	}
	// The 0.70 V point must reproduce the paper's structure: s ~ 0.218
	// and ~4.3 years at the Table IV reference idleness.
	for i, v := range r.VddLow {
		if v != 0.70 {
			continue
		}
		if math.Abs(r.StressRatio[i]-0.218) > 0.005 {
			t.Errorf("s(0.70V) = %v, want ~0.218", r.StressRatio[i])
		}
		if math.Abs(r.LifetimeYears[i]-4.31) > 0.15 {
			t.Errorf("LT(0.70V) = %v, want ~4.31 (paper Table IV)", r.LifetimeYears[i])
		}
	}
	var buf bytes.Buffer
	if err := WriteRetentionSweep(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "RETENTION") {
		t.Error("report missing header")
	}
	if _, err := s.RunRetentionSweep([]float64{0.5}); err == nil {
		t.Error("single-point sweep accepted")
	}
	if _, err := s.RunRetentionSweep([]float64{0.5, 2.0}); err == nil {
		t.Error("voltage above Vdd accepted")
	}
}

func TestTemperatureSweep(t *testing.T) {
	s := sharedSuite(t)
	ts, err := s.RunTemperatureSweep(DefaultTemperatures())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ts.TempK); i++ {
		if ts.ActiveRate[i] <= ts.ActiveRate[i-1] {
			t.Errorf("stress not accelerating with temperature: %v", ts.ActiveRate)
		}
		if ts.LifetimeYears[i] >= ts.LifetimeYears[i-1] {
			t.Errorf("lifetime not shortening with temperature: %v", ts.LifetimeYears)
		}
		// The retention ratio is temperature-invariant (Arrhenius
		// cancels): every relative conclusion of the paper holds at
		// any corner.
		if math.Abs(ts.StressRatio[i]-ts.StressRatio[0]) > 1e-9 {
			t.Errorf("stress ratio drifted with temperature: %v", ts.StressRatio)
		}
	}
	// The 358 K point is the characterisation corner: acceleration 1,
	// lifetime matching the retention sweep's 0.70 V value.
	for i, tk := range ts.TempK {
		if tk != 358 {
			continue
		}
		if math.Abs(ts.ActiveRate[i]-1) > 1e-9 {
			t.Errorf("reference acceleration = %v, want 1", ts.ActiveRate[i])
		}
		if math.Abs(ts.LifetimeYears[i]-4.31) > 0.15 {
			t.Errorf("reference lifetime = %v, want ~4.31", ts.LifetimeYears[i])
		}
	}
	var buf bytes.Buffer
	if err := WriteTemperatureSweep(&buf, ts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TEMPERATURE") {
		t.Error("report missing header")
	}
	if _, err := s.RunTemperatureSweep([]float64{358}); err == nil {
		t.Error("single-point sweep accepted")
	}
	if _, err := s.RunTemperatureSweep([]float64{358, -3}); err == nil {
		t.Error("negative temperature accepted")
	}
}

func TestAssocAblation(t *testing.T) {
	s := sharedSuite(t)
	a, err := s.RunAssocAblation("dijkstra")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ways) != 3 {
		t.Fatal("ways sweep wrong")
	}
	// Associativity must not reduce the hit rate on this workload.
	if a.HitRate[1] < a.HitRate[0]-1e-9 || a.HitRate[2] < a.HitRate[0]-1e-9 {
		t.Errorf("associativity hurt hit rate: %v", a.HitRate)
	}
	for _, lt := range a.LT {
		if lt < 3 || lt > 7 {
			t.Errorf("implausible lifetime %v", lt)
		}
	}
	var buf bytes.Buffer
	if err := WriteAssocAblation(&buf, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ASSOCIATIVITY") {
		t.Error("report missing header")
	}
}

package experiment

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// One quick-quality suite shared across the package tests (the aging
// characterisation and trace generation dominate setup cost).
var (
	suiteOnce sync.Once
	suite     *Suite
	suiteErr  error
)

func sharedSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = NewSuite(Quick)
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suite
}

func TestGeometryHelper(t *testing.T) {
	g := Geometry(16, 16)
	if g.Size != 16*1024 || g.LineSize != 16 || g.Ways != 1 {
		t.Errorf("geometry wrong: %+v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceMemoised(t *testing.T) {
	s := sharedSuite(t)
	a, err := s.Trace("sha", Geometry(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Trace("sha", Geometry(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("trace not memoised")
	}
	if _, err := s.Trace("bogus", Geometry(16, 16)); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunMemoised(t *testing.T) {
	s := sharedSuite(t)
	before := s.Engine().Stats().RunsExecuted
	a, err := s.Run("sha", Geometry(16, 16), 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run("sha", Geometry(16, 16), 4)
	if err != nil {
		t.Fatal(err)
	}
	// The engine's cache hands back decoded private copies, so pointer
	// identity is not the contract; memoisation means the repeat call
	// performed no new simulation (the shared suite may have simulated
	// this point already in an earlier test, hence at most one).
	if got := s.Engine().Stats().RunsExecuted; got > before+1 {
		t.Errorf("runs executed went %d -> %d, want at most one new simulation", before, got)
	}
	if a.Hits != b.Hits || a.Misses != b.Misses || a.SpanCycles != b.SpanCycles {
		t.Error("memoised run diverges from the original")
	}
}

func TestTable1ShapeAndBands(t *testing.T) {
	s := sharedSuite(t)
	t1, err := s.RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 18 {
		t.Fatalf("rows = %d", len(t1.Rows))
	}
	// Grand average near the paper's 41.71%.
	if math.Abs(t1.Average-PaperTable1Average) > 0.04 {
		t.Errorf("Table I average %.3f vs paper %.3f", t1.Average, PaperTable1Average)
	}
	// The adpcm.dec signature: banks 1-2 nearly always idle, 0 and 3
	// nearly never.
	r := t1.Rows[0]
	if r.Benchmark != "adpcm.dec" {
		t.Fatalf("row order wrong: %s", r.Benchmark)
	}
	if r.Idleness[1] < 0.95 || r.Idleness[2] < 0.95 {
		t.Errorf("adpcm hot-idle banks: %v", r.Idleness)
	}
	if r.Idleness[0] > 0.10 || r.Idleness[3] > 0.12 {
		t.Errorf("adpcm busy banks: %v", r.Idleness)
	}
	var buf bytes.Buffer
	if err := WriteTable1(&buf, t1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TABLE I") || !strings.Contains(buf.String(), "adpcm.dec") {
		t.Error("report missing content")
	}
}

func TestTable2ShapeAndBands(t *testing.T) {
	s := sharedSuite(t)
	t2, err := s.RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 18 || len(t2.SizesKB) != 3 {
		t.Fatal("shape wrong")
	}
	// Energy savings grow with size and sit near the paper's averages.
	for si := range t2.SizesKB {
		if math.Abs(t2.AvgEsav[si]-PaperTable2Averages.Esav[si]) > 0.05 {
			t.Errorf("size %dkB: Esav %.3f vs paper %.3f",
				t2.SizesKB[si], t2.AvgEsav[si], PaperTable2Averages.Esav[si])
		}
		if math.Abs(t2.AvgLT0[si]-PaperTable2Averages.LT0[si]) > 0.35 {
			t.Errorf("size %dkB: LT0 %.2f vs paper %.2f",
				t2.SizesKB[si], t2.AvgLT0[si], PaperTable2Averages.LT0[si])
		}
		if math.Abs(t2.AvgLT[si]-PaperTable2Averages.LT[si]) > 0.45 {
			t.Errorf("size %dkB: LT %.2f vs paper %.2f",
				t2.SizesKB[si], t2.AvgLT[si], PaperTable2Averages.LT[si])
		}
		// Re-indexing always beats plain power management.
		if t2.AvgLT[si] <= t2.AvgLT0[si] {
			t.Errorf("size %dkB: LT %.2f <= LT0 %.2f", t2.SizesKB[si], t2.AvgLT[si], t2.AvgLT0[si])
		}
	}
	if !(t2.AvgEsav[0] < t2.AvgEsav[1] && t2.AvgEsav[1] < t2.AvgEsav[2]) {
		t.Errorf("savings not increasing with size: %v", t2.AvgEsav)
	}
	var buf bytes.Buffer
	if err := WriteTable2(&buf, t2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TABLE II") {
		t.Error("report missing header")
	}
}

func TestTable3LineSizeTrend(t *testing.T) {
	s := sharedSuite(t)
	t3, err := s.RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	if t3.AvgEsav[1] >= t3.AvgEsav[0] {
		t.Errorf("larger lines did not cut savings: %v", t3.AvgEsav)
	}
	if math.Abs(t3.AvgEsav[1]-PaperTable3Averages.Esav[1]) > 0.05 {
		t.Errorf("LS=32 Esav %.3f vs paper %.3f", t3.AvgEsav[1], PaperTable3Averages.Esav[1])
	}
	// Lifetime barely moves with line size (paper: 4.31 -> 4.23).
	if math.Abs(t3.AvgLT[0]-t3.AvgLT[1]) > 0.35 {
		t.Errorf("lifetime moved too much with line size: %v", t3.AvgLT)
	}
	var buf bytes.Buffer
	if err := WriteTable3(&buf, t3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TABLE III") {
		t.Error("report missing header")
	}
}

func TestTable4BankTrend(t *testing.T) {
	s := sharedSuite(t)
	t4, err := s.RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	for si := range t4.SizesKB {
		// Idleness and lifetime rise with bank count.
		for bi := 1; bi < len(t4.Banks); bi++ {
			if t4.Idleness[si][bi] <= t4.Idleness[si][bi-1] {
				t.Errorf("size %d: idleness not rising with M: %v", t4.SizesKB[si], t4.Idleness[si])
			}
			if t4.LT[si][bi] <= t4.LT[si][bi-1] {
				t.Errorf("size %d: LT not rising with M: %v", t4.SizesKB[si], t4.LT[si])
			}
		}
		for bi := range t4.Banks {
			if math.Abs(t4.LT[si][bi]-PaperTable4.LT[si][bi]) > 0.6 {
				t.Errorf("size %d M=%d: LT %.2f vs paper %.2f",
					t4.SizesKB[si], t4.Banks[bi], t4.LT[si][bi], PaperTable4.LT[si][bi])
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteTable4(&buf, t4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TABLE IV") {
		t.Error("report missing header")
	}
}

func TestHeadlineClaims(t *testing.T) {
	s := sharedSuite(t)
	h, err := s.RunHeadline()
	if err != nil {
		t.Fatal(err)
	}
	if h.MonolithicYears != 2.93 {
		t.Errorf("monolithic = %v", h.MonolithicYears)
	}
	// "a mere 9%" for power management alone (band 5-14%).
	if h.PMOnlyExtension < 0.05 || h.PMOnlyExtension > 0.14 {
		t.Errorf("PM-only extension %.1f%%, paper ~9%%", h.PMOnlyExtension*100)
	}
	// "a further 38%" from re-indexing (band 25-50%).
	if h.ReindexOverPM < 0.25 || h.ReindexOverPM > 0.50 {
		t.Errorf("re-indexing extension %.1f%%, paper ~38%%", h.ReindexOverPM*100)
	}
	// Best case ~2x (sha at 32kB in the paper; our signatures are
	// size-invariant so the witness may differ, the factor must not).
	if h.BestFactor < 1.6 || h.BestFactor > 2.4 {
		t.Errorf("best factor %.2fx, paper ~2x", h.BestFactor)
	}
	if h.WorstFactor < 1.1 {
		t.Errorf("worst factor %.2fx — even the worst case should gain >10%%", h.WorstFactor)
	}
	var buf bytes.Buffer
	if err := WriteHeadline(&buf, h); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "HEADLINE") {
		t.Error("report missing header")
	}
}

func TestOverheadSweep(t *testing.T) {
	s := sharedSuite(t)
	o, err := s.RunOverheadSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Banks) != 4 || o.Banks[3] != 16 {
		t.Fatalf("banks = %v", o.Banks)
	}
	// Lifetime keeps rising with M; energy savings flatten as the
	// wiring overhead bites (M=16 must gain less Esav per doubling than
	// M=4 did).
	for i := 1; i < len(o.Banks); i++ {
		if o.LT[i] <= o.LT[i-1] {
			t.Errorf("LT not rising: %v", o.LT)
		}
	}
	gainEarly := o.Esav[1] - o.Esav[0]
	gainLate := o.Esav[3] - o.Esav[2]
	if gainLate >= gainEarly {
		t.Errorf("wiring overhead not biting: gains %v then %v (Esav %v)", gainEarly, gainLate, o.Esav)
	}
	var buf bytes.Buffer
	if err := WriteOverheadSweep(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "OVERHEAD") {
		t.Error("report missing header")
	}
}

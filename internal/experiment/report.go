package experiment

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// newTab returns the tabwriter all reports share.
func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// WriteTable1 prints Table I with the paper's values (the workload
// signatures) alongside.
func WriteTable1(w io.Writer, t *Table1) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "TABLE I — Distribution of idleness in a 4-bank cache (16 kB, 16 B lines)")
	fmt.Fprintln(tw, "benchmark\tI0\tI1\tI2\tI3\tAverage\tpaper avg")
	for i, r := range t.Rows {
		paperAvg := paperRowAverage(i)
		fmt.Fprintf(tw, "%s\t%.2f%%\t%.2f%%\t%.2f%%\t%.2f%%\t%.2f%%\t%.2f%%\n",
			r.Benchmark,
			r.Idleness[0]*100, r.Idleness[1]*100, r.Idleness[2]*100, r.Idleness[3]*100,
			r.Average*100, paperAvg*100)
	}
	fmt.Fprintf(tw, "Average\t\t\t\t\t%.2f%%\t%.2f%%\n", t.Average*100, PaperTable1Average*100)
	return tw.Flush()
}

// paperRowAverage recovers the per-benchmark Table I average from the
// embedded signatures.
func paperRowAverage(i int) float64 {
	row := PaperTable2[i] // same benchmark order
	_ = row
	sig := paperSignatures[i]
	return (sig[0] + sig[1] + sig[2] + sig[3]) / 4
}

// paperSignatures mirrors workload's Table I data for reporting without
// an import cycle (experiment already imports workload; kept local for
// the formatting layer's independence in tests).
var paperSignatures = [][4]float64{
	{0.0246, 0.9998, 0.9998, 0.0375},
	{0.2264, 0.5324, 0.5937, 0.0951},
	{0.1854, 0.0219, 0.4438, 0.0288},
	{0.1206, 0.1855, 0.5065, 0.5628},
	{0.6766, 0.2923, 0.2789, 0.2497},
	{0.4935, 0.4834, 0.6132, 0.0912},
	{0.5478, 0.5182, 0.5803, 0.0696},
	{0.0692, 0.9081, 0.9282, 0.0040},
	{0.4917, 0.7288, 0.8934, 0.0037},
	{0.6636, 0.5563, 0.4482, 0.2104},
	{0.5878, 0.3294, 0.3862, 0.1374},
	{0.3725, 0.4874, 0.3400, 0.2810},
	{0.8235, 0.3172, 0.2261, 0.0371},
	{0.2059, 0.1945, 0.9178, 0.0363},
	{0.8853, 0.8551, 0.2659, 0.1242},
	{0.6657, 0.2343, 0.4800, 0.5778},
	{0.0491, 0.9862, 0.9409, 0.0313},
	{0.3388, 0.1743, 0.6738, 0.7049},
}

// WriteTable2 prints Table II with paper averages.
func WriteTable2(w io.Writer, t *Table2) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "TABLE II — Energy savings and lifetime vs cache size (16 B lines, M=4)")
	fmt.Fprintln(tw, "\t8kB\t\t\t16kB\t\t\t32kB")
	fmt.Fprintln(tw, "benchmark\tEsav\tLT0\tLT\tEsav\tLT0\tLT\tEsav\tLT0\tLT")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s", r.Benchmark)
		for si := range t.SizesKB {
			fmt.Fprintf(tw, "\t%.1f%%\t%.2f\t%.2f", r.Esav[si]*100, r.LT0[si], r.LT[si])
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintf(tw, "Average")
	for si := range t.SizesKB {
		fmt.Fprintf(tw, "\t%.1f%%\t%.2f\t%.2f", t.AvgEsav[si]*100, t.AvgLT0[si], t.AvgLT[si])
	}
	fmt.Fprintln(tw)
	fmt.Fprintf(tw, "Paper avg")
	for si := range t.SizesKB {
		fmt.Fprintf(tw, "\t%.1f%%\t%.2f\t%.2f",
			PaperTable2Averages.Esav[si]*100, PaperTable2Averages.LT0[si], PaperTable2Averages.LT[si])
	}
	fmt.Fprintln(tw)
	return tw.Flush()
}

// WriteTable3 prints Table III with paper averages.
func WriteTable3(w io.Writer, t *Table3) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "TABLE III — Energy savings and lifetime vs line size (16 kB, M=4)")
	fmt.Fprintln(tw, "\tLS=16B\t\tLS=32B")
	fmt.Fprintln(tw, "benchmark\tEsav\tLT\tEsav\tLT")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.2f\t%.1f%%\t%.2f\n",
			r.Benchmark, r.Esav[0]*100, r.LT[0], r.Esav[1]*100, r.LT[1])
	}
	fmt.Fprintf(tw, "Average\t%.1f%%\t%.2f\t%.1f%%\t%.2f\n",
		t.AvgEsav[0]*100, t.AvgLT[0], t.AvgEsav[1]*100, t.AvgLT[1])
	fmt.Fprintf(tw, "Paper avg\t%.1f%%\t%.2f\t%.1f%%\t%.2f\n",
		PaperTable3Averages.Esav[0]*100, PaperTable3Averages.LT[0],
		PaperTable3Averages.Esav[1]*100, PaperTable3Averages.LT[1])
	return tw.Flush()
}

// WriteTable4 prints Table IV with the paper values in parentheses.
func WriteTable4(w io.Writer, t *Table4) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "TABLE IV — Average idleness and lifetime vs cache size and bank count")
	fmt.Fprintln(tw, "(measured, paper in parentheses)")
	fmt.Fprintln(tw, "\t2 blocks\t\t4 blocks\t\t8 blocks")
	fmt.Fprintln(tw, "size\tIdleness\tLT\tIdleness\tLT\tIdleness\tLT")
	for si, kb := range t.SizesKB {
		fmt.Fprintf(tw, "%dkB", kb)
		for bi := range t.Banks {
			fmt.Fprintf(tw, "\t%.0f%% (%.0f%%)\t%.2f (%.2f)",
				t.Idleness[si][bi]*100, PaperTable4.Idleness[si][bi]*100,
				t.LT[si][bi], PaperTable4.LT[si][bi])
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteHeadline prints the abstract-level summary.
func WriteHeadline(w io.Writer, h *Headline) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "HEADLINE — lifetime summary (M=4, averages over Table II)")
	fmt.Fprintf(tw, "monolithic cache lifetime\t%.2f years\t(paper %.2f)\n",
		h.MonolithicYears, PaperHeadline.MonolithicYears)
	fmt.Fprintf(tw, "power management alone (LT0)\t%.2f years\t+%.0f%% (paper +%.0f%%)\n",
		h.AvgLT0Years, h.PMOnlyExtension*100, PaperHeadline.PMOnlyExtension*100)
	fmt.Fprintf(tw, "with dynamic re-indexing (LT)\t%.2f years\t+%.0f%% over LT0 (paper +38%%)\n",
		h.AvgLTYears, h.ReindexOverPM*100)
	fmt.Fprintf(tw, "best case\t%s @ %dkB\t%.2fx monolithic (paper ~%.0fx, sha)\n",
		h.BestBench, h.BestSizeKB, h.BestFactor, PaperHeadline.BestFactor)
	fmt.Fprintf(tw, "worst case\t\t%.2fx monolithic\n", h.WorstFactor)
	return tw.Flush()
}

// WriteOverheadSweep prints the §IV-B3 granularity discussion.
func WriteOverheadSweep(w io.Writer, o *OverheadSweep) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "OVERHEAD SWEEP — partitioning granularity at 16 kB (wiring overhead included)")
	fmt.Fprintln(tw, "banks\tEsav\tavg idleness\tLT")
	for i, m := range o.Banks {
		fmt.Fprintf(tw, "%d\t%.1f%%\t%.1f%%\t%.2f\n",
			m, o.Esav[i]*100, o.Idleness[i]*100, o.LT[i])
	}
	return tw.Flush()
}

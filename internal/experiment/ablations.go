package experiment

import (
	"fmt"
	"math"

	"nbticache/internal/aging"
	"nbticache/internal/core"
	"nbticache/internal/index"
	"nbticache/internal/mitigate"
	"nbticache/internal/stats"
	"nbticache/internal/workload"
)

// TechniqueRow is one NBTI-mitigation technique evaluated on a common
// workload — the §II-B related-work comparison made quantitative.
type TechniqueRow struct {
	Technique string
	// LifetimeYears under the technique.
	LifetimeYears float64
	// EnergySavings vs the monolithic unmanaged cache (0 when the
	// technique does not manage power).
	EnergySavings float64
	// ArrayModified marks techniques that require touching the SRAM
	// array internals (ruled out by memory-compiler flows — the paper's
	// §III constraint).
	ArrayModified bool
	// StateLost marks techniques whose low-power state loses contents.
	StateLost bool
}

// TechniqueComparison is the full comparison table.
type TechniqueComparison struct {
	Benchmark string
	RawP0     float64
	Rows      []TechniqueRow
}

// RunTechniqueComparison evaluates, on one benchmark at 16 kB / M=4:
//
//   - the unmanaged monolithic cache (with the workload's raw p0 skew);
//   - cell flipping [11]/[15] (restores balanced p0, no power management);
//   - bank-level power management without re-indexing (LT0);
//   - the paper's architecture: partitioning + dynamic indexing (LT);
//   - the same with flipping composed on top;
//   - the same with power gating and with recovery boosting [18];
//   - line-level dynamic indexing [7] (ideal, array-modifying).
func (s *Suite) RunTechniqueComparison(bench string, rawP0 float64) (*TechniqueComparison, error) {
	if rawP0 < 0 || rawP0 > 1 {
		return nil, fmt.Errorf("experiment: raw p0 %v outside [0,1]", rawP0)
	}
	g := Geometry(16, 16)
	res, err := s.Run(bench, g, 4)
	if err != nil {
		return nil, err
	}
	duties := res.RegionSleepFractions()
	flip := mitigate.Flipping{PeriodCycles: 1 << 20}
	flippedP0, err := flip.EffectiveP0(rawP0)
	if err != nil {
		return nil, err
	}

	project := func(kind index.Kind, p0 float64, mode aging.SleepMode) (float64, error) {
		proj, err := core.ProjectAging(s.Aging, duties, kind, s.Epochs, mode)
		if err != nil {
			return 0, err
		}
		// Re-evaluate the duty vector at the requested p0/mode.
		lts, err := s.Aging.LifetimeVector(proj.BankDuty, p0, mode)
		if err != nil {
			return 0, err
		}
		return stats.Min(lts), nil
	}

	mono, err := s.Aging.Lifetime(0, rawP0, aging.VoltageScaled)
	if err != nil {
		return nil, err
	}
	monoFlip, err := s.Aging.Lifetime(0, flippedP0, aging.VoltageScaled)
	if err != nil {
		return nil, err
	}
	lt0, err := project(index.KindIdentity, rawP0, aging.VoltageScaled)
	if err != nil {
		return nil, err
	}
	lt, err := project(index.KindProbing, rawP0, aging.VoltageScaled)
	if err != nil {
		return nil, err
	}
	ltFlip, err := project(index.KindProbing, flippedP0, aging.VoltageScaled)
	if err != nil {
		return nil, err
	}
	ltGated, err := project(index.KindProbing, rawP0, aging.PowerGated)
	if err != nil {
		return nil, err
	}
	ltBoost, err := project(index.KindProbing, rawP0, aging.RecoveryBoosted)
	if err != nil {
		return nil, err
	}

	tr, err := s.Trace(bench, g)
	if err != nil {
		return nil, err
	}
	line, err := mitigate.RunLineLevel(g, s.Tech, tr, 0)
	if err != nil {
		return nil, err
	}
	ltLine, err := line.IdealLifetime(s.Aging, rawP0, aging.VoltageScaled)
	if err != nil {
		return nil, err
	}

	return &TechniqueComparison{
		Benchmark: bench,
		RawP0:     rawP0,
		Rows: []TechniqueRow{
			{"monolithic, unmanaged", mono, 0, false, false},
			{"cell flipping [11,15]", monoFlip, 0, false, false},
			{"partitioned + sleep (LT0)", lt0, res.Savings, false, false},
			{"partitioned + dynamic indexing (LT, this paper)", lt, res.Savings, false, false},
			{"  + cell flipping", ltFlip, res.Savings, false, false},
			{"  + power gating [3]", ltGated, res.Savings, false, true},
			{"  + recovery boosting [18]", ltBoost, res.Savings, true, false},
			{"line-level dynamic indexing [7] (ideal)", ltLine, res.Savings, true, false},
		},
	}, nil
}

// BreakevenAblation sweeps the Block Control threshold — the design
// choice behind the "5- or 6-bit counters" sizing.
type BreakevenAblation struct {
	Benchmark  string
	Breakevens []uint64
	// Per breakeven: mean sleep fraction, energy savings, lifetime.
	MeanSleep []float64
	Esav      []float64
	LT        []float64
}

// RunBreakevenAblation evaluates breakeven thresholds of 4..9-bit
// counters on one benchmark (16 kB, M=4).
func (s *Suite) RunBreakevenAblation(bench string) (*BreakevenAblation, error) {
	g := Geometry(16, 16)
	tr, err := s.Trace(bench, g)
	if err != nil {
		return nil, err
	}
	out := &BreakevenAblation{Benchmark: bench, Breakevens: []uint64{15, 31, 63, 127, 255, 511}}
	for _, be := range out.Breakevens {
		pc, err := core.New(core.Config{
			Geometry: g, Banks: 4, Policy: index.KindIdentity,
			Tech: s.Tech, BreakevenOverride: be,
		})
		if err != nil {
			return nil, err
		}
		res, err := pc.Run(tr)
		if err != nil {
			return nil, err
		}
		sum, err := s.Lifetimes(res)
		if err != nil {
			return nil, err
		}
		out.MeanSleep = append(out.MeanSleep, stats.Mean(res.RegionSleepFractions()))
		out.Esav = append(out.Esav, res.Savings)
		out.LT = append(out.LT, sum.LTYears)
	}
	return out, nil
}

// UpdateAblation quantifies the in-trace cost of re-indexing updates —
// the zero-overhead claim of §III-A3.
type UpdateAblation struct {
	Benchmark string
	// UpdatesPerTrace counts update events; MissOverhead the added miss
	// fraction relative to no updates; HitRate the resulting hit rate.
	UpdatesPerTrace []uint64
	MissOverhead    []float64
	HitRate         []float64
}

// RunUpdateAblation sweeps the update frequency on one benchmark.
func (s *Suite) RunUpdateAblation(bench string) (*UpdateAblation, error) {
	g := Geometry(16, 16)
	tr, err := s.Trace(bench, g)
	if err != nil {
		return nil, err
	}
	divisors := []uint64{0, 4, 16, 64} // 0 updates, then 4, 16, 64 per trace
	out := &UpdateAblation{Benchmark: bench}
	var baseMisses uint64
	for i, d := range divisors {
		cfg := core.Config{Geometry: g, Banks: 4, Policy: index.KindProbing, Tech: s.Tech}
		if d > 0 {
			cfg.UpdateEvery = uint64(tr.Len()) / d
		}
		pc, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		res, err := pc.Run(tr)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			baseMisses = res.Misses
		}
		out.UpdatesPerTrace = append(out.UpdatesPerTrace, res.Updates)
		out.MissOverhead = append(out.MissOverhead,
			float64(res.Misses-baseMisses)/float64(res.Reads+res.Writes))
		out.HitRate = append(out.HitRate, res.HitRate())
	}
	return out, nil
}

// PolicyAgreement quantifies §IV-B2: probing and scrambling give de facto
// identical lifetimes across the whole suite.
type PolicyAgreement struct {
	// MaxRelDiff is the worst relative lifetime difference over all
	// benchmarks; MeanRelDiff the average.
	MaxRelDiff  float64
	MeanRelDiff float64
	// WorstBench is the benchmark with the largest difference.
	WorstBench string
}

// RunPolicyAgreement compares probing and scrambling on every benchmark.
func (s *Suite) RunPolicyAgreement() (*PolicyAgreement, error) {
	g := Geometry(16, 16)
	names := workload.Names()
	diffs := make([]float64, len(names))
	err := forEachBench(func(i int, bench string) error {
		res, err := s.Run(bench, g, 4)
		if err != nil {
			return err
		}
		duties := res.RegionSleepFractions()
		pr, err := core.ProjectAging(s.Aging, duties, index.KindProbing, s.Epochs, aging.VoltageScaled)
		if err != nil {
			return err
		}
		sc, err := core.ProjectAging(s.Aging, duties, index.KindScrambling, s.Epochs, aging.VoltageScaled)
		if err != nil {
			return err
		}
		diffs[i] = math.Abs(sc.LifetimeYears-pr.LifetimeYears) / pr.LifetimeYears
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &PolicyAgreement{}
	for i, d := range diffs {
		if d > out.MaxRelDiff {
			out.MaxRelDiff = d
			out.WorstBench = names[i]
		}
		out.MeanRelDiff += d
	}
	out.MeanRelDiff /= float64(len(diffs))
	return out, nil
}

// AssocAblation explores the set-associative extension: associativity vs
// miss rate, savings and lifetime at 16 kB / M=4.
type AssocAblation struct {
	Benchmark string
	Ways      []int
	HitRate   []float64
	Esav      []float64
	LT        []float64
}

// RunAssocAblation sweeps associativity on one benchmark.
func (s *Suite) RunAssocAblation(bench string) (*AssocAblation, error) {
	out := &AssocAblation{Benchmark: bench, Ways: []int{1, 2, 4}}
	for _, ways := range out.Ways {
		g := Geometry(16, 16)
		g.Ways = ways
		tr, err := s.Trace(bench, Geometry(16, 16)) // same trace for all
		if err != nil {
			return nil, err
		}
		pc, err := core.New(core.Config{Geometry: g, Banks: 4, Policy: index.KindIdentity, Tech: s.Tech})
		if err != nil {
			return nil, err
		}
		res, err := pc.Run(tr)
		if err != nil {
			return nil, err
		}
		sum, err := s.Lifetimes(res)
		if err != nil {
			return nil, err
		}
		out.HitRate = append(out.HitRate, res.HitRate())
		out.Esav = append(out.Esav, res.Savings)
		out.LT = append(out.LT, sum.LTYears)
	}
	return out, nil
}

package experiment

// This file embeds the published numbers of the DATE'11 paper so reports
// can print measured-vs-paper deltas. Values are transcribed from the
// paper's Tables I-IV; Esav is stored as a fraction, lifetimes in years.

// PaperTable1 is Table I: per-bank useful idleness of a 4-bank cache,
// in benchmark (table) order. It coincides with the workload signatures
// by construction — the substitution calibrates the generator against it.
var PaperTable1Average = 0.4171

// PaperTable2Row holds one benchmark's published Table II values.
type PaperTable2Row struct {
	Benchmark string
	Esav      [3]float64 // 8, 16, 32 kB
	LT0       [3]float64
	LT        [3]float64
}

// PaperTable2 is Table II in table order.
var PaperTable2 = []PaperTable2Row{
	{"adpcm.dec", [3]float64{0.306, 0.438, 0.557}, [3]float64{2.98, 3.04, 3.04}, [3]float64{4.82, 3.76, 4.03}},
	{"cjpeg", [3]float64{0.315, 0.440, 0.556}, [3]float64{3.18, 3.17, 3.11}, [3]float64{4.07, 4.32, 4.75}},
	{"CRC32", [3]float64{0.333, 0.450, 0.561}, [3]float64{2.98, 2.93, 2.93}, [3]float64{3.40, 3.88, 4.00}},
	{"dijkstra", [3]float64{0.312, 0.444, 0.555}, [3]float64{3.26, 3.31, 3.29}, [3]float64{3.99, 4.31, 3.99}},
	{"djpeg", [3]float64{0.322, 0.442, 0.552}, [3]float64{3.61, 3.36, 3.52}, [3]float64{4.12, 4.02, 4.35}},
	{"fft_1", [3]float64{0.322, 0.442, 0.556}, [3]float64{3.17, 2.96, 3.24}, [3]float64{4.30, 4.46, 4.44}},
	{"fft_2", [3]float64{0.322, 0.442, 0.556}, [3]float64{3.11, 2.97, 3.18}, [3]float64{4.34, 4.42, 4.40}},
	{"gsmd", [3]float64{0.313, 0.442, 0.552}, [3]float64{2.94, 3.08, 3.03}, [3]float64{4.59, 3.81, 5.10}},
	{"gsme", [3]float64{0.315, 0.439, 0.551}, [3]float64{2.94, 2.94, 3.03}, [3]float64{4.90, 4.50, 4.37}},
	{"ispell", [3]float64{0.336, 0.452, 0.559}, [3]float64{3.50, 3.40, 3.42}, [3]float64{4.55, 4.74, 4.75}},
	{"lame", [3]float64{0.321, 0.444, 0.557}, [3]float64{3.31, 3.55, 3.33}, [3]float64{4.06, 4.12, 4.49}},
	{"mad", [3]float64{0.321, 0.437, 0.550}, [3]float64{3.73, 3.74, 3.72}, [3]float64{4.10, 4.76, 4.59}},
	{"rijndael_i", [3]float64{0.329, 0.444, 0.550}, [3]float64{3.02, 3.11, 3.26}, [3]float64{4.02, 4.10, 4.90}},
	{"rijndael_o", [3]float64{0.331, 0.444, 0.552}, [3]float64{3.01, 3.13, 2.96}, [3]float64{3.96, 4.16, 5.23}},
	{"say", [3]float64{0.319, 0.439, 0.554}, [3]float64{3.27, 3.06, 3.38}, [3]float64{4.92, 5.09, 4.43}},
	{"search", [3]float64{0.334, 0.453, 0.561}, [3]float64{3.57, 3.58, 3.07}, [3]float64{4.67, 4.27, 4.24}},
	{"sha", [3]float64{0.311, 0.436, 0.550}, [3]float64{3.00, 3.03, 3.02}, [3]float64{4.74, 4.48, 6.09}},
	{"tiff2bw", [3]float64{0.334, 0.447, 0.556}, [3]float64{3.41, 3.13, 3.09}, [3]float64{4.57, 4.31, 4.98}},
}

// PaperTable2Averages are the published per-size averages.
var PaperTable2Averages = struct {
	Esav [3]float64
	LT0  [3]float64
	LT   [3]float64
}{
	Esav: [3]float64{0.322, 0.443, 0.555},
	LT0:  [3]float64{3.22, 3.19, 3.20},
	LT:   [3]float64{4.34, 4.31, 4.62},
}

// PaperTable3Row holds one benchmark's published Table III values
// (16 kB cache; line sizes 16 B and 32 B).
type PaperTable3Row struct {
	Benchmark string
	Esav      [2]float64
	LT        [2]float64
}

// PaperTable3 is Table III in table order.
var PaperTable3 = []PaperTable3Row{
	{"adpcm.dec", [2]float64{0.438, 0.310}, [2]float64{3.76, 3.61}},
	{"cjpeg", [2]float64{0.440, 0.312}, [2]float64{4.32, 4.26}},
	{"CRC32", [2]float64{0.450, 0.335}, [2]float64{3.88, 3.82}},
	{"dijkstra", [2]float64{0.444, 0.310}, [2]float64{4.31, 4.17}},
	{"djpeg", [2]float64{0.442, 0.317}, [2]float64{4.02, 3.95}},
	{"fft_1", [2]float64{0.442, 0.319}, [2]float64{4.46, 4.38}},
	{"fft_2", [2]float64{0.442, 0.319}, [2]float64{4.42, 4.35}},
	{"gsmd", [2]float64{0.442, 0.316}, [2]float64{3.81, 3.71}},
	{"gsme", [2]float64{0.439, 0.317}, [2]float64{4.50, 4.46}},
	{"ispell", [2]float64{0.452, 0.333}, [2]float64{4.74, 4.66}},
	{"lame", [2]float64{0.444, 0.321}, [2]float64{4.12, 4.07}},
	{"mad", [2]float64{0.437, 0.312}, [2]float64{4.76, 4.66}},
	{"rijndael_i", [2]float64{0.444, 0.316}, [2]float64{4.10, 3.99}},
	{"rijndael_o", [2]float64{0.444, 0.316}, [2]float64{4.16, 4.03}},
	{"say", [2]float64{0.439, 0.314}, [2]float64{5.09, 5.05}},
	{"search", [2]float64{0.453, 0.331}, [2]float64{4.27, 4.17}},
	{"sha", [2]float64{0.436, 0.312}, [2]float64{4.48, 4.47}},
	{"tiff2bw", [2]float64{0.448, 0.330}, [2]float64{4.31, 4.32}},
}

// PaperTable3Averages are the published line-size averages.
var PaperTable3Averages = struct {
	Esav [2]float64
	LT   [2]float64
}{
	Esav: [2]float64{0.443, 0.319},
	LT:   [2]float64{4.31, 4.23},
}

// PaperTable4 is Table IV: per (size, bank-count) average idleness
// (fraction) and lifetime (years). Rows: 8/16/32 kB; columns: M=2/4/8.
var PaperTable4 = struct {
	SizesKB  []int
	Banks    []int
	Idleness [3][3]float64
	LT       [3][3]float64
}{
	SizesKB: []int{8, 16, 32},
	Banks:   []int{2, 4, 8},
	Idleness: [3][3]float64{
		{0.15, 0.42, 0.58},
		{0.15, 0.41, 0.64},
		{0.25, 0.47, 0.68},
	},
	LT: [3][3]float64{
		{3.34, 4.34, 5.30},
		{3.35, 4.31, 5.69},
		{3.68, 4.62, 5.98},
	},
}

// PaperHeadline carries the abstract's claims: the monolithic cell
// lifetime, the ~9% extension from power management alone, and the
// 22%..2x range with re-indexing.
var PaperHeadline = struct {
	MonolithicYears float64
	PMOnlyExtension float64
	BestFactor      float64
}{
	MonolithicYears: 2.93,
	PMOnlyExtension: 0.09,
	BestFactor:      2.0,
}

package mitigate

import (
	"fmt"

	"nbticache/internal/aging"
	"nbticache/internal/cache"
	"nbticache/internal/pmu"
	"nbticache/internal/stats"
	"nbticache/internal/trace"
)

// LineLevelResult summarises a line-granularity power-management run —
// the [7] architecture in which every cache line is its own power
// domain and dynamic indexing distributes idleness uniformly over lines.
type LineLevelResult struct {
	// Lines is the number of power domains.
	Lines int
	// Breakeven is the per-line threshold used (cycles).
	Breakeven uint64
	// SleepFractions is the measured per-line sleep duty.
	SleepFractions []float64
	// MeanSleep and MinSleep summarise the distribution; ideal dynamic
	// indexing gives every line the mean, no re-indexing leaves the
	// minimum as the cache lifetime limiter.
	MeanSleep float64
	MinSleep  float64
}

// RunLineLevel replays a trace against a direct-mapped cache where each
// line sleeps independently after breakeven idle cycles. breakeven 0
// derives the threshold from the energy model with one power domain per
// line.
func RunLineLevel(g cache.Geometry, tech powerTech, tr *trace.Trace, breakeven uint64) (*LineLevelResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.Ways != 1 {
		return nil, fmt.Errorf("mitigate: line-level management is defined for direct-mapped caches")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("mitigate: empty trace")
	}
	if breakeven == 0 {
		be, err := tech.BreakevenCycles(g, g.Lines())
		if err != nil {
			return nil, err
		}
		breakeven = uint64(be)
		if breakeven < 1 {
			breakeven = 1
		}
	}
	pm, err := pmu.New(g.Lines(), breakeven)
	if err != nil {
		return nil, err
	}
	for i := range tr.Accesses {
		a := &tr.Accesses[i]
		if err := pm.Access(int(g.Index(a.Addr)), a.Cycle); err != nil {
			return nil, fmt.Errorf("mitigate: access %d: %w", i, err)
		}
	}
	if err := pm.Finish(tr.Cycles); err != nil {
		return nil, err
	}
	fracs, err := pm.SleepFractionVector()
	if err != nil {
		return nil, err
	}
	return &LineLevelResult{
		Lines:          g.Lines(),
		Breakeven:      breakeven,
		SleepFractions: fracs,
		MeanSleep:      stats.Mean(fracs),
		MinSleep:       stats.Min(fracs),
	}, nil
}

// powerTech is the slice of power.Tech the line-level runner needs;
// defined as an interface so tests can stub the breakeven derivation.
type powerTech interface {
	BreakevenCycles(g cache.Geometry, banksM int) (float64, error)
}

// IdealLifetime evaluates the [7] upper bound: with ideal (uniform)
// line-level dynamic indexing every line's long-term duty is the mean
// sleep fraction, so all lines — and the cache — live lifetime(mean).
func (r *LineLevelResult) IdealLifetime(model *aging.Model, p0 float64, mode aging.SleepMode) (float64, error) {
	return model.Lifetime(r.MeanSleep, p0, mode)
}

// StaticLifetime evaluates line-level power management without
// re-indexing: the busiest line pins the cache at lifetime(min).
func (r *LineLevelResult) StaticLifetime(model *aging.Model, p0 float64, mode aging.SleepMode) (float64, error) {
	return model.Lifetime(r.MinSleep, p0, mode)
}

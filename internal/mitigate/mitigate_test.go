package mitigate

import (
	"math"
	"sync"
	"testing"

	"nbticache/internal/aging"
	"nbticache/internal/cache"
	"nbticache/internal/power"
	"nbticache/internal/trace"
	"nbticache/internal/workload"
)

var (
	modelOnce sync.Once
	model     *aging.Model
	modelErr  error
)

func sharedModel(t *testing.T) *aging.Model {
	t.Helper()
	modelOnce.Do(func() {
		model, modelErr = aging.New(aging.DefaultConfig())
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return model
}

func geom16k() cache.Geometry {
	return cache.Geometry{Size: 16 * 1024, LineSize: 16, Ways: 1, AddressBits: 32}
}

func TestFlippingValidate(t *testing.T) {
	if err := (Flipping{}).Validate(); err == nil {
		t.Error("zero period accepted")
	}
	if err := (Flipping{PeriodCycles: 4096}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFlippingBalancesP0(t *testing.T) {
	f := Flipping{PeriodCycles: 4096}
	for _, raw := range []float64{0, 0.3, 0.5, 0.9, 1} {
		got, err := f.EffectiveP0(raw)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0.5 {
			t.Errorf("EffectiveP0(%v) = %v, want 0.5", raw, got)
		}
	}
	if _, err := f.EffectiveP0(1.5); err == nil {
		t.Error("bad raw p0 accepted")
	}
	if _, err := (Flipping{}).EffectiveP0(0.5); err == nil {
		t.Error("invalid flipper accepted")
	}
}

// TestFlippingRecoversLifetime reproduces [11]'s claim inside our model:
// a skewed workload (p0 = 0.9) ages faster than balanced; flipping
// restores the balanced lifetime.
func TestFlippingRecoversLifetime(t *testing.T) {
	m := sharedModel(t)
	skewed, err := m.Lifetime(0, 0.9, aging.VoltageScaled)
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := m.Lifetime(0, 0.5, aging.VoltageScaled)
	if err != nil {
		t.Fatal(err)
	}
	if skewed >= balanced {
		t.Fatalf("skew did not hurt: %v vs %v", skewed, balanced)
	}
	f := Flipping{PeriodCycles: 1 << 20}
	p0, err := f.EffectiveP0(0.9)
	if err != nil {
		t.Fatal(err)
	}
	flipped, err := m.Lifetime(0, p0, aging.VoltageScaled)
	if err != nil {
		t.Fatal(err)
	}
	if flipped != balanced {
		t.Errorf("flipping gave %v, want the balanced %v", flipped, balanced)
	}
}

func TestFlipEnergyScalesWithFrequency(t *testing.T) {
	tech := power.DefaultTech()
	g := geom16k()
	fast := Flipping{PeriodCycles: 1 << 20}
	slow := Flipping{PeriodCycles: 1 << 24}
	ef, err := fast.FlipEnergy(tech, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	es, err := slow.FlipEnergy(tech, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := ef / es; math.Abs(ratio-16) > 1e-9 {
		t.Errorf("16x faster flipping cost %vx energy, want 16x", ratio)
	}
	if _, err := fast.FlipEnergy(tech, g, -1); err == nil {
		t.Error("negative horizon accepted")
	}
	if _, err := fast.FlipEnergy(tech, cache.Geometry{}, 1); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := (Flipping{}).FlipEnergy(tech, g, 1); err == nil {
		t.Error("invalid flipper accepted")
	}
	if _, err := fast.FlipEnergy(power.Tech{}, g, 1); err == nil {
		t.Error("bad tech accepted")
	}
}

func lineTrace(t *testing.T) *trace.Trace {
	t.Helper()
	p, ok := workload.ByName("cjpeg")
	if !ok {
		t.Fatal("profile missing")
	}
	tr, err := p.Generate(workload.GenParams{
		Geometry: geom16k(), Phases: 96, AccessesPerPhase: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunLineLevel(t *testing.T) {
	tr := lineTrace(t)
	res, err := RunLineLevel(geom16k(), power.DefaultTech(), tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lines != 1024 {
		t.Fatalf("lines = %d", res.Lines)
	}
	if res.Breakeven < 20 || res.Breakeven > 63 {
		t.Errorf("derived breakeven %d outside band", res.Breakeven)
	}
	if len(res.SleepFractions) != 1024 {
		t.Fatal("wrong vector length")
	}
	// Line-level granularity exposes far more idleness than bank level:
	// cjpeg's 4-bank average is ~37%, its line-level mean must be well
	// above that.
	if res.MeanSleep < 0.5 {
		t.Errorf("line-level mean sleep %.3f suspiciously low", res.MeanSleep)
	}
	if res.MinSleep > res.MeanSleep {
		t.Error("min above mean")
	}
}

func TestLineLevelLifetimes(t *testing.T) {
	m := sharedModel(t)
	tr := lineTrace(t)
	res, err := RunLineLevel(geom16k(), power.DefaultTech(), tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := res.IdealLifetime(m, 0.5, aging.VoltageScaled)
	if err != nil {
		t.Fatal(err)
	}
	static, err := res.StaticLifetime(m, 0.5, aging.VoltageScaled)
	if err != nil {
		t.Fatal(err)
	}
	if ideal <= static {
		t.Errorf("ideal (%v) not above static (%v)", ideal, static)
	}
	// [7] at line granularity beats the paper's 4-bank coarse-grain
	// results (~4.3 years) — the price of memory-compiler compatibility.
	if ideal < 4.5 {
		t.Errorf("ideal line-level lifetime %v years, expected > coarse-grain", ideal)
	}
}

func TestRunLineLevelErrors(t *testing.T) {
	tr := lineTrace(t)
	if _, err := RunLineLevel(cache.Geometry{}, power.DefaultTech(), tr, 0); err == nil {
		t.Error("bad geometry accepted")
	}
	assoc := geom16k()
	assoc.Ways = 2
	if _, err := RunLineLevel(assoc, power.DefaultTech(), tr, 0); err == nil {
		t.Error("set-associative accepted")
	}
	empty := &trace.Trace{Name: "empty", Cycles: 10}
	if _, err := RunLineLevel(geom16k(), power.DefaultTech(), empty, 0); err == nil {
		t.Error("empty trace accepted")
	}
}

// Package mitigate implements the NBTI-mitigation baselines the paper's
// related-work section (§II-B) positions the partitioned architecture
// against, so the comparison can be made quantitative:
//
//   - Cell flipping ([11] Kumar et al., [15] Kunitake et al.): the memory
//     content is periodically inverted so each pMOS sees a balanced
//     storage probability, removing the p0 penalty but doing nothing
//     about the power-state stress itself.
//   - Line-level dynamic indexing ([7] Calimera et al., ISLPED'10): the
//     paper's own predecessor — per-line power management with an ideal
//     uniform distribution of idleness. Optimal, but requires modifying
//     the cache's internal array structure, which memory-compiler flows
//     do not allow.
//   - Recovery boosting ([18] Siddiqua & Gurumurthi) is exposed through
//     aging.RecoveryBoosted: zero stress while idle, state preserved, at
//     the cost of per-cell modifications.
package mitigate

import (
	"fmt"

	"nbticache/internal/cache"
	"nbticache/internal/nbti"
	"nbticache/internal/power"
)

// Flipping is the periodic content-inversion technique. A flip signal
// toggles every PeriodCycles; data is stored (and read back) inverted on
// odd epochs, so over any horizon much longer than the period each pMOS
// is stressed for the average of p0 and 1-p0 — exactly 1/2.
type Flipping struct {
	// PeriodCycles is the inversion period. [11] flips the whole memory
	// on an OS tick (millions of cycles); [15] flips per word every few
	// thousand cycles. Any value far below the aging horizon gives the
	// same balanced duty; the period only sets the flip energy.
	PeriodCycles uint64
}

// Validate reports configuration errors.
func (f Flipping) Validate() error {
	if f.PeriodCycles == 0 {
		return fmt.Errorf("mitigate: flip period must be positive")
	}
	return nil
}

// EffectiveP0 returns the storage duty each pMOS sees under flipping:
// the balanced 0.5, independent of the raw workload skew. (The long-term
// R-D model is insensitive to the alternation frequency; see
// nbti.Recovery for the sub-period transient.)
func (f Flipping) EffectiveP0(rawP0 float64) (float64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if rawP0 < 0 || rawP0 > 1 {
		return 0, fmt.Errorf("mitigate: raw p0 %v outside [0,1]", rawP0)
	}
	return 0.5, nil
}

// FlipEnergy returns the energy spent re-writing the whole array once per
// period over a horizon of years: flips * lines * write energy. This is
// the overhead [11] pays that the partitioned architecture does not.
func (f Flipping) FlipEnergy(tech power.Tech, g cache.Geometry, horizonYears float64) (float64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if err := tech.Validate(); err != nil {
		return 0, err
	}
	if horizonYears < 0 {
		return 0, fmt.Errorf("mitigate: negative horizon %v", horizonYears)
	}
	seconds := horizonYears * nbti.SecondsPerYear
	flips := seconds / (float64(f.PeriodCycles) * tech.CycleSeconds)
	writeEnergy, err := tech.AccessEnergy(g, 1, true)
	if err != nil {
		return 0, err
	}
	return flips * float64(g.Lines()) * writeEnergy, nil
}

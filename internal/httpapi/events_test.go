package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"nbticache/internal/cache"
	"nbticache/internal/engine"
	"nbticache/internal/workload"
)

// TestEventFrameCodec pins the SSE wire format both ways: encoded job
// and done frames decode back to themselves through EventReader, the
// cursor id round-trips, heartbeat comments and unknown fields are
// skipped, and a clean end-of-stream is io.EOF.
func TestEventFrameCodec(t *testing.T) {
	ev := engine.SweepEvent{Seq: 7, Job: &engine.JobResult{ID: "job-0123456789abcdef", Err: "boom"}}
	st := engine.SweepStatus{ID: "sweep-1", State: "done", Total: 7, Completed: 6, Failed: 1}

	var wire bytes.Buffer
	wire.Write(EncodeJobFrame(ev))
	wire.Write([]byte(": hb\n\n"))
	wire.WriteString("retry: 2000\nunknownfield: x\n\n") // unknown fields, no frame content we use
	wire.Write(EncodeDoneFrame(st))

	er := NewEventReader(&wire)
	f, err := er.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !f.HasID || f.ID != ev.Seq {
		t.Errorf("job frame id = %d (has %v), want %d", f.ID, f.HasID, ev.Seq)
	}
	got, err := f.JobEvent()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != ev.Seq || got.Job == nil || got.Job.ID != ev.Job.ID || got.Job.Err != ev.Job.Err {
		t.Errorf("job event round-trip: got %+v, want %+v", got, ev)
	}

	// The heartbeat comment and the unknown-fields-only frame are both
	// skipped (no id/event/data means nothing to surface): the next
	// frame out is the done frame.
	f, err = er.Next()
	if err != nil {
		t.Fatal(err)
	}
	gotSt, err := f.DoneStatus()
	if err != nil {
		t.Fatal(err)
	}
	if gotSt != st {
		t.Errorf("done status round-trip: got %+v, want %+v", gotSt, st)
	}
	if _, err := er.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("end of stream: %v, want io.EOF", err)
	}
}

// TestEventReaderSeveredMidFrame pins the truncation signal: a stream
// cut after a frame's fields but before its blank line is
// io.ErrUnexpectedEOF, never a silently-dispatched partial frame.
func TestEventReaderSeveredMidFrame(t *testing.T) {
	er := NewEventReader(strings.NewReader("id: 3\nevent: job\ndata: {\"seq\":3"))
	if _, err := er.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("severed mid-frame: %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestEventReaderLineBound pins the untrusted-input bound: a single
// line larger than maxEventLine errors instead of growing the buffer.
func TestEventReaderLineBound(t *testing.T) {
	huge := io.MultiReader(strings.NewReader("data: "), bytes.NewReader(bytes.Repeat([]byte("x"), maxEventLine)))
	er := NewEventReader(huge)
	if _, err := er.Next(); !errors.Is(err, ErrEventTooLarge) {
		t.Errorf("oversized line: %v, want ErrEventTooLarge", err)
	}
}

// openEvents opens a sweep event stream with an optional resume cursor.
func openEvents(t *testing.T, base, id string, from int) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if from > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(from))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// drainEvents reads frames until the done frame, asserting the job
// cursors are dense from `from`+1, and returns the terminal status and
// the last cursor seen.
func drainEvents(t *testing.T, body io.Reader, from int) (engine.SweepStatus, int) {
	t.Helper()
	er := NewEventReader(body)
	cursor := from
	for {
		f, err := er.Next()
		if err != nil {
			t.Fatalf("event stream at cursor %d: %v", cursor, err)
		}
		switch f.Event {
		case "job":
			ev, err := f.JobEvent()
			if err != nil {
				t.Fatal(err)
			}
			if ev.Seq != cursor+1 {
				t.Fatalf("seq %d after cursor %d, want dense", ev.Seq, cursor)
			}
			if !f.HasID || f.ID != ev.Seq {
				t.Fatalf("frame id %d (has %v) disagrees with seq %d", f.ID, f.HasID, ev.Seq)
			}
			if ev.Job == nil || ev.Job.ID == "" {
				t.Fatalf("job frame %d carries no result", ev.Seq)
			}
			cursor = ev.Seq
		case "done":
			st, err := f.DoneStatus()
			if err != nil {
				t.Fatal(err)
			}
			return st, cursor
		}
	}
}

// TestSweepEventStream is the node streaming acceptance path: a sweep's
// events route pushes every completion exactly once in merge order,
// terminates with the final status, resumes from a Last-Event-ID cursor
// replaying only what was missed, and counts both on /metrics.
func TestSweepEventStream(t *testing.T) {
	ts, _ := testServer(t)

	body := `{"name":"events","benches":["sha","gsme"],"banks":[2,4]}`
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	// Subscribe immediately — some completions arrive as backlog, the
	// rest live; the reader cannot tell and should not.
	sresp := openEvents(t, ts.URL, sub.ID, 0)
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", sresp.StatusCode)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type %q", ct)
	}
	st, cursor := drainEvents(t, sresp.Body, 0)
	if st.State != "done" || st.Failed != 0 || cursor != sub.Total {
		t.Fatalf("streamed %d/%d completions, terminal %+v", cursor, sub.Total, st)
	}

	// Resume mid-log: only the missed tail replays, then done again.
	from := sub.Total / 2
	rresp := openEvents(t, ts.URL, sub.ID, from)
	defer rresp.Body.Close()
	st, cursor = drainEvents(t, rresp.Body, from)
	if st.State != "done" || cursor != sub.Total {
		t.Fatalf("resume from %d replayed to cursor %d, terminal %+v", from, cursor, st)
	}

	// ?from= is the header's query twin.
	qresp, err := http.Get(ts.URL + "/v1/sweeps/" + sub.ID + "/events?from=" + strconv.Itoa(sub.Total))
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	if st, cursor = drainEvents(t, qresp.Body, sub.Total); st.State != "done" || cursor != sub.Total {
		t.Fatalf("query resume replayed to %d, terminal %+v", cursor, st)
	}

	text := string(scrapeMetrics(t, ts.URL))
	wantSent := sub.Total + (sub.Total - from) // full stream + resumed tail + empty resume
	if !strings.Contains(text, "nbtiserved_sweep_events_sent_total "+strconv.Itoa(wantSent)) {
		t.Errorf("metrics: want nbtiserved_sweep_events_sent_total %d in:\n%s", wantSent, text)
	}
	if !strings.Contains(text, "nbtiserved_sweep_events_resumed_total 2") {
		t.Errorf("metrics: want nbtiserved_sweep_events_resumed_total 2 in:\n%s", text)
	}

	if code := getJSON(t, ts.URL+"/v1/sweeps/sweep-999/events", nil); code != http.StatusNotFound {
		t.Errorf("unknown sweep stream status %d, want 404", code)
	}
}

// TestStreamingDisabled pins the opt-out: with DisableStreaming the
// events route 404s — the signal that tells a streaming consumer (the
// coordinator included) to fall back to status polling.
func TestStreamingDisabled(t *testing.T) {
	eng, err := engine.New(engine.Options{
		Workers: 2,
		Gen: func(g cache.Geometry) workload.GenParams {
			return workload.GenParams{Geometry: g, Phases: 16, AccessesPerPhase: 64}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(NewServer(eng, Config{DisableStreaming: true}).Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(`{"benches":["sha"],"banks":[2]}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if code := getJSON(t, ts.URL+"/v1/sweeps/"+sub.ID+"/events", nil); code != http.StatusNotFound {
		t.Errorf("disabled stream status %d, want 404", code)
	}
}

// FuzzSweepEvents throws arbitrary bytes at the stream decoder: it must
// never panic, never buffer beyond the line bound, and every frame it
// does surface must be internally consistent. Seeds cover the real wire
// format so the corpus mutates from valid frames, which also keeps the
// encode→decode round-trip under fuzz.
func FuzzSweepEvents(f *testing.F) {
	ev := engine.SweepEvent{Seq: 1, Job: &engine.JobResult{ID: "job-0000000000000001"}}
	f.Add(EncodeJobFrame(ev))
	f.Add(EncodeDoneFrame(engine.SweepStatus{ID: "sweep-1", State: "done", Total: 1, Completed: 1}))
	f.Add([]byte(": hb\n\n"))
	f.Add([]byte("id: 3\nevent: job\ndata: {\"seq\":3}\n\ndata: tail"))
	f.Add([]byte("id: -1\nid: 99999999999999999999\nevent: job\n\n"))
	f.Fuzz(func(t *testing.T, in []byte) {
		er := NewEventReader(bytes.NewReader(in))
		for {
			fr, err := er.Next()
			if err != nil {
				return // EOF, ErrUnexpectedEOF, ErrEventTooLarge — all fine
			}
			if fr.HasID && fr.ID < 0 {
				t.Fatalf("decoder surfaced a negative cursor: %+v", fr)
			}
			// Decoders must classify strictly and never panic on the payload.
			if jev, err := fr.JobEvent(); err == nil {
				if fr.Event != "job" {
					t.Fatalf("JobEvent accepted a %q frame", fr.Event)
				}
				// A decoded job frame re-encodes to a frame that decodes equal:
				// the resume path depends on this round-trip.
				rt := NewEventReader(bytes.NewReader(EncodeJobFrame(jev)))
				fr2, err := rt.Next()
				if err != nil {
					t.Fatalf("re-encoded job frame unreadable: %v", err)
				}
				jev2, err := fr2.JobEvent()
				if err != nil {
					t.Fatalf("re-encoded job frame undecodable: %v", err)
				}
				if jev2.Seq != jev.Seq || !fr2.HasID || fr2.ID != jev.Seq {
					t.Fatalf("job frame round-trip: %+v -> %+v", jev, jev2)
				}
			}
			if _, err := fr.DoneStatus(); err == nil && fr.Event != "done" {
				t.Fatalf("DoneStatus accepted a %q frame", fr.Event)
			}
		}
	})
}

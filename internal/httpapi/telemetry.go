package httpapi

import (
	"net/http"
	"strconv"
	"time"

	"nbticache/internal/obs"
)

// SpansResponse is the payload of the span endpoints (GET
// /v1/sweeps/{id}/spans on nodes and coordinators, GET
// /v1/spans/{traceid} on nodes): every recorded span of one trace,
// sorted by start time. The coordinator's variant is the stitched
// cross-node tree.
type SpansResponse struct {
	TraceID string     `json:"trace_id"`
	Spans   []obs.Span `json:"spans"`
}

// WithMetrics wraps a route table in the request-duration middleware:
// every request lands one observation in the
// nbtiserved_http_request_seconds{route,code} histogram, labeled by the
// mux pattern that served it (so path parameters do not explode the
// label space) and the response status. A nil registry returns mux
// unwrapped. Shared by the node and coordinator servers.
func WithMetrics(reg *obs.Registry, mux *http.ServeMux) http.Handler {
	if reg == nil {
		return mux
	}
	hist := reg.HistogramVec("nbtiserved_http_request_seconds",
		"HTTP request duration by route pattern and status code.", nil, "route", "code")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Resolve the pattern without serving, so the label is known even
		// when the handler panics or hijacks the writer.
		_, pattern := mux.Handler(r)
		if pattern == "" {
			pattern = "unmatched"
		}
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		mux.ServeHTTP(sw, r)
		hist.With(pattern, strconv.Itoa(sw.code)).Observe(time.Since(start).Seconds())
	})
}

// statusWriter captures the response status for the request-duration
// label.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so streaming handlers (the sweep
// event feed) still see an http.Flusher through the middleware; without
// this the embedded-interface wrapper would hide the capability and
// every event would sit in the response buffer until the stream closed.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"nbticache/internal/obs"
)

// scrapeMetrics fetches /metrics as a scraper would and returns the
// raw exposition text.
func scrapeMetrics(t *testing.T, base string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// lintExposition runs the obs conformance linter and enumerates the
// TYPE lines by type, failing the test on any violation.
func lintExposition(t *testing.T, body []byte) (histograms []string) {
	t.Helper()
	for _, err := range obs.Lint(bytes.NewReader(body)) {
		t.Errorf("exposition lint: %v", err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 4 && fields[0] == "#" && fields[1] == "TYPE" && fields[3] == "histogram" {
			histograms = append(histograms, fields[2])
		}
	}
	return histograms
}

// TestMetricsConformance is the exposition-format gate for the node
// server: after real traffic (a completed sweep, an unmatched route,
// a scrape), /metrics must parse cleanly under the obs linter —
// no duplicate family blocks, HELP/TYPE before samples, cumulative
// monotone buckets — and carry the three node histogram families plus
// the key hand-mirrored series.
func TestMetricsConformance(t *testing.T) {
	ts, _ := testServer(t)

	// Drive traffic so every family has live samples: one full sweep
	// (job phases, blob ops, HTTP routes) plus a 404 for the unmatched
	// route label.
	body := `{"benches":["sha","gsme"],"banks":[2,4]}`
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(time.Minute)
	for {
		var sweep SweepResponse
		getJSON(t, ts.URL+"/v1/sweeps/"+sub.ID, &sweep)
		if sweep.Status.State == "done" {
			break
		}
		if sweep.Status.State != "running" || time.Now().After(deadline) {
			t.Fatalf("sweep did not complete: %+v", sweep.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code := getJSON(t, ts.URL+"/no/such/route", nil); code != http.StatusNotFound {
		t.Fatalf("unmatched route status %d", code)
	}

	exposition := scrapeMetrics(t, ts.URL)
	histograms := lintExposition(t, exposition)

	if len(histograms) < 3 {
		t.Fatalf("node /metrics exposes %d histogram families (%v), want >= 3", len(histograms), histograms)
	}
	text := string(exposition)
	for _, want := range []string{
		"nbtiserved_job_phase_seconds", "nbtiserved_blob_op_seconds", "nbtiserved_http_request_seconds",
	} {
		found := false
		for _, h := range histograms {
			if h == want {
				found = true
			}
		}
		if !found {
			t.Errorf("histogram family %s missing (have %v)", want, histograms)
		}
	}
	// The phase histogram saw every phase of every job.
	for _, phase := range []string{"queue", "resolve", "simulate", "project", "persist"} {
		if !strings.Contains(text, `nbtiserved_job_phase_seconds_count{phase="`+phase+`"}`) {
			t.Errorf("no phase=%s samples in job-phase histogram", phase)
		}
	}
	// Key mirrored series and the registry gauges survived the registry
	// migration under their historical names.
	for _, series := range []string{
		"nbtiserved_workers ", "nbtiserved_sweeps_total ", "nbtiserved_jobs_completed_total ",
		"nbtiserved_cache_hits_total ", "nbtiserved_sweeps_retained ", "nbtiserved_sweeps_evicted_total ",
	} {
		if !strings.Contains(text, "\n"+series) {
			t.Errorf("series %q missing from /metrics", strings.TrimSpace(series))
		}
	}
	// The middleware labeled both a real route and the 404 fallback.
	if !strings.Contains(text, `route="GET /v1/sweeps/{id}"`) {
		t.Error("no request-duration samples for GET /v1/sweeps/{id}")
	}
	if !strings.Contains(text, `route="unmatched"`) {
		t.Error("no request-duration samples for the unmatched-route label")
	}

	// A second scrape must still lint: OnCollect refreshes are
	// idempotent, re-registration never duplicates a family block.
	lintExposition(t, scrapeMetrics(t, ts.URL))
}

// Sweep completion streaming: GET /v1/sweeps/{id}/events serves a
// sweep's per-job completions as Server-Sent Events the moment they
// merge, replacing status polling for latency-sensitive consumers (the
// cluster coordinator consumes this stream shard-side and re-serves the
// same format client-side).
//
// Wire format — standard SSE framing, three frame kinds:
//
//	id: <seq>
//	event: job
//	data: {"seq":N,"job":{...engine.JobResult...}}
//
//	event: done
//	data: {...engine.SweepStatus...}
//
//	: hb
//
// Every `job` frame carries the merged-count cursor as its SSE id: a
// client that reconnects with `Last-Event-ID: N` (or `?from=N`) resumes
// at cursor N and is re-sent every completion it missed, in merge
// order. The `done` frame is terminal; `: hb` comments are heartbeats
// that keep idle proxies from reaping a quiet stream. The feed ends
// after `done`, after which the final results are one GET
// /v1/sweeps/{id} away.
package httpapi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"nbticache/internal/engine"
	"nbticache/internal/obs"
)

// DefaultEventHeartbeat is the idle-stream heartbeat cadence.
const DefaultEventHeartbeat = 15 * time.Second

// maxEventLine bounds one SSE line on the reading side — above the
// largest job-result payload the poll path would carry (putJob caps
// result bodies at 8 MiB), so a corrupt or hostile stream cannot grow
// an unbounded buffer.
const maxEventLine = 8 << 20

// SweepStream is the handle surface the event stream serves: both
// engine.Handle (node) and cluster.Handle (coordinator) implement it,
// which is what lets the coordinator re-serve the stitched feed in the
// exact format its shards speak.
type SweepStream interface {
	Status() engine.SweepStatus
	EventsFrom(from int) (backlog []engine.SweepEvent, live <-chan engine.SweepEvent, cancel func())
}

// StreamMetrics counts the streaming surface's activity; handles are
// nil-safe so a telemetry-free server streams unchanged.
type StreamMetrics struct {
	sent    *obs.Counter
	resumed *obs.Counter
}

// NewStreamMetrics registers the sweep-event series on reg (nil reg
// returns no-op handles).
func NewStreamMetrics(reg *obs.Registry) *StreamMetrics {
	return &StreamMetrics{
		sent:    reg.Counter("nbtiserved_sweep_events_sent_total", "Job completion events written to sweep event streams."),
		resumed: reg.Counter("nbtiserved_sweep_events_resumed_total", "Sweep event streams resumed from a Last-Event-ID cursor."),
	}
}

// eventSent counts one streamed completion; nil-safe.
func (m *StreamMetrics) eventSent() {
	if m == nil {
		return
	}
	m.sent.Inc()
}

// streamResumed counts one cursor resume; nil-safe.
func (m *StreamMetrics) streamResumed() {
	if m == nil {
		return
	}
	m.resumed.Inc()
}

// resumeCursor extracts the client's resume position: the SSE
// `Last-Event-ID` header (what browsers replay on reconnect) or the
// `?from=` query for clients that want to start mid-log explicitly.
// Absent or malformed cursors start from the beginning, per the SSE
// convention of ignoring an unparseable last ID.
func resumeCursor(r *http.Request) int {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("from")
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// EncodeJobFrame renders one completion as its SSE frame.
func EncodeJobFrame(ev engine.SweepEvent) []byte {
	data, _ := json.Marshal(ev) // engine result types always marshal
	var b bytes.Buffer
	fmt.Fprintf(&b, "id: %d\nevent: job\ndata: %s\n\n", ev.Seq, data)
	return b.Bytes()
}

// EncodeDoneFrame renders the terminal status frame.
func EncodeDoneFrame(st engine.SweepStatus) []byte {
	data, _ := json.Marshal(st)
	var b bytes.Buffer
	fmt.Fprintf(&b, "event: done\ndata: %s\n\n", data)
	return b.Bytes()
}

// heartbeatFrame is the SSE comment that keeps idle streams alive.
var heartbeatFrame = []byte(": hb\n\n")

// StreamSweep serves h's completion feed on w until the sweep finishes
// or the client disconnects. Shared by the node server and the cluster
// coordinator server so the two streaming surfaces speak one format.
func StreamSweep(w http.ResponseWriter, r *http.Request, h SweepStream, heartbeat time.Duration, met *StreamMetrics) {
	fl, ok := w.(http.Flusher)
	if !ok {
		WriteError(w, http.StatusNotImplemented, "response writer cannot stream (no flush support)")
		return
	}
	if heartbeat <= 0 {
		heartbeat = DefaultEventHeartbeat
	}
	cursor := resumeCursor(r)
	if cursor > 0 {
		met.streamResumed()
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	// Proxies that buffer responses (nginx) would defeat the push; this
	// is the conventional opt-out.
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	hb := time.NewTicker(heartbeat)
	defer hb.Stop()
	for {
		backlog, live, cancel := h.EventsFrom(cursor)
		for _, ev := range backlog {
			if _, err := w.Write(EncodeJobFrame(ev)); err != nil {
				cancel()
				return
			}
			fl.Flush()
			cursor = ev.Seq
			met.eventSent()
		}
		open := true
		for open {
			select {
			case ev, more := <-live:
				if !more {
					open = false
					break
				}
				if _, err := w.Write(EncodeJobFrame(ev)); err != nil {
					cancel()
					return
				}
				fl.Flush()
				cursor = ev.Seq
				met.eventSent()
			case <-hb.C:
				if _, err := w.Write(heartbeatFrame); err != nil {
					cancel()
					return
				}
				fl.Flush()
			case <-r.Context().Done():
				cancel()
				return
			}
		}
		cancel()
		// The live channel closed: either the sweep is over or this
		// consumer lagged past its buffer and was coalesced. Resubscribing
		// from the cursor resyncs a laggard (the backlog replays what it
		// missed); a finished sweep gets its terminal frame.
		if st := h.Status(); st.State != "running" {
			if _, err := w.Write(EncodeDoneFrame(st)); err != nil {
				return
			}
			fl.Flush()
			return
		}
	}
}

// ErrEventTooLarge reports an SSE line exceeding the reader's bound.
var ErrEventTooLarge = errors.New("httpapi: sweep event line exceeds size bound")

// EventFrame is one decoded SSE frame: a `job` completion, the `done`
// terminal status, or any unrecognised event a newer server might send
// (consumers skip those by name, which is what makes the format
// forward-extensible).
type EventFrame struct {
	// Event is the SSE event name ("job", "done"; empty defaults to the
	// SSE "message" type, which this protocol never sends).
	Event string
	// ID is the frame's cursor (the `id:` field); HasID distinguishes a
	// genuine 0 from an absent field.
	ID    int
	HasID bool
	// Data is the raw data payload (multi-line data joined with \n).
	Data []byte
}

// JobEvent decodes a `job` frame's payload.
func (f EventFrame) JobEvent() (engine.SweepEvent, error) {
	var ev engine.SweepEvent
	if f.Event != "job" {
		return ev, fmt.Errorf("httpapi: frame %q is not a job event", f.Event)
	}
	if err := json.Unmarshal(f.Data, &ev); err != nil {
		return ev, fmt.Errorf("httpapi: bad job event payload: %w", err)
	}
	return ev, nil
}

// DoneStatus decodes a `done` frame's payload.
func (f EventFrame) DoneStatus() (engine.SweepStatus, error) {
	var st engine.SweepStatus
	if f.Event != "done" {
		return st, fmt.Errorf("httpapi: frame %q is not a done event", f.Event)
	}
	if err := json.Unmarshal(f.Data, &st); err != nil {
		return st, fmt.Errorf("httpapi: bad done event payload: %w", err)
	}
	return st, nil
}

// EventReader incrementally decodes an SSE sweep-event stream. It
// tolerates arbitrary garbage without panicking or buffering more than
// maxEventLine per line (untrusted network input), skips heartbeat
// comments and unknown fields, and surfaces each complete frame.
type EventReader struct {
	br *bufio.Reader
	// OnActivity, when set, fires once per line read — heartbeats and
	// comments included — so a consumer can arm a stall watchdog on raw
	// stream liveness rather than frame arrival.
	OnActivity func()
}

// NewEventReader decodes the SSE stream on r.
func NewEventReader(r io.Reader) *EventReader {
	return &EventReader{br: bufio.NewReader(r)}
}

// readLine reads one \n-terminated line (without the terminator,
// tolerating \r\n), bounded by maxEventLine.
func (er *EventReader) readLine() ([]byte, error) {
	var line []byte
	for {
		chunk, err := er.br.ReadSlice('\n')
		// ReadSlice hands back what it has alongside bufio.ErrBufferFull;
		// accumulate across fills but keep the total bounded.
		if len(line)+len(chunk) > maxEventLine {
			return nil, ErrEventTooLarge
		}
		line = append(line, chunk...)
		if err == nil {
			break
		}
		if errors.Is(err, bufio.ErrBufferFull) {
			continue
		}
		if errors.Is(err, io.EOF) && len(line) > 0 {
			// A final unterminated line still parses; the missing blank
			// line after it means the frame never dispatches, which is the
			// truncation signal.
			break
		}
		return nil, err
	}
	line = bytes.TrimSuffix(line, []byte("\n"))
	line = bytes.TrimSuffix(line, []byte("\r"))
	if er.OnActivity != nil {
		er.OnActivity()
	}
	return line, nil
}

// Next returns the next complete frame. io.EOF reports a stream that
// ended cleanly between frames; io.ErrUnexpectedEOF one severed
// mid-frame.
func (er *EventReader) Next() (EventFrame, error) {
	var f EventFrame
	have := false
	for {
		line, err := er.readLine()
		if err != nil {
			if errors.Is(err, io.EOF) && have {
				return EventFrame{}, io.ErrUnexpectedEOF
			}
			return EventFrame{}, err
		}
		switch {
		case len(line) == 0:
			if have {
				return f, nil
			}
		case line[0] == ':':
			// comment / heartbeat
		default:
			name, value, _ := bytes.Cut(line, []byte(":"))
			value = bytes.TrimPrefix(value, []byte(" "))
			switch string(name) {
			case "id":
				if n, err := strconv.Atoi(string(value)); err == nil && n >= 0 {
					f.ID, f.HasID = n, true
					have = true
				}
			case "event":
				f.Event = string(value)
				have = true
			case "data":
				if len(f.Data) > 0 {
					f.Data = append(f.Data, '\n')
				}
				f.Data = append(f.Data, value...)
				have = true
			}
		}
	}
}

// streamSweep serves GET /v1/sweeps/{id}/events on the node.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request) {
	if s.cfg.DisableStreaming {
		WriteError(w, http.StatusNotFound, "sweep event streaming disabled")
		return
	}
	h, ok := s.sweeps.Lookup(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	StreamSweep(w, r, h, s.cfg.EventHeartbeat, s.streamMet)
}

package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nbticache/internal/cache"
	"nbticache/internal/engine"
	"nbticache/internal/trace"
	"nbticache/internal/workload"
)

func persistentTestServer(t *testing.T, dir string) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng, err := engine.New(engine.Options{
		Workers: 2,
		DataDir: dir,
		Gen: func(g cache.Geometry) workload.GenParams {
			return workload.GenParams{Geometry: g, Phases: 16, AccessesPerPhase: 64}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(NewServer(eng, Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts, eng
}

// TestWarmRestartOverHTTP is the service-level durability walkthrough:
// upload a trace and run a sweep against one server, shut it down,
// start a second server on the same -data-dir, and observe the trace
// listed and the identical sweep resolving entirely from disk.
func TestWarmRestartOverHTTP(t *testing.T) {
	dir := t.TempDir()
	tr := uploadTestTrace("field-capture", 2500, 53)
	var wire bytes.Buffer
	if err := trace.WriteBinary(&wire, tr); err != nil {
		t.Fatal(err)
	}

	ts1, eng1 := persistentTestServer(t, dir)
	var up UploadResponse
	if code := postBody(t, ts1.URL+"/v1/traces", "application/octet-stream", wire.Bytes(), &up); code != http.StatusCreated {
		t.Fatalf("upload status %d", code)
	}
	sweepBody := `{"trace_ids":["` + up.ID + `"],"banks":[2,4]}`
	resp, err := http.Post(ts1.URL+"/v1/sweeps", "application/json", strings.NewReader(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.Total != 2 {
		t.Fatalf("submit: %d %+v", resp.StatusCode, sub)
	}
	// Drain the sweep synchronously through the engine, then "crash"
	// the first server.
	spec := engine.SweepSpec{TraceIDs: []string{up.ID}, Banks: []int{2, 4}}
	h, err := eng1.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	eng1.Close()

	ts2, eng2 := persistentTestServer(t, dir)
	// The trace lists again, signature included.
	var list struct {
		Total  int                `json:"total"`
		Traces []engine.TraceInfo `json:"traces"`
	}
	if code := getJSON(t, ts2.URL+"/v1/traces", &list); code != http.StatusOK || list.Total != 1 || list.Traces[0].ID != up.ID {
		t.Fatalf("traces after restart: %d %+v", code, list)
	}
	if list.Traces[0].Signature == nil {
		t.Fatal("signature lost across restart")
	}
	// Every job resolves by content address before any simulation ran.
	for _, id := range sub.JobIDs {
		var res engine.JobResult
		if code := getJSON(t, ts2.URL+"/v1/jobs/"+id, &res); code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s after restart: %d", id, code)
		}
		if res.Run == nil || res.Projection == nil {
			t.Fatalf("restored job %s incomplete", id)
		}
	}
	// Re-submitting the identical sweep is pure cache replay.
	h2, err := eng2.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := h2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res2.Jobs {
		if r.Failed() || !r.Cached {
			t.Errorf("job %s after restart: cached=%v err=%q", r.ID, r.Cached, r.Err)
		}
	}
	st := eng2.Stats()
	if st.RunsExecuted != 0 || st.TracesBuilt != 0 {
		t.Errorf("restart re-simulated: %+v", st)
	}
	// The metrics surface the persistence layer.
	metResp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metResp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(metResp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"nbtiserved_persistent 1",
		"nbtiserved_persist_hits_total",
		"nbtiserved_persist_corruptions_total 0",
		"nbtiserved_trace_blobs 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDeleteTraceDuringSweepOverHTTP: DELETE /v1/traces/{id} while a
// sweep referencing the trace is in flight returns 200, hides the
// trace immediately, and the sweep still completes cleanly.
func TestDeleteTraceDuringSweepOverHTTP(t *testing.T) {
	release := make(chan struct{})
	eng, err := engine.New(engine.Options{
		Workers: 1,
		Gen: func(g cache.Geometry) workload.GenParams {
			<-release // stalls the benchmark job at the head of the sweep
			return workload.GenParams{Geometry: g, Phases: 16, AccessesPerPhase: 64}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(NewServer(eng, Config{}).Handler())
	t.Cleanup(ts.Close)

	tr := uploadTestTrace("to-delete", 1200, 77)
	var wire bytes.Buffer
	if err := trace.WriteBinary(&wire, tr); err != nil {
		t.Fatal(err)
	}
	var up UploadResponse
	if code := postBody(t, ts.URL+"/v1/traces", "application/octet-stream", wire.Bytes(), &up); code != http.StatusCreated {
		t.Fatalf("upload status %d", code)
	}

	body := `{"jobs":[{"bench":"sha"},{"trace_id":"` + up.ID + `","banks":2}]}`
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/traces/"+up.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE while pinned: %d, want 200", delResp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/v1/traces/"+up.ID, nil); code != http.StatusNotFound {
		t.Errorf("condemned trace still resolves: %d", code)
	}

	close(release)
	deadline := time.Now().Add(2 * time.Minute)
	var sweep SweepResponse
	for {
		if code := getJSON(t, ts.URL+"/v1/sweeps/"+sub.ID, &sweep); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		if sweep.Status.State != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep still running: %+v", sweep.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if sweep.Status.State != "done" {
		t.Fatalf("state %q, want done", sweep.Status.State)
	}
	for _, j := range sweep.Jobs {
		if j == nil || j.Failed() {
			t.Errorf("job broke under a concurrent DELETE: %+v", j)
		}
	}
	if st := eng.Stats(); st.TracesStored != 0 {
		t.Errorf("trace slot not reclaimed after sweep finish: %+v", st)
	}
}

package httpapi

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"nbticache/internal/engine"
)

// TestPprofGating: the profiling surface exists only when the operator
// opted in; by default the routes 404 like any other unknown path.
func TestPprofGating(t *testing.T) {
	eng, err := engine.New(engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	off := httptest.NewServer(NewServer(eng, Config{}).Handler())
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without opt-in: %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(NewServer(eng, Config{EnablePprof: true}).Handler())
	defer on.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(on.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s with -pprof: %d, want 200", path, resp.StatusCode)
		}
	}
	// The /v1 surface is unaffected by the profiling opt-in.
	resp, err = http.Get(on.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with -pprof: %d", resp.StatusCode)
	}
}

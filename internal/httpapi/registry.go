package httpapi

import (
	"sync"

	"nbticache/internal/engine"
)

// sweepHandle is the little a retention registry needs from a sweep:
// both engine.Handle (node mode) and the cluster coordinator's merged
// handle satisfy it.
type sweepHandle interface {
	Status() engine.SweepStatus
}

// Registry retains sweep handles by ID with bounded, oldest-first
// eviction of finished sweeps. It is the one retention implementation
// shared by the node server and the cluster coordinator server, so the
// eviction policy cannot diverge between the two surfaces. Safe for
// concurrent use.
type Registry[H sweepHandle] struct {
	max int

	mu      sync.Mutex
	m       map[string]H
	order   []string // submission order, the eviction queue
	evicted uint64
}

// NewRegistry builds a registry retaining up to max finished sweeps.
func NewRegistry[H sweepHandle](max int) *Registry[H] {
	return &Registry[H]{max: max, m: make(map[string]H)}
}

// Add registers a just-submitted handle and evicts the oldest finished
// sweeps past the bound. Running sweeps are never evicted, so the
// resident count can temporarily exceed the limit under a burst of long
// sweeps; it settles as they finish. The sweep being added is shielded
// even if already finished — a fast all-cache-hit sweep can be "done"
// here, and evicting it would hand the client an ID that instantly
// 404s.
func (r *Registry[H]) Add(id string, h H) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[id] = h
	r.order = append(r.order, id)
	if len(r.m) <= r.max {
		return
	}
	keep := r.order[:0]
	for _, cur := range r.order {
		h, ok := r.m[cur]
		if !ok {
			continue
		}
		if len(r.m) > r.max && cur != id && h.Status().State != "running" {
			delete(r.m, cur)
			r.evicted++
			continue
		}
		keep = append(keep, cur)
	}
	r.order = keep
}

// Lookup resolves a retained handle.
func (r *Registry[H]) Lookup(id string) (H, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.m[id]
	return h, ok
}

// Counts reports the resident handle count and the running eviction
// total, for /metrics.
func (r *Registry[H]) Counts() (retained int, evicted uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m), r.evicted
}

package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nbticache/internal/cache"
	"nbticache/internal/engine"
	"nbticache/internal/trace"
	"nbticache/internal/workload"
)

func testServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng, err := engine.New(engine.Options{
		Workers: 2,
		Gen: func(g cache.Geometry) workload.GenParams {
			return workload.GenParams{Geometry: g, Phases: 16, AccessesPerPhase: 64}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(NewServer(eng, Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts, eng
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestSweepOverHTTP is the acceptance path: a 36-job sweep (18 benches ×
// 2 bank counts) submitted over HTTP completes, and every per-job result
// is retrievable both from the sweep view and by job content address.
func TestSweepOverHTTP(t *testing.T) {
	ts, _ := testServer(t)

	body := `{"name":"acceptance","benches":[],"banks":[4,8]}`
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	if sub.Total < 32 {
		t.Fatalf("sweep has %d jobs, want >= 32", sub.Total)
	}
	if len(sub.JobIDs) != sub.Total {
		t.Fatalf("%d job ids for %d jobs", len(sub.JobIDs), sub.Total)
	}

	// Poll until done.
	deadline := time.Now().Add(2 * time.Minute)
	var sweep SweepResponse
	for {
		if code := getJSON(t, ts.URL+"/v1/sweeps/"+sub.ID, &sweep); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		if sweep.Status.State != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep still running: %+v", sweep.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if sweep.Status.State != "done" {
		t.Fatalf("state %q, want done (%+v)", sweep.Status.State, sweep.Status)
	}
	if sweep.Status.Completed != sub.Total || sweep.Status.Failed != 0 {
		t.Fatalf("completion counts off: %+v", sweep.Status)
	}
	for i, r := range sweep.Jobs {
		if r == nil || r.Run == nil || r.Projection == nil {
			t.Fatalf("job %d missing payload: %+v", i, r)
		}
		if r.Projection.LifetimeYears <= 0 {
			t.Errorf("job %s: non-positive lifetime %v", r.ID, r.Projection.LifetimeYears)
		}
	}

	// Every job resolves individually by content address.
	for _, id := range sub.JobIDs {
		var job engine.JobResult
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &job); code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s: status %d", id, code)
		}
		if job.ID != id || job.Run == nil {
			t.Fatalf("job %s: bad payload", id)
		}
	}
}

func TestSubmitErrors(t *testing.T) {
	ts, _ := testServer(t)
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{not json`, http.StatusBadRequest},
		{`{"unknown_field":1}`, http.StatusBadRequest},
		{`{}`, http.StatusUnprocessableEntity}, // empty sweep
		{`{"benches":["no-such-bench"]}`, http.StatusUnprocessableEntity},
	} {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var apiErr APIError
		_ = json.NewDecoder(resp.Body).Decode(&apiErr)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("body %q: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
		if apiErr.Error == "" {
			t.Errorf("body %q: no error message", tc.body)
		}
	}
}

func TestNotFound(t *testing.T) {
	ts, _ := testServer(t)
	if code := getJSON(t, ts.URL+"/v1/sweeps/sweep-999", nil); code != http.StatusNotFound {
		t.Errorf("unknown sweep: status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/job-ffffffffffffffff", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
}

func TestCancelOverHTTP(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"banks":[2,4,8,16]}`)) // 72 jobs on 2 workers
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", dresp.StatusCode)
	}

	deadline := time.Now().Add(time.Minute)
	for {
		var sweep SweepResponse
		getJSON(t, ts.URL+"/v1/sweeps/"+sub.ID, &sweep)
		if sweep.Status.State != "running" {
			if sweep.Status.State != "canceled" {
				t.Fatalf("state %q, want canceled", sweep.Status.State)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never settled after cancel")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	ts, _ := testServer(t)
	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, health)
	}

	// Run one tiny sweep so the counters move.
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"benches":["sha"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(time.Minute)
	for {
		var sweep SweepResponse
		getJSON(t, ts.URL+"/v1/sweeps/"+sub.ID, &sweep)
		if sweep.Status.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("warm-up sweep never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"nbtiserved_sweeps_total 1",
		"nbtiserved_jobs_completed_total 1",
		"nbtiserved_cache_misses_total 1",
		"# HELP nbtiserved_workers",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}

	var st engine.Stats
	if code := getJSON(t, ts.URL+"/metrics?format=json", &st); code != http.StatusOK {
		t.Fatalf("metrics json status %d", code)
	}
	if st.JobsCompleted != 1 {
		t.Errorf("json stats: %+v", st)
	}
}

// uploadTestTrace builds a deterministic "real" trace for upload tests.
func uploadTestTrace(name string, n int, seed int64) *trace.Trace {
	tr := &trace.Trace{Name: name}
	rng := rand.New(rand.NewSource(seed))
	cycle := uint64(0)
	for i := 0; i < n; i++ {
		cycle += uint64(rng.Intn(9) + 1)
		tr.Append(cycle, uint64(rng.Intn(1<<14)), trace.Kind(rng.Intn(2)))
	}
	tr.Cycles = cycle + 50
	return tr
}

func postBody(t *testing.T, url, ctype string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(url, ctype, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestTraceUploadBinaryAndText uploads the same trace in all three wire
// forms and checks content addressing converges: one ID, one stored
// trace, measured signature included every time.
func TestTraceUploadBinaryAndText(t *testing.T) {
	ts, eng := testServer(t)
	tr := uploadTestTrace("camera-app", 3000, 41)

	var v1, v2, txt bytes.Buffer
	if err := trace.WriteBinary(&v1, tr); err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeStream(&v2, tr); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteText(&txt, tr); err != nil {
		t.Fatal(err)
	}

	var first UploadResponse
	if code := postBody(t, ts.URL+"/v1/traces", "application/octet-stream", v1.Bytes(), &first); code != http.StatusCreated {
		t.Fatalf("binary v1 upload status %d, want 201", code)
	}
	if !first.Created || first.ID == "" || first.Name != "camera-app" {
		t.Fatalf("bad upload response: %+v", first)
	}
	if first.Accesses != tr.Len() || first.Cycles != tr.Cycles {
		t.Errorf("shape wrong: %+v", first)
	}
	if first.Signature == nil || first.Signature.Banks != 4 {
		t.Errorf("no measured signature: %+v", first.Signature)
	}

	// Same trace as a v2 stream (sniffed) and as text: same address,
	// reported as already resident.
	var again UploadResponse
	if code := postBody(t, ts.URL+"/v1/traces", "", v2.Bytes(), &again); code != http.StatusOK {
		t.Fatalf("v2 re-upload status %d, want 200", code)
	}
	if again.Created || again.ID != first.ID {
		t.Fatalf("v2 upload not deduplicated: %+v", again)
	}
	if code := postBody(t, ts.URL+"/v1/traces", "text/plain", txt.Bytes(), &again); code != http.StatusOK {
		t.Fatalf("text re-upload status %d, want 200", code)
	}
	if again.Created || again.ID != first.ID {
		t.Fatalf("text upload not deduplicated: %+v", again)
	}
	if st := eng.Stats(); st.TracesStored != 1 || st.TracesUploaded != 1 {
		t.Errorf("store counts wrong: %+v", st)
	}

	// Metadata resolves by ID and in the listing.
	var info engine.TraceInfo
	if code := getJSON(t, ts.URL+"/v1/traces/"+first.ID, &info); code != http.StatusOK {
		t.Fatalf("GET trace status %d", code)
	}
	if info.ID != first.ID || info.Signature == nil {
		t.Errorf("metadata wrong: %+v", info)
	}
	var list struct {
		Total  int                `json:"total"`
		Traces []engine.TraceInfo `json:"traces"`
	}
	if code := getJSON(t, ts.URL+"/v1/traces", &list); code != http.StatusOK || list.Total != 1 {
		t.Errorf("list: %d %+v", code, list)
	}
	if code := getJSON(t, ts.URL+"/v1/traces/trace-ffffffffffffffff", nil); code != http.StatusNotFound {
		t.Errorf("unknown trace status %d, want 404", code)
	}
}

// TestTraceUploadErrors covers the rejection paths: bad magic, garbage
// text, an empty body, and an oversized body against a small limit.
func TestTraceUploadErrors(t *testing.T) {
	eng, err := engine.New(engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(NewServer(eng, Config{MaxTraceBytes: 4096}).Handler())
	t.Cleanup(ts.Close)

	var apiErr APIError
	// Bad magic under a binary Content-Type.
	if code := postBody(t, ts.URL+"/v1/traces", "application/octet-stream", []byte("XXXX garbage"), &apiErr); code != http.StatusBadRequest {
		t.Errorf("bad magic status %d, want 400", code)
	}
	// Bad version byte behind a valid magic.
	if code := postBody(t, ts.URL+"/v1/traces", "", []byte("NBTR\x07rest"), &apiErr); code != http.StatusBadRequest {
		t.Errorf("bad version status %d, want 400", code)
	}
	// Garbage text.
	if code := postBody(t, ts.URL+"/v1/traces", "", []byte("0 R 0x40\nnot a record\n"), &apiErr); code != http.StatusBadRequest {
		t.Errorf("garbage text status %d, want 400", code)
	}
	// Empty body decodes to an access-free trace: rejected at admission.
	if code := postBody(t, ts.URL+"/v1/traces", "", nil, &apiErr); code != http.StatusUnprocessableEntity {
		t.Errorf("empty body status %d, want 422", code)
	}
	// Two concatenated traces in one body: trailing data, not a silent
	// half-stored upload.
	var cat bytes.Buffer
	if err := trace.WriteBinary(&cat, uploadTestTrace("a", 50, 1)); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(&cat, uploadTestTrace("b", 50, 2)); err != nil {
		t.Fatal(err)
	}
	if code := postBody(t, ts.URL+"/v1/traces", "", cat.Bytes(), &apiErr); code != http.StatusBadRequest {
		t.Errorf("concatenated body status %d, want 400 (%+v)", code, apiErr)
	}
	// Oversized body, in both binary forms: v1 trips the declared-count
	// pre-check, v2 (no count) must still 413 via the MaxBytesReader
	// error surfacing through the decoder with its identity intact.
	big := uploadTestTrace("big", 5000, 3)
	var v1, v2 bytes.Buffer
	if err := trace.WriteBinary(&v1, big); err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeStream(&v2, big); err != nil {
		t.Fatal(err)
	}
	if v1.Len() <= 4096 || v2.Len() <= 4096 {
		t.Fatalf("test trace too small to trip the limit: %d/%d bytes", v1.Len(), v2.Len())
	}
	if code := postBody(t, ts.URL+"/v1/traces", "application/octet-stream", v1.Bytes(), &apiErr); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized v1 status %d, want 413", code)
	}
	if code := postBody(t, ts.URL+"/v1/traces", "application/octet-stream", v2.Bytes(), &apiErr); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized v2 status %d, want 413", code)
	}
	if apiErr.Error == "" {
		t.Error("no error message on rejection")
	}
}

// TestUploadConcurrencyGate: with every upload slot occupied, a new
// upload is turned away with 503 rather than admitted to decode.
func TestUploadConcurrencyGate(t *testing.T) {
	eng, err := engine.New(engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	srv := NewServer(eng, Config{MaxConcurrentUploads: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	srv.uploadSlots <- struct{}{} // occupy the only slot
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, uploadTestTrace("gated", 100, 1)); err != nil {
		t.Fatal(err)
	}
	var apiErr APIError
	if code := postBody(t, ts.URL+"/v1/traces", "", buf.Bytes(), &apiErr); code != http.StatusServiceUnavailable {
		t.Fatalf("saturated upload status %d, want 503 (%+v)", code, apiErr)
	}
	<-srv.uploadSlots // free it
	var up UploadResponse
	if code := postBody(t, ts.URL+"/v1/traces", "", buf.Bytes(), &up); code != http.StatusCreated {
		t.Fatalf("upload after slot freed status %d, want 201", code)
	}
}

// TestTraceStoreBoundOverHTTP: a full store 507s uploads until a slot
// is freed with DELETE.
func TestTraceStoreBoundOverHTTP(t *testing.T) {
	eng, err := engine.New(engine.Options{Workers: 1, MaxStoredTraces: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(NewServer(eng, Config{}).Handler())
	t.Cleanup(ts.Close)

	encode := func(seed int64) []byte {
		var buf bytes.Buffer
		if err := trace.WriteBinary(&buf, uploadTestTrace("bound", 500, seed)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	var up UploadResponse
	if code := postBody(t, ts.URL+"/v1/traces", "", encode(1), &up); code != http.StatusCreated {
		t.Fatalf("first upload status %d", code)
	}
	var apiErr APIError
	if code := postBody(t, ts.URL+"/v1/traces", "", encode(2), &apiErr); code != http.StatusInsufficientStorage {
		t.Fatalf("over-bound upload status %d, want 507 (%+v)", code, apiErr)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/traces/"+up.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/v1/traces/"+up.ID, nil); code != http.StatusNotFound {
		t.Errorf("deleted trace still resolves: %d", code)
	}
	if code := postBody(t, ts.URL+"/v1/traces", "", encode(2), &up); code != http.StatusCreated {
		t.Errorf("upload after delete status %d, want 201", code)
	}
}

// TestSweepWithUploadedTraceOverHTTP is the end-to-end acceptance path:
// upload a real trace, sweep over it by ID, and check the served result
// matches simulating the same trace in-process on a fresh engine.
func TestSweepWithUploadedTraceOverHTTP(t *testing.T) {
	ts, _ := testServer(t)
	tr := uploadTestTrace("e2e", 4000, 17)

	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var up UploadResponse
	if code := postBody(t, ts.URL+"/v1/traces", "application/octet-stream", buf.Bytes(), &up); code != http.StatusCreated {
		t.Fatalf("upload status %d", code)
	}

	spec := fmt.Sprintf(`{"name":"trace-sweep","trace_ids":[%q],"banks":[2,4]}`, up.ID)
	var sub SubmitResponse
	if code := postBody(t, ts.URL+"/v1/sweeps", "application/json", []byte(spec), &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if sub.Total != 2 {
		t.Fatalf("sweep has %d jobs, want 2", sub.Total)
	}

	deadline := time.Now().Add(time.Minute)
	var sweep SweepResponse
	for {
		getJSON(t, ts.URL+"/v1/sweeps/"+sub.ID, &sweep)
		if sweep.Status.State != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck: %+v", sweep.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if sweep.Status.State != "done" || sweep.Status.Failed != 0 {
		t.Fatalf("sweep did not complete cleanly: %+v", sweep.Status)
	}

	// Reference: same trace, same points, fresh in-process engine.
	ref, err := engine.New(engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ref.Close)
	refInfo, _, err := ref.AddTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if refInfo.ID != up.ID {
		t.Fatalf("content address diverges across engines: %q vs %q", refInfo.ID, up.ID)
	}
	for _, served := range sweep.Jobs {
		want, err := ref.RunJob(context.Background(), served.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if served.Run.Misses != want.Run.Misses || served.Run.Hits != want.Run.Hits {
			t.Errorf("job %s: served %d/%d hits/misses, in-process %d/%d",
				served.ID, served.Run.Hits, served.Run.Misses, want.Run.Hits, want.Run.Misses)
		}
		if math.Abs(served.Projection.LifetimeYears-want.Projection.LifetimeYears) > 1e-9 {
			t.Errorf("job %s: served lifetime %v, in-process %v",
				served.ID, served.Projection.LifetimeYears, want.Projection.LifetimeYears)
		}
	}

	// Sweeping an unknown trace ID is rejected at submission.
	var apiErr APIError
	if code := postBody(t, ts.URL+"/v1/sweeps", "application/json",
		[]byte(`{"trace_ids":["trace-ffffffffffffffff"]}`), &apiErr); code != http.StatusUnprocessableEntity {
		t.Errorf("unknown trace sweep status %d, want 422", code)
	}
}

// TestSweepRetention: finished sweeps beyond the retention bound are
// evicted oldest-first, while their job results stay resolvable through
// the content-addressed cache.
func TestSweepRetention(t *testing.T) {
	eng, err := engine.New(engine.Options{
		Workers: 2,
		Gen: func(g cache.Geometry) workload.GenParams {
			return workload.GenParams{Geometry: g, Phases: 16, AccessesPerPhase: 64}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(NewServer(eng, Config{RetainSweeps: 2}).Handler())
	t.Cleanup(ts.Close)

	benches := []string{"sha", "gsme", "gsmd", "cjpeg"}
	var ids []string
	var jobIDs []string
	for _, b := range benches {
		var sub SubmitResponse
		body := fmt.Sprintf(`{"benches":[%q]}`, b)
		if code := postBody(t, ts.URL+"/v1/sweeps", "application/json", []byte(body), &sub); code != http.StatusAccepted {
			t.Fatalf("submit %s: status %d", b, code)
		}
		ids = append(ids, sub.ID)
		jobIDs = append(jobIDs, sub.JobIDs...)
		// Wait until done so the next submission can evict it.
		deadline := time.Now().Add(time.Minute)
		for {
			var sweep SweepResponse
			getJSON(t, ts.URL+"/v1/sweeps/"+sub.ID, &sweep)
			if sweep.Status.State == "done" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("sweep %s stuck", sub.ID)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Retention 2, four finished sweeps: the two oldest are gone.
	for i, id := range ids {
		code := getJSON(t, ts.URL+"/v1/sweeps/"+id, nil)
		if i < 2 && code != http.StatusNotFound {
			t.Errorf("sweep %d (%s): status %d, want 404 after eviction", i, id, code)
		}
		if i >= 2 && code != http.StatusOK {
			t.Errorf("sweep %d (%s): status %d, want 200", i, id, code)
		}
	}
	// Every job of every sweep — evicted or not — still resolves.
	for _, id := range jobIDs {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, nil); code != http.StatusOK {
			t.Errorf("job %s: status %d after sweep eviction", id, code)
		}
	}

	// The metrics expose the eviction counters.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	if _, err := mbuf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{"nbtiserved_sweeps_retained 2", "nbtiserved_sweeps_evicted_total 2"} {
		if !strings.Contains(mbuf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The JSON variant carries the same retention counters.
	var jm struct {
		SweepsRetained int    `json:"sweeps_retained"`
		SweepsEvicted  uint64 `json:"sweeps_evicted"`
	}
	if code := getJSON(t, ts.URL+"/metrics?format=json", &jm); code != http.StatusOK {
		t.Fatalf("metrics json status %d", code)
	}
	if jm.SweepsRetained != 2 || jm.SweepsEvicted != 2 {
		t.Errorf("json metrics retention: %+v", jm)
	}
}

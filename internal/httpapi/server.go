// Package httpapi is the HTTP surface of one simulation node: the
// route table, request bounding, and sweep-handle retention that
// cmd/nbtiserved mounts in node mode, importable so the in-process
// cluster test harness can stand up real nbtiserved nodes without
// forking binaries. The coordinator-mode surface (the same /v1/sweeps
// routes served by a cluster.Coordinator instead of an engine) lives in
// internal/cluster, which shares this package's wire types.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"net/http/pprof"
	"time"

	"nbticache/internal/engine"
	"nbticache/internal/obs"
	"nbticache/internal/trace"
)

// Config bounds the server's per-request and retained state; the
// zero value selects the defaults.
type Config struct {
	// MaxTraceBytes caps one trace-upload body.
	MaxTraceBytes int64
	// RetainSweeps caps resident sweep handles: once exceeded, the
	// oldest *finished* sweeps are evicted (running ones never are).
	// Evicted sweeps 404 by sweep ID, but their per-job results stay
	// resolvable at /v1/jobs/{id} through the content-addressed cache.
	RetainSweeps int
	// MaxConcurrentUploads bounds trace-upload decodes running at once
	// (each can materialise several times its wire size as accesses);
	// excess uploads are turned away with 503.
	MaxConcurrentUploads int
	// EnablePprof mounts the runtime profiling handlers under
	// /debug/pprof/, so the simulation hot path can be profiled in situ
	// (`go tool pprof http://host/debug/pprof/profile`). Off by default:
	// profiles expose internals, so the operator opts in per process
	// (-pprof on nbtiserved).
	EnablePprof bool
	// EventHeartbeat is the sweep event stream's idle heartbeat cadence
	// (SSE comments that keep proxies from reaping a quiet stream);
	// <= 0 selects DefaultEventHeartbeat.
	EventHeartbeat time.Duration
	// DisableStreaming turns off GET /v1/sweeps/{id}/events (the route
	// answers 404), modelling a node that predates the streaming
	// surface; clients are expected to degrade to status polling.
	DisableStreaming bool
}

// Defaults substituted for non-positive Config fields.
const (
	DefaultMaxTraceBytes        = 64 << 20
	DefaultRetainSweeps         = 256
	DefaultMaxConcurrentUploads = 4
)

// withDefaults substitutes the default for any non-positive limit:
// "unlimited" is deliberately not expressible, so a stray -1 cannot
// invert a bound (rejecting every upload, evicting every sweep).
func (c Config) withDefaults() Config {
	if c.MaxTraceBytes <= 0 {
		c.MaxTraceBytes = DefaultMaxTraceBytes
	}
	if c.RetainSweeps <= 0 {
		c.RetainSweeps = DefaultRetainSweeps
	}
	if c.MaxConcurrentUploads <= 0 {
		c.MaxConcurrentUploads = DefaultMaxConcurrentUploads
	}
	return c
}

// Server is the HTTP face of one engine: sweeps are submitted, polled
// and cancelled by ID; traces are uploaded and resolved by content
// address; completed jobs resolve by content address from any sweep.
// All state lives in the engine and this registry, so the handler set
// is trivially shareable across connections.
type Server struct {
	eng *engine.Engine
	cfg Config
	tel *obs.Telemetry

	// uploadSlots is a semaphore over concurrent upload decodes.
	uploadSlots chan struct{}

	sweeps    *Registry[*engine.Handle]
	streamMet *StreamMetrics
}

// NewServer wraps an engine in the node route table. The server shares
// the engine's telemetry bundle: /metrics renders the engine's registry
// (plus the sweep-registry series registered here) and the span
// endpoints read the engine's tracer.
func NewServer(eng *engine.Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		eng:         eng,
		cfg:         cfg,
		tel:         eng.Telemetry(),
		uploadSlots: make(chan struct{}, cfg.MaxConcurrentUploads),
		sweeps:      NewRegistry[*engine.Handle](cfg.RetainSweeps),
	}
	s.streamMet = NewStreamMetrics(s.tel.Metrics)
	if reg := s.tel.Metrics; reg != nil {
		retained := reg.Gauge("nbtiserved_sweeps_retained", "Sweep handles resident in the registry.")
		evicted := reg.Counter("nbtiserved_sweeps_evicted_total", "Finished sweep handles evicted by retention.")
		reg.OnCollect(func() {
			r, e := s.sweeps.Counts()
			retained.Set(float64(r))
			evicted.Set(e)
		})
	}
	return s
}

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.submitSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.getSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.streamSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}/spans", s.getSweepSpans)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.cancelSweep)
	mux.HandleFunc("GET /v1/spans/{traceid}", s.getTraceSpans)
	mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	mux.HandleFunc("PUT /v1/jobs/{id}", s.putJob)
	mux.HandleFunc("GET /v1/cluster/inventory", s.getInventory)
	mux.HandleFunc("POST /v1/traces", s.uploadTrace)
	mux.HandleFunc("GET /v1/traces", s.listTraces)
	mux.HandleFunc("GET /v1/traces/{id}", s.getTrace)
	mux.HandleFunc("GET /v1/traces/{id}/content", s.getTraceContent)
	mux.HandleFunc("DELETE /v1/traces/{id}", s.deleteTrace)
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /metrics", s.metrics)
	if s.cfg.EnablePprof {
		RegisterPprof(mux)
	}
	return WithMetrics(s.tel.Metrics, mux)
}

// RegisterPprof mounts the net/http/pprof handlers on mux, shared by the
// node and coordinator servers.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// WriteJSON renders v with status code.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

// APIError is the error envelope every non-2xx response carries.
type APIError struct {
	Error string `json:"error"`
}

// WriteError renders an APIError with status code.
func WriteError(w http.ResponseWriter, code int, format string, args ...any) {
	WriteJSON(w, code, APIError{Error: fmt.Sprintf(format, args...)})
}

// SubmitResponse acknowledges a sweep submission.
type SubmitResponse struct {
	ID     string   `json:"id"`
	Total  int      `json:"total"`
	JobIDs []string `json:"job_ids"`
}

// submitSweep accepts an engine.SweepSpec JSON body, expands and
// enqueues it, and returns 202 with the sweep ID and the per-job content
// addresses (each later resolvable at /v1/jobs/{id}).
func (s *Server) submitSweep(w http.ResponseWriter, r *http.Request) {
	var spec engine.SweepSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		WriteError(w, http.StatusBadRequest, "bad sweep spec: %v", err)
		return
	}
	// A coordinator (or any tracing client) hands us its span context via
	// the traceparent header; the sweep's span tree then joins that trace
	// instead of rooting a new one, which is what lets the coordinator
	// stitch one tree across shards.
	ctx := r.Context()
	if sc := obs.Extract(r.Header); sc.Valid() {
		ctx = obs.ContextWith(ctx, sc)
	}
	h, err := s.eng.Submit(ctx, spec)
	if err != nil {
		WriteError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.sweeps.Add(h.ID, h)

	jobs := h.Jobs()
	ids := make([]string, len(jobs))
	for i, j := range jobs {
		ids[i] = j.ID()
	}
	WriteJSON(w, http.StatusAccepted, SubmitResponse{ID: h.ID, Total: len(jobs), JobIDs: ids})
}

// SweepResponse is the poll view: live status always, per-job results
// for every slot that has resolved so far.
type SweepResponse struct {
	Status engine.SweepStatus  `json:"status"`
	Jobs   []*engine.JobResult `json:"jobs"`
}

// getSweep reports progress and any resolved results.
func (s *Server) getSweep(w http.ResponseWriter, r *http.Request) {
	h, ok := s.sweeps.Lookup(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	WriteJSON(w, http.StatusOK, SweepResponse{Status: h.Status(), Jobs: h.Results()})
}

// cancelSweep stops a running sweep; completed jobs stay cached.
func (s *Server) cancelSweep(w http.ResponseWriter, r *http.Request) {
	h, ok := s.sweeps.Lookup(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	h.Cancel()
	WriteJSON(w, http.StatusOK, h.Status())
}

// UploadResponse acknowledges a trace upload. Created distinguishes a
// fresh admission from a content-address hit on an already-resident
// trace (uploads are idempotent).
type UploadResponse struct {
	engine.TraceInfo
	Created bool `json:"created"`
}

// uploadTrace ingests a real address trace. The body is either wire
// format — binary (v1 counted or v2 streamed) or text — selected by
// Content-Type (application/octet-stream forces binary, text/* forces
// text, anything else is sniffed from the magic) and decoded
// incrementally in bounded memory. Admission content-addresses the trace
// and measures its bank-idleness signature, both returned immediately;
// the ID then references the trace in job and sweep specs.
func (s *Server) uploadTrace(w http.ResponseWriter, r *http.Request) {
	// The byte cap bounds wire size, not decoded footprint (a dense
	// 64 MiB binary body materialises ~8x that as accesses), so bound
	// how many decodes run at once rather than letting a burst of
	// maximal uploads multiply it.
	select {
	case s.uploadSlots <- struct{}{}:
		defer func() { <-s.uploadSlots }()
	default:
		w.Header().Set("Retry-After", "1")
		WriteError(w, http.StatusServiceUnavailable, "too many concurrent trace uploads (limit %d)", s.cfg.MaxConcurrentUploads)
		return
	}
	tr, ok := ReadTraceUpload(w, r, s.cfg.MaxTraceBytes)
	if !ok {
		return
	}
	info, existed, err := s.eng.AddTrace(tr)
	if err != nil {
		code := http.StatusUnprocessableEntity
		if errors.Is(err, engine.ErrTraceStoreFull) {
			code = http.StatusInsufficientStorage
		}
		WriteError(w, code, "%v", err)
		return
	}
	code := http.StatusCreated
	if existed {
		code = http.StatusOK
	}
	WriteJSON(w, code, UploadResponse{TraceInfo: info, Created: !existed})
}

// ReadTraceUpload decodes one trace-upload request body under the
// node's rules — body capped at maxBytes, wire format selected by
// Content-Type (application/octet-stream forces binary, text/plain
// forces text, anything else is sniffed from the magic), decoded
// incrementally in bounded memory, trailing bytes rejected, the ?name=
// query filled into an unnamed trace. On failure the error response has
// already been written and ok is false. Shared by the node server and
// the cluster coordinator server so the two upload surfaces cannot
// drift apart.
func ReadTraceUpload(w http.ResponseWriter, r *http.Request, maxBytes int64) (tr *trace.Trace, ok bool) {
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	var d *trace.Decoder
	var err error
	ctype, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	switch {
	case ctype == "application/octet-stream":
		d, err = trace.NewBinaryDecoder(body)
	case ctype == "text/plain":
		d = trace.NewTextDecoder(body)
	default:
		d, err = trace.NewDecoder(body)
	}
	if err != nil {
		WriteTraceError(w, err)
		return nil, false
	}
	// Every decoded access costs at least 3 wire bytes (binary) so the
	// byte cap already bounds the count; the explicit cap keeps a
	// pathological text body (blank-line padding) from inflating it.
	tr, err = d.ReadAll(int(maxBytes / 3))
	if err != nil {
		WriteTraceError(w, err)
		return nil, false
	}
	// One request is one trace: the binary decoder stops at the end of
	// the trace, so leftover bytes mean a concatenated or corrupt body
	// the client would otherwise believe was stored in full.
	if more, err := d.More(); err != nil {
		WriteTraceError(w, err)
		return nil, false
	} else if more {
		WriteError(w, http.StatusBadRequest, "trailing data after trace (one trace per upload)")
		return nil, false
	}
	if name := r.URL.Query().Get("name"); name != "" && tr.Name == "" {
		tr.Name = name
	}
	return tr, true
}

// WriteTraceError maps decode failures to status codes: an oversized
// body is 413, malformed input 400. Shared with the coordinator
// server, whose upload path decodes the same wire formats.
func WriteTraceError(w http.ResponseWriter, err error) {
	var maxErr *http.MaxBytesError
	switch {
	case errors.As(err, &maxErr):
		WriteError(w, http.StatusRequestEntityTooLarge, "trace body exceeds %d bytes", maxErr.Limit)
	case errors.Is(err, trace.ErrTooLarge):
		WriteError(w, http.StatusRequestEntityTooLarge, "%v", err)
	default:
		WriteError(w, http.StatusBadRequest, "bad trace: %v", err)
	}
}

// getTrace returns an uploaded trace's stored metadata and signature.
func (s *Server) getTrace(w http.ResponseWriter, r *http.Request) {
	info, ok := s.eng.TraceInfo(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, "no trace %q", r.PathValue("id"))
		return
	}
	WriteJSON(w, http.StatusOK, info)
}

// deleteTrace frees an uploaded trace's store slot. A trace referenced
// by an in-flight sweep is pinned: it disappears from listings and new
// submissions immediately, the running sweep's jobs still resolve it,
// and the storage (persistent blob included) is reclaimed when the
// sweep finishes. Later references fail as unknown either way.
func (s *Server) deleteTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.eng.RemoveTrace(id) {
		WriteError(w, http.StatusNotFound, "no trace %q", id)
		return
	}
	WriteJSON(w, http.StatusOK, map[string]any{"id": id, "deleted": true})
}

// listTraces enumerates the uploaded traces.
func (s *Server) listTraces(w http.ResponseWriter, _ *http.Request) {
	infos := s.eng.TraceInfos()
	WriteJSON(w, http.StatusOK, map[string]any{"total": len(infos), "traces": infos})
}

// getTraceContent streams an uploaded trace's canonical binary
// encoding — the bytes its content address hashes. This is the cluster
// coordinator's forwarding path: fetch the content from the node that
// has the trace, re-upload it to the shard that owns its jobs, and the
// content address survives the copy.
func (s *Server) getTraceContent(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Stream straight from the store — buffering would pin the whole
	// encoding (up to the upload size cap) per concurrent request,
	// which is exactly what the upload path's gate exists to prevent.
	// WriteTrace writes nothing when the trace is absent, so the 404
	// still goes out clean; a failure mid-stream can only truncate the
	// body, which the self-delimiting binary framing surfaces to the
	// decoder on the other end.
	w.Header().Set("Content-Type", "application/octet-stream")
	found, err := s.eng.WriteTrace(w, id)
	if !found {
		w.Header().Del("Content-Type")
		WriteError(w, http.StatusNotFound, "no trace %q", id)
		return
	}
	_ = err // mid-stream write errors have no channel but the truncated body
}

// getJob resolves one job by content address, from any sweep ever run on
// this engine.
func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, ok := s.eng.Job(id)
	if !ok {
		WriteError(w, http.StatusNotFound, "no completed job %q", id)
		return
	}
	WriteJSON(w, http.StatusOK, res)
}

// putJob admits a job result computed elsewhere into this node's
// content-addressed cache — the receiving end of the coordinator's
// replicated write-through. The engine re-derives the spec's content
// address and rejects a body that does not answer for the path ID, so
// a replica cannot be poisoned. 201 on first admission, 200 when the
// result was already cached (write-throughs are idempotent).
func (s *Server) putJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var res engine.JobResult
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&res); err != nil {
		WriteError(w, http.StatusBadRequest, "bad job result: %v", err)
		return
	}
	if res.ID != id {
		WriteError(w, http.StatusUnprocessableEntity, "body ID %q does not match path ID %q", res.ID, id)
		return
	}
	created, err := s.eng.ImportResult(&res)
	if err != nil {
		WriteError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	WriteJSON(w, code, map[string]any{"id": id, "created": created})
}

// InventoryResponse lists the content addresses a node already holds —
// what a rejoining peer advertises so the coordinator resolves pending
// work from its cache instead of re-simulating.
type InventoryResponse struct {
	Jobs   []string `json:"jobs"`
	Traces []string `json:"traces"`
}

// getInventory reports this node's resident job-result and trace
// content addresses, both sorted.
func (s *Server) getInventory(w http.ResponseWriter, _ *http.Request) {
	infos := s.eng.TraceInfos()
	traces := make([]string, 0, len(infos))
	for _, info := range infos {
		traces = append(traces, info.ID)
	}
	WriteJSON(w, http.StatusOK, InventoryResponse{Jobs: s.eng.ResultIDs(), Traces: traces})
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// metrics serves the telemetry registry in Prometheus text exposition
// format (plus a JSON variant via ?format=json). The registry's collect
// hooks mirror the engine's Stats and the sweep registry's counts at
// scrape time, so every series the hand-rolled exposition used to carry
// is still here — under the same names — alongside the histogram
// families the registry owns outright.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		st := s.eng.Stats()
		retained, evicted := s.sweeps.Counts()
		WriteJSON(w, http.StatusOK, struct {
			engine.Stats
			SweepsRetained int    `json:"sweeps_retained"`
			SweepsEvicted  uint64 `json:"sweeps_evicted"`
		}{st, retained, evicted})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.tel.Metrics.WriteText(w)
}

// getSweepSpans serves the recorded span tree of one resident sweep:
// the sweep span, one job span per executed slot, and the per-phase
// children under each.
func (s *Server) getSweepSpans(w http.ResponseWriter, r *http.Request) {
	h, ok := s.sweeps.Lookup(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	tid := h.TraceID()
	if tid == "" {
		WriteError(w, http.StatusNotFound, "sweep %q has no trace (tracing disabled)", h.ID)
		return
	}
	WriteJSON(w, http.StatusOK, SpansResponse{TraceID: tid, Spans: s.tel.Tracer.Spans(tid)})
}

// getTraceSpans serves every span this node recorded under a raw trace
// ID. This is the coordinator's stitching path: a distributed sweep
// shares one trace ID across shards, and the coordinator collects each
// shard's fragment here even after the shard's own sweep handle is
// evicted.
func (s *Server) getTraceSpans(w http.ResponseWriter, r *http.Request) {
	tid := r.PathValue("traceid")
	WriteJSON(w, http.StatusOK, SpansResponse{TraceID: tid, Spans: s.tel.Tracer.Spans(tid)})
}

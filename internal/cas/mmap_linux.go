//go:build linux

package cas

import (
	"os"
	"syscall"
)

// mmapFile maps path read-only in one piece. The returned unmap must be
// called exactly once when the caller is done with data. A file the
// platform cannot map (empty, or larger than the address space allows)
// returns errMmapUnavailable so the caller falls back to a plain read.
//
// The mapping pins the inode, not the directory entry: a concurrent
// Delete unlinks the name and an overwrite of the same key renames a
// fresh temp file over it (DiskStore never truncates a frame in place),
// so live mappings keep reading the bytes they verified.
func mmapFile(path string) (data []byte, unmap func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, errMmapUnavailable
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, errMmapUnavailable
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

//go:build !linux

package cas

// mmapFile on platforms without a wired-up mapping path reports
// errMmapUnavailable, so GetBlob degrades to the plain read everywhere
// mmap is not known to be safe.
func mmapFile(string) ([]byte, func() error, error) {
	return nil, nil, errMmapUnavailable
}

package cas

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// stores runs a subtest against each implementation.
func stores(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		s := NewMem(Limits{})
		t.Cleanup(func() { s.Close() })
		fn(t, s)
	})
	t.Run("disk", func(t *testing.T) {
		s, err := OpenDisk(t.TempDir(), Limits{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		fn(t, s)
	})
}

func boundedStore(t *testing.T, kind string, limits Limits) Store {
	t.Helper()
	if kind == "mem" {
		s := NewMem(limits)
		t.Cleanup(func() { s.Close() })
		return s
	}
	s, err := OpenDisk(t.TempDir(), limits)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	stores(t, func(t *testing.T, s Store) {
		if _, err := s.Get("job-absent"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get absent = %v, want ErrNotFound", err)
		}
		blob := []byte("hello blobs")
		if err := s.Put("job-a", blob); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get("job-a")
		if err != nil || !bytes.Equal(got, blob) {
			t.Fatalf("Get = %q, %v", got, err)
		}
		st, err := s.Stat("job-a")
		if err != nil || st.Key != "job-a" || st.Size != int64(len(blob)) {
			t.Fatalf("Stat = %+v, %v", st, err)
		}
		// Overwrite is size-accounted, not duplicated.
		if err := s.Put("job-a", []byte("xy")); err != nil {
			t.Fatal(err)
		}
		m := s.Metrics()
		if m.Entries != 1 || m.Bytes != 2 {
			t.Fatalf("after overwrite: %+v", m)
		}
		if err := s.Delete("job-a"); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete("job-a"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("double delete = %v, want ErrNotFound", err)
		}
		if m := s.Metrics(); m.Entries != 0 || m.Bytes != 0 {
			t.Fatalf("after delete: %+v", m)
		}
	})
}

func TestStoreRejectsBadKeys(t *testing.T) {
	stores(t, func(t *testing.T, s Store) {
		for _, key := range []string{
			"", ".hidden", "a/b", "..", "a b", "k\x00ey",
			strings.Repeat("x", maxKeyLen+1),
		} {
			if err := s.Put(key, []byte("v")); !errors.Is(err, ErrBadKey) {
				t.Errorf("Put(%q) = %v, want ErrBadKey", key, err)
			}
			if _, err := s.Get(key); !errors.Is(err, ErrBadKey) {
				t.Errorf("Get(%q) = %v, want ErrBadKey", key, err)
			}
		}
	})
}

func TestStoreListOldestFirst(t *testing.T) {
	stores(t, func(t *testing.T, s Store) {
		for i := 0; i < 5; i++ {
			if err := s.Put(fmt.Sprintf("job-%d", i), []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		// Overwriting an old key must not refresh its age.
		if err := s.Put("job-1", []byte("new")); err != nil {
			t.Fatal(err)
		}
		list, err := s.List()
		if err != nil {
			t.Fatal(err)
		}
		var keys []string
		for _, st := range list {
			keys = append(keys, st.Key)
		}
		want := []string{"job-0", "job-1", "job-2", "job-3", "job-4"}
		if strings.Join(keys, ",") != strings.Join(want, ",") {
			t.Fatalf("List order = %v, want %v", keys, want)
		}
	})
}

func TestStoreEviction(t *testing.T) {
	for _, kind := range []string{"mem", "disk"} {
		t.Run(kind, func(t *testing.T) {
			s := boundedStore(t, kind, Limits{MaxEntries: 2})
			for i := 0; i < 4; i++ {
				if err := s.Put(fmt.Sprintf("job-%d", i), []byte{1}); err != nil {
					t.Fatal(err)
				}
			}
			m := s.Metrics()
			if m.Entries != 2 || m.Evictions != 2 {
				t.Fatalf("metrics after entry eviction: %+v", m)
			}
			if _, err := s.Get("job-0"); !errors.Is(err, ErrNotFound) {
				t.Errorf("oldest survived eviction: %v", err)
			}
			if _, err := s.Get("job-3"); err != nil {
				t.Errorf("newest evicted: %v", err)
			}

			b := boundedStore(t, kind, Limits{MaxBytes: 10})
			if err := b.Put("job-big", make([]byte, 11)); !errors.Is(err, ErrTooLarge) {
				t.Fatalf("oversized blob = %v, want ErrTooLarge", err)
			}
			if err := b.Put("job-a", make([]byte, 6)); err != nil {
				t.Fatal(err)
			}
			if err := b.Put("job-b", make([]byte, 6)); err != nil {
				t.Fatal(err)
			}
			if m := b.Metrics(); m.Entries != 1 || m.Bytes != 6 || m.Evictions != 1 {
				t.Fatalf("metrics after byte eviction: %+v", m)
			}
			if _, err := b.Get("job-b"); err != nil {
				t.Errorf("blob being put was evicted: %v", err)
			}
		})
	}
}

func TestGetOrFillSingleFlight(t *testing.T) {
	stores(t, func(t *testing.T, s Store) {
		const racers = 8
		var fills int
		var mu sync.Mutex
		started := make(chan struct{})
		release := make(chan struct{})
		var wg sync.WaitGroup
		blobs := make([][]byte, racers)
		hits := make([]bool, racers)
		for i := 0; i < racers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				blob, hit, err := s.GetOrFill(context.Background(), "job-k", func() ([]byte, error) {
					mu.Lock()
					fills++
					mu.Unlock()
					close(started)
					<-release
					return []byte("value"), nil
				})
				if err != nil {
					t.Error(err)
				}
				blobs[i], hits[i] = blob, hit
			}(i)
		}
		<-started
		close(release)
		wg.Wait()
		if fills != 1 {
			t.Fatalf("fill ran %d times, want 1", fills)
		}
		nhit := 0
		for i := range blobs {
			if string(blobs[i]) != "value" {
				t.Fatalf("racer %d blob = %q", i, blobs[i])
			}
			if hits[i] {
				nhit++
			}
		}
		if nhit != racers-1 {
			t.Errorf("%d hits, want %d (every waiter, not the leader)", nhit, racers-1)
		}
		// The value is now stored: a later call is a pure read.
		if _, hit, err := s.GetOrFill(context.Background(), "job-k", func() ([]byte, error) {
			t.Error("fill ran for a stored key")
			return nil, nil
		}); err != nil || !hit {
			t.Fatalf("read-through = hit %v, %v", hit, err)
		}
	})
}

// TestGetOrFillWriteBehind: the durable put runs behind the fill, but a
// filled blob is never invisible — Get serves it from the pending
// overlay until the write lands, and Drain waits for durability.
func TestGetOrFillWriteBehind(t *testing.T) {
	stores(t, func(t *testing.T, s Store) {
		blob, hit, err := s.GetOrFill(context.Background(), "job-wb", func() ([]byte, error) {
			return []byte("behind"), nil
		})
		if err != nil || hit || string(blob) != "behind" {
			t.Fatalf("fill = %q, hit %v, %v", blob, hit, err)
		}
		// Immediately readable, whether or not the put has landed yet.
		got, err := s.Get("job-wb")
		if err != nil || string(got) != "behind" {
			t.Fatalf("Get right after fill = %q, %v", got, err)
		}
		// And a second GetOrFill must not re-run fill in the window.
		if _, hit, err := s.GetOrFill(context.Background(), "job-wb", func() ([]byte, error) {
			t.Error("fill re-ran for a filled key")
			return nil, nil
		}); err != nil || !hit {
			t.Fatalf("read-through = hit %v, %v", hit, err)
		}
		s.(interface{ Drain() }).Drain()
		if m := s.Metrics(); m.Puts != 1 || m.Entries != 1 {
			t.Errorf("after drain: puts %d entries %d, want 1/1", m.Puts, m.Entries)
		}
	})
}

func TestGetOrFillFailureNotCached(t *testing.T) {
	stores(t, func(t *testing.T, s Store) {
		boom := errors.New("boom")
		if _, _, err := s.GetOrFill(context.Background(), "job-f", func() ([]byte, error) {
			return nil, boom
		}); !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
		if _, err := s.Get("job-f"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("failed fill was stored: %v", err)
		}
		// Retry succeeds.
		blob, hit, err := s.GetOrFill(context.Background(), "job-f", func() ([]byte, error) {
			return []byte("ok"), nil
		})
		if err != nil || hit || string(blob) != "ok" {
			t.Fatalf("retry = %q, hit %v, %v", blob, hit, err)
		}
	})
}

func TestGetOrFillPanicSettlesWaiters(t *testing.T) {
	stores(t, func(t *testing.T, s Store) {
		started := make(chan struct{})
		var waiterErr error
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-started
			_, _, waiterErr = s.GetOrFill(context.Background(), "job-p", func() ([]byte, error) {
				return []byte("recovered"), nil
			})
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("panic did not propagate to the leader")
				}
			}()
			s.GetOrFill(context.Background(), "job-p", func() ([]byte, error) {
				close(started)
				panic("kaboom")
			})
		}()
		wg.Wait()
		// The waiter either shared the panic error or retried and filled
		// itself; it must not have hung (wg.Wait returned) and any error
		// must name the panic.
		if waiterErr != nil && !strings.Contains(waiterErr.Error(), "kaboom") {
			t.Errorf("waiter error = %v", waiterErr)
		}
	})
}

// TestGetOrFillLeaderCancellation: a waiter must not inherit the
// leader's cancellation; it takes over and fills itself.
func TestGetOrFillLeaderCancellation(t *testing.T) {
	stores(t, func(t *testing.T, s Store) {
		leaderCtx, cancelLeader := context.WithCancel(context.Background())
		leaderStarted := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		var leaderErr error
		go func() {
			defer wg.Done()
			_, _, leaderErr = s.GetOrFill(leaderCtx, "job-c", func() ([]byte, error) {
				close(leaderStarted)
				<-leaderCtx.Done()
				return nil, leaderCtx.Err()
			})
		}()
		<-leaderStarted
		var waiterBlob []byte
		var waiterErr error
		go func() {
			defer wg.Done()
			waiterBlob, _, waiterErr = s.GetOrFill(context.Background(), "job-c", func() ([]byte, error) {
				return []byte("takeover"), nil
			})
		}()
		cancelLeader()
		wg.Wait()
		if !errors.Is(leaderErr, context.Canceled) {
			t.Errorf("leader err = %v", leaderErr)
		}
		if waiterErr != nil || string(waiterBlob) != "takeover" {
			t.Errorf("waiter = %q, %v; want takeover, nil", waiterBlob, waiterErr)
		}
	})
}

func TestStoreClosed(t *testing.T) {
	stores(t, func(t *testing.T, s Store) {
		if err := s.Put("job-x", []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get("job-x"); !errors.Is(err, ErrClosed) {
			t.Errorf("Get after close = %v", err)
		}
		if err := s.Put("job-y", nil); !errors.Is(err, ErrClosed) {
			t.Errorf("Put after close = %v", err)
		}
		if _, _, err := s.GetOrFill(context.Background(), "job-z", func() ([]byte, error) {
			t.Error("fill ran on a closed store")
			return nil, nil
		}); !errors.Is(err, ErrClosed) {
			t.Errorf("GetOrFill after close = %v", err)
		}
	})
}

// TestStoreConcurrentMixedOps hammers Put/Get/Delete/List from many
// goroutines so the race detector sees the unlocked I/O paths; the only
// invariant asserted is that nothing corrupts (a Get returns either a
// full valid blob or a miss — DiskStore's checksum would surface torn
// state as a Corruptions count).
func TestStoreConcurrentMixedOps(t *testing.T) {
	stores(t, func(t *testing.T, s Store) {
		const keys = 8
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 40; i++ {
					key := fmt.Sprintf("job-%d", i%keys)
					switch (i + w) % 3 {
					case 0:
						if err := s.Put(key, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
							t.Error(err)
						}
					case 1:
						if blob, err := s.Get(key); err == nil && len(blob) != 64 {
							t.Errorf("partial blob: %d bytes", len(blob))
						}
					case 2:
						s.Delete(key) // ErrNotFound is fine
					}
				}
			}(w)
		}
		wg.Wait()
		if m := s.Metrics(); m.Corruptions != 0 {
			t.Errorf("concurrent ops corrupted the store: %+v", m)
		}
	})
}

// --- disk-specific behaviour ---

func TestDiskReopenPersists(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("job-keep", []byte("survives")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDisk(dir, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	blob, err := s2.Get("job-keep")
	if err != nil || string(blob) != "survives" {
		t.Fatalf("after reopen: %q, %v", blob, err)
	}
}

// TestDiskCrashMidWrite: a temp file left by a crash between create and
// rename is cleaned at open and never visible as a blob.
func TestDiskCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("job-done", []byte("complete")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate a crash mid-write: a partial frame under a temp name.
	stray := filepath.Join(dir, tmpPrefix+"123456")
	if err := os.WriteFile(stray, []byte("NBCS\x01partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDisk(dir, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Lstat(stray); !os.IsNotExist(err) {
		t.Errorf("temp leftover not cleaned: %v", err)
	}
	list, err := s2.List()
	if err != nil || len(list) != 1 || list[0].Key != "job-done" {
		t.Fatalf("List after crash recovery = %+v, %v", list, err)
	}
	if m := s2.Metrics(); m.Corruptions != 0 {
		t.Errorf("temp cleanup counted as corruption: %+v", m)
	}
}

// TestDiskCorruptBlobQuarantined: a bit-flipped payload is detected at
// Get, quarantined, and reported as a miss — never served, never fatal.
func TestDiskCorruptBlobQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("job-rot", []byte("pristine payload")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip one payload byte (the tail of the frame before the checksum).
	path := filepath.Join(dir, "job-rot"+blobSuffix)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-40] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDisk(dir, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Get("job-rot"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt Get = %v, want ErrNotFound", err)
	}
	if m := s2.Metrics(); m.Corruptions != 1 || m.Entries != 0 {
		t.Fatalf("metrics after corruption: %+v", m)
	}
	q, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine dir = %v, %v (want exactly the bad frame)", q, err)
	}
	// The slot is reusable.
	if err := s2.Put("job-rot", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if blob, err := s2.Get("job-rot"); err != nil || string(blob) != "fresh" {
		t.Fatalf("refill = %q, %v", blob, err)
	}
}

// TestDiskTruncatedBlobQuarantinedAtOpen: structural damage (a frame
// cut short) is caught by the open scan, not served later.
func TestDiskTruncatedBlobQuarantinedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("job-cut", []byte("soon to be truncated")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, "job-cut"+blobSuffix)
	if err := os.Truncate(path, 10); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDisk(dir, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if m := s2.Metrics(); m.Corruptions != 1 || m.Entries != 0 {
		t.Fatalf("metrics after truncation: %+v", m)
	}
	if _, err := os.Lstat(path); !os.IsNotExist(err) {
		t.Error("truncated frame still visible in the store directory")
	}
}

// TestDiskRenamedBlobQuarantined: a frame copied to another key's
// filename fails the embedded-key check.
func TestDiskRenamedBlobQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("job-orig", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	raw, err := os.ReadFile(filepath.Join(dir, "job-orig"+blobSuffix))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-other"+blobSuffix), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDisk(dir, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Get("job-orig"); err != nil {
		t.Errorf("original lost: %v", err)
	}
	if _, err := s2.Get("job-other"); !errors.Is(err, ErrNotFound) {
		t.Errorf("aliased frame served: %v", err)
	}
	if m := s2.Metrics(); m.Corruptions != 1 {
		t.Errorf("aliased frame not quarantined: %+v", m)
	}
}

func TestDiskOpenFailsFastOnUnusablePath(t *testing.T) {
	// A path through a regular file cannot be a directory: Open must
	// fail now, not on the first Put.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(filepath.Join(f, "sub"), Limits{}); err == nil {
		t.Fatal("OpenDisk through a regular file succeeded")
	}
	if _, err := OpenDisk("", Limits{}); err == nil {
		t.Fatal("OpenDisk with empty dir succeeded")
	}
}

// TestDiskOpenEnforcesLimits: reopening with tighter limits evicts the
// oldest existing blobs immediately.
func TestDiskOpenEnforcesLimits(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("job-%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	s2, err := OpenDisk(dir, Limits{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if m := s2.Metrics(); m.Entries != 2 || m.Evictions != 2 {
		t.Fatalf("metrics after shrunken reopen: %+v", m)
	}
}

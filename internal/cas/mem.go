package cas

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// MemStore is the in-process Store: blobs live in a map, age is
// insertion order, nothing survives the process. It backs memory-only
// engines so the layers above run one code path whether or not a data
// directory is configured.
type MemStore struct {
	limits Limits
	fl     flightGroup
	obs    OpObserver

	mu     sync.Mutex
	m      map[string]*memEntry
	order  []string // insertion order with tombstones, compacted lazily
	dead   int      // tombstones in order (keys deleted or evicted)
	closed bool
	bytes  int64

	gets, hits, puts, putFailures, deletes, evictions atomic.Uint64
}

// memEntry holds one blob; a key present in order but absent from the
// map is a tombstone left by delete/eviction, compacted lazily.
type memEntry struct {
	blob []byte
}

// NewMem builds an in-memory store.
func NewMem(limits Limits) *MemStore {
	return &MemStore{limits: limits, m: make(map[string]*memEntry)}
}

// SetObserver installs the per-operation latency observer. Install it
// before the store is shared across goroutines.
func (s *MemStore) SetObserver(fn OpObserver) { s.obs = fn }

// Get implements Store. The returned blob is the stored slice; callers
// must not modify it.
func (s *MemStore) Get(key string) ([]byte, error) {
	if s.obs != nil {
		start := time.Now()
		defer func() { s.obs("get", time.Since(start).Seconds()) }()
	}
	s.gets.Add(1)
	if err := checkKey(key); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	e, ok := s.m[key]
	if !ok {
		// A blob computed by GetOrFill whose write-behind has not landed
		// yet is served from the pending overlay — a filled value is
		// never invisible to readers.
		if blob, pok := s.fl.pendingBlob(key); pok {
			s.hits.Add(1)
			return blob, nil
		}
		return nil, ErrNotFound
	}
	s.hits.Add(1)
	return e.blob, nil
}

// Put implements Store. The blob is copied, so the caller may reuse its
// buffer.
func (s *MemStore) Put(key string, blob []byte) error {
	if s.obs != nil {
		start := time.Now()
		defer func() { s.obs("put", time.Since(start).Seconds()) }()
	}
	if err := checkKey(key); err != nil {
		return err
	}
	if s.limits.MaxBytes > 0 && int64(len(blob)) > s.limits.MaxBytes {
		return ErrTooLarge
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	cp := append([]byte(nil), blob...)
	if e, ok := s.m[key]; ok {
		s.bytes += int64(len(cp)) - int64(len(e.blob))
		e.blob = cp
	} else {
		s.m[key] = &memEntry{blob: cp}
		s.order = append(s.order, key)
		s.bytes += int64(len(cp))
	}
	s.puts.Add(1)
	s.evictLocked(key)
	return nil
}

// evictLocked drops the oldest blobs until the limits hold, shielding
// keep (the key just written).
func (s *MemStore) evictLocked(keep string) {
	over := func() bool {
		return (s.limits.MaxEntries > 0 && len(s.m) > s.limits.MaxEntries) ||
			(s.limits.MaxBytes > 0 && s.bytes > s.limits.MaxBytes)
	}
	i := 0
	for ; i < len(s.order) && over(); i++ {
		key := s.order[i]
		e, ok := s.m[key]
		if !ok || key == keep {
			continue
		}
		s.bytes -= int64(len(e.blob))
		delete(s.m, key)
		s.dead++
		s.evictions.Add(1)
	}
	s.compactLocked()
}

// compactLocked rewrites order without its tombstones once they
// outnumber the live set — a tombstone count, not a map probe per
// element, decides, so a delete-heavy workload (a result cache reset
// drops every key) cannot build an ever-growing dead prefix that every
// later compaction rescans.
func (s *MemStore) compactLocked() {
	if s.dead <= len(s.m)+1 {
		return
	}
	live := s.order[:0]
	for _, key := range s.order {
		if _, ok := s.m[key]; ok {
			live = append(live, key)
		}
	}
	s.order = live
	s.dead = 0
}

// Delete implements Store.
func (s *MemStore) Delete(key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	e, ok := s.m[key]
	if !ok {
		return ErrNotFound
	}
	s.bytes -= int64(len(e.blob))
	delete(s.m, key)
	s.dead++
	s.deletes.Add(1)
	s.compactLocked()
	return nil
}

// List implements Store: resident blobs, oldest first.
func (s *MemStore) List() ([]Stat, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	out := make([]Stat, 0, len(s.m))
	for _, key := range s.order {
		if e, ok := s.m[key]; ok {
			out = append(out, Stat{Key: key, Size: int64(len(e.blob))})
		}
	}
	return out, nil
}

// Stat implements Store.
func (s *MemStore) Stat(key string) (Stat, error) {
	if err := checkKey(key); err != nil {
		return Stat{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Stat{}, ErrClosed
	}
	e, ok := s.m[key]
	if !ok {
		return Stat{}, ErrNotFound
	}
	return Stat{Key: key, Size: int64(len(e.blob))}, nil
}

// GetOrFill implements Store (see the interface contract).
func (s *MemStore) GetOrFill(ctx context.Context, key string, fill FillFunc) ([]byte, bool, error) {
	if err := checkKey(key); err != nil {
		return nil, false, err
	}
	return s.fl.do(ctx, key, s.Get, s.Put, func() { s.putFailures.Add(1) }, fill)
}

// Metrics implements Store.
func (s *MemStore) Metrics() Metrics {
	s.mu.Lock()
	entries, bytes := len(s.m), s.bytes
	s.mu.Unlock()
	return Metrics{
		Gets:        s.gets.Load(),
		Hits:        s.hits.Load(),
		Puts:        s.puts.Load(),
		PutFailures: s.putFailures.Load(),
		Deletes:     s.deletes.Load(),
		Evictions:   s.evictions.Load(),
		Entries:     entries,
		Bytes:       bytes,
	}
}

// Drain blocks until every write-behind from a completed GetOrFill fill
// has landed in the map. See DiskStore.Drain.
func (s *MemStore) Drain() { s.fl.drain() }

// Close implements Store: outstanding write-behinds are drained, then
// the map is released; later calls fail.
func (s *MemStore) Close() error {
	s.fl.drain()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.m = nil
	s.order = nil
	s.bytes = 0
	return nil
}

// Package cas is the engine's persistence spine: a content-addressed
// blob store keyed by the caller's content addresses (job IDs, trace
// IDs). Two implementations share one Store interface — MemStore for
// ephemeral engines and DiskStore for engines that must survive a
// restart — so the layers above (the engine's result cache and trace
// store) are written once against the interface and gain durability by
// configuration alone.
//
// Keys are the addresses the engine already computes ("job-<hex>",
// "trace-<hex>"); values are opaque byte blobs. The store does not
// interpret blobs, but the DiskStore frames each one with a checksum so
// bit rot is detected at read time and quarantined instead of served.
package cas

import (
	"context"
	"errors"
	"fmt"
)

// Store errors. Get and Delete report an absent key as ErrNotFound;
// corruption detected by a disk store is folded into ErrNotFound too
// (the blob is quarantined and the caller re-derives the value), with
// the event visible in Metrics.Corruptions.
var (
	ErrNotFound = errors.New("cas: not found")
	ErrClosed   = errors.New("cas: store closed")
	ErrBadKey   = errors.New("cas: bad key")
	// ErrTooLarge is returned by Put when a single blob alone exceeds
	// the store's byte limit: evicting everything else still could not
	// make it fit, so the store refuses rather than thrashing.
	ErrTooLarge = errors.New("cas: blob exceeds store byte limit")
)

// Stat describes one stored blob. Size is the payload length (what Get
// returns), not the on-disk framing.
type Stat struct {
	Key  string
	Size int64
}

// Metrics is a point-in-time snapshot of a store's counters. Entries
// and Bytes are gauges; the rest are monotonic.
type Metrics struct {
	// Gets counts Get calls (from GetOrFill's read-through too); Hits
	// counts the ones that returned a blob.
	Gets uint64
	Hits uint64
	// Puts counts blobs written; PutFailures counts writes that failed
	// (GetOrFill still serves the computed value when the write-behind
	// fails, so this is the only trace such a failure leaves).
	Puts        uint64
	PutFailures uint64
	Deletes     uint64
	// Evictions counts blobs dropped by the capacity bound (oldest
	// first); Corruptions counts blobs quarantined as unreadable.
	Evictions   uint64
	Corruptions uint64
	Entries     int
	Bytes       int64
}

// Limits bounds a store's capacity. Zero fields mean unlimited. When a
// Put would exceed a bound, the oldest blobs (by first insertion) are
// evicted until it fits; the blob being put is never the victim.
type Limits struct {
	MaxEntries int
	MaxBytes   int64
}

// FillFunc computes the blob for a missing key.
type FillFunc func() ([]byte, error)

// OpObserver receives the wall-clock latency of each store operation.
// op is "get" or "put"; seconds is the operation's duration. Both
// built-in stores expose SetObserver(OpObserver); install the observer
// before the store is shared across goroutines (the engine does so at
// construction). A nil observer costs one nil check per operation.
type OpObserver func(op string, seconds float64)

// Store is a keyed blob store. Implementations are safe for concurrent
// use. Callers must not modify a blob returned by Get or GetOrFill, nor
// a blob after passing it to Put (stores may retain or return internal
// slices to keep the memory path copy-free).
type Store interface {
	// Get returns the blob for key, or ErrNotFound.
	Get(key string) ([]byte, error)
	// Put stores blob under key, overwriting any previous value (equal
	// keys are assumed to address equal content, so an overwrite is a
	// no-op semantically). The key's age is its first insertion.
	Put(key string, blob []byte) error
	// Delete removes key, or returns ErrNotFound.
	Delete(key string) error
	// List snapshots the resident blobs, oldest first (eviction order).
	List() ([]Stat, error)
	// Stat describes one resident blob, or returns ErrNotFound.
	Stat(key string) (Stat, error)
	// GetOrFill returns the blob for key, computing and storing it with
	// fill if absent. Concurrent callers for one key are single-flight:
	// the first becomes the leader and runs fill, the rest share its
	// outcome. hit reports that the blob came from the store or from
	// another caller's fill rather than this call's own. Failed fills
	// are not stored, so a later call retries; a fill that returns a
	// context error settles only the waiters that are themselves
	// cancelled — a live waiter takes over and fills again. ctx bounds
	// the wait on a leader, never the caller's own fill.
	//
	// The store write is behind the fill asynchronously: GetOrFill
	// returns as soon as fill completes, and durability follows in the
	// background. A filled blob is never invisible in the interim —
	// Get and GetOrFill serve it from a pending overlay until the
	// write lands — but List/Stat/inventory views only see landed
	// blobs, and Close waits for every outstanding write, so a
	// reopened store holds everything a closed one computed. Both
	// built-in stores expose Drain() to wait explicitly.
	GetOrFill(ctx context.Context, key string, fill FillFunc) (blob []byte, hit bool, err error)
	// Metrics snapshots the counters.
	Metrics() Metrics
	// Close releases the store. Calls after Close fail with ErrClosed.
	Close() error
}

// maxKeyLen bounds key length; with the ".blob" suffix this stays well
// under every filesystem's name limit.
const maxKeyLen = 200

// checkKey admits exactly the addresses the engine mints — ASCII
// letters, digits, '.', '_', '-' — and nothing that could traverse or
// hide in a directory listing (separators, a leading dot).
func checkKey(key string) error {
	if key == "" || len(key) > maxKeyLen {
		return fmt.Errorf("%w: length %d outside [1,%d]", ErrBadKey, len(key), maxKeyLen)
	}
	if key[0] == '.' {
		return fmt.Errorf("%w: %q starts with a dot", ErrBadKey, key)
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("%w: %q contains byte %#x", ErrBadKey, key, c)
		}
	}
	return nil
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

package cas

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// flightGroup implements GetOrFill's single-flight contract over any
// store's Get/Put, mirroring the engine's historical flightCache
// semantics: one leader computes, waiters share, failures are not
// cached, a leader's cancellation never contaminates a live waiter, and
// a panicking fill still settles its waiters before re-raising.
type flightGroup struct {
	mu       sync.Mutex
	inflight map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when blob/err are final
	blob []byte
	err  error
}

func (g *flightGroup) do(ctx context.Context, key string, get func(string) ([]byte, error), put func(string, []byte) error, onPutFailure func(), fill FillFunc) ([]byte, bool, error) {
	for {
		g.mu.Lock()
		if g.inflight == nil {
			g.inflight = make(map[string]*flightCall)
		}
		if c, busy := g.inflight[key]; busy {
			g.mu.Unlock()
			select {
			case <-c.done:
				if isCtxErr(c.err) && ctx.Err() == nil {
					continue // leader cancelled, we weren't: take over
				}
				return c.blob, true, c.err
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		// Not in flight: read through before becoming a leader, so a
		// stored blob is served without ever running fill.
		c := &flightCall{done: make(chan struct{})}
		g.inflight[key] = c
		g.mu.Unlock()

		switch blob, err := get(key); {
		case err == nil:
			c.blob = blob
			g.settle(key, c)
			close(c.done)
			return blob, true, nil
		case !errors.Is(err, ErrNotFound):
			// A real store failure (closed, I/O): propagate rather than
			// recompute over a broken backing store.
			c.err = err
			g.settle(key, c)
			close(c.done)
			return nil, false, err
		}

		func() {
			// Settle even if fill panics: waiters must not block forever
			// on a leader that never closes done. The panic re-raises
			// after the entry is released, so a later caller retries.
			defer func() {
				if r := recover(); r != nil {
					c.err = fmt.Errorf("cas: fill panicked: %v", r)
					g.settle(key, c)
					close(c.done)
					panic(r)
				}
				g.settle(key, c)
				close(c.done)
			}()
			c.blob, c.err = fill()
			if c.err == nil {
				// Write-behind: a failed store write must not fail the
				// computation — the value exists, it is just not durable.
				// The failure is counted so operators see it.
				if perr := put(key, c.blob); perr != nil && onPutFailure != nil {
					onPutFailure()
				}
			}
		}()
		return c.blob, false, c.err
	}
}

// settle removes the in-flight entry; the value (if any) now lives in
// the backing store, so later callers read through instead of waiting.
func (g *flightGroup) settle(key string, c *flightCall) {
	g.mu.Lock()
	if g.inflight[key] == c {
		delete(g.inflight, key)
	}
	g.mu.Unlock()
}

package cas

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// flightGroup implements GetOrFill's single-flight contract over any
// store's Get/Put, mirroring the engine's historical flightCache
// semantics: one leader computes, waiters share, failures are not
// cached, a leader's cancellation never contaminates a live waiter, and
// a panicking fill still settles its waiters before re-raising.
//
// The write-behind is asynchronous: the leader (and its waiters) are
// released the moment fill completes, and the durable put runs in a
// background goroutine. Until the put lands the blob is held in the
// pending overlay, which the stores' read paths consult, so a computed
// value is never invisible — a reader sees it from the overlay or from
// the store, with no gap between. drain blocks until every outstanding
// put has settled; stores call it from Close (so a reopened store sees
// everything a closed one computed) and expose it as Drain for callers
// about to reason about the store's resident set.
type flightGroup struct {
	mu       sync.Mutex
	inflight map[string]*flightCall
	// pending maps keys to blobs whose background put has not landed
	// yet; persists counts outstanding puts (same-key overlaps count
	// individually, the map entry dedups).
	pending  map[string][]byte
	persists int
	idle     *sync.Cond // signals persists reaching zero; lazily built
}

type flightCall struct {
	done chan struct{} // closed when blob/err are final
	blob []byte
	err  error
}

func (g *flightGroup) do(ctx context.Context, key string, get func(string) ([]byte, error), put func(string, []byte) error, onPutFailure func(), fill FillFunc) ([]byte, bool, error) {
	for {
		g.mu.Lock()
		if g.inflight == nil {
			g.inflight = make(map[string]*flightCall)
		}
		if c, busy := g.inflight[key]; busy {
			g.mu.Unlock()
			select {
			case <-c.done:
				if isCtxErr(c.err) && ctx.Err() == nil {
					continue // leader cancelled, we weren't: take over
				}
				return c.blob, true, c.err
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		// Not in flight: read through before becoming a leader, so a
		// stored blob is served without ever running fill.
		c := &flightCall{done: make(chan struct{})}
		g.inflight[key] = c
		g.mu.Unlock()

		switch blob, err := get(key); {
		case err == nil:
			c.blob = blob
			g.settle(key, c)
			close(c.done)
			return blob, true, nil
		case !errors.Is(err, ErrNotFound):
			// A real store failure (closed, I/O): propagate rather than
			// recompute over a broken backing store.
			c.err = err
			g.settle(key, c)
			close(c.done)
			return nil, false, err
		}

		func() {
			// Settle even if fill panics: waiters must not block forever
			// on a leader that never closes done. The panic re-raises
			// after the entry is released, so a later caller retries.
			defer func() {
				if r := recover(); r != nil {
					c.err = fmt.Errorf("cas: fill panicked: %v", r)
					g.settle(key, c)
					close(c.done)
					panic(r)
				}
				if c.err == nil {
					// The pending entry must be visible before the
					// in-flight entry is released: a caller arriving
					// between the two would otherwise miss in the store
					// and recompute a value that already exists.
					g.beginPersist(key, c.blob)
				}
				g.settle(key, c)
				close(c.done)
				if c.err == nil {
					// Write-behind, genuinely behind: the computation is
					// already served, durability happens off the caller's
					// critical path (concurrent puts of distinct keys
					// overlap their fsyncs). A failed store write must not
					// fail the computation — the value exists, it is just
					// not durable. The failure is counted so operators
					// see it.
					go g.finishPersist(key, c.blob, put, onPutFailure)
				}
			}()
			c.blob, c.err = fill()
		}()
		return c.blob, false, c.err
	}
}

// settle removes the in-flight entry; the value (if any) now lives in
// the backing store or the pending overlay, so later callers read
// through instead of waiting.
func (g *flightGroup) settle(key string, c *flightCall) {
	g.mu.Lock()
	if g.inflight[key] == c {
		delete(g.inflight, key)
	}
	g.mu.Unlock()
}

// beginPersist publishes a filled blob into the pending overlay before
// its background put starts.
func (g *flightGroup) beginPersist(key string, blob []byte) {
	g.mu.Lock()
	if g.pending == nil {
		g.pending = make(map[string][]byte)
	}
	g.pending[key] = blob
	g.persists++
	g.mu.Unlock()
}

// finishPersist runs one write-behind to completion and retires its
// overlay entry. Removing the entry when an overlapping put of the same
// key is still outstanding is harmless: equal keys address equal
// content, so whichever put landed already serves the same bytes.
func (g *flightGroup) finishPersist(key string, blob []byte, put func(string, []byte) error, onPutFailure func()) {
	if perr := put(key, blob); perr != nil && onPutFailure != nil {
		onPutFailure()
	}
	g.mu.Lock()
	delete(g.pending, key)
	g.persists--
	if g.persists == 0 && g.idle != nil {
		g.idle.Broadcast()
	}
	g.mu.Unlock()
}

// pendingBlob returns the overlay blob for key, if a write-behind for
// it is still outstanding. Callers must not modify the returned slice.
func (g *flightGroup) pendingBlob(key string) ([]byte, bool) {
	g.mu.Lock()
	blob, ok := g.pending[key]
	g.mu.Unlock()
	return blob, ok
}

// drain blocks until every outstanding write-behind has settled.
func (g *flightGroup) drain() {
	g.mu.Lock()
	for g.persists > 0 {
		if g.idle == nil {
			g.idle = sync.NewCond(&g.mu)
		}
		g.idle.Wait()
	}
	g.mu.Unlock()
}

package cas

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DiskStore is the durable Store: one file per content address,
// written crash-safely (temp file in the same directory, fsync, atomic
// rename, directory fsync) so a visible blob is always complete. Put
// pays the fsync pair inline; the GetOrFill write-behind defers it to
// a group commit at Drain/Close (see putBehind) so a filled value's
// durability cost never sits on its completion path. Every blob is
// framed with its key and a SHA-256 of the payload; a frame that fails
// verification — at open or at read — is quarantined into a
// subdirectory instead of served, so bit rot degrades to a cache miss,
// never to wrong data or a refused startup.
//
// On-disk frame ("<key>.blob"):
//
//	magic "NBCS" | version byte | key (uvarint len + bytes)
//	payload (uvarint len + bytes) | SHA-256(payload) (32 bytes)
//
// The embedded key pins the frame to its address: a blob renamed to
// another key's filename is detected exactly like bit rot.
type DiskStore struct {
	dir    string
	limits Limits
	fl     flightGroup
	obs    OpObserver

	mu       sync.Mutex
	idx      map[string]*diskEntry
	order    []string // oldest first (mtime at open, insertion after)
	unsynced []string // relaxed writes awaiting the next group commit
	closed   bool
	bytes    int64

	gets, hits, puts, putFailures, deletes, evictions, corruptions atomic.Uint64
}

type diskEntry struct {
	size int64 // payload bytes
}

const (
	diskMagic   = "NBCS"
	diskVersion = 1
	blobSuffix  = ".blob"
	tmpPrefix   = ".tmp-"
	// quarantineDir collects frames that failed verification, for
	// post-mortem inspection; the store never reads it back.
	quarantineDir = "quarantine"
)

// OpenDisk opens (creating if missing) a disk store rooted at dir. It
// fails fast on an unusable path: the directory must be creatable and
// writable now, not on the first Put. Leftover temp files from a crash
// mid-write are removed; frames that fail structural verification are
// quarantined and counted. If existing blobs exceed limits, the oldest
// are evicted immediately.
func OpenDisk(dir string, limits Limits) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("cas: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cas: creating data directory: %w", err)
	}
	// Probe writability explicitly: permission bits lie to root and to
	// read-only remounts alike, so try the actual operation.
	probe, err := os.CreateTemp(dir, tmpPrefix+"probe-")
	if err != nil {
		return nil, fmt.Errorf("cas: data directory %s not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())

	s := &DiskStore{dir: dir, limits: limits, idx: make(map[string]*diskEntry)}
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.evictLocked("")
	s.mu.Unlock()
	return s, nil
}

// scan builds the index from the directory: temp leftovers are deleted,
// structurally valid frames are indexed oldest-first by mtime, and
// anything else is quarantined.
func (s *DiskStore) scan() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("cas: scanning %s: %w", s.dir, err)
	}
	type found struct {
		key     string
		size    int64
		mtimeNS int64
	}
	var blobs []found
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasPrefix(name, tmpPrefix) {
			// A crash between create and rename: the frame was never
			// visible, so removing it leaves no partial blob behind.
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		key, ok := strings.CutSuffix(name, blobSuffix)
		if !ok || checkKey(key) != nil {
			s.quarantine(name)
			continue
		}
		size, err := s.verifyHeader(key)
		if err != nil {
			s.quarantine(name)
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		blobs = append(blobs, found{key: key, size: size, mtimeNS: info.ModTime().UnixNano()})
	}
	sort.Slice(blobs, func(i, j int) bool {
		if blobs[i].mtimeNS != blobs[j].mtimeNS {
			return blobs[i].mtimeNS < blobs[j].mtimeNS
		}
		return blobs[i].key < blobs[j].key
	})
	for _, b := range blobs {
		s.idx[b.key] = &diskEntry{size: b.size}
		s.order = append(s.order, b.key)
		s.bytes += b.size
	}
	return nil
}

// verifyHeader checks a frame's structure — magic, version, embedded
// key, and that the claimed payload length matches the file size —
// without reading the payload, so open cost is O(files), not O(bytes).
// The payload hash is verified on Get.
func (s *DiskStore) verifyHeader(key string) (payloadSize int64, err error) {
	f, err := os.Open(s.path(key))
	if err != nil {
		return 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	head := make([]byte, headerLen(key)+binary.MaxVarintLen64)
	n, err := io.ReadFull(f, head)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		return 0, err
	}
	head = head[:n]
	rest, err := parseHeader(head, key)
	if err != nil {
		return 0, err
	}
	payload, consumed := binary.Uvarint(rest)
	if consumed <= 0 {
		return 0, fmt.Errorf("cas: bad payload length")
	}
	headerBytes := int64(len(head) - len(rest) + consumed)
	if fi.Size() != headerBytes+int64(payload)+sha256.Size {
		return 0, fmt.Errorf("cas: frame size mismatch")
	}
	return int64(payload), nil
}

// headerLen is the fixed prefix length before the payload length:
// magic + version + key framing.
func headerLen(key string) int {
	return len(diskMagic) + 1 + binary.MaxVarintLen64 + len(key)
}

// parseHeader consumes magic, version and the embedded key, returning
// the remainder (payload length onward).
func parseHeader(b []byte, key string) ([]byte, error) {
	if len(b) < len(diskMagic)+1 || string(b[:len(diskMagic)]) != diskMagic {
		return nil, fmt.Errorf("cas: bad magic")
	}
	b = b[len(diskMagic):]
	if b[0] != diskVersion {
		return nil, fmt.Errorf("cas: unsupported frame version %d", b[0])
	}
	b = b[1:]
	klen, n := binary.Uvarint(b)
	if n <= 0 || klen > maxKeyLen || int(klen) > len(b)-n {
		return nil, fmt.Errorf("cas: bad key length")
	}
	b = b[n:]
	if string(b[:klen]) != key {
		return nil, fmt.Errorf("cas: frame key %q does not match address %q", b[:klen], key)
	}
	return b[klen:], nil
}

func (s *DiskStore) path(key string) string {
	return filepath.Join(s.dir, key+blobSuffix)
}

// quarantine moves a bad file out of the store. Quarantined frames keep
// their name (suffixed on collision) under quarantine/ for inspection.
func (s *DiskStore) quarantine(name string) {
	s.corruptions.Add(1)
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		os.Remove(filepath.Join(s.dir, name)) // can't preserve it; get it out of the way
		return
	}
	dst := filepath.Join(qdir, name)
	if _, err := os.Lstat(dst); err == nil {
		dst = fmt.Sprintf("%s.%d", dst, s.corruptions.Load())
	}
	if err := os.Rename(filepath.Join(s.dir, name), dst); err != nil {
		os.Remove(filepath.Join(s.dir, name))
	}
}

// Get implements Store: the frame is read fully and its payload hash
// verified; a frame that fails verification is quarantined and reported
// as ErrNotFound so the caller re-derives the value. The read and the
// SHA-256 check run outside the index lock, so concurrent Gets (and
// Puts of other keys) proceed in parallel.
func (s *DiskStore) Get(key string) ([]byte, error) {
	if s.obs != nil {
		start := time.Now()
		defer func() { s.obs("get", time.Since(start).Seconds()) }()
	}
	s.gets.Add(1)
	if err := checkKey(key); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	e, ok := s.idx[key]
	s.mu.Unlock()
	if !ok {
		// A blob computed by GetOrFill whose write-behind has not landed
		// yet is served from the pending overlay — a filled value is
		// never invisible to readers.
		if blob, pok := s.fl.pendingBlob(key); pok {
			s.hits.Add(1)
			return blob, nil
		}
		return nil, ErrNotFound
	}
	return s.readPlain(key, e)
}

// readPlain is Get's read half: a full heap read of the frame, payload
// hash verified, misread frames diagnosed via corruptMiss.
func (s *DiskStore) readPlain(key string, e *diskEntry) ([]byte, error) {
	raw, err := os.ReadFile(s.path(key))
	if err == nil {
		if payload, perr := extractPayload(raw, key); perr == nil {
			s.hits.Add(1)
			return payload, nil
		}
	}
	s.corruptMiss(key, e)
	return nil, ErrNotFound
}

// corruptMiss settles a read that could not be verified: if the key is
// still indexed under the same entry, the store itself is damaged —
// quarantine and count. If it is not, a Delete or eviction raced the
// read and this is an ordinary miss.
func (s *DiskStore) corruptMiss(key string, e *diskEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.idx[key]; ok && cur == e {
		s.dropCorruptLocked(key, e)
	}
}

// GetBlob is Get's zero-copy variant: where the platform supports it,
// the frame file is mapped read-only and the returned Blob's bytes
// alias the mapping, so a large payload is decoded straight from the
// page cache without a full-frame heap copy. Verification is identical
// to Get — the payload hash is checked (from the mapped bytes) before
// the Blob is returned, and an unverifiable frame is quarantined and
// reported as ErrNotFound. Where mapping is unavailable the call
// degrades to the plain read, so callers need no platform awareness
// beyond Releasing the Blob when done.
//
// Concurrent Delete, eviction or re-Put of the key never invalidates a
// returned Blob: deletes unlink the name and overwrites rename a fresh
// file over it (frames are never truncated in place), so the mapping's
// inode — already verified — lives until Release.
func (s *DiskStore) GetBlob(key string) (*Blob, error) {
	if s.obs != nil {
		start := time.Now()
		defer func() { s.obs("get", time.Since(start).Seconds()) }()
	}
	s.gets.Add(1)
	if err := checkKey(key); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	e, ok := s.idx[key]
	s.mu.Unlock()
	if !ok {
		// Same overlay read-through as Get: an unlanded write-behind is
		// served from memory (nothing to map yet).
		if blob, pok := s.fl.pendingBlob(key); pok {
			s.hits.Add(1)
			return &Blob{data: blob}, nil
		}
		return nil, ErrNotFound
	}
	raw, unmap, err := mmapFile(s.path(key))
	if err != nil {
		// Not mappable here (platform, empty file, transient open
		// failure): the plain path settles it, including the
		// corruption-vs-miss diagnosis if the file is truly unreadable.
		payload, gerr := s.readPlain(key, e)
		if gerr != nil {
			return nil, gerr
		}
		return &Blob{data: payload}, nil
	}
	payload, perr := extractPayload(raw, key)
	if perr != nil {
		_ = unmap()
		s.corruptMiss(key, e)
		return nil, ErrNotFound
	}
	s.hits.Add(1)
	return &Blob{data: payload, release: unmap}, nil
}

// extractPayload parses and verifies a full frame, returning the
// payload slice (aliasing raw).
func extractPayload(raw []byte, key string) ([]byte, error) {
	rest, err := parseHeader(raw, key)
	if err != nil {
		return nil, err
	}
	plen, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("cas: bad payload length")
	}
	rest = rest[n:]
	if uint64(len(rest)) != plen+sha256.Size {
		return nil, fmt.Errorf("cas: frame size mismatch")
	}
	payload, sum := rest[:plen], rest[plen:]
	got := sha256.Sum256(payload)
	if !bytes.Equal(got[:], sum) {
		return nil, fmt.Errorf("cas: payload checksum mismatch")
	}
	return payload, nil
}

// dropCorruptLocked quarantines key's file and removes it from the
// index.
func (s *DiskStore) dropCorruptLocked(key string, e *diskEntry) {
	s.quarantine(key + blobSuffix)
	delete(s.idx, key)
	s.bytes -= e.size
}

// Put implements Store, crash-safely: the frame lands under a temp name
// in the store directory, is fsynced, renamed over the final name, and
// the directory entry is fsynced too. A crash at any point leaves
// either the old state or the new, never a partial frame under the
// final name. The write and its fsyncs run outside the index lock, so
// concurrent Puts of distinct keys overlap instead of serialising on
// the disk (the temp-name scheme makes that safe; concurrent Puts of
// one key carry identical content-addressed bytes, so last-rename-wins
// is harmless).
func (s *DiskStore) Put(key string, blob []byte) error {
	return s.putFrame(key, blob, true)
}

// putBehind is the write-behind variant GetOrFill's background persist
// uses: the frame is written and renamed into place but not fsynced —
// the blob is immediately readable and survives a process exit, and a
// machine crash in the window loses at most the unsynced frames, each
// of which the checksum quarantines back into a cache miss at the next
// open (never wrong data). Durability is group-committed instead:
// Drain/Close fsync every relaxed frame and the directory once, so the
// per-blob fsync pair leaves the completion path without leaving the
// store's close-to-open contract.
func (s *DiskStore) putBehind(key string, blob []byte) error {
	return s.putFrame(key, blob, false)
}

// putFrame is Put's body; sync selects crash-durable (fsync file +
// directory) or relaxed group-committed writing.
func (s *DiskStore) putFrame(key string, blob []byte, sync bool) error {
	if s.obs != nil {
		start := time.Now()
		defer func() { s.obs("put", time.Since(start).Seconds()) }()
	}
	if err := checkKey(key); err != nil {
		return err
	}
	if s.limits.MaxBytes > 0 && int64(len(blob)) > s.limits.MaxBytes {
		return ErrTooLarge
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if err := s.writeFile(key, encodeFrame(key, blob), sync); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		// Closed while writing; the frame is on disk and will be
		// indexed by the next open, but this handle is done.
		return ErrClosed
	}
	if !sync {
		s.unsynced = append(s.unsynced, key)
	}
	//nbtivet:ignore lockedio the lstat must be atomic with the index update: a concurrent Delete between check and insert would leave a dangling index entry (PR 4 race fix)
	if _, err := os.Lstat(s.path(key)); errors.Is(err, fs.ErrNotExist) {
		// A Delete (or eviction) of this key won the race between our
		// rename and this index update: the file is already gone, and
		// indexing it anyway would leave a dangling entry that a later
		// Get would misdiagnose as corruption. The put stands as
		// written-then-deleted. Only provable absence skips the index —
		// a transient Lstat failure (fd exhaustion, say) must not
		// silently orphan a blob that is on disk.
		s.puts.Add(1)
		return nil
	}
	if e, ok := s.idx[key]; ok {
		s.bytes += int64(len(blob)) - e.size
		e.size = int64(len(blob))
	} else {
		s.idx[key] = &diskEntry{size: int64(len(blob))}
		s.order = append(s.order, key)
		s.bytes += int64(len(blob))
	}
	s.puts.Add(1)
	s.evictLocked(key)
	return nil
}

func encodeFrame(key string, blob []byte) []byte {
	var lenBuf [binary.MaxVarintLen64]byte
	frame := make([]byte, 0, len(diskMagic)+1+2*binary.MaxVarintLen64+len(key)+len(blob)+sha256.Size)
	frame = append(frame, diskMagic...)
	frame = append(frame, diskVersion)
	frame = append(frame, lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(key)))]...)
	frame = append(frame, key...)
	frame = append(frame, lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(blob)))]...)
	frame = append(frame, blob...)
	sum := sha256.Sum256(blob)
	return append(frame, sum[:]...)
}

func (s *DiskStore) writeFile(key string, frame []byte, sync bool) error {
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("cas: creating temp blob: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(frame); err != nil {
		tmp.Close()
		return fmt.Errorf("cas: writing blob: %w", err)
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("cas: syncing blob: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cas: closing blob: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return fmt.Errorf("cas: publishing blob: %w", err)
	}
	if !sync {
		return nil
	}
	return s.syncDir()
}

// syncPending group-commits every relaxed write since the last commit:
// each unsynced frame is fsynced, then the directory once — N+1 fsyncs
// for N blobs, against the 2N the per-put path would have paid, and all
// of them off the fill's completion path. A frame already evicted or
// deleted is skipped; a frame that cannot be synced is counted as a put
// failure (the blob is still readable, it is just not crash-durable).
func (s *DiskStore) syncPending() {
	s.mu.Lock()
	pending := s.unsynced
	s.unsynced = nil
	s.mu.Unlock()
	if len(pending) == 0 {
		return
	}
	synced := false
	for _, key := range pending {
		f, err := os.Open(s.path(key))
		if err != nil {
			if !os.IsNotExist(err) {
				s.putFailures.Add(1)
			}
			continue
		}
		if err := f.Sync(); err != nil {
			s.putFailures.Add(1)
		} else {
			synced = true
		}
		f.Close()
	}
	if synced {
		_ = s.syncDir()
	}
}

// syncDir persists the directory entry itself, so the rename survives a
// crash.
func (s *DiskStore) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("cas: syncing directory: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("cas: syncing directory: %w", err)
	}
	return nil
}

// evictLocked drops the oldest blobs until the limits hold, shielding
// keep.
func (s *DiskStore) evictLocked(keep string) {
	over := func() bool {
		return (s.limits.MaxEntries > 0 && len(s.idx) > s.limits.MaxEntries) ||
			(s.limits.MaxBytes > 0 && s.bytes > s.limits.MaxBytes)
	}
	for i := 0; i < len(s.order) && over(); i++ {
		key := s.order[i]
		e, ok := s.idx[key]
		if !ok || key == keep {
			continue
		}
		//nbtivet:ignore lockedio unlink must be atomic with the index removal or a racing Put of the same key could index a file eviction then deletes
		os.Remove(s.path(key))
		delete(s.idx, key)
		s.bytes -= e.size
		s.evictions.Add(1)
	}
	if len(s.order) > 2*(len(s.idx)+1) {
		live := s.order[:0]
		for _, key := range s.order {
			if _, ok := s.idx[key]; ok {
				live = append(live, key)
			}
		}
		s.order = live
	}
}

// Delete implements Store.
func (s *DiskStore) Delete(key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	e, ok := s.idx[key]
	if !ok {
		return ErrNotFound
	}
	//nbtivet:ignore lockedio unlink must be atomic with the index removal: dropping the lock in between lets a racing Put re-index the doomed file (PR 4 race fix)
	if err := os.Remove(s.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("cas: deleting blob: %w", err)
	}
	delete(s.idx, key)
	s.bytes -= e.size
	s.deletes.Add(1)
	return nil
}

// List implements Store: resident blobs, oldest first.
func (s *DiskStore) List() ([]Stat, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	out := make([]Stat, 0, len(s.idx))
	for _, key := range s.order {
		if e, ok := s.idx[key]; ok {
			out = append(out, Stat{Key: key, Size: e.size})
		}
	}
	return out, nil
}

// Stat implements Store.
func (s *DiskStore) Stat(key string) (Stat, error) {
	if err := checkKey(key); err != nil {
		return Stat{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Stat{}, ErrClosed
	}
	e, ok := s.idx[key]
	if !ok {
		return Stat{}, ErrNotFound
	}
	return Stat{Key: key, Size: e.size}, nil
}

// GetOrFill implements Store (see the interface contract).
func (s *DiskStore) GetOrFill(ctx context.Context, key string, fill FillFunc) ([]byte, bool, error) {
	if err := checkKey(key); err != nil {
		return nil, false, err
	}
	return s.fl.do(ctx, key, s.Get, s.putBehind, func() { s.putFailures.Add(1) }, fill)
}

// Metrics implements Store.
func (s *DiskStore) Metrics() Metrics {
	s.mu.Lock()
	entries, bytes := len(s.idx), s.bytes
	s.mu.Unlock()
	return Metrics{
		Gets:        s.gets.Load(),
		Hits:        s.hits.Load(),
		Puts:        s.puts.Load(),
		PutFailures: s.putFailures.Load(),
		Deletes:     s.deletes.Load(),
		Evictions:   s.evictions.Load(),
		Corruptions: s.corruptions.Load(),
		Entries:     entries,
		Bytes:       bytes,
	}
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

// SetObserver installs the per-operation latency observer. Install it
// before the store is shared across goroutines.
func (s *DiskStore) SetObserver(fn OpObserver) { s.obs = fn }

// Drain blocks until every write-behind from a completed GetOrFill fill
// has landed on disk, then group-commits their durability (see
// syncPending). Callers about to reason about the resident set — List
// for an inventory, a reset that must not race a late put back in — or
// about to snapshot the directory drain first.
func (s *DiskStore) Drain() {
	s.fl.drain()
	s.syncPending()
}

// Close implements Store: outstanding write-behinds are drained and
// group-committed (so a reopened store sees everything this one
// computed), then the index is released; blobs stay on disk for the
// next open.
func (s *DiskStore) Close() error {
	s.fl.drain()
	s.syncPending()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.idx = nil
	s.order = nil
	s.bytes = 0
	return nil
}

package cas

import (
	"fmt"
	"testing"
)

// BenchmarkDiskStore measures the persistence hot paths: crash-safe Put
// (write + fsync + rename + dir fsync) and verified Get (read + header
// parse + SHA-256 check) at a job-result-sized blob. This is the floor
// under every warm-restart and write-through number.
func BenchmarkDiskStore(b *testing.B) {
	blob := make([]byte, 4096)
	for i := range blob {
		blob[i] = byte(i)
	}
	b.Run("put", func(b *testing.B) {
		s, err := OpenDisk(b.TempDir(), Limits{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.SetBytes(int64(len(blob)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Put(fmt.Sprintf("job-%d", i), blob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("get", func(b *testing.B) {
		s, err := OpenDisk(b.TempDir(), Limits{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		if err := s.Put("job-hot", blob); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(blob)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Get("job-hot"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

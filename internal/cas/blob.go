package cas

import "errors"

// Blob is a read-only view of one stored payload whose backing memory
// may be a file mapping rather than a heap buffer. It is the zero-copy
// read path of DiskStore (see GetBlob): the caller decodes straight out
// of Bytes and then Releases the view, instead of paying a full-frame
// heap read for bytes it consumes once. Callers must not modify Bytes,
// and must not touch it after Release.
type Blob struct {
	data    []byte
	release func() error
}

// Bytes returns the payload. The slice is valid until Release.
func (b *Blob) Bytes() []byte { return b.data }

// Release returns the backing memory (unmapping it when mapped). It is
// idempotent: the first call settles, later calls are no-ops.
func (b *Blob) Release() error {
	if b == nil {
		return nil
	}
	if b.release == nil {
		b.data = nil
		return nil
	}
	rel := b.release
	b.release = nil
	b.data = nil
	return rel()
}

// errMmapUnavailable marks a mapping attempt that should silently fall
// back to an ordinary read: an unsupported platform, or a file shape
// the platform cannot map. It is internal — GetBlob never surfaces it.
var errMmapUnavailable = errors.New("cas: mmap unavailable")

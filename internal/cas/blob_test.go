package cas

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

func TestGetBlobMatchesGet(t *testing.T) {
	s, err := OpenDisk(t.TempDir(), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	payload := bytes.Repeat([]byte("columnar bytes "), 1000)
	if err := s.Put("trace-a", payload); err != nil {
		t.Fatal(err)
	}
	b, err := s.GetBlob("trace-a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), payload) {
		t.Fatalf("GetBlob bytes differ from Put payload (%d vs %d bytes)", len(b.Bytes()), len(payload))
	}
	plain, err := s.Get("trace-a")
	if err != nil || !bytes.Equal(plain, b.Bytes()) {
		t.Fatalf("Get = %v, bytes equal = %v", err, bytes.Equal(plain, b.Bytes()))
	}
	if err := b.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := b.Release(); err != nil {
		t.Fatalf("second Release: %v", err)
	}
	if b.Bytes() != nil {
		t.Fatal("Bytes after Release should be nil")
	}
	var nilBlob *Blob
	if err := nilBlob.Release(); err != nil {
		t.Fatalf("nil Release: %v", err)
	}
}

func TestGetBlobAbsentAndClosed(t *testing.T) {
	s, err := OpenDisk(t.TempDir(), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetBlob("trace-missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetBlob absent = %v, want ErrNotFound", err)
	}
	if _, err := s.GetBlob("bad key!"); !errors.Is(err, ErrBadKey) {
		t.Fatalf("GetBlob bad key = %v, want ErrBadKey", err)
	}
	s.Close()
	if _, err := s.GetBlob("trace-a"); !errors.Is(err, ErrClosed) {
		t.Fatalf("GetBlob closed = %v, want ErrClosed", err)
	}
}

// A corrupt frame read through GetBlob is quarantined exactly like a
// corrupt frame read through Get: ErrNotFound now, a corruption count,
// and the file moved aside.
func TestGetBlobCorruptQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if err := s.Put("trace-rot", []byte("soon to be flipped")); err != nil {
		t.Fatal(err)
	}
	path := s.path("trace-rot")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // flip a checksum byte
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetBlob("trace-rot"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetBlob corrupt = %v, want ErrNotFound", err)
	}
	if got := s.Metrics().Corruptions; got != 1 {
		t.Fatalf("Corruptions = %d, want 1", got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt frame still at %s (err %v)", path, err)
	}
}

// Deleting a key while a Blob is live must not invalidate the Blob: the
// mapping (or fallback copy) pins the verified bytes, the delete only
// unlinks the name.
func TestGetBlobSurvivesDelete(t *testing.T) {
	s, err := OpenDisk(t.TempDir(), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	payload := bytes.Repeat([]byte{0x5a}, 8192)
	if err := s.Put("trace-pinned", payload); err != nil {
		t.Fatal(err)
	}
	b, err := s.GetBlob("trace-pinned")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release()
	if err := s.Delete("trace-pinned"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), payload) {
		t.Fatal("blob bytes changed after Delete")
	}
}

package engine

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"nbticache/internal/cas"
	"nbticache/internal/trace"
)

// openTraceBlobs opens the engine's persisted trace layer directly —
// the same store New wires up — so tests can rewrite blobs between
// engine lifetimes.
func openTraceBlobs(dir string) (*cas.DiskStore, error) {
	return cas.OpenDisk(filepath.Join(dir, "traces"), cas.Limits{})
}

// encodeLegacyTraceBlob renders the row-form (NBTB v1) blob earlier
// versions persisted: signature fields, then the trace's canonical
// binary encoding. Production code only decodes this format now, so
// the writer lives with the tests that prove the compatibility path.
func encodeLegacyTraceBlob(st *storedTrace) ([]byte, error) {
	w := &blobWriter{}
	w.raw([]byte(traceBlobMagic))
	w.byte(blobVersion)
	sig := st.info.Signature
	w.uvarint(uint64(sig.Banks))
	w.f64s(sig.UsefulIdleness)
	w.f64s(sig.SleepFractions)
	w.uvarint(sig.Breakeven)
	var buf bytes.Buffer
	if err := st.cols.WriteBinaryColumns(&buf); err != nil {
		return nil, err
	}
	w.raw(buf.Bytes())
	return w.buf, nil
}

// fuzzTrace builds a deterministic upload-shaped trace without the
// *testing.T plumbing of uploadableTrace (fuzz setup holds a *testing.F).
func fuzzTrace(name string, n int, seed int64) *trace.Trace {
	tr := &trace.Trace{Name: name}
	rng := rand.New(rand.NewSource(seed))
	cycle := uint64(0)
	for i := 0; i < n; i++ {
		cycle += uint64(rng.Intn(9) + 1)
		tr.Append(cycle, uint64(rng.Intn(1<<14)), trace.Kind(rng.Intn(2)))
	}
	tr.Cycles = cycle + 50
	return tr
}

// FuzzColumnarBlob drives decodeTraceBlob with arbitrary (key, bytes)
// pairs: the decoder must reject or accept, never panic or over-
// allocate, and anything accepted must verify its own content address
// and agree bit-for-bit with the legacy row-form decoder. The seeds pin
// both valid formats under their true keys, the huge-count header, and
// the magic/version edges.
func FuzzColumnarBlob(f *testing.F) {
	e := testEngine(f, 1)
	info, _, err := e.AddTrace(fuzzTrace("fuzz-seed", 600, 17))
	if err != nil {
		f.Fatal(err)
	}
	st, ok := e.store.resolve(info.ID)
	if !ok {
		f.Fatal("seed trace vanished")
	}
	nbtc, err := encodeTraceBlob(st)
	if err != nil {
		f.Fatal(err)
	}
	nbtb, err := encodeLegacyTraceBlob(st)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(info.ID, nbtc)
	f.Add(info.ID, nbtb)
	f.Add(info.ID, nbtc[:len(nbtc)/2])                     // torn columnar blob
	f.Add(info.ID, nbtb[:len(nbtb)/2])                     // torn legacy blob
	f.Add("trace-0000", nbtc)                              // misfiled
	f.Add(info.ID, []byte("NBTC\x01"))                     // headerless columnar
	f.Add(info.ID, []byte("NBTC\x07"))                     // unsupported version
	f.Add(info.ID, []byte("NBTB\x01"))                     // headerless legacy
	f.Add(info.ID, []byte("XXXX\x01junk"))                 // wrong magic
	f.Add(info.ID, append([]byte("NBTC\x01\x00\x00\x00\x00\x00"), 0xff, 0xff, 0xff, 0xff, 0x7f)) // absurd count claim
	f.Fuzz(func(t *testing.T, key string, data []byte) {
		got, _, err := decodeTraceBlob(key, data)
		if err != nil {
			return
		}
		// Accepted: the columns must be simulation-grade and the blob
		// must answer for the key it was filed under.
		if verr := got.cols.Validate(); verr != nil {
			t.Fatalf("decoder accepted invalid columns: %v", verr)
		}
		id, _, err := ColumnsContentID(got.cols)
		if err != nil {
			t.Fatalf("accepted blob has no content address: %v", err)
		}
		if id != key {
			t.Fatalf("decoder accepted blob %s under key %s", id, key)
		}
		// Columnar round trip: re-encode, decode, identical store entry.
		re, err := encodeTraceBlob(got)
		if err != nil {
			t.Fatalf("accepted blob does not re-encode: %v", err)
		}
		again, legacy, err := decodeTraceBlob(key, re)
		if err != nil {
			t.Fatalf("re-encoded blob rejected: %v", err)
		}
		if legacy {
			t.Fatal("re-encoded blob reported as legacy")
		}
		if !reflect.DeepEqual(again.info, got.info) || !reflect.DeepEqual(again.cols, got.cols) {
			t.Fatal("columnar round trip diverged")
		}
		// Differential oracle against the row-form decoder: the same
		// trace rendered as a legacy NBTB blob must decode to the same
		// bits — info and columns — as the columnar path produced.
		lb, err := encodeLegacyTraceBlob(got)
		if err != nil {
			t.Fatalf("legacy render failed: %v", err)
		}
		rowSt, legacy, err := decodeTraceBlob(key, lb)
		if err != nil {
			t.Fatalf("legacy decode of accepted trace failed: %v", err)
		}
		if !legacy {
			t.Fatal("NBTB blob not reported as legacy")
		}
		if !reflect.DeepEqual(rowSt.info, got.info) || !reflect.DeepEqual(rowSt.cols, got.cols) {
			t.Fatal("columnar and legacy decoders disagree")
		}
	})
}

// TestTruncatedTraceBlobQuarantined is the crash-mid-write drill: a
// trace blob torn in half on disk must degrade a warm start to
// re-derivation — quarantined and counted, never resident, never
// corrupting results — and re-uploading the same bytes must restore the
// same content address with the persisted job result still serving.
func TestTruncatedTraceBlobQuarantined(t *testing.T) {
	dir := t.TempDir()
	e1 := persistentEngine(t, dir)
	info, _, err := e1.AddTrace(uploadableTrace(t, "torn", 2000, 7))
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{TraceID: info.ID, Banks: 4}
	first, err := e1.RunJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	e1.Close()

	// Tear the persisted frame mid-file: the shape a crash inside a
	// non-atomic writer would leave. (The store's own writes are temp +
	// rename, so this also proves the reader distrusts the rename
	// discipline rather than assuming it.)
	path := filepath.Join(dir, "traces", info.ID+".blob")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := persistentEngine(t, dir)
	if infos := e2.TraceInfos(); len(infos) != 0 {
		t.Fatalf("torn trace blob warm-loaded: %+v", infos)
	}
	if st := e2.Stats(); st.PersistCorruptions == 0 {
		t.Error("torn blob not counted as corruption")
	}
	if entries, err := os.ReadDir(filepath.Join(dir, "traces", "quarantine")); err != nil || len(entries) == 0 {
		t.Errorf("torn blob not quarantined: %v, %v", entries, err)
	}
	// The already-simulated point still serves from the (untouched)
	// result store — content-addressed results do not depend on the
	// trace staying resident — and the bits match the pre-crash run.
	res, err := e2.RunJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("persisted job result not served after trace corruption")
	}
	if !reflect.DeepEqual(res.Run, first.Run) || !reflect.DeepEqual(res.Projection, first.Projection) {
		t.Error("restored result diverges from the pre-crash simulation")
	}
	// A fresh point on the lost trace needs a simulation, and fails as
	// unknown — a re-derivable condition, not a wrong answer.
	fresh := JobSpec{TraceID: info.ID, Banks: 8}
	if _, err := e2.RunJob(context.Background(), fresh); err == nil || !strings.Contains(err.Error(), "unknown trace") {
		t.Fatalf("fresh job against torn trace: %v, want unknown-trace error", err)
	}
	// Re-uploading the same bytes restores the same content address and
	// the fresh point simulates normally.
	info2, existed, err := e2.AddTrace(uploadableTrace(t, "torn", 2000, 7))
	if err != nil {
		t.Fatal(err)
	}
	if existed || info2.ID != info.ID {
		t.Fatalf("re-upload: existed=%v id=%s, want fresh admission of %s", existed, info2.ID, info.ID)
	}
	if res, err := e2.RunJob(context.Background(), fresh); err != nil || res.Failed() {
		t.Fatalf("fresh job after re-upload: %+v, %v", res, err)
	}
}

// TestLegacyTraceBlobWarmLoad proves the compatibility contract: a
// store holding only row-form (NBTB) blobs warm-loads with zero
// re-measurement and zero re-simulation, and the first load transcodes
// the blob to columnar (NBTC) form in place.
func TestLegacyTraceBlobWarmLoad(t *testing.T) {
	dir := t.TempDir()
	e1 := persistentEngine(t, dir)
	info, _, err := e1.AddTrace(uploadableTrace(t, "legacy", 1500, 23))
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{TraceID: info.ID, Banks: 2}
	first, err := e1.RunJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := e1.store.resolve(info.ID)
	if !ok {
		t.Fatal("stored trace vanished")
	}
	legacyBlob, err := encodeLegacyTraceBlob(st)
	if err != nil {
		t.Fatal(err)
	}
	e1.Close()

	// Rewrite the persisted trace as the row-form blob an earlier
	// version would have left, through the store's own framing.
	blobs, err := openTraceBlobs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := blobs.Put(info.ID, legacyBlob); err != nil {
		t.Fatal(err)
	}
	if err := blobs.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := persistentEngine(t, dir)
	infos := e2.TraceInfos()
	if len(infos) != 1 || infos[0].ID != info.ID {
		t.Fatalf("legacy blob did not warm-load: %+v", infos)
	}
	if !reflect.DeepEqual(infos[0].Signature, info.Signature) {
		t.Error("signature did not survive the legacy format")
	}
	res, err := e2.RunJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("job re-simulated after legacy warm load")
	}
	if !reflect.DeepEqual(res.Run, first.Run) || !reflect.DeepEqual(res.Projection, first.Projection) {
		t.Error("legacy-loaded result diverges from the original simulation")
	}
	stats := e2.Stats()
	if stats.RunsExecuted != 0 {
		t.Errorf("runs executed after legacy warm load = %d, want 0", stats.RunsExecuted)
	}
	if stats.TracesBuilt != 0 {
		t.Errorf("synthetic traces built after legacy warm load = %d, want 0", stats.TracesBuilt)
	}
	// The load transcoded the blob in place: the persisted form is
	// columnar now, and it still decodes to the same entry.
	blobs2, err := openTraceBlobs(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer blobs2.Close()
	payload, err := blobs2.Get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(payload, []byte(traceBlobMagicCol)) {
		t.Fatalf("blob not transcoded to %s after legacy load (starts %q)", traceBlobMagicCol, payload[:4])
	}
	got, legacy, err := decodeTraceBlob(info.ID, payload)
	if err != nil {
		t.Fatal(err)
	}
	if legacy {
		t.Error("transcoded blob still reports legacy")
	}
	if !reflect.DeepEqual(got.cols, st.cols) {
		t.Error("transcoded blob decodes to different columns")
	}
}

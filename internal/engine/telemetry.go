package engine

import (
	"time"

	"nbticache/internal/cas"
	"nbticache/internal/obs"
)

// Phase names: the values of the nbtiserved_job_phase_seconds{phase}
// label, the engine.<phase> span names, and the keys of JobTiming.
const (
	phaseQueue    = "queue"    // enqueue to worker pickup
	phaseResolve  = "resolve"  // workload resolution (trace lookup or generation)
	phaseSimulate = "simulate" // core trace simulation
	phaseProject  = "project"  // aging projection
	phasePersist  = "persist"  // result-cache read-through + write-behind
)

// phaseRec is one timed phase of a job execution.
type phaseRec struct {
	name  string
	start time.Time
	dur   time.Duration
}

// phaseClock collects a job's phase timings on the worker goroutine.
// A nil clock records nothing, so the uninstrumented (Nop telemetry)
// path carries no collection cost. The fixed backing array keeps the
// clock to one allocation, and each worker reuses its clock across
// jobs (see Engine.worker), so the per-job cost is a reset. Not safe
// for concurrent use; only the owning worker (and, via the
// single-flight layers, only the leader's closures) touches it.
type phaseClock struct {
	n    int
	recs [8]phaseRec
}

func (p *phaseClock) add(name string, start time.Time, dur time.Duration) {
	if p == nil || p.n == len(p.recs) {
		return
	}
	p.recs[p.n] = phaseRec{name: name, start: start, dur: dur}
	p.n++
}

func (p *phaseClock) reset() { p.n = 0 }

// phases returns the recorded slice; valid until the next reset.
func (p *phaseClock) phases() []phaseRec {
	if p == nil {
		return nil
	}
	return p.recs[:p.n]
}

// timing folds the collected phases into the JSON-facing summary.
func (p *phaseClock) timing(total time.Duration) *JobTiming {
	if p == nil {
		return nil
	}
	t := &JobTiming{TotalMs: durMs(total)}
	for _, r := range p.phases() {
		ms := durMs(r.dur)
		switch r.name {
		case phaseQueue:
			t.QueueMs = ms
		case phaseResolve:
			t.ResolveMs = ms
		case phaseSimulate:
			t.SimulateMs = ms
		case phaseProject:
			t.ProjectMs = ms
		case phasePersist:
			t.PersistMs = ms
		}
	}
	return t
}

func durMs(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// engineMetrics holds the engine's live metric handles. With Nop
// telemetry every handle is nil and every call on it is a no-op.
type engineMetrics struct {
	jobPhase *obs.HistogramVec // nbtiserved_job_phase_seconds{phase}
	blobOp   *obs.HistogramVec // nbtiserved_blob_op_seconds{store,op}
	// Per-phase handles, resolved once: With() joins a label key on
	// every call, and these sit on every job's execution path.
	phaseH [5]*obs.Histogram
}

// phaseIdx maps a phase name to its slot in phaseH / span-name tables.
func phaseIdx(name string) int {
	switch name {
	case phaseQueue:
		return 0
	case phaseResolve:
		return 1
	case phaseSimulate:
		return 2
	case phaseProject:
		return 3
	default:
		return 4 // phasePersist
	}
}

// phaseSpanNames are the engine.<phase> span names, indexed by
// phaseIdx, so the hot path never concatenates.
var phaseSpanNames = [5]string{
	"engine.queue", "engine.resolve", "engine.simulate", "engine.project", "engine.persist",
}

// opObservable is how the engine installs latency observers without
// widening the cas.Store interface: both built-in stores implement it.
type opObservable interface{ SetObserver(cas.OpObserver) }

// registerMetrics builds the engine's metric families on the telemetry
// registry and mirrors the Stats counters into it at every scrape, so
// /metrics keeps its historical series names while gaining the
// histogram families. No-ops entirely on a Nop registry.
func (e *Engine) registerMetrics() {
	r := e.tel.Metrics
	e.met = engineMetrics{
		jobPhase: r.HistogramVec("nbtiserved_job_phase_seconds",
			"Wall time of one phase of a sweep job's execution.", nil, "phase"),
		blobOp: r.HistogramVec("nbtiserved_blob_op_seconds",
			"Latency of one persistence-layer blob operation.", nil, "store", "op"),
	}
	for _, name := range []string{phaseQueue, phaseResolve, phaseSimulate, phaseProject, phasePersist} {
		e.met.phaseH[phaseIdx(name)] = e.met.jobPhase.With(name)
	}
	if r == nil {
		return
	}
	e.observeStore(e.resultStore, "results")
	e.observeStore(e.traceBlobs, "traces")

	// The Stats mirror: every historical /metrics series, refreshed at
	// scrape time so the exposition and the JSON stats never disagree.
	rows := []struct {
		name, typ, help string
		read            func(Stats) float64
	}{
		{"nbtiserved_workers", "gauge", "Worker pool size.", func(s Stats) float64 { return float64(s.Workers) }},
		{"nbtiserved_queue_depth", "gauge", "Jobs waiting for a worker.", func(s Stats) float64 { return float64(s.QueueDepth) }},
		{"nbtiserved_active_workers", "gauge", "Workers currently simulating.", func(s Stats) float64 { return float64(s.ActiveWorkers) }},
		{"nbtiserved_sweeps_total", "counter", "Sweeps submitted.", func(s Stats) float64 { return float64(s.SweepsTotal) }},
		{"nbtiserved_jobs_submitted_total", "counter", "Job slots enqueued.", func(s Stats) float64 { return float64(s.JobsSubmitted) }},
		{"nbtiserved_jobs_completed_total", "counter", "Job slots resolved successfully.", func(s Stats) float64 { return float64(s.JobsCompleted) }},
		{"nbtiserved_jobs_failed_total", "counter", "Job slots resolved with an error.", func(s Stats) float64 { return float64(s.JobsFailed) }},
		{"nbtiserved_jobs_canceled_total", "counter", "Job slots resolved by cancellation.", func(s Stats) float64 { return float64(s.JobsCanceled) }},
		{"nbtiserved_cache_hits_total", "counter", "Result-cache hits.", func(s Stats) float64 { return float64(s.CacheHits) }},
		{"nbtiserved_cache_misses_total", "counter", "Result-cache misses.", func(s Stats) float64 { return float64(s.CacheMisses) }},
		{"nbtiserved_cached_results", "gauge", "Distinct results resident in the cache.", func(s Stats) float64 { return float64(s.CachedResults) }},
		{"nbtiserved_runs_executed_total", "counter", "Trace simulations performed.", func(s Stats) float64 { return float64(s.RunsExecuted) }},
		{"nbtiserved_runs_shared_total", "counter", "Jobs that reused another job's simulation.", func(s Stats) float64 { return float64(s.RunsShared) }},
		{"nbtiserved_traces_built_total", "counter", "Synthetic traces generated.", func(s Stats) float64 { return float64(s.TracesBuilt) }},
		{"nbtiserved_traces_uploaded_total", "counter", "Real traces admitted via POST /v1/traces.", func(s Stats) float64 { return float64(s.TracesUploaded) }},
		{"nbtiserved_traces_stored", "gauge", "Uploaded traces resident in the store.", func(s Stats) float64 { return float64(s.TracesStored) }},
		{"nbtiserved_persistent", "gauge", "1 when a data directory backs the engine.", func(s Stats) float64 { return b2f(s.Persistent) }},
		{"nbtiserved_persist_hits_total", "counter", "Blobs served from the persistence layer.", func(s Stats) float64 { return float64(s.PersistHits) }},
		{"nbtiserved_persist_misses_total", "counter", "Persistence reads that found nothing.", func(s Stats) float64 { return float64(s.PersistMisses) }},
		{"nbtiserved_persist_writes_total", "counter", "Blobs written through to the persistence layer.", func(s Stats) float64 { return float64(s.PersistWrites) }},
		{"nbtiserved_persist_write_failures_total", "counter", "Write-behinds that failed (value still served).", func(s Stats) float64 { return float64(s.PersistWriteFailures) }},
		{"nbtiserved_persist_evictions_total", "counter", "Result blobs evicted by the capacity bound.", func(s Stats) float64 { return float64(s.PersistEvictions) }},
		{"nbtiserved_persist_corruptions_total", "counter", "Blobs quarantined as corrupt (checksum or codec).", func(s Stats) float64 { return float64(s.PersistCorruptions) }},
		{"nbtiserved_result_blobs", "gauge", "Job-result blobs resident in the store.", func(s Stats) float64 { return float64(s.ResultBlobs) }},
		{"nbtiserved_trace_blobs", "gauge", "Trace blobs resident in the store.", func(s Stats) float64 { return float64(s.TraceBlobs) }},
		{"nbtiserved_result_blob_bytes", "gauge", "Payload bytes of resident job-result blobs.", func(s Stats) float64 { return float64(s.ResultBlobBytes) }},
		{"nbtiserved_trace_blob_bytes", "gauge", "Payload bytes of resident trace blobs.", func(s Stats) float64 { return float64(s.TraceBlobBytes) }},
	}
	sets := make([]func(Stats), 0, len(rows))
	for _, row := range rows {
		read := row.read
		if row.typ == "counter" {
			c := r.Counter(row.name, row.help)
			sets = append(sets, func(st Stats) { c.Set(uint64(read(st))) })
		} else {
			g := r.Gauge(row.name, row.help)
			sets = append(sets, func(st Stats) { g.Set(read(st)) })
		}
	}
	r.OnCollect(func() {
		st := e.Stats()
		for _, set := range sets {
			set(st)
		}
	})
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// observeStore hooks a cas store's Get/Put latencies into the blob-op
// histogram family, labeled by keyspace.
func (e *Engine) observeStore(store cas.Store, label string) {
	s, ok := store.(opObservable)
	if !ok || store == nil {
		return
	}
	get := e.met.blobOp.With(label, "get")
	put := e.met.blobOp.With(label, "put")
	s.SetObserver(func(op string, seconds float64) {
		if op == "get" {
			get.Observe(seconds)
		} else {
			put.Observe(seconds)
		}
	})
}

// executeObserved is the instrumented body of Engine.execute: it times
// the queue wait and each execution phase, feeds the phase histogram,
// annotates the result with its timing summary, and records the job's
// span batch (one job span plus one child per phase) under the sweep's
// trace in a single tracer call.
func (e *Engine) executeObserved(t *task, spec JobSpec, pc *phaseClock) *JobResult {
	h := t.h
	start := time.Now()
	pc.reset()
	pc.add(phaseQueue, t.enq, start.Sub(t.enq))
	res, err := e.runJobTimed(h.ctx, spec, true, pc)
	if err != nil {
		res = failedResult(spec, err)
	}
	res.Timing = pc.timing(time.Since(t.enq))

	recs := pc.phases()
	for _, rec := range recs {
		e.met.phaseH[phaseIdx(rec.name)].Observe(rec.dur.Seconds())
	}
	if sc := h.tsc; sc.Valid() {
		parent, _ := obs.ParseID(sc.SpanID)
		jobID := obs.NewID()
		// The batch and attrs never outlive the call — RecordBatch copies
		// both into the trace buffer — so they live on this stack frame.
		attrs := [4]string{"job_id", res.ID, "sweep_id", h.ID}
		var spans [len(phaseSpanNames) + 3]obs.CompactSpan
		spans[0] = obs.CompactSpan{
			SpanID: jobID, ParentID: parent, Name: "engine.job",
			Start: t.enq, DurationMs: durMs(time.Since(t.enq)),
			Attrs: attrs[:],
		}
		n := 1
		for _, rec := range recs {
			spans[n] = obs.CompactSpan{
				SpanID: obs.NewID(), ParentID: jobID,
				Name: phaseSpanNames[phaseIdx(rec.name)], Start: rec.start, DurationMs: durMs(rec.dur),
			}
			n++
		}
		e.tel.Tracer.RecordBatch(sc.TraceID, spans[:n]...)
	}
	return res
}

package engine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"nbticache/internal/core"
	"nbticache/internal/pmu"
	"nbticache/internal/power"
	"nbticache/internal/trace"
	"nbticache/internal/workload"
)

// This file is the engine's at-rest codec: the versioned binary forms
// job results and uploaded traces take inside a cas.Store. Both blobs
// open with a magic and a version byte so a future layout change reads
// old stores instead of misparsing them, and both are self-verifying
// against their content address — a job blob re-derives its job ID from
// the decoded spec, a trace blob re-hashes the embedded canonical trace
// encoding — so a blob filed under the wrong key is rejected exactly
// like bit rot, independent of the store's own framing checksum.
//
// Job-result blob ("NBJR" v1): the normalised JobSpec, the RunResult,
// and the Projection, fields in struct order; uvarint/varint integers,
// IEEE-754 bits for floats, length-prefixed strings. Only successful
// results are persisted (failures are never cached), so Err/Canceled/
// Cached are not part of the format. Per-bank idle histograms are a
// diagnostic enabled only by direct core use — engine results never
// carry them — and are not persisted.
//
// Trace blob ("NBTC" v1, columnar): the admission-time Signature, then
// the trace in struct-of-arrays column form — name, access count, span,
// a delta-uvarint cycles column, a zig-zag-delta-varint addrs column,
// and a run-length-encoded kinds column (internal/trace's column
// codecs). The decoded columns are exactly the layout the batch kernel
// consumes, so a warm start deserialises straight into simulation input
// with zero per-access struct materialisation or transposition. The
// blob stays self-verifying: the decoder re-derives the content address
// by streaming the canonical row encoding from the columns
// (WriteBinaryColumns emits byte-identical v1 bytes) through the hash.
//
// Trace blob ("NBTB" v1, legacy row form): the Signature, then the
// trace's canonical binary (v1) encoding. Still decoded — stores
// written by earlier versions warm-load with zero re-measurement — and
// transcoded to NBTC on the next persist.

const (
	jobBlobMagic      = "NBJR"
	traceBlobMagic    = "NBTB" // legacy row-form trace blob (decode only)
	traceBlobMagicCol = "NBTC" // columnar trace blob (current)
	blobVersion       = 1
)

// ErrBadBlob is returned when a stored blob does not decode. The engine
// treats it like store-level corruption: drop, count, re-derive.
var ErrBadBlob = errors.New("engine: bad blob")

// Decode caps: a blob is trusted no further than the store's checksum,
// so claimed lengths are bounded before they size anything.
const (
	maxBlobString = 1 << 12
	maxBlobSlice  = 1 << 16
)

// blobWriter accumulates the wire form.
type blobWriter struct {
	buf []byte
	tmp [binary.MaxVarintLen64]byte
}

func (w *blobWriter) raw(p []byte) { w.buf = append(w.buf, p...) }
func (w *blobWriter) byte(b byte)  { w.buf = append(w.buf, b) }
func (w *blobWriter) uvarint(v uint64) {
	w.buf = append(w.buf, w.tmp[:binary.PutUvarint(w.tmp[:], v)]...)
}
func (w *blobWriter) varint(v int64) {
	w.buf = append(w.buf, w.tmp[:binary.PutVarint(w.tmp[:], v)]...)
}
func (w *blobWriter) f64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	w.raw(b[:])
}
func (w *blobWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *blobWriter) f64s(vs []float64) {
	w.uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.f64(v)
	}
}

// blobReader consumes the wire form, latching the first error so
// callers can decode a full struct and check once.
type blobReader struct {
	b   []byte
	err error
}

func (r *blobReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrBadBlob, fmt.Sprintf(format, args...))
	}
}

func (r *blobReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *blobReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *blobReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.fail("truncated byte")
		return 0
	}
	b := r.b[0]
	r.b = r.b[1:]
	return b
}

func (r *blobReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

func (r *blobReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > maxBlobString || n > uint64(len(r.b)) {
		r.fail("string length %d out of range", n)
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *blobReader) f64s() []float64 {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > maxBlobSlice || n*8 > uint64(len(r.b)) {
		r.fail("slice length %d out of range", n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

// intFromU converts a decoded uvarint back to int, guarding overflow.
func (r *blobReader) intFromU() int {
	v := r.uvarint()
	if v > math.MaxInt32 {
		r.fail("integer %d out of range", v)
		return 0
	}
	return int(v)
}

// done enforces full consumption: trailing bytes mean a framing bug or
// tampering, never something to ignore.
func (r *blobReader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadBlob, len(r.b))
	}
	return nil
}

// --- job results ---

// encodeJobResult renders a successful result's persistent form.
// Failures are never encoded (the cache does not hold them), so a
// result with an error, or without both run and projection, is refused.
func encodeJobResult(res *JobResult) ([]byte, error) {
	if res == nil || res.Err != "" || res.Run == nil || res.Projection == nil {
		return nil, fmt.Errorf("engine: only complete successful results are persistable")
	}
	w := &blobWriter{buf: make([]byte, 0, 512)}
	w.raw([]byte(jobBlobMagic))
	w.byte(blobVersion)
	encodeSpec(w, res.Spec)
	encodeRun(w, res.Run)
	encodeProjection(w, res.Projection)
	return w.buf, nil
}

// decodeJobResult parses a blob and verifies it answers for key: the
// job ID re-derived from the decoded spec must match, so a blob filed
// under another job's address is rejected.
func decodeJobResult(key string, blob []byte) (*JobResult, error) {
	r := &blobReader{b: blob}
	if len(blob) < len(jobBlobMagic)+1 || string(blob[:len(jobBlobMagic)]) != jobBlobMagic {
		return nil, fmt.Errorf("%w: not a job-result blob", ErrBadBlob)
	}
	r.b = r.b[len(jobBlobMagic):]
	if v := r.byte(); v != blobVersion {
		return nil, fmt.Errorf("%w: unsupported job-result version %d", ErrBadBlob, v)
	}
	spec := decodeSpec(r)
	run := decodeRun(r)
	proj := decodeProjection(r)
	if err := r.done(); err != nil {
		return nil, err
	}
	res := &JobResult{ID: spec.ID(), Spec: spec, Run: run, Projection: proj}
	if res.ID != key {
		return nil, fmt.Errorf("%w: blob is job %s, filed under %s", ErrBadBlob, res.ID, key)
	}
	return res, nil
}

func encodeSpec(w *blobWriter, s JobSpec) {
	w.str(s.Bench)
	w.str(s.TraceID)
	w.uvarint(uint64(s.SizeKB))
	w.uvarint(uint64(s.LineBytes))
	w.uvarint(uint64(s.Banks))
	w.str(s.Policy)
	w.str(s.Mode)
	w.uvarint(uint64(s.Epochs))
	w.uvarint(s.UpdateEvery)
}

func decodeSpec(r *blobReader) JobSpec {
	return JobSpec{
		Bench:       r.str(),
		TraceID:     r.str(),
		SizeKB:      r.intFromU(),
		LineBytes:   r.intFromU(),
		Banks:       r.intFromU(),
		Policy:      r.str(),
		Mode:        r.str(),
		Epochs:      r.intFromU(),
		UpdateEvery: r.uvarint(),
	}
}

func encodeRun(w *blobWriter, run *core.RunResult) {
	w.str(run.Name)
	w.uvarint(uint64(run.Banks))
	w.str(run.PolicyName)
	w.uvarint(run.Reads)
	w.uvarint(run.Writes)
	w.uvarint(run.Hits)
	w.uvarint(run.Misses)
	w.uvarint(run.SpanCycles)
	w.uvarint(run.Updates)
	w.uvarint(run.Breakeven)
	w.uvarint(uint64(run.CounterWidth))
	encodeBankStats(w, run.RegionStats)
	encodeBankStats(w, run.BankStats)
	encodeBreakdown(w, run.Energy)
	encodeBreakdown(w, run.Baseline)
	w.f64(run.Savings)
}

func decodeRun(r *blobReader) *core.RunResult {
	return &core.RunResult{
		Name:         r.str(),
		Banks:        r.intFromU(),
		PolicyName:   r.str(),
		Reads:        r.uvarint(),
		Writes:       r.uvarint(),
		Hits:         r.uvarint(),
		Misses:       r.uvarint(),
		SpanCycles:   r.uvarint(),
		Updates:      r.uvarint(),
		Breakeven:    r.uvarint(),
		CounterWidth: r.intFromU(),
		RegionStats:  decodeBankStats(r),
		BankStats:    decodeBankStats(r),
		Energy:       decodeBreakdown(r),
		Baseline:     decodeBreakdown(r),
		Savings:      r.f64(),
	}
}

func encodeBankStats(w *blobWriter, stats []pmu.BankStats) {
	w.uvarint(uint64(len(stats)))
	for _, s := range stats {
		w.uvarint(s.Accesses)
		w.f64(s.UsefulIdleness)
		w.f64(s.SleepFraction)
		w.uvarint(s.SleepCycles)
		w.uvarint(s.SleepIntervals)
		w.uvarint(s.Wakeups)
	}
}

func decodeBankStats(r *blobReader) []pmu.BankStats {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	// Each entry is at least 5 bytes on the wire; bound before sizing.
	if n > maxBlobSlice || n*5 > uint64(len(r.b)) {
		r.fail("bank-stats length %d out of range", n)
		return nil
	}
	out := make([]pmu.BankStats, n)
	for i := range out {
		out[i] = pmu.BankStats{
			Accesses:       r.uvarint(),
			UsefulIdleness: r.f64(),
			SleepFraction:  r.f64(),
			SleepCycles:    r.uvarint(),
			SleepIntervals: r.uvarint(),
			Wakeups:        r.uvarint(),
		}
	}
	return out
}

func encodeBreakdown(w *blobWriter, b power.Breakdown) {
	w.f64(b.Dynamic)
	w.f64(b.Leakage)
	w.f64(b.SleepLeakage)
	w.f64(b.Transitions)
}

func decodeBreakdown(r *blobReader) power.Breakdown {
	return power.Breakdown{
		Dynamic:      r.f64(),
		Leakage:      r.f64(),
		SleepLeakage: r.f64(),
		Transitions:  r.f64(),
	}
}

func encodeProjection(w *blobWriter, p *core.Projection) {
	w.str(p.PolicyName)
	w.uvarint(uint64(p.Epochs))
	w.f64s(p.BankDuty)
	w.f64s(p.BankLifetimeYears)
	w.f64(p.LifetimeYears)
	w.f64(p.ShareError)
}

func decodeProjection(r *blobReader) *core.Projection {
	return &core.Projection{
		PolicyName:        r.str(),
		Epochs:            r.intFromU(),
		BankDuty:          r.f64s(),
		BankLifetimeYears: r.f64s(),
		LifetimeYears:     r.f64(),
		ShareError:        r.f64(),
	}
}

// --- uploaded traces ---

// encodeTraceBlob renders a stored trace's persistent form (NBTC): the
// signature measured at admission, then the trace's columns — each
// encoded with the column codecs the warm start decodes straight into
// kernel input.
func encodeTraceBlob(st *storedTrace) ([]byte, error) {
	if st == nil || st.info.Signature == nil {
		return nil, fmt.Errorf("engine: unmeasured trace is not persistable")
	}
	c := st.cols
	w := &blobWriter{buf: make([]byte, 0, 256+c.Len()*3)}
	w.raw([]byte(traceBlobMagicCol))
	w.byte(blobVersion)
	sig := st.info.Signature
	w.uvarint(uint64(sig.Banks))
	w.f64s(sig.UsefulIdleness)
	w.f64s(sig.SleepFractions)
	w.uvarint(sig.Breakeven)
	w.str(c.Name)
	w.uvarint(uint64(c.Len()))
	w.uvarint(c.Span)
	w.buf = trace.AppendCyclesColumn(w.buf, c.Cycles)
	w.buf = trace.AppendAddrsColumn(w.buf, c.Addrs)
	w.buf = trace.AppendKindsColumn(w.buf, c.Kinds)
	return w.buf, nil
}

// decodeTraceBlob parses a blob and verifies the embedded trace hashes
// to key — the full content-address check, so a damaged or misfiled
// trace never re-enters the store. Both formats decode; legacy reports
// an NBTB (row-form) blob, which the caller transcodes to NBTC on its
// next persist.
func decodeTraceBlob(key string, blob []byte) (st *storedTrace, legacy bool, err error) {
	if len(blob) >= len(traceBlobMagicCol) && string(blob[:len(traceBlobMagicCol)]) == traceBlobMagicCol {
		st, err = decodeTraceBlobColumnar(key, blob)
		return st, false, err
	}
	st, err = decodeTraceBlobLegacy(key, blob)
	return st, true, err
}

// decodeTraceBlobColumnar parses the columnar (NBTC) form.
func decodeTraceBlobColumnar(key string, blob []byte) (*storedTrace, error) {
	r := &blobReader{b: blob[len(traceBlobMagicCol):]}
	if v := r.byte(); v != blobVersion {
		return nil, fmt.Errorf("%w: unsupported trace-blob version %d", ErrBadBlob, v)
	}
	sig := &workload.Signature{
		Banks:          r.intFromU(),
		UsefulIdleness: r.f64s(),
		SleepFractions: r.f64s(),
		Breakeven:      r.uvarint(),
	}
	name := r.str()
	count := r.uvarint()
	span := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	// Bound the claimed count before any column sizes an allocation:
	// each access costs at least one cycles-column byte and one
	// addrs-column byte of the remaining payload.
	if count*2 > uint64(len(r.b)) {
		return nil, fmt.Errorf("%w: access count %d exceeds %d payload bytes", ErrBadBlob, count, len(r.b))
	}
	// The column decoders' own taxonomy (trace.ErrBadFormat) stays
	// matchable through the %w-%w chains below, exactly like the legacy
	// decoder's.
	cycles, rest, err := trace.DecodeCyclesColumn(r.b, int(count))
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadBlob, err)
	}
	addrs, rest, err := trace.DecodeAddrsColumn(rest, int(count))
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadBlob, err)
	}
	kinds, rest, err := trace.DecodeKindsColumn(rest, int(count))
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadBlob, err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadBlob, len(rest))
	}
	cols := &trace.Columns{Name: name, Cycles: cycles, Addrs: addrs, Kinds: kinds, Span: span}
	if err := cols.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadBlob, err)
	}
	id, size, err := ColumnsContentID(cols)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadBlob, err)
	}
	if id != key {
		return nil, fmt.Errorf("%w: blob is trace %s, filed under %s", ErrBadBlob, id, key)
	}
	return &storedTrace{
		info: TraceInfo{
			ID:        id,
			Name:      cols.Name,
			Accesses:  cols.Len(),
			Cycles:    cols.Span,
			Density:   cols.Density(),
			Bytes:     size,
			Signature: sig,
		},
		cols: cols,
	}, nil
}

// decodeTraceBlobLegacy parses the row-form (NBTB) blob written by
// earlier versions, transposing into columns once at load.
func decodeTraceBlobLegacy(key string, blob []byte) (*storedTrace, error) {
	r := &blobReader{b: blob}
	if len(blob) < len(traceBlobMagic)+1 || string(blob[:len(traceBlobMagic)]) != traceBlobMagic {
		return nil, fmt.Errorf("%w: not a trace blob", ErrBadBlob)
	}
	r.b = r.b[len(traceBlobMagic):]
	if v := r.byte(); v != blobVersion {
		return nil, fmt.Errorf("%w: unsupported trace-blob version %d", ErrBadBlob, v)
	}
	sig := &workload.Signature{
		Banks:          r.intFromU(),
		UsefulIdleness: r.f64s(),
		SleepFractions: r.f64s(),
		Breakeven:      r.uvarint(),
	}
	if r.err != nil {
		return nil, r.err
	}
	// The remainder is the canonical trace encoding; its byte budget
	// (>= 3 bytes per access) bounds the decode.
	// Both halves of these wraps are %w: a corrupt blob matches
	// ErrBadBlob, and the decoder's own taxonomy (trace.ErrBadFormat)
	// stays matchable through the chain — with %v it did not, and
	// callers could not tell a malformed embedded trace from a
	// mis-filed one.
	d, err := trace.NewBinaryDecoder(bytes.NewReader(r.b))
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadBlob, err)
	}
	tr, err := d.ReadAll(len(r.b)/3 + 1)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadBlob, err)
	}
	id, size, err := TraceContentID(tr)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadBlob, err)
	}
	if id != key {
		return nil, fmt.Errorf("%w: blob is trace %s, filed under %s", ErrBadBlob, id, key)
	}
	return &storedTrace{
		info: TraceInfo{
			ID:        id,
			Name:      tr.Name,
			Accesses:  tr.Len(),
			Cycles:    tr.Cycles,
			Density:   tr.Density(),
			Bytes:     size,
			Signature: sig,
		},
		cols: trace.FromRows(tr),
	}, nil
}

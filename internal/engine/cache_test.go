package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// TestFlightCacheLeaderCancellation: a waiter must not inherit the
// leader's cancellation. When the leader's context dies mid-compute,
// a waiter with a live context takes over and computes the value
// itself; the cancelled sweep is the only one that observes the error.
func TestFlightCacheLeaderCancellation(t *testing.T) {
	c := newFlightCache[int]()
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderStarted := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(2)

	var leaderErr error
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.do(leaderCtx, "k", func() (int, error) {
			close(leaderStarted)
			<-leaderCtx.Done() // simulate a job that observes cancellation
			return 0, leaderCtx.Err()
		})
	}()

	<-leaderStarted
	var waiterVal int
	var waiterCached bool
	var waiterErr error
	go func() {
		defer wg.Done()
		waiterVal, waiterCached, waiterErr = c.do(context.Background(), "k", func() (int, error) {
			return 42, nil
		})
	}()
	cancelLeader()
	wg.Wait()

	if !errors.Is(leaderErr, context.Canceled) {
		t.Errorf("leader error = %v, want context.Canceled", leaderErr)
	}
	if waiterErr != nil {
		t.Fatalf("waiter inherited the leader's fate: %v", waiterErr)
	}
	if waiterVal != 42 || waiterCached {
		t.Errorf("waiter got (%d, cached=%v), want (42, false) from its own compute", waiterVal, waiterCached)
	}
	if v, ok := c.get("k"); !ok || v != 42 {
		t.Errorf("cache holds (%d, %v) after takeover, want (42, true)", v, ok)
	}
}

// TestFlightCacheDeterministicErrorShared: real (non-context) failures
// propagate to waiters rather than triggering retries, and are evicted
// so a later call can try again.
func TestFlightCacheDeterministicErrorShared(t *testing.T) {
	c := newFlightCache[int]()
	boom := fmt.Errorf("boom")
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	var leaderErr error
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.do(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			return 0, boom
		})
	}()
	<-started

	wg.Add(1)
	var waiterErr error
	go func() {
		defer wg.Done()
		_, _, waiterErr = c.do(context.Background(), "k", func() (int, error) {
			t.Error("waiter recomputed a deterministic failure")
			return 0, nil
		})
	}()
	// Only release the leader once the waiter has registered on the
	// entry (its hit is counted before it blocks), so the waiter cannot
	// arrive after the eviction and become a leader itself.
	for c.hits.Load() == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if !errors.Is(leaderErr, boom) || !errors.Is(waiterErr, boom) {
		t.Errorf("errors = %v / %v, want both boom", leaderErr, waiterErr)
	}
	// Evicted: a fresh call recomputes.
	v, cached, err := c.do(context.Background(), "k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 || cached {
		t.Errorf("retry after failure got (%d, %v, %v), want (7, false, nil)", v, cached, err)
	}
}

package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"nbticache/internal/cache"
	"nbticache/internal/workload"
)

// testGen keeps traces tiny so the suite stays fast; the engine's
// behaviour under test is orchestration, not model fidelity.
func testGen(g cache.Geometry) workload.GenParams {
	return workload.GenParams{Geometry: g, Phases: 16, AccessesPerPhase: 64}
}

func testEngine(t testing.TB, workers int) *Engine {
	t.Helper()
	e, err := New(Options{Workers: workers, Gen: testGen})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestJobSpecID(t *testing.T) {
	// Defaulted and spelled-out specs of the same point share an ID.
	a := JobSpec{Bench: "sha"}
	b := JobSpec{Bench: "sha", SizeKB: 16, LineBytes: 16, Banks: 4, Policy: "probing", Mode: "voltage-scaled", Epochs: 4096}
	if a.ID() != b.ID() {
		t.Errorf("normalised IDs differ: %s vs %s", a.ID(), b.ID())
	}
	c := JobSpec{Bench: "sha", Banks: 8}
	if a.ID() == c.ID() {
		t.Errorf("distinct points share ID %s", a.ID())
	}
}

func TestJobSpecValidate(t *testing.T) {
	for _, bad := range []JobSpec{
		{Bench: "no-such-bench"},
		{Bench: "sha", Policy: "rot13"},
		{Bench: "sha", Mode: "cryogenic"},
		{Bench: "sha", Banks: 3},
		{Bench: "sha", Epochs: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("spec %+v validated", bad)
		}
	}
	if err := (JobSpec{Bench: "sha"}).Validate(); err != nil {
		t.Errorf("default spec rejected: %v", err)
	}
}

func TestSweepExpand(t *testing.T) {
	// Cartesian axes multiply; duplicates (explicit + cartesian) collapse.
	s := SweepSpec{
		Jobs:     []JobSpec{{Bench: "sha", Banks: 4}},
		Benches:  []string{"sha", "gsme"},
		Banks:    []int{4, 8},
		Policies: []string{"identity", "probing"},
	}
	jobs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 2 benches × 2 banks × 2 policies = 8; the explicit job duplicates
	// (sha, 4, probing).
	if len(jobs) != 8 {
		t.Fatalf("expanded to %d jobs, want 8", len(jobs))
	}
	ids := make(map[string]bool)
	for _, j := range jobs {
		if ids[j.ID()] {
			t.Fatalf("duplicate job %s survived expansion", j.ID())
		}
		ids[j.ID()] = true
	}

	if _, err := (SweepSpec{}).Expand(); err == nil {
		t.Error("empty sweep expanded")
	}
	if _, err := (SweepSpec{Benches: []string{"nope"}}).Expand(); err == nil {
		t.Error("invalid bench expanded")
	}
}

// TestConcurrentDedup is the exactly-once guarantee under contention:
// many goroutines submit overlapping sweeps; every unique job must
// simulate exactly once (cache misses == unique jobs) while every
// submission still gets a full result set. Run with -race.
func TestConcurrentDedup(t *testing.T) {
	e := testEngine(t, 4)
	spec := SweepSpec{
		Benches:  []string{"sha", "gsme", "adpcm.dec"},
		Banks:    []int{2, 4},
		Policies: []string{"probing"},
	}
	unique, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	var wg sync.WaitGroup
	results := make([]*SweepResult, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := e.Submit(context.Background(), spec)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = h.Wait(context.Background())
		}(i)
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if got := len(results[i].Jobs); got != len(unique) {
			t.Fatalf("client %d: %d results, want %d", i, got, len(unique))
		}
		for _, r := range results[i].Jobs {
			if r.Failed() {
				t.Fatalf("client %d: job %s failed: %s", i, r.ID, r.Err)
			}
			if r.Run == nil || r.Projection == nil {
				t.Fatalf("client %d: job %s missing payload", i, r.ID)
			}
		}
	}

	st := e.Stats()
	if st.CacheMisses != uint64(len(unique)) {
		t.Errorf("%d simulations for %d unique jobs (cache misses should match)", st.CacheMisses, len(unique))
	}
	wantHits := uint64(clients*len(unique)) - uint64(len(unique))
	if st.CacheHits != wantHits {
		t.Errorf("cache hits = %d, want %d", st.CacheHits, wantHits)
	}
	if st.JobsCompleted != uint64(clients*len(unique)) {
		t.Errorf("jobs completed = %d, want %d", st.JobsCompleted, clients*len(unique))
	}
	if st.JobsFailed != 0 || st.JobsCanceled != 0 {
		t.Errorf("unexpected failures/cancellations: %+v", st)
	}
}

// TestRunJobSharesCache checks the synchronous path (what the experiment
// suite uses) shares results with pooled sweeps.
func TestRunJobSharesCache(t *testing.T) {
	e := testEngine(t, 2)
	spec := JobSpec{Bench: "sha", Banks: 4, Policy: "identity"}

	direct, err := e.RunJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Cached {
		t.Error("first run reported cached")
	}

	h, err := e.Submit(context.Background(), SweepSpec{Jobs: []JobSpec{spec}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Jobs[0].Cached {
		t.Error("sweep re-simulated a job RunJob already computed")
	}
	// Cache hits are decoded private copies (pointer identity is not
	// preserved across the persistence boundary); sharing is semantic:
	// one simulation, identical measurements.
	if got := e.Stats().RunsExecuted; got != 1 {
		t.Errorf("runs executed = %d, want 1 (sweep must reuse RunJob's simulation)", got)
	}
	if res.Jobs[0].Run.Misses != direct.Run.Misses || res.Jobs[0].Run.Hits != direct.Run.Hits {
		t.Error("sweep's cached result diverges from the direct run")
	}

	// The content address resolves over HTTP-style lookup too.
	if _, ok := e.Job(spec.ID()); !ok {
		t.Errorf("Job(%s) not found after completion", spec.ID())
	}
}

// TestRunSharingAcrossModes: sleep mode and epochs only enter the aging
// projection, so jobs differing only there must share one trace
// simulation while keeping distinct projections.
func TestRunSharingAcrossModes(t *testing.T) {
	e := testEngine(t, 2)
	h, err := e.Submit(context.Background(), SweepSpec{
		Benches: []string{"sha"},
		Modes:   []string{ModeVoltageScaled, ModePowerGated},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("%d jobs, want 2", len(res.Jobs))
	}
	a, b := res.Jobs[0], res.Jobs[1]
	if a.Failed() || b.Failed() {
		t.Fatalf("jobs failed: %q / %q", a.Err, b.Err)
	}
	if a.Run != b.Run {
		t.Error("mode variants did not share the trace simulation")
	}
	if a.Projection.LifetimeYears == b.Projection.LifetimeYears {
		t.Error("distinct sleep modes projected identical lifetimes")
	}
	if st := e.Stats(); st.RunsExecuted != 1 || st.RunsShared != 1 {
		t.Errorf("runs executed/shared = %d/%d, want 1/1", st.RunsExecuted, st.RunsShared)
	}
}

// TestCancellation submits a sweep on a single worker and cancels it
// almost immediately: the sweep must still finish (every slot resolved),
// with later jobs recorded as cancelled, not failed.
func TestCancellation(t *testing.T) {
	e := testEngine(t, 1)
	spec := SweepSpec{
		Benches: workload.Names(), // 18 jobs on 1 worker
		Banks:   []int{16},
	}
	h, err := e.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	h.Cancel()

	ctx, stop := context.WithTimeout(context.Background(), 30*time.Second)
	defer stop()
	res, err := h.Wait(ctx)
	if err != nil {
		t.Fatalf("sweep did not finish after cancel: %v", err)
	}
	st := res.Status
	if st.State != "canceled" {
		t.Errorf("state = %q, want canceled", st.State)
	}
	if st.Completed+st.Failed+st.Canceled != st.Total {
		t.Errorf("slots unaccounted: %+v", st)
	}
	if st.Canceled == 0 {
		t.Error("no job observed the cancellation")
	}
	if st.Failed != 0 {
		t.Errorf("%d jobs marked failed instead of canceled", st.Failed)
	}
	for i, r := range res.Jobs {
		if r == nil {
			t.Fatalf("job %d unresolved", i)
		}
	}

	// The engine survives: the same jobs run fine on a fresh sweep.
	h2, err := e.Submit(context.Background(), SweepSpec{Benches: []string{"sha"}, Banks: []int{16}})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := h2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Jobs[0].Failed() {
		t.Errorf("post-cancel resubmission failed: %s", res2.Jobs[0].Err)
	}
}

// TestCloseUnblocksWaiters: Close while a sweep is queued must resolve
// every pending job as cancelled and return from Wait.
func TestCloseUnblocksWaiters(t *testing.T) {
	e, err := New(Options{Workers: 1, Gen: testGen})
	if err != nil {
		t.Fatal(err)
	}
	h, err := e.Submit(context.Background(), SweepSpec{Benches: workload.Names()})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *SweepResult, 1)
	go func() {
		res, _ := h.Wait(context.Background())
		done <- res
	}()
	e.Close()
	select {
	case res := <-done:
		if res == nil {
			t.Fatal("Wait returned no result")
		}
		st := res.Status
		if st.Completed+st.Failed+st.Canceled != st.Total {
			t.Errorf("slots unaccounted after Close: %+v", st)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Wait hung across Close")
	}
	if _, err := e.Submit(context.Background(), SweepSpec{Benches: []string{"sha"}}); err == nil {
		t.Error("Submit succeeded on a closed engine")
	}
}

// TestPerJobErrorIsolation: a point that passes the static screen but
// fails at run time (a 1 kB / 256 B cache has 4 lines, below the trace
// generator's 16-subregion floor) must fail alone while its sibling
// completes.
func TestPerJobErrorIsolation(t *testing.T) {
	e := testEngine(t, 2)
	bad := JobSpec{Bench: "sha", SizeKB: 1, LineBytes: 256, Banks: 2}
	if err := bad.Validate(); err != nil {
		t.Fatalf("expected the bad point to pass the static screen, got %v", err)
	}
	h, err := e.Submit(context.Background(), SweepSpec{Jobs: []JobSpec{
		{Bench: "sha", Banks: 4},
		bad,
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Jobs[0]; r.Failed() {
		t.Errorf("good job failed: %s", r.Err)
	}
	if r := res.Jobs[1]; !r.Failed() || r.Canceled {
		t.Errorf("bad job = %+v, want a real (non-cancel) failure", r)
	}
	if st := res.Status; st.Failed != 1 || st.Completed != 1 {
		t.Errorf("status %+v, want 1 completed + 1 failed", st)
	}
}

// TestSpeedup documents the pooled-vs-serial throughput ratio. The
// acceptance bar is >= 2x on >= 4 cores; on fewer cores (CI containers
// are often 1-2 wide) parity is the documented expectation and the test
// only asserts the pool is not pathologically slower.
func TestSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	spec := SweepSpec{Benches: workload.Names(), Banks: []int{4, 8}} // 36 jobs

	run := func(workers int) time.Duration {
		e := testEngine(t, workers)
		// Pre-generate traces so both runs time pure simulation.
		for _, name := range workload.Names() {
			if _, err := e.Trace(context.Background(), name, (JobSpec{Bench: name}).Geometry()); err != nil {
				t.Fatal(err)
			}
		}
		start := time.Now()
		h, err := e.Submit(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	serial := run(1)
	pooled := run(runtime.GOMAXPROCS(0))
	ratio := float64(serial) / float64(pooled)
	t.Logf("serial %v, pooled(%d workers) %v, speedup %.2fx on %d-wide GOMAXPROCS",
		serial, runtime.GOMAXPROCS(0), pooled, ratio, runtime.GOMAXPROCS(0))

	if runtime.GOMAXPROCS(0) >= 4 {
		if ratio < 2 {
			t.Errorf("speedup %.2fx < 2x on %d cores", ratio, runtime.GOMAXPROCS(0))
		}
	} else if ratio < 0.5 {
		// Documented parity branch: on 1-2 cores the pool cannot beat
		// serial, but it must not collapse under scheduling overhead.
		t.Errorf("pooled run %.2fx of serial on a narrow machine — pool overhead is pathological", ratio)
	}
}

// TestStatusProgress polls a running sweep and checks monotone progress
// accounting.
func TestStatusProgress(t *testing.T) {
	e := testEngine(t, 2)
	h, err := e.Submit(context.Background(), SweepSpec{Benches: []string{"sha", "gsme", "cjpeg", "djpeg"}})
	if err != nil {
		t.Fatal(err)
	}
	if h.Status().Total != 4 {
		t.Fatalf("total = %d, want 4", h.Status().Total)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := h.Status()
	if st.State != "done" || st.Completed != 4 {
		t.Errorf("final status %+v, want done/4", st)
	}
}

func ExampleEngine() {
	e, err := New(Options{Workers: 2, Gen: testGen})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer e.Close()
	h, err := e.Submit(context.Background(), SweepSpec{
		Benches: []string{"sha"},
		Banks:   []int{2, 4},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d jobs, state %s\n", len(res.Jobs), res.Status.State)
	// Output: 2 jobs, state done
}

package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"nbticache/internal/cache"
	"nbticache/internal/cas"
	"nbticache/internal/trace"
	"nbticache/internal/workload"
)

// The trace store holds uploaded (real) address traces, content-addressed
// exactly like job results: the ID is a hash of the canonical binary
// encoding, so the same trace uploaded twice — by one client or by two —
// is stored and characterised once, and a job referencing it by ID is
// reproducible anywhere the bytes are. Every admitted trace is measured
// (workload.MeasureSignature) on the way in, so sweeps consume
// pre-characterised workloads.
//
// The resident map is the working set; when the engine has a data
// directory, admissions write through to a cas.Store (the signature and
// canonical encoding, see codec.go) and the store is reloaded on the
// next start, so uploads survive restarts without re-measuring.

// TraceInfo is the stored trace's public view: identity, shape, and the
// bank-idleness signature measured at admission.
type TraceInfo struct {
	// ID is the trace's content address ("trace-<hex>").
	ID string `json:"id"`
	// Name is the trace's self-declared name (codec-validated).
	Name string `json:"name,omitempty"`
	// Accesses and Cycles describe the shape.
	Accesses int    `json:"accesses"`
	Cycles   uint64 `json:"cycles"`
	// Density is accesses per cycle over the span.
	Density float64 `json:"density"`
	// Bytes is the canonical binary encoding's size.
	Bytes int64 `json:"bytes"`
	// Signature is the Table-I style per-bank idleness characterisation,
	// measured at the paper's default geometry at admission.
	Signature *workload.Signature `json:"signature"`
}

// storedTrace holds a resident uploaded trace in columnar (SoA) form —
// the batch kernel's native input layout, so a stored trace feeds
// simulation by slicing its columns, never by materialising Access
// structs.
type storedTrace struct {
	info TraceInfo
	cols *trace.Columns
}

// ErrTraceStoreFull is returned by AddTrace when admitting another
// trace would exceed the store's bound. Traces are immutable simulation
// inputs referenced by ID from job specs, so the store never evicts on
// its own (a silent eviction would turn running sweeps' references
// dangling); clients free slots explicitly via RemoveTrace.
var ErrTraceStoreFull = errors.New("engine: trace store full")

// traceStore is the engine's uploaded-trace registry: bounded, with
// single-flight admission so concurrent uploads of the same bytes
// measure the signature once, and with pin-aware removal so deleting a
// trace that an in-flight sweep references defers the removal until the
// sweep finishes instead of breaking its jobs.
type traceStore struct {
	mu  sync.Mutex
	m   map[string]*storedTrace
	max int
	// inflight marks IDs being measured right now; the channel closes
	// when admission settles (stored or failed).
	inflight map[string]chan struct{}
	// blobs is the persistent layer; nil means memory-only.
	blobs cas.Store
	// pins counts in-flight sweeps referencing each trace; condemned
	// marks traces removed while pinned — invisible to lookups and new
	// submissions, still resolvable by the pinned sweeps, reaped when
	// the last pin drops.
	pins      map[string]int
	condemned map[string]bool
	// corrupt counts persisted trace blobs that failed the typed decode
	// (the store's own checksum corruption is counted by the store).
	corrupt atomic.Uint64
}

func newTraceStore(max int, blobs cas.Store) *traceStore {
	return &traceStore{
		m:         make(map[string]*storedTrace),
		max:       max,
		inflight:  make(map[string]chan struct{}),
		blobs:     blobs,
		pins:      make(map[string]int),
		condemned: make(map[string]bool),
	}
}

// blobMapper is the zero-copy read capability a persistent layer may
// offer (cas.DiskStore does): the blob's bytes arrive as a released-
// when-done view — a file mapping on platforms that support it — so a
// warm start decodes trace columns straight from the page cache instead
// of through a full-frame heap copy. The capability is optional by type
// assertion; cas.Store itself stays unchanged.
type blobMapper interface {
	GetBlob(key string) (*cas.Blob, error)
}

// load warms the resident map from the persistent layer, oldest blob
// first, up to the admission bound (blobs past it stay on disk,
// unlisted, until slots free up and they are re-uploaded). Blobs that
// fail the typed decode are deleted and counted; the store's own
// checksum layer has already quarantined anything it could detect.
// Legacy row-form (NBTB) blobs warm-load with zero re-measurement —
// the signature rides in the blob — and are transcoded to the columnar
// (NBTC) form in place, so the one-time transposition cost never
// recurs on later starts.
func (s *traceStore) load() {
	if s.blobs == nil {
		return
	}
	list, err := s.blobs.List()
	if err != nil {
		return
	}
	mapper, _ := s.blobs.(blobMapper)
	for _, st := range list {
		if len(s.m) >= s.max {
			return
		}
		// Prefer the mapped read: the columnar decode copies everything it
		// keeps (columns are fresh slices, names fresh strings), so the
		// mapping is released the moment decode settles.
		var blob []byte
		var mapped *cas.Blob
		if mapper != nil {
			if mapped, err = mapper.GetBlob(st.Key); err == nil {
				blob = mapped.Bytes()
			}
		} else {
			blob, err = s.blobs.Get(st.Key)
		}
		if err != nil {
			continue // quarantined or vanished; counted by the store
		}
		entry, legacy, err := decodeTraceBlob(st.Key, blob)
		_ = mapped.Release()
		if err != nil {
			s.corrupt.Add(1)
			_ = s.blobs.Delete(st.Key)
			continue
		}
		if legacy {
			// Transcode on persist: Put replaces the frame atomically
			// (temp + rename), so a crash mid-transcode leaves either
			// form intact, never a torn blob. Failure is benign — the
			// legacy blob still decodes next start.
			if nbtc, err := encodeTraceBlob(entry); err == nil {
				_ = s.blobs.Put(st.Key, nbtc)
			}
		}
		s.m[st.Key] = entry
	}
}

// get resolves id for lookups and new submissions: condemned traces are
// already deleted from this point of view.
func (s *traceStore) get(id string) (*storedTrace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.condemned[id] {
		return nil, false
	}
	st, ok := s.m[id]
	return st, ok
}

// resolve resolves id for pinned simulation: a condemned trace is
// still served, because the caller's sweep pinned it before the
// removal landed. Unpinned paths (new submissions, direct RunJob,
// listings) use get, which treats condemned as gone.
func (s *traceStore) resolve(id string) (*storedTrace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.m[id]
	return st, ok
}

// admit resolves id to a stored trace, computing the entry with build
// at most once across concurrent callers. existed reports a hit on an
// already-resident entry. Re-admitting a condemned trace resurrects it:
// the bytes are identical by content address, so the pending removal is
// simply cancelled.
func (s *traceStore) admit(id string, build func() (*storedTrace, error)) (st *storedTrace, existed bool, err error) {
	for {
		s.mu.Lock()
		if st, ok := s.m[id]; ok {
			delete(s.condemned, id)
			s.mu.Unlock()
			return st, true, nil
		}
		if ch, busy := s.inflight[id]; busy {
			s.mu.Unlock()
			<-ch // another upload of the same bytes is measuring; share it
			continue
		}
		// In-flight admissions reserve capacity so a burst cannot
		// overshoot the bound.
		if len(s.m)+len(s.inflight) >= s.max {
			s.mu.Unlock()
			return nil, false, fmt.Errorf("%w: %d traces resident (remove some or raise the limit)", ErrTraceStoreFull, s.max)
		}
		ch := make(chan struct{})
		s.inflight[id] = ch
		s.mu.Unlock()

		var st *storedTrace
		var err error
		func() {
			// The cleanup must run even if build panics (a wedged
			// inflight entry would block every later upload of these
			// bytes forever and leak the capacity reservation); the
			// panic itself still propagates to the caller.
			defer func() {
				s.mu.Lock()
				delete(s.inflight, id)
				close(ch)
				if err == nil && st != nil {
					s.m[id] = st
				}
				s.mu.Unlock()
			}()
			st, err = build()
			if err == nil && s.blobs != nil {
				// Write-through: an admission that cannot be persisted
				// fails, rather than silently diverging from the next
				// restart's view of the store.
				blob, berr := encodeTraceBlob(st)
				if berr == nil {
					berr = s.blobs.Put(id, blob)
				}
				if berr != nil {
					st, err = nil, fmt.Errorf("engine: persisting trace %s: %w", id, berr)
				}
			}
		}()
		return st, false, err
	}
}

// pinAll atomically verifies that every id is resident (and not
// condemned) and pins them for the lifetime of one sweep: a concurrent
// RemoveTrace defers its removal until unpinAll instead of breaking the
// sweep's jobs. ids must be deduplicated by the caller.
func (s *traceStore) pinAll(ids []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		if _, ok := s.m[id]; !ok || s.condemned[id] {
			return fmt.Errorf("engine: unknown trace %q (upload it first)", id)
		}
	}
	for _, id := range ids {
		s.pins[id]++
	}
	return nil
}

// unpinAll releases one sweep's pins, completing any removal deferred
// while the sweep was running.
func (s *traceStore) unpinAll(ids []string) {
	var reaped []string
	s.mu.Lock()
	for _, id := range ids {
		if s.pins[id]--; s.pins[id] > 0 {
			continue
		}
		delete(s.pins, id)
		if s.condemned[id] {
			s.reapLocked(id)
			reaped = append(reaped, id)
		}
	}
	s.mu.Unlock()
	s.deleteBlobs(reaped)
}

// reapLocked finishes a removal's in-memory half: the resident entry
// goes now; the persisted blob is the caller's to delete via
// deleteBlobs once the mutex is released. Blob deletion is disk I/O,
// and doing it under s.mu would stall every concurrent lookup on the
// filesystem (nbtivet lockedio, the PR 3 DiskStore lesson).
func (s *traceStore) reapLocked(id string) {
	delete(s.m, id)
	delete(s.condemned, id)
}

// deleteBlobs removes persisted blobs for already-reaped ids. Called
// without s.mu held: once an id has left s.m it is invisible to
// lookups and re-admission of the same content recreates the blob, so
// there is no ordering hazard.
func (s *traceStore) deleteBlobs(ids []string) {
	if s.blobs == nil {
		return
	}
	for _, id := range ids {
		_ = s.blobs.Delete(id)
	}
}

// remove drops a stored trace, freeing its admission slot. A pinned
// trace (referenced by an in-flight sweep) is condemned instead:
// immediately invisible to lookups and new submissions, still served to
// the sweeps already holding it, fully reaped when the last finishes.
func (s *traceStore) remove(id string) bool {
	s.mu.Lock()
	if _, ok := s.m[id]; !ok || s.condemned[id] {
		s.mu.Unlock()
		return false
	}
	if s.pins[id] > 0 {
		s.condemned[id] = true
		s.mu.Unlock()
		return true
	}
	s.reapLocked(id)
	s.mu.Unlock()
	s.deleteBlobs([]string{id})
	return true
}

func (s *traceStore) infos() []TraceInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceInfo, 0, len(s.m))
	for id, st := range s.m {
		if s.condemned[id] {
			continue
		}
		out = append(out, st.info)
	}
	// The map walk above visits in random order; this listing is served
	// as JSON by the HTTP API, and two identical stores must render the
	// same bytes (nbtivet detmap).
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (s *traceStore) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m) - len(s.condemned)
}

// countingWriter counts bytes flowing into the content hash.
type countingWriter struct {
	h hash.Hash
	n int64
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return w.h.Write(p)
}

// TraceContentID computes a trace's content address without storing it:
// the hash of the canonical (binary v1) encoding. Equal traces get equal
// IDs on every node, which is what makes uploaded workloads shareable
// across sweeps and instances. 16 hash bytes keep a deliberate
// birthday-collision (which would silently alias two workloads) out of
// reach; job IDs stay at 8 bytes because they are derived, not
// attacker-chosen cross-references.
func TraceContentID(tr *trace.Trace) (string, int64, error) {
	cw := &countingWriter{h: sha256.New()}
	if err := trace.WriteBinary(cw, tr); err != nil {
		return "", 0, err
	}
	sum := cw.h.Sum(nil)
	return "trace-" + hex.EncodeToString(sum[:16]), cw.n, nil
}

// ColumnsContentID is TraceContentID over the columnar form: the
// canonical row encoding streams straight from the columns into the
// hash (WriteBinaryColumns is byte-identical to WriteBinary), so the
// same trace gets the same address from either representation, without
// materialising a row form to compute it.
func ColumnsContentID(c *trace.Columns) (string, int64, error) {
	cw := &countingWriter{h: sha256.New()}
	if err := c.WriteBinaryColumns(cw); err != nil {
		return "", 0, err
	}
	sum := cw.h.Sum(nil)
	return "trace-" + hex.EncodeToString(sum[:16]), cw.n, nil
}

// signatureGeometry is the admission-measurement configuration: the
// paper's default geometry and bank count (signatures at banks=4 are the
// Table-I granularity Profile derivation expects).
func signatureGeometry() cache.Geometry {
	return cache.Geometry{Size: 16 * 1024, LineSize: 16, Ways: 1, AddressBits: 32}
}

const signatureBanks = 4

// AddTrace validates, content-addresses, characterises and stores an
// uploaded trace; with persistence configured, the admission also
// writes the trace and its signature through to disk. It returns the
// stored info and whether the trace was already resident (admission is
// idempotent; concurrent uploads of the same bytes measure once).
// Traces must be non-empty — an access-free trace has no signature and
// nothing to simulate — and admission fails with ErrTraceStoreFull once
// the store's bound is reached.
func (e *Engine) AddTrace(tr *trace.Trace) (TraceInfo, bool, error) {
	if tr == nil {
		return TraceInfo{}, false, fmt.Errorf("engine: nil trace")
	}
	if err := tr.Validate(); err != nil {
		return TraceInfo{}, false, err
	}
	if tr.Len() == 0 {
		return TraceInfo{}, false, fmt.Errorf("engine: trace %q has no accesses", tr.Name)
	}
	id, size, err := TraceContentID(tr)
	if err != nil {
		return TraceInfo{}, false, err
	}
	st, existed, err := e.store.admit(id, func() (*storedTrace, error) {
		g := signatureGeometry()
		be, err := e.breakevenFor(g, signatureBanks)
		if err != nil {
			return nil, err
		}
		sig, err := workload.MeasureSignature(tr, g, signatureBanks, be)
		if err != nil {
			return nil, fmt.Errorf("engine: measuring trace %q: %w", tr.Name, err)
		}
		// The stored columns are a private transposition: the caller
		// keeps ownership of tr, and a later mutation cannot
		// desynchronise the stored accesses from the content address and
		// signature measured here.
		return &storedTrace{
			info: TraceInfo{
				ID:        id,
				Name:      tr.Name,
				Accesses:  tr.Len(),
				Cycles:    tr.Cycles,
				Density:   tr.Density(),
				Bytes:     size,
				Signature: sig,
			},
			cols: trace.FromRows(tr),
		}, nil
	})
	if err != nil {
		return TraceInfo{}, false, err
	}
	if !existed {
		e.tracesUploaded.Add(1)
	}
	return st.info, existed, nil
}

// RemoveTrace drops an uploaded trace from the store (and the
// persistent layer), freeing its admission slot. A trace referenced by
// an in-flight sweep is removed lazily: it disappears from listings and
// new submissions immediately, the running sweep's jobs still resolve
// it, and the storage is reclaimed when the sweep finishes. Subsequent
// jobs referencing the ID fail as unknown either way.
func (e *Engine) RemoveTrace(id string) bool {
	return e.store.remove(id)
}

// breakevenFor derives the Block Control threshold from the engine's
// energy model, the same way core.New does for simulations.
func (e *Engine) breakevenFor(g cache.Geometry, banks int) (uint64, error) {
	beF, err := e.tech.BreakevenCycles(g, banks)
	if err != nil {
		return 0, err
	}
	be := uint64(beF)
	if be < 1 {
		be = 1
	}
	return be, nil
}

// TraceInfo returns the stored metadata for an uploaded trace.
func (e *Engine) TraceInfo(id string) (TraceInfo, bool) {
	st, ok := e.store.get(id)
	if !ok {
		return TraceInfo{}, false
	}
	return st.info, true
}

// TraceInfos lists every uploaded trace (unordered).
func (e *Engine) TraceInfos() []TraceInfo {
	return e.store.infos()
}

// WriteTrace streams a stored trace's canonical binary (v1) encoding —
// exactly the bytes its content address hashes — to w. found reports
// whether the trace was resident (condemned traces are treated as gone,
// like every unpinned lookup); a false return writes nothing. This is
// the export path the cluster coordinator uses to forward a trace from
// the node that holds it to the shard that owns its jobs: re-admitting
// the bytes on the destination re-derives the same content address, so
// the ID survives the copy end to end.
func (e *Engine) WriteTrace(w io.Writer, id string) (found bool, err error) {
	st, ok := e.store.get(id)
	if !ok {
		return false, nil
	}
	// The canonical bytes stream straight from the stored columns — the
	// forwarding path shares the hot path's zero-materialisation rule.
	return true, st.cols.WriteBinaryColumns(w)
}

// storedTraceByID resolves an uploaded trace's accesses, including
// condemned entries (test hook; production lookups go through
// traceStore.get/resolve with explicit pin semantics — see traceFor).
// The row form is materialised per call.
func (e *Engine) storedTraceByID(id string) (*trace.Trace, bool) {
	st, ok := e.store.resolve(id)
	if !ok {
		return nil, ok
	}
	return st.cols.Rows(), true
}

package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"sync"

	"nbticache/internal/cache"
	"nbticache/internal/trace"
	"nbticache/internal/workload"
)

// The trace store holds uploaded (real) address traces, content-addressed
// exactly like job results: the ID is a hash of the canonical binary
// encoding, so the same trace uploaded twice — by one client or by two —
// is stored and characterised once, and a job referencing it by ID is
// reproducible anywhere the bytes are. Every admitted trace is measured
// (workload.MeasureSignature) on the way in, so sweeps consume
// pre-characterised workloads.

// TraceInfo is the stored trace's public view: identity, shape, and the
// bank-idleness signature measured at admission.
type TraceInfo struct {
	// ID is the trace's content address ("trace-<hex>").
	ID string `json:"id"`
	// Name is the trace's self-declared name (codec-validated).
	Name string `json:"name,omitempty"`
	// Accesses and Cycles describe the shape.
	Accesses int    `json:"accesses"`
	Cycles   uint64 `json:"cycles"`
	// Density is accesses per cycle over the span.
	Density float64 `json:"density"`
	// Bytes is the canonical binary encoding's size.
	Bytes int64 `json:"bytes"`
	// Signature is the Table-I style per-bank idleness characterisation,
	// measured at the paper's default geometry at admission.
	Signature *workload.Signature `json:"signature"`
}

type storedTrace struct {
	info TraceInfo
	tr   *trace.Trace
}

// ErrTraceStoreFull is returned by AddTrace when admitting another
// trace would exceed the store's bound. Traces are immutable simulation
// inputs referenced by ID from job specs, so the store never evicts on
// its own (a silent eviction would turn running sweeps' references
// dangling); clients free slots explicitly via RemoveTrace.
var ErrTraceStoreFull = errors.New("engine: trace store full")

// traceStore is the engine's uploaded-trace registry: bounded, and with
// single-flight admission so concurrent uploads of the same bytes
// measure the signature once.
type traceStore struct {
	mu  sync.Mutex
	m   map[string]*storedTrace
	max int
	// inflight marks IDs being measured right now; the channel closes
	// when admission settles (stored or failed).
	inflight map[string]chan struct{}
}

func newTraceStore(max int) *traceStore {
	return &traceStore{
		m:        make(map[string]*storedTrace),
		max:      max,
		inflight: make(map[string]chan struct{}),
	}
}

func (s *traceStore) get(id string) (*storedTrace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.m[id]
	return st, ok
}

// admit resolves id to a stored trace, computing the entry with build
// at most once across concurrent callers. existed reports a hit on an
// already-resident entry.
func (s *traceStore) admit(id string, build func() (*storedTrace, error)) (st *storedTrace, existed bool, err error) {
	for {
		s.mu.Lock()
		if st, ok := s.m[id]; ok {
			s.mu.Unlock()
			return st, true, nil
		}
		if ch, busy := s.inflight[id]; busy {
			s.mu.Unlock()
			<-ch // another upload of the same bytes is measuring; share it
			continue
		}
		// In-flight admissions reserve capacity so a burst cannot
		// overshoot the bound.
		if len(s.m)+len(s.inflight) >= s.max {
			s.mu.Unlock()
			return nil, false, fmt.Errorf("%w: %d traces resident (remove some or raise the limit)", ErrTraceStoreFull, s.max)
		}
		ch := make(chan struct{})
		s.inflight[id] = ch
		s.mu.Unlock()

		var st *storedTrace
		var err error
		func() {
			// The cleanup must run even if build panics (a wedged
			// inflight entry would block every later upload of these
			// bytes forever and leak the capacity reservation); the
			// panic itself still propagates to the caller.
			defer func() {
				s.mu.Lock()
				delete(s.inflight, id)
				close(ch)
				if err == nil && st != nil {
					s.m[id] = st
				}
				s.mu.Unlock()
			}()
			st, err = build()
		}()
		return st, false, err
	}
}

// remove drops a stored trace, freeing its admission slot. In-flight
// simulations holding the trace pointer are unaffected; later jobs
// referencing the ID fail with unknown-trace.
func (s *traceStore) remove(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[id]; !ok {
		return false
	}
	delete(s.m, id)
	return true
}

func (s *traceStore) infos() []TraceInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceInfo, 0, len(s.m))
	for _, st := range s.m {
		out = append(out, st.info)
	}
	return out
}

func (s *traceStore) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// countingWriter counts bytes flowing into the content hash.
type countingWriter struct {
	h hash.Hash
	n int64
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return w.h.Write(p)
}

// TraceContentID computes a trace's content address without storing it:
// the hash of the canonical (binary v1) encoding. Equal traces get equal
// IDs on every node, which is what makes uploaded workloads shareable
// across sweeps and instances. 16 hash bytes keep a deliberate
// birthday-collision (which would silently alias two workloads) out of
// reach; job IDs stay at 8 bytes because they are derived, not
// attacker-chosen cross-references.
func TraceContentID(tr *trace.Trace) (string, int64, error) {
	cw := &countingWriter{h: sha256.New()}
	if err := trace.WriteBinary(cw, tr); err != nil {
		return "", 0, err
	}
	sum := cw.h.Sum(nil)
	return "trace-" + hex.EncodeToString(sum[:16]), cw.n, nil
}

// signatureGeometry is the admission-measurement configuration: the
// paper's default geometry and bank count (signatures at banks=4 are the
// Table-I granularity Profile derivation expects).
func signatureGeometry() cache.Geometry {
	return cache.Geometry{Size: 16 * 1024, LineSize: 16, Ways: 1, AddressBits: 32}
}

const signatureBanks = 4

// AddTrace validates, content-addresses, characterises and stores an
// uploaded trace. It returns the stored info and whether the trace was
// already resident (admission is idempotent; concurrent uploads of the
// same bytes measure once). Traces must be non-empty — an access-free
// trace has no signature and nothing to simulate — and admission fails
// with ErrTraceStoreFull once the store's bound is reached.
func (e *Engine) AddTrace(tr *trace.Trace) (TraceInfo, bool, error) {
	if tr == nil {
		return TraceInfo{}, false, fmt.Errorf("engine: nil trace")
	}
	if err := tr.Validate(); err != nil {
		return TraceInfo{}, false, err
	}
	if tr.Len() == 0 {
		return TraceInfo{}, false, fmt.Errorf("engine: trace %q has no accesses", tr.Name)
	}
	id, size, err := TraceContentID(tr)
	if err != nil {
		return TraceInfo{}, false, err
	}
	st, existed, err := e.store.admit(id, func() (*storedTrace, error) {
		g := signatureGeometry()
		be, err := e.breakevenFor(g, signatureBanks)
		if err != nil {
			return nil, err
		}
		sig, err := workload.MeasureSignature(tr, g, signatureBanks, be)
		if err != nil {
			return nil, fmt.Errorf("engine: measuring trace %q: %w", tr.Name, err)
		}
		// Store a private copy: the caller keeps ownership of tr, and a
		// later mutation must not desynchronise the stored accesses from
		// the content address and signature measured here.
		tr := &trace.Trace{
			Name:     tr.Name,
			Accesses: append([]trace.Access(nil), tr.Accesses...),
			Cycles:   tr.Cycles,
		}
		return &storedTrace{
			info: TraceInfo{
				ID:        id,
				Name:      tr.Name,
				Accesses:  tr.Len(),
				Cycles:    tr.Cycles,
				Density:   tr.Density(),
				Bytes:     size,
				Signature: sig,
			},
			tr: tr,
		}, nil
	})
	if err != nil {
		return TraceInfo{}, false, err
	}
	if !existed {
		e.tracesUploaded.Add(1)
	}
	return st.info, existed, nil
}

// RemoveTrace drops an uploaded trace from the store, freeing its
// admission slot. Simulations already holding the trace finish
// unaffected; subsequent jobs referencing the ID fail as unknown.
func (e *Engine) RemoveTrace(id string) bool {
	return e.store.remove(id)
}

// breakevenFor derives the Block Control threshold from the engine's
// energy model, the same way core.New does for simulations.
func (e *Engine) breakevenFor(g cache.Geometry, banks int) (uint64, error) {
	beF, err := e.tech.BreakevenCycles(g, banks)
	if err != nil {
		return 0, err
	}
	be := uint64(beF)
	if be < 1 {
		be = 1
	}
	return be, nil
}

// TraceInfo returns the stored metadata for an uploaded trace.
func (e *Engine) TraceInfo(id string) (TraceInfo, bool) {
	st, ok := e.store.get(id)
	if !ok {
		return TraceInfo{}, false
	}
	return st.info, true
}

// TraceInfos lists every uploaded trace (unordered).
func (e *Engine) TraceInfos() []TraceInfo {
	return e.store.infos()
}

// storedTraceByID resolves an uploaded trace for simulation.
func (e *Engine) storedTraceByID(id string) (*trace.Trace, bool) {
	st, ok := e.store.get(id)
	if !ok {
		return nil, false
	}
	return st.tr, true
}

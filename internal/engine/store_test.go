package engine

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"nbticache/internal/core"
	"nbticache/internal/trace"
)

func uploadableTrace(t *testing.T, name string, n int, seed int64) *trace.Trace {
	t.Helper()
	tr := &trace.Trace{Name: name}
	rng := rand.New(rand.NewSource(seed))
	cycle := uint64(0)
	for i := 0; i < n; i++ {
		cycle += uint64(rng.Intn(9) + 1)
		tr.Append(cycle, uint64(rng.Intn(1<<14)), trace.Kind(rng.Intn(2)))
	}
	tr.Cycles = cycle + 50
	return tr
}

func TestAddTraceContentAddressed(t *testing.T) {
	e := testEngine(t, 2)
	tr := uploadableTrace(t, "real", 2000, 21)

	info, existed, err := e.AddTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if existed {
		t.Error("first upload reported as existing")
	}
	if !strings.HasPrefix(info.ID, "trace-") {
		t.Errorf("ID %q not content-addressed", info.ID)
	}
	if info.Accesses != tr.Len() || info.Cycles != tr.Cycles || info.Name != "real" {
		t.Errorf("info shape wrong: %+v", info)
	}
	if info.Signature == nil || info.Signature.Banks != 4 || len(info.Signature.UsefulIdleness) != 4 {
		t.Errorf("trace not characterised at admission: %+v", info.Signature)
	}

	// Same bytes, second upload: same ID, resident entry wins.
	again, existed, err := e.AddTrace(uploadableTrace(t, "real", 2000, 21))
	if err != nil {
		t.Fatal(err)
	}
	if !existed || again.ID != info.ID {
		t.Errorf("re-upload not deduplicated: %+v vs %+v", again, info)
	}
	if got := e.Stats().TracesUploaded; got != 1 {
		t.Errorf("TracesUploaded = %d, want 1", got)
	}
	if got := e.Stats().TracesStored; got != 1 {
		t.Errorf("TracesStored = %d, want 1", got)
	}

	// A different trace gets a different address.
	other, _, err := e.AddTrace(uploadableTrace(t, "real", 2000, 22))
	if err != nil {
		t.Fatal(err)
	}
	if other.ID == info.ID {
		t.Error("distinct traces share an ID")
	}

	if _, ok := e.TraceInfo(info.ID); !ok {
		t.Error("TraceInfo lookup failed")
	}
	// The store holds a private copy: mutating the uploaded trace must
	// not desynchronise the stored accesses from the content address.
	tr.Append(tr.Cycles+10, 0xdead, trace.Read)
	if st, ok := e.storedTraceByID(info.ID); !ok || st.Len() != info.Accesses {
		t.Errorf("stored trace aliased caller's: len %d, want %d", st.Len(), info.Accesses)
	}
	if got := len(e.TraceInfos()); got != 2 {
		t.Errorf("TraceInfos len = %d, want 2", got)
	}
}

func TestAddTraceRejects(t *testing.T) {
	e := testEngine(t, 2)
	if _, _, err := e.AddTrace(nil); err == nil {
		t.Error("nil trace accepted")
	}
	if _, _, err := e.AddTrace(&trace.Trace{Name: "empty", Cycles: 10}); err == nil {
		t.Error("access-free trace accepted")
	}
	bad := &trace.Trace{Name: "bad\nname"}
	bad.Append(0, 1, trace.Read)
	if _, _, err := e.AddTrace(bad); err == nil {
		t.Error("control-character name accepted")
	}
}

// TestJobWithUploadedTrace runs a TraceID job and checks the result is
// identical to simulating the same trace in-process through core.
func TestJobWithUploadedTrace(t *testing.T) {
	e := testEngine(t, 2)
	tr := uploadableTrace(t, "measured", 5000, 7)
	info, _, err := e.AddTrace(tr)
	if err != nil {
		t.Fatal(err)
	}

	spec := JobSpec{TraceID: info.ID, Banks: 4}
	res, err := e.RunJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run == nil || res.Projection == nil {
		t.Fatalf("missing payload: %+v", res)
	}

	// In-process reference simulation of the very same trace.
	n := spec.Normalised()
	kind, err := n.PolicyKind()
	if err != nil {
		t.Fatal(err)
	}
	pc, err := core.New(core.Config{
		Geometry: n.Geometry(),
		Banks:    n.Banks,
		Policy:   kind,
		Tech:     e.Tech(),
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := pc.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Misses != want.Misses || res.Run.Hits != want.Hits {
		t.Errorf("engine run diverges: got %d/%d, want %d/%d hits/misses",
			res.Run.Hits, res.Run.Misses, want.Hits, want.Misses)
	}
	mode, err := n.SleepMode()
	if err != nil {
		t.Fatal(err)
	}
	proj, err := core.ProjectAging(e.Model(), want.RegionSleepFractions(), kind, n.Epochs, mode)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Projection.LifetimeYears-proj.LifetimeYears) > 1e-12 {
		t.Errorf("lifetime diverges: got %v, want %v", res.Projection.LifetimeYears, proj.LifetimeYears)
	}
}

func TestSweepWithTraceIDs(t *testing.T) {
	e := testEngine(t, 2)
	info, _, err := e.AddTrace(uploadableTrace(t, "axis", 3000, 5))
	if err != nil {
		t.Fatal(err)
	}

	spec := SweepSpec{TraceIDs: []string{info.ID}, Banks: []int{2, 4}}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("expanded %d jobs, want 2 (no benchmark explosion)", len(jobs))
	}
	for _, j := range jobs {
		if j.TraceID != info.ID || j.Bench != "" {
			t.Errorf("bad expansion: %+v", j)
		}
	}

	h, err := e.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Jobs {
		if r.Failed() || r.Run == nil {
			t.Errorf("trace-backed job failed: %+v", r)
		}
	}

	// Mixed axis: benchmarks and traces side by side.
	mixed := SweepSpec{Benches: []string{"sha"}, TraceIDs: []string{info.ID}}
	jobs, err = mixed.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("mixed axis expanded %d jobs, want 2", len(jobs))
	}
}

// TestTraceStoreBound: admission refuses past the configured bound,
// RemoveTrace frees slots, and removal makes later references fail.
func TestTraceStoreBound(t *testing.T) {
	e, err := New(Options{Workers: 1, Gen: testGen, MaxStoredTraces: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)

	first, _, err := e.AddTrace(uploadableTrace(t, "one", 500, 1))
	if err != nil {
		t.Fatal(err)
	}
	second := uploadableTrace(t, "two", 500, 2)
	if _, _, err := e.AddTrace(second); !errors.Is(err, ErrTraceStoreFull) {
		t.Fatalf("over-bound admission err = %v, want ErrTraceStoreFull", err)
	}
	// Re-uploading the resident trace is still idempotent at the bound.
	if _, existed, err := e.AddTrace(uploadableTrace(t, "one", 500, 1)); err != nil || !existed {
		t.Fatalf("idempotent re-upload at bound: existed=%v err=%v", existed, err)
	}

	if !e.RemoveTrace(first.ID) {
		t.Fatal("RemoveTrace failed for resident trace")
	}
	if e.RemoveTrace(first.ID) {
		t.Error("double remove succeeded")
	}
	if _, _, err := e.AddTrace(second); err != nil {
		t.Fatalf("admission after removal: %v", err)
	}
	if _, err := e.RunJob(context.Background(), JobSpec{TraceID: first.ID}); err == nil {
		t.Error("job referencing a removed trace succeeded")
	}
}

// TestAddTraceConcurrentDedup: racing uploads of identical bytes settle
// on one stored entry and one measurement-side admission.
func TestAddTraceConcurrentDedup(t *testing.T) {
	e := testEngine(t, 2)
	const racers = 8
	ids := make([]string, racers)
	errs := make([]error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			info, _, err := e.AddTrace(uploadableTrace(t, "race", 2000, 99))
			ids[i], errs[i] = info.ID, err
		}(i)
	}
	wg.Wait()
	for i := 0; i < racers; i++ {
		if errs[i] != nil {
			t.Fatalf("racer %d: %v", i, errs[i])
		}
		if ids[i] != ids[0] {
			t.Fatalf("racer %d got ID %q, racer 0 got %q", i, ids[i], ids[0])
		}
	}
	if st := e.Stats(); st.TracesStored != 1 || st.TracesUploaded != 1 {
		t.Errorf("store counts after race: %+v", st)
	}
}

func TestSubmitUnknownTraceID(t *testing.T) {
	e := testEngine(t, 2)
	_, err := e.Submit(context.Background(), SweepSpec{TraceIDs: []string{"trace-doesnotexist00"}})
	if err == nil || !strings.Contains(err.Error(), "unknown trace") {
		t.Errorf("submit err = %v, want unknown-trace rejection", err)
	}
	// The synchronous path reports it too.
	if _, err := e.RunJob(context.Background(), JobSpec{TraceID: "trace-doesnotexist00"}); err == nil {
		t.Error("RunJob with unknown trace accepted")
	}
}

func TestJobSpecWorkloadValidation(t *testing.T) {
	if err := (JobSpec{}).Validate(); err == nil {
		t.Error("workload-free spec accepted")
	}
	if err := (JobSpec{Bench: "sha", TraceID: "trace-x"}).Validate(); err == nil {
		t.Error("double-workload spec accepted")
	}
	if err := (JobSpec{TraceID: "trace-x"}).Validate(); err != nil {
		t.Errorf("trace-backed spec rejected statically: %v", err)
	}
	// IDs keep benchmark and trace workloads in disjoint spaces.
	a := JobSpec{Bench: "sha"}.ID()
	b := JobSpec{TraceID: "sha"}.ID()
	if a == b {
		t.Error("bench and trace workload IDs collide")
	}
}

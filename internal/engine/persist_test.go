package engine

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"nbticache/internal/cache"
	"nbticache/internal/trace"
	"nbticache/internal/workload"
)

func persistentEngine(t *testing.T, dir string) *Engine {
	t.Helper()
	e, err := New(Options{Workers: 2, Gen: testGen, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestJobResultCodecRoundTrip: a real result survives the versioned
// binary codec bit-for-bit, and the decoder rejects misfiled and
// damaged blobs instead of panicking.
func TestJobResultCodecRoundTrip(t *testing.T) {
	e := testEngine(t, 1)
	spec := JobSpec{Bench: "sha", Banks: 4, Mode: ModePowerGated, UpdateEvery: 512}
	res, err := e.RunJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := encodeJobResult(res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeJobResult(res.ID, blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != res.ID || !reflect.DeepEqual(got.Spec, res.Spec) {
		t.Errorf("spec round trip: got %+v, want %+v", got.Spec, res.Spec)
	}
	if !reflect.DeepEqual(got.Run, res.Run) {
		t.Errorf("run round trip diverged:\ngot  %+v\nwant %+v", got.Run, res.Run)
	}
	if !reflect.DeepEqual(got.Projection, res.Projection) {
		t.Errorf("projection round trip diverged:\ngot  %+v\nwant %+v", got.Projection, res.Projection)
	}

	// Misfiled: the blob answers only for its own job ID.
	other := JobSpec{Bench: "sha", Banks: 8}.ID()
	if _, err := decodeJobResult(other, blob); err == nil {
		t.Error("blob accepted under another job's address")
	}
	// Damaged: every truncation is an error, never a panic or a
	// silently partial result.
	for i := 0; i < len(blob); i++ {
		if _, err := decodeJobResult(res.ID, blob[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", i)
		}
	}
	// Failures are not persistable.
	if _, err := encodeJobResult(&JobResult{ID: "job-x", Err: "boom"}); err == nil {
		t.Error("failed result encoded")
	}
}

// TestTraceBlobCodecRoundTrip: the persisted trace form (signature +
// canonical encoding) reproduces the stored trace exactly and verifies
// its own content address.
func TestTraceBlobCodecRoundTrip(t *testing.T) {
	e := testEngine(t, 1)
	info, _, err := e.AddTrace(uploadableTrace(t, "roundtrip", 1500, 3))
	if err != nil {
		t.Fatal(err)
	}
	st, ok := e.store.resolve(info.ID)
	if !ok {
		t.Fatal("stored trace vanished")
	}
	blob, err := encodeTraceBlob(st)
	if err != nil {
		t.Fatal(err)
	}
	got, legacy, err := decodeTraceBlob(info.ID, blob)
	if err != nil {
		t.Fatal(err)
	}
	if legacy {
		t.Error("freshly encoded blob reported as legacy format")
	}
	if !reflect.DeepEqual(got.info, st.info) {
		t.Errorf("info round trip:\ngot  %+v\nwant %+v", got.info, st.info)
	}
	if !reflect.DeepEqual(got.cols, st.cols) {
		t.Error("trace columns did not round trip")
	}
	if _, _, err := decodeTraceBlob("trace-0000", blob); err == nil {
		t.Error("trace blob accepted under another content address")
	}
}

// TestTraceBlobErrorChain: a blob whose embedded trace encoding is
// corrupt must match both ErrBadBlob and the trace decoder's own
// sentinel through one errors.Is chain. The chain used to break at the
// engine layer — decodeTraceBlob wrapped the decoder error with %v —
// so errors.Is(err, trace.ErrBadFormat) was silently false and callers
// could not tell a malformed embedded trace from a misfiled one
// (nbtivet senterr regression).
func TestTraceBlobErrorChain(t *testing.T) {
	e := testEngine(t, 1)
	info, _, err := e.AddTrace(uploadableTrace(t, "chain", 900, 2))
	if err != nil {
		t.Fatal(err)
	}
	st, ok := e.store.resolve(info.ID)
	if !ok {
		t.Fatal("stored trace vanished")
	}
	blob, err := encodeTraceBlob(st)
	if err != nil {
		t.Fatal(err)
	}
	// The trace columns sit at the tail of the blob; truncating them
	// leaves the header and signature intact and makes only the embedded
	// trace malformed.
	_, _, err = decodeTraceBlob(info.ID, blob[:len(blob)-3])
	if err == nil {
		t.Fatal("truncated trace section decoded")
	}
	if !errors.Is(err, ErrBadBlob) {
		t.Errorf("errors.Is(err, ErrBadBlob) = false for %v", err)
	}
	if !errors.Is(err, trace.ErrBadFormat) {
		t.Errorf("errors.Is(err, trace.ErrBadFormat) = false for %v; the wrap chain is broken", err)
	}
	// The decoder's masking taxonomy must survive the extra layer: a
	// truncation is malformed input, never a clean end-of-stream.
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncation leaked an io sentinel through the chain: %v", err)
	}
}

// TestEngineWarmRestart is the restart-durability acceptance test: an
// engine uploads a trace and completes jobs, closes, and a second
// engine on the same data directory serves both without redoing any
// work — the counters prove zero re-simulation.
func TestEngineWarmRestart(t *testing.T) {
	dir := t.TempDir()
	benchSpec := JobSpec{Bench: "sha", Banks: 4}

	e1 := persistentEngine(t, dir)
	info, _, err := e1.AddTrace(uploadableTrace(t, "durable", 2000, 11))
	if err != nil {
		t.Fatal(err)
	}
	traceSpec := JobSpec{TraceID: info.ID, Banks: 2}
	if _, err := e1.RunJob(context.Background(), benchSpec); err != nil {
		t.Fatal(err)
	}
	first, err := e1.RunJob(context.Background(), traceSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Persistence is write-behind: drain before counting landed blobs.
	e1.Drain()
	if st := e1.Stats(); !st.Persistent || st.ResultBlobs != 2 || st.TraceBlobs != 1 {
		t.Fatalf("pre-restart persistence state: %+v", st)
	}
	e1.Close()

	e2 := persistentEngine(t, dir)
	// The uploaded trace is resident again, signature included, with no
	// re-measurement.
	infos := e2.TraceInfos()
	if len(infos) != 1 || infos[0].ID != info.ID {
		t.Fatalf("traces after restart: %+v", infos)
	}
	if !reflect.DeepEqual(infos[0].Signature, info.Signature) {
		t.Errorf("signature did not survive restart:\ngot  %+v\nwant %+v", infos[0].Signature, info.Signature)
	}
	// Both jobs resolve from disk as cache hits.
	for _, spec := range []JobSpec{benchSpec, traceSpec} {
		res, err := e2.RunJob(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cached {
			t.Errorf("job %s re-simulated after restart", spec.ID())
		}
		if res.Run == nil || res.Projection == nil {
			t.Fatalf("restored result incomplete: %+v", res)
		}
	}
	// And the trace-backed result matches the original measurement.
	again, err := e2.RunJob(context.Background(), traceSpec)
	if err != nil {
		t.Fatal(err)
	}
	if again.Run.Misses != first.Run.Misses || again.Projection.LifetimeYears != first.Projection.LifetimeYears {
		t.Error("restored result diverges from the pre-restart simulation")
	}
	// Zero re-simulation, proven by counters: no runs executed, no
	// synthetic traces generated, every job a persistence hit.
	st := e2.Stats()
	if st.RunsExecuted != 0 {
		t.Errorf("runs executed after restart = %d, want 0", st.RunsExecuted)
	}
	if st.TracesBuilt != 0 {
		t.Errorf("synthetic traces built after restart = %d, want 0", st.TracesBuilt)
	}
	if st.CacheMisses != 0 || st.CacheHits < 2 {
		t.Errorf("cache hits/misses after restart = %d/%d, want >=2/0", st.CacheHits, st.CacheMisses)
	}
	if st.PersistHits < 3 { // two job blobs (one read twice) + one trace blob
		t.Errorf("persist hits after restart = %d, want >= 3", st.PersistHits)
	}
	// The content address resolves without any prior call this process.
	if _, ok := e2.Job(benchSpec.ID()); !ok {
		t.Error("Job lookup by content address missed after restart")
	}
}

// TestCorruptResultBlobResimulated: a bit-flipped result blob is
// quarantined on read and the job transparently re-simulates — counters
// record the corruption, nothing fails.
func TestCorruptResultBlobResimulated(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Bench: "sha", Banks: 4}

	e1 := persistentEngine(t, dir)
	if _, err := e1.RunJob(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	e1.Close()

	path := filepath.Join(dir, "jobs", spec.ID()+".blob")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-40] ^= 0xff // payload byte, inside the checksum's reach
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := persistentEngine(t, dir)
	res, err := e2.RunJob(context.Background(), spec)
	if err != nil {
		t.Fatalf("corrupt blob was fatal: %v", err)
	}
	if res.Cached {
		t.Error("corrupt blob served as a cache hit")
	}
	st := e2.Stats()
	if st.RunsExecuted != 1 {
		t.Errorf("runs executed = %d, want 1 (re-simulation)", st.RunsExecuted)
	}
	if st.PersistCorruptions == 0 {
		t.Error("corruption not counted")
	}
	if entries, err := os.ReadDir(filepath.Join(dir, "jobs", "quarantine")); err != nil || len(entries) == 0 {
		t.Errorf("bad blob not quarantined: %v, %v", entries, err)
	}
	// The re-simulated result was re-persisted: a third engine hits.
	e2.Close()
	e3 := persistentEngine(t, dir)
	if res, err := e3.RunJob(context.Background(), spec); err != nil || !res.Cached {
		t.Errorf("re-persisted result not served: cached=%v err=%v", res.Cached, err)
	}
}

// TestDiskStoreCrashLeavesNoPartialResult: a temp file abandoned
// mid-write (the only window a crash can hit) is cleaned at reopen and
// never surfaces as a job result.
func TestDiskStoreCrashLeavesNoPartialResult(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Bench: "sha", Banks: 4}
	e1 := persistentEngine(t, dir)
	if _, err := e1.RunJob(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	e1.Close()
	stray := filepath.Join(dir, "jobs", ".tmp-crashed")
	if err := os.WriteFile(stray, []byte("NBJR partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := persistentEngine(t, dir)
	if _, err := os.Lstat(stray); !os.IsNotExist(err) {
		t.Error("crash leftover not cleaned at reopen")
	}
	if st := e2.Stats(); st.ResultBlobs != 1 || st.PersistCorruptions != 0 {
		t.Errorf("state after crash recovery: %+v", st)
	}
	if res, err := e2.RunJob(context.Background(), spec); err != nil || !res.Cached {
		t.Errorf("completed blob lost to crash recovery: cached=%v err=%v", res.Cached, err)
	}
}

// TestRemoveTracePinnedBySweep is the DELETE-during-sweep regression:
// removing a trace an in-flight sweep references must not break the
// sweep's jobs — the trace vanishes from lookups immediately and its
// storage is reclaimed when the sweep finishes.
func TestRemoveTracePinnedBySweep(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	blockingGen := func(g cache.Geometry) workload.GenParams {
		<-release // stalls the sweep's first (benchmark) job
		return testGen(g)
	}
	e, err := New(Options{Workers: 1, Gen: blockingGen, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)

	info, _, err := e.AddTrace(uploadableTrace(t, "pinned", 1500, 13))
	if err != nil {
		t.Fatal(err)
	}
	// Job 0 blocks the single worker in trace generation; the
	// trace-backed jobs sit queued behind it when the DELETE lands.
	h, err := e.Submit(context.Background(), SweepSpec{Jobs: []JobSpec{
		{Bench: "sha"},
		{TraceID: info.ID, Banks: 2},
		{TraceID: info.ID, Banks: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}

	if !e.RemoveTrace(info.ID) {
		t.Fatal("RemoveTrace refused a pinned trace")
	}
	// Immediately invisible to lookups, listings and new submissions...
	if _, ok := e.TraceInfo(info.ID); ok {
		t.Error("condemned trace still listed by TraceInfo")
	}
	if len(e.TraceInfos()) != 0 {
		t.Error("condemned trace still in TraceInfos")
	}
	if _, err := e.Submit(context.Background(), SweepSpec{TraceIDs: []string{info.ID}}); err == nil || !strings.Contains(err.Error(), "unknown trace") {
		t.Errorf("new sweep referencing a condemned trace: err = %v", err)
	}
	// ...including to a direct (unpinned) RunJob at a fresh point: only
	// the pinned sweep may still resolve the condemned trace.
	if _, err := e.RunJob(context.Background(), JobSpec{TraceID: info.ID, Banks: 8}); err == nil || !strings.Contains(err.Error(), "unknown trace") {
		t.Errorf("direct RunJob resolved a condemned trace: err = %v", err)
	}

	close(release)
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// ...but the in-flight sweep's jobs all resolved it.
	for _, r := range res.Jobs {
		if r.Failed() {
			t.Errorf("pinned sweep job broke: %s", r.Err)
		}
	}
	// The sweep is over: the deferred removal completed, disk included.
	if _, ok := e.storedTraceByID(info.ID); ok {
		t.Error("condemned trace survived its last pin")
	}
	if st := e.Stats(); st.TracesStored != 0 || st.TraceBlobs != 0 {
		t.Errorf("trace storage not reclaimed: %+v", st)
	}
	if _, err := os.Lstat(filepath.Join(dir, "traces", info.ID+".blob")); !os.IsNotExist(err) {
		t.Error("trace blob file survived the deferred removal")
	}
}

// TestRemoveTraceUnpinnedIsImmediate: without pins the removal is
// complete at once (the pre-pinning behaviour, unchanged).
func TestRemoveTraceUnpinnedIsImmediate(t *testing.T) {
	dir := t.TempDir()
	e := persistentEngine(t, dir)
	info, _, err := e.AddTrace(uploadableTrace(t, "loose", 800, 17))
	if err != nil {
		t.Fatal(err)
	}
	if !e.RemoveTrace(info.ID) {
		t.Fatal("RemoveTrace failed")
	}
	if _, err := os.Lstat(filepath.Join(dir, "traces", info.ID+".blob")); !os.IsNotExist(err) {
		t.Error("blob survived an immediate removal")
	}
	// Re-admission after removal works and re-persists.
	if _, existed, err := e.AddTrace(uploadableTrace(t, "loose", 800, 17)); err != nil || existed {
		t.Fatalf("re-admission: existed=%v err=%v", existed, err)
	}
	if st := e.Stats(); st.TraceBlobs != 1 {
		t.Errorf("re-admitted trace not persisted: %+v", st)
	}
}

// TestDataDirFailsFast: an unusable data directory fails Engine
// construction with a clear error, not the first write.
func TestDataDirFailsFast(t *testing.T) {
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{DataDir: filepath.Join(f, "nested")}); err == nil {
		t.Fatal("engine accepted a data dir through a regular file")
	} else if !strings.Contains(err.Error(), "data dir") {
		t.Errorf("unclear failure: %v", err)
	}
}

// TestWarmRestartRespectsTraceBound: a restart with a tighter trace
// bound loads oldest-first up to the bound instead of overshooting it.
func TestWarmRestartRespectsTraceBound(t *testing.T) {
	dir := t.TempDir()
	e1 := persistentEngine(t, dir)
	for i := 0; i < 3; i++ {
		if _, _, err := e1.AddTrace(uploadableTrace(t, "bulk", 600, int64(20+i))); err != nil {
			t.Fatal(err)
		}
	}
	e1.Close()

	e2, err := New(Options{Workers: 1, Gen: testGen, DataDir: dir, MaxStoredTraces: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e2.Close)
	if got := e2.Stats().TracesStored; got != 2 {
		t.Errorf("resident traces after bounded restart = %d, want 2", got)
	}
}

package engine

import "sync"

// SweepEvent is one resolved job slot in a sweep's merge order. Seq is
// the merged-count cursor after this event (1-based, dense): a consumer
// that has seen Seq=k has seen every earlier completion, so k is the
// resume cursor the streaming HTTP surface round-trips as the SSE event
// id / `Last-Event-ID`. Job is the full result — streamed merges carry
// the same payload the poll path read back, so a coordinator consuming
// the stream merges byte-identical state.
type SweepEvent struct {
	Seq int        `json:"seq"`
	Job *JobResult `json:"job"`
}

// eventSub is one subscriber's bounded delivery channel.
type eventSub struct {
	ch chan SweepEvent
	// gone marks the channel closed (lagged consumer, cancel, or sweep
	// end) so it is never closed twice.
	gone bool
}

// subBuffer is each subscriber's channel capacity. A consumer that
// falls further behind than this is coalesced: its channel is closed
// and it resyncs from the log via EventsFrom with its last-seen cursor
// (the backlog replay re-delivers everything it missed). The merge path
// itself never blocks on a slow consumer.
const subBuffer = 128

// EventLog is a sweep's append-only completion log plus its live
// subscriber registry. It has its own lock — callers may append while
// holding a handle's mutex; the log never calls back out.
type EventLog struct {
	mu     sync.Mutex
	events []SweepEvent
	subs   map[int]*eventSub
	nextID int
	closed bool
}

// Append records one completion (assigning the next Seq) and fans it
// out to live subscribers without blocking: a subscriber whose buffer
// is full is dropped (channel closed) and must resync from the log.
func (l *EventLog) Append(res *JobResult) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ev := SweepEvent{Seq: len(l.events) + 1, Job: res}
	l.events = append(l.events, ev)
	for id, s := range l.subs {
		if s.gone {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			s.gone = true
			close(s.ch)
			delete(l.subs, id)
		}
	}
}

// Close ends the log: every live subscriber's channel closes after the
// events already buffered drain. Idempotent.
func (l *EventLog) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for id, s := range l.subs {
		if !s.gone {
			s.gone = true
			close(s.ch)
		}
		delete(l.subs, id)
	}
}

// EventsFrom subscribes at cursor `from` (events already logged past it
// come back as the backlog slice; later ones arrive on the channel).
// The channel closes when the sweep finishes or the subscriber lags —
// the consumer distinguishes the two by whether its cursor reached the
// sweep's total, and resubscribes from its cursor to resync after a
// lag. cancel releases the subscription (idempotent, safe after close).
func (l *EventLog) EventsFrom(from int) (backlog []SweepEvent, live <-chan SweepEvent, cancel func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(l.events) {
		from = len(l.events)
	}
	backlog = make([]SweepEvent, len(l.events)-from)
	copy(backlog, l.events[from:])
	s := &eventSub{ch: make(chan SweepEvent, subBuffer)}
	if l.closed {
		s.gone = true
		close(s.ch)
		return backlog, s.ch, func() {}
	}
	id := l.nextID
	l.nextID++
	l.subs[id] = s
	return backlog, s.ch, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if cur, ok := l.subs[id]; ok && cur == s {
			if !s.gone {
				s.gone = true
				close(s.ch)
			}
			delete(l.subs, id)
		}
	}
}

// NewEventLog builds an empty log ready for subscribers.
func NewEventLog() *EventLog {
	return &EventLog{subs: make(map[int]*eventSub)}
}

// EventsFrom subscribes to the sweep's completion feed at cursor
// `from` (0 replays from the start): completions already merged come
// back immediately as backlog, later ones arrive on live in merge
// order. The channel closes when the sweep finishes — or earlier if the
// subscriber falls more than a buffer behind, in which case its cursor
// is still short of Status().Total and it should resubscribe from that
// cursor to resync. cancel releases the subscription.
func (h *Handle) EventsFrom(from int) (backlog []SweepEvent, live <-chan SweepEvent, cancel func()) {
	return h.events.EventsFrom(from)
}

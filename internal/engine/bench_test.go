package engine

import (
	"context"
	"runtime"
	"testing"

	"nbticache/internal/obs"
	"nbticache/internal/trace"
	"nbticache/internal/workload"
)

// benchSweep is the 36-point workload × banks grid both variants run.
var benchSweep = SweepSpec{Benches: workload.Names(), Banks: []int{4, 8}}

// runEngineSweep times one full sweep execution with the result cache
// cleared each iteration (traces persist, so ns/op is pure simulation +
// orchestration — the quantity a worker-pool change moves). The default
// nil telemetry builds a live registry + tracer, so the headline numbers
// include instrumentation cost exactly like a production node.
func runEngineSweep(b *testing.B, workers int) {
	b.Helper()
	runEngineSweepTel(b, workers, nil)
}

func runEngineSweepTel(b *testing.B, workers int, tel *obs.Telemetry) {
	b.Helper()
	e, err := New(Options{Workers: workers, Gen: testGen, Telemetry: tel})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	for _, name := range workload.Names() {
		if _, err := e.Trace(context.Background(), name, (JobSpec{Bench: name}).Geometry()); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ResetRuns()
		h, err := e.Submit(context.Background(), benchSweep)
		if err != nil {
			b.Fatal(err)
		}
		res, err := h.Wait(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Jobs {
			if r.Failed() {
				b.Fatalf("job %s: %s", r.ID, r.Err)
			}
		}
	}
	b.ReportMetric(float64(len(benchSweep.Benches)*len(benchSweep.Banks))/b.Elapsed().Seconds()*float64(b.N), "jobs/s")
}

// BenchmarkEngineSweep compares serial (1 worker) against pooled
// (GOMAXPROCS workers) execution of the same 36-job sweep — the baseline
// future perf PRs measure against.
func BenchmarkEngineSweep(b *testing.B) {
	b.Run("serial", func(b *testing.B) { runEngineSweep(b, 1) })
	b.Run("pooled", func(b *testing.B) { runEngineSweep(b, runtime.GOMAXPROCS(0)) })
}

// BenchmarkEngineSweepTelemetry pits the instrumented sweep path (live
// registry + tracer, the default) against obs.Nop() on the same
// workload, so the telemetry tax is a measured number PR over PR; the
// overhead guard test asserts it stays within noise.
func BenchmarkEngineSweepTelemetry(b *testing.B) {
	b.Run("live", func(b *testing.B) { runEngineSweepTel(b, runtime.GOMAXPROCS(0), obs.New()) })
	b.Run("nop", func(b *testing.B) { runEngineSweepTel(b, runtime.GOMAXPROCS(0), obs.Nop()) })
}

// benchUploadTrace builds a deterministic mid-sized trace (64k accesses)
// for the warm-start path, so "open+hit" pays a realistic trace-blob
// reload — decode plus signature restore — not just a job-result read.
func benchUploadTrace() *trace.Trace {
	tr := &trace.Trace{Name: "warmstart-upload"}
	var cycle uint64
	for i := 0; i < 1<<16; i++ {
		addr := uint64(i%4096)<<4 + uint64(i/4096)<<16
		kind := trace.Read
		if i%5 == 0 {
			kind = trace.Write
		}
		tr.Append(cycle, addr, kind)
		cycle += uint64(1 + i%3)
		if i%512 == 0 {
			cycle += 4096 // long idle gaps so the signature has sleep content
		}
	}
	return tr
}

// BenchmarkWarmStart measures the persistence payoff path: opening an
// engine on a populated data directory (uploaded-trace reload included)
// and resolving previously simulated jobs from disk, against
// re-simulating the same synthetic job cold. The gap between the two is
// what a restart no longer costs.
func BenchmarkWarmStart(b *testing.B) {
	dir := b.TempDir()
	spec := JobSpec{Bench: "sha", Banks: 4}
	seed, err := New(Options{Workers: 1, Gen: testGen, DataDir: dir})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := seed.RunJob(context.Background(), spec); err != nil {
		b.Fatal(err)
	}
	info, _, err := seed.AddTrace(benchUploadTrace())
	if err != nil {
		b.Fatal(err)
	}
	traceSpec := JobSpec{TraceID: info.ID, Banks: 4}
	if _, err := seed.RunJob(context.Background(), traceSpec); err != nil {
		b.Fatal(err)
	}
	seed.Close()

	b.Run("open+hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, err := New(Options{Workers: 1, Gen: testGen, DataDir: dir})
			if err != nil {
				b.Fatal(err)
			}
			for _, s := range []JobSpec{spec, traceSpec} {
				res, err := e.RunJob(context.Background(), s)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Cached {
					b.Fatal("warm start missed the persisted result")
				}
			}
			e.Close()
		}
	})
	b.Run("cold-simulate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, err := New(Options{Workers: 1, Gen: testGen})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.RunJob(context.Background(), spec); err != nil {
				b.Fatal(err)
			}
			e.Close()
		}
	})
}

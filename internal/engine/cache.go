package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// flightCache is a content-addressed cache with single-flight semantics:
// the first caller of do for a key becomes the leader and computes the
// value; concurrent callers for the same key block until the leader
// finishes and then share its result. Successful results are cached
// forever (simulations are deterministic); failures are evicted so a
// later request — e.g. a resubmission after a cancellation — retries.
type flightCache[V any] struct {
	mu      sync.Mutex
	entries map[string]*flightEntry[V]

	hits   atomic.Uint64
	misses atomic.Uint64
}

type flightEntry[V any] struct {
	done chan struct{} // closed when val/err are final
	val  V
	err  error
}

func newFlightCache[V any]() *flightCache[V] {
	return &flightCache[V]{entries: make(map[string]*flightEntry[V])}
}

// do returns the cached value for key, computing it with fn if absent.
// cached reports whether the value came from the cache (including
// waiting on a concurrent leader) rather than from this call's own fn.
// ctx bounds only the wait on another leader; the leader itself passes
// ctx down through fn. A waiter whose leader was cancelled — the
// leader's context, not the waiter's — retries instead of inheriting
// the cancellation, so cancelling one sweep never contaminates an
// identical job submitted by another.
func (c *flightCache[V]) do(ctx context.Context, key string, fn func() (V, error)) (val V, cached bool, err error) {
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if !ok {
			e = &flightEntry[V]{done: make(chan struct{})}
			c.entries[key] = e
			c.mu.Unlock()
			c.misses.Add(1)
			func() {
				// Settle the entry even if fn panics: waiters must not
				// block forever on a leader that never closes done. The
				// panic is re-raised after the entry is evicted, so a
				// later caller retries.
				defer func() {
					if r := recover(); r != nil {
						e.err = fmt.Errorf("engine: computation panicked: %v", r)
						c.mu.Lock()
						delete(c.entries, key)
						c.mu.Unlock()
						close(e.done)
						panic(r)
					}
					if e.err != nil {
						// Evicted before done closes, so a retrying
						// waiter finds no stale entry.
						c.mu.Lock()
						delete(c.entries, key)
						c.mu.Unlock()
					}
					close(e.done)
				}()
				e.val, e.err = fn()
			}()
			return e.val, false, e.err
		}
		c.mu.Unlock()
		c.hits.Add(1)
		select {
		case <-e.done:
			if isCtxErr(e.err) && ctx.Err() == nil {
				continue // leader cancelled, we weren't: take over
			}
			return e.val, true, e.err
		case <-ctx.Done():
			var zero V
			return zero, false, ctx.Err()
		}
	}
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// get returns the completed value for key, if present. In-flight
// computations are reported as absent: get never blocks.
func (c *flightCache[V]) get(key string) (V, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	var zero V
	if !ok {
		return zero, false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return zero, false
		}
		return e.val, true
	default:
		return zero, false
	}
}

// reset drops every completed entry. In-flight entries are kept so
// running leaders still have a home for their result.
func (c *flightCache[V]) reset() {
	c.mu.Lock()
	for k, e := range c.entries {
		select {
		case <-e.done:
			delete(c.entries, k)
		default:
		}
	}
	c.mu.Unlock()
}

// size returns the number of entries (completed or in flight).
func (c *flightCache[V]) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nbticache/internal/cas"
)

// Two caching layers live here. blobCache is the persistent one: a thin
// typed adapter over a cas.Store (memory or disk) that the job-result
// cache runs on — values cross the boundary through the versioned
// binary codec (codec.go), single-flight and read-through/write-through
// both come from the store, and a decoded value is always a fresh copy,
// so callers can annotate results without contaminating the cache.
// flightCache is the ephemeral one, kept for derived data that is
// cheaper to rebuild than to persist (simulation runs shared across
// sleep modes, generated synthetic traces): values stay as live
// pointers, nothing survives the process.

// blobCodec converts between a typed value and its stored blob. decode
// receives the content address so it can verify the blob answers for it.
type blobCodec[V any] struct {
	encode func(V) ([]byte, error)
	decode func(key string, blob []byte) (V, error)
}

// blobCache adapts a cas.Store to typed values with the engine's
// historical cache semantics: single-flight computation, successful
// values cached, failures evicted so a retry recomputes, a panicking
// computation settles its waiters, and a leader's cancellation never
// contaminates a live waiter (all inherited from cas.Store.GetOrFill).
type blobCache[V any] struct {
	store cas.Store
	codec blobCodec[V]

	hits    atomic.Uint64
	misses  atomic.Uint64
	corrupt atomic.Uint64
}

func newBlobCache[V any](store cas.Store, codec blobCodec[V]) *blobCache[V] {
	return &blobCache[V]{store: store, codec: codec}
}

// do returns the value for key, computing it with fn if absent. cached
// reports whether the value came from the store or a concurrent leader
// rather than from this call's own fn. A stored blob that fails to
// decode is dropped and recomputed — typed-layer corruption degrades to
// a miss exactly like store-layer corruption.
func (c *blobCache[V]) do(ctx context.Context, key string, fn func() (V, error)) (val V, cached bool, err error) {
	var zero V
	for attempt := 0; ; attempt++ {
		var leaderVal V
		var isLeader bool
		blob, hit, err := c.store.GetOrFill(ctx, key, func() ([]byte, error) {
			v, err := fn()
			if err != nil {
				return nil, err
			}
			b, err := c.codec.encode(v)
			if err != nil {
				return nil, err
			}
			leaderVal, isLeader = v, true
			return b, nil
		})
		if err != nil {
			return zero, false, err
		}
		if isLeader && !hit {
			c.misses.Add(1)
			return leaderVal, false, nil
		}
		v, derr := c.codec.decode(key, blob)
		if derr != nil {
			c.corrupt.Add(1)
			_ = c.store.Delete(key)
			if attempt == 0 {
				continue // recompute over the dropped blob
			}
			return zero, false, derr
		}
		c.hits.Add(1)
		return v, true, nil
	}
}

// get returns the completed value for key, if present and readable.
// In-flight computations are reported as absent: get never blocks.
func (c *blobCache[V]) get(key string) (V, bool) {
	var zero V
	blob, err := c.store.Get(key)
	if err != nil {
		return zero, false
	}
	v, err := c.codec.decode(key, blob)
	if err != nil {
		c.corrupt.Add(1)
		_ = c.store.Delete(key)
		return zero, false
	}
	return v, true
}

// put stores a value directly, bypassing single-flight — the import
// path for values computed elsewhere (a replica write-through).
func (c *blobCache[V]) put(key string, v V) error {
	blob, err := c.codec.encode(v)
	if err != nil {
		return err
	}
	return c.store.Put(key, blob)
}

// reset drops every stored value. In-flight computations are
// unaffected; their results land in the store when they settle.
// Outstanding write-behinds are drained first: a pending put landing
// after the deletes below would silently resurrect a value the caller
// meant to drop (benchmarks reset between iterations to force
// re-simulation — a resurrected result would turn them into cache
// reads).
func (c *blobCache[V]) reset() {
	if d, ok := c.store.(interface{ Drain() }); ok {
		d.Drain()
	}
	list, err := c.store.List()
	if err != nil {
		return
	}
	for _, st := range list {
		_ = c.store.Delete(st.Key)
	}
}

// size returns the number of stored values.
func (c *blobCache[V]) size() int {
	return c.store.Metrics().Entries
}

// flightCache is a content-addressed cache with single-flight semantics:
// the first caller of do for a key becomes the leader and computes the
// value; concurrent callers for the same key block until the leader
// finishes and then share its result. Successful results are cached
// forever (simulations are deterministic); failures are evicted so a
// later request — e.g. a resubmission after a cancellation — retries.
type flightCache[V any] struct {
	mu      sync.Mutex
	entries map[string]*flightEntry[V]

	hits   atomic.Uint64
	misses atomic.Uint64
}

type flightEntry[V any] struct {
	done chan struct{} // closed when val/err are final
	val  V
	err  error
}

func newFlightCache[V any]() *flightCache[V] {
	return &flightCache[V]{entries: make(map[string]*flightEntry[V])}
}

// do returns the cached value for key, computing it with fn if absent.
// cached reports whether the value came from the cache (including
// waiting on a concurrent leader) rather than from this call's own fn.
// ctx bounds only the wait on another leader; the leader itself passes
// ctx down through fn. A waiter whose leader was cancelled — the
// leader's context, not the waiter's — retries instead of inheriting
// the cancellation, so cancelling one sweep never contaminates an
// identical job submitted by another.
func (c *flightCache[V]) do(ctx context.Context, key string, fn func() (V, error)) (val V, cached bool, err error) {
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if !ok {
			e = &flightEntry[V]{done: make(chan struct{})}
			c.entries[key] = e
			c.mu.Unlock()
			c.misses.Add(1)
			func() {
				// Settle the entry even if fn panics: waiters must not
				// block forever on a leader that never closes done. The
				// panic is re-raised after the entry is evicted, so a
				// later caller retries.
				defer func() {
					if r := recover(); r != nil {
						e.err = fmt.Errorf("engine: computation panicked: %v", r)
						c.mu.Lock()
						delete(c.entries, key)
						c.mu.Unlock()
						close(e.done)
						panic(r)
					}
					if e.err != nil {
						// Evicted before done closes, so a retrying
						// waiter finds no stale entry.
						c.mu.Lock()
						delete(c.entries, key)
						c.mu.Unlock()
					}
					close(e.done)
				}()
				e.val, e.err = fn()
			}()
			return e.val, false, e.err
		}
		c.mu.Unlock()
		c.hits.Add(1)
		select {
		case <-e.done:
			if isCtxErr(e.err) && ctx.Err() == nil {
				continue // leader cancelled, we weren't: take over
			}
			return e.val, true, e.err
		case <-ctx.Done():
			var zero V
			return zero, false, ctx.Err()
		}
	}
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// get returns the completed value for key, if present. In-flight
// computations are reported as absent: get never blocks.
func (c *flightCache[V]) get(key string) (V, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	var zero V
	if !ok {
		return zero, false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return zero, false
		}
		return e.val, true
	default:
		return zero, false
	}
}

// reset drops every completed entry. In-flight entries are kept so
// running leaders still have a home for their result.
func (c *flightCache[V]) reset() {
	c.mu.Lock()
	for k, e := range c.entries {
		select {
		case <-e.done:
			delete(c.entries, k)
		default:
		}
	}
	c.mu.Unlock()
}

// size returns the number of entries (completed or in flight).
func (c *flightCache[V]) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

package engine

import (
	"context"
	"errors"
	"sync"

	"nbticache/internal/obs"
)

// Handle tracks one submitted sweep. It is safe for concurrent use:
// workers record results into it while any number of clients poll
// Status or block in Wait.
type Handle struct {
	// ID names the sweep ("sweep-N", unique per engine).
	ID string
	// Spec is the submitted spec, verbatim.
	Spec SweepSpec

	jobs []JobSpec
	// pinned are the trace IDs this sweep holds pinned in the engine's
	// trace store until it finishes (see Engine.Submit).
	pinned []string
	eng    *Engine
	ctx    context.Context
	cancel context.CancelFunc

	// span is the sweep's open trace span (nil without a tracer); tsc is
	// its identity, the parent of every per-job span. The span closes
	// when the last job slot resolves.
	span *obs.ActiveSpan
	tsc  obs.SpanContext

	// events is the sweep's completion log: every resolved slot is
	// appended in merge order and fanned out to EventsFrom subscribers
	// (the streaming HTTP surface).
	events *EventLog

	mu        sync.Mutex
	results   []*JobResult
	done      int
	failed    int
	canceled  int
	cached    int
	timing    SweepTiming
	finished  chan struct{}
	cancelled bool
}

// Jobs returns the expanded, deduplicated job list (in submission order).
func (h *Handle) Jobs() []JobSpec { return h.jobs }

// TraceID returns the sweep's trace identity ("" without a tracer). The
// HTTP layer serves the recorded span tree for it.
func (h *Handle) TraceID() string { return h.tsc.TraceID }

// Cancel stops the sweep: jobs not yet started are recorded as
// cancelled, and the sweep still finishes (Wait returns) once every job
// slot is resolved. Completed results are kept.
func (h *Handle) Cancel() {
	h.mu.Lock()
	h.cancelled = true
	h.mu.Unlock()
	h.cancel()
}

// record stores job idx's result exactly once and closes the sweep when
// the last slot resolves.
func (h *Handle) record(idx int, res *JobResult, e *Engine) {
	h.mu.Lock()
	if h.results[idx] != nil { // already resolved (defensive; never expected)
		h.mu.Unlock()
		return
	}
	h.results[idx] = res
	h.done++
	if t := res.Timing; t != nil {
		h.timing.QueueMs += t.QueueMs
		h.timing.RunMs += t.ResolveMs + t.SimulateMs + t.ProjectMs
		h.timing.PersistMs += t.PersistMs
		h.timing.JobsTimed++
	}
	switch {
	case res.Canceled:
		h.canceled++
		e.jobsCanceled.Add(1)
	case res.Err != "":
		h.failed++
		e.jobsFailed.Add(1)
	default:
		if res.Cached {
			h.cached++
		}
		e.jobsCompleted.Add(1)
	}
	// Append under h.mu so the event's Seq always equals the done count
	// it advanced to (the log has its own lock and never calls back).
	h.events.Append(res)
	last := h.done == len(h.jobs)
	h.mu.Unlock()
	if last {
		h.cancel() // release the context; the sweep is over
		h.span.End()
		// Release the sweep's trace pins before announcing completion,
		// so a removal deferred behind this sweep is already final when
		// Wait returns.
		e.store.unpinAll(h.pinned)
		close(h.finished)
		h.events.Close()
	}
}

// SweepTiming aggregates the per-job wall-clock decomposition across a
// sweep's resolved slots, in milliseconds summed over JobsTimed jobs
// (divide for per-job means). QueueMs is time spent waiting for a
// worker, RunMs the computation itself (resolve + simulate + project),
// PersistMs the result-cache traversal.
type SweepTiming struct {
	QueueMs   float64 `json:"queue_ms"`
	RunMs     float64 `json:"run_ms"`
	PersistMs float64 `json:"persist_ms"`
	JobsTimed int     `json:"jobs_timed"`
}

// SweepStatus is a point-in-time progress snapshot.
type SweepStatus struct {
	ID        string `json:"id"`
	Name      string `json:"name,omitempty"`
	State     string `json:"state"` // "running" | "done" | "canceled"
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	Canceled  int    `json:"canceled"`
	Cached    int    `json:"cached"`
	// TraceID names the sweep's span tree (GET /v1/sweeps/{id}/spans);
	// empty when tracing is disabled.
	TraceID string `json:"trace_id,omitempty"`
	// Timing aggregates per-job phase timings over the slots resolved so
	// far; nil when no job reported timing (telemetry disabled).
	Timing *SweepTiming `json:"timing,omitempty"`
}

// Status snapshots progress without blocking.
func (h *Handle) Status() SweepStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := SweepStatus{
		ID:        h.ID,
		Name:      h.Spec.Name,
		State:     "running",
		Total:     len(h.jobs),
		Completed: h.done - h.failed - h.canceled,
		Failed:    h.failed,
		Canceled:  h.canceled,
		Cached:    h.cached,
		TraceID:   h.tsc.TraceID,
	}
	if h.timing.JobsTimed > 0 {
		t := h.timing
		st.Timing = &t
	}
	if h.done == len(h.jobs) {
		st.State = "done"
		if h.cancelled || h.canceled > 0 {
			st.State = "canceled"
		}
	}
	return st
}

// SweepResult is the final outcome of a sweep: one JobResult per
// expanded job, in submission order, failures included in place.
type SweepResult struct {
	ID     string       `json:"id"`
	Name   string       `json:"name,omitempty"`
	Jobs   []*JobResult `json:"jobs"`
	Status SweepStatus  `json:"status"`
}

// Results returns the job results resolved so far (nil slots for jobs
// still pending), in submission order.
func (h *Handle) Results() []*JobResult {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*JobResult, len(h.results))
	copy(out, h.results)
	return out
}

// ErrSweepNotDone is returned by Wait when ctx expires first.
var ErrSweepNotDone = errors.New("engine: sweep not finished")

// Wait blocks until every job has resolved (including cancelled ones)
// or ctx expires, then returns the assembled result.
func (h *Handle) Wait(ctx context.Context) (*SweepResult, error) {
	select {
	case <-h.finished:
	case <-ctx.Done():
		return nil, errors.Join(ErrSweepNotDone, ctx.Err())
	}
	h.mu.Lock()
	jobs := make([]*JobResult, len(h.results))
	copy(jobs, h.results)
	h.mu.Unlock()
	return &SweepResult{ID: h.ID, Name: h.Spec.Name, Jobs: jobs, Status: h.Status()}, nil
}

package engine

import (
	"context"
	"runtime"
	"testing"
	"time"

	"nbticache/internal/obs"
)

// TestSweepTimingAndSpans runs a small sweep on a live-telemetry engine
// and asserts the whole per-job accounting chain: every result carries
// a phase-timing summary, the sweep status aggregates it, and the
// tracer holds one well-formed span tree — sweep root, one job span per
// slot, queue/persist (and compute-phase) children — under the sweep's
// trace ID.
func TestSweepTimingAndSpans(t *testing.T) {
	e, err := New(Options{Workers: 2, Gen: testGen})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	spec := SweepSpec{Benches: []string{"sha", "gsme"}, Banks: []int{2, 4}}
	h, err := e.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	for _, r := range res.Jobs {
		if r.Failed() {
			t.Fatalf("job %s: %s", r.ID, r.Err)
		}
		if r.Timing == nil {
			t.Fatalf("job %s has no timing", r.ID)
		}
		if r.Timing.TotalMs <= 0 {
			t.Errorf("job %s: total %v ms, want > 0", r.ID, r.Timing.TotalMs)
		}
	}
	st := res.Status
	if st.TraceID == "" {
		t.Fatal("sweep status has no trace ID")
	}
	if st.Timing == nil || st.Timing.JobsTimed != len(res.Jobs) {
		t.Fatalf("sweep timing %+v, want JobsTimed == %d", st.Timing, len(res.Jobs))
	}

	spans := e.Telemetry().Tracer.Spans(st.TraceID)
	if len(spans) == 0 {
		t.Fatal("no spans recorded for the sweep trace")
	}
	byID := make(map[string]obs.Span, len(spans))
	jobSpans := 0
	var rootName string
	for _, sp := range spans {
		if sp.TraceID != st.TraceID {
			t.Fatalf("span %s carries trace %s, want %s", sp.SpanID, sp.TraceID, st.TraceID)
		}
		if _, dup := byID[sp.SpanID]; dup {
			t.Fatalf("duplicate span ID %s", sp.SpanID)
		}
		byID[sp.SpanID] = sp
		if sp.ParentID == "" {
			rootName = sp.Name
		}
		if sp.Name == "engine.job" {
			jobSpans++
		}
	}
	if rootName != "engine.sweep" {
		t.Fatalf("root span is %q, want engine.sweep", rootName)
	}
	if jobSpans != len(res.Jobs) {
		t.Fatalf("%d engine.job spans for %d jobs", jobSpans, len(res.Jobs))
	}
	phaseChildren := map[string]int{}
	for _, sp := range spans {
		if sp.ParentID == "" {
			continue
		}
		parent, ok := byID[sp.ParentID]
		if !ok {
			t.Fatalf("span %s (%s) has unresolved parent %s", sp.SpanID, sp.Name, sp.ParentID)
		}
		if parent.Name == "engine.job" {
			phaseChildren[sp.Name]++
		}
	}
	// Queue and persist wrap every execution; the compute phases run on
	// every fresh simulation (all jobs here are distinct first runs).
	for _, want := range []string{"engine.queue", "engine.persist", "engine.resolve", "engine.simulate", "engine.project"} {
		if phaseChildren[want] != len(res.Jobs) {
			t.Errorf("%d %s phase spans for %d jobs", phaseChildren[want], want, len(res.Jobs))
		}
	}
}

// TestTelemetryOverhead is the overhead guard: the instrumented sweep
// path must stay cheap relative to the no-op recorder on the benchmark
// workload, so kernel wins are not quietly given back to bookkeeping.
// Two bounds, either passes: a 2% ratio, or an absolute per-job budget.
// The ratio alone punishes hot-path speedups — telemetry's absolute
// cost is a fixed few microseconds per job, so every halving of the
// simulation denominator doubles the measured ratio with nothing
// regressing — while the budget alone would drift on much faster
// hosts; together they fail only when recording itself gets more
// expensive. Wall-clock comparisons are noisy, so the guard takes the
// best of several paired runs and only fails when every attempt
// exceeds both bounds.
func TestTelemetryOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead guard benchmarks for seconds; skipped in -short")
	}
	workers := runtime.GOMAXPROCS(0)
	mkEngine := func(tel *obs.Telemetry) *Engine {
		e, err := New(Options{Workers: workers, Gen: testGen, Telemetry: tel})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		for _, name := range benchSweep.Benches {
			if _, err := e.Trace(context.Background(), name, (JobSpec{Bench: name}).Geometry()); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	jobsPerSweep := 0
	oneSweep := func(e *Engine) {
		e.ResetRuns()
		h, err := e.Submit(context.Background(), benchSweep)
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Jobs {
			if r.Failed() {
				t.Fatalf("job %s: %s", r.ID, r.Err)
			}
		}
		jobsPerSweep = len(res.Jobs)
	}
	live, nop := mkEngine(obs.New()), mkEngine(obs.Nop())
	timeBlock := func(e *Engine, sweeps int) time.Duration {
		start := time.Now()
		for i := 0; i < sweeps; i++ {
			oneSweep(e)
		}
		return time.Since(start)
	}
	// Warm both arms: JIT-free, but caches, pools, and the tracer's
	// steady-state retention all need to exist before timing starts.
	timeBlock(live, 3)
	timeBlock(nop, 3)

	// One testing.Benchmark run per arm is far too noisy on a shared
	// small machine (single 1 s samples vary by ±10%). Instead,
	// interleave many short blocks so drift (thermal, scheduler,
	// neighbours) hits both arms alike, and compare the totals: per-block
	// noise cancels and garbage-collection cost amortises into whichever
	// arm causes it.
	const (
		bound     = 1.02
		jobBudget = 10 * time.Microsecond // absolute recording cost per job
		blocks    = 16
		perBlock  = 16
	)
	bestRatio, bestPerJob := 0.0, time.Duration(0)
	for attempt := 0; attempt < 4; attempt++ {
		var liveTot, nopTot time.Duration
		for b := 0; b < blocks; b++ {
			if b%2 == 0 {
				liveTot += timeBlock(live, perBlock)
				nopTot += timeBlock(nop, perBlock)
			} else { // alternate order so ramp effects cancel too
				nopTot += timeBlock(nop, perBlock)
				liveTot += timeBlock(live, perBlock)
			}
		}
		ratio := float64(liveTot) / float64(nopTot)
		jobs := blocks * perBlock * jobsPerSweep
		perJob := (liveTot - nopTot) / time.Duration(jobs)
		if attempt == 0 || ratio < bestRatio {
			bestRatio = ratio
		}
		if attempt == 0 || perJob < bestPerJob {
			bestPerJob = perJob
		}
		t.Logf("attempt %d: live %v, nop %v over %d jobs, ratio %.4f, %v/job",
			attempt, liveTot, nopTot, jobs, ratio, perJob)
		if bestRatio <= bound || bestPerJob <= jobBudget {
			return
		}
	}
	t.Fatalf("telemetry recording overhead ratio %.4f exceeds %.2f and per-job cost %v exceeds %v in every attempt",
		bestRatio, bound, bestPerJob, jobBudget)
}

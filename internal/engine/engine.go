package engine

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nbticache/internal/aging"
	"nbticache/internal/cache"
	"nbticache/internal/cas"
	"nbticache/internal/core"
	"nbticache/internal/obs"
	"nbticache/internal/power"
	"nbticache/internal/trace"
	"nbticache/internal/workload"
)

// Options configures an Engine. The zero value is usable: it selects a
// GOMAXPROCS-sized pool, the calibrated default aging model and energy
// technology, and reporting-quality trace generation.
type Options struct {
	// Workers bounds the pool; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Model is the aging characterisation; nil builds the default
	// 45nm model.
	Model *aging.Model
	// Tech is the energy model; the zero value means power.DefaultTech().
	Tech power.Tech
	// Gen maps a geometry to trace-generation parameters; nil means
	// workload.DefaultGenParams. The experiment suite passes its
	// quality-scaled variant here.
	Gen func(cache.Geometry) workload.GenParams
	// MaxStoredTraces bounds the uploaded-trace store (AddTrace fails
	// with ErrTraceStoreFull past it); <= 0 means
	// DefaultMaxStoredTraces (an unbounded store is not expressible).
	MaxStoredTraces int
	// DataDir persists the result cache and uploaded-trace store to
	// disk (content-addressed blobs under <DataDir>/jobs and
	// <DataDir>/traces) so a restarted engine serves previously
	// simulated jobs and previously uploaded traces without redoing the
	// work. Empty means memory-only — exactly the pre-persistence
	// behaviour. The directory is created if missing; New fails fast if
	// it cannot be written.
	DataDir string
	// MaxCachedResults bounds the job-result cache (oldest results are
	// evicted past it); <= 0 means DefaultMaxCachedResults.
	MaxCachedResults int
	// Telemetry is the engine's recording surface: job-phase latency
	// histograms, the Stats mirror on /metrics, per-job sweep spans, and
	// blob-store latencies all land here. Nil builds a live obs.New()
	// bundle (every engine is observable by default); pass obs.Nop() for
	// a no-op recorder that drops every observation. Per-job phase
	// timing (JobResult.Timing, sweep-status aggregates) is a core
	// result field and stays on either way.
	Telemetry *obs.Telemetry
}

// DefaultMaxStoredTraces is the uploaded-trace store bound when
// Options.MaxStoredTraces is zero. At the 64 MiB default upload limit
// this caps the store's worst-case footprint at a few hundred GiB of
// *requests*, but resident memory is what matters: bound it to the
// traffic you expect and size the host accordingly.
const DefaultMaxStoredTraces = 1024

// DefaultMaxCachedResults is the job-result cache bound when
// Options.MaxCachedResults is zero: generous enough that eviction never
// bites an interactive workload, small enough that a long-lived
// persistent engine cannot grow its data directory without bound.
const DefaultMaxCachedResults = 1 << 16

// Engine executes simulation jobs on a bounded worker pool over a
// content-addressed result cache. It is safe for concurrent use by any
// number of goroutines; one engine is meant to be shared process-wide
// (the HTTP service owns exactly one).
type Engine struct {
	workers int
	model   *aging.Model
	tech    power.Tech
	gen     func(cache.Geometry) workload.GenParams

	// lifeCtx is cancelled by Close; every sweep context descends from
	// it so shutdown cancels all in-flight work.
	lifeCtx  context.Context
	lifeStop context.CancelFunc

	traces *flightCache[*genTrace]
	// store holds uploaded real traces, content-addressed and measured
	// at admission (see store.go); with a data directory it writes
	// through to traceBlobs and reloads from it at start.
	store *traceStore
	// runs caches the trace simulation itself, keyed by the fields that
	// affect it (workload, geometry, banks, policy, update cadence):
	// jobs differing only in sleep mode or epochs share one run, since
	// those enter through the aging projection alone. Runs are derived
	// data — every persisted JobResult embeds its run — so this layer
	// stays in-memory.
	runs *flightCache[*core.RunResult]
	// results is the job-result cache: a typed adapter over resultStore
	// (cas.MemStore or cas.DiskStore per Options.DataDir), so completed
	// jobs read through and write through the persistence layer.
	results     *blobCache[*JobResult]
	resultStore cas.Store
	traceBlobs  cas.Store // nil when memory-only
	dataDir     string

	q         *taskQueue
	startOnce sync.Once
	wg        sync.WaitGroup
	closed    atomic.Bool

	// tel is never nil (obs.Nop() at minimum); met holds the resolved
	// metric handles (all nil under Nop, where every call no-ops).
	tel *obs.Telemetry
	met engineMetrics

	sweepSeq       atomic.Uint64
	sweepsTotal    atomic.Uint64
	jobsSubmitted  atomic.Uint64
	jobsCompleted  atomic.Uint64
	jobsFailed     atomic.Uint64
	jobsCanceled   atomic.Uint64
	activeWorkers  atomic.Int64
	tracesBuilt    atomic.Uint64
	tracesUploaded atomic.Uint64
}

// The default aging characterisation is memoised process-wide: building
// it runs the SNM bisection calibration (~90ms), which dominated the
// cost of opening an engine — a warm start that reads every blob from
// disk is an order of magnitude cheaper than this one computation. The
// model is immutable post-calibration and internally synchronised, so
// sharing one across engines is safe.
var (
	defaultModelOnce sync.Once
	defaultModel     *aging.Model
	defaultModelErr  error
)

func defaultAgingModel() (*aging.Model, error) {
	defaultModelOnce.Do(func() {
		defaultModel, defaultModelErr = aging.New(aging.DefaultConfig())
	})
	return defaultModel, defaultModelErr
}

// genTrace is one generated benchmark trace in both layouts: the
// columns the simulation path consumes, and the memoised row form the
// public Trace API hands out (pointer-stable across calls).
type genTrace struct {
	rows *trace.Trace
	cols *trace.Columns
}

// New builds an engine. The worker pool starts lazily on the first
// Submit, so purely synchronous users (the experiment suite) never spawn
// goroutines.
func New(o Options) (*Engine, error) {
	if o.Workers < 0 {
		return nil, fmt.Errorf("engine: negative worker count %d", o.Workers)
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Model == nil {
		m, err := defaultAgingModel()
		if err != nil {
			return nil, err
		}
		o.Model = m
	}
	if o.Tech == (power.Tech{}) {
		o.Tech = power.DefaultTech()
	}
	if o.Gen == nil {
		o.Gen = workload.DefaultGenParams
	}
	if o.MaxStoredTraces <= 0 {
		o.MaxStoredTraces = DefaultMaxStoredTraces
	}
	if o.MaxCachedResults <= 0 {
		o.MaxCachedResults = DefaultMaxCachedResults
	}
	if o.Telemetry == nil {
		o.Telemetry = obs.New()
	}
	// The persistence spine: one cas.Store per keyspace. Memory-only
	// engines run the result cache over a MemStore (same code path, no
	// disk) and skip the trace-blob layer entirely (the resident trace
	// map already is the memory store).
	var resultStore cas.Store
	var traceBlobs cas.Store
	if o.DataDir != "" {
		var err error
		resultStore, err = cas.OpenDisk(filepath.Join(o.DataDir, "jobs"), cas.Limits{MaxEntries: o.MaxCachedResults})
		if err != nil {
			return nil, fmt.Errorf("engine: opening data dir: %w", err)
		}
		traceBlobs, err = cas.OpenDisk(filepath.Join(o.DataDir, "traces"), cas.Limits{})
		if err != nil {
			resultStore.Close()
			return nil, fmt.Errorf("engine: opening data dir: %w", err)
		}
	} else {
		resultStore = cas.NewMem(cas.Limits{MaxEntries: o.MaxCachedResults})
	}
	ctx, stop := context.WithCancel(context.Background())
	e := &Engine{
		workers:     o.Workers,
		model:       o.Model,
		tech:        o.Tech,
		gen:         o.Gen,
		lifeCtx:     ctx,
		lifeStop:    stop,
		traces:      newFlightCache[*genTrace](),
		store:       newTraceStore(o.MaxStoredTraces, traceBlobs),
		runs:        newFlightCache[*core.RunResult](),
		resultStore: resultStore,
		traceBlobs:  traceBlobs,
		dataDir:     o.DataDir,
		q:           newTaskQueue(),
		tel:         o.Telemetry,
	}
	e.results = newBlobCache(resultStore, blobCodec[*JobResult]{
		encode: encodeJobResult,
		decode: decodeJobResult,
	})
	e.registerMetrics()
	// Warm start: previously uploaded traces become resident (with
	// their admission-time signatures) before the first request lands.
	// Job results stay on disk and read through lazily.
	e.store.load()
	return e, nil
}

// DataDir returns the engine's persistence root ("" when memory-only).
func (e *Engine) DataDir() string { return e.dataDir }

// Telemetry returns the engine's telemetry bundle (never nil). The HTTP
// layers render its registry on /metrics and serve its tracer's spans.
func (e *Engine) Telemetry() *obs.Telemetry { return e.tel }

// Workers returns the pool bound.
func (e *Engine) Workers() int { return e.workers }

// Model exposes the engine's aging characterisation.
func (e *Engine) Model() *aging.Model { return e.model }

// Tech exposes the engine's energy model.
func (e *Engine) Tech() power.Tech { return e.tech }

// Close cancels every in-flight sweep and stops the workers. Jobs still
// queued are recorded as cancelled, so pending Wait calls return. Close
// is idempotent; Submit after Close fails.
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	e.lifeStop()
	e.q.close()
	e.wg.Wait()
	// Workers are drained; release the persistence layer. Disk blobs
	// stay put for the next engine to warm-start from.
	_ = e.resultStore.Close()
	if e.traceBlobs != nil {
		_ = e.traceBlobs.Close()
	}
}

// Drain blocks until every completed result and trace blob has landed
// in its store. Persistence is write-behind — a job's completion is
// visible (and its sweep event fires) before its blob is durable — so
// callers about to inspect the data directory or reason about the
// store-resident inventory drain first. Close drains implicitly.
func (e *Engine) Drain() {
	if d, ok := e.resultStore.(interface{ Drain() }); ok {
		d.Drain()
	}
	if d, ok := e.traceBlobs.(interface{ Drain() }); ok {
		d.Drain()
	}
}

// Trace returns the generated trace for a benchmark and geometry,
// building and caching it on first use. Concurrent requests for the
// same trace generate it once. The returned row form is memoised
// (pointer-stable across calls); simulation itself runs on the
// columnar twin via traceColumns.
func (e *Engine) Trace(ctx context.Context, bench string, g cache.Geometry) (*trace.Trace, error) {
	gt, err := e.genTraceFor(ctx, bench, g)
	if err != nil {
		return nil, err
	}
	return gt.rows, nil
}

// traceColumns is Trace's columnar twin — the form the simulation path
// consumes directly, so a cached generated trace is re-simulated with
// zero transposition.
func (e *Engine) traceColumns(ctx context.Context, bench string, g cache.Geometry) (*trace.Columns, error) {
	gt, err := e.genTraceFor(ctx, bench, g)
	if err != nil {
		return nil, err
	}
	return gt.cols, nil
}

func (e *Engine) genTraceFor(ctx context.Context, bench string, g cache.Geometry) (*genTrace, error) {
	key := fmt.Sprintf("%s|%d|%d", bench, g.Size/1024, g.LineSize)
	gt, _, err := e.traces.do(ctx, key, func() (*genTrace, error) {
		p, ok := workload.ByName(bench)
		if !ok {
			return nil, fmt.Errorf("engine: unknown benchmark %q", bench)
		}
		gp := e.gen(g)
		gp.Geometry = g
		t, err := p.Generate(gp)
		if err != nil {
			return nil, err
		}
		// Validated once here, at build: every later simulation of this
		// cached trace runs the unchecked columnar path on the strength
		// of this check (like decoded blobs, which validate at decode).
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("engine: generated trace %q: %w", bench, err)
		}
		e.tracesBuilt.Add(1)
		return &genTrace{rows: t, cols: trace.FromRows(t)}, nil
	})
	return gt, err
}

// RunJob executes one job synchronously on the caller's goroutine,
// through the shared result cache: concurrent callers (and pooled
// sweeps) running the same point simulate it exactly once. The cache
// reads through and writes through the engine's persistence layer, so
// on a persistent engine a point simulated before the last restart
// resolves from disk without re-simulating. This is the path the
// experiment suite memoises through.
func (e *Engine) RunJob(ctx context.Context, spec JobSpec) (*JobResult, error) {
	return e.runJob(ctx, spec, false)
}

// runJob is RunJob with the caller's pin state made explicit: sweep
// workers (pinned=true) may resolve condemned traces — their sweep
// pinned the trace at submission, so a concurrent DELETE defers to
// them — while direct callers see a removed trace as unknown, exactly
// like a new submission would.
func (e *Engine) runJob(ctx context.Context, spec JobSpec, pinned bool) (*JobResult, error) {
	return e.runJobTimed(ctx, spec, pinned, nil)
}

// runJobTimed is runJob with an optional phase clock. The persist phase
// is the result-cache traversal minus the job's own computation: the
// read-through Get, the codec, and the synchronous write-behind Put (or,
// for a waiter, the wait on a concurrent leader).
func (e *Engine) runJobTimed(ctx context.Context, spec JobSpec, pinned bool, pc *phaseClock) (*JobResult, error) {
	spec = spec.Normalised()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// One ID derivation serves the cache key and the result (it is a
	// canonical-string hash, measurable at sweep job rates).
	id := spec.ID()
	doStart := time.Now()
	var fillDur time.Duration
	var fillEnd time.Time
	res, cached, err := e.results.do(ctx, id, func() (*JobResult, error) {
		fillStart := time.Now()
		r, serr := e.simulate(ctx, id, spec, pinned, pc)
		fillEnd = time.Now()
		fillDur = fillEnd.Sub(fillStart)
		return r, serr
	})
	if pc != nil {
		start := doStart
		if !fillEnd.IsZero() {
			start = fillEnd
		}
		pc.add(phasePersist, start, time.Since(doStart)-fillDur)
	}
	if err != nil {
		return nil, err
	}
	if cached {
		// Decoded values are private copies, so the flag cannot
		// contaminate the stored blob.
		res.Cached = true
	}
	return res, nil
}

// simulate is the uncached execution of one validated job. id is
// spec.ID(), derived once by the caller.
func (e *Engine) simulate(ctx context.Context, id string, spec JobSpec, pinned bool, pc *phaseClock) (*JobResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	kind, err := spec.PolicyKind()
	if err != nil {
		return nil, err
	}
	mode, err := spec.SleepMode()
	if err != nil {
		return nil, err
	}
	g := spec.Geometry()
	run, _, err := e.runs.do(ctx, spec.runKey(), func() (*core.RunResult, error) {
		resolveStart := time.Now()
		tr, err := e.traceFor(ctx, spec, g, pinned)
		if err != nil {
			return nil, err
		}
		pc.add(phaseResolve, resolveStart, time.Since(resolveStart))
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		simStart := time.Now()
		sim, err := core.New(core.Config{
			Geometry:    g,
			Banks:       spec.Banks,
			Policy:      kind,
			Tech:        e.tech,
			UpdateEvery: spec.UpdateEvery,
		})
		if err != nil {
			return nil, err
		}
		// The trace's columns feed the batch kernel by slicing; the
		// pooled chunk buffer only sizes the chunking and lends scratch,
		// so a sweep's thousandth simulation allocates no per-access
		// state at all — and copies none either.
		buf := batchPool.Get().(*core.Batch)
		defer batchPool.Put(buf)
		// Unchecked is sound here: every column source in this engine —
		// decoded blob, admitted upload, generated trace — validated at
		// creation, and the columns are immutable thereafter.
		res, err := sim.RunColumnsUnchecked(tr, buf)
		if err == nil {
			pc.add(phaseSimulate, simStart, time.Since(simStart))
		}
		return res, err
	})
	if err != nil {
		return nil, err
	}
	projStart := time.Now()
	proj, err := core.ProjectAging(e.model, run.RegionSleepFractions(), kind, spec.Epochs, mode)
	if err != nil {
		return nil, err
	}
	pc.add(phaseProject, projStart, time.Since(projStart))
	return &JobResult{ID: id, Spec: spec, Run: run, Projection: proj}, nil
}

// traceFor resolves a job's workload: an uploaded trace by content
// address when TraceID is set, the generated synthetic benchmark
// otherwise. pinned selects the condemned-tolerant lookup (sweep
// workers whose sweep pinned the trace at submission); unpinned callers
// see a removed trace as unknown.
func (e *Engine) traceFor(ctx context.Context, spec JobSpec, g cache.Geometry, pinned bool) (*trace.Columns, error) {
	if spec.TraceID != "" {
		var st *storedTrace
		var ok bool
		if pinned {
			st, ok = e.store.resolve(spec.TraceID)
		} else {
			st, ok = e.store.get(spec.TraceID)
		}
		if !ok {
			return nil, fmt.Errorf("engine: unknown trace %q (upload it first)", spec.TraceID)
		}
		return st.cols, nil
	}
	return e.traceColumns(ctx, spec.Bench, g)
}

// Job returns the cached result for a job ID, if that job has completed
// on this engine (under any sweep or RunJob call) — or, on a persistent
// engine, under any previous engine that shared the data directory.
func (e *Engine) Job(id string) (*JobResult, bool) {
	return e.results.get(id)
}

// ImportResult admits a job result computed elsewhere into this
// engine's result cache — the receiving half of the cluster's
// replicated write-through. Only complete successful results are
// importable, and the result's ID must equal its spec's re-derived
// content address: a corrupted or forged result cannot poison the
// cache under a key it does not answer for. created reports whether
// the result was new here (false: an equal result was already cached,
// which by content addressing is the same result).
func (e *Engine) ImportResult(res *JobResult) (created bool, err error) {
	if res == nil || res.Err != "" || res.Canceled || res.Run == nil || res.Projection == nil {
		return false, fmt.Errorf("engine: only complete successful results are importable")
	}
	spec := res.Spec.Normalised()
	if res.ID != spec.ID() {
		return false, fmt.Errorf("engine: result ID %s does not match its spec (derives %s)", res.ID, spec.ID())
	}
	if _, ok := e.results.get(res.ID); ok {
		return false, nil
	}
	// Imported results carry no local timing or cache provenance.
	cp := *res
	cp.Spec = spec
	cp.Cached = false
	cp.Timing = nil
	if err := e.results.put(res.ID, &cp); err != nil {
		return false, err
	}
	return true, nil
}

// ResultIDs lists the content addresses of every completed job result
// this engine holds (memory or disk), sorted — the inventory a
// rejoining cluster node advertises so already-computed work is
// discovered instead of re-simulated.
func (e *Engine) ResultIDs() []string {
	list, err := e.resultStore.List()
	if err != nil {
		return nil
	}
	ids := make([]string, 0, len(list))
	for _, st := range list {
		ids = append(ids, st.Key)
	}
	sort.Strings(ids)
	return ids
}

// ResetRuns drops completed simulation results — including persisted
// ones on a persistent engine — while generated traces are kept.
// Benchmarks use it so every iteration re-simulates.
func (e *Engine) ResetRuns() {
	e.results.reset()
	e.runs.reset()
}

// Stats is a snapshot of the engine counters, served by /metrics.
type Stats struct {
	Workers       int    `json:"workers"`
	QueueDepth    int    `json:"queue_depth"`
	ActiveWorkers int    `json:"active_workers"`
	SweepsTotal   uint64 `json:"sweeps_total"`
	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCanceled  uint64 `json:"jobs_canceled"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	CachedResults int    `json:"cached_results"`
	// RunsExecuted counts trace simulations actually performed;
	// RunsShared counts jobs that reused another job's simulation
	// (same point up to sleep mode/epochs).
	RunsExecuted uint64 `json:"runs_executed"`
	RunsShared   uint64 `json:"runs_shared"`
	TracesBuilt  uint64 `json:"traces_built"`
	TracesCached int    `json:"traces_cached"`
	// TracesUploaded counts real traces admitted through AddTrace;
	// TracesStored is the resident uploaded-trace count.
	TracesUploaded uint64 `json:"traces_uploaded"`
	TracesStored   int    `json:"traces_stored"`
	// Persistent reports whether a data directory backs the engine.
	Persistent bool `json:"persistent"`
	// The persistence counters aggregate both cas keyspaces (job
	// results and trace blobs). PersistHits counts blobs served from
	// the backing store (a warm-restart cache hit is one of these);
	// PersistMisses counts store reads that found nothing.
	PersistHits   uint64 `json:"persist_hits"`
	PersistMisses uint64 `json:"persist_misses"`
	// PersistWrites counts blobs written through; PersistWriteFailures
	// counts write-behinds that failed (the value was still served).
	PersistWrites        uint64 `json:"persist_writes"`
	PersistWriteFailures uint64 `json:"persist_write_failures"`
	// PersistEvictions counts result blobs dropped by the capacity
	// bound; PersistCorruptions counts blobs quarantined by the store's
	// checksum plus blobs rejected by the typed codec.
	PersistEvictions   uint64 `json:"persist_evictions"`
	PersistCorruptions uint64 `json:"persist_corruptions"`
	// ResultBlobs / TraceBlobs are the resident blob counts and
	// ResultBlobBytes / TraceBlobBytes their payload sizes.
	ResultBlobs     int   `json:"result_blobs"`
	TraceBlobs      int   `json:"trace_blobs"`
	ResultBlobBytes int64 `json:"result_blob_bytes"`
	TraceBlobBytes  int64 `json:"trace_blob_bytes"`
}

// Stats snapshots the counters.
func (e *Engine) Stats() Stats {
	// The persist_* block describes the durable layer only: a
	// memory-only engine runs its result cache over a cas.MemStore for
	// code-path uniformity, but reporting those internal store counters
	// as "persistence" would tell an operator that a server which
	// forgets everything on restart is persisting.
	var rm, tm cas.Metrics
	if e.dataDir != "" {
		rm = e.resultStore.Metrics()
		if e.traceBlobs != nil {
			tm = e.traceBlobs.Metrics()
		}
	}
	return Stats{
		Workers:        e.workers,
		QueueDepth:     e.q.size(),
		ActiveWorkers:  int(e.activeWorkers.Load()),
		SweepsTotal:    e.sweepsTotal.Load(),
		JobsSubmitted:  e.jobsSubmitted.Load(),
		JobsCompleted:  e.jobsCompleted.Load(),
		JobsFailed:     e.jobsFailed.Load(),
		JobsCanceled:   e.jobsCanceled.Load(),
		CacheHits:      e.results.hits.Load(),
		CacheMisses:    e.results.misses.Load(),
		CachedResults:  e.results.size(),
		RunsExecuted:   e.runs.misses.Load(),
		RunsShared:     e.runs.hits.Load(),
		TracesBuilt:    e.tracesBuilt.Load(),
		TracesCached:   e.traces.size(),
		TracesUploaded: e.tracesUploaded.Load(),
		TracesStored:   e.store.size(),

		Persistent:           e.dataDir != "",
		PersistHits:          rm.Hits + tm.Hits,
		PersistMisses:        (rm.Gets - rm.Hits) + (tm.Gets - tm.Hits),
		PersistWrites:        rm.Puts + tm.Puts,
		PersistWriteFailures: rm.PutFailures + tm.PutFailures,
		PersistEvictions:     rm.Evictions + tm.Evictions,
		PersistCorruptions:   rm.Corruptions + tm.Corruptions + e.results.corrupt.Load() + e.store.corrupt.Load(),
		ResultBlobs:          rm.Entries,
		TraceBlobs:           tm.Entries,
		ResultBlobBytes:      rm.Bytes,
		TraceBlobBytes:       tm.Bytes,
	}
}

// Submit expands the sweep, enqueues every job on the pool, and returns
// a handle immediately. ctx bounds expansion only; the sweep's own
// lifetime is governed by the engine (Close) and the handle (Cancel).
func (e *Engine) Submit(ctx context.Context, spec SweepSpec) (*Handle, error) {
	if e.closed.Load() {
		return nil, fmt.Errorf("engine: closed")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	jobs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	// Trace references resolve against this engine's store; reject the
	// whole sweep up front rather than failing jobs one by one — and
	// pin every referenced trace for the sweep's lifetime, so a
	// concurrent DELETE cannot pull a workload out from under jobs that
	// were admitted referencing it (the removal completes when the
	// sweep finishes; see traceStore).
	var pinned []string
	seen := make(map[string]bool)
	for _, j := range jobs {
		if j.TraceID != "" && !seen[j.TraceID] {
			seen[j.TraceID] = true
			pinned = append(pinned, j.TraceID)
		}
	}
	if err := e.store.pinAll(pinned); err != nil {
		return nil, err
	}
	e.startOnce.Do(func() {
		for i := 0; i < e.workers; i++ {
			e.wg.Add(1)
			go e.worker()
		}
	})
	sctx, cancel := context.WithCancel(e.lifeCtx)
	h := &Handle{
		ID:       fmt.Sprintf("sweep-%d", e.sweepSeq.Add(1)),
		Spec:     spec,
		jobs:     jobs,
		pinned:   pinned,
		results:  make([]*JobResult, len(jobs)),
		ctx:      sctx,
		cancel:   cancel,
		finished: make(chan struct{}),
		events:   NewEventLog(),
		eng:      e,
	}
	// The sweep span continues the submitter's trace when ctx carries one
	// (a coordinator hop propagated via traceparent) and roots a new
	// trace otherwise; it closes when the last job slot resolves. The
	// span context rides on the handle, not on sctx: workers need it past
	// the submitting request's lifetime.
	_, h.span = e.tel.Tracer.StartSpan(ctx, "engine.sweep",
		"sweep_id", h.ID, "jobs", fmt.Sprintf("%d", len(jobs)))
	h.tsc = h.span.Context()
	e.sweepsTotal.Add(1)
	e.jobsSubmitted.Add(uint64(len(jobs)))
	now := time.Now()
	for i := range jobs {
		e.q.push(&task{h: h, idx: i, enq: now})
	}
	return h, nil
}

// batchPool holds batch-kernel chunk buffers shared by every engine in
// the process: one buffer is in use per actively simulating worker, and
// a worker's next job reuses the buffer its last job warmed.
var batchPool = sync.Pool{New: func() any { return core.NewBatch(core.DefaultBatchSize) }}

// task is one queued (sweep, job-index) pair. enq timestamps the push,
// so the worker that pops it can report the queue wait.
type task struct {
	h   *Handle
	idx int
	enq time.Time
}

// worker pulls tasks until the queue is closed and drained. Tasks whose
// sweep is already cancelled are recorded as cancelled without
// simulating, so shutdown unblocks every waiter quickly.
func (e *Engine) worker() {
	defer e.wg.Done()
	// One phase clock per worker, reset per job: timing a job costs no
	// allocation beyond its retained JobTiming summary.
	pc := new(phaseClock)
	for {
		t, ok := e.q.pop()
		if !ok {
			return
		}
		e.activeWorkers.Add(1)
		e.execute(t, pc)
		e.activeWorkers.Add(-1)
	}
}

func (e *Engine) execute(t *task, pc *phaseClock) {
	spec := t.h.jobs[t.idx]
	// Phase timing is a core result field — the cluster merges shard
	// timings whatever the telemetry config — so the clock always runs;
	// with a no-op recorder the observations are simply dropped, and the
	// overhead guard holds that recording cost under 2%.
	res := e.executeObserved(t, spec, pc)
	t.h.record(t.idx, res, e)
}

// failedResult wraps a job execution error as its recorded result.
func failedResult(spec JobSpec, err error) *JobResult {
	return &JobResult{
		ID: spec.ID(), Spec: spec, Err: err.Error(),
		Canceled: errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded),
	}
}

// taskQueue is an unbounded FIFO: Submit never blocks, and close wakes
// every worker. Workers drain remaining tasks after close (they resolve
// instantly as cancelled once the engine context is down), so every
// submitted job is recorded exactly once and every Wait returns.
type taskQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	tasks  []*task
	closed bool
}

func newTaskQueue() *taskQueue {
	q := &taskQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *taskQueue) push(t *task) {
	q.mu.Lock()
	q.tasks = append(q.tasks, t)
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *taskQueue) pop() (*task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.tasks) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.tasks) == 0 {
		return nil, false
	}
	t := q.tasks[0]
	q.tasks = q.tasks[1:]
	return t, true
}

func (q *taskQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *taskQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.tasks)
}

// Package engine is the concurrent batch-simulation engine behind the
// library façade and the nbtiserved HTTP service. It turns the
// one-shot simulator of internal/core into a job system: a Job is one
// fully specified simulation point (workload × geometry × banks ×
// indexing policy × sleep mode), a Sweep is a set of jobs (explicit or
// the cartesian product of per-axis values), and the Engine executes
// sweeps on a bounded worker pool with deterministic content-addressed
// result caching, per-job error isolation, cancellation, and progress
// counters. Identical jobs — within one sweep, across overlapping
// sweeps, or across clients — are simulated exactly once.
package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"nbticache/internal/aging"
	"nbticache/internal/cache"
	"nbticache/internal/core"
	"nbticache/internal/index"
	"nbticache/internal/workload"
)

// Sleep-mode names accepted in job specs (aging.SleepMode.String values).
const (
	ModeVoltageScaled   = "voltage-scaled"
	ModePowerGated      = "power-gated"
	ModeRecoveryBoosted = "recovery-boosted"
)

// JobSpec fully determines one simulation point. The zero value of every
// optional field selects the paper's default, so {Bench: "sha", Banks: 4}
// is a complete spec. Specs are value types: equal specs (after
// normalisation) have equal IDs and share one cached result.
type JobSpec struct {
	// Bench names the synthetic workload (see workload.Names). Exactly
	// one of Bench and TraceID must be set.
	Bench string `json:"bench,omitempty"`
	// TraceID references an uploaded trace by content address
	// (Engine.AddTrace / POST /v1/traces) as a first-class alternative
	// to the synthetic Bench workloads. The referenced trace must be
	// resident in the engine's trace store.
	TraceID string `json:"trace_id,omitempty"`
	// SizeKB is the cache size; 0 means 16 (the paper's default).
	SizeKB int `json:"size_kb,omitempty"`
	// LineBytes is the line size; 0 means 16.
	LineBytes int `json:"line_bytes,omitempty"`
	// Banks is M; 0 means 4.
	Banks int `json:"banks,omitempty"`
	// Policy is the indexing function ("identity", "probing",
	// "scrambling"); empty means "probing".
	Policy string `json:"policy,omitempty"`
	// Mode is the low-power state ("voltage-scaled", "power-gated",
	// "recovery-boosted"); empty means "voltage-scaled".
	Mode string `json:"mode,omitempty"`
	// Epochs is the service-life update count for the aging projection;
	// 0 means core.DefaultServiceEpochs.
	Epochs int `json:"epochs,omitempty"`
	// UpdateEvery fires an in-trace re-indexing update every that many
	// accesses; 0 disables them (the realistic setting).
	UpdateEvery uint64 `json:"update_every,omitempty"`
}

// Normalised returns the spec with defaults filled in. Hashing and
// execution both operate on the normalised form, so a defaulted and an
// explicit spec of the same point are the same job.
func (j JobSpec) Normalised() JobSpec {
	if j.SizeKB == 0 {
		j.SizeKB = 16
	}
	if j.LineBytes == 0 {
		j.LineBytes = 16
	}
	if j.Banks == 0 {
		j.Banks = 4
	}
	if j.Policy == "" {
		j.Policy = string(index.KindProbing)
	}
	if j.Mode == "" {
		j.Mode = ModeVoltageScaled
	}
	if j.Epochs == 0 {
		j.Epochs = core.DefaultServiceEpochs
	}
	return j
}

// Geometry returns the direct-mapped geometry the spec describes.
func (j JobSpec) Geometry() cache.Geometry {
	j = j.Normalised()
	return cache.Geometry{
		Size:        uint64(j.SizeKB) * 1024,
		LineSize:    uint64(j.LineBytes),
		Ways:        1,
		AddressBits: 32,
	}
}

// PolicyKind parses the spec's policy name.
func (j JobSpec) PolicyKind() (index.Kind, error) {
	k := index.Kind(j.Normalised().Policy)
	switch k {
	case index.KindIdentity, index.KindProbing, index.KindScrambling:
		return k, nil
	}
	return "", fmt.Errorf("engine: unknown policy %q", j.Policy)
}

// SleepMode parses the spec's sleep-mode name.
func (j JobSpec) SleepMode() (aging.SleepMode, error) {
	switch j.Normalised().Mode {
	case ModeVoltageScaled:
		return aging.VoltageScaled, nil
	case ModePowerGated:
		return aging.PowerGated, nil
	case ModeRecoveryBoosted:
		return aging.RecoveryBoosted, nil
	}
	return 0, fmt.Errorf("engine: unknown sleep mode %q", j.Mode)
}

// Validate reports spec errors without running anything. Whether a
// TraceID actually resolves is engine state, checked at submission.
func (j JobSpec) Validate() error {
	n := j.Normalised()
	switch {
	case n.Bench != "" && n.TraceID != "":
		return fmt.Errorf("engine: both bench %q and trace %q set; pick one workload", n.Bench, n.TraceID)
	case n.Bench == "" && n.TraceID == "":
		return fmt.Errorf("engine: no workload (set bench or trace_id)")
	case n.Bench != "":
		if _, ok := workload.ByName(n.Bench); !ok {
			return fmt.Errorf("engine: unknown benchmark %q", n.Bench)
		}
	}
	if _, err := n.PolicyKind(); err != nil {
		return err
	}
	if _, err := n.SleepMode(); err != nil {
		return err
	}
	if n.Epochs < 1 {
		return fmt.Errorf("engine: epochs %d < 1", n.Epochs)
	}
	kind, _ := n.PolicyKind()
	cfg := core.Config{Geometry: n.Geometry(), Banks: n.Banks, Policy: kind}
	return cfg.Validate()
}

// workloadKey names the spec's workload unambiguously across the two
// kinds: synthetic benchmarks and uploaded traces live in disjoint key
// spaces even if a trace were named like a benchmark.
func (j JobSpec) workloadKey() string {
	if j.TraceID != "" {
		return "t:" + j.TraceID
	}
	return "b:" + j.Bench
}

// idCache memoises JobSpec.ID by raw (pre-normalisation) spec. The
// derivation is pure, and the dominant workload resubmits identical
// grids — every sweep iteration re-expands the same points to hit the
// result cache — so after the first pass each ID is a read-locked map
// hit instead of a Sprintf + SHA-256. JobSpec is comparable, so the
// spec itself is the key; two spellings of one normalised point just
// occupy two entries. The cache is reset at the bound rather than
// evicted — IDs re-derive in one pass — so adversarial spec churn
// (the HTTP API mints these) is capped at idCacheMax entries.
var idCache struct {
	mu sync.RWMutex
	m  map[JobSpec]string
}

const idCacheMax = 1 << 13

// ID returns the job's content address: a stable hash of the normalised
// spec. Equal points get equal IDs regardless of which defaults were
// spelled out, and the ID doubles as the HTTP resource name
// (/v1/jobs/{id}). Trace-backed jobs hash the trace's content address,
// so the job ID is itself content-addressed end to end.
func (j JobSpec) ID() string {
	idCache.mu.RLock()
	id, ok := idCache.m[j]
	idCache.mu.RUnlock()
	if ok {
		return id
	}
	n := j.Normalised()
	canon := fmt.Sprintf("v2|%s|%d|%d|%d|%s|%s|%d|%d",
		n.workloadKey(), n.SizeKB, n.LineBytes, n.Banks, n.Policy, n.Mode, n.Epochs, n.UpdateEvery)
	sum := sha256.Sum256([]byte(canon))
	id = "job-" + hex.EncodeToString(sum[:8])
	idCache.mu.Lock()
	if idCache.m == nil || len(idCache.m) >= idCacheMax {
		idCache.m = make(map[JobSpec]string, 256)
	}
	idCache.m[j] = id
	idCache.mu.Unlock()
	return id
}

// runKey is the run-cache address: the trace simulation depends on the
// workload, geometry, banks, policy and update cadence, but not on the
// sleep mode or epoch count (those enter through the projection), so
// jobs differing only there share one simulation.
func (j JobSpec) runKey() string {
	n := j.Normalised()
	return fmt.Sprintf("%s|%d|%d|%d|%s|%d", n.workloadKey(), n.SizeKB, n.LineBytes, n.Banks, n.Policy, n.UpdateEvery)
}

// SweepSpec describes a set of jobs. Jobs lists explicit points;
// the axis fields add the cartesian product Benches × SizesKB ×
// LineBytes × Banks × Policies × Modes. Either part may be empty; an
// entirely empty spec is an error. Duplicate points (same ID) are
// collapsed during expansion.
type SweepSpec struct {
	// Name is a free-form label echoed in status reports.
	Name string `json:"name,omitempty"`
	// Jobs are explicit points, normalised individually.
	Jobs []JobSpec `json:"jobs,omitempty"`
	// (Benches ∪ TraceIDs) × SizesKB × LineBytes × Banks × Policies ×
	// Modes is the cartesian part. Empty axes default to the paper's
	// single point (16 kB, 16 B lines, 4 banks, probing,
	// voltage-scaled); Benches empty means all 18 paper benchmarks when
	// another axis is set and no uploaded traces are referenced.
	Benches []string `json:"benches,omitempty"`
	// TraceIDs reference uploaded traces (POST /v1/traces) as workload
	// axis values alongside the synthetic benchmarks.
	TraceIDs  []string `json:"trace_ids,omitempty"`
	SizesKB   []int    `json:"sizes_kb,omitempty"`
	LineBytes []int    `json:"line_bytes,omitempty"`
	Banks     []int    `json:"banks,omitempty"`
	Policies  []string `json:"policies,omitempty"`
	Modes     []string `json:"modes,omitempty"`
	// Epochs applies to every cartesian job; 0 means the default.
	Epochs int `json:"epochs,omitempty"`
}

// expandCache memoises axis-only sweep expansions, keyed by a canonical
// rendering of the axes. Sweeps are resubmitted verbatim by design —
// every poll-and-rerun client replays the same grid to hit the result
// cache — and each replay otherwise pays the full normalise + validate
// + dedup pass over the cartesian product. Specs with an explicit Jobs
// list skip the cache (arbitrary content, no resubmission pattern).
// Like idCache, the map is reset at its bound instead of evicted, so
// API-minted spec churn cannot grow it without limit.
var expandCache struct {
	mu sync.RWMutex
	m  map[string][]JobSpec
}

const expandCacheMax = 256

func (s SweepSpec) axisKey() string {
	return fmt.Sprintf("%q|%q|%v|%v|%v|%q|%q|%d",
		s.Benches, s.TraceIDs, s.SizesKB, s.LineBytes, s.Banks, s.Policies, s.Modes, s.Epochs)
}

// Expand resolves the spec into its deduplicated, validated job list.
func (s SweepSpec) Expand() ([]JobSpec, error) {
	cacheable := len(s.Jobs) == 0
	var key string
	if cacheable {
		key = s.axisKey()
		expandCache.mu.RLock()
		cached, ok := expandCache.m[key]
		expandCache.mu.RUnlock()
		if ok {
			// Callers receive a private copy: the cluster coordinator
			// shards the slice and tests append to it.
			return append([]JobSpec(nil), cached...), nil
		}
	}
	out, err := s.expand()
	if err != nil || !cacheable {
		return out, err
	}
	expandCache.mu.Lock()
	if expandCache.m == nil || len(expandCache.m) >= expandCacheMax {
		expandCache.m = make(map[string][]JobSpec, 16)
	}
	expandCache.m[key] = append([]JobSpec(nil), out...)
	expandCache.mu.Unlock()
	return out, nil
}

func (s SweepSpec) expand() ([]JobSpec, error) {
	var jobs []JobSpec
	jobs = append(jobs, s.Jobs...)

	cartesian := len(s.Benches) > 0 || len(s.TraceIDs) > 0 || len(s.SizesKB) > 0 ||
		len(s.LineBytes) > 0 || len(s.Banks) > 0 || len(s.Policies) > 0 || len(s.Modes) > 0
	if cartesian {
		// The workload axis is the union of synthetic benchmarks and
		// uploaded traces; all-benchmarks is the default only when
		// neither kind is named.
		type workloadRef struct{ bench, traceID string }
		var refs []workloadRef
		benches := s.Benches
		if len(benches) == 0 && len(s.TraceIDs) == 0 {
			benches = workload.Names()
		}
		for _, b := range benches {
			refs = append(refs, workloadRef{bench: b})
		}
		for _, id := range s.TraceIDs {
			refs = append(refs, workloadRef{traceID: id})
		}
		sizes := orDefault(s.SizesKB, 16)
		lines := orDefault(s.LineBytes, 16)
		banks := orDefault(s.Banks, 4)
		policies := s.Policies
		if len(policies) == 0 {
			policies = []string{string(index.KindProbing)}
		}
		modes := s.Modes
		if len(modes) == 0 {
			modes = []string{ModeVoltageScaled}
		}
		for _, ref := range refs {
			for _, kb := range sizes {
				for _, lb := range lines {
					for _, m := range banks {
						for _, pol := range policies {
							for _, mode := range modes {
								jobs = append(jobs, JobSpec{
									Bench: ref.bench, TraceID: ref.traceID,
									SizeKB: kb, LineBytes: lb, Banks: m,
									Policy: pol, Mode: mode, Epochs: s.Epochs,
								})
							}
						}
					}
				}
			}
		}
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("engine: empty sweep (no explicit jobs and no axes)")
	}

	seen := make(map[string]bool, len(jobs))
	out := jobs[:0]
	var bad []string
	for _, j := range jobs {
		j = j.Normalised()
		if err := j.Validate(); err != nil {
			bad = append(bad, err.Error())
			continue
		}
		if id := j.ID(); !seen[id] {
			seen[id] = true
			out = append(out, j)
		}
	}
	if len(bad) > 0 {
		return nil, fmt.Errorf("engine: invalid sweep: %s", strings.Join(bad, "; "))
	}
	return out, nil
}

func orDefault(vals []int, def int) []int {
	if len(vals) == 0 {
		return []int{def}
	}
	return vals
}

// JobResult is the outcome of one job. Exactly one of (Run, Projection)
// both set or Err non-empty holds: failures are isolated per job and
// never abort a sweep.
type JobResult struct {
	// ID is the job's content address.
	ID string `json:"id"`
	// Spec is the normalised spec that ran.
	Spec JobSpec `json:"spec"`
	// Run is the trace-simulation measurement (misses, energy, per-region
	// idleness).
	Run *core.RunResult `json:"run,omitempty"`
	// Projection folds the measured idleness through the spec's policy
	// and sleep mode into multi-year bank lifetimes.
	Projection *core.Projection `json:"projection,omitempty"`
	// Err is the failure, if any ("context canceled" for cancelled jobs).
	Err string `json:"error,omitempty"`
	// Canceled distinguishes cancellation from real failures.
	Canceled bool `json:"canceled,omitempty"`
	// Cached reports that the result was served from the engine cache
	// rather than simulated for this request.
	Cached bool `json:"cached,omitempty"`
	// Timing is the wall-clock decomposition of this execution (sweep
	// jobs on an instrumented engine only). It describes the serving,
	// not the simulation point, so it is JSON-only: the persisted blob
	// never carries it, and a cache hit reports the hit's own timing
	// (queue + persist), not the original run's.
	Timing *JobTiming `json:"timing,omitempty"`
}

// JobTiming is one job execution's per-phase wall time, milliseconds.
// Phases that did not run this time (a cached result skips resolve,
// simulate and project; a shared run skips resolve and simulate) are
// zero.
type JobTiming struct {
	QueueMs    float64 `json:"queue_ms"`
	ResolveMs  float64 `json:"resolve_ms,omitempty"`
	SimulateMs float64 `json:"simulate_ms,omitempty"`
	ProjectMs  float64 `json:"project_ms,omitempty"`
	PersistMs  float64 `json:"persist_ms,omitempty"`
	TotalMs    float64 `json:"total_ms"`
}

// Failed reports whether the job did not produce a result.
func (r *JobResult) Failed() bool { return r.Err != "" }

package device

import (
	"math"
	"testing"
	"testing/quick"
)

func testDev() Device {
	return DefaultTech45().NMOS
}

func TestIdsOffRegion(t *testing.T) {
	d := testDev()
	if got := d.Ids(0, 1.0); got != d.Gmin*1.0 {
		t.Errorf("off current = %v, want gmin leak %v", got, d.Gmin)
	}
	if got := d.Ids(d.Vth, 0.5); got != d.Gmin*0.5 {
		t.Errorf("at-threshold current = %v, want leak only", got)
	}
}

func TestIdsZeroVds(t *testing.T) {
	d := testDev()
	if got := d.Ids(1.1, 0); got != 0 {
		t.Errorf("Ids(vds=0) = %v, want 0", got)
	}
}

func TestIdsNegativeVdsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative vds did not panic")
		}
	}()
	testDev().Ids(1.0, -0.1)
}

func TestIdsContinuousAtVdsat(t *testing.T) {
	d := testDev()
	vgs := 1.1
	od := vgs - d.Vth
	vdsat := d.VdsatCoeff * math.Pow(od, d.Alpha/2)
	below := d.Ids(vgs, vdsat*(1-1e-9))
	above := d.Ids(vgs, vdsat*(1+1e-9))
	if rel := math.Abs(below-above) / above; rel > 1e-6 {
		t.Errorf("discontinuity at vdsat: %v vs %v (rel %v)", below, above, rel)
	}
}

func TestIdsMagnitudeReasonable(t *testing.T) {
	// A unit-strength 45nm NMOS at full drive should carry on the order
	// of a hundred microamps.
	d := testDev()
	i := d.Ids(1.1, 1.1)
	if i < 50e-6 || i > 1e-3 {
		t.Errorf("full-drive current %v A outside plausible 45nm range", i)
	}
}

// Property: Ids is non-decreasing in vgs and in vds (required for the
// nodal bisection in internal/sram to be well-posed).
func TestIdsMonotone(t *testing.T) {
	d := testDev()
	f := func(a, b, c uint16) bool {
		vgs1 := float64(a%1200) / 1000
		vgs2 := vgs1 + float64(b%200)/1000
		vds := float64(c%1200) / 1000
		if d.Ids(vgs2, vds) < d.Ids(vgs1, vds)-1e-15 {
			return false
		}
		vds2 := vds + float64(b%300)/1000
		return d.Ids(vgs2, vds2) >= d.Ids(vgs2, vds)-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWithVthShift(t *testing.T) {
	d := testDev()
	shifted := d.WithVthShift(0.05)
	if shifted.Vth != d.Vth+0.05 {
		t.Errorf("Vth = %v, want %v", shifted.Vth, d.Vth+0.05)
	}
	if d.Vth != testDev().Vth {
		t.Error("WithVthShift mutated the receiver")
	}
	// A higher threshold must weaken the device.
	if shifted.Ids(1.0, 1.0) >= d.Ids(1.0, 1.0) {
		t.Error("Vth shift did not reduce current")
	}
}

func TestValidate(t *testing.T) {
	good := testDev()
	if err := good.Validate(); err != nil {
		t.Fatalf("good device rejected: %v", err)
	}
	cases := []func(*Device){
		func(d *Device) { d.Vth = 0 },
		func(d *Device) { d.K = -1 },
		func(d *Device) { d.WL = 0 },
		func(d *Device) { d.Alpha = 0.5 },
		func(d *Device) { d.Alpha = 2.5 },
		func(d *Device) { d.VdsatCoeff = 0 },
		func(d *Device) { d.Lambda = -0.1 },
		func(d *Device) { d.Gmin = -1 },
	}
	for i, mutate := range cases {
		d := testDev()
		mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: bad device accepted", i)
		}
	}
}

func TestTech45Validate(t *testing.T) {
	tech := DefaultTech45()
	if err := tech.Validate(); err != nil {
		t.Fatalf("default tech rejected: %v", err)
	}
	bad := tech
	bad.VddRetention = tech.Vdd // must be strictly below Vdd
	if err := bad.Validate(); err == nil {
		t.Error("retention >= Vdd accepted")
	}
	bad = tech
	bad.TempK = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero temperature accepted")
	}
	bad = tech
	bad.NMOS.Kind = PMOS
	if err := bad.Validate(); err == nil {
		t.Error("swapped polarities accepted")
	}
	bad = tech
	bad.Vdd = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative Vdd accepted")
	}
	bad = tech
	bad.PMOS.K = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad PMOS accepted")
	}
}

func TestKindString(t *testing.T) {
	if NMOS.String() != "nmos" || PMOS.String() != "pmos" {
		t.Error("kind strings wrong")
	}
}

func TestPMOSWeakerThanNMOS(t *testing.T) {
	tech := DefaultTech45()
	in := tech.NMOS.Ids(1.1, 1.1)
	ip := tech.PMOS.Ids(1.1, 1.1)
	if ip >= in {
		t.Errorf("PMOS current %v not below NMOS %v (mobility ratio)", ip, in)
	}
}

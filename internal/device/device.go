// Package device provides the transistor-level current models underneath
// the SRAM characterisation framework. The paper characterises a 6T cell
// with HSPICE against an industrial 45nm kit; this package is the
// analytical stand-in: an alpha-power-law MOSFET model (Sakurai–Newton)
// with channel-length modulation and a numerical minimum conductance, the
// standard abstraction for hand analysis of deep-submicron CMOS VTCs.
//
// All voltages in this package are magnitudes: callers map PMOS polarities
// (source-referenced negative Vgs/Vds) onto positive effective values, as
// internal/sram does.
package device

import (
	"fmt"
	"math"
)

// Kind distinguishes device polarity. The current equations are identical
// in magnitude form; Kind is carried for reporting and parameter lookup.
type Kind uint8

// Device polarities.
const (
	NMOS Kind = iota
	PMOS
)

// String returns "nmos" or "pmos".
func (k Kind) String() string {
	if k == PMOS {
		return "pmos"
	}
	return "nmos"
}

// Device is one transistor instance: alpha-power-law parameters plus a
// W/L strength multiplier.
type Device struct {
	Kind Kind
	// Vth is the threshold voltage magnitude in volts.
	Vth float64
	// K is the saturation transconductance in A/V^Alpha for W/L = 1.
	K float64
	// WL is the W/L strength multiplier.
	WL float64
	// Alpha is the velocity-saturation index (2.0 long-channel,
	// ~1.3 at 45nm).
	Alpha float64
	// VdsatCoeff scales the saturation voltage:
	// Vdsat = VdsatCoeff * overdrive^(Alpha/2).
	VdsatCoeff float64
	// Lambda is the channel-length-modulation coefficient (1/V).
	Lambda float64
	// Gmin is a numerical shunt conductance (S) that stands in for
	// subthreshold leakage and keeps nodal equations strictly monotone,
	// the same trick SPICE uses (GMIN stepping).
	Gmin float64
}

// Validate reports parameter errors.
func (d Device) Validate() error {
	switch {
	case d.Vth <= 0:
		return fmt.Errorf("device: %s Vth %v must be positive", d.Kind, d.Vth)
	case d.K <= 0:
		return fmt.Errorf("device: %s K %v must be positive", d.Kind, d.K)
	case d.WL <= 0:
		return fmt.Errorf("device: %s W/L %v must be positive", d.Kind, d.WL)
	case d.Alpha < 1 || d.Alpha > 2:
		return fmt.Errorf("device: %s alpha %v outside [1,2]", d.Kind, d.Alpha)
	case d.VdsatCoeff <= 0:
		return fmt.Errorf("device: %s Vdsat coefficient %v must be positive", d.Kind, d.VdsatCoeff)
	case d.Lambda < 0:
		return fmt.Errorf("device: %s lambda %v must be non-negative", d.Kind, d.Lambda)
	case d.Gmin < 0:
		return fmt.Errorf("device: %s gmin %v must be non-negative", d.Kind, d.Gmin)
	}
	return nil
}

// Ids returns the drain current magnitude (A) for gate and drain voltage
// magnitudes vgs, vds >= 0, per the Sakurai–Newton alpha-power law:
//
//	off        : Ids = Gmin*vds
//	saturation : Ids = WL*K*(vgs-Vth)^alpha * (1+lambda*vds)
//	linear     : Ids = Idsat(vds) * (2 - vds/vdsat)*(vds/vdsat)
//
// The linear branch is continuous with saturation at vds = vdsat.
func (d Device) Ids(vgs, vds float64) float64 {
	if vds < 0 {
		// Devices in this code base are always driven source-referenced;
		// negative vds indicates a caller polarity bug.
		panic(fmt.Sprintf("device: negative vds %v", vds))
	}
	leak := d.Gmin * vds
	od := vgs - d.Vth
	if od <= 0 {
		return leak
	}
	sat := d.WL * d.K * math.Pow(od, d.Alpha) * (1 + d.Lambda*vds)
	vdsat := d.VdsatCoeff * math.Pow(od, d.Alpha/2)
	if vds >= vdsat {
		return sat + leak
	}
	x := vds / vdsat
	return sat*(2-x)*x + leak
}

// WithVthShift returns a copy with the threshold raised by dvth (the NBTI
// degradation applied during post-stress simulation).
func (d Device) WithVthShift(dvth float64) Device {
	d.Vth += dvth
	return d
}

// Tech45 is the synthetic 45nm-class parameter set standing in for the
// STMicroelectronics kit the paper used. Values are representative of
// published 45nm LP data: |Vth| ~ 0.35-0.4 V, alpha ~ 1.3, PMOS mobility
// roughly half NMOS.
type Tech45 struct {
	// Vdd is the nominal supply (V).
	Vdd float64
	// VddRetention is the voltage-scaled standby supply (V), the
	// "Vdd,low" of Fig. 1.
	VddRetention float64
	// TempK is the characterisation temperature (K).
	TempK float64
	// NMOS and PMOS are the unit-strength device templates.
	NMOS, PMOS Device
}

// DefaultTech45 returns the parameter set used throughout the experiments.
// VddRetention = 0.70 V is the operating point at which the NBTI stress
// rate falls to ((0.70-0.35)/(1.10-0.35))^2 ~ 0.218 of nominal — the value
// the paper's lifetime numbers imply (see DESIGN.md §4).
func DefaultTech45() Tech45 {
	return Tech45{
		Vdd:          1.10,
		VddRetention: 0.70,
		TempK:        358, // 85C, standard reliability corner
		NMOS: Device{
			Kind:       NMOS,
			Vth:        0.35,
			K:          3.0e-4,
			WL:         1,
			Alpha:      1.3,
			VdsatCoeff: 0.45,
			Lambda:     0.09,
			Gmin:       1e-7,
		},
		PMOS: Device{
			Kind:       PMOS,
			Vth:        0.35,
			K:          1.5e-4,
			WL:         1,
			Alpha:      1.3,
			VdsatCoeff: 0.50,
			Lambda:     0.11,
			Gmin:       1e-7,
		},
	}
}

// Validate checks the full technology record.
func (t Tech45) Validate() error {
	if t.Vdd <= 0 {
		return fmt.Errorf("device: Vdd %v must be positive", t.Vdd)
	}
	if t.VddRetention <= 0 || t.VddRetention >= t.Vdd {
		return fmt.Errorf("device: retention voltage %v outside (0, Vdd)", t.VddRetention)
	}
	if t.TempK <= 0 {
		return fmt.Errorf("device: temperature %v K must be positive", t.TempK)
	}
	if err := t.NMOS.Validate(); err != nil {
		return err
	}
	if err := t.PMOS.Validate(); err != nil {
		return err
	}
	if t.NMOS.Kind != NMOS || t.PMOS.Kind != PMOS {
		return fmt.Errorf("device: template polarities swapped")
	}
	return nil
}

package core

import (
	"fmt"

	"nbticache/internal/cache"
	"nbticache/internal/pmu"
	"nbticache/internal/power"
	"nbticache/internal/stats"
	"nbticache/internal/trace"
)

// RunResult collects everything a trace simulation measured.
type RunResult struct {
	// Name is the trace name.
	Name string
	// Banks is M.
	Banks int
	// PolicyName is the indexing policy that ran.
	PolicyName string
	// Reads, Writes, Hits, Misses count accesses.
	Reads, Writes uint64
	Hits, Misses  uint64
	// SpanCycles is the simulated duration.
	SpanCycles uint64
	// Updates counts in-trace re-indexing events (each flushed the
	// cache).
	Updates uint64
	// Breakeven is the Block Control threshold used (cycles);
	// CounterWidth the counter size implementing it.
	Breakeven    uint64
	CounterWidth int
	// RegionStats is keyed by logical region (stable across updates);
	// it feeds the aging projection and Table I.
	RegionStats []pmu.BankStats
	// BankStats is keyed by physical bank (what the rails see); it
	// feeds the energy accounting.
	BankStats []pmu.BankStats
	// Energy is the partitioned, power-managed energy; Baseline is the
	// monolithic unmanaged reference; Savings = 1 - Energy/Baseline
	// (the paper's Esav).
	Energy   power.Breakdown
	Baseline power.Breakdown
	Savings  float64
}

// HitRate returns hits over accesses.
func (r *RunResult) HitRate() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(total)
}

// RegionUsefulIdleness projects the I_j vector of Table I.
func (r *RunResult) RegionUsefulIdleness() []float64 {
	out := make([]float64, len(r.RegionStats))
	for i, s := range r.RegionStats {
		out[i] = s.UsefulIdleness
	}
	return out
}

// RegionSleepFractions projects the per-region sleep duty feeding aging.
func (r *RunResult) RegionSleepFractions() []float64 {
	out := make([]float64, len(r.RegionStats))
	for i, s := range r.RegionStats {
		out[i] = s.SleepFraction
	}
	return out
}

// AverageIdleness is the mean of the per-region useful idleness (the
// "Average" column of Table I).
func (r *RunResult) AverageIdleness() float64 {
	return stats.Mean(r.RegionUsefulIdleness())
}

// Run drives a full trace through the cache, finishes it at the trace
// span, and assembles the result, including energy against the monolithic
// unmanaged baseline.
func (pc *PartitionedCache) Run(tr *trace.Trace) (*RunResult, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("core: empty trace")
	}
	var hits uint64
	for i := range tr.Accesses {
		a := &tr.Accesses[i]
		hit, _, err := pc.Access(a.Cycle, a.Addr, a.Kind)
		if err != nil {
			return nil, fmt.Errorf("core: access %d: %w", i, err)
		}
		if hit {
			hits++
		}
	}
	if err := pc.Finish(tr.Cycles); err != nil {
		return nil, err
	}
	return pc.Result(tr.Name, hits)
}

// Result assembles the RunResult after Finish. hits is the hit count
// observed by the driver (Run tracks it; external drivers pass their
// own).
func (pc *PartitionedCache) Result(name string, hits uint64) (*RunResult, error) {
	if !pc.finished {
		return nil, fmt.Errorf("core: Result before Finish")
	}
	regionStats, err := pc.regionPMU.Results()
	if err != nil {
		return nil, err
	}
	bankStats, err := pc.bankPMU.Results()
	if err != nil {
		return nil, err
	}
	res := &RunResult{
		Name:         name,
		Banks:        pc.cfg.Banks,
		PolicyName:   pc.policy.Name(),
		Reads:        pc.reads,
		Writes:       pc.writes,
		Hits:         hits,
		Misses:       pc.reads + pc.writes - hits,
		SpanCycles:   pc.span,
		Updates:      pc.updates,
		Breakeven:    pc.breakeven,
		CounterWidth: pc.width,
		RegionStats:  regionStats,
		BankStats:    bankStats,
	}
	sleep := make([]uint64, len(bankStats))
	wakes := make([]uint64, len(bankStats))
	for i, s := range bankStats {
		sleep[i] = s.SleepCycles
		wakes[i] = s.Wakeups
	}
	usage := power.Usage{
		Reads:       pc.reads,
		Writes:      pc.writes,
		SpanCycles:  pc.span,
		SleepCycles: sleep,
		Wakeups:     wakes,
	}
	res.Energy, err = pc.cfg.Tech.Energy(pc.cfg.Geometry, pc.cfg.Banks, usage)
	if err != nil {
		return nil, err
	}
	res.Baseline, err = pc.cfg.Tech.Energy(pc.cfg.Geometry, 1, power.Usage{
		Reads:      pc.reads,
		Writes:     pc.writes,
		SpanCycles: pc.span,
	})
	if err != nil {
		return nil, err
	}
	res.Savings = power.Savings(res.Baseline, res.Energy)
	return res, nil
}

// MonolithicResult summarises a conventional non-partitioned cache run —
// the reference for the "no degradation of miss rate" claim.
type MonolithicResult struct {
	Name          string
	Hits, Misses  uint64
	Reads, Writes uint64
	SpanCycles    uint64
	Energy        power.Breakdown
}

// HitRate returns hits over accesses.
func (r *MonolithicResult) HitRate() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(total)
}

// RunMonolithic simulates a conventional unmanaged cache over the trace.
func RunMonolithic(g cache.Geometry, tech power.Tech, tr *trace.Trace) (*MonolithicResult, error) {
	if tech == (power.Tech{}) {
		tech = power.DefaultTech()
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	c, err := cache.New(g)
	if err != nil {
		return nil, err
	}
	res := &MonolithicResult{Name: tr.Name, SpanCycles: tr.Cycles}
	for i := range tr.Accesses {
		a := &tr.Accesses[i]
		if c.Access(a.Addr) {
			res.Hits++
		} else {
			res.Misses++
		}
		if a.Kind == trace.Write {
			res.Writes++
		} else {
			res.Reads++
		}
	}
	res.Energy, err = tech.Energy(g, 1, power.Usage{
		Reads:      res.Reads,
		Writes:     res.Writes,
		SpanCycles: tr.Cycles,
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

package core

import (
	"fmt"

	"nbticache/internal/cache"
	"nbticache/internal/pmu"
	"nbticache/internal/power"
	"nbticache/internal/stats"
	"nbticache/internal/trace"
)

// RunResult collects everything a trace simulation measured.
type RunResult struct {
	// Name is the trace name.
	Name string
	// Banks is M.
	Banks int
	// PolicyName is the indexing policy that ran.
	PolicyName string
	// Reads, Writes, Hits, Misses count accesses.
	Reads, Writes uint64
	Hits, Misses  uint64
	// SpanCycles is the simulated duration.
	SpanCycles uint64
	// Updates counts in-trace re-indexing events (each flushed the
	// cache).
	Updates uint64
	// Breakeven is the Block Control threshold used (cycles);
	// CounterWidth the counter size implementing it.
	Breakeven    uint64
	CounterWidth int
	// RegionStats is keyed by logical region (stable across updates);
	// it feeds the aging projection and Table I.
	RegionStats []pmu.BankStats
	// BankStats is keyed by physical bank (what the rails see); it
	// feeds the energy accounting.
	BankStats []pmu.BankStats
	// Energy is the partitioned, power-managed energy; Baseline is the
	// monolithic unmanaged reference; Savings = 1 - Energy/Baseline
	// (the paper's Esav).
	Energy   power.Breakdown
	Baseline power.Breakdown
	Savings  float64
}

// HitRate returns hits over accesses.
func (r *RunResult) HitRate() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(total)
}

// RegionUsefulIdleness projects the I_j vector of Table I.
func (r *RunResult) RegionUsefulIdleness() []float64 {
	out := make([]float64, len(r.RegionStats))
	for i, s := range r.RegionStats {
		out[i] = s.UsefulIdleness
	}
	return out
}

// RegionSleepFractions projects the per-region sleep duty feeding aging.
func (r *RunResult) RegionSleepFractions() []float64 {
	out := make([]float64, len(r.RegionStats))
	for i, s := range r.RegionStats {
		out[i] = s.SleepFraction
	}
	return out
}

// AverageIdleness is the mean of the per-region useful idleness (the
// "Average" column of Table I).
func (r *RunResult) AverageIdleness() float64 {
	return stats.Mean(r.RegionUsefulIdleness())
}

// DefaultBatchSize is the access-chunk length Run simulates per
// AccessBatch call: large enough to amortise the per-batch validation
// and counter flushes, small enough that the chunk buffers stay resident
// in cache.
const DefaultBatchSize = 4096

// Batch is a reusable chunk of batch-kernel input buffers in the layout
// AccessBatch consumes (split cycle/address/kind columns). Drivers that
// simulate many traces — the engine's worker pool above all — allocate a
// handful and reuse them across jobs instead of allocating per run.
type Batch struct {
	cycles []uint64
	addrs  []uint64
	kinds  []trace.Kind
	// Kernel scratch, lent to the PartitionedCache by RunBuffered so a
	// pooled Batch carries the whole per-run working set: decoded
	// regions/banks and the per-bank address scatter.
	regions []int32
	banks   []int32
	scatter []uint64
}

// NewBatch returns a batch buffer for chunks of the given size; size < 1
// selects DefaultBatchSize.
func NewBatch(size int) *Batch {
	if size < 1 {
		size = DefaultBatchSize
	}
	return &Batch{
		cycles:  make([]uint64, size),
		addrs:   make([]uint64, size),
		kinds:   make([]trace.Kind, size),
		regions: make([]int32, size),
		banks:   make([]int32, size),
		scatter: make([]uint64, size),
	}
}

// Run drives a full trace through the cache, finishes it at the trace
// span, and assembles the result, including energy against the monolithic
// unmanaged baseline.
func (pc *PartitionedCache) Run(tr *trace.Trace) (*RunResult, error) {
	return pc.RunBuffered(tr, nil)
}

// RunBuffered is Run with a caller-owned chunk buffer, reusable across
// runs (nil allocates a DefaultBatchSize one). The trace is fed to the
// batch kernel in buffer-sized chunks. The cache borrows the buffer's
// scratch for its own lifetime, so hand the buffer to another run only
// after this cache is finished with (which Run guarantees: it either
// finishes the cache or returns an error that ends the simulation).
func (pc *PartitionedCache) RunBuffered(tr *trace.Trace, buf *Batch) (*RunResult, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("core: empty trace")
	}
	if buf == nil || len(buf.cycles) == 0 {
		buf = NewBatch(DefaultBatchSize)
	}
	size := len(buf.cycles)
	// Lend the buffer's kernel scratch to the cache: every chunk this
	// run feeds AccessBatch fits it, so the kernel allocates nothing.
	if cap(pc.regionBuf) < size {
		pc.regionBuf, pc.bankBuf, pc.scatterBuf = buf.regions, buf.banks, buf.scatter
	}
	acc := tr.Accesses
	var hits uint64
	for start := 0; start < len(acc); start += size {
		chunk := acc[start:min(start+size, len(acc))]
		//nbtivet:ignore soalayout RunBuffered IS the row-compatibility API; this transpose is its whole job, columnar callers use RunColumns
		for k := range chunk {
			buf.cycles[k] = chunk[k].Cycle
			buf.addrs[k] = chunk[k].Addr
			buf.kinds[k] = chunk[k].Kind
		}
		h, applied, err := pc.accessBatch(buf.cycles[:len(chunk)], buf.addrs[:len(chunk)], buf.kinds[:len(chunk)])
		hits += h
		if err != nil {
			// applied accesses succeeded; start+applied is the offender.
			return nil, fmt.Errorf("core: access %d: %w", start+applied, err)
		}
	}
	if err := pc.Finish(tr.Cycles); err != nil {
		return nil, err
	}
	return pc.Result(tr.Name, hits)
}

// RunColumns drives a columnar trace through the cache — the native
// hot path. The columns ARE the kernel's input layout, so each chunk is
// three subslices handed straight to the batch kernel: no per-access
// copy, no transposition, nothing materialised. buf (nil allocates one)
// only sizes the chunking and lends the general kernel its scatter
// scratch; the fused kernel needs neither.
func (pc *PartitionedCache) RunColumns(c *trace.Columns, buf *Batch) (*RunResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return pc.runColumns(c, buf)
}

// RunColumnsUnchecked is RunColumns without the O(n) re-validation
// pass, for callers holding columns already validated at creation (a
// decoded blob, a transposed validated trace). Immutable columns run
// many times pay validation once instead of per run — on a full sweep
// the pass was ~10% of kernel time, re-checking what the decoders had
// already proven. The kernel still enforces everything that matters
// dynamically: column length parity here, cycle ordering and the span
// bound in the walk itself. Only kind validity is trusted — an invalid
// kind tallies as a read instead of erroring — so columns of unproven
// provenance must go through RunColumns.
func (pc *PartitionedCache) RunColumnsUnchecked(c *trace.Columns, buf *Batch) (*RunResult, error) {
	if len(c.Addrs) != len(c.Cycles) || len(c.Kinds) != len(c.Cycles) {
		return nil, fmt.Errorf("core: column length mismatch: %d cycles, %d addrs, %d kinds",
			len(c.Cycles), len(c.Addrs), len(c.Kinds))
	}
	return pc.runColumns(c, buf)
}

func (pc *PartitionedCache) runColumns(c *trace.Columns, buf *Batch) (*RunResult, error) {
	if c.Len() == 0 {
		return nil, fmt.Errorf("core: empty trace")
	}
	if buf == nil || len(buf.cycles) == 0 {
		buf = NewBatch(DefaultBatchSize)
	}
	size := len(buf.cycles)
	if cap(pc.regionBuf) < size {
		pc.regionBuf, pc.bankBuf, pc.scatterBuf = buf.regions, buf.banks, buf.scatter
	}
	n := c.Len()
	var hits uint64
	for start := 0; start < n; start += size {
		end := min(start+size, n)
		h, applied, err := pc.accessBatch(c.Cycles[start:end], c.Addrs[start:end], c.Kinds[start:end])
		hits += h
		if err != nil {
			return nil, fmt.Errorf("core: access %d: %w", start+applied, err)
		}
	}
	if err := pc.Finish(c.Span); err != nil {
		return nil, err
	}
	return pc.Result(c.Name, hits)
}

// Result assembles the RunResult after Finish. hits is the hit count
// observed by the driver (Run tracks it; external drivers pass their
// own).
func (pc *PartitionedCache) Result(name string, hits uint64) (*RunResult, error) {
	if !pc.finished {
		return nil, fmt.Errorf("core: Result before Finish")
	}
	regionStats, err := pc.regionPMU.Results()
	if err != nil {
		return nil, err
	}
	bankStats, err := pc.bankPMU.Results()
	if err != nil {
		return nil, err
	}
	res := &RunResult{
		Name:         name,
		Banks:        pc.cfg.Banks,
		PolicyName:   pc.policy.Name(),
		Reads:        pc.reads,
		Writes:       pc.writes,
		Hits:         hits,
		Misses:       pc.reads + pc.writes - hits,
		SpanCycles:   pc.span,
		Updates:      pc.updates,
		Breakeven:    pc.breakeven,
		CounterWidth: pc.width,
		RegionStats:  regionStats,
		BankStats:    bankStats,
	}
	sleep := make([]uint64, len(bankStats))
	wakes := make([]uint64, len(bankStats))
	for i, s := range bankStats {
		sleep[i] = s.SleepCycles
		wakes[i] = s.Wakeups
	}
	usage := power.Usage{
		Reads:       pc.reads,
		Writes:      pc.writes,
		SpanCycles:  pc.span,
		SleepCycles: sleep,
		Wakeups:     wakes,
	}
	res.Energy, err = pc.cfg.Tech.Energy(pc.cfg.Geometry, pc.cfg.Banks, usage)
	if err != nil {
		return nil, err
	}
	res.Baseline, err = pc.cfg.Tech.Energy(pc.cfg.Geometry, 1, power.Usage{
		Reads:      pc.reads,
		Writes:     pc.writes,
		SpanCycles: pc.span,
	})
	if err != nil {
		return nil, err
	}
	res.Savings = power.Savings(res.Baseline, res.Energy)
	return res, nil
}

// MonolithicResult summarises a conventional non-partitioned cache run —
// the reference for the "no degradation of miss rate" claim.
type MonolithicResult struct {
	Name          string
	Hits, Misses  uint64
	Reads, Writes uint64
	SpanCycles    uint64
	Energy        power.Breakdown
}

// HitRate returns hits over accesses.
func (r *MonolithicResult) HitRate() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(total)
}

// RunMonolithic simulates a conventional unmanaged cache over the trace.
func RunMonolithic(g cache.Geometry, tech power.Tech, tr *trace.Trace) (*MonolithicResult, error) {
	if tech == (power.Tech{}) {
		tech = power.DefaultTech()
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	c, err := cache.New(g)
	if err != nil {
		return nil, err
	}
	res := &MonolithicResult{Name: tr.Name, SpanCycles: tr.Cycles}
	// Same chunked batch drive as the partitioned kernel: one address
	// buffer, cache lookups in bulk, counters accumulated locally.
	acc := tr.Accesses
	addrs := make([]uint64, min(DefaultBatchSize, len(acc)))
	for start := 0; start < len(acc); start += len(addrs) {
		chunk := acc[start:min(start+len(addrs), len(acc))]
		//nbtivet:ignore soalayout monolithic baseline runs once per comparison off row input; not a sweep-rate path
		for k := range chunk {
			addrs[k] = chunk[k].Addr
			if chunk[k].Kind == trace.Write {
				res.Writes++
			} else {
				res.Reads++
			}
		}
		res.Hits += c.AccessBatch(addrs[:len(chunk)])
	}
	res.Misses = uint64(len(acc)) - res.Hits
	res.Energy, err = tech.Energy(g, 1, power.Usage{
		Reads:      res.Reads,
		Writes:     res.Writes,
		SpanCycles: tr.Cycles,
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Package core implements the paper's contribution: the M-block uniformly
// partitioned cache with coarse-grain dynamic indexing (Figs. 1-3). It
// composes the substrates — decoder hardware models (internal/hw), the
// time-varying indexing policies (internal/index), per-bank tag stores
// (internal/cache), the breakeven power-management unit (internal/pmu)
// and the energy model (internal/power) — into a trace-driven simulator,
// and projects the measured idleness into multi-year bank lifetimes
// through the aging characterisation (internal/aging).
//
// Structure of a simulated access (Fig. 1b / Fig. 2):
//
//	index  = (addr / lineSize) mod 2^n
//	region = index >> (n-p)            // p MSBs
//	line   = index & (2^(n-p) - 1)     // routed to every bank
//	bank   = f(region)                 // f() = Identity/Probing/Scrambling
//	1-hot select activates the bank; Block Control counters track
//	idleness and drop idle banks to Vdd,low after the breakeven time.
//
// An `update` event re-parameterises f() and flushes the cache, exactly
// as §III-A3 prescribes.
package core

import (
	"fmt"

	"nbticache/internal/cache"
	"nbticache/internal/hw"
	"nbticache/internal/index"
	"nbticache/internal/pmu"
	"nbticache/internal/power"
	"nbticache/internal/trace"
)

// Config assembles a partitioned cache.
type Config struct {
	// Geometry is the overall cache organisation (the paper uses
	// direct-mapped; Ways=1).
	Geometry cache.Geometry
	// Banks is M, a power of two in [2, 256].
	Banks int
	// Policy selects the dynamic-indexing function f().
	Policy index.Kind
	// Tech is the energy model; zero value means power.DefaultTech().
	Tech power.Tech
	// BreakevenOverride forces the Block Control threshold (cycles);
	// 0 derives it from the energy model.
	BreakevenOverride uint64
	// UpdateEvery fires a re-indexing update (and cache flush) every
	// that many accesses during trace simulation; 0 disables in-trace
	// updates (the realistic setting: updates are ~daily, far apart
	// relative to any trace).
	UpdateEvery uint64
	// LFSRSeed seeds the Scrambling policy (ignored otherwise);
	// 0 means 1.
	LFSRSeed uint
}

// normalised fills defaults.
func (c Config) normalised() Config {
	if c.Tech == (power.Tech{}) {
		c.Tech = power.DefaultTech()
	}
	if c.LFSRSeed == 0 {
		c.LFSRSeed = 1
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	c = c.normalised()
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.Banks < 2 || c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("core: bank count %d is not a power of two >= 2", c.Banks)
	}
	// The paper's architecture is direct-mapped; set-associative
	// organisations are supported as an extension — the p MSBs of the
	// set index select the bank, and each bank keeps the original
	// associativity over Sets/M sets.
	if log2(c.Banks) > c.Geometry.IndexBits() {
		return fmt.Errorf("core: %d banks need %d index bits, cache has %d",
			c.Banks, log2(c.Banks), c.Geometry.IndexBits())
	}
	if err := c.Tech.Validate(); err != nil {
		return err
	}
	switch c.Policy {
	case index.KindIdentity, index.KindProbing, index.KindScrambling:
	default:
		return fmt.Errorf("core: unknown policy %q", c.Policy)
	}
	return nil
}

func log2(m int) int {
	p := 0
	for ; m > 1; m >>= 1 {
		p++
	}
	return p
}

// PartitionedCache is a live simulation instance. Not safe for concurrent
// use; run one per goroutine.
type PartitionedCache struct {
	cfg       Config
	policy    index.Policy
	banks     []*cache.Cache
	encoder   *hw.OneHotEncoder
	regionPMU *pmu.PMU // keyed by logical region (pre-f); feeds aging projection
	bankPMU   *pmu.PMU // keyed by physical bank (post-f); feeds energy accounting
	breakeven uint64
	width     int

	regionShift uint
	regionMask  uint64

	reads, writes uint64
	updates       uint64
	accessCount   uint64
	finished      bool
	span          uint64
}

// New builds a partitioned cache from the configuration.
func New(cfg Config) (*PartitionedCache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalised()
	var pol index.Policy
	var err error
	switch cfg.Policy {
	case index.KindScrambling:
		pol, err = index.NewScrambling(cfg.Banks, index.DefaultLFSRWidth, cfg.LFSRSeed)
	default:
		pol, err = index.New(cfg.Policy, cfg.Banks)
	}
	if err != nil {
		return nil, err
	}
	p := log2(cfg.Banks)
	enc, err := hw.NewOneHotEncoder(p)
	if err != nil {
		return nil, err
	}
	be := cfg.BreakevenOverride
	if be == 0 {
		beF, err := cfg.Tech.BreakevenCycles(cfg.Geometry, cfg.Banks)
		if err != nil {
			return nil, err
		}
		be = uint64(beF)
		if be < 1 {
			be = 1
		}
	}
	regionPMU, err := pmu.New(cfg.Banks, be)
	if err != nil {
		return nil, err
	}
	bankPMU, err := pmu.New(cfg.Banks, be)
	if err != nil {
		return nil, err
	}
	bankGeom := cache.Geometry{
		Size:        cfg.Geometry.Size / uint64(cfg.Banks),
		LineSize:    cfg.Geometry.LineSize,
		Ways:        cfg.Geometry.Ways,
		AddressBits: cfg.Geometry.AddressBits,
	}
	banks := make([]*cache.Cache, cfg.Banks)
	for i := range banks {
		b, err := cache.New(bankGeom)
		if err != nil {
			return nil, err
		}
		banks[i] = b
	}
	return &PartitionedCache{
		cfg:         cfg,
		policy:      pol,
		banks:       banks,
		encoder:     enc,
		regionPMU:   regionPMU,
		bankPMU:     bankPMU,
		breakeven:   be,
		width:       power.CounterWidth(float64(be)),
		regionShift: uint(cfg.Geometry.IndexBits() - p),
		regionMask:  uint64(cfg.Banks - 1),
	}, nil
}

// Breakeven returns the Block Control threshold in cycles.
func (pc *PartitionedCache) Breakeven() uint64 { return pc.breakeven }

// CounterWidth returns the Block Control counter width in bits (the
// paper's "5- or 6-bit counters suffice").
func (pc *PartitionedCache) CounterWidth() int { return pc.width }

// Policy exposes the active indexing policy.
func (pc *PartitionedCache) Policy() index.Policy { return pc.policy }

// Region returns the logical region (p MSBs of the index) of addr.
func (pc *PartitionedCache) Region(addr uint64) uint {
	return uint((pc.cfg.Geometry.Index(addr) >> pc.regionShift) & pc.regionMask)
}

// Access simulates one reference. It returns whether it hit and which
// physical bank served it.
func (pc *PartitionedCache) Access(cycle, addr uint64, kind trace.Kind) (hit bool, bank uint, err error) {
	if pc.finished {
		return false, 0, fmt.Errorf("core: access after Finish")
	}
	region := pc.Region(addr)
	bank = pc.policy.Map(region)
	// The 1-hot encoder is the real datapath (Fig. 1b); Encode panics on
	// out-of-range banks, enforcing the policy bijection at runtime.
	pc.encoder.Encode(bank)
	if err := pc.regionPMU.Access(int(region), cycle); err != nil {
		return false, 0, err
	}
	if err := pc.bankPMU.Access(int(bank), cycle); err != nil {
		return false, 0, err
	}
	hit = pc.banks[bank].Access(addr)
	if kind == trace.Write {
		pc.writes++
	} else {
		pc.reads++
	}
	pc.accessCount++
	if pc.cfg.UpdateEvery > 0 && pc.accessCount%pc.cfg.UpdateEvery == 0 {
		pc.Update()
	}
	return hit, bank, nil
}

// Update fires the re-indexing update: f() advances and the entire cache
// is flushed ("every time the indexing is updated ... a cache flush is
// required").
func (pc *PartitionedCache) Update() {
	pc.policy.Update()
	for _, b := range pc.banks {
		b.Flush()
	}
	pc.updates++
}

// Finish closes the simulation at endCycle (normally the trace span).
func (pc *PartitionedCache) Finish(endCycle uint64) error {
	if pc.finished {
		return fmt.Errorf("core: Finish called twice")
	}
	if err := pc.regionPMU.Finish(endCycle); err != nil {
		return err
	}
	if err := pc.bankPMU.Finish(endCycle); err != nil {
		return err
	}
	pc.span = endCycle
	pc.finished = true
	return nil
}

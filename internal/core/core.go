// Package core implements the paper's contribution: the M-block uniformly
// partitioned cache with coarse-grain dynamic indexing (Figs. 1-3). It
// composes the substrates — decoder hardware models (internal/hw), the
// time-varying indexing policies (internal/index), per-bank tag stores
// (internal/cache), the breakeven power-management unit (internal/pmu)
// and the energy model (internal/power) — into a trace-driven simulator,
// and projects the measured idleness into multi-year bank lifetimes
// through the aging characterisation (internal/aging).
//
// Structure of a simulated access (Fig. 1b / Fig. 2):
//
//	index  = (addr / lineSize) mod 2^n
//	region = index >> (n-p)            // p MSBs
//	line   = index & (2^(n-p) - 1)     // routed to every bank
//	bank   = f(region)                 // f() = Identity/Probing/Scrambling
//	1-hot select activates the bank; Block Control counters track
//	idleness and drop idle banks to Vdd,low after the breakeven time.
//
// An `update` event re-parameterises f() and flushes the cache, exactly
// as §III-A3 prescribes.
package core

import (
	"errors"
	"fmt"

	"nbticache/internal/cache"
	"nbticache/internal/hw"
	"nbticache/internal/index"
	"nbticache/internal/pmu"
	"nbticache/internal/power"
	"nbticache/internal/trace"
)

// ErrFinished is returned for any access simulated after Finish. The
// batched kernel checks it once per batch and returns the bare sentinel;
// errors.Is matches it wherever Run wraps it with trace context.
var ErrFinished = errors.New("core: access after Finish")

// Config assembles a partitioned cache.
type Config struct {
	// Geometry is the overall cache organisation (the paper uses
	// direct-mapped; Ways=1).
	Geometry cache.Geometry
	// Banks is M, a power of two in [2, 256].
	Banks int
	// Policy selects the dynamic-indexing function f().
	Policy index.Kind
	// Tech is the energy model; zero value means power.DefaultTech().
	Tech power.Tech
	// BreakevenOverride forces the Block Control threshold (cycles);
	// 0 derives it from the energy model.
	BreakevenOverride uint64
	// UpdateEvery fires a re-indexing update (and cache flush) every
	// that many accesses during trace simulation; 0 disables in-trace
	// updates (the realistic setting: updates are ~daily, far apart
	// relative to any trace).
	UpdateEvery uint64
	// LFSRSeed seeds the Scrambling policy (ignored otherwise);
	// 0 means 1.
	LFSRSeed uint
}

// normalised fills defaults.
func (c Config) normalised() Config {
	if c.Tech == (power.Tech{}) {
		c.Tech = power.DefaultTech()
	}
	if c.LFSRSeed == 0 {
		c.LFSRSeed = 1
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	c = c.normalised()
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.Banks < 2 || c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("core: bank count %d is not a power of two >= 2", c.Banks)
	}
	// The paper's architecture is direct-mapped; set-associative
	// organisations are supported as an extension — the p MSBs of the
	// set index select the bank, and each bank keeps the original
	// associativity over Sets/M sets.
	if log2(c.Banks) > c.Geometry.IndexBits() {
		return fmt.Errorf("core: %d banks need %d index bits, cache has %d",
			c.Banks, log2(c.Banks), c.Geometry.IndexBits())
	}
	if err := c.Tech.Validate(); err != nil {
		return err
	}
	switch c.Policy {
	case index.KindIdentity, index.KindProbing, index.KindScrambling:
	default:
		return fmt.Errorf("core: unknown policy %q", c.Policy)
	}
	return nil
}

func log2(m int) int {
	p := 0
	for ; m > 1; m >>= 1 {
		p++
	}
	return p
}

// PartitionedCache is a live simulation instance. Not safe for concurrent
// use; run one per goroutine.
type PartitionedCache struct {
	cfg       Config
	policy    index.Policy
	banks     []*cache.Cache
	encoder   *hw.OneHotEncoder
	regionPMU *pmu.PMU // keyed by logical region (pre-f); feeds aging projection
	bankPMU   *pmu.PMU // keyed by physical bank (post-f); feeds energy accounting
	breakeven uint64
	width     int

	// regionShift is the total right shift from a byte address to the
	// region bits (offset + line-index bits); regionMask is M-1. Both
	// are fixed by the geometry, so the batch kernel decodes a region
	// with one shift and one mask.
	regionShift uint
	regionMask  uint64
	// bankTable materialises f() for the current epoch: bankTable[r] is
	// the physical bank hosting region r. The policy's Map is an
	// interface call, so the kernel pays it M times per update instead
	// of once per access; rebuildBankTable re-derives the table (and
	// re-checks the policy's range contract through the 1-hot encoder)
	// after every Update.
	bankTable []int32
	// untilUpdate counts accesses remaining until the next in-trace
	// re-indexing update fires; meaningful only when cfg.UpdateEvery > 0.
	// The former per-access `count % UpdateEvery` is now a subtraction
	// per batch segment.
	untilUpdate uint64

	// Fused-path state, present when every bank is direct-mapped (the
	// paper's organisation): each bank's flattened tag-word array and
	// the shared address splits, captured once at New from the cache's
	// Direct views. The fused kernel decodes, accounts both PMUs, and
	// probes the tag store in one walk over the batch columns, with no
	// intermediate region/bank/scatter buffers at all.
	fusable    bool
	directTags [][]uint64
	dOff, dIdx uint
	dIdxMask   uint64
	dTagMask   uint64
	// forceGeneral disables the fused path (differential-test hook: the
	// general scatter path and the fused walk must agree bit for bit).
	forceGeneral bool

	// Batch scratch, reused across AccessBatch calls: decoded regions
	// and banks for the PMU feeds, and the flat per-bank address scatter
	// for the cache sub-batches — the general path's working set (the
	// fused path needs none of it). RunBuffered and RunColumns lend a
	// pooled Batch's columns here so engine-driven simulations allocate
	// none of it.
	regionBuf  []int32
	bankBuf    []int32
	scatterBuf []uint64
	bankCount  []int32  // per-bank access count within one segment
	bankPos    []int32  // per-bank scatter cursor within one segment
	bankHits   []uint64 // fused path: per-bank hits within one call
	// one-element buffers backing the scalar Access wrapper.
	s1cycle, s1addr [1]uint64
	s1kind          [1]trace.Kind

	reads, writes uint64
	updates       uint64
	finished      bool
	span          uint64
}

// New builds a partitioned cache from the configuration.
func New(cfg Config) (*PartitionedCache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalised()
	var pol index.Policy
	var err error
	switch cfg.Policy {
	case index.KindScrambling:
		pol, err = index.NewScrambling(cfg.Banks, index.DefaultLFSRWidth, cfg.LFSRSeed)
	default:
		pol, err = index.New(cfg.Policy, cfg.Banks)
	}
	if err != nil {
		return nil, err
	}
	p := log2(cfg.Banks)
	enc, err := hw.NewOneHotEncoder(p)
	if err != nil {
		return nil, err
	}
	be := cfg.BreakevenOverride
	if be == 0 {
		beF, err := cfg.Tech.BreakevenCycles(cfg.Geometry, cfg.Banks)
		if err != nil {
			return nil, err
		}
		be = uint64(beF)
		if be < 1 {
			be = 1
		}
	}
	regionPMU, err := pmu.New(cfg.Banks, be)
	if err != nil {
		return nil, err
	}
	bankPMU, err := pmu.New(cfg.Banks, be)
	if err != nil {
		return nil, err
	}
	bankGeom := cache.Geometry{
		Size:        cfg.Geometry.Size / uint64(cfg.Banks),
		LineSize:    cfg.Geometry.LineSize,
		Ways:        cfg.Geometry.Ways,
		AddressBits: cfg.Geometry.AddressBits,
	}
	banks := make([]*cache.Cache, cfg.Banks)
	for i := range banks {
		b, err := cache.New(bankGeom)
		if err != nil {
			return nil, err
		}
		banks[i] = b
	}
	pc := &PartitionedCache{
		cfg:         cfg,
		policy:      pol,
		banks:       banks,
		encoder:     enc,
		regionPMU:   regionPMU,
		bankPMU:     bankPMU,
		breakeven:   be,
		width:       power.CounterWidth(float64(be)),
		regionShift: uint(cfg.Geometry.OffsetBits() + cfg.Geometry.IndexBits() - p),
		regionMask:  uint64(cfg.Banks - 1),
		bankTable:   make([]int32, cfg.Banks),
		bankCount:   make([]int32, cfg.Banks),
		bankPos:     make([]int32, cfg.Banks),
		bankHits:    make([]uint64, cfg.Banks),
		untilUpdate: cfg.UpdateEvery,
	}
	if dt, ok := banks[0].Direct(); ok {
		// All banks share one geometry, so the splits come from bank 0
		// and only the tag arrays are per-bank. The views alias each
		// bank's live store: Update's flush clears them in place.
		pc.directTags = make([][]uint64, cfg.Banks)
		for i, b := range banks {
			v, _ := b.Direct()
			pc.directTags[i] = v.Tags
		}
		pc.dOff, pc.dIdx = dt.OffBits, dt.IdxBits
		pc.dIdxMask, pc.dTagMask = dt.IdxMask, dt.TagMask
		pc.fusable = true
	}
	pc.rebuildBankTable()
	return pc, nil
}

// rebuildBankTable re-derives the region->bank table from the policy.
// Each mapping still passes through the 1-hot encoder — the real
// datapath of Fig. 1b, whose Encode panics on an out-of-range bank — so
// the policy's range contract is enforced exactly once per epoch instead
// of once per access.
func (pc *PartitionedCache) rebuildBankTable() {
	for r := range pc.bankTable {
		b := pc.policy.Map(uint(r))
		pc.encoder.Encode(b)
		pc.bankTable[r] = int32(b)
	}
}

// Breakeven returns the Block Control threshold in cycles.
func (pc *PartitionedCache) Breakeven() uint64 { return pc.breakeven }

// CounterWidth returns the Block Control counter width in bits (the
// paper's "5- or 6-bit counters suffice").
func (pc *PartitionedCache) CounterWidth() int { return pc.width }

// Policy exposes the active indexing policy.
func (pc *PartitionedCache) Policy() index.Policy { return pc.policy }

// Region returns the logical region (p MSBs of the index) of addr.
func (pc *PartitionedCache) Region(addr uint64) uint {
	return uint((addr >> pc.regionShift) & pc.regionMask)
}

// Access simulates one reference. It returns whether it hit and which
// physical bank served it. It is a thin wrapper over a one-element
// AccessBatch, so the scalar and batched kernels cannot diverge.
func (pc *PartitionedCache) Access(cycle, addr uint64, kind trace.Kind) (hit bool, bank uint, err error) {
	if pc.finished {
		return false, 0, ErrFinished
	}
	// The bank is resolved before the batch runs: an UpdateEvery
	// boundary fires after the triggering access, so the pre-update
	// mapping is the one that served it.
	b := pc.bankTable[pc.Region(addr)]
	pc.s1cycle[0], pc.s1addr[0], pc.s1kind[0] = cycle, addr, kind
	hits, err := pc.AccessBatch(pc.s1cycle[:], pc.s1addr[:], pc.s1kind[:])
	if err != nil {
		return false, 0, err
	}
	return hits == 1, uint(b), nil
}

// AccessBatch simulates len(addrs) references in trace order and returns
// how many hit. It is the simulation kernel: validation runs once per
// batch (Finish state, slice lengths) or once per element as a bare
// predictable branch (cycle order), the region/bank decode is a shift,
// a mask and a table load, the per-bank cache lookups run as per-bank
// sub-batches, the two PMUs consume the decoded region/bank runs through
// their own batch entry points, and the read/write counters accumulate
// in locals with a single flush to the struct fields.
//
// A batch that crosses one or more UpdateEvery boundaries is split into
// segments at each boundary so the re-indexing update (and its cache
// flush and bank-table rebuild) fires between exactly the same two
// accesses as under the scalar API.
//
// On error, every access before the offending element has been applied
// and counted; the offending element and its successors have not. The
// error wraps a pmu sentinel (pmu.ErrUnordered for cycle-order
// violations) or is ErrFinished.
func (pc *PartitionedCache) AccessBatch(cycles, addrs []uint64, kinds []trace.Kind) (hits uint64, err error) {
	hits, _, err = pc.accessBatch(cycles, addrs, kinds)
	return hits, err
}

// accessBatch additionally reports how many accesses were applied, so
// Run can name the exact offending access in its error.
//
// Two interchangeable kernels implement it. The fused kernel (the
// paper's direct-mapped organisation, no PMU histograms) performs the
// region/bank decode, both PMUs' interval accounting, and the tag-store
// probe in ONE walk over the batch columns — no region/bank buffers, no
// scatter, no second or third pass over the cycle column. The general
// kernel (set-associative banks, or idle histograms enabled) keeps the
// decode + counting-scatter + per-bank sub-batch structure, with the
// two PMU feeds fused into a single paired walk. A differential oracle
// pins the two bit-identical.
func (pc *PartitionedCache) accessBatch(cycles, addrs []uint64, kinds []trace.Kind) (hits uint64, applied int, err error) {
	if pc.finished {
		return 0, 0, ErrFinished
	}
	n := len(addrs)
	if len(cycles) != n || len(kinds) != n {
		return 0, 0, fmt.Errorf("core: batch length mismatch: %d cycles, %d addrs, %d kinds",
			len(cycles), n, len(kinds))
	}
	if n == 0 {
		return 0, 0, nil
	}
	if pc.fusable && !pc.forceGeneral {
		rf, rok := pc.regionPMU.BatchFeed()
		bf, bok := pc.bankPMU.BatchFeed()
		if rok && bok {
			return pc.accessBatchFused(cycles, addrs, kinds, rf, bf)
		}
	}
	return pc.accessBatchGeneral(cycles, addrs, kinds)
}

// accessBatchFused is the single-pass kernel: decode, dual PMU interval
// accounting and direct-mapped tag probe per element, counters in
// locals, one flush at the end. Segmentation at UpdateEvery boundaries
// and partial application on a cycle-order violation are identical to
// the general kernel.
func (pc *PartitionedCache) accessBatchFused(cycles, addrs []uint64, kinds []trace.Kind, rf, bf pmu.Feed) (hits uint64, applied int, err error) {
	n := len(addrs)
	shift, mask, table := pc.regionShift, pc.regionMask, pc.bankTable
	off, ib := pc.dOff, pc.dIdx
	im, tm := pc.dIdxMask, pc.dTagMask
	tags := pc.directTags
	counts, bankHits := pc.bankCount, pc.bankHits
	// Both PMUs carry the same Block Control threshold and, fed in
	// lockstep, the same cursor.
	be := rf.Breakeven
	rl, ru, rs, ri, ra := rf.Last, rf.Useful, rf.Sleep, rf.Intervals, rf.Accesses
	bl, bu, bs, bi, ba := bf.Last, bf.Useful, bf.Sleep, bf.Intervals, bf.Accesses
	var reads, writes uint64
	prev := rf.Cursor
	i := 0
	for i < n {
		// Segment up to the next re-indexing boundary.
		end := n
		if pc.cfg.UpdateEvery > 0 && uint64(end-i) > pc.untilUpdate {
			end = i + int(pc.untilUpdate)
		}
		j := i
		var unordered bool
		var badCycle uint64
		for ; j < end; j++ {
			c := cycles[j]
			if c < prev {
				unordered, badCycle = true, c
				break
			}
			prev = c
			a := addrs[j]
			r := (a >> shift) & mask
			b := table[r]
			// Region PMU: close a >breakeven idle gap, stamp, count.
			if s := rl[r]; c > s {
				if gap := c - s; gap > be {
					ru[r] += gap
					rs[r] += gap - be
					ri[r]++
				}
			}
			rl[r] = c
			ra[r]++
			// Bank PMU, same accounting keyed by the physical bank.
			if s := bl[b]; c > s {
				if gap := c - s; gap > be {
					bu[b] += gap
					bs[b] += gap - be
					bi[b]++
				}
			}
			bl[b] = c
			ba[b]++
			// Direct-mapped probe: one load, one compare, fill on miss.
			la := a >> off
			word := ((la>>ib)&tm)<<1 | 1
			t := tags[b]
			if set := la & im; t[set] == word {
				hits++
				bankHits[b]++
			} else {
				t[set] = word
			}
			counts[b]++
			if kinds[j] == trace.Write {
				writes++
			} else {
				reads++
			}
		}
		if unordered && err == nil {
			err = fmt.Errorf("%w: access at cycle %d after cycle %d", pmu.ErrUnordered, badCycle, prev)
		}
		// The update countdown covers the accesses that were applied,
		// even on a partial segment, so an error leaves the same state a
		// scalar call sequence would have.
		if pc.cfg.UpdateEvery > 0 {
			pc.untilUpdate -= uint64(j - i)
			if pc.untilUpdate == 0 {
				pc.Update()
			}
		}
		i = j
		if err != nil {
			break
		}
	}
	// One flush: local tallies to the struct fields, the walk's cursor
	// to both PMUs, per-bank lookups to the cache stats.
	pc.reads += reads
	pc.writes += writes
	pc.regionPMU.EndFeed(prev)
	pc.bankPMU.EndFeed(prev)
	for b, cnt := range counts {
		if cnt > 0 {
			pc.banks[b].AddBatchStats(bankHits[b], uint64(cnt)-bankHits[b])
			counts[b], bankHits[b] = 0, 0
		}
	}
	return hits, i, err
}

// accessBatchGeneral is the scatter kernel: decode pass, stable
// counting scatter into per-bank sub-batches, paired PMU walk.
func (pc *PartitionedCache) accessBatchGeneral(cycles, addrs []uint64, kinds []trace.Kind) (hits uint64, applied int, err error) {
	n := len(addrs)
	if cap(pc.regionBuf) < n {
		pc.regionBuf = make([]int32, n)
		pc.bankBuf = make([]int32, n)
		pc.scatterBuf = make([]uint64, n)
	}
	regionBuf, bankBuf := pc.regionBuf[:n], pc.bankBuf[:n]
	scatter := pc.scatterBuf[:n]
	shift, mask, table := pc.regionShift, pc.regionMask, pc.bankTable
	var reads, writes uint64
	prev := pc.regionPMU.Cursor()
	i := 0
	for i < n {
		// Segment up to the next re-indexing boundary.
		end := n
		if pc.cfg.UpdateEvery > 0 && uint64(end-i) > pc.untilUpdate {
			end = i + int(pc.untilUpdate)
		}
		// Decode regions and banks and count kinds and per-bank runs.
		// Stops early at a cycle-order violation so the offending access
		// is not applied anywhere.
		counts := pc.bankCount
		j := i
		var unordered bool
		var badCycle uint64
		for ; j < end; j++ {
			c := cycles[j]
			if c < prev {
				unordered, badCycle = true, c
				break
			}
			prev = c
			r := int32((addrs[j] >> shift) & mask)
			regionBuf[j] = r
			b := table[r]
			bankBuf[j] = b
			counts[b]++
			if kinds[j] == trace.Write {
				writes++
			} else {
				reads++
			}
		}
		// Stable counting scatter: group the segment's addresses by bank
		// in one flat buffer, then run each bank's sub-batch through the
		// cache's batch entry point.
		pos := pc.bankPos
		off := int32(0)
		for b, cnt := range counts {
			pos[b] = off
			off += cnt
		}
		for k := i; k < j; k++ {
			b := bankBuf[k]
			scatter[pos[b]] = addrs[k]
			pos[b]++
		}
		start := int32(0)
		for b, cnt := range counts {
			if cnt > 0 {
				hits += pc.banks[b].AccessBatch(scatter[start : start+cnt])
				counts[b] = 0
			}
			start += cnt
		}
		// One paired walk feeds both PMUs from the decoded keys.
		err = pmu.AccessBatchPair(pc.regionPMU, pc.bankPMU, regionBuf[i:j], bankBuf[i:j], cycles[i:j])
		if err == nil && unordered {
			err = fmt.Errorf("%w: access at cycle %d after cycle %d", pmu.ErrUnordered, badCycle, prev)
		}
		// The update countdown covers the accesses that were applied,
		// even on a partial segment, so an error leaves the same state a
		// scalar call sequence would have.
		if pc.cfg.UpdateEvery > 0 {
			pc.untilUpdate -= uint64(j - i)
			if pc.untilUpdate == 0 {
				pc.Update()
			}
		}
		i = j
		if err != nil {
			break
		}
	}
	pc.reads += reads
	pc.writes += writes
	return hits, i, err
}

// Update fires the re-indexing update: f() advances and the entire cache
// is flushed ("every time the indexing is updated ... a cache flush is
// required"). The region->bank table is re-derived for the new epoch and
// the UpdateEvery countdown restarts, so the next in-trace update fires
// UpdateEvery accesses after this one.
func (pc *PartitionedCache) Update() {
	pc.policy.Update()
	for _, b := range pc.banks {
		b.Flush()
	}
	pc.updates++
	pc.rebuildBankTable()
	pc.untilUpdate = pc.cfg.UpdateEvery
}

// Finish closes the simulation at endCycle (normally the trace span).
func (pc *PartitionedCache) Finish(endCycle uint64) error {
	if pc.finished {
		return fmt.Errorf("core: Finish called twice")
	}
	if err := pc.regionPMU.Finish(endCycle); err != nil {
		return err
	}
	if err := pc.bankPMU.Finish(endCycle); err != nil {
		return err
	}
	pc.span = endCycle
	pc.finished = true
	return nil
}

package core

import (
	"math"
	"sync"
	"testing"

	"nbticache/internal/aging"
	"nbticache/internal/cache"
	"nbticache/internal/index"
	"nbticache/internal/power"
	"nbticache/internal/trace"
	"nbticache/internal/workload"
)

func geom(sizeKB int, lineB uint64) cache.Geometry {
	return cache.Geometry{Size: uint64(sizeKB) * 1024, LineSize: lineB, Ways: 1, AddressBits: 32}
}

func testConfig() Config {
	return Config{Geometry: geom(16, 16), Banks: 4, Policy: index.KindIdentity}
}

func smallTrace(t *testing.T, name string) *trace.Trace {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	tr, err := p.Generate(workload.GenParams{
		Geometry: geom(16, 16), Phases: 96, AccessesPerPhase: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

var (
	agingOnce  sync.Once
	agingModel *aging.Model
	agingErr   error
)

func sharedAging(t *testing.T) *aging.Model {
	t.Helper()
	agingOnce.Do(func() {
		agingModel, agingErr = aging.New(aging.DefaultConfig())
	})
	if agingErr != nil {
		t.Fatal(agingErr)
	}
	return agingModel
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Geometry.Size = 100 },
		func(c *Config) { c.Geometry.Ways = 3 },
		func(c *Config) { c.Banks = 0 },
		func(c *Config) { c.Banks = 3 },
		func(c *Config) { c.Banks = 1 },
		func(c *Config) { c.Policy = "bogus" },
		func(c *Config) { c.Geometry.Ways = c.Geometry.Lines() / 2; c.Banks = 8 }, // index bits < p
	}
	for i, mutate := range cases {
		cfg := testConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted bad config", i)
		}
	}
}

func TestBreakevenDerivedAndOverride(t *testing.T) {
	pc, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if be := pc.Breakeven(); be < 20 || be > 63 {
		t.Errorf("derived breakeven %d outside paper band", be)
	}
	if w := pc.CounterWidth(); w < 5 || w > 6 {
		t.Errorf("counter width %d, want 5-6", w)
	}
	cfg := testConfig()
	cfg.BreakevenOverride = 17
	pc, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Breakeven() != 17 {
		t.Errorf("override ignored: %d", pc.Breakeven())
	}
}

func TestRegionDecode(t *testing.T) {
	pc, err := New(testConfig()) // 16kB, 1024 lines, 4 banks, 256 lines/bank
	if err != nil {
		t.Fatal(err)
	}
	// Line 0 -> region 0; line 256 -> region 1; line 1023 -> region 3.
	cases := []struct {
		line uint64
		want uint
	}{
		{0, 0}, {255, 0}, {256, 1}, {511, 1}, {512, 2}, {1023, 3},
		{1024, 0}, // wraps with the index
	}
	for _, c := range cases {
		if got := pc.Region(c.line * 16); got != c.want {
			t.Errorf("Region(line %d) = %d, want %d", c.line, got, c.want)
		}
	}
}

// TestMissEquivalenceIdentity verifies §III's third advantage: "no
// degradation of miss rate is experienced" — a partitioned cache with any
// fixed bijective mapping has exactly the monolithic hit/miss behaviour.
func TestMissEquivalenceIdentity(t *testing.T) {
	tr := smallTrace(t, "cjpeg")
	for _, kind := range []index.Kind{index.KindIdentity, index.KindProbing, index.KindScrambling} {
		cfg := testConfig()
		cfg.Policy = kind
		pc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pc.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		mono, err := RunMonolithic(cfg.Geometry, cfg.Tech, tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hits != mono.Hits || res.Misses != mono.Misses {
			t.Errorf("%s: hits/misses %d/%d != monolithic %d/%d",
				kind, res.Hits, res.Misses, mono.Hits, mono.Misses)
		}
	}
}

// TestEnergyPolicyIndependent verifies §IV-B1's premise that "the energy
// savings are independent of the re-indexing strategy": with no in-trace
// updates, every policy produces the identical energy breakdown (the
// physical banks see permuted but statistically identical streams; for a
// single epoch the permutation is exact).
func TestEnergyPolicyIndependent(t *testing.T) {
	tr := smallTrace(t, "say")
	var first *RunResult
	for _, kind := range []index.Kind{index.KindIdentity, index.KindProbing, index.KindScrambling} {
		cfg := testConfig()
		cfg.Policy = kind
		pc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pc.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		if res.Energy != first.Energy {
			t.Errorf("%s energy %+v differs from identity %+v", kind, res.Energy, first.Energy)
		}
		if res.Savings != first.Savings {
			t.Errorf("%s savings %v differs from identity %v", kind, res.Savings, first.Savings)
		}
	}
}

// TestSetAssociativeExtension verifies the set-associative extension:
// hit/miss behaviour still matches the monolithic cache of the same
// associativity for every bijective mapping, and the simulator accepts
// ways up to 4.
func TestSetAssociativeExtension(t *testing.T) {
	tr := smallTrace(t, "dijkstra")
	for _, ways := range []int{2, 4} {
		g := geom(16, 16)
		g.Ways = ways
		cfg := Config{Geometry: g, Banks: 4, Policy: index.KindProbing}
		pc, err := New(cfg)
		if err != nil {
			t.Fatalf("ways=%d: %v", ways, err)
		}
		res, err := pc.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		mono, err := RunMonolithic(g, power.Tech{}, tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hits != mono.Hits || res.Misses != mono.Misses {
			t.Errorf("ways=%d: partitioned %d/%d vs monolithic %d/%d",
				ways, res.Hits, res.Misses, mono.Hits, mono.Misses)
		}
		// Associativity reduces conflict misses relative to
		// direct-mapped on a pointer-chasing workload.
		dm, err := RunMonolithic(geom(16, 16), power.Tech{}, tr)
		if err != nil {
			t.Fatal(err)
		}
		if mono.Misses > dm.Misses {
			t.Errorf("ways=%d has more misses (%d) than direct-mapped (%d)",
				ways, mono.Misses, dm.Misses)
		}
	}
}

// TestUpdatesCostOnlyRefills verifies that in-trace updates add only the
// compulsory refill misses of the flushes, never extra steady-state
// conflicts.
func TestUpdatesCostOnlyRefills(t *testing.T) {
	tr := smallTrace(t, "CRC32")
	base := testConfig()
	base.Policy = index.KindProbing
	pc0, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	res0, err := pc0.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	withUpdates := base
	withUpdates.UpdateEvery = uint64(tr.Len() / 8)
	pc1, err := New(withUpdates)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := pc1.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Updates < 7 {
		t.Fatalf("expected ~8 updates, got %d", res1.Updates)
	}
	if res1.Misses <= res0.Misses {
		t.Errorf("flushes added no misses: %d vs %d", res1.Misses, res0.Misses)
	}
	// Each flush can at most cost the touched working set again; with 8
	// flushes of a 1024-line cache, the extra misses are bounded.
	extra := res1.Misses - res0.Misses
	if extra > uint64(res1.Updates)*1024 {
		t.Errorf("flush misses %d exceed %d flushed lines", extra, res1.Updates*1024)
	}
}

func TestRunResultAccounting(t *testing.T) {
	tr := smallTrace(t, "sha")
	pc, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := pc.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads+res.Writes != uint64(tr.Len()) {
		t.Errorf("reads+writes = %d, want %d", res.Reads+res.Writes, tr.Len())
	}
	if res.Hits+res.Misses != uint64(tr.Len()) {
		t.Errorf("hits+misses = %d, want %d", res.Hits+res.Misses, tr.Len())
	}
	if res.SpanCycles != tr.Cycles {
		t.Errorf("span = %d, want %d", res.SpanCycles, tr.Cycles)
	}
	if len(res.RegionStats) != 4 || len(res.BankStats) != 4 {
		t.Fatal("wrong stat vector lengths")
	}
	if res.HitRate() <= 0.5 {
		t.Errorf("implausible hit rate %v for a cache-resident workload", res.HitRate())
	}
	if res.Energy.Total() <= 0 || res.Baseline.Total() <= 0 {
		t.Error("missing energy")
	}
	if res.Savings <= 0 || res.Savings >= 1 {
		t.Errorf("savings %v outside (0,1)", res.Savings)
	}
	if res.Name != "sha" || res.PolicyName != "identity" || res.Banks != 4 {
		t.Error("metadata wrong")
	}
	if got := res.AverageIdleness(); got <= 0 || got >= 1 {
		t.Errorf("average idleness %v", got)
	}
}

// TestIdentityBankEqualsRegionStats: with the identity mapping the
// physical-bank and logical-region views must agree exactly.
func TestIdentityBankEqualsRegionStats(t *testing.T) {
	tr := smallTrace(t, "gsmd")
	pc, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := pc.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	for b := range res.BankStats {
		if res.BankStats[b] != res.RegionStats[b] {
			t.Errorf("bank %d stats diverge from region stats under identity", b)
		}
	}
}

// TestInTraceUpdatesUniformiseBankIdleness: with frequent probing updates
// the physical banks see a mixed stream, so their idleness spread
// narrows relative to the logical regions — the mechanism of §III-A2
// observable within a single trace.
func TestInTraceUpdatesUniformiseBankIdleness(t *testing.T) {
	tr := smallTrace(t, "adpcm.dec") // most skewed signature
	cfg := testConfig()
	cfg.Policy = index.KindProbing
	cfg.UpdateEvery = uint64(tr.Len() / 16)
	pc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pc.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	regionIdle := res.RegionUsefulIdleness()
	bankIdle := make([]float64, len(res.BankStats))
	for i, s := range res.BankStats {
		bankIdle[i] = s.UsefulIdleness
	}
	if imbalance(bankIdle) >= imbalance(regionIdle) {
		t.Errorf("updates did not narrow idleness spread: banks %v vs regions %v",
			bankIdle, regionIdle)
	}
}

func imbalance(xs []float64) float64 {
	lo, hi, sum := math.Inf(1), math.Inf(-1), 0.0
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
		sum += x
	}
	if sum == 0 {
		return 0
	}
	return (hi - lo) / (sum / float64(len(xs)))
}

func TestAccessAfterFinishRejected(t *testing.T) {
	pc, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pc.Access(0, 0x40, trace.Read); err != nil {
		t.Fatal(err)
	}
	if err := pc.Finish(100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := pc.Access(101, 0x40, trace.Read); err == nil {
		t.Error("access after Finish accepted")
	}
	if err := pc.Finish(200); err == nil {
		t.Error("double Finish accepted")
	}
}

func TestResultBeforeFinishRejected(t *testing.T) {
	pc, _ := New(testConfig())
	if _, err := pc.Result("x", 0); err == nil {
		t.Error("Result before Finish accepted")
	}
}

func TestRunRejectsBadTraces(t *testing.T) {
	pc, _ := New(testConfig())
	if _, err := pc.Run(&trace.Trace{Name: "empty", Cycles: 10}); err == nil {
		t.Error("empty trace accepted")
	}
	bad := &trace.Trace{Accesses: []trace.Access{{Cycle: 5}, {Cycle: 1}}, Cycles: 10}
	if _, err := pc.Run(bad); err == nil {
		t.Error("unordered trace accepted")
	}
}

func TestRunMonolithic(t *testing.T) {
	tr := smallTrace(t, "lame")
	res, err := RunMonolithic(geom(16, 16), power.Tech{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits+res.Misses != uint64(tr.Len()) {
		t.Error("monolithic accounting broken")
	}
	if res.HitRate() <= 0 {
		t.Error("zero hit rate")
	}
	if res.Energy.Total() <= 0 {
		t.Error("no energy")
	}
	if res.Energy.SleepLeakage != 0 {
		t.Error("unmanaged baseline slept")
	}
	if _, err := RunMonolithic(cache.Geometry{}, power.Tech{}, tr); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestProjectAgingIdentityVsProbing(t *testing.T) {
	model := sharedAging(t)
	duties := []float64{0.02, 0.95, 0.95, 0.04} // adpcm-like skew
	id, err := ProjectAging(model, duties, index.KindIdentity, 64, aging.VoltageScaled)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := ProjectAging(model, duties, index.KindProbing, 64, aging.VoltageScaled)
	if err != nil {
		t.Fatal(err)
	}
	if id.PolicyName != "identity" || pr.PolicyName != "probing" {
		t.Error("policy names wrong")
	}
	// Identity: worst bank (2% sleep) pins the lifetime near the cell
	// anchor; probing averages to ~49% sleep.
	if id.LifetimeYears > 3.1 {
		t.Errorf("identity lifetime %v, want ~2.97", id.LifetimeYears)
	}
	want := 2.93 / (1 - 0.49*(1-model.SleepStressRatio()))
	if math.Abs(pr.LifetimeYears-want)/want > 0.02 {
		t.Errorf("probing lifetime %v, want ~%v", pr.LifetimeYears, want)
	}
	if pr.ShareError != 0 {
		t.Errorf("probing share error %v, want 0 at a multiple of M", pr.ShareError)
	}
	if pr.LifetimeYears <= id.LifetimeYears {
		t.Error("re-indexing did not extend lifetime")
	}
	if len(pr.BankDuty) != 4 || len(pr.BankLifetimeYears) != 4 {
		t.Error("vector lengths wrong")
	}
	if m := pr.MeanDuty(); math.Abs(m-0.49) > 1e-9 {
		t.Errorf("mean duty %v, want 0.49", m)
	}
}

func TestProjectAgingScramblingCloseToProbing(t *testing.T) {
	model := sharedAging(t)
	duties := []float64{0.1, 0.8, 0.6, 0.3}
	pr, err := ProjectAging(model, duties, index.KindProbing, 4096, aging.VoltageScaled)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ProjectAging(model, duties, index.KindScrambling, 4096, aging.VoltageScaled)
	if err != nil {
		t.Fatal(err)
	}
	// §IV-B2: "Probing and Scrambling provide de facto identical
	// results" once N is large.
	if rel := math.Abs(sc.LifetimeYears-pr.LifetimeYears) / pr.LifetimeYears; rel > 0.02 {
		t.Errorf("scrambling %v vs probing %v (%.2f%% apart)",
			sc.LifetimeYears, pr.LifetimeYears, rel*100)
	}
	if sc.ShareError <= 0 || sc.ShareError > 0.02 {
		t.Errorf("scrambling share error %v, want small but nonzero", sc.ShareError)
	}
}

func TestProjectAgingErrors(t *testing.T) {
	model := sharedAging(t)
	if _, err := ProjectAging(nil, []float64{0.1, 0.2}, index.KindProbing, 8, aging.VoltageScaled); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := ProjectAging(model, []float64{0.1}, index.KindProbing, 8, aging.VoltageScaled); err == nil {
		t.Error("single region accepted")
	}
	if _, err := ProjectAging(model, []float64{0.1, 2}, index.KindProbing, 8, aging.VoltageScaled); err == nil {
		t.Error("bad duty accepted")
	}
	if _, err := ProjectAging(model, []float64{0.1, 0.2}, index.KindProbing, 0, aging.VoltageScaled); err == nil {
		t.Error("0 epochs accepted")
	}
	if _, err := ProjectAging(model, []float64{0.1, 0.2, 0.3}, index.KindProbing, 8, aging.VoltageScaled); err == nil {
		t.Error("non-power-of-two region count accepted")
	}
}

func TestSummariseAging(t *testing.T) {
	model := sharedAging(t)
	tr := smallTrace(t, "sha")
	pc, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := pc.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := SummariseAging(model, res, index.KindProbing, 64, aging.VoltageScaled)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MonolithicYears != 2.93 {
		t.Errorf("monolithic = %v", sum.MonolithicYears)
	}
	// sha: two nearly-dead regions pin LT0 near the anchor; re-indexing
	// averages ~50% idleness for a big extension.
	if sum.LT0Years < 2.93 || sum.LT0Years > 3.3 {
		t.Errorf("LT0 = %v, want slightly above 2.93", sum.LT0Years)
	}
	if sum.LTYears < 4.0 {
		t.Errorf("LT = %v, want > 4 (paper: 4.48-6.09 for sha)", sum.LTYears)
	}
	if sum.LTExtension <= sum.LT0Extension {
		t.Error("re-indexing extension not larger")
	}
	if _, err := SummariseAging(model, res, index.KindIdentity, 64, aging.VoltageScaled); err == nil {
		t.Error("identity as re-indexing policy accepted")
	}
}

package core

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"nbticache/internal/aging"
	"nbticache/internal/cache"
	"nbticache/internal/index"
	"nbticache/internal/pmu"
	"nbticache/internal/trace"
)

// The differential oracle: the scalar wrapper (one-element batches, every
// boundary exercised at element granularity) and the chunked batch kernel
// must produce bit-identical RunResult and Projection values on the same
// trace — across policies, update cadences that do not align with batch
// sizes, and batch sizes from 1 up.

var (
	oracleModelOnce sync.Once
	oracleModel     *aging.Model
	oracleModelErr  error
)

func oracleAgingModel(t testing.TB) *aging.Model {
	t.Helper()
	oracleModelOnce.Do(func() {
		oracleModel, oracleModelErr = aging.New(aging.DefaultConfig())
	})
	if oracleModelErr != nil {
		t.Fatal(oracleModelErr)
	}
	return oracleModel
}

// oracleTrace builds a deterministic pseudo-random trace with clustered
// addresses (so hits occur), same-cycle runs, and occasional long idle
// gaps (so the PMUs cross the breakeven threshold).
func oracleTrace(seed int64, n int, g cache.Geometry) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{Name: "oracle"}
	cycle := uint64(rng.Intn(4))
	hot := uint64(rng.Intn(1 << 12))
	for i := 0; i < n; i++ {
		var addr uint64
		switch rng.Intn(8) {
		case 0: // random far address
			addr = uint64(rng.Int63()) & (1<<uint(g.AddressBits) - 1)
		case 1: // out of the declared width: uploaded traces are not bounded
			addr = uint64(rng.Uint64())
		default: // near the hot base: conflict and reuse traffic
			addr = hot + uint64(rng.Intn(1<<8))
		}
		if rng.Intn(64) == 0 {
			hot = uint64(rng.Intn(1 << 14))
		}
		kind := trace.Read
		if rng.Intn(3) == 0 {
			kind = trace.Write
		}
		tr.Accesses = append(tr.Accesses, trace.Access{Cycle: cycle, Addr: addr, Kind: kind})
		switch rng.Intn(8) {
		case 0: // long gap past any realistic breakeven
			cycle += uint64(1000 + rng.Intn(5000))
		case 1, 2: // same cycle (dual-issue)
		default:
			cycle += uint64(1 + rng.Intn(4))
		}
	}
	tr.Cycles = cycle + uint64(1+rng.Intn(2000))
	return tr
}

// runScalarOracle drives the trace through the scalar Access wrapper one
// reference at a time — exactly the pre-batch driving loop.
func runScalarOracle(t testing.TB, cfg Config, tr *trace.Trace) *RunResult {
	t.Helper()
	pc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var hits uint64
	for i := range tr.Accesses {
		a := &tr.Accesses[i]
		hit, bank, err := pc.Access(a.Cycle, a.Addr, a.Kind)
		if err != nil {
			t.Fatalf("scalar access %d: %v", i, err)
		}
		if int(bank) >= cfg.Banks {
			t.Fatalf("scalar access %d: bank %d out of range", i, bank)
		}
		if hit {
			hits++
		}
	}
	if err := pc.Finish(tr.Cycles); err != nil {
		t.Fatal(err)
	}
	res, err := pc.Result(tr.Name, hits)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func runBatchedOracle(t testing.TB, cfg Config, tr *trace.Trace, batchSize int) *RunResult {
	t.Helper()
	pc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pc.RunBuffered(tr, NewBatch(batchSize))
	if err != nil {
		t.Fatalf("batched run (batch %d): %v", batchSize, err)
	}
	return res
}

func requireIdentical(t *testing.T, label string, scalar, batched *RunResult) {
	t.Helper()
	if !reflect.DeepEqual(scalar, batched) {
		t.Fatalf("%s: scalar and batched results diverge:\nscalar:  %+v\nbatched: %+v", label, scalar, batched)
	}
}

func TestBatchScalarEquivalence(t *testing.T) {
	model := oracleAgingModel(t)
	g := cache.Geometry{Size: 16 * 1024, LineSize: 16, Ways: 1, AddressBits: 32}
	assoc := cache.Geometry{Size: 16 * 1024, LineSize: 16, Ways: 2, AddressBits: 32}
	// UpdateEvery values deliberately misaligned with every batch size,
	// including 1 (update after every access) and values straddling one
	// batch (100), several batches (4097) and the whole trace.
	updateEveries := []uint64{0, 1, 3, 7, 100, 1023, 4097}
	batchSizes := []int{1, 3, 64, 1000, 4096, 10000}
	seed := int64(0)
	for _, pol := range []index.Kind{index.KindIdentity, index.KindProbing, index.KindScrambling} {
		for _, banks := range []int{2, 8} {
			for _, ue := range updateEveries {
				geom := g
				if ue == 3 {
					geom = assoc // cover the set-associative extension too
				}
				cfg := Config{Geometry: geom, Banks: banks, Policy: pol, UpdateEvery: ue}
				seed++
				tr := oracleTrace(seed, 5000, geom)
				scalar := runScalarOracle(t, cfg, tr)
				for _, bs := range batchSizes {
					batched := runBatchedOracle(t, cfg, tr, bs)
					requireIdentical(t, string(cfg.Policy)+"/batch", scalar, batched)
				}
				// Projections from identical runs must be identical too.
				sp, err := ProjectAging(model, scalar.RegionSleepFractions(), pol, 64, aging.VoltageScaled)
				if err != nil {
					t.Fatal(err)
				}
				bp, err := ProjectAging(model, runBatchedOracle(t, cfg, tr, 512).RegionSleepFractions(), pol, 64, aging.VoltageScaled)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(sp, bp) {
					t.Fatalf("projections diverge:\nscalar:  %+v\nbatched: %+v", sp, bp)
				}
			}
		}
	}
}

// TestAccessBatchRandomSplits feeds the same trace through AccessBatch
// split at random points (zero-length sub-batches included) and through
// one whole-trace batch.
func TestAccessBatchRandomSplits(t *testing.T) {
	g := cache.Geometry{Size: 8 * 1024, LineSize: 16, Ways: 1, AddressBits: 32}
	cfg := Config{Geometry: g, Banks: 4, Policy: index.KindProbing, UpdateEvery: 37}
	tr := oracleTrace(99, 3000, g)
	n := tr.Len()
	cycles := make([]uint64, n)
	addrs := make([]uint64, n)
	kinds := make([]trace.Kind, n)
	for i, a := range tr.Accesses {
		cycles[i], addrs[i], kinds[i] = a.Cycle, a.Addr, a.Kind
	}

	whole, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantHits, err := whole.AccessBatch(cycles, addrs, kinds)
	if err != nil {
		t.Fatal(err)
	}
	if err := whole.Finish(tr.Cycles); err != nil {
		t.Fatal(err)
	}
	want, err := whole.Result(tr.Name, wantHits)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		pc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var hits uint64
		for i := 0; i <= n; {
			j := i + rng.Intn(n-i+1)
			h, err := pc.AccessBatch(cycles[i:j], addrs[i:j], kinds[i:j])
			if err != nil {
				t.Fatal(err)
			}
			hits += h
			if j == n {
				break
			}
			i = j
		}
		if err := pc.Finish(tr.Cycles); err != nil {
			t.Fatal(err)
		}
		got, err := pc.Result(tr.Name, hits)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "random splits", want, got)
	}
}

func TestAccessBatchAfterFinish(t *testing.T) {
	pc, err := New(Config{Geometry: cache.Geometry{Size: 1024, LineSize: 16, Ways: 1, AddressBits: 32}, Banks: 4, Policy: index.KindProbing})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.AccessBatch([]uint64{1}, []uint64{0x40}, []trace.Kind{trace.Read}); err != nil {
		t.Fatal(err)
	}
	if err := pc.Finish(10); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.AccessBatch([]uint64{11}, []uint64{0x40}, []trace.Kind{trace.Read}); !errors.Is(err, ErrFinished) {
		t.Fatalf("batch after Finish: got %v, want ErrFinished", err)
	}
	// The empty batch is rejected after Finish too (the state check runs
	// before the length check, matching the scalar wrapper).
	if _, err := pc.AccessBatch(nil, nil, nil); !errors.Is(err, ErrFinished) {
		t.Fatalf("empty batch after Finish: got %v, want ErrFinished", err)
	}
	if _, _, err := pc.Access(11, 0x40, trace.Read); !errors.Is(err, ErrFinished) {
		t.Fatalf("scalar access after Finish: got %v, want ErrFinished", err)
	}
}

func TestAccessBatchValidation(t *testing.T) {
	pc, err := New(Config{Geometry: cache.Geometry{Size: 1024, LineSize: 16, Ways: 1, AddressBits: 32}, Banks: 4, Policy: index.KindProbing})
	if err != nil {
		t.Fatal(err)
	}
	if hits, err := pc.AccessBatch(nil, nil, nil); err != nil || hits != 0 {
		t.Fatalf("zero-length batch: hits=%d err=%v", hits, err)
	}
	if _, err := pc.AccessBatch([]uint64{1}, []uint64{0x40, 0x80}, []trace.Kind{trace.Read}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	// An unordered batch applies the ordered prefix, then fails — and
	// Run names the exact offending access in its error.
	if _, err := pc.AccessBatch([]uint64{10, 5}, []uint64{0x40, 0x80}, []trace.Kind{trace.Read, trace.Read}); err == nil {
		t.Fatal("unordered batch accepted")
	}
	bad := &trace.Trace{Name: "bad", Cycles: 100}
	for i := 0; i < 10; i++ {
		bad.Accesses = append(bad.Accesses, trace.Access{Cycle: uint64(20 + i), Addr: 0x40})
	}
	bad.Accesses[7].Cycle = 1 // out of order at index 7; Validate would catch it, the kernel must too
	fresh, err := New(Config{Geometry: cache.Geometry{Size: 1024, LineSize: 16, Ways: 1, AddressBits: 32}, Banks: 4, Policy: index.KindProbing})
	if err != nil {
		t.Fatal(err)
	}
	var hits uint64
	h, applied, kerr := fresh.accessBatch(cyclesOf(bad), addrsOf(bad), kindsOf(bad))
	hits = h
	if kerr == nil || applied != 7 {
		t.Fatalf("unordered at 7: applied=%d err=%v hits=%d", applied, kerr, hits)
	}
	// The prefix access landed: reads counted, cursor advanced.
	if _, _, err := pc.Access(9, 0x40, trace.Read); err == nil {
		t.Fatal("cycle order not enforced across calls after partial batch")
	}
	if _, _, err := pc.Access(10, 0x40, trace.Read); err != nil {
		t.Fatalf("in-order access after partial batch: %v", err)
	}
}

func cyclesOf(tr *trace.Trace) []uint64 {
	out := make([]uint64, tr.Len())
	for i, a := range tr.Accesses {
		out[i] = a.Cycle
	}
	return out
}

func addrsOf(tr *trace.Trace) []uint64 {
	out := make([]uint64, tr.Len())
	for i, a := range tr.Accesses {
		out[i] = a.Addr
	}
	return out
}

func kindsOf(tr *trace.Trace) []trace.Kind {
	out := make([]trace.Kind, tr.Len())
	for i, a := range tr.Accesses {
		out[i] = a.Kind
	}
	return out
}

// FuzzBatchEquivalence lets the fuzzer pick geometry, policy, update
// cadence, batch size and trace shape; scalar and batched kernels must
// agree bit for bit.
func FuzzBatchEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(0), uint16(64), uint8(0))
	f.Add(int64(2), uint16(3), uint16(1), uint8(1))
	f.Add(int64(3), uint16(4097), uint16(4096), uint8(2))
	f.Add(int64(4), uint16(1), uint16(7), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, updateEvery uint16, batchSize uint16, sel uint8) {
		kinds := []index.Kind{index.KindIdentity, index.KindProbing, index.KindScrambling}
		banks := []int{2, 4}
		cfg := Config{
			Geometry:    cache.Geometry{Size: 4 * 1024, LineSize: 16, Ways: 1, AddressBits: 32},
			Banks:       banks[int(sel>>4)%len(banks)],
			Policy:      kinds[int(sel)%len(kinds)],
			UpdateEvery: uint64(updateEvery),
		}
		tr := oracleTrace(seed, 2000, cfg.Geometry)
		scalar := runScalarOracle(t, cfg, tr)
		batched := runBatchedOracle(t, cfg, tr, int(batchSize))
		if !reflect.DeepEqual(scalar, batched) {
			t.Fatalf("scalar and batched diverge for cfg %+v batch %d", cfg, batchSize)
		}
	})
}

// TestFusedGeneralEquivalence is the kernel differential: the fused
// single-pass kernel and the general scatter kernel must be
// bit-identical on every direct-mapped configuration, including
// partial application on unordered input.
func TestFusedGeneralEquivalence(t *testing.T) {
	g := cache.Geometry{Size: 16 * 1024, LineSize: 16, Ways: 1, AddressBits: 32}
	seed := int64(100)
	for _, pol := range []index.Kind{index.KindIdentity, index.KindProbing, index.KindScrambling} {
		for _, banks := range []int{2, 4, 8} {
			for _, ue := range []uint64{0, 1, 7, 100, 4097} {
				cfg := Config{Geometry: g, Banks: banks, Policy: pol, UpdateEvery: ue}
				seed++
				tr := oracleTrace(seed, 5000, g)
				fused, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !fused.fusable {
					t.Fatal("direct-mapped config not fusable")
				}
				fres, err := fused.RunBuffered(tr, nil)
				if err != nil {
					t.Fatal(err)
				}
				general, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				general.forceGeneral = true
				gres, err := general.RunBuffered(tr, nil)
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, "fused vs general", gres, fres)
			}
		}
	}
}

// TestFusedGeneralPartialApplication pins that both kernels stop at the
// same offending access, apply the same prefix, and leave the same
// cursor state.
func TestFusedGeneralPartialApplication(t *testing.T) {
	g := cache.Geometry{Size: 1024, LineSize: 16, Ways: 1, AddressBits: 32}
	cfg := Config{Geometry: g, Banks: 4, Policy: index.KindProbing, UpdateEvery: 5}
	bad := oracleTrace(7, 200, g)
	bad.Accesses[123].Cycle = 0 // out of order at index 123

	run := func(force bool) (hits uint64, applied int, err error, after error) {
		pc, nerr := New(cfg)
		if nerr != nil {
			t.Fatal(nerr)
		}
		pc.forceGeneral = force
		hits, applied, err = pc.accessBatch(cyclesOf(bad), addrsOf(bad), kindsOf(bad))
		// Probe the post-error cursor: the last applied cycle must still
		// be enforced.
		_, _, after = pc.Access(bad.Accesses[122].Cycle-1, 0x40, trace.Read)
		return
	}
	fh, fa, ferr, fafter := run(false)
	gh, ga, gerr, gafter := run(true)
	if fa != 123 || ga != 123 {
		t.Fatalf("applied: fused=%d general=%d, want 123", fa, ga)
	}
	if fh != gh {
		t.Fatalf("hits diverge: fused=%d general=%d", fh, gh)
	}
	if !errors.Is(ferr, pmu.ErrUnordered) || !errors.Is(gerr, pmu.ErrUnordered) {
		t.Fatalf("errors: fused=%v general=%v", ferr, gerr)
	}
	if ferr.Error() != gerr.Error() {
		t.Fatalf("error text diverges:\nfused:   %v\ngeneral: %v", ferr, gerr)
	}
	if (fafter == nil) != (gafter == nil) {
		t.Fatalf("post-error cursor diverges: fused=%v general=%v", fafter, gafter)
	}
}

// TestRunColumnsEquivalence is the columnar↔row oracle: driving the
// columnar form through RunColumns must be bit-identical to driving the
// row form through RunBuffered, across batch sizes and update cadences,
// for both kernels.
func TestRunColumnsEquivalence(t *testing.T) {
	g := cache.Geometry{Size: 16 * 1024, LineSize: 16, Ways: 1, AddressBits: 32}
	assoc := cache.Geometry{Size: 16 * 1024, LineSize: 16, Ways: 2, AddressBits: 32}
	seed := int64(200)
	for _, geom := range []cache.Geometry{g, assoc} {
		for _, ue := range []uint64{0, 3, 1023} {
			for _, bs := range []int{1, 64, 4096, 10000} {
				cfg := Config{Geometry: geom, Banks: 4, Policy: index.KindProbing, UpdateEvery: ue}
				seed++
				tr := oracleTrace(seed, 5000, geom)
				rows := runBatchedOracle(t, cfg, tr, bs)
				pc, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				cols, err := pc.RunColumns(trace.FromRows(tr), NewBatch(bs))
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, "columns vs rows", rows, cols)

				// The unchecked entry point must be bit-identical to the
				// checked one on valid input (the only input it admits).
				pcU, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				uncheck, err := pcU.RunColumnsUnchecked(trace.FromRows(tr), NewBatch(bs))
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, "unchecked vs checked", cols, uncheck)
			}
		}
	}
}

// TestRunColumnsUncheckedLengthParity pins the one check the unchecked
// path must keep: mismatched column lengths are rejected before the
// kernel can index past a shorter column.
func TestRunColumnsUncheckedLengthParity(t *testing.T) {
	g := cache.Geometry{Size: 16 * 1024, LineSize: 16, Ways: 1, AddressBits: 32}
	cfg := Config{Geometry: g, Banks: 4, Policy: index.KindProbing}
	pc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cols := trace.FromRows(oracleTrace(77, 100, g))
	cols.Kinds = cols.Kinds[:len(cols.Kinds)-1]
	if _, err := pc.RunColumnsUnchecked(cols, nil); err == nil {
		t.Fatal("mismatched column lengths accepted")
	}
}

// TestRunBufferedReuse pins buffer reuse across runs: the same Batch
// serves two different simulations without cross-contamination.
func TestRunBufferedReuse(t *testing.T) {
	g := cache.Geometry{Size: 8 * 1024, LineSize: 16, Ways: 1, AddressBits: 32}
	cfg := Config{Geometry: g, Banks: 4, Policy: index.KindProbing}
	buf := NewBatch(128)
	tr1 := oracleTrace(7, 1000, g)
	tr2 := oracleTrace(8, 900, g)

	pcA, _ := New(cfg)
	resA, err := pcA.RunBuffered(tr1, buf)
	if err != nil {
		t.Fatal(err)
	}
	pcB, _ := New(cfg)
	resB, err := pcB.RunBuffered(tr2, buf)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "fresh buffer", runBatchedOracle(t, cfg, tr1, 64), resA)
	requireIdentical(t, "reused buffer", runBatchedOracle(t, cfg, tr2, 64), resB)
}

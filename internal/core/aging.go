package core

import (
	"fmt"
	"math"
	"sync"

	"nbticache/internal/aging"
	"nbticache/internal/index"
	"nbticache/internal/stats"
)

// shareKey identifies a policy share matrix: ProjectAging always builds
// its policy through index.New (default LFSR width and seed), so the
// matrix is a pure function of kind, bank count and epoch count.
type shareKey struct {
	kind   index.Kind
	banks  int
	epochs int
}

// shareCache memoises share matrices across projections. Every job in a
// sweep pays the same few (kind, M, epochs) points, and the matrices are
// read-only after construction, so one process-wide map serves all
// workers. maxShareCacheEntries bounds a pathological client that sweeps
// the epochs axis: past it, matrices are computed but not retained.
var (
	shareCache        sync.Map // shareKey -> *index.ShareMatrix
	shareCacheEntries int64
	shareCacheMu      sync.Mutex
)

const maxShareCacheEntries = 256

// policyShares returns the (possibly cached) share matrix for a policy
// kind constructed with index.New defaults.
func policyShares(kind index.Kind, banks, epochs int) (*index.ShareMatrix, error) {
	key := shareKey{kind, banks, epochs}
	if v, ok := shareCache.Load(key); ok {
		return v.(*index.ShareMatrix), nil
	}
	pol, err := index.New(kind, banks)
	if err != nil {
		return nil, err
	}
	sm, err := index.Shares(pol, epochs)
	if err != nil {
		return nil, err
	}
	shareCacheMu.Lock()
	if shareCacheEntries < maxShareCacheEntries {
		if _, loaded := shareCache.LoadOrStore(key, sm); !loaded {
			shareCacheEntries++
		}
	}
	shareCacheMu.Unlock()
	return sm, nil
}

// DefaultServiceEpochs is the number of re-indexing updates assumed over
// the cache's service life for the share analysis: daily updates ("once a
// day or even less frequently") across a decade-plus horizon.
const DefaultServiceEpochs = 4096

// StorageP0 is the probability of storing a 0 assumed by the lifetime
// projection; 0.5 is the balanced (best) case the paper's numbers use.
const StorageP0 = 0.5

// Projection is the multi-year aging outcome of one policy applied to the
// measured per-region sleep duties.
type Projection struct {
	// PolicyName identifies the f() that was projected.
	PolicyName string
	// Epochs is the number of updates assumed over the service life.
	Epochs int
	// BankDuty is the long-term sleep fraction of each physical bank.
	BankDuty []float64
	// BankLifetimeYears is the corresponding lifetime of each bank.
	BankLifetimeYears []float64
	// LifetimeYears is the cache lifetime: the first bank to die takes
	// the cache with it (aging is a worst-case metric).
	LifetimeYears float64
	// ShareError is the worst deviation of any bank/region hosting
	// share from the ideal 1/M (0 for probing at multiples of M, the
	// O(1/sqrt(N)) RNG error for scrambling, 1-1/M for identity).
	ShareError float64
}

// MeanDuty returns the average long-term sleep fraction across banks,
// for reports.
func (p *Projection) MeanDuty() float64 { return stats.Mean(p.BankDuty) }

// ProjectAging folds per-region sleep duties through a policy's long-term
// hosting shares and evaluates bank lifetimes with the aging model. The
// policy is constructed fresh from its kind so live simulation state is
// never perturbed.
func ProjectAging(model *aging.Model, regionSleep []float64, kind index.Kind, epochs int, mode aging.SleepMode) (*Projection, error) {
	if model == nil {
		return nil, fmt.Errorf("core: nil aging model")
	}
	if len(regionSleep) < 2 {
		return nil, fmt.Errorf("core: need >= 2 regions, got %d", len(regionSleep))
	}
	if epochs < 1 {
		return nil, fmt.Errorf("core: need >= 1 epoch, got %d", epochs)
	}
	for i, s := range regionSleep {
		if s < 0 || s > 1 {
			return nil, fmt.Errorf("core: region %d sleep fraction %v outside [0,1]", i, s)
		}
	}
	shares, err := policyShares(kind, len(regionSleep), epochs)
	if err != nil {
		return nil, err
	}
	duty, err := shares.BankDuty(regionSleep)
	if err != nil {
		return nil, err
	}
	lts, err := model.LifetimeVector(duty, StorageP0, mode)
	if err != nil {
		return nil, err
	}
	return &Projection{
		PolicyName:        string(kind),
		Epochs:            epochs,
		BankDuty:          duty,
		BankLifetimeYears: lts,
		LifetimeYears:     stats.Min(lts),
		ShareError:        shares.MaxError(),
	}, nil
}

// AgingSummary compares the three lifetimes of the paper's evaluation for
// one benchmark run: the monolithic cache (the cell lifetime — a
// non-partitioned cache has essentially no exploitable idleness), the
// partitioned power-managed cache without re-indexing (LT0), and with
// re-indexing (LT).
type AgingSummary struct {
	Name string
	// MonolithicYears is the unmanaged baseline (2.93 in the paper).
	MonolithicYears float64
	// LT0Years is the conventional partitioned cache (identity f()).
	LT0Years float64
	// LTYears is the dynamic-indexing cache (probing by default).
	LTYears float64
	// LT0Extension and LTExtension are fractional improvements over the
	// monolithic baseline.
	LT0Extension float64
	LTExtension  float64
}

// SummariseAging runs the identity and re-indexed projections for a
// result's measured region duties.
func SummariseAging(model *aging.Model, res *RunResult, reindex index.Kind, epochs int, mode aging.SleepMode) (*AgingSummary, error) {
	if reindex == index.KindIdentity {
		return nil, fmt.Errorf("core: re-indexing policy must not be identity")
	}
	duties := res.RegionSleepFractions()
	lt0, err := ProjectAging(model, duties, index.KindIdentity, epochs, mode)
	if err != nil {
		return nil, err
	}
	lt, err := ProjectAging(model, duties, reindex, epochs, mode)
	if err != nil {
		return nil, err
	}
	mono := model.CellLifetimeYears()
	s := &AgingSummary{
		Name:            res.Name,
		MonolithicYears: mono,
		LT0Years:        lt0.LifetimeYears,
		LTYears:         lt.LifetimeYears,
	}
	if mono > 0 {
		s.LT0Extension = s.LT0Years/mono - 1
		s.LTExtension = s.LTYears/mono - 1
	}
	if math.IsInf(s.LTYears, 1) {
		return nil, fmt.Errorf("core: infinite projected lifetime (fully gated bank?)")
	}
	return s, nil
}

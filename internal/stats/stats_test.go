package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestMeanBasic(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("GeoMean(2,2,2) = %v, want 2", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 {
		t.Errorf("Min = %v, want -1", Min(xs))
	}
	if Max(xs) != 7 {
		t.Errorf("Max = %v, want 7", Max(xs))
	}
	if Sum(xs) != 9 {
		t.Errorf("Sum = %v, want 9", Sum(xs))
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	} {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", c.q, err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// errors.Is, not ==: the match must survive wrapping (nbtivet senterr).
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("Quantile(empty) err = %v, want ErrEmpty", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile(q=1.5) did not error")
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("Imbalance(uniform) = %v, want 0", got)
	}
	// max=3, min=1, mean=2 -> (3-1)/2 = 1
	if got := Imbalance([]float64{1, 3, 2, 2}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Imbalance = %v, want 1", got)
	}
	if got := Imbalance([]float64{0, 0}); got != 0 {
		t.Errorf("Imbalance(zero-mean) = %v, want 0", got)
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var r Running
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 1
		r.Add(xs[i])
	}
	if !almostEqual(r.Mean(), Mean(xs), 1e-9) {
		t.Errorf("running mean %v != batch %v", r.Mean(), Mean(xs))
	}
	if !almostEqual(r.Variance(), Variance(xs), 1e-9) {
		t.Errorf("running var %v != batch %v", r.Variance(), Variance(xs))
	}
	if r.Min() != Min(xs) || r.Max() != Max(xs) {
		t.Errorf("running extrema (%v,%v) != batch (%v,%v)", r.Min(), r.Max(), Min(xs), Max(xs))
	}
	if r.N() != 1000 {
		t.Errorf("N = %d, want 1000", r.N())
	}
}

func TestRunningMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var a, b, whole Running
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 100
		a.Add(x)
		whole.Add(x)
	}
	for i := 0; i < 300; i++ {
		x := rng.Float64()*10 - 50
		b.Add(x)
		whole.Add(x)
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if !almostEqual(a.Mean(), whole.Mean(), 1e-9) {
		t.Errorf("merged mean %v != %v", a.Mean(), whole.Mean())
	}
	if !almostEqual(a.Variance(), whole.Variance(), 1e-6) {
		t.Errorf("merged var %v != %v", a.Variance(), whole.Variance())
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Merge(&b) // no-op
	if a.N() != 1 || a.Mean() != 1 {
		t.Errorf("merge with empty changed accumulator: %v", a.String())
	}
	b.Merge(&a)
	if b.N() != 1 || b.Mean() != 1 {
		t.Errorf("merge into empty failed: %v", b.String())
	}
}

// Property: mean is always within [min, max] and variance is non-negative.
func TestRunningInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		var r Running
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				continue // Welford squares deltas; keep inputs representable
			}
			r.Add(x)
		}
		if r.N() > 0 {
			ok = ok && r.Mean() >= r.Min()-1e-9 && r.Mean() <= r.Max()+1e-9
			ok = ok && r.Variance() >= -1e-9
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Quantile is monotone in q.
func TestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v, err := Quantile(xs, q)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-12 {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1) // underflow
	h.Add(12) // overflow
	if h.Total() != 12 {
		t.Fatalf("Total = %d, want 12", h.Total())
	}
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("under/over = %d/%d, want 1/1", h.Under, h.Over)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("bucket %d count = %d, want 1", i, c)
		}
	}
	// 5 in-range samples at >=5 plus one overflow out of 12 total.
	if got := h.FractionAbove(5); !almostEqual(got, 6.0/12.0, 1e-12) {
		t.Errorf("FractionAbove(5) = %v, want 0.5", got)
	}
	if s := h.String(); s == "" {
		t.Error("String() empty")
	}
}

func TestHistogramTopEdgeRounding(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	// A value infinitesimally below Hi must not index out of range.
	h.Add(math.Nextafter(1, 0))
	if h.Counts[2] != 1 {
		t.Errorf("top-edge value not in last bucket: %v", h.Counts)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	got, err := Percentiles(xs, 0, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 30, 50}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("Percentiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// errors.Is, not ==: the match must survive wrapping (nbtivet senterr).
	if _, err := Percentiles(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
	if _, err := Percentiles(xs, -0.1); err == nil {
		t.Error("negative quantile did not error")
	}
}

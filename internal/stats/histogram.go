package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-width linear histogram over [Lo, Hi) with overflow
// and underflow buckets. It is used to summarise idle-interval length
// distributions per bank.
type Histogram struct {
	Lo, Hi    float64
	Counts    []int64
	Under     int64
	Over      int64
	total     int64
	sum       float64
	widthRecp float64
}

// NewHistogram builds a histogram with n equal buckets covering [lo, hi).
// It panics if n <= 0 or hi <= lo, which are programming errors.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic("stats: histogram range is empty")
	}
	return &Histogram{
		Lo:        lo,
		Hi:        hi,
		Counts:    make([]int64, n),
		widthRecp: float64(n) / (hi - lo),
	}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	h.sum += x
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) * h.widthRecp)
		if i >= len(h.Counts) { // guard float rounding at the top edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations including under/overflow.
func (h *Histogram) Total() int64 { return h.total }

// Mean returns the mean of all observations (including out-of-range ones).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// BucketBounds returns the [lo, hi) bounds of bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// FractionAbove returns the fraction of observations >= x, using bucket
// granularity (observations inside the bucket containing x count as above
// when their bucket lower bound >= x).
func (h *Histogram) FractionAbove(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	var above int64 = h.Over
	for i := range h.Counts {
		lo, _ := h.BucketBounds(i)
		if lo >= x {
			above += h.Counts[i]
		}
	}
	return float64(above) / float64(h.total)
}

// String renders a compact ASCII bar chart, one row per non-empty bucket.
func (h *Histogram) String() string {
	var b strings.Builder
	peak := int64(1)
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	if h.Under > 0 {
		fmt.Fprintf(&b, "%12s | %d\n", "<lo", h.Under)
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.BucketBounds(i)
		bar := strings.Repeat("#", int(math.Ceil(float64(c)/float64(peak)*40)))
		fmt.Fprintf(&b, "[%5.3g,%5.3g) | %-40s %d\n", lo, hi, bar, c)
	}
	if h.Over > 0 {
		fmt.Fprintf(&b, "%12s | %d\n", ">=hi", h.Over)
	}
	return b.String()
}

// Percentiles computes several quantiles of xs at once, returning them in
// the same order as qs. The input is sorted once.
func Percentiles(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 || q > 1 {
			return nil, fmt.Errorf("stats: quantile %v outside [0,1]", q)
		}
		pos := q * float64(len(sorted)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			out[i] = sorted[lo]
			continue
		}
		frac := pos - float64(lo)
		out[i] = sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	return out, nil
}

// Package stats provides the small statistical toolkit used throughout the
// simulator: running moments, quantiles, histograms and a few vector
// helpers. Everything is allocation-conscious because the cache simulator
// calls into this package on hot paths (per-bank idle-interval accounting).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions over empty data sets.
var ErrEmpty = errors.New("stats: empty data set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive entries make the result NaN, mirroring math.Log behaviour.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Min returns the minimum of xs. It panics on an empty slice: callers in
// this code base always reduce per-bank vectors whose length is a compile-
// time-checked power of two, so an empty input is a programming error.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. See Min for the empty-slice policy.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Variance returns the population variance of xs (division by n, not n-1);
// the simulator reports over complete populations of banks, not samples.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	mean := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return sum / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns ErrEmpty for empty
// input and an error for q outside [0, 1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Imbalance quantifies how far xs is from uniform as
// (max-min)/mean. A perfectly balanced vector scores 0. It is the metric
// the experiments use to show that re-indexing uniformises idleness.
func Imbalance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := Mean(xs)
	if mean == 0 {
		return 0
	}
	return (Max(xs) - Min(xs)) / mean
}

// Running accumulates streaming first and second moments plus extrema
// without retaining samples. The zero value is ready to use.
type Running struct {
	n        int64
	mean     float64
	m2       float64
	min, max float64
}

// Add folds x into the accumulator using Welford's update.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of accumulated samples.
func (r *Running) N() int64 { return r.n }

// Mean returns the running mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the running population variance (0 when empty).
func (r *Running) Variance() float64 {
	if r.n == 0 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the running population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest accumulated sample (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest accumulated sample (0 when empty).
func (r *Running) Max() float64 { return r.max }

// Merge folds another accumulator into r (parallel Welford merge).
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	r.m2 += o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	r.mean += delta * float64(o.n) / float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n = n
}

func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		r.n, r.Mean(), r.StdDev(), r.min, r.max)
}

package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Streaming codec. The Decoder consumes any of the three wire formats —
// binary v1 (counted), binary v2 (terminated) and text — one access at a
// time in bounded memory: nothing is sized from untrusted header fields,
// so a 16-byte stream claiming 2³² accesses costs 16 bytes, not 100 GiB.
// The Encoder produces binary v2, which needs neither the access count
// nor the cycle span up front and therefore streams:
//
//	magic "NBTR" | version 2 | name (uvarint len + bytes)
//	per access: kind byte (0=R, 1=W) | cycle delta (uvarint) | addr zig-zag delta (varint)
//	terminator: 0xFF | total span cycles (uvarint)
//
// Binary v1 (WriteBinary) stays the at-rest format; both decode through
// the same Decoder.

const (
	binaryVersionStream = 2
	// streamEnd is the v2 record terminator, in the kind-byte position
	// (real kinds are < numKinds).
	streamEnd = 0xFF
	// maxTextLine bounds one text line; valid records are tens of bytes.
	maxTextLine = 1 << 20
)

// ErrTooLarge is returned by Decoder.ReadAll when the stream holds more
// accesses than the caller's cap.
var ErrTooLarge = errors.New("trace: too many accesses")

type format uint8

const (
	formatBinaryV1 format = iota
	formatBinaryV2
	formatText
)

// Decoder reads a trace incrementally from any supported wire format.
// It enforces the same invariants as Trace.Validate — ordered cycles,
// valid kinds, a clean name, a span covering the last access — but does
// so per record, holding only fixed-size state plus one buffered chunk.
//
// Binary decoding consumes exactly one trace (through the declared count
// for v1, through the terminator for v2) and never reads past it: a v2
// producer on a live pipe need not close it for the consumer's ReadAll
// to return, and traces framed back-to-back on one stream decode in
// sequence when every decode shares one *bufio.Reader (see asBufio).
// (Text is unframed and reads to end of input.)
type Decoder struct {
	br  *bufio.Reader
	sc  *bufio.Scanner // text only
	fmt format

	name     string
	declared uint64 // v1 header count
	hasCount bool
	cycles   uint64 // header span (v1/text header) or v2 terminator

	decoded   uint64
	prevCycle uint64
	prevAddr  uint64
	lineNo    int
	finished  bool
	err       error // sticky
}

// asBufio reuses r's buffering when it already is a *bufio.Reader, so
// decoding stops exactly at the end of one trace on the shared reader;
// anything else gets wrapped (and the wrapper may buffer past the
// trace). To read framed back-to-back traces, pass one *bufio.Reader to
// every decode.
func asBufio(r io.Reader) *bufio.Reader {
	if br, ok := r.(*bufio.Reader); ok {
		return br
	}
	return bufio.NewReader(r)
}

// NewDecoder sniffs the stream: input starting with the binary magic is
// decoded as binary (v1 or v2), anything else as text. Short inputs
// (under four bytes) decode as text, which accepts the empty trace.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := asBufio(r)
	head, err := br.Peek(len(binaryMagic))
	if err == nil && string(head) == binaryMagic {
		return newBinaryDecoder(br)
	}
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return newTextDecoder(br), nil
}

// NewBinaryDecoder requires the binary format (v1 or v2); a missing
// magic is ErrBadFormat.
func NewBinaryDecoder(r io.Reader) (*Decoder, error) {
	return newBinaryDecoder(asBufio(r))
}

// NewTextDecoder reads the text format unconditionally.
func NewTextDecoder(r io.Reader) *Decoder {
	return newTextDecoder(asBufio(r))
}

func newTextDecoder(br *bufio.Reader) *Decoder {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 64*1024), maxTextLine)
	return &Decoder{br: br, sc: sc, fmt: formatText}
}

// badOrIO classifies a low-level binary read failure: exhausted input
// and varint overflow are malformed input (ErrBadFormat); anything else
// is a genuine reader failure and keeps its identity in the chain (so
// e.g. an http.MaxBytesError surfaces through errors.As, and callers
// can tell a truncated stream from a broken disk).
func badOrIO(err error, format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, errVarintOverflow) {
		//nbtivet:ignore senterr masking is the point: %w here would make errors.Is(err, io.EOF) true and corruption would read as clean end-of-stream
		return fmt.Errorf("%w: %s: %v", ErrBadFormat, msg, err)
	}
	return fmt.Errorf("trace: read: %s: %w", msg, err)
}

var errVarintOverflow = errors.New("trace: varint overflows a 64-bit integer")

// readUvarint is binary.ReadUvarint with an identifiable overflow error
// (the stdlib's is an unexported value badOrIO could only match by
// message text). Reader errors pass through untouched.
func readUvarint(br *bufio.Reader) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return x, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return x, errVarintOverflow
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return x, errVarintOverflow
}

// readVarint undoes the zig-zag encoding on top of readUvarint.
func readVarint(br *bufio.Reader) (int64, error) {
	ux, err := readUvarint(br)
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x, err
}

func newBinaryDecoder(br *bufio.Reader) (*Decoder, error) {
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, badOrIO(err, "missing magic")
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, badOrIO(err, "missing version")
	}
	d := &Decoder{br: br}
	switch ver {
	case binaryVersion:
		d.fmt = formatBinaryV1
	case binaryVersionStream:
		d.fmt = formatBinaryV2
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, ver)
	}
	nameLen, err := readUvarint(br)
	if err != nil {
		return nil, badOrIO(err, "name length")
	}
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("%w: absurd name length %d", ErrBadFormat, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, badOrIO(err, "name bytes")
	}
	d.name = string(name)
	if err := checkName(d.name); err != nil {
		//nbtivet:ignore senterr ErrBadFormat is the decoder's only public sentinel; the checkName detail is message-only by design
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if d.fmt == formatBinaryV1 {
		count, err := readUvarint(br)
		if err != nil {
			return nil, badOrIO(err, "access count")
		}
		if count > 1<<32 {
			return nil, fmt.Errorf("%w: absurd access count %d", ErrBadFormat, count)
		}
		span, err := readUvarint(br)
		if err != nil {
			return nil, badOrIO(err, "cycle span")
		}
		d.declared, d.hasCount = count, true
		d.cycles = span
	}
	return d, nil
}

// Name returns the trace name. For binary input it is known up front;
// for text it settles once the header lines have been consumed by Next.
func (d *Decoder) Name() string { return d.name }

// DeclaredCount returns the header-claimed access count and whether the
// format carries one (binary v1 only). It is a claim, not a promise: the
// decoder never allocates from it.
func (d *Decoder) DeclaredCount() (uint64, bool) { return d.declared, d.hasCount }

// Decoded returns the number of accesses decoded so far.
func (d *Decoder) Decoded() uint64 { return d.decoded }

// More reports whether unread bytes follow the decoded trace. Binary
// decoding stops exactly at the end of one trace, so this distinguishes
// a cleanly exhausted input from one with trailing data (a concatenated
// or corrupt tail). It may block until the underlying reader delivers a
// byte or EOF — call it on bounded inputs (a file, an HTTP body), not
// on a live pipe that stays open.
func (d *Decoder) More() (bool, error) {
	_, err := d.br.Peek(1)
	switch {
	case err == nil:
		return true, nil
	case err == io.EOF:
		return false, nil
	default:
		return false, fmt.Errorf("trace: read: %w", err)
	}
}

// Cycles returns the trace's total cycle span. It is final once Next has
// returned io.EOF.
func (d *Decoder) Cycles() uint64 { return d.cycles }

// Next returns the next access. A clean end of stream is io.EOF; any
// malformed input is ErrBadFormat (wrapped); underlying reader failures
// are returned as themselves. Errors are sticky.
func (d *Decoder) Next() (Access, error) {
	if d.err != nil {
		return Access{}, d.err
	}
	a, err := d.next()
	if err != nil {
		d.err = err
		return Access{}, err
	}
	if d.decoded > 0 && a.Cycle < d.prevCycle {
		d.err = fmt.Errorf("%w: access %d at cycle %d after cycle %d",
			ErrUnordered, d.decoded, a.Cycle, d.prevCycle)
		return Access{}, d.err
	}
	d.prevCycle = a.Cycle
	d.decoded++
	return a, nil
}

func (d *Decoder) next() (Access, error) {
	switch d.fmt {
	case formatText:
		return d.nextText()
	default:
		return d.nextBinary()
	}
}

// finish validates the end-of-stream span against the last access and
// returns io.EOF.
func (d *Decoder) finish() (Access, error) {
	d.finished = true
	if d.decoded > 0 && d.cycles <= d.prevCycle {
		if d.fmt == formatText {
			// The text header may omit (or understate) the span; infer
			// the minimal covering one, as ReadText always has.
			d.cycles = d.prevCycle + 1
		} else {
			return Access{}, fmt.Errorf("%w: span %d cycles does not cover last access at cycle %d",
				ErrBadFormat, d.cycles, d.prevCycle)
		}
	}
	return Access{}, io.EOF
}

func (d *Decoder) nextBinary() (Access, error) {
	if d.finished {
		return Access{}, io.EOF
	}
	if d.fmt == formatBinaryV1 && d.decoded == d.declared {
		return d.finish()
	}
	var kind Kind
	if d.fmt == formatBinaryV2 {
		kb, err := d.br.ReadByte()
		if err != nil {
			return Access{}, badOrIO(err, "access %d kind", d.decoded)
		}
		if kb == streamEnd {
			span, err := readUvarint(d.br)
			if err != nil {
				return Access{}, badOrIO(err, "cycle span")
			}
			d.cycles = span
			return d.finish()
		}
		kind = Kind(kb)
		if !kind.Valid() {
			return Access{}, fmt.Errorf("%w: access %d kind %d", ErrBadFormat, d.decoded, kb)
		}
	}
	dc, err := readUvarint(d.br)
	if err != nil {
		return Access{}, badOrIO(err, "access %d cycle", d.decoded)
	}
	da, err := readVarint(d.br)
	if err != nil {
		return Access{}, badOrIO(err, "access %d addr", d.decoded)
	}
	if d.fmt == formatBinaryV1 {
		kb, err := d.br.ReadByte()
		if err != nil {
			return Access{}, badOrIO(err, "access %d kind", d.decoded)
		}
		kind = Kind(kb)
		if !kind.Valid() {
			return Access{}, fmt.Errorf("%w: access %d kind %d", ErrBadFormat, d.decoded, kb)
		}
	}
	cycle := d.prevCycle + dc
	if cycle < d.prevCycle {
		return Access{}, fmt.Errorf("%w: access %d cycle overflow", ErrBadFormat, d.decoded)
	}
	d.prevAddr += uint64(da)
	return Access{Cycle: cycle, Addr: d.prevAddr, Kind: kind}, nil
}

func (d *Decoder) nextText() (Access, error) {
	if d.finished {
		return Access{}, io.EOF
	}
	for d.sc.Scan() {
		d.lineNo++
		line := strings.TrimSpace(d.sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := d.textHeader(line); err != nil {
				return Access{}, err
			}
			continue
		}
		var cycle, addr uint64
		var kindStr string
		if _, err := fmt.Sscanf(line, "%d %s %v", &cycle, &kindStr, &addr); err != nil {
			//nbtivet:ignore senterr Sscanf failures can carry io.EOF; %w would make corruption match clean end-of-stream
			return Access{}, fmt.Errorf("%w: line %d: %v", ErrBadFormat, d.lineNo, err)
		}
		var k Kind
		switch kindStr {
		case "R":
			k = Read
		case "W":
			k = Write
		default:
			return Access{}, fmt.Errorf("%w: line %d: kind %q", ErrBadFormat, d.lineNo, kindStr)
		}
		return Access{Cycle: cycle, Addr: addr, Kind: k}, nil
	}
	if err := d.sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// An over-long token is malformed input, not an I/O failure.
			//nbtivet:ignore senterr deliberate demotion: bufio.ErrTooLong is reclassified as ErrBadFormat and must not stay matchable as an I/O error
			return Access{}, fmt.Errorf("%w: line %d: %v", ErrBadFormat, d.lineNo+1, err)
		}
		return Access{}, fmt.Errorf("trace: read: %w", err)
	}
	return d.finish()
}

func (d *Decoder) textHeader(line string) error {
	key, rest, _ := strings.Cut(strings.TrimSpace(strings.TrimPrefix(line, "#")), " ")
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return nil
	}
	switch key {
	case "name":
		// rest preserves interior whitespace: collapsing it would make
		// the text form of "a  b" decode to a different trace — and a
		// different content address — than its binary form. (checkName
		// bans leading/trailing spaces, so line trimming loses nothing.)
		if err := checkName(rest); err != nil {
			//nbtivet:ignore senterr ErrBadFormat is the decoder's only public sentinel; the checkName detail is message-only by design
			return fmt.Errorf("%w: line %d: %v", ErrBadFormat, d.lineNo, err)
		}
		d.name = rest
	case "cycles":
		if _, err := fmt.Sscanf(rest, "%d", &d.cycles); err != nil {
			//nbtivet:ignore senterr Sscanf failures can carry io.EOF; %w would make corruption match clean end-of-stream
			return fmt.Errorf("%w: line %d: cycles header: %v", ErrBadFormat, d.lineNo, err)
		}
	}
	return nil
}

// readAllPrealloc caps the slice capacity taken on faith from a header
// count; everything beyond it grows by appending as bytes actually arrive.
const readAllPrealloc = 4096

// ReadAll drains the decoder into a Trace. maxAccesses > 0 caps the
// accepted access count (exceeding it returns ErrTooLarge); <= 0 means
// unbounded. Memory is proportional to the decoded access count, never
// to a header claim.
func (d *Decoder) ReadAll(maxAccesses int) (*Trace, error) {
	var accs []Access
	if n, ok := d.DeclaredCount(); ok {
		if maxAccesses > 0 && n > uint64(maxAccesses) {
			return nil, fmt.Errorf("%w: header claims %d accesses, cap is %d", ErrTooLarge, n, maxAccesses)
		}
		if n > 0 {
			accs = make([]Access, 0, min(n, readAllPrealloc))
		}
	}
	for {
		a, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if maxAccesses > 0 && len(accs) >= maxAccesses {
			return nil, fmt.Errorf("%w: more than %d accesses", ErrTooLarge, maxAccesses)
		}
		accs = append(accs, a)
	}
	t := &Trace{Name: d.Name(), Accesses: accs, Cycles: d.Cycles()}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Encoder writes a trace incrementally in binary v2, which carries no
// up-front count or span: accesses stream out as they arrive and the
// cycle span trails in the terminator. The header (magic, version, name)
// is written by NewEncoder; Close writes the terminator and flushes.
type Encoder struct {
	bw        *bufio.Writer
	buf       [binary.MaxVarintLen64]byte
	prevCycle uint64
	prevAddr  uint64
	count     uint64
	closed    bool
	err       error // sticky
}

// NewEncoder starts a stream with the given trace name (which must pass
// the same control-character rule as Trace.Validate).
func NewEncoder(w io.Writer, name string) (*Encoder, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	e := &Encoder{bw: bufio.NewWriter(w)}
	if _, err := e.bw.WriteString(binaryMagic); err != nil {
		return nil, err
	}
	if err := e.bw.WriteByte(binaryVersionStream); err != nil {
		return nil, err
	}
	if err := e.putUvarint(uint64(len(name))); err != nil {
		return nil, err
	}
	if _, err := e.bw.WriteString(name); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *Encoder) putUvarint(v uint64) error {
	n := binary.PutUvarint(e.buf[:], v)
	_, err := e.bw.Write(e.buf[:n])
	return err
}

func (e *Encoder) putVarint(v int64) error {
	n := binary.PutVarint(e.buf[:], v)
	_, err := e.bw.Write(e.buf[:n])
	return err
}

// Encoded returns the number of accesses written so far.
func (e *Encoder) Encoded() uint64 { return e.count }

// Write appends one access. Cycle stamps must be non-decreasing and the
// kind valid; violations fail immediately rather than at decode time,
// and — like I/O failures — latch the encoder, so a caller that only
// checks Close's error cannot end up with a cleanly-terminated stream
// silently missing the rejected access.
func (e *Encoder) Write(a Access) error {
	if e.err != nil {
		return e.err
	}
	if e.closed {
		e.err = errors.New("trace: encoder closed")
		return e.err
	}
	if !a.Kind.Valid() {
		e.err = fmt.Errorf("trace: access %d has invalid kind %d", e.count, a.Kind)
		return e.err
	}
	if e.count > 0 && a.Cycle < e.prevCycle {
		e.err = fmt.Errorf("%w: access %d at cycle %d after cycle %d",
			ErrUnordered, e.count, a.Cycle, e.prevCycle)
		return e.err
	}
	if err := e.bw.WriteByte(byte(a.Kind)); err != nil {
		e.err = err
		return err
	}
	if err := e.putUvarint(a.Cycle - e.prevCycle); err != nil {
		e.err = err
		return err
	}
	if err := e.putVarint(int64(a.Addr - e.prevAddr)); err != nil {
		e.err = err
		return err
	}
	e.prevCycle, e.prevAddr = a.Cycle, a.Addr
	e.count++
	return nil
}

// Close terminates the stream with the total cycle span and flushes.
// cycles == 0 infers the minimal span (last access cycle + 1, or 0 for
// an empty trace); a non-zero span must cover the last access. Close is
// not idempotent: a second call reports the encoder closed.
func (e *Encoder) Close(cycles uint64) error {
	if e.err != nil {
		return e.err
	}
	if e.closed {
		e.err = errors.New("trace: encoder closed")
		return e.err
	}
	if cycles == 0 && e.count > 0 {
		cycles = e.prevCycle + 1
	}
	if e.count > 0 && cycles <= e.prevCycle {
		return fmt.Errorf("trace: span %d cycles does not cover last access at cycle %d",
			cycles, e.prevCycle)
	}
	e.closed = true
	if err := e.bw.WriteByte(streamEnd); err != nil {
		e.err = err
		return err
	}
	if err := e.putUvarint(cycles); err != nil {
		e.err = err
		return err
	}
	if err := e.bw.Flush(); err != nil {
		e.err = err
		return err
	}
	return nil
}

// EncodeStream writes t in the streaming v2 format (header, every
// access, terminator) in one call.
func EncodeStream(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	e, err := NewEncoder(w, t.Name)
	if err != nil {
		return err
	}
	for _, a := range t.Accesses {
		if err := e.Write(a); err != nil {
			return err
		}
	}
	return e.Close(t.Cycles)
}

package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Columns is a trace in struct-of-arrays layout: three parallel columns
// (cycle stamps, byte addresses, access kinds) plus the span. This is
// the exact shape the batched simulation kernel consumes, so a trace
// held as Columns feeds core.AccessBatch by slicing — no per-access
// struct materialisation or transposition anywhere between the decoded
// bytes and the kernel. The row form (Trace) remains the ingestion and
// interchange type; Columns is the resident and simulation type.
type Columns struct {
	Name string
	// Cycles, Addrs and Kinds are parallel: element i is one access.
	// Cycles must be non-decreasing.
	Cycles []uint64
	Addrs  []uint64
	Kinds  []Kind
	// Span is the total duration in cycles (Trace.Cycles); it must
	// exceed the last access's cycle stamp.
	Span uint64
}

// Len returns the number of accesses.
func (c *Columns) Len() int { return len(c.Cycles) }

// Density returns accesses per cycle over the whole span (0 for an
// empty or zero-length trace).
func (c *Columns) Density() float64 {
	if c.Span == 0 {
		return 0
	}
	return float64(len(c.Cycles)) / float64(c.Span)
}

// Validate checks internal consistency, mirroring Trace.Validate on the
// columnar form: parallel column lengths, a codec-safe name, ordered
// cycle stamps, valid kinds, and a span that covers every access.
func (c *Columns) Validate() error {
	if err := checkName(c.Name); err != nil {
		return err
	}
	n := len(c.Cycles)
	if len(c.Addrs) != n || len(c.Kinds) != n {
		return fmt.Errorf("trace: column length mismatch: %d cycles, %d addrs, %d kinds",
			n, len(c.Addrs), len(c.Kinds))
	}
	var prev uint64
	for i, cy := range c.Cycles {
		if cy < prev {
			return fmt.Errorf("%w: access %d at cycle %d after cycle %d",
				ErrUnordered, i, cy, prev)
		}
		if !c.Kinds[i].Valid() {
			return fmt.Errorf("trace: access %d has invalid kind %d", i, c.Kinds[i])
		}
		prev = cy
	}
	if n > 0 && c.Span <= c.Cycles[n-1] {
		return fmt.Errorf("trace: span %d cycles does not cover last access at cycle %d",
			c.Span, c.Cycles[n-1])
	}
	return nil
}

// FromRows transposes a row-form trace into fresh columns. The result
// shares nothing with t, so a caller mutating t afterwards cannot
// desynchronise the columns.
func FromRows(t *Trace) *Columns {
	n := len(t.Accesses)
	c := &Columns{
		Name:   t.Name,
		Cycles: make([]uint64, n),
		Addrs:  make([]uint64, n),
		Kinds:  make([]Kind, n),
		Span:   t.Cycles,
	}
	for i := range t.Accesses {
		a := &t.Accesses[i]
		c.Cycles[i], c.Addrs[i], c.Kinds[i] = a.Cycle, a.Addr, a.Kind
	}
	return c
}

// Rows materialises the row form. It is the compatibility bridge for
// consumers of []Access (signature measurement, legacy tests); the hot
// path never calls it.
func (c *Columns) Rows() *Trace {
	t := &Trace{
		Name:     c.Name,
		Accesses: make([]Access, len(c.Cycles)),
		Cycles:   c.Span,
	}
	for i := range t.Accesses {
		t.Accesses[i] = Access{Cycle: c.Cycles[i], Addr: c.Addrs[i], Kind: c.Kinds[i]}
	}
	return t
}

// WriteBinaryColumns streams the canonical binary (v1) encoding straight
// from columns — byte-identical to WriteBinary on the row form, so
// content addresses derived from either representation agree. This is
// how a columnar store exports wire traces and re-derives content IDs
// without ever materialising Access structs.
func (c *Columns) WriteBinaryColumns(w io.Writer) error {
	if err := c.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(c.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(c.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(c.Cycles))); err != nil {
		return err
	}
	if err := putUvarint(c.Span); err != nil {
		return err
	}
	// One buffered write per access: cycle delta, addr delta, kind
	// (two varints and a byte peak at 21 bytes).
	var rec [2*binary.MaxVarintLen64 + 1]byte
	var prevCycle, prevAddr uint64
	for i := range c.Cycles {
		n := binary.PutUvarint(rec[:], c.Cycles[i]-prevCycle)
		n += binary.PutVarint(rec[n:], int64(c.Addrs[i]-prevAddr))
		rec[n] = byte(c.Kinds[i])
		if _, err := bw.Write(rec[:n+1]); err != nil {
			return err
		}
		prevCycle, prevAddr = c.Cycles[i], c.Addrs[i]
	}
	return bw.Flush()
}

// --- column codecs ---
//
// The three column encodings below are the payload primitives of the
// columnar trace-blob format (engine "NBTC"): a delta-uvarint cycles
// column, a zig-zag-delta-varint addrs column, and a run-length-encoded
// kinds column. Encoders append to dst; decoders consume a prefix of b
// and return the remainder, reporting malformed input as ErrBadFormat.
// Decoders never size an allocation from anything but the caller-vetted
// count n, and bound n against the bytes actually present before
// allocating.

// AppendCyclesColumn appends the delta-uvarint encoding of a
// non-decreasing cycle column.
func AppendCyclesColumn(dst []byte, cycles []uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	var prev uint64
	for _, c := range cycles {
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], c-prev)]...)
		prev = c
	}
	return dst
}

// DecodeCyclesColumn decodes n delta-uvarint cycles, returning the
// column and the unconsumed remainder. A delta that wraps uint64
// surfaces later as an unordered column (the wrapped value is smaller),
// which Validate rejects.
func DecodeCyclesColumn(b []byte, n int) ([]uint64, []byte, error) {
	if n < 0 || n > len(b) { // every delta is >= 1 byte
		return nil, nil, fmt.Errorf("%w: cycle column count %d exceeds %d payload bytes", ErrBadFormat, n, len(b))
	}
	out := make([]uint64, n)
	var prev uint64
	for i := 0; i < n; i++ {
		d, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, nil, fmt.Errorf("%w: truncated cycle column at access %d", ErrBadFormat, i)
		}
		b = b[sz:]
		prev += d
		out[i] = prev
	}
	return out, b, nil
}

// AppendAddrsColumn appends the zig-zag-delta-varint encoding of an
// address column (deltas are signed: workloads stride both ways).
func AppendAddrsColumn(dst []byte, addrs []uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	var prev uint64
	for _, a := range addrs {
		dst = append(dst, tmp[:binary.PutVarint(tmp[:], int64(a-prev))]...)
		prev = a
	}
	return dst
}

// DecodeAddrsColumn decodes n zig-zag-delta addresses.
func DecodeAddrsColumn(b []byte, n int) ([]uint64, []byte, error) {
	if n < 0 || n > len(b) { // every delta is >= 1 byte
		return nil, nil, fmt.Errorf("%w: addr column count %d exceeds %d payload bytes", ErrBadFormat, n, len(b))
	}
	out := make([]uint64, n)
	var prev uint64
	for i := 0; i < n; i++ {
		d, sz := binary.Varint(b)
		if sz <= 0 {
			return nil, nil, fmt.Errorf("%w: truncated addr column at access %d", ErrBadFormat, i)
		}
		b = b[sz:]
		prev += uint64(d)
		out[i] = prev
	}
	return out, b, nil
}

// AppendKindsColumn appends the run-length encoding of a kind column:
// (run length uvarint, kind byte) pairs covering the column exactly.
// Access kinds run long (phases of reads, bursts of writes), so this is
// typically a handful of bytes for any real trace.
func AppendKindsColumn(dst []byte, kinds []Kind) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for i := 0; i < len(kinds); {
		j := i + 1
		for j < len(kinds) && kinds[j] == kinds[i] {
			j++
		}
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(j-i))]...)
		dst = append(dst, byte(kinds[i]))
		i = j
	}
	return dst
}

// DecodeKindsColumn decodes run-length-encoded kinds totalling exactly
// n accesses. Runs that overshoot n, zero-length runs, and invalid kind
// bytes are all rejected.
func DecodeKindsColumn(b []byte, n int) ([]Kind, []byte, error) {
	if n < 0 {
		return nil, nil, fmt.Errorf("%w: negative kind column count", ErrBadFormat)
	}
	out := make([]Kind, 0, n)
	for len(out) < n {
		run, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, nil, fmt.Errorf("%w: truncated kind column after %d of %d accesses", ErrBadFormat, len(out), n)
		}
		b = b[sz:]
		if run == 0 || run > uint64(n-len(out)) {
			return nil, nil, fmt.Errorf("%w: kind run of %d exceeds remaining %d accesses", ErrBadFormat, run, n-len(out))
		}
		if len(b) < 1 {
			return nil, nil, fmt.Errorf("%w: kind run missing its kind byte", ErrBadFormat)
		}
		k := Kind(b[0])
		b = b[1:]
		if !k.Valid() {
			return nil, nil, fmt.Errorf("%w: invalid kind %d in column", ErrBadFormat, k)
		}
		for i := uint64(0); i < run; i++ {
			out = append(out, k)
		}
	}
	return out, b, nil
}

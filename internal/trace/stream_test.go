package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"
)

func randomTrace(n int, seed int64) *Trace {
	tr := &Trace{Name: "random"}
	rng := rand.New(rand.NewSource(seed))
	cycle := uint64(0)
	for i := 0; i < n; i++ {
		cycle += uint64(rng.Intn(7))
		tr.Append(cycle, uint64(rng.Intn(1<<24)), Kind(rng.Intn(2)))
	}
	tr.Cycles = cycle + uint64(rng.Intn(100)) + 1
	return tr
}

// TestEncoderDecoderRoundTrip streams a trace out in v2 and back through
// the auto-sniffing decoder.
func TestEncoderDecoderRoundTrip(t *testing.T) {
	tr := randomTrace(500, 3)
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, tr.Name)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range tr.Accesses {
		if err := enc.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if enc.Encoded() != uint64(len(tr.Accesses)) {
		t.Errorf("Encoded = %d, want %d", enc.Encoded(), len(tr.Accesses))
	}
	if err := enc.Close(tr.Cycles); err != nil {
		t.Fatal(err)
	}

	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
	if _, ok := d.DeclaredCount(); ok {
		t.Error("v2 stream reported a declared count")
	}
}

// TestEncodeStreamHelper round-trips the one-call form, empty trace
// included.
func TestEncodeStreamHelper(t *testing.T) {
	for _, tr := range []*Trace{sampleTrace(), {Name: "empty", Cycles: 9}, {}} {
		var buf bytes.Buffer
		if err := EncodeStream(&buf, tr); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		// Close(0) on an empty trace keeps the explicit span; Close with
		// tr.Cycles preserves it exactly.
		if !reflect.DeepEqual(tr, got) && !(tr.Len() == 0 && got.Len() == 0 && got.Cycles == tr.Cycles) {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
		}
	}
}

// TestDecoderReadsV1 checks the streaming decoder accepts the counted
// at-rest format and reports its declared count.
func TestDecoderReadsV1(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := d.DeclaredCount(); !ok || n != uint64(tr.Len()) {
		t.Errorf("DeclaredCount = %d,%v, want %d,true", n, ok, tr.Len())
	}
	if d.Name() != tr.Name {
		t.Errorf("Name = %q, want %q", d.Name(), tr.Name)
	}
	got, err := d.ReadAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

// TestDecoderSniffsText feeds the text format through the auto-sniffing
// constructor.
func TestDecoderSniffsText(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

// TestDecoderNextIncremental drives Next directly and checks the
// per-record view matches the batch one.
func TestDecoderNextIncremental(t *testing.T) {
	tr := randomTrace(64, 9)
	var buf bytes.Buffer
	if err := EncodeStream(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range tr.Accesses {
		a, err := d.Next()
		if err != nil {
			t.Fatalf("access %d: %v", i, err)
		}
		if a != want {
			t.Fatalf("access %d = %+v, want %+v", i, a, want)
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("tail Next err = %v, want io.EOF", err)
	}
	if d.Cycles() != tr.Cycles {
		t.Errorf("Cycles = %d, want %d", d.Cycles(), tr.Cycles)
	}
	if d.Decoded() != uint64(tr.Len()) {
		t.Errorf("Decoded = %d, want %d", d.Decoded(), tr.Len())
	}
	// EOF is sticky.
	if _, err := d.Next(); err != io.EOF {
		t.Errorf("repeat Next err = %v, want io.EOF", err)
	}
}

// hugeCountHeader builds a syntactically valid v1 header claiming
// `count` accesses with no access bytes behind it.
func hugeCountHeader(count uint64) []byte {
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	buf.WriteByte(binaryVersion)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], 0) // empty name
	buf.Write(tmp[:n])
	n = binary.PutUvarint(tmp[:], count)
	buf.Write(tmp[:n])
	n = binary.PutUvarint(tmp[:], 1) // span
	buf.Write(tmp[:n])
	return buf.Bytes()
}

// TestReadBinaryHugeCountBounded is the huge-count regression: a
// ~16-byte input whose header claims 2³² accesses must fail cleanly
// without committing memory for the claim. Against the pre-hardening
// decoder (make([]Access, 0, count) straight from the header) this test
// dies allocating ~100 GiB.
func TestReadBinaryHugeCountBounded(t *testing.T) {
	input := hugeCountHeader(1 << 32)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	tr, err := ReadBinary(bytes.NewReader(input))
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatalf("truncated huge-count input accepted: %+v", tr)
	}
	if !errors.Is(err, ErrBadFormat) {
		t.Errorf("err = %v, want ErrBadFormat", err)
	}
	if delta := after.TotalAlloc - before.TotalAlloc; delta > 8<<20 {
		t.Errorf("decoding a %d-byte malicious header allocated %d bytes", len(input), delta)
	}
}

// TestReadBinaryAbsurdCountRejected keeps the outright cap on claims
// beyond 2³².
func TestReadBinaryAbsurdCountRejected(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(hugeCountHeader(1<<32 + 1))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("err = %v, want ErrBadFormat", err)
	}
}

// TestNewlineNameRejected is the header-injection regression: WriteText
// writes the name verbatim into a `# name` header line, so a newline in
// the name forges extra header lines and corrupts the round-trip. The
// pre-hardening writer accepted such names (this test failed); now every
// producer rejects them up front.
func TestNewlineNameRejected(t *testing.T) {
	evil := &Trace{Name: "evil\n# cycles 999999"}
	evil.Append(0, 0x40, Read)
	evil.Cycles = 10

	if err := evil.Validate(); !errors.Is(err, ErrBadName) {
		t.Errorf("Validate err = %v, want ErrBadName", err)
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, evil); !errors.Is(err, ErrBadName) {
		t.Errorf("WriteText err = %v, want ErrBadName", err)
	}
	if err := WriteBinary(&buf, evil); !errors.Is(err, ErrBadName) {
		t.Errorf("WriteBinary err = %v, want ErrBadName", err)
	}
	if _, err := NewEncoder(&buf, evil.Name); !errors.Is(err, ErrBadName) {
		t.Errorf("NewEncoder err = %v, want ErrBadName", err)
	}
}

// TestWriteTextNameRoundTrip states the injection bug purely in terms
// of the original API: if WriteText accepts a name, the round-trip must
// preserve it. Against the pre-hardening writer the newline name came
// back truncated (to "evil") with the forged `# cycles` header applied,
// and this test failed; now the writer refuses such names up front.
func TestWriteTextNameRoundTrip(t *testing.T) {
	tr := &Trace{Name: "evil\n# cycles 999999"}
	tr.Append(0, 0x40, Read)
	tr.Cycles = 10
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		return // rejected up front: nothing written, nothing to corrupt
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("writer emitted an unreadable stream: %v", err)
	}
	if got.Name != tr.Name || got.Cycles != tr.Cycles {
		t.Fatalf("newline in name corrupted the round-trip: name %q cycles %d, want %q cycles %d",
			got.Name, got.Cycles, tr.Name, tr.Cycles)
	}
}

// TestReadBinaryNameControlChars applies the same rule on the decode
// side: a crafted stream whose name field embeds a newline is rejected.
func TestReadBinaryNameControlChars(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	buf.WriteByte(binaryVersion)
	name := "evil\nname"
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(name)))
	buf.Write(tmp[:n])
	buf.WriteString(name)
	n = binary.PutUvarint(tmp[:], 0) // count
	buf.Write(tmp[:n])
	n = binary.PutUvarint(tmp[:], 1) // span
	buf.Write(tmp[:n])
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrBadFormat) {
		t.Errorf("err = %v, want ErrBadFormat", err)
	}
}

// TestReadTextHeaderInjectionHarmless: a text stream carrying the forged
// header must not let the injected line win; decoding either fails or
// yields a trace whose name passes validation.
func TestReadTextHeaderInjectionHarmless(t *testing.T) {
	in := "# name evil\n# cycles 999999\n0 R 0x40\n"
	tr, err := ReadText(strings.NewReader(in))
	if err != nil {
		return
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("decoder produced invalid trace: %v", err)
	}
}

// TestNamePreservedAcrossFormats: a name with interior runs of spaces
// must decode identically from text and binary — otherwise the two
// forms of one trace would land on different content addresses. Names
// that cannot round-trip through the line-trimming text codec (leading/
// trailing spaces) are rejected outright.
func TestNamePreservedAcrossFormats(t *testing.T) {
	tr := sampleTrace()
	tr.Name = "two  interior   spaces"
	var txt, bin bytes.Buffer
	if err := WriteText(&txt, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	fromText, err := ReadText(&txt)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if fromText.Name != tr.Name || fromBin.Name != tr.Name {
		t.Errorf("name diverged: text %q, binary %q, want %q", fromText.Name, fromBin.Name, tr.Name)
	}

	for _, bad := range []string{" x", "x ", " "} {
		if err := (&Trace{Name: bad, Cycles: 1}).Validate(); !errors.Is(err, ErrBadName) {
			t.Errorf("name %q: err = %v, want ErrBadName", bad, err)
		}
	}
}

// TestLongNameRejected bounds names on both sides.
func TestLongNameRejected(t *testing.T) {
	long := strings.Repeat("n", maxNameLen+1)
	tr := &Trace{Name: long, Cycles: 1}
	if err := tr.Validate(); !errors.Is(err, ErrBadName) {
		t.Errorf("Validate err = %v, want ErrBadName", err)
	}
}

// errReader fails with a sentinel after serving its prefix.
type errReader struct {
	data []byte
	err  error
}

func (r *errReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestReadTextScannerErrorsWrapped distinguishes the two text failure
// classes: an over-long line is malformed input (ErrBadFormat), a reader
// failure surfaces as the underlying error and NOT as ErrBadFormat.
func TestReadTextScannerErrorsWrapped(t *testing.T) {
	longLine := strings.Repeat("a", maxTextLine+1)
	if _, err := ReadText(strings.NewReader(longLine)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("over-long line err = %v, want ErrBadFormat", err)
	}

	sentinel := errors.New("disk on fire")
	_, err := ReadText(&errReader{data: []byte("0 R 0x40\n"), err: sentinel})
	if !errors.Is(err, sentinel) {
		t.Errorf("I/O failure err = %v, want wrapped sentinel", err)
	}
	if errors.Is(err, ErrBadFormat) {
		t.Errorf("I/O failure misclassified as bad format: %v", err)
	}
}

// TestBinaryIOErrorsKeepIdentity: a reader failure mid-stream must
// surface as itself (errors.Is/As reachable) and not be misclassified
// as malformed input — callers like the upload handler key status codes
// off the error identity (e.g. http.MaxBytesError -> 413). Truncation
// (clean EOF mid-record) stays ErrBadFormat.
func TestBinaryIOErrorsKeepIdentity(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := EncodeStream(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	sentinel := errors.New("disk on fire")
	for _, cut := range []int{2, 6, len(full) / 2, len(full) - 1} {
		d, err := NewBinaryDecoder(&errReader{data: full[:cut], err: sentinel})
		if err == nil {
			_, err = d.ReadAll(0)
		}
		if !errors.Is(err, sentinel) {
			t.Errorf("cut at %d: err = %v, want wrapped sentinel", cut, err)
		}
		if errors.Is(err, ErrBadFormat) {
			t.Errorf("cut at %d: I/O failure misclassified as bad format: %v", cut, err)
		}
	}
	// Plain truncation (no reader error) is still malformed input.
	if _, err := ReadBinary(bytes.NewReader(full[:len(full)-1])); !errors.Is(err, ErrBadFormat) {
		t.Errorf("truncation err = %v, want ErrBadFormat", err)
	}
}

// TestReadAllCap enforces the caller's access budget against both a
// lying header and a genuinely long stream.
func TestReadAllCap(t *testing.T) {
	tr := randomTrace(100, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadAll(10); !errors.Is(err, ErrTooLarge) {
		t.Errorf("v1 cap err = %v, want ErrTooLarge", err)
	}

	buf.Reset()
	if err := EncodeStream(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d, err = NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadAll(10); !errors.Is(err, ErrTooLarge) {
		t.Errorf("v2 cap err = %v, want ErrTooLarge", err)
	}
}

// TestV2Truncations: every proper prefix of a v2 stream must error.
func TestV2Truncations(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := EncodeStream(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		d, err := NewBinaryDecoder(bytes.NewReader(full[:n]))
		if err != nil {
			continue
		}
		if _, err := d.ReadAll(0); err == nil {
			t.Fatalf("truncation at %d of %d accepted", n, len(full))
		}
	}
}

// TestBinaryFraming: binary decoding consumes exactly one trace and
// leaves the reader after it, so traces frame back-to-back on a single
// stream in either version.
func TestBinaryFraming(t *testing.T) {
	a, b := sampleTrace(), randomTrace(20, 4)
	b.Name = "second"
	var buf bytes.Buffer
	if err := EncodeStream(&buf, a); err != nil { // v2 then v1 on one stream
		t.Fatal(err)
	}
	if err := WriteBinary(&buf, b); err != nil {
		t.Fatal(err)
	}
	// A shared bufio.Reader keeps each decode from buffering past its
	// own trace.
	br := bufio.NewReader(&buf)
	dA, err := NewBinaryDecoder(br)
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := dA.ReadAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if more, err := dA.More(); err != nil || !more {
		t.Errorf("More after first trace = %v,%v, want true", more, err)
	}
	dB, err := NewBinaryDecoder(br)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := dB.ReadAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if more, err := dB.More(); err != nil || more {
		t.Errorf("More at end of stream = %v,%v, want false", more, err)
	}
	if !reflect.DeepEqual(a, gotA) || !reflect.DeepEqual(b, gotB) {
		t.Errorf("framed traces mismatch:\n got %+v / %+v\nwant %+v / %+v", gotA, gotB, a, b)
	}
}

// TestV2StreamingPipe: a terminated v2 trace decodes to completion over
// a pipe the producer keeps open — Close ends the trace, not the
// transport.
func TestV2StreamingPipe(t *testing.T) {
	pr, pw := io.Pipe()
	defer pw.Close()
	tr := sampleTrace()
	go func() {
		enc, err := NewEncoder(pw, tr.Name)
		if err != nil {
			pw.CloseWithError(err)
			return
		}
		for _, a := range tr.Accesses {
			if err := enc.Write(a); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		if err := enc.Close(tr.Cycles); err != nil {
			pw.CloseWithError(err)
		}
		// Deliberately leave the pipe open: the decoder must not need
		// transport EOF.
	}()
	done := make(chan struct{})
	var got *Trace
	var err error
	go func() {
		defer close(done)
		var d *Decoder
		if d, err = NewBinaryDecoder(pr); err == nil {
			got, err = d.ReadAll(0)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("decoder blocked waiting for transport EOF after the terminator")
	}
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Errorf("pipe round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

// TestEncoderEnforcesInvariants: out-of-order writes, bad kinds, short
// spans and use-after-Close all fail at the encoder; validation
// failures latch so a violated stream cannot close cleanly.
func TestEncoderEnforcesInvariants(t *testing.T) {
	newEnc := func() *Encoder {
		enc, err := NewEncoder(&bytes.Buffer{}, "strict")
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Write(Access{Cycle: 10, Addr: 1, Kind: Read}); err != nil {
			t.Fatal(err)
		}
		return enc
	}

	enc := newEnc()
	if err := enc.Write(Access{Cycle: 5, Addr: 2, Kind: Read}); !errors.Is(err, ErrUnordered) {
		t.Errorf("unordered write err = %v, want ErrUnordered", err)
	}
	// The violation latches: a later clean Close must not succeed and
	// hand the caller a terminated stream missing the rejected access.
	if err := enc.Close(0); !errors.Is(err, ErrUnordered) {
		t.Errorf("Close after violation err = %v, want latched ErrUnordered", err)
	}

	enc = newEnc()
	if err := enc.Write(Access{Cycle: 11, Addr: 2, Kind: Kind(7)}); err == nil {
		t.Error("invalid kind accepted")
	}
	if err := enc.Close(0); err == nil {
		t.Error("Close after invalid-kind violation succeeded")
	}

	enc = newEnc()
	if err := enc.Close(5); err == nil { // span does not cover cycle 10
		t.Error("short span accepted")
	}

	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, "strict")
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Write(Access{Cycle: 10, Addr: 1, Kind: Read}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(0); err != nil { // infers 11
		t.Fatal(err)
	}
	if err := enc.Write(Access{Cycle: 12, Kind: Read}); err == nil {
		t.Error("write after Close accepted")
	}
	if err := enc.Close(0); err == nil {
		t.Error("double Close accepted")
	}

	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != 11 {
		t.Errorf("inferred span = %d, want 11", got.Cycles)
	}
}

// TestDecoderEmptyInput: an empty stream is the empty trace in text
// mode and a format error in binary mode.
func TestDecoderEmptyInput(t *testing.T) {
	d, err := NewDecoder(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := d.ReadAll(0)
	if err != nil || tr.Len() != 0 {
		t.Errorf("empty input: %v %+v", err, tr)
	}
	if _, err := NewBinaryDecoder(strings.NewReader("")); !errors.Is(err, ErrBadFormat) {
		t.Errorf("binary empty err = %v, want ErrBadFormat", err)
	}
}

// TestDecoderBoundedMemoryLargeStream decodes a sizeable v2 stream via
// Next only (no materialisation) and checks the decoder's own footprint
// stays flat — the chunk-proportional-memory acceptance criterion.
func TestDecoderBoundedMemoryLargeStream(t *testing.T) {
	const n = 200_000
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, "big")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := enc.Write(Access{Cycle: uint64(i), Addr: uint64(i * 16), Kind: Kind(i % 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(0); err != nil {
		t.Fatal(err)
	}

	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	count := 0
	for {
		if _, err := d.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		count++
	}
	runtime.ReadMemStats(&after)
	if count != n {
		t.Fatalf("decoded %d accesses, want %d", count, n)
	}
	// n accesses materialised would be ~4.8 MB; the pure streaming walk
	// must stay well under that.
	if delta := after.TotalAlloc - before.TotalAlloc; delta > 1<<20 {
		t.Errorf("streaming decode of %d accesses allocated %d bytes", n, delta)
	}
}
